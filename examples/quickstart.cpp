// Quickstart: the smallest complete ACIC program.
//
// Builds a random weighted graph, simulates a 2-node machine, runs the
// ACIC asynchronous SSSP, validates the result against the sequential
// Dijkstra ground truth, and prints the headline metrics.
//
//   ./examples/quickstart [--scale N] [--nodes M] [--seed S]

#include <cstdio>

#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/validate.hpp"
#include "src/runtime/machine.hpp"
#include "src/util/options.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  // 1. Generate a workload: |V| = 2^scale vertices, 16 edges per vertex,
  //    both endpoints uniform (the paper's "random" graph).
  graph::GenParams params;
  params.num_vertices =
      graph::VertexId{1} << static_cast<unsigned>(opts.get_int("scale", 12));
  params.num_edges = params.num_vertices * 16ull;
  params.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const graph::Csr csr =
      graph::Csr::from_edge_list(graph::generate_uniform_random(params));
  std::printf("graph: %u vertices, %zu edges\n", csr.num_vertices(),
              csr.num_edges());

  // 2. Build a simulated machine: `nodes` nodes of 2 processes x 4
  //    worker PEs (plus a comm thread per process), and 1-D partition the
  //    vertices across the workers.
  const auto nodes =
      static_cast<std::uint32_t>(opts.get_int("nodes", 2));
  runtime::Machine machine(runtime::Topology{nodes, 2, 4});
  const graph::Partition1D partition =
      graph::Partition1D::block(csr.num_vertices(), machine.num_pes());
  std::printf("machine: %u node(s), %u worker PEs\n", nodes,
              machine.num_pes());

  // 3. Run ACIC from vertex 0 with the paper's tuned parameters
  //    (p_tram = 0.999, p_pq = 0.05, WP aggregation).
  const core::AcicConfig config;
  const core::AcicRunResult run =
      core::acic_sssp(machine, csr, partition, /*source=*/0, config);

  // 4. Inspect the result.
  const sssp::SsspMetrics& m = run.sssp.metrics;
  std::printf("simulated time: %.3f ms over %llu reduction cycles\n",
              m.sim_time_us / 1000.0,
              static_cast<unsigned long long>(run.reduction_cycles));
  std::printf("updates: %llu created, %llu rejected, %llu superseded "
              "(%.1f%% wasted)\n",
              static_cast<unsigned long long>(m.updates_created),
              static_cast<unsigned long long>(m.updates_rejected),
              static_cast<unsigned long long>(m.updates_superseded),
              100.0 * m.wasted_fraction());
  std::printf("reached %llu vertices, TEPS %.3g\n",
              static_cast<unsigned long long>(m.vertices_touched),
              m.teps());

  // 5. Validate: exact agreement with Dijkstra plus the SSSP fixed-point
  //    conditions.
  const auto expected = baselines::dijkstra(csr, 0);
  const auto cmp = graph::compare_distances(run.sssp.dist, expected);
  const auto fixed = graph::validate_sssp(csr, 0, run.sssp.dist);
  if (!cmp.ok || !fixed.ok) {
    std::printf("VALIDATION FAILED: %s%s\n", cmp.error.c_str(),
                fixed.error.c_str());
    return 1;
  }
  std::printf("validation: distances match Dijkstra exactly\n");
  return 0;
}
