// Interactive comparison driver: run any SSSP solver registered with
// sssp::run_solver on any of the four workloads at any scale/machine
// size, with result validation against Dijkstra.
//
//   ./examples/compare_algorithms --graph rmat --scale 14 --nodes 8
//   ./examples/compare_algorithms --solver acic,delta_stepping_2d
//
// Options: --graph random|rmat|road|erdos-renyi, --solver <csv of
// registry names | all>, --scale N, --nodes M, --seed S, --validate 0|1,
// --full-nodes.  `--solver all` runs every registered parallel solver;
// sssp::solver_names() is the authoritative list.

#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/sequential.hpp"
#include "src/graph/validate.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  stats::ExperimentSpec spec;
  spec.graph = stats::graph_kind_from_string(opts.get("graph", "random"));
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 13));
  spec.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  spec.full_scale_nodes = opts.get_bool("full-nodes", false);
  const bool validate = opts.get_bool("validate", true);

  std::vector<std::string> solvers;
  const std::string solver_opt =
      opts.get("solver", opts.get("algo", "all"));
  if (solver_opt == "all") {
    // Every registered solver except the sequential reference (which is
    // the validation oracle, not a comparison point).
    for (const std::string& name : sssp::solver_names()) {
      if (name != "sequential") solvers.push_back(name);
    }
  } else {
    for (const std::string& name : split_csv(solver_opt)) {
      if (!sssp::has_solver(name)) {
        std::printf("unknown solver '%s'; registered:", name.c_str());
        for (const std::string& known : sssp::solver_names()) {
          std::printf(" %s", known.c_str());
        }
        std::printf("\n");
        return 1;
      }
      solvers.push_back(name);
    }
  }

  const graph::Csr csr = stats::build_graph(spec);
  std::printf("workload: %s scale=%u (%u vertices, %zu edges), %u %s\n",
              stats::graph_kind_name(spec.graph), spec.scale,
              csr.num_vertices(), csr.num_edges(), spec.nodes,
              spec.full_scale_nodes ? "paper nodes (48 PEs each)"
                                    : "mini nodes (8 PEs each)");

  std::vector<graph::Dist> expected;
  if (validate) expected = baselines::dijkstra(csr, spec.source);

  util::Table table({"solver", "time_ms", "teps", "updates",
                     "wasted_pct", "msgs", "imbalance", "valid"});
  for (const std::string& name : solvers) {
    runtime::Machine machine(spec.topology());
    const auto run =
        sssp::run_solver(name, machine, csr, spec.source, {});
    std::string valid = "-";
    if (validate) {
      const auto cmp = graph::compare_distances(run.sssp.dist, expected);
      valid = cmp.ok ? "yes" : "NO";
      if (!cmp.ok) {
        std::printf("  %s validation error: %s\n", name.c_str(),
                    cmp.error.c_str());
      }
    }
    const auto& m = run.sssp.metrics;
    table.add_row(
        {name, util::strformat("%.3f", m.sim_time_us / 1000.0),
         util::strformat("%.3g", m.teps()),
         util::strformat("%llu",
                         static_cast<unsigned long long>(m.updates_created)),
         util::strformat("%.1f%%", 100.0 * m.wasted_fraction()),
         util::strformat("%llu",
                         static_cast<unsigned long long>(m.network_messages)),
         util::strformat("%.2f", run.telemetry.busy_imbalance), valid});
  }
  table.print();
  return 0;
}
