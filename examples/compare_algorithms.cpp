// Interactive comparison driver: run any of the six SSSP implementations
// on any of the four workloads at any scale/machine size, with result
// validation against Dijkstra.
//
//   ./examples/compare_algorithms --graph rmat --scale 14 --nodes 8
//   ./examples/compare_algorithms --algo acic,riken-delta --graph road
//
// Options: --graph random|rmat|road|erdos-renyi, --algo <csv of names |
// all>, --scale N, --nodes M, --seed S, --validate 0|1, --full-nodes.

#include <cstdio>
#include <string>
#include <vector>

#include "src/baselines/sequential.hpp"
#include "src/graph/validate.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  stats::ExperimentSpec spec;
  spec.graph = stats::graph_kind_from_string(opts.get("graph", "random"));
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 13));
  spec.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  spec.full_scale_nodes = opts.get_bool("full-nodes", false);
  const bool validate = opts.get_bool("validate", true);

  std::vector<stats::Algo> algos;
  const std::string algo_opt = opts.get("algo", "all");
  if (algo_opt == "all") {
    algos = {stats::Algo::kAcic,        stats::Algo::kRiken,
             stats::Algo::kDelta1D,     stats::Algo::kKla,
             stats::Algo::kDistControl, stats::Algo::kAsyncBaseline};
  } else {
    for (const std::string& name : split_csv(algo_opt)) {
      algos.push_back(stats::algo_from_string(name));
    }
  }

  const graph::Csr csr = stats::build_graph(spec);
  std::printf("workload: %s scale=%u (%u vertices, %zu edges), %u %s\n",
              stats::graph_kind_name(spec.graph), spec.scale,
              csr.num_vertices(), csr.num_edges(), spec.nodes,
              spec.full_scale_nodes ? "paper nodes (48 PEs each)"
                                    : "mini nodes (8 PEs each)");

  std::vector<graph::Dist> expected;
  if (validate) expected = baselines::dijkstra(csr, spec.source);

  util::Table table({"algorithm", "time_ms", "teps", "updates",
                     "wasted_pct", "msgs", "imbalance", "valid"});
  for (const stats::Algo algo : algos) {
    const auto run = stats::run_algorithm(algo, csr, spec);
    std::string valid = "-";
    if (validate) {
      const auto cmp = graph::compare_distances(run.sssp.dist, expected);
      valid = cmp.ok ? "yes" : "NO";
      if (!cmp.ok) {
        std::printf("  %s validation error: %s\n",
                    stats::algo_name(algo), cmp.error.c_str());
      }
    }
    const auto& m = run.sssp.metrics;
    table.add_row(
        {stats::algo_name(algo),
         util::strformat("%.3f", m.sim_time_us / 1000.0),
         util::strformat("%.3g", m.teps()),
         util::strformat("%llu",
                         static_cast<unsigned long long>(m.updates_created)),
         util::strformat("%.1f%%", 100.0 * m.wasted_fraction()),
         util::strformat("%llu",
                         static_cast<unsigned long long>(m.network_messages)),
         util::strformat("%.2f", run.busy_imbalance), valid});
  }
  table.print();
  return 0;
}
