// Social-network scenario: shortest "influence paths" on a scale-free
// graph.
//
// RMAT graphs model social networks (the paper's intro motivates SSSP
// with them): a few celebrity accounts have enormous degree, most users
// have a handful of connections.  Edge weights model interaction cost.
// The example shows why this workload is *hard* for a 1-D partitioned
// asynchronous algorithm — the PE owning a hub becomes a hotspot — and
// reproduces the paper's RMAT finding in miniature by comparing ACIC
// against the 2-D hybrid Δ-stepping baseline.
//
//   ./examples/social_network [--scale N] [--nodes M] [--seed S]

#include <algorithm>
#include <cstdio>

#include "src/graph/degree_stats.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  stats::ExperimentSpec spec;
  spec.graph = stats::GraphKind::kRmat;
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 13));
  spec.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 7));

  const graph::Csr csr = stats::build_graph(spec);
  std::printf("social graph (RMAT): %u accounts, %zu follow edges\n",
              csr.num_vertices(), csr.num_edges());

  // The hub structure is what distinguishes this workload.
  const graph::DegreeStats degrees = graph::compute_degree_stats(csr);
  std::printf("degree stats: mean %.1f, max %zu (%.0fx the mean), "
              "gini %.2f, %zu accounts with no followees\n",
              degrees.mean_degree, degrees.max_degree,
              static_cast<double>(degrees.max_degree) /
                  std::max(degrees.mean_degree, 1e-9),
              degrees.gini, degrees.isolated);

  std::printf("\ndistance distribution of influence from account 0:\n");
  const auto acic_run =
      stats::run_algorithm(stats::Algo::kAcic, csr, spec);
  std::size_t reachable = 0;
  double max_dist = 0.0;
  for (const graph::Dist d : acic_run.sssp.dist) {
    if (d != graph::kInfDist) {
      ++reachable;
      max_dist = std::max(max_dist, d);
    }
  }
  std::printf("  %zu of %u accounts reachable; eccentricity %.1f\n",
              reachable, csr.num_vertices(), max_dist);

  const auto riken_run =
      stats::run_algorithm(stats::Algo::kRiken, csr, spec);

  util::Table table({"algorithm", "time_ms", "updates", "pe_imbalance"});
  for (const auto* run : {&acic_run, &riken_run}) {
    table.add_row(
        {stats::algo_name(run->algo),
         util::strformat("%.3f", run->sssp.metrics.sim_time_us / 1000.0),
         util::strformat("%llu", static_cast<unsigned long long>(
                                     run->sssp.metrics.updates_created)),
         util::strformat("%.2f", run->busy_imbalance)});
  }
  std::printf("\n");
  table.print();
  std::printf("\nnote the pe_imbalance column: ACIC's 1-D partition puts "
              "every hub's out-edges on one PE, while the 2-D baseline "
              "spreads them over a processor column — this is the paper's "
              "explanation for delta-stepping's RMAT advantage (§IV.F).\n");
  return 0;
}
