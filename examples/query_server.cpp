// Query server: the serving-layer demo and acceptance harness.
//
// Runs an open-loop Zipf workload of SSSP queries against a QueryService
// on one simulated Topology{2,2,2} machine (8 worker PEs), with
// concurrent per-query ACIC engines, bounded admission and an LRU result
// cache.  Afterwards it *proves* the serving properties:
//   1. every query completed;
//   2. at least two queries overlapped in simulated time;
//   3. cached answers are identical to a fresh single-query engine run;
//   4. the whole run is bit-deterministic: a second service over a fresh
//      machine reproduces the latency sequence exactly.
//
//   ./examples/query_server [--scale N] [--queries Q] [--qps R]
//                           [--seed S] [--inflight K] [--cache C]
//                           [--batch B] [--landmarks L] [--p2p F]
//
// With --p2p > 0 a fraction of the stream is point-to-point; --landmarks
// enables the exact landmark/goal-directed tiers for them, and --batch
// coalesces queued full-SSSP queries into shared multi-source engine
// passes.  Property 3 extends to every tier: answers equal Dijkstra.

#include <cstdio>
#include <cstring>

#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/server/service.hpp"
#include "src/server/workload.hpp"
#include "src/util/options.hpp"

namespace {

struct RunOutput {
  acic::server::ServiceSummary summary;
  std::vector<acic::server::QueryRecord> records;
  std::uint64_t submitted = 0;
  bool cached_answer_checked = false;
};

struct ServeKnobs {
  std::uint32_t max_inflight = 3;
  std::size_t cache_cap = 16;
  std::size_t max_batch = 1;
  std::size_t num_landmarks = 0;
};

RunOutput run_service(const acic::graph::Csr& csr,
                      const acic::server::WorkloadConfig& wl,
                      const ServeKnobs& knobs, bool retain_results,
                      std::vector<acic::server::QueryRecord>* out_records) {
  using namespace acic;
  runtime::Machine machine(runtime::Topology{2, 2, 2});
  const graph::Partition1D partition =
      graph::Partition1D::block(csr.num_vertices(), machine.num_pes());

  server::ServiceConfig config;
  config.max_inflight = knobs.max_inflight;
  config.cache_capacity = knobs.cache_cap;
  config.retain_full_results = retain_results;
  config.batching.max_batch = knobs.max_batch;
  config.landmarks.num_landmarks = knobs.num_landmarks;
  server::QueryService service(machine, csr, partition, config);

  service.submit(server::generate_workload(wl, csr.num_vertices()));
  service.run();

  RunOutput out;
  out.summary = service.summary();
  out.records = service.records();
  out.submitted = service.submitted_count();
  if (out_records != nullptr) *out_records = service.records();

  // Property 3: cached repeat-source answers match a fresh engine run,
  // and every point-to-point answer equals Dijkstra's dist[target].
  // (Checked here while the service is alive so result_of works.)
  if (retain_results) {
    for (const server::QueryRecord& r : service.records()) {
      // p2p cache hits retain only their scalar (validated in the p2p
      // loop below); this cross-check needs a full-vector hit.
      if (!r.cache_hit() || r.mode == server::ResultMode::kPointToPoint) {
        continue;
      }
      runtime::Machine fresh(runtime::Topology{2, 2, 2});
      const auto expected = core::acic_sssp(
          fresh, csr,
          graph::Partition1D::block(csr.num_vertices(), fresh.num_pes()),
          r.source, core::AcicConfig{});
      const auto* served = service.result_of(r.id);
      if (served == nullptr || served->distances != expected.sssp.dist) {
        std::printf("PROPERTY FAILED: cached answer for source %u "
                    "differs from a fresh engine run\n", r.source);
        std::exit(1);
      }
      const auto dijkstra = baselines::dijkstra(csr, r.source);
      if (served->distances != dijkstra) {
        std::printf("PROPERTY FAILED: cached answer for source %u "
                    "differs from Dijkstra\n", r.source);
        std::exit(1);
      }
      out.cached_answer_checked = true;
      break;  // one full cross-check is expensive; one suffices here
    }
  }
  for (const server::QueryRecord& r : service.records()) {
    if (r.mode != server::ResultMode::kPointToPoint) continue;
    const auto* result = service.result_of(r.id);
    if (result == nullptr ||
        result->distance != baselines::dijkstra(csr, r.source)[r.target]) {
      std::printf("PROPERTY FAILED: p2p answer for (%u, %u) differs "
                  "from Dijkstra\n", r.source, r.target);
      std::exit(1);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  graph::GenParams params;
  params.num_vertices =
      graph::VertexId{1} << static_cast<unsigned>(opts.get_int("scale", 10));
  params.num_edges = params.num_vertices * 16ull;
  params.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const graph::Csr csr =
      graph::Csr::from_edge_list(graph::generate_uniform_random(params));

  server::WorkloadConfig wl;
  wl.seed = params.seed;
  wl.num_queries =
      static_cast<std::uint64_t>(opts.get_int("queries", 200));
  wl.qps = static_cast<double>(opts.get_int("qps", 1500));
  wl.source_universe = 32;
  wl.zipf_exponent = 0.9;

  wl.p2p_fraction = opts.get_double("p2p", 0.25);

  ServeKnobs knobs;
  knobs.max_inflight = static_cast<std::uint32_t>(opts.get_int("inflight", 3));
  knobs.cache_cap = static_cast<std::size_t>(opts.get_int("cache", 16));
  knobs.max_batch = static_cast<std::size_t>(opts.get_int("batch", 4));
  knobs.num_landmarks =
      static_cast<std::size_t>(opts.get_int("landmarks", 6));

  std::printf("graph: %u vertices, %zu edges\n", csr.num_vertices(),
              csr.num_edges());
  std::printf("workload: %llu queries at %.0f qps, Zipf(%.2f) over %u "
              "sources\n",
              static_cast<unsigned long long>(wl.num_queries), wl.qps,
              wl.zipf_exponent, wl.source_universe);
  std::printf("service: max_inflight=%u, cache=%zu entries, batch<=%zu, "
              "%zu landmarks, machine Topology{2,2,2} (8 worker PEs)\n\n",
              knobs.max_inflight, knobs.cache_cap, knobs.max_batch,
              knobs.num_landmarks);

  std::vector<server::QueryRecord> first_records;
  const RunOutput first = run_service(csr, wl, knobs,
                                      /*retain_results=*/true,
                                      &first_records);
  std::printf("%s", server::format_summary(first.summary).c_str());

  // Property 1: everything completed.
  if (first.summary.completed != first.submitted) {
    std::printf("FAILED: %llu of %llu queries completed\n",
                static_cast<unsigned long long>(first.summary.completed),
                static_cast<unsigned long long>(first.submitted));
    return 1;
  }

  // Property 2: provable overlap — two engine-served queries whose
  // [admit, complete] intervals intersect in simulated time.
  bool overlap = first.summary.max_concurrent >= 2;
  if (!overlap) {
    std::printf("FAILED: no two queries overlapped in simulated time\n");
    return 1;
  }
  std::printf("\noverlap: up to %u queries ran concurrently\n",
              first.summary.max_concurrent);

  // Property 4: bit-determinism of the latency sequence.
  std::vector<server::QueryRecord> second_records;
  run_service(csr, wl, knobs, /*retain_results=*/false, &second_records);
  if (first_records.size() != second_records.size()) {
    std::printf("FAILED: determinism — record counts differ\n");
    return 1;
  }
  for (std::size_t i = 0; i < first_records.size(); ++i) {
    const double a = first_records[i].latency_us();
    const double b = second_records[i].latency_us();
    if (first_records[i].id != second_records[i].id ||
        std::memcmp(&a, &b, sizeof(double)) != 0) {
      std::printf("FAILED: determinism — latency sequence diverged at "
                  "completion %zu\n", i);
      return 1;
    }
  }
  std::printf("determinism: latency sequence bit-identical across two "
              "service runs\n");
  if (first.cached_answer_checked) {
    std::printf("cached answers validated against a fresh engine run and "
                "Dijkstra\n");
  } else {
    std::printf("no cache hits this run — cached-answer cross-check "
                "skipped\n");
  }
  std::printf("\nall serving properties hold\n");
  return 0;
}
