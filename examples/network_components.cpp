// Network-components scenario: the paper's future-work problem (§V) on
// a fragmented network.
//
// A sparse communication network (uniform random graph at low edge
// factor) splinters into many islands.  The example finds them with the
// asynchronous introspective connected-components algorithm, verifies
// against union-find, compares with the bulk-synchronous baseline, and
// prints the component-size distribution — the quantity an operator of
// a fragmented network actually wants.
//
//   ./examples/network_components [--scale N] [--edge-factor F]

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/cc/async_cc.hpp"
#include "src/cc/bsp_cc.hpp"
#include "src/cc/union_find.hpp"
#include "src/graph/bfs.hpp"
#include "src/graph/generators.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  graph::GenParams params;
  params.num_vertices =
      graph::VertexId{1} << static_cast<unsigned>(opts.get_int("scale", 13));
  params.num_edges =
      static_cast<std::uint64_t>(opts.get_int("edge-factor", 1)) *
      params.num_vertices;
  params.seed = static_cast<std::uint64_t>(opts.get_int("seed", 2));
  const graph::Csr csr = graph::Csr::from_edge_list(
      graph::generate_uniform_random(params).symmetrized());
  std::printf("network: %u hosts, %zu (bidirectional) links\n",
              csr.num_vertices(), csr.num_edges());

  const runtime::Topology topo{
      static_cast<std::uint32_t>(opts.get_int("nodes", 4)), 2, 4};
  const auto partition =
      graph::Partition1D::block(csr.num_vertices(), topo.num_pes());

  runtime::Machine m_async(topo);
  const auto async_result = cc::async_cc(m_async, csr, partition);
  runtime::Machine m_bsp(topo);
  const auto bsp_result = cc::bsp_cc(m_bsp, csr, partition);

  const auto expected = cc::connected_components(csr);
  if (async_result.labels != expected || bsp_result.labels != expected) {
    std::printf("VERIFICATION FAILED against union-find\n");
    return 1;
  }

  // Component size distribution.
  std::map<graph::VertexId, std::size_t> sizes;
  for (const graph::VertexId label : async_result.labels) ++sizes[label];
  std::map<std::size_t, std::size_t> size_histogram;
  std::size_t largest = 0;
  for (const auto& [label, size] : sizes) {
    ++size_histogram[size];
    largest = std::max(largest, size);
  }
  std::printf("%zu components; largest spans %zu hosts (%.1f%% of the "
              "network)\n", sizes.size(), largest,
              100.0 * static_cast<double>(largest) / csr.num_vertices());
  std::printf("component sizes (size x count): ");
  int shown = 0;
  for (const auto& [size, count] : size_histogram) {
    if (shown++ >= 8) {
      std::printf("...");
      break;
    }
    std::printf("%zux%zu ", size, count);
  }
  std::printf("\n\n");

  util::Table table({"algorithm", "time_ms", "label_updates",
                     "sync_rounds"});
  table.add_row({"async-cc (introspective)",
                 util::strformat("%.3f", async_result.sim_time_us / 1000.0),
                 util::strformat("%llu", (unsigned long long)
                                             async_result.updates_created),
                 util::strformat("%llu", (unsigned long long)
                                             async_result.reduction_cycles)});
  table.add_row({"bsp-cc (label propagation)",
                 util::strformat("%.3f", bsp_result.sim_time_us / 1000.0),
                 util::strformat("%llu", (unsigned long long)
                                             bsp_result.updates_created),
                 util::strformat("%llu", (unsigned long long)
                                             bsp_result.barrier_rounds)});
  table.print();
  std::printf("\nboth verified against union-find; the asynchronous "
              "variant needs no barriers and suppresses doomed label "
              "propagation through its pq threshold (paper §V)\n");
  return 0;
}
