// Timeline analysis: the paper's asynchrony argument, drawn.
//
// Runs ACIC and the RIKEN-style Δ-stepping baseline on the same workload
// with the execution tracer attached (the simulator's analogue of
// Charm++'s Projections tool), then prints per-PE utilization heat maps.
// Δ-stepping shows vertical idle stripes at every barrier; ACIC shows
// solid utilization with a gradually thinning tail.  The per-run trace
// CSVs are written for external plotting.
//
//   ./examples/timeline_analysis [--scale N] [--graph random|rmat|road]

#include <cstdio>

#include "src/graph/partition2d.hpp"
#include "src/baselines/delta_stepping_2d.hpp"
#include "src/core/acic.hpp"
#include "src/runtime/trace.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/options.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  stats::ExperimentSpec spec;
  spec.graph = stats::graph_kind_from_string(opts.get("graph", "random"));
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 12));
  spec.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 2));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const graph::Csr csr = stats::build_graph(spec);
  const runtime::Topology topo = spec.topology();

  std::printf("timeline analysis: %s scale=%u on %u worker PEs\n",
              stats::graph_kind_name(spec.graph), spec.scale,
              topo.num_pes());
  std::printf("legend: . 0-20%%  : 20-40%%  - 40-60%%  = 60-80%%  # "
              "80-100%% busy, one column per time bin\n\n");

  // --- ACIC ---------------------------------------------------------------
  runtime::Tracer acic_tracer;
  {
    runtime::Machine machine(topo);
    acic::runtime::attach_tracer(machine, acic_tracer);
    const auto partition =
        graph::Partition1D::block(csr.num_vertices(), machine.num_pes());
    const auto run =
        core::acic_sssp(machine, csr, partition, spec.source, {});
    std::printf("ACIC (asynchronous, %llu reduction cycles, %.3f ms):\n",
                static_cast<unsigned long long>(run.reduction_cycles),
                run.sssp.metrics.sim_time_us / 1000.0);
    std::printf("%s\n",
                acic_tracer
                    .utilization_art(machine.num_pes(),
                                     run.sssp.metrics.sim_time_us, 64)
                    .c_str());
    acic_tracer.write_csv("timeline_acic.csv");
  }

  // --- RIKEN-style Δ-stepping ----------------------------------------------
  runtime::Tracer delta_tracer;
  {
    runtime::Machine machine(topo);
    acic::runtime::attach_tracer(machine, delta_tracer);
    const auto partition =
        graph::Partition2D::squarest(csr, machine.num_pes());
    const auto run = baselines::delta_stepping_2d(machine, csr, partition,
                                                  spec.source, {});
    std::printf("Delta-stepping (bulk-synchronous, %llu barrier rounds, "
                "%.3f ms):\n",
                static_cast<unsigned long long>(run.barrier_rounds),
                run.sssp.metrics.sim_time_us / 1000.0);
    std::printf("%s\n",
                delta_tracer
                    .utilization_art(machine.num_pes(),
                                     run.sssp.metrics.sim_time_us, 64)
                    .c_str());
    delta_tracer.write_csv("timeline_delta.csv");
  }

  std::printf("wrote timeline_acic.csv and timeline_delta.csv "
              "(pe,start_us,end_us,kind)\n");
  std::printf("the stripes of '.' columns in the delta-stepping map are "
              "barrier waits; the thinning right edge of the ACIC map is "
              "the low-concurrency tail the paper describes\n");
  return 0;
}
