// Timeline analysis: the paper's asynchrony argument, drawn.
//
// Runs ACIC and the RIKEN-style Δ-stepping baseline on the same workload
// with the execution tracer and the observability registry attached
// (the simulator's analogue of Charm++'s Projections tool), then prints
// per-PE utilization heat maps.  Δ-stepping shows vertical idle stripes
// at every barrier; ACIC shows solid utilization with a gradually
// thinning tail.  Each run is exported twice: the trace CSV for external
// plotting, and a Chrome trace-event JSON (timeline_acic.json /
// timeline_delta.json) that https://ui.perfetto.dev loads directly —
// task spans per PE plus counter tracks for every message-locality tier
// and, for ACIC, the per-reduction-cycle thresholds.
//
//   ./examples/timeline_analysis [--scale N] [--graph random|rmat|road]

#include <cstdio>

#include "src/obs/export.hpp"
#include "src/obs/registry.hpp"
#include "src/runtime/trace.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/options.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  stats::ExperimentSpec spec;
  spec.graph = stats::graph_kind_from_string(opts.get("graph", "random"));
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 12));
  spec.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 2));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const graph::Csr csr = stats::build_graph(spec);
  const runtime::Topology topo = spec.topology();

  std::printf("timeline analysis: %s scale=%u on %u worker PEs\n",
              stats::graph_kind_name(spec.graph), spec.scale,
              topo.num_pes());
  std::printf("legend: . 0-20%%  : 20-40%%  - 40-60%%  = 60-80%%  # "
              "80-100%% busy, one column per time bin\n\n");

  // --- ACIC ---------------------------------------------------------------
  {
    runtime::Tracer tracer;
    obs::Registry registry(topo);
    runtime::Machine machine(topo);
    runtime::attach_tracer(machine, tracer);

    sssp::SolverOptions solver_opts;
    solver_opts.registry = &registry;
    const auto run =
        sssp::run_solver("acic", machine, csr, spec.source, solver_opts);
    std::printf("ACIC (asynchronous, %llu reduction cycles, %.3f ms):\n",
                static_cast<unsigned long long>(run.telemetry.cycles),
                run.sssp.metrics.sim_time_us / 1000.0);
    std::printf("%s\n",
                tracer
                    .utilization_art(machine.num_pes(),
                                     run.sssp.metrics.sim_time_us, 64)
                    .c_str());
    tracer.write_csv("timeline_acic.csv");
    obs::write_chrome_trace("timeline_acic.json", topo, &tracer,
                            &registry);
    std::printf("registry totals: %llu msgs intra-process, %llu "
                "intra-node, %llu inter-node; %llu tram inserts; %zu "
                "threshold records\n\n",
                static_cast<unsigned long long>(
                    registry.total("net/messages_intra_process")),
                static_cast<unsigned long long>(
                    registry.total("net/messages_intra_node")),
                static_cast<unsigned long long>(
                    registry.total("net/messages_inter_node")),
                static_cast<unsigned long long>(
                    registry.total("tram/items_inserted")),
                registry.find_series("acic/t_tram")->points.size());
  }

  // --- RIKEN-style Δ-stepping ----------------------------------------------
  {
    runtime::Tracer tracer;
    obs::Registry registry(topo);
    runtime::Machine machine(topo);
    runtime::attach_tracer(machine, tracer);

    sssp::SolverOptions solver_opts;
    solver_opts.registry = &registry;
    const auto run = sssp::run_solver("delta_stepping_2d", machine, csr,
                                      spec.source, solver_opts);
    std::printf("Delta-stepping (bulk-synchronous, %llu barrier rounds, "
                "%.3f ms):\n",
                static_cast<unsigned long long>(run.telemetry.cycles),
                run.sssp.metrics.sim_time_us / 1000.0);
    std::printf("%s\n",
                tracer
                    .utilization_art(machine.num_pes(),
                                     run.sssp.metrics.sim_time_us, 64)
                    .c_str());
    tracer.write_csv("timeline_delta.csv");
    obs::write_chrome_trace("timeline_delta.json", topo, &tracer,
                            &registry);
  }

  std::printf("wrote timeline_{acic,delta}.csv (pe,start_us,end_us,kind) "
              "and timeline_{acic,delta}.json (Chrome trace events; open "
              "in https://ui.perfetto.dev)\n");
  std::printf("the stripes of '.' columns in the delta-stepping map are "
              "barrier waits; the thinning right edge of the ACIC map is "
              "the low-concurrency tail the paper describes\n");
  return 0;
}
