// Road-network scenario: the high-diameter workload from the paper's
// future-work section (§V).
//
// Road networks (GAP "Road"-style) have huge average path lengths, so a
// bulk-synchronous SSSP needs a synchronization per bucket along very
// long paths, while an asynchronous algorithm can chase a path without
// stopping.  This example builds a grid road graph with highway
// shortcuts, runs ACIC and both Δ-stepping baselines, and reports how
// many synchronizations each needed — the quantity the paper predicts
// asynchrony will save on this graph class.
//
//   ./examples/road_network [--scale N] [--nodes M] [--seed S]

#include <cstdio>

#include "src/stats/experiment.hpp"
#include "src/util/options.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace acic;
  const util::Options opts(argc, argv);

  stats::ExperimentSpec spec;
  spec.graph = stats::GraphKind::kRoad;
  spec.scale = static_cast<std::uint32_t>(opts.get_int("scale", 14));
  spec.nodes = static_cast<std::uint32_t>(opts.get_int("nodes", 4));
  spec.seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));

  const graph::Csr csr = stats::build_graph(spec);
  std::printf("road network: %u intersections, %zu road segments "
              "(bidirectional grid + highway shortcuts)\n",
              csr.num_vertices(), csr.num_edges());

  const auto acic_run =
      stats::run_algorithm(stats::Algo::kAcic, csr, spec);
  double max_dist = 0.0;
  for (const graph::Dist d : acic_run.sssp.dist) {
    if (d != graph::kInfDist) max_dist = std::max(max_dist, d);
  }
  std::printf("graph diameter from the depot (vertex 0): %.0f cost "
              "units — a long-haul workload\n\n", max_dist);

  const auto riken_run =
      stats::run_algorithm(stats::Algo::kRiken, csr, spec);
  const auto delta1d_run =
      stats::run_algorithm(stats::Algo::kDelta1D, csr, spec);
  const auto kla_run = stats::run_algorithm(stats::Algo::kKla, csr, spec);

  util::Table table({"algorithm", "time_ms", "sync_rounds", "updates"});
  for (const auto* run :
       {&acic_run, &riken_run, &delta1d_run, &kla_run}) {
    table.add_row(
        {stats::algo_name(run->algo),
         util::strformat("%.3f", run->sssp.metrics.sim_time_us / 1000.0),
         util::strformat("%llu",
                         static_cast<unsigned long long>(run->cycles)),
         util::strformat("%llu", static_cast<unsigned long long>(
                                     run->sssp.metrics.updates_created))});
  }
  table.print();
  std::printf("\nhigh-diameter graphs force bulk-synchronous algorithms "
              "through many more rounds (sync_rounds column); ACIC's "
              "rounds overlap with useful work instead of gating it — "
              "the paper's §V prediction for this graph class.\n");
  return 0;
}
