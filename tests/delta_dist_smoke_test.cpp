// Smoke tests for distributed Δ-stepping (1-D): exact agreement with
// Dijkstra, clean termination, hybrid Bellman-Ford switching.

#include <gtest/gtest.h>

#include "src/baselines/delta_stepping_dist.hpp"
#include "src/baselines/sequential.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/validate.hpp"

namespace {

using acic::baselines::DeltaConfig;
using acic::baselines::DeltaRunResult;
using acic::graph::Csr;
using acic::graph::GenParams;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Topology;

DeltaRunResult run_delta(const Csr& csr, acic::graph::VertexId source,
                         const Topology& topo, const DeltaConfig& config) {
  Machine machine(topo);
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), topo.num_pes());
  return acic::baselines::delta_stepping_dist(machine, csr, partition,
                                              source, config);
}

TEST(DeltaDistSmoke, TinyChain) {
  acic::graph::EdgeList list(4, {});
  list.add(0, 1, 1.0);
  list.add(1, 2, 2.0);
  list.add(2, 3, 4.0);
  const Csr csr = Csr::from_edge_list(list);
  const DeltaRunResult run = run_delta(csr, 0, Topology::tiny(2), {});
  EXPECT_FALSE(run.hit_time_limit);
  EXPECT_DOUBLE_EQ(run.sssp.dist[3], 7.0);
}

TEST(DeltaDistSmoke, MatchesDijkstraOnRandomGraph) {
  GenParams params;
  params.num_vertices = 512;
  params.num_edges = 4096;
  params.seed = 11;
  const Csr csr =
      Csr::from_edge_list(acic::graph::generate_uniform_random(params));
  const auto expected = acic::baselines::dijkstra(csr, 0);

  DeltaConfig config;
  const DeltaRunResult run = run_delta(csr, 0, Topology{1, 2, 3}, config);
  EXPECT_FALSE(run.hit_time_limit);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

TEST(DeltaDistSmoke, NonHybridAlsoMatchesDijkstra) {
  GenParams params;
  params.num_vertices = 300;
  params.num_edges = 2500;
  params.seed = 5;
  const Csr csr =
      Csr::from_edge_list(acic::graph::generate_uniform_random(params));
  const auto expected = acic::baselines::dijkstra(csr, 3);

  DeltaConfig config;
  config.hybrid_bellman_ford = false;
  const DeltaRunResult run = run_delta(csr, 3, Topology::tiny(4), config);
  EXPECT_FALSE(run.switched_to_bf);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

TEST(DeltaDistSmoke, HybridSwitchStillCorrectOnRmat) {
  GenParams params;
  params.num_vertices = 1024;
  params.num_edges = 8192;
  params.seed = 2;
  const Csr csr = Csr::from_edge_list(acic::graph::generate_rmat(params));
  const auto expected = acic::baselines::dijkstra(csr, 0);

  const DeltaRunResult run = run_delta(csr, 0, Topology{1, 2, 2}, {});
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

}  // namespace
