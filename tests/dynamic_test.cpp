// Tests for the dynamic-graph subsystem (src/dynamic/): mutation batch
// semantics, CSR invariants across epochs, serialization round trips,
// repair planning, the warm-start engine mode, and the central property
// the whole layer stands on — incremental repair produces *exactly* the
// from-scratch distances after every batch of a random mutation stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/dynamic/incremental.hpp"
#include "src/dynamic/mutation.hpp"
#include "src/dynamic/repair.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/serialize.hpp"
#include "src/graph/validate.hpp"
#include "src/runtime/machine.hpp"
#include "src/server/workload.hpp"
#include "src/util/rng.hpp"

namespace {

using acic::dynamic::ApplyStats;
using acic::dynamic::DynamicGraph;
using acic::dynamic::IncrementalConfig;
using acic::dynamic::IncrementalSssp;
using acic::dynamic::Mutation;
using acic::dynamic::MutationBatch;
using acic::dynamic::MutationKind;
using acic::dynamic::RefreshStats;
using acic::dynamic::SsspState;
using acic::graph::Csr;
using acic::graph::Dist;
using acic::graph::EdgeList;
using acic::graph::kInfDist;
using acic::graph::kInvalidVertex;
using acic::graph::Partition1D;
using acic::graph::VertexId;
using acic::graph::Weight;
using acic::runtime::Machine;
using acic::runtime::Topology;

EdgeList small_list() {
  // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (1), 2 -> 3 (1), 1 -> 3 (5)
  EdgeList list(4, {});
  list.add(0, 1, 1.0);
  list.add(0, 2, 4.0);
  list.add(1, 2, 1.0);
  list.add(2, 3, 1.0);
  list.add(1, 3, 5.0);
  return list;
}

EdgeList random_list(std::uint32_t scale, std::uint64_t seed) {
  acic::graph::GenParams params;
  params.num_vertices = VertexId{1} << scale;
  params.num_edges = params.num_vertices * 6ull;
  params.seed = seed;
  return acic::graph::generate_uniform_random(params);
}

/// Random mutation batch drawn against the graph's *current* edge set so
/// removals and reweights usually hit live edges.
MutationBatch random_batch(const DynamicGraph& graph,
                           acic::util::Xoshiro256& rng,
                           std::size_t size) {
  const Csr& csr = graph.csr();
  const VertexId n = csr.num_vertices();
  MutationBatch batch;
  for (std::size_t m = 0; m < size; ++m) {
    const double kind = rng.next_double();
    const Weight w = rng.next_double(0.5, 8.0);
    if (kind < 0.35 || csr.num_edges() == 0) {
      batch.push_back(Mutation::insert(
          static_cast<VertexId>(rng.next_below(n)),
          static_cast<VertexId>(rng.next_below(n)), w));
      continue;
    }
    const std::size_t e = rng.next_below(csr.num_edges());
    const auto row = std::upper_bound(csr.offsets().begin(),
                                      csr.offsets().end(), e);
    const auto src =
        static_cast<VertexId>(row - csr.offsets().begin()) - 1;
    const VertexId dst = csr.neighbors()[e].dst;
    if (kind < 0.65) {
      batch.push_back(Mutation::remove(src, dst));
    } else {
      batch.push_back(Mutation::reweight(src, dst, w));
    }
  }
  return batch;
}

// ---- mutation semantics ------------------------------------------------

TEST(DynamicGraph, BatchSemantics) {
  DynamicGraph graph(small_list());
  EXPECT_EQ(graph.epoch(), 0u);
  EXPECT_EQ(graph.num_edges(), 5u);

  MutationBatch batch;
  batch.push_back(Mutation::insert(3, 0, 2.0));    // new edge
  batch.push_back(Mutation::insert(0, 1, 9.0));    // upsert -> reweight
  batch.push_back(Mutation::remove(1, 3));         // live removal
  batch.push_back(Mutation::remove(3, 1));         // absent -> rejected
  batch.push_back(Mutation::reweight(2, 0, 1.0));  // absent -> rejected
  batch.push_back(Mutation::insert(1, 1, 1.0));    // self -> rejected
  const ApplyStats stats = graph.apply(batch);

  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.reweighted, 1u);
  EXPECT_EQ(stats.removed, 1u);
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(graph.epoch(), 1u);
  EXPECT_EQ(graph.num_edges(), 5u);  // +1 insert, -1 remove

  Weight w = 0.0;
  EXPECT_TRUE(graph.edge_weight(3, 0, &w));
  EXPECT_EQ(w, 2.0);
  EXPECT_TRUE(graph.edge_weight(0, 1, &w));
  EXPECT_EQ(w, 9.0);
  EXPECT_FALSE(graph.edge_weight(1, 3, nullptr));

  // Timestamps are monotone and unique across the applied log.
  ASSERT_EQ(graph.log().size(), 3u);
  for (std::size_t i = 1; i < graph.log().size(); ++i) {
    EXPECT_GT(graph.log()[i].timestamp, graph.log()[i - 1].timestamp);
  }
}

TEST(DynamicGraph, LastWriterWinsWithinBatch) {
  DynamicGraph graph(small_list());
  MutationBatch batch;
  batch.push_back(Mutation::reweight(0, 1, 7.0));
  batch.push_back(Mutation::remove(0, 1));  // supersedes the reweight
  const ApplyStats stats = graph.apply(batch);
  EXPECT_EQ(stats.removed, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_FALSE(graph.edge_weight(0, 1, nullptr));
}

TEST(DynamicGraph, EmptyBatchStillAdvancesEpoch) {
  DynamicGraph graph(small_list());
  graph.apply({});
  EXPECT_EQ(graph.epoch(), 1u);
  EXPECT_TRUE(graph.log().empty());
}

TEST(DynamicGraph, SnapshotsPinTheirEpoch) {
  DynamicGraph graph(small_list());
  const auto before = graph.snapshot_ptr();
  graph.apply({Mutation::remove(0, 1)});
  EXPECT_EQ(before->epoch, 0u);
  EXPECT_EQ(before->csr.num_edges(), 5u);   // old epoch intact
  EXPECT_EQ(graph.num_edges(), 4u);
  // Reverse CSR tracks the forward one on both snapshots.
  EXPECT_EQ(before->reverse.num_edges(), 5u);
  EXPECT_EQ(graph.snapshot().reverse.num_edges(), 4u);
}

// ---- validate_csr (satellite a) ----------------------------------------

TEST(ValidateCsr, AcceptsBuilderOutputAndMutatedEpochs) {
  DynamicGraph graph(random_list(8, 11));
  acic::util::Xoshiro256 rng(5);
  for (int epoch = 0; epoch < 6; ++epoch) {
    graph.apply(random_batch(graph, rng, 16));
    const auto fwd =
        acic::graph::validate_csr(graph.csr(), /*require_simple=*/true);
    EXPECT_TRUE(fwd.ok) << fwd.error;
    const auto rev = acic::graph::validate_csr(graph.snapshot().reverse,
                                               /*require_simple=*/true);
    EXPECT_TRUE(rev.ok) << rev.error;
  }
}

TEST(ValidateCsr, RejectsBrokenInvariants) {
  // Hand-build a CSR with an unsorted row via from_parts' release-mode
  // path is UB by contract, so break invariants through the EdgeList
  // instead: duplicates violate require_simple only.
  EdgeList list(3, {});
  list.add(0, 1, 2.0);
  list.add(0, 1, 3.0);
  list.add(1, 2, 1.0);
  const Csr csr = Csr::from_edge_list(list);
  EXPECT_TRUE(acic::graph::validate_csr(csr).ok);
  const auto simple = acic::graph::validate_csr(csr, true);
  EXPECT_FALSE(simple.ok);
  EXPECT_NE(simple.error.find("duplicate"), std::string::npos);

  EdgeList loop(2, {});
  loop.add(0, 0, 1.0);
  const auto self = acic::graph::validate_csr(Csr::from_edge_list(loop),
                                              true);
  EXPECT_FALSE(self.ok);
}

// ---- serialization (satellite b) ---------------------------------------

TEST(DynamicSerialize, RoundTripPreservesLogAndSnapshots) {
  const std::string path = testing::TempDir() + "dyn_roundtrip.bin";
  DynamicGraph graph(random_list(7, 21));
  acic::util::Xoshiro256 rng(9);
  graph.apply(random_batch(graph, rng, 12));
  graph.apply({});  // empty epoch must survive the round trip
  graph.apply(random_batch(graph, rng, 12));

  ASSERT_TRUE(acic::graph::save_dynamic_graph(graph, path));
  DynamicGraph loaded = acic::graph::load_dynamic_graph(path);

  EXPECT_EQ(loaded.epoch(), graph.epoch());
  ASSERT_EQ(loaded.log().size(), graph.log().size());
  for (std::size_t i = 0; i < graph.log().size(); ++i) {
    EXPECT_EQ(loaded.log()[i].timestamp, graph.log()[i].timestamp);
    EXPECT_EQ(loaded.log()[i].epoch, graph.log()[i].epoch);
    EXPECT_EQ(loaded.log()[i].kind, graph.log()[i].kind);
    EXPECT_EQ(loaded.log()[i].src, graph.log()[i].src);
    EXPECT_EQ(loaded.log()[i].dst, graph.log()[i].dst);
    EXPECT_EQ(loaded.log()[i].old_weight, graph.log()[i].old_weight);
    EXPECT_EQ(loaded.log()[i].new_weight, graph.log()[i].new_weight);
  }
  ASSERT_EQ(loaded.num_edges(), graph.num_edges());
  EXPECT_TRUE(std::ranges::equal(loaded.csr().offsets(), graph.csr().offsets()));
  for (std::size_t i = 0; i < graph.csr().neighbors().size(); ++i) {
    EXPECT_EQ(loaded.csr().neighbors()[i].dst,
              graph.csr().neighbors()[i].dst);
    EXPECT_EQ(loaded.csr().neighbors()[i].weight,
              graph.csr().neighbors()[i].weight);
  }
  std::remove(path.c_str());
}

TEST(DynamicSerialize, FrozenV1FormatStillLoadsBothWays) {
  const std::string path = testing::TempDir() + "dyn_v1_compat.bin";
  EdgeList list = random_list(6, 33);
  list.remove_self_loops();
  list.remove_duplicates();
  const Csr csr = Csr::from_edge_list(list);
  ASSERT_TRUE(acic::graph::save_csr(csr, path));

  // The original loader is unchanged.
  const Csr reloaded = acic::graph::load_csr(path);
  EXPECT_EQ(reloaded.num_edges(), csr.num_edges());
  EXPECT_TRUE(std::ranges::equal(reloaded.offsets(), csr.offsets()));

  // The dynamic loader accepts v1 as an epoch-0 dynamic graph.
  DynamicGraph dyn = acic::graph::load_dynamic_graph(path);
  EXPECT_EQ(dyn.epoch(), 0u);
  EXPECT_TRUE(dyn.log().empty());
  EXPECT_EQ(dyn.num_edges(), csr.num_edges());

  // And load_csr refuses v2 files rather than misreading them.
  const std::string v2path = testing::TempDir() + "dyn_v2_guard.bin";
  DynamicGraph graph(std::move(dyn));
  graph.apply({Mutation::insert(0, 1, 1.5)});
  ASSERT_TRUE(acic::graph::save_dynamic_graph(graph, v2path));
  EXPECT_THROW(acic::graph::load_csr(v2path), std::runtime_error);
  std::remove(path.c_str());
  std::remove(v2path.c_str());
}

// ---- repair planning ---------------------------------------------------

TEST(RepairPlan, NonTreeRemovalTouchesNothing) {
  DynamicGraph graph(small_list());
  const auto before = graph.snapshot_ptr();
  SsspState state;
  state.source = 0;
  state.epoch = 0;
  state.dist = acic::baselines::dijkstra(before->csr, 0);
  state.parent = acic::dynamic::compute_parents(*before, 0, state.dist);

  // 1 -> 3 (w=5) is not on any shortest path (dist[3] = 3 via 2).
  graph.apply({Mutation::remove(1, 3)});
  const auto plan = acic::dynamic::plan_repair(
      graph.snapshot(), state, graph.applied_since(0));
  EXPECT_TRUE(plan.touches_nothing());
}

TEST(RepairPlan, TreeRemovalInvalidatesSubtreeAndSeedsBoundary) {
  DynamicGraph graph(small_list());
  const auto before = graph.snapshot_ptr();
  SsspState state;
  state.source = 0;
  state.epoch = 0;
  state.dist = acic::baselines::dijkstra(before->csr, 0);
  state.parent = acic::dynamic::compute_parents(*before, 0, state.dist);
  ASSERT_EQ(state.parent[1], 0u);

  // 0 -> 1 is the tree edge for 1; its subtree is {1, 2, 3}.
  graph.apply({Mutation::remove(0, 1)});
  const auto plan = acic::dynamic::plan_repair(
      graph.snapshot(), state, graph.applied_since(0));
  EXPECT_EQ(plan.affected, (std::vector<VertexId>{1, 2, 3}));
  // Boundary: only 0 -> 2 (w=4) crosses into the affected region.
  ASSERT_EQ(plan.seeds.size(), 1u);
  EXPECT_EQ(plan.seeds[0].vertex, 2u);
  EXPECT_EQ(plan.seeds[0].dist, 4.0);
  EXPECT_EQ(plan.warm_dist[1], kInfDist);
  EXPECT_EQ(plan.warm_dist[0], 0.0);
}

TEST(RepairPlan, InsertSeedsImprovedHeadOnly) {
  DynamicGraph graph(small_list());
  SsspState state;
  state.source = 0;
  state.epoch = 0;
  state.dist = acic::baselines::dijkstra(graph.csr(), 0);
  state.parent =
      acic::dynamic::compute_parents(graph.snapshot(), 0, state.dist);

  // dist = {0, 1, 2, 3}.  0 -> 3 (w=1) improves 3; 3 -> 1 (w=9) improves
  // nothing.
  graph.apply({Mutation::insert(0, 3, 1.0), Mutation::insert(3, 1, 9.0)});
  const auto plan = acic::dynamic::plan_repair(
      graph.snapshot(), state, graph.applied_since(0));
  EXPECT_TRUE(plan.affected.empty());
  ASSERT_EQ(plan.seeds.size(), 1u);
  EXPECT_EQ(plan.seeds[0].vertex, 3u);
  EXPECT_EQ(plan.seeds[0].dist, 1.0);
}

TEST(RepairPlan, CollapseNetsOutInsertThenRemove) {
  DynamicGraph graph(small_list());
  graph.apply({Mutation::insert(3, 0, 2.0)});
  graph.apply({Mutation::reweight(3, 0, 6.0)});
  graph.apply({Mutation::remove(3, 0)});
  const auto span = graph.applied_since(0);
  const auto deltas =
      acic::dynamic::collapse_mutations(span.data(),
                                        span.data() + span.size());
  EXPECT_TRUE(deltas.empty());  // inserted then removed: no net change
}

// ---- warm-start engine mode --------------------------------------------

TEST(WarmEngine, EmptySeedsQuiesceWithWarmDistances) {
  const Csr csr = Csr::from_edge_list(small_list());
  const std::vector<Dist> warm = acic::baselines::dijkstra(csr, 0);
  Machine machine(Topology::tiny(2));
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 2);
  acic::core::AcicEngineOptions options;
  options.warm_dist = &warm;
  acic::core::AcicEngine engine(machine, csr, partition, 0, {},
                                std::move(options));
  machine.run();
  ASSERT_TRUE(engine.complete());
  const auto result = engine.collect();
  EXPECT_EQ(result.sssp.dist, warm);
  EXPECT_EQ(result.lifecycle.created, 0u);
}

TEST(WarmEngine, SeedsRepairExactly) {
  // Remove the tree edge 0 -> 1 and drive the warm engine with the
  // planner's output; it must land on the new graph's exact distances.
  DynamicGraph graph(small_list());
  const auto before = graph.snapshot_ptr();
  SsspState state;
  state.source = 0;
  state.epoch = 0;
  state.dist = acic::baselines::dijkstra(before->csr, 0);
  state.parent = acic::dynamic::compute_parents(*before, 0, state.dist);
  graph.apply({Mutation::remove(0, 1)});
  const auto plan = acic::dynamic::plan_repair(
      graph.snapshot(), state, graph.applied_since(0));

  Machine machine(Topology::tiny(2));
  const Partition1D partition =
      Partition1D::block(graph.num_vertices(), 2);
  acic::core::AcicEngineOptions options;
  options.warm_dist = &plan.warm_dist;
  options.seeds = plan.seeds;
  acic::core::AcicEngine engine(machine, graph.csr(), partition, 0, {},
                                std::move(options));
  machine.run();
  ASSERT_TRUE(engine.complete());
  EXPECT_EQ(engine.collect().sssp.dist,
            acic::baselines::dijkstra(graph.csr(), 0));
}

// ---- the central property: incremental == from-scratch -----------------

struct StreamCase {
  std::uint32_t scale;
  std::uint64_t seed;
  unsigned threads;
};

class IncrementalEqualsScratch
    : public ::testing::TestWithParam<StreamCase> {};

TEST_P(IncrementalEqualsScratch, ElementwiseAfterEveryBatch) {
  const StreamCase param = GetParam();
  DynamicGraph graph(random_list(param.scale, param.seed));
  IncrementalConfig config;
  config.topology = Topology::tiny(4);
  config.threads = param.threads;
  IncrementalSssp solver(graph, /*source=*/0, config);

  acic::util::Xoshiro256 rng(param.seed * 31 + 7);
  for (int epoch = 1; epoch <= 8; ++epoch) {
    graph.apply(random_batch(graph, rng, 10));
    const RefreshStats stats = solver.refresh();
    EXPECT_EQ(stats.to_epoch, static_cast<std::uint64_t>(epoch));

    const std::vector<Dist> truth =
        acic::baselines::dijkstra(graph.csr(), 0);
    ASSERT_EQ(solver.state().dist, truth)
        << "divergence at epoch " << epoch << " (seed " << param.seed
        << ", scale " << param.scale << ", threads " << param.threads
        << ")";

    std::string error;
    EXPECT_TRUE(acic::dynamic::state_is_consistent(graph.snapshot(),
                                                   solver.state(), &error))
        << error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, IncrementalEqualsScratch,
    ::testing::Values(StreamCase{6, 1, 1}, StreamCase{6, 2, 1},
                      StreamCase{7, 3, 1}, StreamCase{7, 4, 4},
                      StreamCase{8, 5, 1}, StreamCase{8, 6, 4}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return "scale" + std::to_string(info.param.scale) + "seed" +
             std::to_string(info.param.seed) + "threads" +
             std::to_string(info.param.threads);
    });

/// Same stream replayed twice produces bit-identical logs, distance
/// checksums and repair decisions — the determinism the repo promises.
TEST(DynamicDeterminism, ReplayIsBitIdentical) {
  auto run_once = [] {
    DynamicGraph graph(random_list(7, 77));
    IncrementalConfig config;
    config.topology = Topology::tiny(4);
    IncrementalSssp solver(graph, 0, config);
    acic::util::Xoshiro256 rng(123);
    std::vector<std::uint64_t> timestamps;
    std::vector<std::vector<Dist>> dists;
    std::uint64_t repairs = 0;
    for (int epoch = 0; epoch < 6; ++epoch) {
      graph.apply(random_batch(graph, rng, 12));
      const RefreshStats stats = solver.refresh();
      repairs += stats.recomputed || stats.skipped ? 0 : 1;
      dists.push_back(solver.state().dist);
    }
    for (const auto& record : graph.log()) {
      timestamps.push_back(record.timestamp);
    }
    return std::make_tuple(timestamps, dists, repairs,
                           solver.total_updates_created());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
}

/// Serial and sharded event loops agree on warm runs (the parallel
/// engine's conservative windows are oblivious to warm starts).
TEST(DynamicDeterminism, WarmRunsThreadInvariant) {
  DynamicGraph graph(random_list(7, 91));
  acic::util::Xoshiro256 rng(44);
  const MutationBatch batch = random_batch(graph, rng, 20);

  auto run_with_threads = [&](unsigned threads) {
    DynamicGraph g(random_list(7, 91));
    IncrementalConfig config;
    config.topology = Topology{2, 1, 2};  // two nodes -> two shards
    config.threads = threads;
    IncrementalSssp solver(g, 0, config);
    g.apply(batch);
    solver.refresh();
    return solver.state().dist;
  };
  EXPECT_EQ(run_with_threads(1), run_with_threads(2));
}

TEST(MutationWorkload, DeterministicAndMonotone) {
  const Csr base = Csr::from_edge_list(random_list(7, 13));
  acic::server::MutationWorkloadConfig config;
  config.seed = 99;
  config.num_batches = 20;
  config.batch_size = 5;
  const auto a = acic::server::generate_mutation_stream(config, base);
  const auto b = acic::server::generate_mutation_stream(config, base);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].batch.size(), 5u);
    EXPECT_EQ(a[i].apply_us, b[i].apply_us);
    if (i > 0) EXPECT_GE(a[i].apply_us, a[i - 1].apply_us);
    for (std::size_t m = 0; m < a[i].batch.size(); ++m) {
      EXPECT_EQ(a[i].batch[m].kind, b[i].batch[m].kind);
      EXPECT_EQ(a[i].batch[m].src, b[i].batch[m].src);
      EXPECT_EQ(a[i].batch[m].dst, b[i].batch[m].dst);
      EXPECT_EQ(a[i].batch[m].weight, b[i].batch[m].weight);
    }
  }
}

}  // namespace
