// Determinism contract of the parallel engine: Machine::set_threads and
// Machine::set_window_mode are wall-clock knobs, never results knobs.
// Every registered solver must produce bit-identical distances,
// simulated times, metrics and machine totals at any thread count in
// either window mode, and the conservative window merge must break
// timestamp ties exactly like the serial event queue.  The ParallelWindow
// suite attacks the adaptive widening rule directly: a cross-node send
// landing exactly on the widened boundary, sparse traffic where adaptive
// must strictly reduce window count, and a steal-heavy skewed topology.
// The graph builders carry the same contract for their thread parameter.

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/csr.hpp"
#include "src/graph/generators.hpp"
#include "src/runtime/machine.hpp"
#include "src/runtime/speculation.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::graph::Csr;
using acic::graph::Edge;
using acic::graph::EdgeList;
using acic::graph::GenParams;
using acic::runtime::EngineMode;
using acic::runtime::Machine;
using acic::runtime::Pe;
using acic::runtime::PeId;
using acic::runtime::RunStats;
using acic::runtime::Topology;
using acic::runtime::WindowMode;

/// Host-side diagnostics that legitimately vary with the engine
/// configuration (never part of the bit-identical contract).
struct Diag {
  std::uint64_t windows = 0;
  std::uint64_t steals = 0;
  unsigned threads_used = 0;
  std::uint64_t spec_rollbacks = 0;
  std::uint64_t spec_commits = 0;
  std::uint64_t spec_events = 0;
  std::uint64_t spec_replayed = 0;
  std::uint64_t ckpt_bytes = 0;
};

/// Everything a run exposes that must be independent of the host
/// thread count.
struct Observed {
  std::vector<acic::graph::Dist> dist;
  double sim_time_us = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t updates_created = 0;
  std::uint64_t updates_processed = 0;
  std::uint64_t updates_rejected = 0;
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  std::uint64_t machine_events = 0;
  std::uint64_t machine_messages = 0;
  std::uint64_t machine_bytes = 0;
  std::uint64_t tasks = 0;
  std::vector<double> pe_busy_us;
};

Observed run_solver_observed(const std::string& solver,
                             const acic::stats::ExperimentSpec& spec,
                             const Csr& csr, unsigned threads,
                             WindowMode mode = WindowMode::kAdaptive,
                             Diag* diag = nullptr,
                             EngineMode emode = EngineMode::kConservative) {
  Machine machine(spec.topology());
  machine.set_threads(threads);
  machine.set_window_mode(mode);
  acic::sssp::SolverOptions opts;
  opts.engine_mode = emode;
  const acic::sssp::SolverRun run =
      acic::sssp::run_solver(solver, machine, csr, spec.source, opts);
  Observed o;
  o.dist = run.sssp.dist;
  o.sim_time_us = run.sssp.metrics.sim_time_us;
  o.cycles = run.telemetry.cycles;
  o.updates_created = run.sssp.metrics.updates_created;
  o.updates_processed = run.sssp.metrics.updates_processed;
  o.updates_rejected = run.sssp.metrics.updates_rejected;
  o.network_messages = run.sssp.metrics.network_messages;
  o.network_bytes = run.sssp.metrics.network_bytes;
  o.machine_events = machine.total_events_processed();
  o.machine_messages = machine.total_messages_sent();
  o.machine_bytes = machine.total_bytes_sent();
  o.pe_busy_us = run.telemetry.pe_busy_us;
  for (PeId p = 0; p < machine.num_pes(); ++p) {
    o.tasks += machine.pe_tasks_run(p);
  }
  if (diag != nullptr) {
    diag->windows = machine.total_windows();
    diag->steals = machine.total_shard_steals();
    diag->threads_used = machine.last_threads_used();
    diag->spec_rollbacks = machine.total_speculation_rollbacks();
    diag->spec_commits = machine.total_speculation_commits();
    diag->spec_events = machine.total_speculated_events();
    diag->spec_replayed = machine.total_replayed_events();
    diag->ckpt_bytes = machine.total_checkpoint_bytes();
  }
  return o;
}

void expect_identical(const Observed& a, const Observed& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.sim_time_us, b.sim_time_us);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.updates_created, b.updates_created);
  EXPECT_EQ(a.updates_processed, b.updates_processed);
  EXPECT_EQ(a.updates_rejected, b.updates_rejected);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.machine_events, b.machine_events);
  EXPECT_EQ(a.machine_messages, b.machine_messages);
  EXPECT_EQ(a.machine_bytes, b.machine_bytes);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.pe_busy_us, b.pe_busy_us);
}

TEST(ParallelEngine, EverySolverMatchesSerialAtAnyThreadCount) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    acic::stats::ExperimentSpec spec;
    spec.graph = acic::stats::GraphKind::kRandom;
    spec.scale = 10;
    spec.edge_factor = 8;
    spec.seed = seed;
    spec.nodes = 4;  // 4 nodes x 8 PEs: real cross-node traffic
    const Csr csr = acic::stats::build_graph(spec);
    for (const std::string& solver : acic::sssp::solver_names()) {
      const Observed serial = run_solver_observed(solver, spec, csr, 1);
      for (const unsigned threads : {2u, 4u}) {
        Diag fixed_diag;
        Diag adaptive_diag;
        for (const WindowMode mode :
             {WindowMode::kFixed, WindowMode::kAdaptive}) {
          const bool is_fixed = mode == WindowMode::kFixed;
          const Observed parallel = run_solver_observed(
              solver, spec, csr, threads, mode,
              is_fixed ? &fixed_diag : &adaptive_diag);
          expect_identical(serial, parallel,
                           solver + " seed=" + std::to_string(seed) +
                               " threads=" + std::to_string(threads) +
                               (is_fixed ? " fixed" : " adaptive"));
        }
        // Adaptive widening can only merge fixed windows, never split
        // them, so it never runs more of them.
        EXPECT_LE(adaptive_diag.windows, fixed_diag.windows)
            << solver << " seed=" << seed << " threads=" << threads;
        // The sequential baseline never drives the machine, so the
        // parallel engine (and its thread clamp) only engages for the
        // event-driven solvers — visible as a nonzero window count.
        if (fixed_diag.windows > 0) {
          EXPECT_EQ(fixed_diag.threads_used, threads);
          EXPECT_EQ(adaptive_diag.threads_used, threads);
        } else {
          EXPECT_EQ(solver, "sequential");
        }
      }
    }
  }
}

// Adversarial timestamp ties: six senders on three different nodes all
// deliver to PE 0 at the exact same simulated instant.  The serial
// engine breaks the tie by the composite (node, counter) sequence key;
// the window merge must reproduce that order exactly, not just some
// deterministic order of its own.
TEST(ParallelEngine, WindowMergeBreaksTimestampTiesLikeSerial) {
  auto run_once = [](unsigned threads, WindowMode mode) {
    Machine machine(Topology{4, 1, 2});
    machine.set_threads(threads);
    machine.set_window_mode(mode);
    std::vector<int> order;
    // PEs 2..7 live on nodes 1..3; node 0 only receives.
    for (PeId p = 2; p < 8; ++p) {
      machine.schedule_at(0.0, p, [&order, p](Pe& pe) {
        pe.send(0, 64, [&order, p](Pe&) {
          order.push_back(static_cast<int>(p));
        });
        pe.send(0, 64, [&order, p](Pe&) {
          order.push_back(100 + static_cast<int>(p));
        });
      });
    }
    const RunStats stats = machine.run();
    return std::pair(order, stats.end_time_us);
  };

  const auto [serial_order, serial_end] =
      run_once(1, WindowMode::kAdaptive);
  EXPECT_EQ(serial_order.size(), 12u);
  for (const unsigned threads : {2u, 4u}) {
    for (const WindowMode mode :
         {WindowMode::kFixed, WindowMode::kAdaptive}) {
      SCOPED_TRACE(threads);
      SCOPED_TRACE(mode == WindowMode::kFixed ? "fixed" : "adaptive");
      const auto [order, end] = run_once(threads, mode);
      EXPECT_EQ(order, serial_order);
      EXPECT_EQ(end, serial_end);
    }
  }
}

// --- Adaptive-window suite -------------------------------------------

// A cross-node send whose arrival lands *exactly* on the widened window
// boundary.  Two nodes, one PE each, inter-node latency 4, zero
// overheads and zero-byte messages so arrivals sit at send_time + 4
// exactly.  PE 0 runs a(t=0) which mails node 1; node 1's handler at
// t=4 mails a response back that lands at t=8 — exactly the feedback
// bound a(0)'s own send imposes on shard 0 (arrival 4 + lookahead 4).
// The correct order interleaves the response before c(t=9).  An engine
// that widened shard 0's window by the static rule alone (other shards'
// minima only) would run c — and anything after it — before the
// response could land.
TEST(ParallelWindow, CrossNodeArrivalExactlyOnWidenedBoundary) {
  acic::runtime::NetworkModel net;
  net.send_overhead_us = 0.0;
  net.recv_overhead_us = 0.0;
  net.latency_inter_node_us = 4.0;

  // The response task runs on PE 0, so it can record into the same
  // vector as the locally scheduled probes without a cross-shard write.
  auto run_once = [&net](unsigned threads, WindowMode mode) {
    Machine machine(Topology{2, 1, 1}, net);
    machine.set_threads(threads);
    machine.set_window_mode(mode);
    std::vector<char> order;
    machine.schedule_at(0.0, 0, [&order](Pe& pe) {
      order.push_back('a');
      pe.send(1, 0, [&order](Pe& peer) {
        peer.send(0, 0, [&order](Pe&) { order.push_back('r'); });
      });
    });
    machine.schedule_at(6.0, 0, [&order](Pe&) { order.push_back('b'); });
    machine.schedule_at(9.0, 0, [&order](Pe&) { order.push_back('c'); });
    const RunStats stats = machine.run();
    return std::tuple(order, stats.end_time_us, machine.total_windows());
  };

  const auto [serial_order, serial_end, serial_windows] =
      run_once(1, WindowMode::kAdaptive);
  EXPECT_EQ(std::string(serial_order.begin(), serial_order.end()), "abrc");
  EXPECT_EQ(serial_windows, 0u);  // serial loop runs no windows
  for (const WindowMode mode :
       {WindowMode::kFixed, WindowMode::kAdaptive}) {
    SCOPED_TRACE(mode == WindowMode::kFixed ? "fixed" : "adaptive");
    const auto [order, end, windows] = run_once(2, mode);
    EXPECT_EQ(order, serial_order);
    EXPECT_EQ(end, serial_end);
    EXPECT_GT(windows, 0u);
  }
}

// Sparse cross-node traffic is where adaptive widening pays: node 0
// carries a chain of local events spaced 10 simulated-us apart (far
// wider than the 3 us lookahead) and node 1 stays silent.  Fixed mode
// needs one window per event; adaptive covers the whole run in a
// single window because no other shard can ever interfere.
TEST(ParallelWindow, AdaptiveStrictlyReducesWindowsOnSparseTraffic) {
  auto run_once = [](WindowMode mode) {
    Machine machine(Topology{2, 1, 1});
    machine.set_threads(2);
    machine.set_window_mode(mode);
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
      machine.schedule_at(10.0 * i, 0,
                          [&order, i](Pe&) { order.push_back(i); });
    }
    const RunStats stats = machine.run();
    EXPECT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
    return std::tuple(stats.end_time_us, stats.windows,
                      stats.window_merges);
  };

  const auto [fixed_end, fixed_windows, fixed_merges] =
      run_once(WindowMode::kFixed);
  const auto [adaptive_end, adaptive_windows, adaptive_merges] =
      run_once(WindowMode::kAdaptive);
  EXPECT_EQ(fixed_end, adaptive_end);
  EXPECT_EQ(fixed_windows, 10u);    // one 3 us window per event
  EXPECT_EQ(adaptive_windows, 1u);  // silent peer => unbounded widening
  EXPECT_LT(adaptive_windows, fixed_windows);
  // No cross-node sends anywhere: every merge phase must be skipped.
  EXPECT_EQ(fixed_merges, 0u);
  EXPECT_EQ(adaptive_merges, 0u);
}

// Steal-heavy shape: many more nodes than threads with a skewed R-MAT
// degree distribution, so per-shard work within a window is uneven and
// threads whose home ranges drain early must steal.  Results must stay
// bit-identical to serial in both modes, and the clamp must report the
// requested thread count (12 nodes >= 4 threads).
TEST(ParallelWindow, StealHeavySkewedTopologyMatchesSerial) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 9;
  spec.edge_factor = 8;
  spec.seed = 5;
  spec.nodes = 12;
  const Csr csr = acic::stats::build_graph(spec);
  const Observed serial = run_solver_observed("acic", spec, csr, 1);
  for (const WindowMode mode :
       {WindowMode::kFixed, WindowMode::kAdaptive}) {
    Diag diag;
    const Observed parallel =
        run_solver_observed("acic", spec, csr, 4, mode, &diag);
    expect_identical(serial, parallel,
                     mode == WindowMode::kFixed ? "fixed" : "adaptive");
    EXPECT_EQ(diag.threads_used, 4u);
  }
}

// The engine clamps nthreads to the node count; RunStats must report
// the effective number, not the requested one.
TEST(ParallelWindow, ThreadCountClampedToNodeCount) {
  Machine machine(Topology{4, 1, 2});
  machine.set_threads(8);
  int ran = 0;
  machine.schedule_at(0.0, 0, [&ran](Pe&) { ++ran; });
  const RunStats stats = machine.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(stats.threads_used, 4u);
  EXPECT_EQ(machine.last_threads_used(), 4u);
}

// --- Optimistic-engine (Time-Warp-lite) suite ------------------------
//
// EngineMode::kOptimistic lets each shard execute past its conservative
// window limit against a checkpoint, rolling back and replaying when a
// cross-node message lands below its speculative execution point.  The
// contract is the same as set_threads/set_window_mode: a wall-clock
// knob, never a results knob — every committed schedule must be
// bit-identical to the conservative (and serial) one.  These tests
// force the rollback machinery through its sharpest cases: a straggler
// one tick below the speculative execution point, a straggler tied
// with a speculated event, one straggler source rolling several shards
// back at the same barrier, and rollbacks under work stealing.

/// Test-side application state for raw-machine adversarial runs: a
/// per-node record of executed payload values.  Speculation only
/// engages when every registered Snapshotable covers the state tasks
/// mutate, so the recorder checkpoints/restores its own vectors — a
/// rolled-back speculative execution must leave no trace in them, or
/// the final record shows duplicates.
class RecordingState : public acic::runtime::Snapshotable {
 public:
  explicit RecordingState(Machine& machine) : machine_(machine) {
    per_node_.resize(machine.topology().nodes);
    ckpt_.resize(machine.topology().nodes);
    machine_.add_snapshotable(this);
  }
  ~RecordingState() override { machine_.remove_snapshotable(this); }

  /// Appends `value` to the executing PE's node-local record.
  void record(const Pe& pe, int value) {
    per_node_[machine_.topology().node_of(pe.id())].push_back(value);
  }
  const std::vector<int>& node_record(std::uint32_t n) const {
    return per_node_[n];
  }

  std::size_t speculative_checkpoint(std::uint32_t n) override {
    ckpt_[n] = per_node_[n];
    return ckpt_[n].size() * sizeof(int);
  }
  void speculative_restore(std::uint32_t n) override {
    per_node_[n] = ckpt_[n];
    ckpt_[n].clear();
  }
  void speculative_commit(std::uint32_t n) override { ckpt_[n].clear(); }

 private:
  Machine& machine_;
  std::vector<std::vector<int>> per_node_;
  std::vector<std::vector<int>> ckpt_;
};

/// Zero-overhead network with a 4 us inter-node wire: arrivals land at
/// send time + 4 exactly, and the engine's lookahead (and thus the
/// adaptive window limit off a t=0 minimum) is exactly 4.
acic::runtime::NetworkModel wire4() {
  acic::runtime::NetworkModel net;
  net.send_overhead_us = 0.0;
  net.recv_overhead_us = 0.0;
  net.latency_inter_node_us = 4.0;
  return net;
}

// One straggler, one tick below the speculative execution point.  Node
// 0's conservative window off the t=0 minima is [0, 4); it speculates
// the t=5 and t=6 events.  Node 1's t=0 handler mails node 0 with a
// t=4 arrival — below the speculative execution point (t=6), so the
// barrier must roll node 0 back, deliver the straggler, and replay
// t=5/t=6 after it.  An engine that kept the speculation would record
// 11 and 12 before 99 (or, without state restore, record them twice).
TEST(OptimisticEngine, StragglerOneTickBelowSpeculationPointRollsBack) {
  auto run_once = [](unsigned threads, EngineMode emode, Diag* diag) {
    Machine machine(Topology{2, 1, 1}, wire4());
    machine.set_threads(threads);
    machine.set_engine_mode(emode);
    RecordingState rec(machine);
    machine.schedule_at(0.0, 0, [&rec](Pe& pe) { rec.record(pe, 10); });
    machine.schedule_at(5.0, 0, [&rec](Pe& pe) { rec.record(pe, 11); });
    machine.schedule_at(6.0, 0, [&rec](Pe& pe) { rec.record(pe, 12); });
    machine.schedule_at(0.0, 1, [&rec](Pe& pe) {
      rec.record(pe, 20);
      pe.send(0, 0, [&rec](Pe& peer) { rec.record(peer, 99); });
    });
    const RunStats stats = machine.run();
    if (diag != nullptr) {
      diag->spec_rollbacks = stats.speculation_rollbacks;
      diag->spec_events = stats.speculated_events;
      diag->spec_replayed = stats.replayed_events;
      diag->ckpt_bytes = stats.checkpoint_bytes;
    }
    return std::pair(std::vector<std::vector<int>>{rec.node_record(0),
                                                   rec.node_record(1)},
                     stats.end_time_us);
  };

  const auto [serial_rec, serial_end] =
      run_once(1, EngineMode::kConservative, nullptr);
  EXPECT_EQ(serial_rec[0], (std::vector<int>{10, 99, 11, 12}));
  EXPECT_EQ(serial_rec[1], (std::vector<int>{20}));

  const auto [conservative_rec, conservative_end] =
      run_once(2, EngineMode::kConservative, nullptr);
  EXPECT_EQ(conservative_rec, serial_rec);
  EXPECT_EQ(conservative_end, serial_end);

  Diag diag;
  const auto [optimistic_rec, optimistic_end] =
      run_once(2, EngineMode::kOptimistic, &diag);
  EXPECT_EQ(optimistic_rec, serial_rec);
  EXPECT_EQ(optimistic_end, serial_end);
  // The schedule above *forces* the speculation to be wrong: if no
  // rollback happened, either nothing was speculated (the mode never
  // engaged) or the straggler was dropped.
  EXPECT_GE(diag.spec_events, 2u);
  EXPECT_GE(diag.spec_rollbacks, 1u);
  EXPECT_GE(diag.spec_replayed, 2u);
  EXPECT_GT(diag.ckpt_bytes, 0u);
}

// The tie case: the straggler's arrival carries the *same* timestamp
// as a speculated event.  The composite key breaks the tie by sequence
// (the node-0 local event was created by node 0, the mail by node 1,
// and node 0's seq namespace sorts first), so the speculated event
// legitimately precedes the arrival and the speculation may commit —
// but whether it commits or rolls back, the record must match serial
// exactly, with no duplicated or reordered entries.
TEST(OptimisticEngine, StragglerTiedWithSpeculatedEventMatchesSerial) {
  auto run_once = [](unsigned threads, EngineMode emode) {
    Machine machine(Topology{2, 1, 1}, wire4());
    machine.set_threads(threads);
    machine.set_engine_mode(emode);
    RecordingState rec(machine);
    machine.schedule_at(0.0, 0, [&rec](Pe& pe) { rec.record(pe, 10); });
    // Speculated (window limit is 4, and 4 is not < 4) and tied with
    // the arrival below.
    machine.schedule_at(4.0, 0, [&rec](Pe& pe) { rec.record(pe, 11); });
    machine.schedule_at(0.0, 1, [&rec](Pe& pe) {
      rec.record(pe, 20);
      pe.send(0, 0, [&rec](Pe& peer) { rec.record(peer, 99); });
    });
    const RunStats stats = machine.run();
    return std::pair(std::vector<std::vector<int>>{rec.node_record(0),
                                                   rec.node_record(1)},
                     stats.end_time_us);
  };

  const auto serial = run_once(1, EngineMode::kConservative);
  EXPECT_EQ(serial.first[0], (std::vector<int>{10, 11, 99}));
  for (const unsigned threads : {2u}) {
    for (const EngineMode emode :
         {EngineMode::kConservative, EngineMode::kOptimistic}) {
      SCOPED_TRACE(emode == EngineMode::kOptimistic ? "optimistic"
                                                    : "conservative");
      EXPECT_EQ(run_once(threads, emode), serial);
    }
  }
}

// One straggler source, several victims: node 2's t=0 handler mails
// nodes 0 and 1, both of which have speculated past the t=4 arrival.
// Both must roll back at the same barrier (a cascade across shards),
// and both replays must interleave the straggler correctly.
TEST(OptimisticEngine, OneStragglerRollsBackMultipleShards) {
  auto run_once = [](unsigned threads, EngineMode emode, Diag* diag) {
    Machine machine(Topology{3, 1, 1}, wire4());
    machine.set_threads(threads);
    machine.set_engine_mode(emode);
    RecordingState rec(machine);
    for (PeId p = 0; p < 2; ++p) {
      const int base = 10 * (1 + static_cast<int>(p));
      machine.schedule_at(0.0, p, [&rec, base](Pe& pe) {
        rec.record(pe, base);
      });
      machine.schedule_at(5.0, p, [&rec, base](Pe& pe) {
        rec.record(pe, base + 1);
      });
      machine.schedule_at(6.0, p, [&rec, base](Pe& pe) {
        rec.record(pe, base + 2);
      });
    }
    machine.schedule_at(0.0, 2, [&rec](Pe& pe) {
      rec.record(pe, 30);
      pe.send(0, 0, [&rec](Pe& peer) { rec.record(peer, 98); });
      pe.send(1, 0, [&rec](Pe& peer) { rec.record(peer, 99); });
    });
    const RunStats stats = machine.run();
    if (diag != nullptr) {
      diag->spec_rollbacks = stats.speculation_rollbacks;
      diag->spec_events = stats.speculated_events;
    }
    return std::vector<std::vector<int>>{
        rec.node_record(0), rec.node_record(1), rec.node_record(2)};
  };

  const auto serial = run_once(1, EngineMode::kConservative, nullptr);
  EXPECT_EQ(serial[0], (std::vector<int>{10, 98, 11, 12}));
  EXPECT_EQ(serial[1], (std::vector<int>{20, 99, 21, 22}));
  EXPECT_EQ(serial[2], (std::vector<int>{30}));

  for (const unsigned threads : {2u, 3u}) {
    SCOPED_TRACE(threads);
    Diag diag;
    EXPECT_EQ(run_once(threads, EngineMode::kOptimistic, &diag), serial);
    // Both victim shards speculated past t=4 and must have rolled back.
    EXPECT_GE(diag.spec_rollbacks, 2u);
    EXPECT_GE(diag.spec_events, 4u);
  }
}

// Rollbacks under work stealing: the steal-heavy skewed topology from
// the ParallelWindow suite, run optimistically.  Which thread executes
// (or re-executes) a shard must not leak into the committed schedule.
TEST(OptimisticEngine, RollbackUnderStealingMatchesSerial) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 9;
  spec.edge_factor = 8;
  spec.seed = 5;
  spec.nodes = 12;
  const Csr csr = acic::stats::build_graph(spec);
  const Observed serial = run_solver_observed("acic", spec, csr, 1);
  for (const WindowMode mode :
       {WindowMode::kFixed, WindowMode::kAdaptive}) {
    Diag diag;
    const Observed parallel =
        run_solver_observed("acic", spec, csr, 4, mode, &diag,
                            EngineMode::kOptimistic);
    expect_identical(serial, parallel,
                     mode == WindowMode::kFixed ? "fixed" : "adaptive");
    EXPECT_EQ(diag.threads_used, 4u);
    // Real solver, real traffic: speculation must have engaged and some
    // of it must have been wrong.
    EXPECT_GT(diag.spec_events, 0u);
    EXPECT_GT(diag.spec_rollbacks, 0u);
    EXPECT_GT(diag.spec_commits, 0u);
  }
}

// The registry-wide sweep: every solver, threads {1, 2, 4}, both engine
// modes, against the serial schedule.  delta_stepping_2d registers an
// unsupported hook (its state owner and edge relaxers live in different
// grid cells), so its optimistic runs must downgrade — visibly, as zero
// speculated events — and every supported solver must actually
// speculate somewhere in the sweep.
TEST(OptimisticEngine, EverySolverMatchesSerialInBothEngineModes) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 10;
  spec.edge_factor = 8;
  spec.seed = 1;
  spec.nodes = 4;
  const Csr csr = acic::stats::build_graph(spec);
  for (const std::string& solver : acic::sssp::solver_names()) {
    const Observed serial = run_solver_observed(solver, spec, csr, 1);
    std::uint64_t spec_events = 0;
    for (const unsigned threads : {2u, 4u}) {
      for (const EngineMode emode :
           {EngineMode::kConservative, EngineMode::kOptimistic}) {
        const bool optimistic = emode == EngineMode::kOptimistic;
        Diag diag;
        const Observed parallel =
            run_solver_observed(solver, spec, csr, threads,
                                WindowMode::kAdaptive, &diag, emode);
        expect_identical(serial, parallel,
                         solver + " threads=" + std::to_string(threads) +
                             (optimistic ? " optimistic" : " conservative"));
        if (!optimistic) {
          // Conservative runs never speculate, whatever is registered.
          EXPECT_EQ(diag.spec_events, 0u) << solver;
          EXPECT_EQ(diag.ckpt_bytes, 0u) << solver;
        }
        spec_events += diag.spec_events;
      }
    }
    if (solver == "sequential" || solver == "delta_stepping_2d") {
      EXPECT_EQ(spec_events, 0u) << solver;
    } else {
      EXPECT_GT(spec_events, 0u) << solver;
    }
  }
}

void expect_same_edges(const EdgeList& a, const EdgeList& b) {
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    const Edge& x = a.edges()[i];
    const Edge& y = b.edges()[i];
    ASSERT_EQ(x.src, y.src) << "edge " << i;
    ASSERT_EQ(x.dst, y.dst) << "edge " << i;
    ASSERT_EQ(x.weight, y.weight) << "edge " << i;
  }
}

TEST(ParallelEngine, GeneratorsIdenticalAtAnyThreadCount) {
  GenParams params;
  params.num_vertices = 1u << 12;
  // Several chunks plus a ragged tail, so the chunk seams are exercised.
  params.num_edges = (1ull << 17) + 12345;
  params.seed = 7;

  using Generator = EdgeList (*)(const GenParams&);
  const Generator generators[] = {
      [](const GenParams& p) { return acic::graph::generate_rmat(p); },
      [](const GenParams& p) {
        return acic::graph::generate_uniform_random(p);
      },
      [](const GenParams& p) {
        return acic::graph::generate_erdos_renyi(p);
      },
  };
  for (const Generator gen : generators) {
    GenParams serial = params;
    serial.threads = 1;
    const EdgeList reference = gen(serial);
    for (const unsigned threads : {2u, 4u}) {
      GenParams parallel = params;
      parallel.threads = threads;
      expect_same_edges(reference, gen(parallel));
    }
  }
}

TEST(ParallelEngine, CsrBuildIdenticalAtAnyThreadCount) {
  GenParams params;
  params.num_vertices = 1u << 12;
  params.num_edges = (1ull << 17) + 999;
  params.seed = 11;
  const EdgeList list = acic::graph::generate_rmat(params);

  const Csr serial = Csr::from_edge_list(list, 1);
  for (const unsigned threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    const Csr parallel = Csr::from_edge_list(list, threads);
    EXPECT_TRUE(std::ranges::equal(serial.offsets(), parallel.offsets()));
    ASSERT_EQ(serial.neighbors().size(), parallel.neighbors().size());
    for (std::size_t i = 0; i < serial.neighbors().size(); ++i) {
      ASSERT_EQ(serial.neighbors()[i].dst, parallel.neighbors()[i].dst)
          << "slot " << i;
      ASSERT_EQ(serial.neighbors()[i].weight,
                parallel.neighbors()[i].weight)
          << "slot " << i;
    }
  }
}

}  // namespace
