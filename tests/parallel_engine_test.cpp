// Determinism contract of the parallel engine: Machine::set_threads is
// a wall-clock knob, never a results knob.  Every registered solver
// must produce bit-identical distances, simulated times, metrics and
// machine totals at any thread count, and the conservative window merge
// must break timestamp ties exactly like the serial event queue.  The
// graph builders carry the same contract for their thread parameter.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/csr.hpp"
#include "src/graph/generators.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::graph::Csr;
using acic::graph::Edge;
using acic::graph::EdgeList;
using acic::graph::GenParams;
using acic::runtime::Machine;
using acic::runtime::Pe;
using acic::runtime::PeId;
using acic::runtime::RunStats;
using acic::runtime::Topology;

/// Everything a run exposes that must be independent of the host
/// thread count.
struct Observed {
  std::vector<acic::graph::Dist> dist;
  double sim_time_us = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t updates_created = 0;
  std::uint64_t updates_processed = 0;
  std::uint64_t updates_rejected = 0;
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  std::uint64_t machine_events = 0;
  std::uint64_t machine_messages = 0;
  std::uint64_t machine_bytes = 0;
  std::uint64_t tasks = 0;
  std::vector<double> pe_busy_us;
};

Observed run_solver_observed(const std::string& solver,
                             const acic::stats::ExperimentSpec& spec,
                             const Csr& csr, unsigned threads) {
  Machine machine(spec.topology());
  machine.set_threads(threads);
  acic::sssp::SolverOptions opts;
  const acic::sssp::SolverRun run =
      acic::sssp::run_solver(solver, machine, csr, spec.source, opts);
  Observed o;
  o.dist = run.sssp.dist;
  o.sim_time_us = run.sssp.metrics.sim_time_us;
  o.cycles = run.telemetry.cycles;
  o.updates_created = run.sssp.metrics.updates_created;
  o.updates_processed = run.sssp.metrics.updates_processed;
  o.updates_rejected = run.sssp.metrics.updates_rejected;
  o.network_messages = run.sssp.metrics.network_messages;
  o.network_bytes = run.sssp.metrics.network_bytes;
  o.machine_events = machine.total_events_processed();
  o.machine_messages = machine.total_messages_sent();
  o.machine_bytes = machine.total_bytes_sent();
  o.pe_busy_us = run.telemetry.pe_busy_us;
  for (PeId p = 0; p < machine.num_pes(); ++p) {
    o.tasks += machine.pe_tasks_run(p);
  }
  return o;
}

void expect_identical(const Observed& a, const Observed& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.sim_time_us, b.sim_time_us);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.updates_created, b.updates_created);
  EXPECT_EQ(a.updates_processed, b.updates_processed);
  EXPECT_EQ(a.updates_rejected, b.updates_rejected);
  EXPECT_EQ(a.network_messages, b.network_messages);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_EQ(a.machine_events, b.machine_events);
  EXPECT_EQ(a.machine_messages, b.machine_messages);
  EXPECT_EQ(a.machine_bytes, b.machine_bytes);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.pe_busy_us, b.pe_busy_us);
}

TEST(ParallelEngine, EverySolverMatchesSerialAtAnyThreadCount) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    acic::stats::ExperimentSpec spec;
    spec.graph = acic::stats::GraphKind::kRandom;
    spec.scale = 10;
    spec.edge_factor = 8;
    spec.seed = seed;
    spec.nodes = 4;  // 4 nodes x 8 PEs: real cross-node traffic
    const Csr csr = acic::stats::build_graph(spec);
    for (const std::string& solver : acic::sssp::solver_names()) {
      const Observed serial = run_solver_observed(solver, spec, csr, 1);
      for (const unsigned threads : {2u, 4u}) {
        const Observed parallel =
            run_solver_observed(solver, spec, csr, threads);
        expect_identical(serial, parallel,
                         solver + " seed=" + std::to_string(seed) +
                             " threads=" + std::to_string(threads));
      }
    }
  }
}

// Adversarial timestamp ties: six senders on three different nodes all
// deliver to PE 0 at the exact same simulated instant.  The serial
// engine breaks the tie by the composite (node, counter) sequence key;
// the window merge must reproduce that order exactly, not just some
// deterministic order of its own.
TEST(ParallelEngine, WindowMergeBreaksTimestampTiesLikeSerial) {
  auto run_once = [](unsigned threads) {
    Machine machine(Topology{4, 1, 2});
    machine.set_threads(threads);
    std::vector<int> order;
    // PEs 2..7 live on nodes 1..3; node 0 only receives.
    for (PeId p = 2; p < 8; ++p) {
      machine.schedule_at(0.0, p, [&order, p](Pe& pe) {
        pe.send(0, 64, [&order, p](Pe&) {
          order.push_back(static_cast<int>(p));
        });
        pe.send(0, 64, [&order, p](Pe&) {
          order.push_back(100 + static_cast<int>(p));
        });
      });
    }
    const RunStats stats = machine.run();
    return std::pair(order, stats.end_time_us);
  };

  const auto [serial_order, serial_end] = run_once(1);
  EXPECT_EQ(serial_order.size(), 12u);
  for (const unsigned threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    const auto [order, end] = run_once(threads);
    EXPECT_EQ(order, serial_order);
    EXPECT_EQ(end, serial_end);
  }
}

void expect_same_edges(const EdgeList& a, const EdgeList& b) {
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    const Edge& x = a.edges()[i];
    const Edge& y = b.edges()[i];
    ASSERT_EQ(x.src, y.src) << "edge " << i;
    ASSERT_EQ(x.dst, y.dst) << "edge " << i;
    ASSERT_EQ(x.weight, y.weight) << "edge " << i;
  }
}

TEST(ParallelEngine, GeneratorsIdenticalAtAnyThreadCount) {
  GenParams params;
  params.num_vertices = 1u << 12;
  // Several chunks plus a ragged tail, so the chunk seams are exercised.
  params.num_edges = (1ull << 17) + 12345;
  params.seed = 7;

  using Generator = EdgeList (*)(const GenParams&);
  const Generator generators[] = {
      [](const GenParams& p) { return acic::graph::generate_rmat(p); },
      [](const GenParams& p) {
        return acic::graph::generate_uniform_random(p);
      },
      [](const GenParams& p) {
        return acic::graph::generate_erdos_renyi(p);
      },
  };
  for (const Generator gen : generators) {
    GenParams serial = params;
    serial.threads = 1;
    const EdgeList reference = gen(serial);
    for (const unsigned threads : {2u, 4u}) {
      GenParams parallel = params;
      parallel.threads = threads;
      expect_same_edges(reference, gen(parallel));
    }
  }
}

TEST(ParallelEngine, CsrBuildIdenticalAtAnyThreadCount) {
  GenParams params;
  params.num_vertices = 1u << 12;
  params.num_edges = (1ull << 17) + 999;
  params.seed = 11;
  const EdgeList list = acic::graph::generate_rmat(params);

  const Csr serial = Csr::from_edge_list(list, 1);
  for (const unsigned threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    const Csr parallel = Csr::from_edge_list(list, threads);
    EXPECT_EQ(serial.offsets(), parallel.offsets());
    ASSERT_EQ(serial.neighbors().size(), parallel.neighbors().size());
    for (std::size_t i = 0; i < serial.neighbors().size(); ++i) {
      ASSERT_EQ(serial.neighbors()[i].dst, parallel.neighbors()[i].dst)
          << "slot " << i;
      ASSERT_EQ(serial.neighbors()[i].weight,
                parallel.neighbors()[i].weight)
          << "slot " << i;
    }
  }
}

}  // namespace
