// Landmark (ALT) tier tests: bound validity against Dijkstra across
// seeds and scales, exact p2p answers (reachable and unreachable), and
// row invalidation/refresh under mutation.

#include <gtest/gtest.h>

#include <vector>

#include "src/baselines/sequential.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/graph/edge_list.hpp"
#include "src/graph/generators.hpp"
#include "src/sssp/landmarks.hpp"

namespace {

using acic::baselines::dijkstra;
using acic::dynamic::DynamicGraph;
using acic::dynamic::Mutation;
using acic::graph::Csr;
using acic::graph::Dist;
using acic::graph::EdgeList;
using acic::graph::kInfDist;
using acic::graph::VertexId;
using acic::sssp::LandmarkBounds;
using acic::sssp::LandmarkConfig;
using acic::sssp::LandmarkIndex;
using acic::sssp::P2pStats;
using acic::sssp::P2pWorkspace;

Csr random_graph(std::uint32_t scale, std::uint64_t seed,
                 std::uint64_t degree = 8) {
  acic::graph::GenParams params;
  params.num_vertices = VertexId{1} << scale;
  params.num_edges = params.num_vertices * degree;
  params.seed = seed;
  return Csr::from_edge_list(acic::graph::generate_uniform_random(params));
}

LandmarkIndex build_index(const Csr& csr, std::size_t num_landmarks = 6) {
  LandmarkConfig config;
  config.num_landmarks = num_landmarks;
  return LandmarkIndex(csr, LandmarkIndex::build_reverse(csr), config);
}

// Probe pairs spread deterministically over the vertex range.
std::vector<std::pair<VertexId, VertexId>> probe_pairs(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId i = 0; i < 24; ++i) {
    const VertexId s = (i * 37u + 11u) % n;
    const VertexId t = (i * 101u + 3u) % n;
    pairs.emplace_back(s, t);
  }
  pairs.emplace_back(0, 0);  // s == t
  return pairs;
}

TEST(Landmarks, BoundsBracketExactDistanceAcrossSeedsAndScales) {
  for (const std::uint32_t scale : {6u, 8u, 10u}) {
    for (const std::uint64_t seed : {1ull, 9ull, 42ull}) {
      const Csr csr = random_graph(scale, seed);
      const LandmarkIndex index = build_index(csr);
      ASSERT_GT(index.landmarks().size(), 0u);
      for (const auto& [s, t] : probe_pairs(csr.num_vertices())) {
        const Dist exact = dijkstra(csr, s)[t];
        const LandmarkBounds b = index.bounds(s, t);
        EXPECT_LE(b.lower, exact)
            << "scale " << scale << " seed " << seed << " (" << s << ", "
            << t << ")";
        EXPECT_GE(b.upper, exact)
            << "scale " << scale << " seed " << seed << " (" << s << ", "
            << t << ")";
      }
    }
  }
}

TEST(Landmarks, P2pExactlyEqualsDijkstraIncludingUnreachable) {
  for (const std::uint64_t seed : {2ull, 21ull}) {
    // Sparse graph: plenty of genuinely unreachable pairs.
    const Csr csr = random_graph(8, seed, /*degree=*/2);
    const LandmarkIndex index = build_index(csr);
    P2pWorkspace ws;
    bool saw_unreachable = false;
    for (const auto& [s, t] : probe_pairs(csr.num_vertices())) {
      const Dist exact = dijkstra(csr, s)[t];
      P2pStats stats;
      const Dist got = index.p2p(csr, s, t, &ws, &stats);
      // Bitwise equality: the tiers never approximate.
      EXPECT_EQ(got, exact) << "seed " << seed << " (" << s << ", " << t
                            << ")";
      saw_unreachable |= (exact == kInfDist);
    }
    EXPECT_TRUE(saw_unreachable);
  }
}

TEST(Landmarks, ExactTierAnswersLandmarkSources) {
  const Csr csr = random_graph(8, 4);
  const LandmarkIndex index = build_index(csr);
  ASSERT_FALSE(index.landmarks().empty());
  const VertexId lm = index.landmarks().front();
  const auto row = dijkstra(csr, lm);
  for (const VertexId t : {VertexId{0}, VertexId{17}, VertexId{200}}) {
    Dist out = -1.0;
    EXPECT_TRUE(index.exact_p2p(lm, t, &out));
    EXPECT_EQ(out, row[t]);
  }
}

TEST(Landmarks, GoalDirectedSearchSettlesFewerVerticesThanFullSolve) {
  const Csr csr = random_graph(10, 12);
  const LandmarkIndex index = build_index(csr, 8);
  P2pWorkspace ws;
  std::uint64_t settled = 0, probes = 0;
  for (const auto& [s, t] : probe_pairs(csr.num_vertices())) {
    if (s == t) continue;
    P2pStats stats;
    index.p2p(csr, s, t, &ws, &stats);
    if (stats.exact_tier) continue;
    settled += stats.settled;
    ++probes;
  }
  ASSERT_GT(probes, 0u);
  // Goal direction must on average prune most of the graph.
  EXPECT_LT(settled / probes, csr.num_vertices() / 2);
}

TEST(Landmarks, InvalidationTracksMutationsAndRefreshRestores) {
  EdgeList list(6, {});
  // Path 0 -> 1 -> 2 -> 3 -> 4 -> 5 plus a heavy shortcut 0 -> 5.
  for (VertexId v = 0; v + 1 < 6; ++v) list.add(v, v + 1, 1.0);
  list.add(0, 5, 100.0);
  DynamicGraph graph(std::move(list));
  LandmarkConfig config;
  config.num_landmarks = 2;
  LandmarkIndex index(graph.csr(), graph.snapshot().reverse, config);
  ASSERT_EQ(index.invalid_rows(), 0u);

  // Removing a tight tree edge must invalidate the rows that used it.
  const auto before = graph.epoch();
  graph.apply({Mutation::remove(2, 3)});
  const auto applied = graph.applied_since(before);
  const auto deltas = acic::dynamic::collapse_mutations(
      applied.data(), applied.data() + applied.size());
  EXPECT_GT(index.invalidate(deltas), 0u);
  EXPECT_GT(index.invalid_fraction(), 0.0);

  // After refresh, every row is valid and p2p answers are exact for the
  // mutated graph.
  const std::size_t invalid = index.invalid_rows();
  EXPECT_EQ(index.refresh(graph.csr(), graph.snapshot().reverse), invalid);
  ASSERT_EQ(index.invalid_rows(), 0u);
  P2pWorkspace ws;
  for (VertexId s = 0; s < 6; ++s) {
    const auto truth = dijkstra(graph.csr(), s);
    for (VertexId t = 0; t < 6; ++t) {
      EXPECT_EQ(index.p2p(graph.csr(), s, t, &ws), truth[t])
          << "(" << s << ", " << t << ")";
    }
  }
}

TEST(Landmarks, StaleRowsNeverBreakExactnessBeforeRefresh) {
  // Invalidated rows must stop contributing rather than mislead: without
  // any refresh, p2p answers on the *new* graph stay exact.
  const Csr base = random_graph(7, 8);
  EdgeList list(base.num_vertices(), {});
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (const auto& nb : base.out_neighbors(v)) {
      list.add(v, nb.dst, nb.weight);
    }
  }
  DynamicGraph graph(std::move(list));
  LandmarkConfig config;
  config.num_landmarks = 4;
  LandmarkIndex index(graph.csr(), graph.snapshot().reverse, config);

  // Remove an arbitrary live edge and insert a strong shortcut.
  VertexId rm_src = 0;
  while (graph.csr().out_degree(rm_src) == 0) ++rm_src;
  const VertexId rm_dst = graph.csr().out_neighbors(rm_src)[0].dst;
  const auto before = graph.epoch();
  graph.apply({Mutation::remove(rm_src, rm_dst),
               Mutation::insert(3, 60, 0.5)});
  const auto applied = graph.applied_since(before);
  const auto deltas = acic::dynamic::collapse_mutations(
      applied.data(), applied.data() + applied.size());
  index.invalidate(deltas);

  P2pWorkspace ws;
  for (const auto& [s, t] : probe_pairs(graph.num_vertices())) {
    const Dist exact = dijkstra(graph.csr(), s)[t];
    EXPECT_EQ(index.p2p(graph.csr(), s, t, &ws), exact)
        << "(" << s << ", " << t << ")";
  }
}

}  // namespace
