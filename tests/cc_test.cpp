// Tests for the connected-components family (future work §V): union-find
// ground truth, asynchronous introspective CC, and BSP label propagation.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/cc/async_cc.hpp"
#include "src/cc/bsp_cc.hpp"
#include "src/cc/union_find.hpp"
#include "src/graph/generators.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::cc::UnionFind;
using acic::graph::Csr;
using acic::graph::EdgeList;
using acic::graph::Partition1D;
using acic::graph::VertexId;
using acic::runtime::Machine;
using acic::runtime::Topology;

TEST(UnionFindBasics, SingletonSets) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(uf.find(v), v);
}

TEST(UnionFindBasics, UniteMergesAndCounts) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already same set
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
}

TEST(UnionFindBasics, ComponentsOfDisjointChains) {
  EdgeList list(6, {});
  list.add(0, 1, 1.0);
  list.add(1, 2, 1.0);
  list.add(3, 4, 1.0);
  const auto labels =
      acic::cc::connected_components(Csr::from_edge_list(list));
  EXPECT_EQ(labels, (std::vector<VertexId>{0, 0, 0, 3, 3, 5}));
  EXPECT_EQ(acic::cc::count_components(labels), 3u);
}

TEST(UnionFindBasics, DirectionIgnored) {
  EdgeList list(3, {});
  list.add(2, 0, 1.0);  // only a back edge
  const auto labels =
      acic::cc::connected_components(Csr::from_edge_list(list));
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[1], 1u);
}

Csr symmetrized_graph(acic::stats::GraphKind kind, std::uint64_t seed,
                      std::uint32_t scale = 10,
                      std::uint32_t edge_factor = 2) {
  acic::graph::GenParams params;
  params.num_vertices = VertexId{1} << scale;
  params.num_edges =
      static_cast<std::uint64_t>(edge_factor) * params.num_vertices;
  params.seed = seed;
  EdgeList list;
  switch (kind) {
    case acic::stats::GraphKind::kRmat:
      list = acic::graph::generate_rmat(params);
      break;
    default:
      list = acic::graph::generate_uniform_random(params);
      break;
  }
  return Csr::from_edge_list(list.symmetrized());
}

class AsyncCcSweep
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>> {};

TEST_P(AsyncCcSweep, MatchesUnionFind) {
  const auto [use_pq, seed] = GetParam();
  // Edge factor 2 leaves a rich multi-component structure.
  const Csr csr = symmetrized_graph(acic::stats::GraphKind::kRandom, seed);
  const auto expected = acic::cc::connected_components(csr);

  Machine machine(Topology{2, 2, 2});
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  acic::cc::AsyncCcConfig config;
  config.use_pq = use_pq;
  const auto result =
      acic::cc::async_cc(machine, csr, partition, config, 300e6);
  ASSERT_FALSE(result.hit_time_limit);
  EXPECT_EQ(result.labels, expected);
  EXPECT_EQ(result.updates_created, result.updates_processed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AsyncCcSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "pq" : "nopq") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(AsyncCc, RmatComponents) {
  const Csr csr = symmetrized_graph(acic::stats::GraphKind::kRmat, 5);
  const auto expected = acic::cc::connected_components(csr);
  Machine machine(Topology{1, 2, 4});
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  const auto result =
      acic::cc::async_cc(machine, csr, partition, {}, 300e6);
  EXPECT_EQ(result.labels, expected);
}

TEST(AsyncCc, FullyDisconnectedGraph) {
  const Csr csr = Csr::from_edge_list(EdgeList(64, {}));
  Machine machine(Topology::tiny(4));
  const Partition1D partition = Partition1D::block(64, 4);
  const auto result =
      acic::cc::async_cc(machine, csr, partition, {}, 60e6);
  ASSERT_FALSE(result.hit_time_limit);
  for (VertexId v = 0; v < 64; ++v) EXPECT_EQ(result.labels[v], v);
}

TEST(AsyncCc, LabelsAreComponentMinima) {
  const Csr csr = symmetrized_graph(acic::stats::GraphKind::kRandom, 7);
  Machine machine(Topology{2, 2, 2});
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  const auto result =
      acic::cc::async_cc(machine, csr, partition, {}, 300e6);
  // Every vertex's label must be <= its id and be a fixed point across
  // every edge.
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_LE(result.labels[v], v);
    for (const auto& nb : csr.out_neighbors(v)) {
      EXPECT_EQ(result.labels[v], result.labels[nb.dst]);
    }
  }
}

TEST(BspCc, MatchesUnionFindAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 4u}) {
    const Csr csr =
        symmetrized_graph(acic::stats::GraphKind::kRandom, seed);
    const auto expected = acic::cc::connected_components(csr);
    Machine machine(Topology{2, 2, 2});
    const Partition1D partition =
        Partition1D::block(csr.num_vertices(), machine.num_pes());
    const auto result =
        acic::cc::bsp_cc(machine, csr, partition, {}, 300e6);
    ASSERT_FALSE(result.hit_time_limit);
    EXPECT_EQ(result.labels, expected) << "seed " << seed;
    EXPECT_GT(result.supersteps, 0u);
  }
}

TEST(BspCc, AgreesWithAsyncCc) {
  const Csr csr = symmetrized_graph(acic::stats::GraphKind::kRmat, 9);
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 8);
  Machine m1(Topology{1, 2, 4});
  Machine m2(Topology{1, 2, 4});
  const auto async_result = acic::cc::async_cc(m1, csr, partition, {}, 300e6);
  const auto bsp_result = acic::cc::bsp_cc(m2, csr, partition, {}, 300e6);
  EXPECT_EQ(async_result.labels, bsp_result.labels);
}

}  // namespace
