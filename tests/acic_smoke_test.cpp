// Early integration smoke tests: ACIC on small graphs must match
// Dijkstra exactly and terminate cleanly.  (The broader parameterized
// correctness sweeps live in acic_correctness_test.cpp.)

#include <gtest/gtest.h>

#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/validate.hpp"

namespace {

using acic::core::AcicConfig;
using acic::core::AcicRunResult;
using acic::graph::Csr;
using acic::graph::GenParams;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Topology;

AcicRunResult run_acic(const Csr& csr, acic::graph::VertexId source,
                       const Topology& topo, const AcicConfig& config) {
  Machine machine(topo);
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), topo.num_pes());
  return acic::core::acic_sssp(machine, csr, partition, source, config);
}

TEST(AcicSmoke, TinyChainGraph) {
  // 0 -> 1 -> 2 -> 3, unit-ish weights.
  acic::graph::EdgeList list(4, {});
  list.add(0, 1, 1.0);
  list.add(1, 2, 2.0);
  list.add(2, 3, 4.0);
  const Csr csr = Csr::from_edge_list(list);

  const AcicRunResult run = run_acic(csr, 0, Topology::tiny(2), {});
  EXPECT_FALSE(run.hit_time_limit);
  ASSERT_EQ(run.sssp.dist.size(), 4u);
  EXPECT_DOUBLE_EQ(run.sssp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(run.sssp.dist[1], 1.0);
  EXPECT_DOUBLE_EQ(run.sssp.dist[2], 3.0);
  EXPECT_DOUBLE_EQ(run.sssp.dist[3], 7.0);
}

TEST(AcicSmoke, MatchesDijkstraOnSmallRandomGraph) {
  GenParams params;
  params.num_vertices = 512;
  params.num_edges = 4096;
  params.seed = 7;
  const Csr csr =
      Csr::from_edge_list(acic::graph::generate_uniform_random(params));

  const auto expected = acic::baselines::dijkstra(csr, 0);
  const AcicRunResult run = run_acic(csr, 0, Topology{1, 2, 3}, {});
  EXPECT_FALSE(run.hit_time_limit);

  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
  const auto fixed_point = acic::graph::validate_sssp(csr, 0, run.sssp.dist);
  EXPECT_TRUE(fixed_point.ok) << fixed_point.error;
}

TEST(AcicSmoke, ConservationCreatedEqualsProcessed) {
  GenParams params;
  params.num_vertices = 256;
  params.num_edges = 2048;
  params.seed = 3;
  const Csr csr =
      Csr::from_edge_list(acic::graph::generate_uniform_random(params));

  const AcicRunResult run = run_acic(csr, 0, Topology::tiny(4), {});
  EXPECT_FALSE(run.hit_time_limit);
  EXPECT_EQ(run.sssp.metrics.updates_created,
            run.sssp.metrics.updates_processed);
  EXPECT_GT(run.sssp.metrics.updates_created, 0u);
  EXPECT_GT(run.reduction_cycles, 1u);
}

TEST(AcicSmoke, UnreachableVerticesStayInfinite) {
  // Two disconnected components: 0-1 and 2-3.
  acic::graph::EdgeList list(4, {});
  list.add(0, 1, 1.0);
  list.add(2, 3, 1.0);
  const Csr csr = Csr::from_edge_list(list);

  const AcicRunResult run = run_acic(csr, 0, Topology::tiny(2), {});
  EXPECT_DOUBLE_EQ(run.sssp.dist[1], 1.0);
  EXPECT_EQ(run.sssp.dist[2], acic::graph::kInfDist);
  EXPECT_EQ(run.sssp.dist[3], acic::graph::kInfDist);
}

}  // namespace
