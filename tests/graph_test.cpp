// Unit tests for the graph substrate: edge lists, CSR construction,
// generators, IO, degree statistics and partitioners.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/graph/csr.hpp"
#include "src/graph/degree_stats.hpp"
#include "src/graph/edge_list.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/partition2d.hpp"
#include "src/graph/serialize.hpp"

#include <unistd.h>

namespace {

using namespace acic::graph;

TEST(EdgeList, SortBySourceOrders) {
  EdgeList list(4, {});
  list.add(3, 0, 1.0);
  list.add(1, 2, 1.0);
  list.add(1, 0, 1.0);
  list.sort_by_source();
  EXPECT_EQ(list.edges()[0].src, 1u);
  EXPECT_EQ(list.edges()[0].dst, 0u);
  EXPECT_EQ(list.edges()[1].dst, 2u);
  EXPECT_EQ(list.edges()[2].src, 3u);
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList list(3, {});
  list.add(0, 0, 1.0);
  list.add(0, 1, 1.0);
  list.add(2, 2, 1.0);
  list.remove_self_loops();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_EQ(list.edges()[0].dst, 1u);
}

TEST(EdgeList, RemoveDuplicatesKeepsLightest) {
  EdgeList list(3, {});
  list.add(0, 1, 5.0);
  list.add(0, 1, 2.0);
  list.add(0, 2, 1.0);
  list.remove_duplicates();
  ASSERT_EQ(list.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(list.edges()[0].weight, 2.0);
}

TEST(EdgeList, EndpointRangeCheck) {
  EdgeList list(2, {});
  list.add(0, 1, 1.0);
  EXPECT_TRUE(list.endpoints_in_range());
  list.add(0, 5, 1.0);
  EXPECT_FALSE(list.endpoints_in_range());
}

TEST(Csr, BuildsOffsetsAndNeighbors) {
  EdgeList list(4, {});
  list.add(0, 1, 1.0);
  list.add(0, 2, 2.0);
  list.add(2, 3, 3.0);
  const Csr csr = Csr::from_edge_list(list);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 3u);
  EXPECT_EQ(csr.out_degree(0), 2u);
  EXPECT_EQ(csr.out_degree(1), 0u);
  EXPECT_EQ(csr.out_degree(2), 1u);
  EXPECT_EQ(csr.out_neighbors(2)[0].dst, 3u);
  EXPECT_DOUBLE_EQ(csr.out_neighbors(2)[0].weight, 3.0);
}

TEST(Csr, AdjacencySortedByDestination) {
  EdgeList list(4, {});
  list.add(0, 3, 1.0);
  list.add(0, 1, 1.0);
  list.add(0, 2, 1.0);
  const Csr csr = Csr::from_edge_list(list);
  const auto row = csr.out_neighbors(0);
  EXPECT_EQ(row[0].dst, 1u);
  EXPECT_EQ(row[1].dst, 2u);
  EXPECT_EQ(row[2].dst, 3u);
}

TEST(Csr, UnsortedInputProducesSameCsr) {
  EdgeList a(8, {});
  a.add(5, 1, 1.0);
  a.add(0, 3, 2.0);
  a.add(5, 0, 3.0);
  EdgeList b = a;
  b.sort_by_source();
  const Csr csr_a = Csr::from_edge_list(a);
  const Csr csr_b = Csr::from_edge_list(b);
  EXPECT_TRUE(std::ranges::equal(csr_a.offsets(), csr_b.offsets()));
  EXPECT_TRUE(std::ranges::equal(csr_a.neighbors(), csr_b.neighbors()));
}

TEST(Csr, EdgesInRange) {
  EdgeList list(4, {});
  list.add(0, 1, 1.0);
  list.add(1, 2, 1.0);
  list.add(1, 3, 1.0);
  list.add(3, 0, 1.0);
  const Csr csr = Csr::from_edge_list(list);
  EXPECT_EQ(csr.edges_in_range(0, 2), 3u);
  EXPECT_EQ(csr.edges_in_range(2, 4), 1u);
  EXPECT_EQ(csr.max_out_degree(), 2u);
}

TEST(Generators, DeterministicInSeed) {
  GenParams params;
  params.num_vertices = 256;
  params.num_edges = 2048;
  params.seed = 5;
  const EdgeList a = generate_rmat(params);
  const EdgeList b = generate_rmat(params);
  EXPECT_EQ(a.edges(), b.edges());
  const EdgeList c = generate_uniform_random(params);
  const EdgeList d = generate_uniform_random(params);
  EXPECT_EQ(c.edges(), d.edges());
}

TEST(Generators, DifferentSeedsDiffer) {
  GenParams params;
  params.num_vertices = 256;
  params.num_edges = 2048;
  params.seed = 5;
  const EdgeList a = generate_uniform_random(params);
  params.seed = 6;
  const EdgeList b = generate_uniform_random(params);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(Generators, WeightsWithinRange) {
  GenParams params;
  params.num_vertices = 128;
  params.num_edges = 1024;
  params.min_weight = 2.0;
  params.max_weight = 7.0;
  for (const EdgeList& list :
       {generate_rmat(params), generate_uniform_random(params),
        generate_erdos_renyi(params)}) {
    for (const Edge& e : list.edges()) {
      EXPECT_GE(e.weight, 2.0);
      EXPECT_LT(e.weight, 7.0);
    }
  }
}

TEST(Generators, RmatIsSkewedUniformIsNot) {
  GenParams params;
  params.num_vertices = 1u << 12;
  params.num_edges = 1u << 16;
  params.seed = 9;
  const auto rmat = Csr::from_edge_list(generate_rmat(params));
  const auto uniform =
      Csr::from_edge_list(generate_uniform_random(params));
  const DegreeStats rmat_stats = compute_degree_stats(rmat);
  const DegreeStats uniform_stats = compute_degree_stats(uniform);
  // The paper's two workloads are distinguished exactly by this skew.
  EXPECT_GT(rmat_stats.gini, 0.4);
  EXPECT_LT(uniform_stats.gini, 0.25);
  EXPECT_GT(rmat_stats.max_degree, uniform_stats.max_degree * 4);
}

TEST(Generators, RmatSelfLoopsRemovedByDefault) {
  GenParams params;
  params.num_vertices = 512;
  params.num_edges = 8192;
  const EdgeList list = generate_rmat(params);
  for (const Edge& e : list.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(Generators, ErdosRenyiHasDistinctEdges) {
  GenParams params;
  params.num_vertices = 128;
  params.num_edges = 2000;
  const EdgeList list = generate_erdos_renyi(params);
  EXPECT_EQ(list.num_edges(), 2000u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : list.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second)
        << "duplicate edge " << e.src << "->" << e.dst;
  }
}

TEST(Generators, GridRoadIsBidirectionalAndConnected) {
  GridParams grid;
  grid.width = 8;
  grid.height = 8;
  grid.shortcut_fraction = 0.0;
  const EdgeList list = generate_grid_road(grid, 1);
  // 4-connected 8x8 grid: 2 * (7*8 + 8*7) directed edges.
  EXPECT_EQ(list.num_edges(), 2u * (7 * 8 + 8 * 7));
  // Bidirectionality: every edge has its reverse with equal weight.
  std::map<std::pair<VertexId, VertexId>, Weight> weights;
  for (const Edge& e : list.edges()) weights[{e.src, e.dst}] = e.weight;
  for (const Edge& e : list.edges()) {
    auto it = weights.find({e.dst, e.src});
    ASSERT_NE(it, weights.end());
    EXPECT_DOUBLE_EQ(it->second, e.weight);
  }
}

TEST(Generators, GridRoadShortcutsAddEdges) {
  GridParams grid;
  grid.width = 16;
  grid.height = 16;
  grid.shortcut_fraction = 0.1;
  const EdgeList with = generate_grid_road(grid, 1);
  grid.shortcut_fraction = 0.0;
  const EdgeList without = generate_grid_road(grid, 1);
  EXPECT_GT(with.num_edges(), without.num_edges());
}

TEST(DegreeStats, LogHistogramBinsCorrectly) {
  EdgeList list(4, {});
  // degrees: v0=1, v1=2, v2=5, v3=0
  list.add(0, 1, 1.0);
  list.add(1, 0, 1.0);
  list.add(1, 2, 1.0);
  for (int i = 0; i < 5; ++i) {
    list.add(2, static_cast<VertexId>(i % 2), 1.0);
  }
  const auto bins = degree_log_histogram(Csr::from_edge_list(list));
  // bin0: deg 0..1 -> v0, v3; bin1: deg 2..3 -> v1; bin2: deg 4..7 -> v2.
  ASSERT_GE(bins.size(), 3u);
  EXPECT_EQ(bins[0], 2u);
  EXPECT_EQ(bins[1], 1u);
  EXPECT_EQ(bins[2], 1u);
}

TEST(Io, RoundTripPreservesEdges) {
  GenParams params;
  params.num_vertices = 64;
  params.num_edges = 256;
  const EdgeList original = generate_uniform_random(params);
  const std::string path = ::testing::TempDir() + "/acic_io_test.csv";
  ASSERT_TRUE(write_edge_list_csv(original, path));
  const EdgeList loaded = read_edge_list_csv(path, 64);
  EXPECT_EQ(original.edges(), loaded.edges());
  std::remove(path.c_str());
}

TEST(Io, InfersVertexCount) {
  const std::string path = ::testing::TempDir() + "/acic_io_infer.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("0,5,1.5\n3,2,2.0\n", f);
  std::fclose(f);
  const EdgeList loaded = read_edge_list_csv(path);
  EXPECT_EQ(loaded.num_vertices(), 6u);
  EXPECT_EQ(loaded.num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(Io, UnweightedRowsDefaultToOne) {
  const std::string path = ::testing::TempDir() + "/acic_io_unweighted.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# comment line\n0,1\n", f);
  std::fclose(f);
  const EdgeList loaded = read_edge_list_csv(path);
  ASSERT_EQ(loaded.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(loaded.edges()[0].weight, 1.0);
  std::remove(path.c_str());
}

TEST(Io, MalformedInputThrows) {
  const std::string path = ::testing::TempDir() + "/acic_io_bad.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("garbage\n", f);
  std::fclose(f);
  EXPECT_THROW(read_edge_list_csv(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(read_edge_list_csv("/nonexistent/file.csv"),
               std::runtime_error);
}

TEST(Partition1D, BlockCoversAllVerticesContiguously) {
  const auto partition = Partition1D::block(100, 7);
  EXPECT_EQ(partition.num_parts(), 7u);
  VertexId expected_start = 0;
  for (std::uint32_t p = 0; p < 7; ++p) {
    EXPECT_EQ(partition.begin(p), expected_start);
    expected_start = partition.end(p);
  }
  EXPECT_EQ(expected_start, 100u);
}

TEST(Partition1D, BlockSizesDifferByAtMostOne) {
  const auto partition = Partition1D::block(100, 7);
  VertexId min_size = 100;
  VertexId max_size = 0;
  for (std::uint32_t p = 0; p < 7; ++p) {
    min_size = std::min(min_size, partition.size(p));
    max_size = std::max(max_size, partition.size(p));
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(Partition1D, OwnerMatchesRanges) {
  const auto partition = Partition1D::block(97, 5);
  for (VertexId v = 0; v < 97; ++v) {
    const std::uint32_t owner = partition.owner(v);
    EXPECT_GE(v, partition.begin(owner));
    EXPECT_LT(v, partition.end(owner));
  }
}

TEST(Partition1D, BalancedEdgesEvensOutSkew) {
  // A graph where vertex 0 has most of the edges.
  EdgeList list(100, {});
  for (int i = 0; i < 900; ++i) {
    list.add(0, static_cast<VertexId>(1 + i % 99), 1.0);
  }
  for (VertexId v = 1; v < 100; ++v) list.add(v, 0, 1.0);
  const Csr csr = Csr::from_edge_list(list);

  const auto block = Partition1D::block(100, 4);
  const auto balanced = Partition1D::balanced_edges(csr, 4);

  auto max_edges = [&](const Partition1D& partition) {
    std::size_t peak = 0;
    for (std::uint32_t p = 0; p < 4; ++p) {
      peak = std::max(peak, csr.edges_in_range(partition.begin(p),
                                               partition.end(p)));
    }
    return peak;
  };
  // The hub forces any contiguous partition to hold >= 900 edges in one
  // part; balanced-edges must not do *worse* than block and must give
  // every part at least one vertex.
  EXPECT_LE(max_edges(balanced), max_edges(block));
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_GE(balanced.size(p), 1u);
  }
}

namespace {

// owner() has three code paths (pow2 shift, branchless count for <=32
// parts, upper_bound beyond); all must agree with the starts() ranges.
void expect_owner_matches_starts(const Partition1D& partition) {
  const auto& starts = partition.starts();
  for (VertexId v = 0; v < partition.num_vertices(); ++v) {
    const std::uint32_t owner = partition.owner(v);
    ASSERT_LT(owner, partition.num_parts());
    EXPECT_GE(v, starts[owner]);
    EXPECT_LT(v, starts[owner + 1]);
  }
}

}  // namespace

TEST(Partition1D, OwnerAgreesWithStartsInAllThreeForms) {
  // 1024/8: uniform power-of-two chunks -> the shift fast path.
  expect_owner_matches_starts(Partition1D::block(1024, 8));
  // 100/4: chunk 25 (not a power of two), parts <= 32 -> branchless count.
  expect_owner_matches_starts(Partition1D::block(100, 4));
  // 1000/40: parts > 32 -> upper_bound binary search.
  expect_owner_matches_starts(Partition1D::block(1000, 40));

  // balanced_edges starts are irregular; cover both owner() fallbacks.
  GenParams params;
  params.num_vertices = 512;
  params.num_edges = 4096;
  const Csr csr = Csr::from_edge_list(generate_rmat(params));
  expect_owner_matches_starts(Partition1D::balanced_edges(csr, 8));
  expect_owner_matches_starts(Partition1D::balanced_edges(csr, 40));
}

TEST(Partition1D, BalancedEdgesSinglePartOwnsEverything) {
  GenParams params;
  params.num_vertices = 64;
  params.num_edges = 256;
  const Csr csr = Csr::from_edge_list(generate_uniform_random(params));
  const auto partition = Partition1D::balanced_edges(csr, 1);
  EXPECT_EQ(partition.num_parts(), 1u);
  EXPECT_EQ(partition.begin(0), 0u);
  EXPECT_EQ(partition.end(0), 64u);
  expect_owner_matches_starts(partition);
}

TEST(Partition1D, BalancedEdgesZeroOutDegreeTail) {
  // All edges originate from the first few vertices; the tail has zero
  // out-degree.  Every vertex (including the tail) must still land in
  // exactly one part, and ranges must stay monotone.
  EdgeList list(50, {});
  for (VertexId v = 0; v < 5; ++v) {
    for (int i = 0; i < 20; ++i) {
      list.add(v, static_cast<VertexId>((v + i + 1) % 50), 1.0);
    }
  }
  const Csr csr = Csr::from_edge_list(list);
  const auto partition = Partition1D::balanced_edges(csr, 4);
  EXPECT_EQ(partition.num_vertices(), 50u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_LE(partition.begin(p), partition.end(p));
  }
  EXPECT_EQ(partition.end(3), 50u);
  expect_owner_matches_starts(partition);
}

TEST(Partition1D, BalancedEdgesMorePartsThanVertices) {
  EdgeList list(3, {});
  list.add(0, 1, 1.0);
  list.add(1, 2, 1.0);
  list.add(2, 0, 1.0);
  const Csr csr = Csr::from_edge_list(list);
  const auto partition = Partition1D::balanced_edges(csr, 8);
  EXPECT_EQ(partition.num_parts(), 8u);
  EXPECT_EQ(partition.num_vertices(), 3u);
  // The trailing parts are empty (pinned at |V|) but ranges stay
  // monotone and contiguous, and every vertex has exactly one owner.
  VertexId covered = 0;
  for (std::uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(partition.begin(p), covered);
    covered = partition.end(p);
  }
  EXPECT_EQ(covered, 3u);
  expect_owner_matches_starts(partition);
}

TEST(Partition2D, GroupOwnerBijection) {
  GenParams params;
  params.num_vertices = 256;
  params.num_edges = 1024;
  const Csr csr = Csr::from_edge_list(generate_uniform_random(params));
  const Partition2D partition(csr, 3, 4);
  EXPECT_EQ(partition.num_groups(), 12u);
  std::set<std::uint32_t> owners;
  for (std::uint32_t g = 0; g < partition.num_groups(); ++g) {
    owners.insert(partition.state_owner(g));
    EXPECT_EQ(partition.group_owned_by(partition.state_owner(g)), g);
  }
  EXPECT_EQ(owners.size(), 12u);  // each cell owns exactly one group
}

TEST(Partition2D, EveryEdgeStoredExactlyOnceInRightCell) {
  GenParams params;
  params.num_vertices = 200;
  params.num_edges = 2000;
  const Csr csr = Csr::from_edge_list(generate_uniform_random(params));
  const Partition2D partition(csr, 2, 3);
  std::size_t total = 0;
  for (std::uint32_t pe = 0; pe < partition.num_cells(); ++pe) {
    for (const Edge& e : partition.cell_edges(pe)) {
      EXPECT_EQ(partition.col_of(
                    partition.state_owner(partition.group_of(e.src))),
                partition.col_of(pe));
      EXPECT_EQ(partition.row_of(
                    partition.state_owner(partition.group_of(e.dst))),
                partition.row_of(pe));
      ++total;
    }
  }
  EXPECT_EQ(total, csr.num_edges());
}

TEST(Partition2D, CellOutEdgesFindsAllEdgesOfVertex) {
  EdgeList list(16, {});
  list.add(3, 1, 1.0);
  list.add(3, 9, 1.0);
  list.add(3, 14, 1.0);
  list.add(4, 1, 1.0);
  const Csr csr = Csr::from_edge_list(list);
  const Partition2D partition(csr, 2, 2);
  std::size_t found = 0;
  for (std::uint32_t pe = 0; pe < partition.num_cells(); ++pe) {
    found += partition.cell_out_edges(pe, 3).size();
  }
  EXPECT_EQ(found, 3u);
}

TEST(Partition2D, SquarestPicksBalancedGrid) {
  GenParams params;
  params.num_vertices = 64;
  params.num_edges = 256;
  const Csr csr = Csr::from_edge_list(generate_uniform_random(params));
  const auto p12 = Partition2D::squarest(csr, 12);
  EXPECT_EQ(p12.rows() * p12.cols(), 12u);
  EXPECT_EQ(p12.rows(), 3u);
  const auto p16 = Partition2D::squarest(csr, 16);
  EXPECT_EQ(p16.rows(), 4u);
  const auto p7 = Partition2D::squarest(csr, 7);
  EXPECT_EQ(p7.rows(), 1u);
  EXPECT_EQ(p7.cols(), 7u);
}

TEST(Partition2D, StarGraphSpreadsBetterThan1D) {
  // The load-balance claim from the paper: a hub's out-edges concentrate
  // on one part under 1-D but spread over a column under 2-D.
  EdgeList list(64, {});
  for (VertexId v = 1; v < 64; ++v) list.add(0, v, 1.0);
  const Csr csr = Csr::from_edge_list(list);

  const auto p1d = Partition1D::block(64, 4);
  std::size_t max_1d = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    max_1d = std::max(max_1d,
                      csr.edges_in_range(p1d.begin(p), p1d.end(p)));
  }
  const Partition2D p2d(csr, 2, 2);
  std::size_t max_2d = 0;
  for (const std::size_t c : p2d.edges_per_cell()) {
    max_2d = std::max(max_2d, c);
  }
  EXPECT_LT(max_2d, max_1d);
}

}  // namespace

namespace serialize_tests {

using namespace acic::graph;

TEST(Serialize, RoundTripPreservesCsr) {
  GenParams params;
  params.num_vertices = 300;
  params.num_edges = 2400;
  params.seed = 7;
  const Csr original =
      Csr::from_edge_list(generate_uniform_random(params));
  const std::string path = ::testing::TempDir() + "/acic_csr_cache.bin";
  ASSERT_TRUE(save_csr(original, path));
  const Csr loaded = load_csr(path);
  EXPECT_TRUE(std::ranges::equal(loaded.offsets(), original.offsets()));
  EXPECT_TRUE(std::ranges::equal(loaded.neighbors(), original.neighbors()));
  std::remove(path.c_str());
}

TEST(Serialize, LoadOrBuildUsesCache) {
  const std::string path = ::testing::TempDir() + "/acic_csr_cache2.bin";
  std::remove(path.c_str());
  int builds = 0;
  auto build = [&builds] {
    ++builds;
    GenParams params;
    params.num_vertices = 64;
    params.num_edges = 256;
    return Csr::from_edge_list(generate_uniform_random(params));
  };
  const Csr first = load_or_build_csr(path, build);
  const Csr second = load_or_build_csr(path, build);
  EXPECT_EQ(builds, 1);  // second call hit the cache
  EXPECT_TRUE(std::ranges::equal(first.neighbors(), second.neighbors()));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFiles) {
  const std::string path = ::testing::TempDir() + "/acic_csr_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a csr cache at all", f);
  std::fclose(f);
  EXPECT_THROW(load_csr(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(load_csr("/nonexistent/cache.bin"), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedFiles) {
  GenParams params;
  params.num_vertices = 64;
  params.num_edges = 512;
  const Csr csr = Csr::from_edge_list(generate_uniform_random(params));
  const std::string path = ::testing::TempDir() + "/acic_csr_trunc.bin";
  ASSERT_TRUE(save_csr(csr, path));
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
  EXPECT_THROW(load_csr(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace serialize_tests
