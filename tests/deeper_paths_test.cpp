// Deeper-path tests: corners of the runtime, tram, partitioners and CC
// that the main suites exercise only incidentally.

#include <gtest/gtest.h>

#include <map>

#include "src/baselines/delta_stepping_dist.hpp"
#include "src/baselines/sequential.hpp"
#include "src/cc/async_cc.hpp"
#include "src/cc/union_find.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition2d.hpp"
#include "src/graph/validate.hpp"
#include "src/runtime/collectives.hpp"
#include "src/stats/experiment.hpp"
#include "src/tram/tram.hpp"

namespace {

using acic::graph::Csr;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Pe;
using acic::runtime::PeId;
using acic::runtime::Reducer;
using acic::runtime::Topology;

TEST(MachineDeep, SendToSelfWorks) {
  Machine machine(Topology::tiny(1));
  int delivered = 0;
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    pe.send(0, 64, [&](Pe&) { ++delivered; });
  });
  machine.run();
  EXPECT_EQ(delivered, 1);
}

TEST(MachineDeep, EnqueueLocalPreservesFifoOrder) {
  Machine machine(Topology::tiny(1));
  std::vector<int> order;
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    order.push_back(0);
    pe.enqueue_local([&](Pe&) { order.push_back(2); });
    pe.enqueue_local([&](Pe&) { order.push_back(3); });
    order.push_back(1);
  });
  machine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MachineDeep, ZeroByteMessageStillPaysLatency) {
  Machine machine(Topology{2, 1, 1});
  double arrival = 0.0;
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    pe.send(1, 0, [&](Pe& dst) { arrival = dst.now(); });
  });
  machine.run();
  EXPECT_GT(arrival, machine.network().latency_inter_node_us);
}

TEST(MachineDeep, RunContinuesAcrossCalls) {
  Machine machine(Topology::tiny(1));
  machine.schedule_at(10.0, 0, [](Pe&) {});
  const auto first = machine.run();
  EXPECT_DOUBLE_EQ(first.end_time_us, 10.0);
  machine.schedule_at(5.0, 0, [](Pe&) {});  // in the past: clamped
  const auto second = machine.run();
  EXPECT_GE(second.end_time_us, 10.0);  // time is monotone
}

TEST(ReducerDeep, ManyPipelinedCyclesAllSumCorrectly) {
  Machine machine(Topology{1, 2, 3});
  std::vector<double> sums;
  Reducer reducer(
      machine, 1,
      [&](Pe&, std::uint64_t, const std::vector<double>& sum)
          -> std::optional<std::vector<double>> {
        sums.push_back(sum[0]);
        return std::nullopt;
      },
      [](Pe&, std::uint64_t, const std::vector<double>&) {});
  constexpr int kCycles = 20;
  for (PeId p = 0; p < machine.num_pes(); ++p) {
    machine.schedule_at(0.0, p, [&reducer](Pe& pe) {
      for (int c = 0; c < kCycles; ++c) {
        reducer.contribute(pe, {static_cast<double>(c + 1)});
      }
    });
  }
  machine.run();
  ASSERT_EQ(sums.size(), static_cast<std::size_t>(kCycles));
  for (int c = 0; c < kCycles; ++c) {
    EXPECT_DOUBLE_EQ(sums[c], 6.0 * (c + 1)) << "cycle " << c;
  }
}

TEST(TramDeep, TwoPesShareProcessSet) {
  // PP mode: both PEs of a process write the same buffer; either PE's
  // flush ships everything.
  Machine machine(Topology{2, 1, 2});
  acic::tram::TramConfig config;
  config.mode = acic::tram::Aggregation::kPP;
  config.buffer_items = 1u << 20;
  int delivered = 0;
  acic::tram::Tram<int> tram(machine, config,
                             [&](Pe&, const int&) { ++delivered; });
  machine.schedule_at(0.0, 0, [&](Pe& pe) { tram.insert(pe, 2, 1); });
  machine.schedule_at(0.0, 1, [&](Pe& pe) { tram.insert(pe, 3, 2); });
  machine.schedule_at(1.0, 1, [&](Pe& pe) {
    EXPECT_EQ(tram.pending_items(1), 2u);  // the shared set holds both
    tram.flush_all(pe);
  });
  machine.run();
  EXPECT_EQ(delivered, 2);
}

TEST(TramDeep, AutoAndManualFlushInterleave) {
  Machine machine(Topology::tiny(2));
  acic::tram::TramConfig config;
  config.mode = acic::tram::Aggregation::kWW;
  config.buffer_items = 4;
  std::vector<int> received;
  acic::tram::Tram<int> tram(
      machine, config,
      [&](Pe&, const int& v) { received.push_back(v); });
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    for (int i = 0; i < 10; ++i) tram.insert(pe, 1, i);  // 2 auto flushes
    tram.flush_all(pe);                                  // remaining 2
  });
  machine.run();
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
  EXPECT_EQ(tram.stats().auto_flushes, 2u);
}

TEST(Partition2DDeep, RmatEdgesCoveredOnRectangularGrid) {
  acic::graph::GenParams params;
  params.num_vertices = 1u << 10;
  params.num_edges = 1u << 13;
  params.seed = 77;
  const Csr csr =
      Csr::from_edge_list(acic::graph::generate_rmat(params));
  const acic::graph::Partition2D partition(csr, 3, 5);
  std::size_t total = 0;
  for (std::uint32_t pe = 0; pe < partition.num_cells(); ++pe) {
    total += partition.cell_edges(pe).size();
  }
  EXPECT_EQ(total, csr.num_edges());
  // Owner bijection holds on rectangles too.
  std::map<std::uint32_t, int> owners;
  for (std::uint32_t g = 0; g < partition.num_groups(); ++g) {
    ++owners[partition.state_owner(g)];
  }
  EXPECT_EQ(owners.size(), partition.num_cells());
}

TEST(CcDeep, ReversedBatchesDoNotChangeLabels) {
  acic::graph::GenParams params;
  params.num_vertices = 1u << 10;
  params.num_edges = 2u << 10;
  params.seed = 31;
  const Csr csr = Csr::from_edge_list(
      acic::graph::generate_uniform_random(params).symmetrized());
  const auto expected = acic::cc::connected_components(csr);

  Machine machine(Topology{1, 2, 4});
  const auto partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  acic::cc::AsyncCcConfig config;
  config.tram.debug_reverse_batches = true;
  const auto result =
      acic::cc::async_cc(machine, csr, partition, config, 120e6);
  EXPECT_FALSE(result.hit_time_limit);
  EXPECT_EQ(result.labels, expected);
}

TEST(DeltaDeep, RoadGraphWithStragglerStillExact) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRoad;
  spec.scale = 10;
  spec.seed = 41;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{1, 2, 4});
  machine.set_speed_factor(3, 0.25);
  const auto partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  const auto run = acic::baselines::delta_stepping_dist(
      machine, csr, partition, 0, {}, 300e6);
  EXPECT_FALSE(run.hit_time_limit);
  EXPECT_TRUE(
      acic::graph::compare_distances(run.sssp.dist, expected).ok);
}

TEST(HarnessDeep, BalancedPartitionOptionFlowsThrough) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 43;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);
  acic::stats::AlgoParams params;
  params.acic_balanced_partition = true;
  const auto run =
      acic::stats::run_algorithm(acic::stats::Algo::kAcic, csr, spec,
                                 params);
  EXPECT_TRUE(
      acic::graph::compare_distances(run.sssp.dist, expected).ok);
}

}  // namespace
