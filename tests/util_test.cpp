// Unit tests for src/util: RNG determinism/quality, options parsing,
// summary statistics and the table printer.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "src/util/options.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

namespace {

using acic::util::Options;
using acic::util::SplitMix64;
using acic::util::Table;
using acic::util::Xoshiro256;

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownFirstValue) {
  // Reference value of splitmix64(seed=0) from the published algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, DoubleInHalfOpenUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, DoubleRangeRespectsBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double(2.5, 9.75);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 9.75);
  }
}

TEST(Xoshiro256, MeanOfUniformIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(DeriveSeed, StreamsAreIndependent) {
  const auto s0 = acic::util::derive_seed(99, 0);
  const auto s1 = acic::util::derive_seed(99, 1);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(s0, acic::util::derive_seed(99, 0));
}

TEST(Options, ParsesKeyValueForms) {
  // Note: `--key value` consumes the next token as the value, so bare
  // flags must come last or use `--flag=1`; positionals precede options.
  const char* argv[] = {"prog", "pos", "--scale", "18", "--p-tram=0.5",
                        "--flag"};
  Options opts(6, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("scale", 0), 18);
  EXPECT_DOUBLE_EQ(opts.get_double("p-tram", 0.0), 0.5);
  EXPECT_TRUE(opts.get_bool("flag", false));
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos");
}

TEST(Options, FallbackWhenMissing) {
  Options opts;
  EXPECT_EQ(opts.get_int("nope", -7), -7);
  EXPECT_EQ(opts.get("nope", "x"), "x");
  EXPECT_FALSE(opts.has("nope"));
}

TEST(Options, EnvironmentProvidesDefault) {
  ::setenv("ACIC_UT_ENV_KEY", "123", 1);
  Options opts;
  EXPECT_EQ(opts.get_int("ut-env-key", 0), 123);
  ::unsetenv("ACIC_UT_ENV_KEY");
}

TEST(Options, CommandLineOverridesEnvironment) {
  ::setenv("ACIC_UT_ENV_KEY2", "123", 1);
  const char* argv[] = {"prog", "--ut-env-key2", "456"};
  Options opts(3, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("ut-env-key2", 0), 456);
  ::unsetenv("ACIC_UT_ENV_KEY2");
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(acic::util::mean(xs), 5.0);
  EXPECT_NEAR(acic::util::stddev(xs), 2.138, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(acic::util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(acic::util::percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(acic::util::percentile(xs, 50.0), 2.5);
}

TEST(Stats, GeomeanOfPowers) {
  EXPECT_NEAR(acic::util::geomean({1.0, 100.0}), 10.0, 1e-9);
}

TEST(Table, FormatsAndCountsRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, WritesCsv) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/acic_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "x,y\n");
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "1,2\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Strformat, ProducesFormattedString) {
  EXPECT_EQ(acic::util::strformat("%d-%s", 7, "x"), "7-x");
}

}  // namespace
