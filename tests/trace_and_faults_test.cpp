// Tests for the execution tracer (Projections analogue) and the tram
// fault-injection hook, including the documented property that the
// paper's counter-based quiescence detection assumes exactly-once
// delivery while the *distances* themselves are idempotent.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/validate.hpp"
#include "src/runtime/trace.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::core::AcicConfig;
using acic::graph::Csr;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Pe;
using acic::runtime::SpanKind;
using acic::runtime::Topology;
using acic::runtime::Tracer;

TEST(Tracer, RecordsTaskSpans) {
  Machine machine(Topology::tiny(2));
  Tracer tracer;
  acic::runtime::attach_tracer(machine, tracer);
  machine.schedule_at(0.0, 0, [](Pe& pe) { pe.charge(5.0); });
  machine.schedule_at(0.0, 1, [](Pe& pe) { pe.charge(3.0); });
  machine.run();
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].kind, SpanKind::kTask);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end_us - tracer.spans()[0].start_us,
                   5.0);
}

TEST(Tracer, RecordsIdlePolls) {
  Machine machine(Topology::tiny(1));
  Tracer tracer;
  acic::runtime::attach_tracer(machine, tracer);
  int polls = 0;
  machine.add_idle_handler(0, [&polls](Pe& pe) {
    if (polls++ == 0) {
      pe.charge(2.0);
      return true;  // found work once
    }
    return false;
  });
  machine.schedule_at(0.0, 0, [](Pe&) {});
  machine.run();
  int tasks = 0;
  int idles = 0;
  for (const auto& span : tracer.spans()) {
    (span.kind == SpanKind::kTask ? tasks : idles) += 1;
  }
  EXPECT_EQ(tasks, 2);  // initial task + productive poll
  EXPECT_EQ(idles, 1);  // the final empty poll
}

TEST(Tracer, UtilizationBinsAreBounded) {
  Machine machine(Topology::tiny(2));
  Tracer tracer;
  acic::runtime::attach_tracer(machine, tracer);
  machine.schedule_at(0.0, 0, [](Pe& pe) { pe.charge(100.0); });
  machine.run();
  const auto util = tracer.utilization(2, 100.0, 10);
  ASSERT_EQ(util.size(), 2u);
  for (const double cell : util[0]) {
    EXPECT_GT(cell, 0.9);  // PE 0 busy the whole horizon
  }
  for (const double cell : util[1]) {
    EXPECT_DOUBLE_EQ(cell, 0.0);  // PE 1 never ran anything
  }
}

TEST(Tracer, SpanCrossingBinBoundarySplits) {
  Tracer tracer;
  tracer.record(0, 5.0, 15.0, SpanKind::kTask);  // spans bins 0 and 1
  const auto util = tracer.utilization(1, 20.0, 2);
  EXPECT_DOUBLE_EQ(util[0][0], 0.5);
  EXPECT_DOUBLE_EQ(util[0][1], 0.5);
}

TEST(Tracer, WriteCsvRoundTrip) {
  // Record a trace from a real (tiny) run, dump it, and parse it back:
  // header + one row per span, each row matching `pe,start,end,kind`
  // with the original values.
  Machine machine(Topology::tiny(2));
  Tracer tracer;
  acic::runtime::attach_tracer(machine, tracer);
  machine.schedule_at(0.0, 0, [](Pe& pe) { pe.charge(5.0); });
  machine.schedule_at(2.0, 1, [](Pe& pe) { pe.charge(1.5); });
  machine.run();
  ASSERT_EQ(tracer.spans().size(), 2u);

  const std::string path = ::testing::TempDir() + "/acic_roundtrip.csv";
  ASSERT_TRUE(tracer.write_csv(path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_STREQ(line, "pe,start_us,end_us,kind\n");
  std::size_t rows = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned pe = 0;
    double start = -1.0;
    double end = -1.0;
    char kind[16] = {0};
    ASSERT_EQ(std::sscanf(line, "%u,%lf,%lf,%15s", &pe, &start, &end,
                          kind),
              4)
        << "malformed row: " << line;
    const acic::runtime::TraceSpan& span = tracer.spans()[rows];
    EXPECT_EQ(pe, span.pe);
    EXPECT_NEAR(start, span.start_us, 1e-3);  // %.3f precision
    EXPECT_NEAR(end, span.end_us, 1e-3);
    EXPECT_STREQ(kind,
                 span.kind == SpanKind::kTask ? "task" : "idle");
    ++rows;
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(rows, tracer.spans().size());
}

TEST(Tracer, WriteCsvFailsOnBadPath) {
  Tracer tracer;
  tracer.record(0, 0.0, 1.0, SpanKind::kTask);
  EXPECT_FALSE(tracer.write_csv("/nonexistent-dir/trace.csv"));
}

TEST(Tracer, CsvAndArtOutputs) {
  Tracer tracer;
  tracer.record(0, 0.0, 1.0, SpanKind::kTask);
  tracer.record(1, 0.0, 0.5, SpanKind::kIdlePoll);
  const std::string path = ::testing::TempDir() + "/acic_trace.csv";
  ASSERT_TRUE(tracer.write_csv(path));
  std::remove(path.c_str());
  const std::string art = tracer.utilization_art(2, 1.0, 4);
  EXPECT_NE(art.find("pe0"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);  // pe0 fully busy
}

TEST(Tracer, AcicRunProducesPlausibleTimeline) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 5;
  const Csr csr = acic::stats::build_graph(spec);
  Machine machine(Topology::tiny(4));
  Tracer tracer;
  acic::runtime::attach_tracer(machine, tracer);
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 4);
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, {}, 60e6);
  EXPECT_FALSE(run.hit_time_limit);
  EXPECT_GT(tracer.spans().size(), 100u);
  // Early bins must be busier than the tail (the paper's "tail" effect).
  const auto util =
      tracer.utilization(4, run.sssp.metrics.sim_time_us, 10);
  double early = 0.0;
  double late = 0.0;
  for (std::uint32_t pe = 0; pe < 4; ++pe) {
    early += util[pe][1];
    late += util[pe][9];
  }
  EXPECT_GT(early, late);
}

// ---- fault injection ---------------------------------------------------------

TEST(FaultInjection, DuplicatedDeliveriesKeepDistancesCorrect) {
  // Updates are idempotent: re-delivering any of them can never corrupt
  // a distance (a duplicate is simply rejected).  However, the paper's
  // counter-based quiescence scheme assumes exactly-once delivery —
  // duplicates make `processed` overshoot `created`, so the run only
  // ends at the time limit.  The distances at that point must still be
  // exactly Dijkstra's.
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 13;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology::tiny(4));
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 4);
  AcicConfig config;
  config.tram.debug_duplicate_every = 7;
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config,
                            /*time_limit_us=*/50e3);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
  // The overshoot proves the exactly-once assumption is load-bearing.
  EXPECT_GT(run.sssp.metrics.updates_processed,
            run.sssp.metrics.updates_created);
}

TEST(FaultInjection, VertexTerminationSurvivesDuplicates) {
  // The abandoned finalized-vertex termination (§II.D) does not depend
  // on counter equality, so with an oracle it terminates cleanly even
  // under at-least-once delivery.
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 13;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);
  std::uint64_t reachable = 0;
  for (const auto d : expected) {
    if (d != acic::graph::kInfDist) ++reachable;
  }

  Machine machine(Topology::tiny(4));
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 4);
  AcicConfig config;
  config.tram.debug_duplicate_every = 7;
  config.use_vertex_termination = true;
  config.expected_reachable = reachable;
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 60e6);
  EXPECT_FALSE(run.hit_time_limit);
  EXPECT_TRUE(
      acic::graph::compare_distances(run.sssp.dist, expected).ok);
}

}  // namespace

namespace reorder {

using acic::core::AcicConfig;
using acic::graph::Csr;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Topology;

TEST(FaultInjection, ReversedBatchesStillTerminateAndMatch) {
  // Adversarial reordering inside every aggregate (worst updates first):
  // exactly-once delivery is preserved, so the counter-based quiescence
  // still works, and the result is order-independent.
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 17;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{1, 2, 4});
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 8);
  AcicConfig config;
  config.tram.debug_reverse_batches = true;
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
  EXPECT_FALSE(run.hit_time_limit);
  EXPECT_TRUE(
      acic::graph::compare_distances(run.sssp.dist, expected).ok);
  EXPECT_EQ(run.sssp.metrics.updates_created,
            run.sssp.metrics.updates_processed);
}

TEST(BalancedPartition, AcicMatchesDijkstraAndReducesHubImbalance) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 11;
  spec.seed = 19;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  acic::stats::AlgoParams block;
  const auto block_run = acic::stats::run_algorithm(
      acic::stats::Algo::kAcic, csr, spec, block);
  acic::stats::AlgoParams balanced;
  balanced.acic_balanced_partition = true;
  const auto balanced_run = acic::stats::run_algorithm(
      acic::stats::Algo::kAcic, csr, spec, balanced);

  EXPECT_TRUE(acic::graph::compare_distances(balanced_run.sssp.dist,
                                             expected)
                  .ok);
  // Balancing out-edges cannot make the hub concentration worse.
  EXPECT_LE(balanced_run.busy_imbalance, block_run.busy_imbalance + 0.5);
}

}  // namespace reorder
