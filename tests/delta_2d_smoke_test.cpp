// Smoke tests for the 2-D grid Δ-stepping baseline.

#include <gtest/gtest.h>

#include "src/baselines/delta_stepping_2d.hpp"
#include "src/baselines/sequential.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/validate.hpp"

namespace {

using acic::baselines::DeltaConfig;
using acic::baselines::DeltaRunResult;
using acic::graph::Csr;
using acic::graph::GenParams;
using acic::graph::Partition2D;
using acic::runtime::Machine;
using acic::runtime::Topology;

DeltaRunResult run_2d(const Csr& csr, acic::graph::VertexId source,
                      const Topology& topo, const DeltaConfig& config) {
  Machine machine(topo);
  const Partition2D partition = Partition2D::squarest(csr, topo.num_pes());
  return acic::baselines::delta_stepping_2d(machine, csr, partition, source,
                                            config);
}

TEST(Delta2DSmoke, TinyChainOnGrid) {
  acic::graph::EdgeList list(4, {});
  list.add(0, 1, 1.0);
  list.add(1, 2, 2.0);
  list.add(2, 3, 4.0);
  const Csr csr = Csr::from_edge_list(list);
  const DeltaRunResult run = run_2d(csr, 0, Topology{1, 2, 2}, {});
  EXPECT_FALSE(run.hit_time_limit);
  EXPECT_DOUBLE_EQ(run.sssp.dist[3], 7.0);
}

TEST(Delta2DSmoke, MatchesDijkstraOnRandomGraph) {
  GenParams params;
  params.num_vertices = 600;
  params.num_edges = 4800;
  params.seed = 17;
  const Csr csr =
      Csr::from_edge_list(acic::graph::generate_uniform_random(params));
  const auto expected = acic::baselines::dijkstra(csr, 0);

  const DeltaRunResult run = run_2d(csr, 0, Topology{1, 3, 3}, {});
  EXPECT_FALSE(run.hit_time_limit);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

TEST(Delta2DSmoke, MatchesDijkstraOnRmatWithHybrid) {
  GenParams params;
  params.num_vertices = 1024;
  params.num_edges = 8192;
  params.seed = 23;
  const Csr csr = Csr::from_edge_list(acic::graph::generate_rmat(params));
  const auto expected = acic::baselines::dijkstra(csr, 0);

  const DeltaRunResult run = run_2d(csr, 0, Topology{1, 2, 3}, {});
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
  const auto fixed = acic::graph::validate_sssp(csr, 0, run.sssp.dist);
  EXPECT_TRUE(fixed.ok) << fixed.error;
}

TEST(Delta2DSmoke, SpreadsHubEdgesAcrossColumn) {
  // A star graph: vertex 0 has huge out-degree.  Under the 2-D partition
  // its out-edges must spread across multiple cells (the load-balance
  // property the paper credits for the RMAT win).
  acic::graph::EdgeList list(64, {});
  for (acic::graph::VertexId v = 1; v < 64; ++v) list.add(0, v, 1.0);
  const Csr csr = Csr::from_edge_list(list);
  const Partition2D partition(csr, 2, 2);
  const auto counts = partition.edges_per_cell();
  int cells_with_edges = 0;
  for (const std::size_t c : counts) {
    if (c > 0) ++cells_with_edges;
  }
  EXPECT_GE(cells_with_edges, 2);
}

}  // namespace
