// Unit tests for the discrete-event runtime: topology math, event
// ordering, task/charge semantics, network costing, idle handlers,
// reductions/broadcasts, and the termination detector.

#include <gtest/gtest.h>

#include <vector>

#include "src/runtime/collectives.hpp"
#include "src/runtime/machine.hpp"

namespace {

using acic::runtime::IdleHandler;
using acic::runtime::Locality;
using acic::runtime::Machine;
using acic::runtime::NetworkModel;
using acic::runtime::Pe;
using acic::runtime::PeId;
using acic::runtime::Reducer;
using acic::runtime::RunStats;
using acic::runtime::SimTime;
using acic::runtime::TerminationDetector;
using acic::runtime::Topology;

TEST(Topology, CountsAndOwnership) {
  const Topology topo{2, 3, 4};  // 2 nodes, 3 procs/node, 4 PEs/proc
  EXPECT_EQ(topo.num_pes(), 24u);
  EXPECT_EQ(topo.num_procs(), 6u);
  EXPECT_EQ(topo.num_entities(), 30u);
  EXPECT_EQ(topo.proc_of(0), 0u);
  EXPECT_EQ(topo.proc_of(4), 1u);
  EXPECT_EQ(topo.proc_of(23), 5u);
  EXPECT_EQ(topo.node_of(0), 0u);
  EXPECT_EQ(topo.node_of(11), 0u);
  EXPECT_EQ(topo.node_of(12), 1u);
}

TEST(Topology, CommThreadIds) {
  const Topology topo{2, 3, 4};
  EXPECT_FALSE(topo.is_comm_thread(23));
  EXPECT_TRUE(topo.is_comm_thread(24));
  EXPECT_EQ(topo.comm_thread_of_proc(0), 24u);
  EXPECT_EQ(topo.proc_of(topo.comm_thread_of_proc(5)), 5u);
  EXPECT_EQ(topo.node_of(topo.comm_thread_of_proc(3)), 1u);
}

TEST(Topology, LocalityClassification) {
  const Topology topo{2, 2, 2};
  EXPECT_EQ(topo.locality(0, 0), Locality::kSelf);
  EXPECT_EQ(topo.locality(0, 1), Locality::kIntraProcess);
  EXPECT_EQ(topo.locality(0, 2), Locality::kIntraNode);
  EXPECT_EQ(topo.locality(0, 4), Locality::kInterNode);
}

TEST(Topology, PaperNodeIs48Workers) {
  const Topology topo = Topology::paper_node(1);
  EXPECT_EQ(topo.num_pes(), 48u);
  EXPECT_EQ(topo.num_procs(), 8u);
}

TEST(NetworkModel, TransferMonotoneInBytesAndDistance) {
  const NetworkModel net;
  EXPECT_LT(net.transfer_time(Locality::kIntraProcess, 100),
            net.transfer_time(Locality::kIntraNode, 100));
  EXPECT_LT(net.transfer_time(Locality::kIntraNode, 100),
            net.transfer_time(Locality::kInterNode, 100));
  EXPECT_LT(net.transfer_time(Locality::kInterNode, 100),
            net.transfer_time(Locality::kInterNode, 100000));
}

TEST(Machine, TasksRunInScheduleOrder) {
  Machine machine(Topology::tiny(1));
  std::vector<int> order;
  machine.schedule_at(2.0, 0, [&](Pe&) { order.push_back(2); });
  machine.schedule_at(1.0, 0, [&](Pe&) { order.push_back(1); });
  machine.schedule_at(3.0, 0, [&](Pe&) { order.push_back(3); });
  machine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Machine, TieBreaksBySequenceNumber) {
  Machine machine(Topology::tiny(1));
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    machine.schedule_at(1.0, 0, [&order, i](Pe&) { order.push_back(i); });
  }
  machine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Machine, ChargeAdvancesTaskTime) {
  Machine machine(Topology::tiny(1));
  SimTime after_first = 0.0;
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    pe.charge(10.0);
    after_first = pe.now();
  });
  SimTime second_start = 0.0;
  machine.schedule_at(0.0, 0, [&](Pe& pe) { second_start = pe.now(); });
  machine.run();
  EXPECT_DOUBLE_EQ(after_first, 10.0);
  // The second task cannot start before the first's simulated CPU ends.
  EXPECT_GE(second_start, 10.0);
}

TEST(Machine, SendPaysNetworkCosts) {
  const Topology topo{2, 1, 1};  // two single-PE nodes
  NetworkModel net;
  net.send_overhead_us = 1.0;
  net.recv_overhead_us = 2.0;
  net.latency_inter_node_us = 10.0;
  net.bytes_per_us_inter_node = 100.0;
  Machine machine(topo, net);

  SimTime arrival_time = -1.0;
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    pe.send(1, 1000, [&](Pe& dst) { arrival_time = dst.now(); });
  });
  machine.run();
  // send overhead 1 + latency 10 + 1000B/100Bpu = 10 + recv overhead 2.
  EXPECT_DOUBLE_EQ(arrival_time, 1.0 + 10.0 + 10.0 + 2.0);
}

TEST(Machine, IntraProcessCheaperThanInterNode) {
  const Topology topo{2, 1, 2};
  Machine machine(topo);
  SimTime local_arrival = 0.0;
  SimTime remote_arrival = 0.0;
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    pe.send(1, 64, [&](Pe& d) { local_arrival = d.now(); });
  });
  machine.schedule_at(0.0, 1, [&](Pe& pe) {
    pe.send(2, 64, [&](Pe& d) { remote_arrival = d.now(); });
  });
  machine.run();
  EXPECT_LT(local_arrival, remote_arrival);
}

TEST(Machine, RunStatsCountMessagesAndBytes) {
  Machine machine(Topology::tiny(2));
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    pe.send(1, 100, [](Pe&) {});
    pe.send(1, 200, [](Pe&) {});
  });
  const RunStats stats = machine.run();
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.bytes_sent, 300u);
  EXPECT_GE(stats.tasks_executed, 3u);  // the kick-off task + 2 arrivals
}

TEST(Machine, IdleHandlerRunsWhenQueueDrains) {
  Machine machine(Topology::tiny(1));
  int polls = 0;
  machine.add_idle_handler(0, [&](Pe&) {
    ++polls;
    return polls < 3;  // do "work" twice, then sleep
  });
  machine.schedule_at(0.0, 0, [](Pe&) {});
  machine.run();
  EXPECT_EQ(polls, 3);
}

TEST(Machine, IdleHandlerWakesAfterNewArrival) {
  Machine machine(Topology::tiny(1));
  int polls = 0;
  machine.add_idle_handler(0, [&](Pe&) {
    ++polls;
    return false;
  });
  machine.schedule_at(0.0, 0, [](Pe&) {});
  machine.schedule_at(100.0, 0, [](Pe&) {});
  machine.run();
  EXPECT_GE(polls, 2);  // once after each task drains the queue
}

TEST(Machine, TimeLimitStopsRun) {
  Machine machine(Topology::tiny(1));
  machine.add_idle_handler(0, [&](Pe& pe) {
    pe.charge(10.0);
    return true;  // work forever
  });
  machine.schedule_at(0.0, 0, [](Pe&) {});
  const RunStats stats = machine.run(1000.0);
  EXPECT_TRUE(stats.hit_time_limit);
  EXPECT_LE(stats.end_time_us, 1100.0);
}

TEST(Machine, HitTimeLimitFalseWhenQueueDrains) {
  Machine machine(Topology::tiny(1));
  machine.schedule_at(0.0, 0, [](Pe& pe) { pe.charge(10.0); });
  const RunStats stats = machine.run();  // no limit
  EXPECT_FALSE(stats.hit_time_limit);

  // A generous explicit limit that is never reached must not trip.
  machine.schedule_at(20.0, 0, [](Pe& pe) { pe.charge(1.0); });
  const RunStats bounded = machine.run(1e9);
  EXPECT_FALSE(bounded.hit_time_limit);
}

TEST(Machine, HitTimeLimitResumableAcrossRuns) {
  Machine machine(Topology::tiny(1));
  int executed = 0;
  machine.schedule_at(0.0, 0, [&](Pe&) { ++executed; });
  machine.schedule_at(500.0, 0, [&](Pe&) { ++executed; });

  const RunStats first = machine.run(100.0);
  EXPECT_TRUE(first.hit_time_limit);
  EXPECT_EQ(executed, 1);  // the 500us event is still queued

  const RunStats second = machine.run();
  EXPECT_FALSE(second.hit_time_limit);
  EXPECT_EQ(executed, 2);
  EXPECT_GE(second.end_time_us, 500.0);
}

TEST(Machine, IdleHandlersMultiplexRoundRobin) {
  // Two tenants on one PE: the machine must poll both (no clobbering)
  // and rotate the starting handler so neither starves the other.
  Machine machine(Topology::tiny(1));
  std::vector<int> served;
  int a_budget = 3;
  int b_budget = 3;
  machine.add_idle_handler(0, [&](Pe& pe) {
    if (a_budget == 0) return false;
    --a_budget;
    served.push_back(0);
    pe.charge(1.0);
    return true;
  });
  machine.add_idle_handler(0, [&](Pe& pe) {
    if (b_budget == 0) return false;
    --b_budget;
    served.push_back(1);
    pe.charge(1.0);
    return true;
  });
  machine.schedule_at(0.0, 0, [](Pe&) {});
  machine.run();
  ASSERT_EQ(served.size(), 6u);
  // Strict alternation: after a handler does work, the next poll starts
  // with the other one.
  for (std::size_t i = 1; i < served.size(); ++i) {
    EXPECT_NE(served[i], served[i - 1]) << "at poll " << i;
  }
}

TEST(Machine, RemoveIdleHandlerStopsPolling) {
  Machine machine(Topology::tiny(1));
  int a_polls = 0;
  int b_polls = 0;
  const auto id_a = machine.add_idle_handler(0, [&](Pe&) {
    ++a_polls;
    return false;
  });
  machine.add_idle_handler(0, [&](Pe&) {
    ++b_polls;
    return false;
  });
  machine.schedule_at(0.0, 0, [](Pe&) {});
  machine.run();
  // Two polls: registration pokes the PE (one wake-up poll covers both
  // adds), then the scheduled task drains and triggers a second poll.
  EXPECT_EQ(a_polls, 2);
  EXPECT_EQ(b_polls, 2);
  EXPECT_EQ(machine.num_idle_handlers(0), 2u);

  machine.remove_idle_handler(0, id_a);
  EXPECT_EQ(machine.num_idle_handlers(0), 1u);
  machine.schedule_at(1000.0, 0, [](Pe&) {});
  machine.run();
  EXPECT_EQ(a_polls, 2);  // removed handler is never polled again
  EXPECT_EQ(b_polls, 3);
}

TEST(TopologyDeath, RejectsZeroDimensions) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(Machine(Topology{0, 1, 1}), "nodes must be > 0");
  EXPECT_DEATH(Machine(Topology{1, 0, 1}), "procs_per_node must be > 0");
  EXPECT_DEATH(Machine(Topology{1, 1, 0}), "pes_per_proc must be > 0");
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine machine(Topology{1, 2, 2});
    std::vector<std::pair<PeId, SimTime>> log;
    for (PeId p = 0; p < machine.num_pes(); ++p) {
      machine.schedule_at(0.0, p, [&log, p](Pe& pe) {
        pe.charge(1.0);
        pe.send((p + 1) % 4, 64, [&log](Pe& dst) {
          log.emplace_back(dst.id(), dst.now());
        });
      });
    }
    machine.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Reducer, SumsAllContributionsAtRoot) {
  Machine machine(Topology::tiny(7));
  std::vector<double> root_sum;
  Reducer reducer(
      machine, 2,
      [&](Pe&, std::uint64_t, const std::vector<double>& sum)
          -> std::optional<std::vector<double>> {
        root_sum = sum;
        return std::nullopt;
      },
      [](Pe&, std::uint64_t, const std::vector<double>&) {});
  for (PeId p = 0; p < machine.num_pes(); ++p) {
    machine.schedule_at(0.0, p, [&reducer, p](Pe& pe) {
      reducer.contribute(pe, {1.0, static_cast<double>(p)});
    });
  }
  machine.run();
  ASSERT_EQ(root_sum.size(), 2u);
  EXPECT_DOUBLE_EQ(root_sum[0], 7.0);
  EXPECT_DOUBLE_EQ(root_sum[1], 21.0);  // 0+1+...+6
}

TEST(Reducer, BroadcastReachesEveryPe) {
  Machine machine(Topology{1, 2, 3});
  std::vector<int> seen(machine.num_pes(), 0);
  Reducer reducer(
      machine, 1,
      [](Pe&, std::uint64_t,
         const std::vector<double>&) -> std::optional<std::vector<double>> {
        return std::vector<double>{42.0};
      },
      [&](Pe& pe, std::uint64_t, const std::vector<double>& payload) {
        EXPECT_DOUBLE_EQ(payload[0], 42.0);
        ++seen[pe.id()];
      });
  for (PeId p = 0; p < machine.num_pes(); ++p) {
    machine.schedule_at(0.0, p, [&reducer](Pe& pe) {
      reducer.contribute(pe, {1.0});
    });
  }
  machine.run();
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Reducer, PipelinedCyclesKeepSumsSeparate) {
  Machine machine(Topology::tiny(3));
  std::vector<double> sums;
  Reducer reducer(
      machine, 1,
      [&](Pe&, std::uint64_t, const std::vector<double>& sum)
          -> std::optional<std::vector<double>> {
        sums.push_back(sum[0]);
        return std::nullopt;
      },
      [](Pe&, std::uint64_t, const std::vector<double>&) {});
  for (PeId p = 0; p < machine.num_pes(); ++p) {
    machine.schedule_at(0.0, p, [&reducer](Pe& pe) {
      reducer.contribute(pe, {1.0});  // cycle 0
      reducer.contribute(pe, {10.0});  // cycle 1 immediately after
    });
  }
  machine.run();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 30.0);
}

TEST(Reducer, SingletonMachineReducesTrivially) {
  Machine machine(Topology::tiny(1));
  int cycles = 0;
  Reducer reducer(
      machine, 1,
      [&](Pe&, std::uint64_t,
          const std::vector<double>& sum) -> std::optional<std::vector<double>> {
        ++cycles;
        EXPECT_DOUBLE_EQ(sum[0], 5.0);
        return std::nullopt;
      },
      [](Pe&, std::uint64_t, const std::vector<double>&) {});
  machine.schedule_at(0.0, 0, [&reducer](Pe& pe) {
    reducer.contribute(pe, {5.0});
  });
  machine.run();
  EXPECT_EQ(cycles, 1);
}

TEST(TerminationDetector, DetectsQuiescenceAfterStableCounters) {
  Machine machine(Topology::tiny(4));
  std::vector<std::uint64_t> created(4, 1);
  std::vector<std::uint64_t> processed(4, 1);
  std::vector<int> terminated(4, 0);
  TerminationDetector detector(
      machine,
      [&](Pe& pe) {
        return std::make_pair(created[pe.id()], processed[pe.id()]);
      },
      [](Pe&) {}, [&](Pe& pe) { ++terminated[pe.id()]; }, 10.0);
  detector.start();
  machine.run();
  EXPECT_TRUE(detector.terminated());
  for (const int t : terminated) EXPECT_EQ(t, 1);
}

TEST(TerminationDetector, WaitsWhileCountersMove) {
  Machine machine(Topology::tiny(2));
  // PE 0's counters only match from the 3rd contribution on; termination
  // needs two further stable cycles after that.
  std::uint64_t calls = 0;
  TerminationDetector detector(
      machine,
      [&](Pe& pe) -> std::pair<std::uint64_t, std::uint64_t> {
        if (pe.id() == 0) ++calls;
        const std::uint64_t processed = (calls >= 3) ? 5u : calls;
        return {5u, pe.id() == 0 ? processed : 5u};
      },
      [](Pe&) {}, [](Pe&) {}, 5.0);
  detector.start();
  machine.run();
  EXPECT_TRUE(detector.terminated());
  EXPECT_GE(detector.cycles(), 4u);
}

}  // namespace
