// Parameterized correctness sweeps for every baseline: sequential
// kernels (Dijkstra self-check via fixed point, Bellman-Ford,
// Δ-stepping across Δ values) and the distributed algorithms across
// graph kinds, seeds and machine shapes.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/baselines/delta_stepping_2d.hpp"
#include "src/baselines/delta_stepping_dist.hpp"
#include "src/baselines/distributed_control.hpp"
#include "src/baselines/kla.hpp"
#include "src/baselines/sequential.hpp"
#include "src/graph/partition2d.hpp"
#include "src/graph/validate.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::graph::Csr;
using acic::graph::Partition1D;
using acic::graph::Partition2D;
using acic::runtime::Machine;
using acic::runtime::Topology;
using acic::stats::ExperimentSpec;
using acic::stats::GraphKind;

Csr make_graph(GraphKind kind, std::uint64_t seed, std::uint32_t scale = 10,
               std::uint32_t edge_factor = 8) {
  ExperimentSpec spec;
  spec.graph = kind;
  spec.scale = scale;
  spec.edge_factor = edge_factor;
  spec.seed = seed;
  return acic::stats::build_graph(spec);
}

// ---- sequential kernels -----------------------------------------------------

TEST(SequentialKernels, DijkstraSatisfiesFixedPoint) {
  for (const GraphKind kind :
       {GraphKind::kRandom, GraphKind::kRmat, GraphKind::kRoad}) {
    const Csr csr = make_graph(kind, 3);
    const auto dist = acic::baselines::dijkstra(csr, 0);
    const auto result = acic::graph::validate_sssp(csr, 0, dist);
    EXPECT_TRUE(result.ok) << result.error;
  }
}

TEST(SequentialKernels, BellmanFordMatchesDijkstra) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Csr csr = make_graph(GraphKind::kRandom, seed, 9);
    const auto expected = acic::baselines::dijkstra(csr, 0);
    const auto actual = acic::baselines::bellman_ford(csr, 0);
    EXPECT_TRUE(
        acic::graph::compare_distances(actual, expected).ok)
        << "seed " << seed;
  }
}

TEST(SequentialKernels, BellmanFordCountsPhases) {
  const Csr csr = make_graph(GraphKind::kRoad, 1, 10);
  acic::baselines::SeqStats stats;
  acic::baselines::bellman_ford(csr, 0, &stats);
  EXPECT_GT(stats.phases, 1u);
  EXPECT_GT(stats.relaxations, csr.num_edges());
}

class SeqDeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SeqDeltaSweep, MatchesDijkstraForAnyDelta) {
  const Csr csr = make_graph(GraphKind::kRmat, 7);
  const auto expected = acic::baselines::dijkstra(csr, 0);
  const auto actual =
      acic::baselines::delta_stepping_seq(csr, 0, GetParam());
  EXPECT_TRUE(acic::graph::compare_distances(actual, expected).ok);
}

INSTANTIATE_TEST_SUITE_P(Deltas, SeqDeltaSweep,
                         ::testing::Values(0.0, 1.0, 8.0, 64.0, 1024.0),
                         [](const auto& info) {
                           return "delta" +
                                  std::to_string(
                                      static_cast<int>(info.param));
                         });

TEST(SequentialKernels, DefaultDeltaIsPositive) {
  const Csr csr = make_graph(GraphKind::kRandom, 2);
  EXPECT_GT(acic::baselines::default_delta(csr), 0.0);
  // Empty graph edge case.
  const Csr empty = Csr::from_edge_list(acic::graph::EdgeList(4, {}));
  EXPECT_GT(acic::baselines::default_delta(empty), 0.0);
}

TEST(SequentialKernels, DijkstraStatsCountRelaxations) {
  const Csr csr = make_graph(GraphKind::kRandom, 5, 9);
  acic::baselines::SeqStats stats;
  acic::baselines::dijkstra(csr, 0, &stats);
  EXPECT_GT(stats.relaxations, 0u);
  EXPECT_GE(stats.relaxations, stats.improvements);
}

// ---- distributed algorithms across kinds × seeds ---------------------------

enum class DistAlgo { kDelta1D, kDelta2D, kKla, kDc };

using DistCase = std::tuple<DistAlgo, GraphKind, std::uint64_t>;

class DistributedSweep : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedSweep, MatchesDijkstra) {
  const auto [algo, kind, seed] = GetParam();
  const Csr csr = make_graph(kind, seed);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{2, 2, 2});
  std::vector<acic::graph::Dist> dist;
  switch (algo) {
    case DistAlgo::kDelta1D: {
      const auto partition =
          Partition1D::block(csr.num_vertices(), machine.num_pes());
      dist = acic::baselines::delta_stepping_dist(machine, csr, partition,
                                                  0, {}, 120e6)
                 .sssp.dist;
      break;
    }
    case DistAlgo::kDelta2D: {
      const auto partition =
          Partition2D::squarest(csr, machine.num_pes());
      dist = acic::baselines::delta_stepping_2d(machine, csr, partition,
                                                0, {}, 120e6)
                 .sssp.dist;
      break;
    }
    case DistAlgo::kKla: {
      const auto partition =
          Partition1D::block(csr.num_vertices(), machine.num_pes());
      dist = acic::baselines::kla_sssp(machine, csr, partition, 0, {},
                                       120e6)
                 .sssp.dist;
      break;
    }
    case DistAlgo::kDc: {
      const auto partition =
          Partition1D::block(csr.num_vertices(), machine.num_pes());
      dist = acic::baselines::distributed_control_sssp(
                 machine, csr, partition, 0, {}, 120e6)
                 .sssp.dist;
      break;
    }
  }
  const auto cmp = acic::graph::compare_distances(dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

std::string dist_case_name(const ::testing::TestParamInfo<DistCase>& info) {
  const char* names[] = {"delta1d", "delta2d", "kla", "dc"};
  std::string kind = acic::stats::graph_kind_name(std::get<1>(info.param));
  for (char& c : kind) {
    if (c == '-') c = '_';
  }
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_" + kind + "_s" + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AlgosKindsSeeds, DistributedSweep,
    ::testing::Combine(
        ::testing::Values(DistAlgo::kDelta1D, DistAlgo::kDelta2D,
                          DistAlgo::kKla, DistAlgo::kDc),
        ::testing::Values(GraphKind::kRandom, GraphKind::kRmat,
                          GraphKind::kRoad),
        ::testing::Values(1u, 2u)),
    dist_case_name);

// ---- Δ-stepping specifics ---------------------------------------------------

TEST(DeltaDist, ExplicitDeltaValuesAllCorrect) {
  const Csr csr = make_graph(GraphKind::kRandom, 9);
  const auto expected = acic::baselines::dijkstra(csr, 0);
  for (const double delta : {4.0, 32.0, 300.0}) {
    Machine machine(Topology::tiny(4));
    const auto partition = Partition1D::block(csr.num_vertices(), 4);
    acic::baselines::DeltaConfig config;
    config.delta = delta;
    const auto run = acic::baselines::delta_stepping_dist(
        machine, csr, partition, 0, config, 120e6);
    EXPECT_TRUE(
        acic::graph::compare_distances(run.sssp.dist, expected).ok)
        << "delta " << delta;
  }
}

TEST(DeltaDist, HugeDeltaDegeneratesToFewBuckets) {
  const Csr csr = make_graph(GraphKind::kRandom, 9, 9);
  Machine machine(Topology::tiny(4));
  const auto partition = Partition1D::block(csr.num_vertices(), 4);
  acic::baselines::DeltaConfig config;
  config.delta = 1e9;  // everything is a light edge in bucket 0
  config.hybrid_bellman_ford = false;
  const auto run = acic::baselines::delta_stepping_dist(
      machine, csr, partition, 0, config, 120e6);
  EXPECT_EQ(run.buckets_processed, 1u);
  const auto expected = acic::baselines::dijkstra(csr, 0);
  EXPECT_TRUE(acic::graph::compare_distances(run.sssp.dist, expected).ok);
}

TEST(DeltaDist, HybridSwitchTriggersOnRoadGraph) {
  // Road graphs have a long settled-count decay, so the local-maximum
  // heuristic must fire.
  const Csr csr = make_graph(GraphKind::kRoad, 4, 12);
  Machine machine(Topology{1, 2, 2});
  const auto partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  const auto run = acic::baselines::delta_stepping_dist(
      machine, csr, partition, 0, {}, 300e6);
  EXPECT_TRUE(run.switched_to_bf);
  EXPECT_GT(run.bf_sweeps, 0u);
  const auto expected = acic::baselines::dijkstra(csr, 0);
  EXPECT_TRUE(acic::graph::compare_distances(run.sssp.dist, expected).ok);
}

TEST(Delta2D, RectangularGridsWork) {
  const Csr csr = make_graph(GraphKind::kRandom, 6, 9);
  const auto expected = acic::baselines::dijkstra(csr, 0);
  for (const auto& [nodes, procs, pes] :
       {std::tuple{1u, 2u, 3u}, std::tuple{1u, 1u, 5u},
        std::tuple{2u, 3u, 2u}}) {
    Machine machine(Topology{nodes, procs, pes});
    const auto partition =
        Partition2D::squarest(csr, machine.num_pes());
    const auto run = acic::baselines::delta_stepping_2d(
        machine, csr, partition, 0, {}, 120e6);
    EXPECT_TRUE(
        acic::graph::compare_distances(run.sssp.dist, expected).ok)
        << nodes << "x" << procs << "x" << pes;
  }
}

// ---- KLA specifics ----------------------------------------------------------

TEST(KlaBehaviour, AdaptsKUpward) {
  const Csr csr = make_graph(GraphKind::kRandom, 10);
  Machine machine(Topology::tiny(4));
  const auto partition = Partition1D::block(csr.num_vertices(), 4);
  acic::baselines::KlaConfig config;
  config.initial_k = 1;
  const auto run =
      acic::baselines::kla_sssp(machine, csr, partition, 0, config, 120e6);
  // The changed-count surges in early supersteps; k must have grown at
  // some point (it may shrink back down while draining the tail).
  EXPECT_GT(run.peak_k, 1u);
}

TEST(KlaBehaviour, RespectsMaxK) {
  const Csr csr = make_graph(GraphKind::kRandom, 10, 9);
  Machine machine(Topology::tiny(4));
  const auto partition = Partition1D::block(csr.num_vertices(), 4);
  acic::baselines::KlaConfig config;
  config.initial_k = 2;
  config.max_k = 4;
  const auto run =
      acic::baselines::kla_sssp(machine, csr, partition, 0, config, 120e6);
  EXPECT_LE(run.final_k, 4u);
}

// ---- distributed control specifics -----------------------------------------

TEST(DcBehaviour, DeterministicAcrossRuns) {
  const Csr csr = make_graph(GraphKind::kRmat, 11);
  const auto partition = Partition1D::block(csr.num_vertices(), 8);
  auto run_once = [&] {
    Machine machine(Topology{2, 2, 2});
    return acic::baselines::distributed_control_sssp(machine, csr,
                                                     partition, 0, {},
                                                     120e6);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.sssp.dist, b.sssp.dist);
  EXPECT_EQ(a.sssp.metrics.updates_created,
            b.sssp.metrics.updates_created);
}

TEST(DcBehaviour, ConservationHolds) {
  const Csr csr = make_graph(GraphKind::kRandom, 12);
  Machine machine(Topology::tiny(4));
  const auto partition = Partition1D::block(csr.num_vertices(), 4);
  const auto run = acic::baselines::distributed_control_sssp(
      machine, csr, partition, 0, {}, 120e6);
  EXPECT_EQ(run.sssp.metrics.updates_created,
            run.sssp.metrics.updates_processed);
}

}  // namespace
