// Property-based tests: invariants that must hold for every algorithm on
// every workload, plus negative tests proving the validator catches
// corrupted results.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "src/baselines/sequential.hpp"
#include "src/graph/validate.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/rng.hpp"

namespace {

using acic::graph::Csr;
using acic::graph::Dist;
using acic::graph::kInfDist;
using acic::stats::Algo;
using acic::stats::ExperimentSpec;
using acic::stats::GraphKind;

// ---- cross-algorithm properties --------------------------------------------

using AlgoKind = std::tuple<Algo, GraphKind>;

class AlgorithmProperties : public ::testing::TestWithParam<AlgoKind> {};

TEST_P(AlgorithmProperties, FixedPointAndMetricsInvariants) {
  const auto [algo, kind] = GetParam();
  ExperimentSpec spec;
  spec.graph = kind;
  spec.scale = 10;
  spec.edge_factor = 8;
  spec.seed = 19;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);
  const auto outcome =
      acic::stats::run_algorithm(algo, csr, spec, {}, 300e6);
  ASSERT_FALSE(outcome.hit_time_limit);
  const auto& dist = outcome.sssp.dist;
  const auto& m = outcome.sssp.metrics;

  // P1: the SSSP fixed point (implies exact shortest distances).
  const auto fixed = acic::graph::validate_sssp(csr, spec.source, dist);
  EXPECT_TRUE(fixed.ok) << fixed.error;

  // P2: all distances non-negative; source is zero.
  for (const Dist d : dist) {
    EXPECT_TRUE(d >= 0.0) << d;
  }
  EXPECT_DOUBLE_EQ(dist[spec.source], 0.0);

  // P3: simulated time advanced and is finite.
  EXPECT_GT(m.sim_time_us, 0.0);
  EXPECT_TRUE(std::isfinite(m.sim_time_us));

  // P4: work accounting is sane.
  EXPECT_GT(m.updates_created, 0u);
  EXPECT_GE(m.updates_processed, m.updates_rejected);
  EXPECT_LE(m.wasted_fraction(), 1.0);
  EXPECT_GE(m.wasted_fraction(), 0.0);

  // P5: vertices_touched equals the number of reachable vertices
  // (every reachable vertex goes from infinity to finite exactly once).
  std::uint64_t reachable = 0;
  for (const Dist d : dist) {
    if (d != kInfDist) ++reachable;
  }
  EXPECT_EQ(m.vertices_touched, reachable);

  // P6: some traffic flowed and TEPS is consistent with it.
  EXPECT_GT(m.network_messages, 0u);
  EXPECT_NEAR(m.teps(),
              static_cast<double>(m.updates_created) / m.sim_time_s(),
              1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllKinds, AlgorithmProperties,
    ::testing::Combine(
        ::testing::Values(Algo::kAcic, Algo::kRiken, Algo::kDelta1D,
                          Algo::kKla, Algo::kDistControl,
                          Algo::kAsyncBaseline),
        ::testing::Values(GraphKind::kRandom, GraphKind::kRmat,
                          GraphKind::kRoad)),
    [](const auto& info) {
      std::string name = acic::stats::algo_name(std::get<0>(info.param));
      name += "_";
      name += acic::stats::graph_kind_name(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- algorithm-independence property ----------------------------------------

TEST(Properties, AllAlgorithmsAgreeExactly) {
  // Six independent implementations; exact agreement on every vertex is
  // the strongest cross-check the repository has.
  ExperimentSpec spec;
  spec.graph = GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 91;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);

  const auto reference =
      acic::stats::run_algorithm(Algo::kAcic, csr, spec).sssp.dist;
  for (const Algo algo :
       {Algo::kRiken, Algo::kDelta1D, Algo::kKla, Algo::kDistControl,
        Algo::kAsyncBaseline}) {
    const auto dist =
        acic::stats::run_algorithm(algo, csr, spec).sssp.dist;
    const auto cmp = acic::graph::compare_distances(dist, reference);
    EXPECT_TRUE(cmp.ok)
        << acic::stats::algo_name(algo) << ": " << cmp.error;
  }
}

// ---- monotonicity property ---------------------------------------------------

TEST(Properties, RemovingEdgesNeverShortensDistances) {
  ExperimentSpec spec;
  spec.graph = GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 27;
  const Csr full = acic::stats::build_graph(spec);

  // Drop every third edge.
  acic::graph::EdgeList reduced(full.num_vertices(), {});
  std::size_t i = 0;
  for (acic::graph::VertexId v = 0; v < full.num_vertices(); ++v) {
    for (const auto& nb : full.out_neighbors(v)) {
      if (i++ % 3 != 0) reduced.add(v, nb.dst, nb.weight);
    }
  }
  const Csr sparse = Csr::from_edge_list(reduced);

  const auto dist_full = acic::baselines::dijkstra(full, 0);
  const auto dist_sparse = acic::baselines::dijkstra(sparse, 0);
  for (acic::graph::VertexId v = 0; v < full.num_vertices(); ++v) {
    EXPECT_GE(dist_sparse[v], dist_full[v]) << "vertex " << v;
  }
}

TEST(Properties, ScalingWeightsScalesDistances) {
  ExperimentSpec spec;
  spec.graph = GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 28;
  const Csr csr = acic::stats::build_graph(spec);

  acic::graph::EdgeList doubled(csr.num_vertices(), {});
  for (acic::graph::VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (const auto& nb : csr.out_neighbors(v)) {
      doubled.add(v, nb.dst, nb.weight * 2.0);
    }
  }
  const auto base = acic::baselines::dijkstra(csr, 0);
  const auto scaled = acic::baselines::dijkstra(
      Csr::from_edge_list(doubled), 0);
  for (std::size_t v = 0; v < base.size(); ++v) {
    if (base[v] == kInfDist) {
      EXPECT_EQ(scaled[v], kInfDist);
    } else {
      EXPECT_DOUBLE_EQ(scaled[v], base[v] * 2.0);
    }
  }
}

// ---- validator negative tests -----------------------------------------------

class ValidatorCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    ExperimentSpec spec;
    spec.graph = GraphKind::kRandom;
    spec.scale = 8;
    // Sparse enough that some vertices are unreachable (needed by the
    // fabricated-reachability test).
    spec.edge_factor = 2;
    spec.seed = 14;
    csr_ = acic::stats::build_graph(spec);
    dist_ = acic::baselines::dijkstra(csr_, 0);
  }

  Csr csr_;
  std::vector<Dist> dist_;
};

TEST_F(ValidatorCorruption, AcceptsCorrectResult) {
  EXPECT_TRUE(acic::graph::validate_sssp(csr_, 0, dist_).ok);
}

TEST_F(ValidatorCorruption, DetectsInflatedDistance) {
  // Find a reachable non-source vertex and inflate it.
  for (std::size_t v = 1; v < dist_.size(); ++v) {
    if (dist_[v] != kInfDist) {
      dist_[v] += 1.0;
      break;
    }
  }
  EXPECT_FALSE(acic::graph::validate_sssp(csr_, 0, dist_).ok);
}

TEST_F(ValidatorCorruption, DetectsDeflatedDistance) {
  for (std::size_t v = 1; v < dist_.size(); ++v) {
    if (dist_[v] != kInfDist && dist_[v] > 1.0) {
      dist_[v] -= 0.5;
      break;
    }
  }
  EXPECT_FALSE(acic::graph::validate_sssp(csr_, 0, dist_).ok);
}

TEST_F(ValidatorCorruption, DetectsWrongSourceDistance) {
  dist_[0] = 1.0;
  EXPECT_FALSE(acic::graph::validate_sssp(csr_, 0, dist_).ok);
}

TEST_F(ValidatorCorruption, DetectsFabricatedReachability) {
  // Mark an unreachable vertex as reached with a plausible value.
  for (std::size_t v = 0; v < dist_.size(); ++v) {
    if (dist_[v] == kInfDist) {
      dist_[v] = 10.0;
      EXPECT_FALSE(acic::graph::validate_sssp(csr_, 0, dist_).ok);
      return;
    }
  }
  GTEST_SKIP() << "graph fully reachable for this seed";
}

TEST_F(ValidatorCorruption, DetectsSizeMismatch) {
  dist_.pop_back();
  EXPECT_FALSE(acic::graph::validate_sssp(csr_, 0, dist_).ok);
}

TEST(CompareDistances, ExactAndInfinityAware) {
  const std::vector<Dist> a{0.0, 1.0, kInfDist};
  EXPECT_TRUE(acic::graph::compare_distances(a, a).ok);
  const std::vector<Dist> b{0.0, 1.0000001, kInfDist};
  EXPECT_FALSE(acic::graph::compare_distances(a, b).ok);
  const std::vector<Dist> c{0.0, 1.0};
  EXPECT_FALSE(acic::graph::compare_distances(a, c).ok);
  const std::vector<Dist> d{0.0, kInfDist, 1.0};
  EXPECT_FALSE(acic::graph::compare_distances(a, d).ok);
}

// ---- experiment harness ------------------------------------------------------

TEST(Harness, GraphKindNamesRoundTrip) {
  for (const GraphKind kind :
       {GraphKind::kRandom, GraphKind::kRmat, GraphKind::kRoad,
        GraphKind::kErdosRenyi}) {
    EXPECT_EQ(acic::stats::graph_kind_from_string(
                  acic::stats::graph_kind_name(kind)),
              kind);
  }
}

TEST(Harness, AlgoNamesRoundTrip) {
  for (const Algo algo :
       {Algo::kAcic, Algo::kDelta1D, Algo::kRiken, Algo::kKla,
        Algo::kDistControl, Algo::kAsyncBaseline}) {
    EXPECT_EQ(acic::stats::algo_from_string(acic::stats::algo_name(algo)),
              algo);
  }
}

TEST(Harness, TopologySelection) {
  ExperimentSpec spec;
  spec.nodes = 3;
  EXPECT_EQ(spec.topology().num_pes(), 24u);  // mini nodes: 8 workers
  spec.full_scale_nodes = true;
  EXPECT_EQ(spec.topology().num_pes(), 144u);  // paper nodes: 48 workers
  spec.pes_override = 5;
  EXPECT_EQ(spec.topology().num_pes(), 5u);
}

TEST(Harness, BuildGraphHonorsScale) {
  ExperimentSpec spec;
  spec.scale = 8;
  spec.edge_factor = 4;
  const Csr csr = acic::stats::build_graph(spec);
  EXPECT_EQ(csr.num_vertices(), 256u);
  EXPECT_NEAR(static_cast<double>(csr.num_edges()), 1024.0, 64.0);
}

TEST(Harness, RoadGraphIsSquareGrid) {
  ExperimentSpec spec;
  spec.graph = GraphKind::kRoad;
  spec.scale = 8;
  const Csr csr = acic::stats::build_graph(spec);
  EXPECT_EQ(csr.num_vertices(), 256u);  // 16 x 16
}

}  // namespace
