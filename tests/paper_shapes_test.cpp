// Shape-regression tests: miniature versions of the paper's headline
// claims, pinned as assertions so a refactor that silently destroys a
// reproduced result fails CI.  Each uses a fixed seed and small scale;
// thresholds are chosen with generous margins over the measured values
// (see EXPERIMENTS.md for the full-size numbers).

#include <gtest/gtest.h>

#include "src/cc/async_cc.hpp"
#include "src/cc/bsp_cc.hpp"
#include "src/graph/generators.hpp"
#include "src/stats/compare.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::stats::Algo;
using acic::stats::AlgoParams;
using acic::stats::ExperimentSpec;
using acic::stats::GraphKind;

ExperimentSpec base_spec(GraphKind kind, std::uint32_t nodes) {
  ExperimentSpec spec;
  spec.graph = kind;
  spec.scale = 12;
  spec.seed = 101;
  spec.nodes = nodes;
  return spec;
}

TEST(PaperShapes, PqSuppressesSpeculation) {
  // Fig. 5 / §IV.E: a low p_pq creates noticeably fewer updates than a
  // fully open pq.
  const auto spec = base_spec(GraphKind::kRandom, 6);  // 48 PEs
  const auto csr = acic::stats::build_graph(spec);
  AlgoParams low;
  low.acic.p_pq = 0.05;
  AlgoParams high;
  high.acic.p_pq = 0.999;
  const auto low_run =
      acic::stats::run_algorithm(Algo::kAcic, csr, spec, low);
  const auto high_run =
      acic::stats::run_algorithm(Algo::kAcic, csr, spec, high);
  EXPECT_LT(static_cast<double>(low_run.sssp.metrics.updates_created),
            0.9 * static_cast<double>(high_run.sssp.metrics.updates_created));
}

TEST(PaperShapes, RemovingPqExplodesUpdates) {
  // §I / ablation: the min-priority queue is the main waste suppressor.
  const auto spec = base_spec(GraphKind::kRandom, 4);
  const auto csr = acic::stats::build_graph(spec);
  AlgoParams with_pq;
  AlgoParams without_pq;
  without_pq.acic.use_pq = false;
  const auto with_run =
      acic::stats::run_algorithm(Algo::kAcic, csr, spec, with_pq);
  const auto without_run =
      acic::stats::run_algorithm(Algo::kAcic, csr, spec, without_pq);
  EXPECT_GT(without_run.sssp.metrics.updates_created,
            2 * with_run.sssp.metrics.updates_created);
  EXPECT_GT(without_run.sssp.metrics.sim_time_us,
            with_run.sssp.metrics.sim_time_us);
}

TEST(PaperShapes, AcicBeatsRikenOnRandomAtScaleAndLosesOnRmat) {
  // Fig. 7's two headline outcomes at 8 mini-nodes.
  const auto random_spec = base_spec(GraphKind::kRandom, 8);
  const auto random_csr = acic::stats::build_graph(random_spec);
  const auto acic_random =
      acic::stats::run_algorithm(Algo::kAcic, random_csr, random_spec);
  const auto riken_random =
      acic::stats::run_algorithm(Algo::kRiken, random_csr, random_spec);
  EXPECT_LT(acic_random.sssp.metrics.sim_time_us,
            riken_random.sssp.metrics.sim_time_us);

  const auto rmat_spec = base_spec(GraphKind::kRmat, 8);
  const auto rmat_csr = acic::stats::build_graph(rmat_spec);
  const auto acic_rmat =
      acic::stats::run_algorithm(Algo::kAcic, rmat_csr, rmat_spec);
  const auto riken_rmat =
      acic::stats::run_algorithm(Algo::kRiken, rmat_csr, rmat_spec);
  EXPECT_GT(acic_rmat.sssp.metrics.sim_time_us,
            1.5 * riken_rmat.sssp.metrics.sim_time_us);
}

TEST(PaperShapes, RmatHubsImbalanceAcicsOneDPartition) {
  // §IV.F: ACIC's 1-D partition concentrates hub work; the 2-D baseline
  // stays far more balanced on RMAT.
  const auto spec = base_spec(GraphKind::kRmat, 4);
  const auto csr = acic::stats::build_graph(spec);
  const auto acic_run = acic::stats::run_algorithm(Algo::kAcic, csr, spec);
  const auto riken_run =
      acic::stats::run_algorithm(Algo::kRiken, csr, spec);
  EXPECT_GT(acic_run.busy_imbalance, 2.0);
  EXPECT_LT(riken_run.busy_imbalance, acic_run.busy_imbalance);
}

TEST(PaperShapes, IntrospectionBeatsNoIntrospection) {
  // ACIC vs distributed control (same asynchrony, no histograms or
  // thresholds): introspection must reduce created updates.
  const auto spec = base_spec(GraphKind::kRandom, 4);
  const auto csr = acic::stats::build_graph(spec);
  const auto acic_run = acic::stats::run_algorithm(Algo::kAcic, csr, spec);
  const auto dc_run =
      acic::stats::run_algorithm(Algo::kDistControl, csr, spec);
  EXPECT_LT(acic_run.sssp.metrics.updates_created,
            dc_run.sssp.metrics.updates_created);
}

TEST(PaperShapes, HighDiameterFavorsAsynchrony) {
  // §V prediction (measured in examples/road_network): on a road graph
  // the bulk-synchronous baseline needs far more synchronization rounds
  // and more time than ACIC.
  const auto spec = base_spec(GraphKind::kRoad, 4);
  const auto csr = acic::stats::build_graph(spec);
  const auto acic_run = acic::stats::run_algorithm(Algo::kAcic, csr, spec);
  const auto riken_run =
      acic::stats::run_algorithm(Algo::kRiken, csr, spec);
  EXPECT_LT(acic_run.sssp.metrics.sim_time_us,
            riken_run.sssp.metrics.sim_time_us);
  EXPECT_GT(riken_run.cycles, 2 * acic_run.cycles);
}

TEST(PaperShapes, AsyncCcBeatsBspCc) {
  // §V: asynchronous introspective connected components vs BSP label
  // propagation on a sparse random graph.
  acic::graph::GenParams params;
  params.num_vertices = 1u << 12;
  params.num_edges = 2u << 12;
  params.seed = 103;
  const auto csr = acic::graph::Csr::from_edge_list(
      acic::graph::generate_uniform_random(params).symmetrized());
  const acic::runtime::Topology topo{4, 2, 4};
  const auto partition =
      acic::graph::Partition1D::block(csr.num_vertices(), topo.num_pes());
  acic::runtime::Machine m1(topo);
  const auto async_result = acic::cc::async_cc(m1, csr, partition);
  acic::runtime::Machine m2(topo);
  const auto bsp_result = acic::cc::bsp_cc(m2, csr, partition);
  EXPECT_LT(async_result.sim_time_us, bsp_result.sim_time_us);
  EXPECT_LT(async_result.updates_created, bsp_result.updates_created);
}

TEST(PaperShapes, PaperOptimalBufferRule) {
  // Fig. 6's published optima, used by the comparison grid.
  EXPECT_EQ(acic::stats::paper_optimal_buffer(1), 2048u);
  EXPECT_EQ(acic::stats::paper_optimal_buffer(2), 2048u);
  EXPECT_EQ(acic::stats::paper_optimal_buffer(4), 1024u);
  EXPECT_EQ(acic::stats::paper_optimal_buffer(8), 1024u);
  EXPECT_EQ(acic::stats::paper_optimal_buffer(16), 512u);
}

TEST(PaperShapes, ComparisonGridRunsEndToEnd) {
  // The machinery behind figs. 7-9, at toy size.
  acic::stats::CompareSpec spec;
  spec.scale = 10;
  spec.trials = 1;
  spec.nodes_list = {1, 2};
  spec.graphs = {GraphKind::kRandom};
  const auto rows = acic::stats::run_comparison(spec);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_FALSE(row.any_time_limit);
    EXPECT_GT(row.acic_time_s, 0.0);
    EXPECT_GT(row.riken_time_s, 0.0);
    EXPECT_GT(row.acic_updates, 0.0);
    EXPECT_GT(row.speedup_acic_over_riken(), 0.0);
  }
}

}  // namespace
