// Tests for the string-keyed solver registry (src/sssp/solver.hpp):
// the built-in name set, registry-vs-free-function equivalence (the
// adapters call the original entry points, so both paths must produce
// bit-identical distances and simulated times), observability neutrality
// (attaching a registry never perturbs a run), cross-solver distance
// agreement, register_solver, and the unknown-name contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/baselines/delta_stepping_dist.hpp"
#include "src/baselines/kla.hpp"
#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/validate.hpp"
#include "src/obs/registry.hpp"
#include "src/sssp/solver.hpp"

namespace {

using acic::graph::Csr;
using acic::graph::Dist;
using acic::graph::Partition1D;
using acic::obs::Registry;
using acic::runtime::Machine;
using acic::runtime::Topology;
using acic::sssp::SolverOptions;
using acic::sssp::SolverRun;

Csr test_graph(std::uint32_t scale = 9, std::uint64_t seed = 7) {
  acic::graph::GenParams params;
  params.num_vertices = acic::graph::VertexId{1} << scale;
  params.num_edges = params.num_vertices * 8ull;
  params.seed = seed;
  return Csr::from_edge_list(acic::graph::generate_uniform_random(params));
}

TEST(SolverRegistry, BuiltInNames) {
  const std::vector<std::string> names = acic::sssp::solver_names();
  const std::vector<std::string> expected = {
      "acic",        "delta_stepping_dist", "delta_stepping_2d",
      "kla",         "distributed_control", "async_baseline",
      "sequential"};
  for (const std::string& name : expected) {
    EXPECT_TRUE(acic::sssp::has_solver(name)) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
  EXPECT_FALSE(acic::sssp::has_solver("nope"));
}

// ---- registry-vs-free-function equivalence -----------------------------

TEST(SolverRegistry, AcicMatchesFreeFunction) {
  const Csr csr = test_graph();
  const Topology topo{2, 2, 2};

  Machine direct_machine(topo);
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), direct_machine.num_pes());
  const auto direct = acic::core::acic_sssp(direct_machine, csr, partition,
                                            0, acic::core::AcicConfig{});

  Machine registry_machine(topo);
  const SolverRun run =
      acic::sssp::run_solver("acic", registry_machine, csr, 0);

  EXPECT_EQ(run.telemetry.solver, "acic");
  ASSERT_EQ(run.sssp.dist.size(), direct.sssp.dist.size());
  for (std::size_t v = 0; v < run.sssp.dist.size(); ++v) {
    EXPECT_DOUBLE_EQ(run.sssp.dist[v], direct.sssp.dist[v]);
  }
  EXPECT_DOUBLE_EQ(run.sssp.metrics.sim_time_us,
                   direct.sssp.metrics.sim_time_us);
  EXPECT_EQ(run.sssp.metrics.updates_created,
            direct.sssp.metrics.updates_created);
  EXPECT_EQ(run.sssp.metrics.network_messages,
            direct.sssp.metrics.network_messages);
  EXPECT_EQ(run.telemetry.cycles, direct.reduction_cycles);
  EXPECT_EQ(run.telemetry.extra("expanded"),
            static_cast<double>(direct.lifecycle.expanded));
}

TEST(SolverRegistry, DeltaSteppingMatchesFreeFunction) {
  const Csr csr = test_graph();
  const Topology topo{2, 2, 2};

  Machine direct_machine(topo);
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), direct_machine.num_pes());
  const auto direct = acic::baselines::delta_stepping_dist(
      direct_machine, csr, partition, 0, acic::baselines::DeltaConfig{});

  Machine registry_machine(topo);
  const SolverRun run = acic::sssp::run_solver("delta_stepping_dist",
                                               registry_machine, csr, 0);

  ASSERT_EQ(run.sssp.dist.size(), direct.sssp.dist.size());
  for (std::size_t v = 0; v < run.sssp.dist.size(); ++v) {
    EXPECT_DOUBLE_EQ(run.sssp.dist[v], direct.sssp.dist[v]);
  }
  EXPECT_DOUBLE_EQ(run.sssp.metrics.sim_time_us,
                   direct.sssp.metrics.sim_time_us);
  EXPECT_EQ(run.telemetry.cycles, direct.barrier_rounds);
}

TEST(SolverRegistry, KlaMatchesFreeFunction) {
  const Csr csr = test_graph();
  const Topology topo{2, 2, 2};

  Machine direct_machine(topo);
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), direct_machine.num_pes());
  const auto direct = acic::baselines::kla_sssp(
      direct_machine, csr, partition, 0, acic::baselines::KlaConfig{});

  Machine registry_machine(topo);
  const SolverRun run =
      acic::sssp::run_solver("kla", registry_machine, csr, 0);

  ASSERT_EQ(run.sssp.dist.size(), direct.sssp.dist.size());
  for (std::size_t v = 0; v < run.sssp.dist.size(); ++v) {
    EXPECT_DOUBLE_EQ(run.sssp.dist[v], direct.sssp.dist[v]);
  }
  EXPECT_DOUBLE_EQ(run.sssp.metrics.sim_time_us,
                   direct.sssp.metrics.sim_time_us);
  EXPECT_EQ(run.telemetry.cycles, direct.supersteps);
}

// ---- observability neutrality ------------------------------------------

TEST(SolverRegistry, AttachingRegistryDoesNotPerturbRuns) {
  const Csr csr = test_graph(8);
  const Topology topo{2, 2, 2};
  for (const std::string& name : acic::sssp::solver_names()) {
    if (name == "sequential") continue;

    Machine plain_machine(topo);
    const SolverRun plain =
        acic::sssp::run_solver(name, plain_machine, csr, 0);

    Registry registry(topo);
    Machine observed_machine(topo);
    SolverOptions opts;
    opts.registry = &registry;
    const SolverRun observed =
        acic::sssp::run_solver(name, observed_machine, csr, 0, opts);

    // Neutrality holds across the engine modes too: an optimistic
    // parallel run (registry-less — an attached registry forces the
    // serial loop) commits the same schedule the observed run saw.
    Machine optimistic_machine(topo);
    optimistic_machine.set_threads(2);
    SolverOptions optimistic_opts;
    optimistic_opts.engine_mode = acic::runtime::EngineMode::kOptimistic;
    const SolverRun optimistic = acic::sssp::run_solver(
        name, optimistic_machine, csr, 0, optimistic_opts);
    ASSERT_EQ(optimistic.sssp.dist, plain.sssp.dist) << name;
    EXPECT_DOUBLE_EQ(optimistic.sssp.metrics.sim_time_us,
                     plain.sssp.metrics.sim_time_us)
        << name;
    EXPECT_EQ(optimistic.telemetry.cycles, plain.telemetry.cycles) << name;

    ASSERT_EQ(observed.sssp.dist.size(), plain.sssp.dist.size()) << name;
    for (std::size_t v = 0; v < plain.sssp.dist.size(); ++v) {
      ASSERT_DOUBLE_EQ(observed.sssp.dist[v], plain.sssp.dist[v])
          << name << " vertex " << v;
    }
    EXPECT_DOUBLE_EQ(observed.sssp.metrics.sim_time_us,
                     plain.sssp.metrics.sim_time_us)
        << name;
    EXPECT_EQ(observed.sssp.metrics.updates_created,
              plain.sssp.metrics.updates_created)
        << name;
    EXPECT_EQ(observed.telemetry.cycles, plain.telemetry.cycles) << name;

    // And the observed run actually published something.
    EXPECT_GT(registry.total("runtime/tasks_executed"), 0u) << name;
    if (name != "delta_stepping_2d") {
      // All tram-based solvers feed the shared tram counters (the 2-D
      // grid solver messages its rows/columns directly, without tram).
      EXPECT_GT(registry.total("tram/items_inserted"), 0u) << name;
    }
  }
}

// ---- cross-solver agreement --------------------------------------------

TEST(SolverRegistry, AllSolversAgreeWithDijkstra) {
  const Csr csr = test_graph(8, 11);
  const Topology topo{2, 2, 2};
  const std::vector<Dist> expected = acic::baselines::dijkstra(csr, 3);

  for (const std::string& name : acic::sssp::solver_names()) {
    Machine machine(topo);
    const SolverRun run = acic::sssp::run_solver(name, machine, csr, 3);
    const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
    EXPECT_TRUE(cmp.ok) << name << ": " << cmp.error;
    EXPECT_EQ(run.telemetry.solver, name);
    EXPECT_FALSE(run.telemetry.hit_time_limit) << name;
    if (name != "sequential") {
      EXPECT_GT(run.telemetry.cycles, 0u) << name;
      EXPECT_GE(run.telemetry.busy_imbalance, 1.0) << name;
      EXPECT_EQ(run.telemetry.pe_busy_us.size(), topo.num_pes()) << name;
    }
  }
}

TEST(SolverRegistry, SequentialMethods) {
  const Csr csr = test_graph(8, 13);
  const std::vector<Dist> expected = acic::baselines::dijkstra(csr, 0);
  Machine machine(Topology::tiny(1));
  for (const char* method : {"dijkstra", "bellman_ford", "delta_stepping"}) {
    SolverOptions opts;
    opts.sequential_method = method;
    const SolverRun run =
        acic::sssp::run_solver("sequential", machine, csr, 0, opts);
    const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
    EXPECT_TRUE(cmp.ok) << method << ": " << cmp.error;
    EXPECT_GT(run.telemetry.extra("relaxations"), 0.0) << method;
  }
}

// ---- registration and error contracts ----------------------------------

TEST(SolverRegistry, RegisterSolverAddsAndReplaces) {
  const Csr csr = test_graph(6);
  Machine machine(Topology::tiny(2));

  acic::sssp::register_solver(
      "test_stub", [](Machine&, const Csr& g, acic::graph::VertexId,
                      const SolverOptions&) {
        SolverRun out;
        out.sssp.dist.assign(g.num_vertices(), 42.0);
        return out;
      });
  EXPECT_TRUE(acic::sssp::has_solver("test_stub"));
  const SolverRun run =
      acic::sssp::run_solver("test_stub", machine, csr, 0);
  EXPECT_DOUBLE_EQ(run.sssp.dist[0], 42.0);
  EXPECT_EQ(run.telemetry.solver, "test_stub");

  // Re-registering under the same name replaces the entry in place:
  // the name list gains no duplicate.
  acic::sssp::register_solver(
      "test_stub", [](Machine&, const Csr& g, acic::graph::VertexId,
                      const SolverOptions&) {
        SolverRun out;
        out.sssp.dist.assign(g.num_vertices(), 7.0);
        return out;
      });
  const auto names = acic::sssp::solver_names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "test_stub"), 1);
  EXPECT_DOUBLE_EQ(
      acic::sssp::run_solver("test_stub", machine, csr, 0).sssp.dist[0],
      7.0);
}

TEST(SolverRegistryDeathTest, UnknownNameAsserts) {
  const Csr csr = test_graph(6);
  Machine machine(Topology::tiny(2));
  EXPECT_DEATH(acic::sssp::run_solver("no_such_solver", machine, csr, 0),
               "unknown solver name");
}

}  // namespace
