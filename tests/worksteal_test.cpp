// Tests for ACIC's in-process work stealing (future work §V): exact
// correctness under stealing, conservation including chunk accounting,
// and actual redistribution of hub work.

#include <gtest/gtest.h>

#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/validate.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/rng.hpp"

namespace {

using acic::core::AcicConfig;
using acic::graph::Csr;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Topology;

class WorkStealSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WorkStealSweep, MatchesDijkstraAtAnyThreshold) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 61;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{2, 2, 3});
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  AcicConfig config;
  config.steal_threshold_degree = GetParam();
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
  ASSERT_FALSE(run.hit_time_limit);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
  // Conservation must include the chunk pseudo-updates.
  EXPECT_EQ(run.sssp.metrics.updates_created,
            run.sssp.metrics.updates_processed);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, WorkStealSweep,
                         ::testing::Values(1u, 8u, 64u, 1024u),
                         [](const auto& info) {
                           return "threshold" +
                                  std::to_string(info.param);
                         });

TEST(WorkSteal, SpreadsHubWorkAcrossProcess) {
  // A star graph whose hub lives on PE 0: without stealing, PE 0 does
  // all the relaxation work; with stealing its process siblings share it.
  acic::graph::EdgeList list(4096, {});
  acic::util::Xoshiro256 rng(5);
  for (acic::graph::VertexId v = 1; v < 4096; ++v) {
    list.add(0, v, rng.next_double(1.0, 10.0));
  }
  const Csr csr = Csr::from_edge_list(list);
  const Topology topo{1, 1, 4};
  const Partition1D partition = Partition1D::block(4096, 4);

  auto hub_share = [&](std::uint32_t threshold) {
    Machine machine(topo);
    AcicConfig config;
    config.steal_threshold_degree = threshold;
    const auto run =
        acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
    double total = 0.0;
    for (const double b : run.pe_busy_us) total += b;
    return run.pe_busy_us[0] / total;
  };

  const double share_without = hub_share(0);
  const double share_with = hub_share(16);
  // Without stealing PE 0 carries far more than its 1/4 fair share (it
  // relaxes all 4095 hub edges on top of applying its own updates).
  EXPECT_GT(share_without, 0.38);
  EXPECT_LT(share_with, share_without * 0.85);
}

TEST(WorkSteal, SingleWorkerProcessDegradesGracefully) {
  // With one PE per process there is nobody to steal; the shared-queue
  // path must still terminate and be correct.
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 62;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{2, 2, 1});
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  AcicConfig config;
  config.steal_threshold_degree = 1;
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
  EXPECT_TRUE(
      acic::graph::compare_distances(run.sssp.dist, expected).ok);
}

TEST(WorkSteal, DeterministicWithStealing) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 63;
  const Csr csr = acic::stats::build_graph(spec);
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 8);

  auto run_once = [&] {
    Machine machine(Topology{1, 2, 4});
    AcicConfig config;
    config.steal_threshold_degree = 32;
    return acic::core::acic_sssp(machine, csr, partition, 0, config,
                                 120e6);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.sssp.dist, b.sssp.dist);
  EXPECT_EQ(a.sssp.metrics.sim_time_us, b.sssp.metrics.sim_time_us);
}

}  // namespace

namespace hubsplit {

using acic::core::AcicConfig;
using acic::graph::Csr;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Topology;

class HubSplitSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HubSplitSweep, MatchesDijkstraAtAnyThreshold) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 67;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{2, 2, 2});
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  AcicConfig config;
  config.hub_split_degree = GetParam();
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
  ASSERT_FALSE(run.hit_time_limit);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
  EXPECT_EQ(run.sssp.metrics.updates_created,
            run.sssp.metrics.updates_processed);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HubSplitSweep,
                         ::testing::Values(1u, 32u, 512u),
                         [](const auto& info) {
                           return "degree" + std::to_string(info.param);
                         });

TEST(HubSplit, ComposesWithWorkStealing) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 68;
  const Csr csr = acic::stats::build_graph(spec);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{1, 2, 4});
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 8);
  AcicConfig config;
  config.hub_split_degree = 256;      // only the biggest hubs go global
  config.steal_threshold_degree = 32; // mid-size hubs stay in-process
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
  EXPECT_TRUE(
      acic::graph::compare_distances(run.sssp.dist, expected).ok);
}

TEST(HubSplit, SpreadsStarGraphAcrossNodes) {
  acic::graph::EdgeList list(4096, {});
  acic::util::Xoshiro256 rng(5);
  for (acic::graph::VertexId v = 1; v < 4096; ++v) {
    list.add(0, v, rng.next_double(1.0, 10.0));
  }
  const Csr csr = Csr::from_edge_list(list);
  const Topology topo{2, 2, 2};  // stealing alone cannot cross nodes
  const Partition1D partition = Partition1D::block(4096, 8);

  auto hub_share = [&](std::uint32_t degree) {
    Machine machine(topo);
    AcicConfig config;
    config.hub_split_degree = degree;
    const auto run =
        acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
    double total = 0.0;
    for (const double b : run.pe_busy_us) total += b;
    return run.pe_busy_us[0] / total;
  };
  const double share_without = hub_share(0);
  const double share_with = hub_share(16);
  EXPECT_LT(share_with, share_without * 0.8);
  // With global scattering, even PEs on the other node get real work.
  Machine machine(topo);
  AcicConfig config;
  config.hub_split_degree = 16;
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
  EXPECT_GT(run.pe_busy_us[7], 0.0);
}

}  // namespace hubsplit
