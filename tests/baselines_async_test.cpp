// Smoke + correctness tests for the asynchronous baselines: distributed
// control (with and without priority ordering) and KLA.

#include <gtest/gtest.h>

#include "src/baselines/distributed_control.hpp"
#include "src/baselines/kla.hpp"
#include "src/baselines/sequential.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/validate.hpp"

namespace {

using acic::graph::Csr;
using acic::graph::GenParams;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Topology;

Csr small_random(std::uint64_t seed, acic::graph::VertexId n = 512,
                 std::uint64_t m = 4096) {
  GenParams params;
  params.num_vertices = n;
  params.num_edges = m;
  params.seed = seed;
  return Csr::from_edge_list(acic::graph::generate_uniform_random(params));
}

TEST(DistributedControl, MatchesDijkstraWithPriority) {
  const Csr csr = small_random(31);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{1, 2, 3});
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 6);
  const auto run = acic::baselines::distributed_control_sssp(
      machine, csr, partition, 0, {});
  EXPECT_FALSE(run.hit_time_limit);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

TEST(DistributedControl, MatchesDijkstraWithoutPriority) {
  const Csr csr = small_random(32);
  const auto expected = acic::baselines::dijkstra(csr, 5);

  Machine machine(Topology::tiny(4));
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 4);
  acic::baselines::DistributedControlConfig config;
  config.use_priority = false;
  const auto run = acic::baselines::distributed_control_sssp(
      machine, csr, partition, 5, config);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

TEST(DistributedControl, PriorityOrderingReducesWaste) {
  const Csr csr = small_random(33, 1024, 8192);
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 6);

  Machine with(Topology{1, 2, 3});
  acic::baselines::DistributedControlConfig cfg_with;
  const auto run_with = acic::baselines::distributed_control_sssp(
      with, csr, partition, 0, cfg_with);

  Machine without(Topology{1, 2, 3});
  acic::baselines::DistributedControlConfig cfg_without;
  cfg_without.use_priority = false;
  const auto run_without = acic::baselines::distributed_control_sssp(
      without, csr, partition, 0, cfg_without);

  // Expanding immediately on arrival speculates far more: the unordered
  // variant must create at least as many updates.
  EXPECT_LE(run_with.sssp.metrics.updates_created,
            run_without.sssp.metrics.updates_created);
}

TEST(Kla, MatchesDijkstraOnRandomGraph) {
  const Csr csr = small_random(41);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology{1, 2, 3});
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 6);
  const auto run =
      acic::baselines::kla_sssp(machine, csr, partition, 0, {});
  EXPECT_FALSE(run.hit_time_limit);
  EXPECT_GE(run.supersteps, 1u);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

TEST(Kla, MatchesDijkstraOnRmat) {
  GenParams params;
  params.num_vertices = 1024;
  params.num_edges = 8192;
  params.seed = 42;
  const Csr csr = Csr::from_edge_list(acic::graph::generate_rmat(params));
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology::tiny(4));
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 4);
  const auto run =
      acic::baselines::kla_sssp(machine, csr, partition, 0, {});
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

TEST(Kla, LargeKBehavesAsynchronously) {
  // With k so large no deferral can trigger, KLA completes in one
  // superstep, like distributed control.
  const Csr csr = small_random(43);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology::tiny(4));
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 4);
  acic::baselines::KlaConfig config;
  config.initial_k = 1u << 15;
  const auto run =
      acic::baselines::kla_sssp(machine, csr, partition, 0, config);
  EXPECT_LE(run.supersteps, 1u);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

TEST(Kla, KOneIsMostSynchronous) {
  const Csr csr = small_random(44);
  const auto expected = acic::baselines::dijkstra(csr, 0);

  Machine machine(Topology::tiny(4));
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 4);
  acic::baselines::KlaConfig config;
  config.initial_k = 1;
  config.max_k = 1;  // pin k: every hop defers
  const auto run =
      acic::baselines::kla_sssp(machine, csr, partition, 0, config);
  EXPECT_GT(run.supersteps, 2u);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
}

}  // namespace
