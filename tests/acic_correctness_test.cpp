// Parameterized correctness sweeps for ACIC: every graph kind × seed ×
// machine shape × parameter setting must produce exactly Dijkstra's
// distances, satisfy the SSSP fixed point, conserve update counts, and
// be deterministic.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/validate.hpp"
#include "src/stats/experiment.hpp"
#include "src/util/rng.hpp"

namespace {

using acic::core::AcicConfig;
using acic::core::AcicRunResult;
using acic::graph::Csr;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::stats::ExperimentSpec;
using acic::stats::GraphKind;

AcicRunResult run_acic(const Csr& csr, const ExperimentSpec& spec,
                       const AcicConfig& config) {
  Machine machine(spec.topology());
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  return acic::core::acic_sssp(machine, csr, partition, spec.source,
                               config, /*time_limit_us=*/120e6);
}

void expect_correct(const Csr& csr, acic::graph::VertexId source,
                    const AcicRunResult& run) {
  ASSERT_FALSE(run.hit_time_limit);
  const auto expected = acic::baselines::dijkstra(csr, source);
  const auto cmp =
      acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
  const auto fixed =
      acic::graph::validate_sssp(csr, source, run.sssp.dist);
  EXPECT_TRUE(fixed.ok) << fixed.error;
  EXPECT_EQ(run.sssp.metrics.updates_created,
            run.sssp.metrics.updates_processed);
}

// ---- graph kind × seed sweep ---------------------------------------------

using KindSeed = std::tuple<GraphKind, std::uint64_t>;

class AcicGraphSweep : public ::testing::TestWithParam<KindSeed> {};

TEST_P(AcicGraphSweep, MatchesDijkstra) {
  const auto [kind, seed] = GetParam();
  ExperimentSpec spec;
  spec.graph = kind;
  spec.scale = 10;
  spec.edge_factor = 8;
  spec.seed = seed;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);
  expect_correct(csr, spec.source, run_acic(csr, spec, {}));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, AcicGraphSweep,
    ::testing::Combine(::testing::Values(GraphKind::kRandom,
                                         GraphKind::kRmat,
                                         GraphKind::kRoad,
                                         GraphKind::kErdosRenyi),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      std::string name =
          acic::stats::graph_kind_name(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name.append("_seed").append(
          std::to_string(std::get<1>(info.param)));
    });

// ---- machine shape sweep ---------------------------------------------------

class AcicTopologySweep
    : public ::testing::TestWithParam<acic::runtime::Topology> {};

TEST_P(AcicTopologySweep, MatchesDijkstra) {
  ExperimentSpec spec;
  spec.graph = GraphKind::kRandom;
  spec.scale = 10;
  spec.seed = 42;
  const Csr csr = acic::stats::build_graph(spec);

  Machine machine(GetParam());
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, {}, 120e6);
  expect_correct(csr, 0, run);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AcicTopologySweep,
    ::testing::Values(acic::runtime::Topology{1, 1, 1},   // sequential
                      acic::runtime::Topology{1, 1, 7},   // one process
                      acic::runtime::Topology{1, 3, 2},   // multi-process
                      acic::runtime::Topology{2, 2, 2},   // multi-node
                      acic::runtime::Topology{4, 2, 3},   // 24 PEs
                      acic::runtime::Topology{3, 1, 5}),  // odd shapes
    [](const auto& info) {
      return std::to_string(info.param.nodes) + "n" +
             std::to_string(info.param.procs_per_node) + "p" +
             std::to_string(info.param.pes_per_proc) + "w";
    });

// ---- parameter sweep --------------------------------------------------------

struct ParamCase {
  const char* name;
  double p_tram;
  double p_pq;
  std::size_t buckets;
  std::size_t buffer;
  acic::tram::Aggregation mode;
  bool use_pq;
  bool use_pq_hold;
  bool use_tram_hold;
};

class AcicParamSweep : public ::testing::TestWithParam<ParamCase> {};

TEST_P(AcicParamSweep, MatchesDijkstraUnderAnyConfiguration) {
  const ParamCase& param = GetParam();
  ExperimentSpec spec;
  spec.graph = GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 8;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);

  AcicConfig config;
  config.p_tram = param.p_tram;
  config.p_pq = param.p_pq;
  config.num_buckets = param.buckets;
  config.tram.buffer_items = param.buffer;
  config.tram.mode = param.mode;
  config.use_pq = param.use_pq;
  config.use_pq_hold = param.use_pq_hold;
  config.use_tram_hold = param.use_tram_hold;
  expect_correct(csr, spec.source, run_acic(csr, spec, config));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AcicParamSweep,
    ::testing::Values(
        ParamCase{"paper_tuned", 0.999, 0.05, 512, 1024,
                  acic::tram::Aggregation::kWP, true, true, true},
        ParamCase{"tight_tram", 0.05, 0.05, 512, 1024,
                  acic::tram::Aggregation::kWP, true, true, true},
        ParamCase{"wide_pq", 0.999, 0.999, 512, 1024,
                  acic::tram::Aggregation::kWP, true, true, true},
        ParamCase{"few_buckets", 0.5, 0.5, 8, 1024,
                  acic::tram::Aggregation::kWP, true, true, true},
        ParamCase{"single_bucket", 0.5, 0.5, 1, 1024,
                  acic::tram::Aggregation::kWP, true, true, true},
        ParamCase{"tiny_buffers", 0.999, 0.05, 512, 2,
                  acic::tram::Aggregation::kWP, true, true, true},
        ParamCase{"huge_buffers", 0.999, 0.05, 512, 1u << 20,
                  acic::tram::Aggregation::kWP, true, true, true},
        ParamCase{"mode_pp", 0.999, 0.05, 512, 256,
                  acic::tram::Aggregation::kPP, true, true, true},
        ParamCase{"mode_ww", 0.999, 0.05, 512, 256,
                  acic::tram::Aggregation::kWW, true, true, true},
        ParamCase{"mode_pw", 0.999, 0.05, 512, 256,
                  acic::tram::Aggregation::kPW, true, true, true},
        ParamCase{"no_pq", 0.999, 0.05, 512, 1024,
                  acic::tram::Aggregation::kWP, false, false, false},
        ParamCase{"no_pq_hold", 0.999, 0.05, 512, 1024,
                  acic::tram::Aggregation::kWP, true, false, true},
        ParamCase{"no_tram_hold", 0.999, 0.05, 512, 1024,
                  acic::tram::Aggregation::kWP, true, true, false}),
    [](const auto& info) { return std::string(info.param.name); });

// ---- sources, determinism, special cases ----------------------------------

TEST(AcicCorrectness, WorkWindowPolicyMatchesDijkstra) {
  ExperimentSpec spec;
  spec.graph = GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 71;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);
  AcicConfig config;
  config.threshold_policy = acic::core::ThresholdPolicyKind::kWorkWindow;
  expect_correct(csr, spec.source, run_acic(csr, spec, config));
}

TEST(AcicCorrectness, NonZeroSources) {
  ExperimentSpec spec;
  spec.graph = GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 21;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);
  for (const acic::graph::VertexId source :
       {acic::graph::VertexId{1}, acic::graph::VertexId{137},
        acic::graph::VertexId{511}}) {
    ExperimentSpec with_source = spec;
    with_source.source = source;
    const auto run = run_acic(csr, with_source, {});
    const auto expected = acic::baselines::dijkstra(csr, source);
    const auto cmp =
        acic::graph::compare_distances(run.sssp.dist, expected);
    EXPECT_TRUE(cmp.ok) << "source " << source << ": " << cmp.error;
  }
}

TEST(AcicCorrectness, DeterministicAcrossRuns) {
  ExperimentSpec spec;
  spec.graph = GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 33;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);

  const auto a = run_acic(csr, spec, {});
  const auto b = run_acic(csr, spec, {});
  EXPECT_EQ(a.sssp.dist, b.sssp.dist);
  EXPECT_EQ(a.sssp.metrics.updates_created, b.sssp.metrics.updates_created);
  EXPECT_EQ(a.sssp.metrics.sim_time_us, b.sssp.metrics.sim_time_us);
  EXPECT_EQ(a.reduction_cycles, b.reduction_cycles);
}

TEST(AcicCorrectness, DistancesInvariantUnderNetworkTiming) {
  // The ownership discipline means network parameters may change *when*
  // things happen but never *what* is computed.
  ExperimentSpec spec;
  spec.graph = GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 77;
  const Csr csr = acic::stats::build_graph(spec);
  const Partition1D partition = Partition1D::block(csr.num_vertices(), 8);

  acic::runtime::NetworkModel slow;
  slow.latency_inter_node_us = 50.0;
  slow.latency_intra_node_us = 10.0;
  slow.send_overhead_us = 5.0;

  Machine fast_machine(acic::runtime::Topology{2, 2, 2});
  Machine slow_machine(acic::runtime::Topology{2, 2, 2}, slow);
  const auto fast = acic::core::acic_sssp(fast_machine, csr, partition,
                                          0, {}, 120e6);
  const auto slow_run = acic::core::acic_sssp(slow_machine, csr,
                                              partition, 0, {}, 120e6);
  EXPECT_EQ(fast.sssp.dist, slow_run.sssp.dist);
  EXPECT_GT(slow_run.sssp.metrics.sim_time_us,
            fast.sssp.metrics.sim_time_us);
}

TEST(AcicCorrectness, SingleVertexGraph) {
  acic::graph::EdgeList list(1, {});
  const Csr csr = Csr::from_edge_list(list);
  Machine machine(acic::runtime::Topology::tiny(1));
  const Partition1D partition = Partition1D::block(1, 1);
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, {}, 1e6);
  ASSERT_EQ(run.sssp.dist.size(), 1u);
  EXPECT_DOUBLE_EQ(run.sssp.dist[0], 0.0);
  EXPECT_FALSE(run.hit_time_limit);
}

TEST(AcicCorrectness, MorePesThanVertices) {
  acic::graph::EdgeList list(3, {});
  list.add(0, 1, 1.0);
  list.add(1, 2, 1.0);
  const Csr csr = Csr::from_edge_list(list);
  Machine machine(acic::runtime::Topology::tiny(8));
  const Partition1D partition = Partition1D::block(3, 8);
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, {}, 1e6);
  EXPECT_DOUBLE_EQ(run.sssp.dist[2], 2.0);
}

TEST(AcicCorrectness, ZeroWeightEdges) {
  acic::graph::EdgeList list(4, {});
  list.add(0, 1, 0.0);
  list.add(1, 2, 0.0);
  list.add(2, 3, 5.0);
  const Csr csr = Csr::from_edge_list(list);
  Machine machine(acic::runtime::Topology::tiny(2));
  const Partition1D partition = Partition1D::block(4, 2);
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, {}, 1e6);
  EXPECT_DOUBLE_EQ(run.sssp.dist[1], 0.0);
  EXPECT_DOUBLE_EQ(run.sssp.dist[2], 0.0);
  EXPECT_DOUBLE_EQ(run.sssp.dist[3], 5.0);
}

TEST(AcicCorrectness, ParallelEdgesKeepMinimum) {
  acic::graph::EdgeList list(2, {});
  list.add(0, 1, 9.0);
  list.add(0, 1, 2.0);
  list.add(0, 1, 5.0);
  const Csr csr = Csr::from_edge_list(list);
  Machine machine(acic::runtime::Topology::tiny(2));
  const Partition1D partition = Partition1D::block(2, 2);
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, {}, 1e6);
  EXPECT_DOUBLE_EQ(run.sssp.dist[1], 2.0);
}

// ---- the abandoned finalized-vertex termination (§II.D) --------------------

TEST(AcicVertexTermination, TerminatesCorrectlyWithOracle) {
  ExperimentSpec spec;
  spec.graph = GraphKind::kRandom;
  spec.scale = 10;
  spec.seed = 55;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);

  const auto expected = acic::baselines::dijkstra(csr, 0);
  std::uint64_t reachable = 0;
  for (const auto d : expected) {
    if (d != acic::graph::kInfDist) ++reachable;
  }

  AcicConfig config;
  config.use_vertex_termination = true;
  config.expected_reachable = reachable;
  const auto run = run_acic(csr, spec, config);
  const auto cmp = acic::graph::compare_distances(run.sssp.dist, expected);
  EXPECT_TRUE(cmp.ok) << cmp.error;
  // Conservation still holds: abandoned updates are counted processed.
  EXPECT_EQ(run.sssp.metrics.updates_created,
            run.sssp.metrics.updates_processed);
}

TEST(AcicVertexTermination, WrongOracleFallsBackToCounters) {
  // With an unreachable expected count the early exit never fires — the
  // run must still terminate via the counter scheme (the paper's reason
  // for abandoning this condition).
  ExperimentSpec spec;
  spec.graph = GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 56;
  spec.nodes = 1;
  const Csr csr = acic::stats::build_graph(spec);

  AcicConfig config;
  config.use_vertex_termination = true;
  config.expected_reachable = csr.num_vertices() + 1;  // impossible
  const auto run = run_acic(csr, spec, config);
  EXPECT_FALSE(run.hit_time_limit);
  const auto expected = acic::baselines::dijkstra(csr, 0);
  EXPECT_TRUE(
      acic::graph::compare_distances(run.sssp.dist, expected).ok);
}

}  // namespace
