// Tests for the BFS utilities, including the cross-check property that
// BFS reachability agrees with every SSSP algorithm's set of finite
// distances.

#include <gtest/gtest.h>

#include "src/baselines/sequential.hpp"
#include "src/graph/bfs.hpp"
#include "src/graph/generators.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::graph::bfs_hops;
using acic::graph::Csr;
using acic::graph::EdgeList;
using acic::graph::kUnreachedHops;
using acic::graph::VertexId;

TEST(Bfs, HopsOnChain) {
  EdgeList list(4, {});
  list.add(0, 1, 9.0);
  list.add(1, 2, 9.0);
  list.add(2, 3, 9.0);
  const auto hops = bfs_hops(Csr::from_edge_list(list), 0);
  EXPECT_EQ(hops, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableMarked) {
  EdgeList list(3, {});
  list.add(0, 1, 1.0);
  const auto hops = bfs_hops(Csr::from_edge_list(list), 0);
  EXPECT_EQ(hops[2], kUnreachedHops);
  EXPECT_EQ(acic::graph::count_reachable(Csr::from_edge_list(list), 0),
            2u);
}

TEST(Bfs, ShortestHopsNotWeights) {
  // A heavy 1-hop edge beats a light 2-hop path in hops, even though
  // Dijkstra would prefer the light path.
  EdgeList list(3, {});
  list.add(0, 2, 100.0);
  list.add(0, 1, 1.0);
  list.add(1, 2, 1.0);
  const auto hops = bfs_hops(Csr::from_edge_list(list), 0);
  EXPECT_EQ(hops[2], 1u);
}

TEST(Bfs, EccentricityAndDiameter) {
  // 1x8 path graph: diameter 7 hops.
  acic::graph::GridParams grid;
  grid.width = 8;
  grid.height = 1;
  grid.shortcut_fraction = 0.0;
  const Csr csr =
      Csr::from_edge_list(acic::graph::generate_grid_road(grid, 1));
  EXPECT_EQ(acic::graph::eccentricity_hops(csr, 0), 7u);
  // Double sweep is exact on paths even from the middle.
  EXPECT_EQ(acic::graph::estimate_diameter_hops(csr, 3), 7u);
}

TEST(Bfs, RoadGraphHasHigherDiameterThanRandom) {
  acic::stats::ExperimentSpec spec;
  spec.scale = 12;
  spec.seed = 3;
  spec.graph = acic::stats::GraphKind::kRandom;
  const Csr random_graph = acic::stats::build_graph(spec);
  spec.graph = acic::stats::GraphKind::kRoad;
  const Csr road_graph = acic::stats::build_graph(spec);
  // The workload distinction the paper's §V leans on, quantified.
  EXPECT_GT(acic::graph::estimate_diameter_hops(road_graph),
            4 * acic::graph::estimate_diameter_hops(random_graph));
}

TEST(Bfs, ReachabilityAgreesWithDijkstra) {
  acic::stats::ExperimentSpec spec;
  spec.scale = 10;
  spec.edge_factor = 2;  // leaves unreachable vertices
  spec.seed = 9;
  const Csr csr = acic::stats::build_graph(spec);
  const auto hops = bfs_hops(csr, 0);
  const auto dist = acic::baselines::dijkstra(csr, 0);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_EQ(hops[v] == kUnreachedHops,
              dist[v] == acic::graph::kInfDist)
        << "vertex " << v;
  }
}

}  // namespace
