// Tests for the locality layer (src/graph/reorder.hpp): permutation
// construction and round-trips, Csr::permuted correctness and
// thread-invariance, the Remap helper, and — the property the whole
// layer rests on — reordered-vs-identity distance equality for every
// registered solver on RMAT and uniform graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/reorder.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"

namespace {

using namespace acic;
using graph::Csr;
using graph::ReorderMode;
using graph::VertexId;

Csr make_rmat(std::uint32_t scale, std::uint64_t seed = 1) {
  graph::GenParams params;
  params.num_vertices = 1u << scale;
  params.num_edges = static_cast<std::size_t>(params.num_vertices) * 8;
  params.seed = seed;
  return Csr::from_edge_list(graph::generate_rmat(params));
}

Csr make_uniform(std::uint32_t scale, std::uint64_t seed = 1) {
  graph::GenParams params;
  params.num_vertices = 1u << scale;
  params.num_edges = static_cast<std::size_t>(params.num_vertices) * 8;
  params.seed = seed;
  return Csr::from_edge_list(graph::generate_uniform_random(params));
}

TEST(Reorder, ModeNamesRoundTrip) {
  for (const ReorderMode mode :
       {ReorderMode::kIdentity, ReorderMode::kDegreeDesc,
        ReorderMode::kBfs}) {
    EXPECT_EQ(graph::reorder_mode_from_string(
                  graph::reorder_mode_name(mode)),
              mode);
  }
}

TEST(Reorder, PermutationRoundTrip) {
  const Csr csr = make_rmat(8);
  for (const ReorderMode mode :
       {ReorderMode::kIdentity, ReorderMode::kDegreeDesc,
        ReorderMode::kBfs}) {
    const auto perm = graph::make_permutation(csr, mode);
    ASSERT_EQ(perm.size(), csr.num_vertices());
    EXPECT_TRUE(graph::is_permutation(perm));
    const auto inv = graph::invert_permutation(perm);
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      EXPECT_EQ(inv[perm[v]], v);
      EXPECT_EQ(perm[inv[v]], v);
    }
  }
}

TEST(Reorder, IdentityPermutationIsIdentity) {
  const Csr csr = make_uniform(7);
  const auto perm =
      graph::make_permutation(csr, ReorderMode::kIdentity);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_EQ(perm[v], v);
  }
  // Permuting by identity reproduces the CSR byte for byte.
  const Csr same = csr.permuted(perm);
  EXPECT_TRUE(std::ranges::equal(same.offsets(), csr.offsets()));
  ASSERT_EQ(same.num_edges(), csr.num_edges());
  for (std::size_t i = 0; i < csr.num_edges(); ++i) {
    EXPECT_EQ(same.neighbors()[i].dst, csr.neighbors()[i].dst);
    EXPECT_EQ(same.neighbors()[i].weight, csr.neighbors()[i].weight);
  }
}

TEST(Reorder, DegreeDescSortsByDegree) {
  const Csr csr = make_rmat(9);
  const auto perm =
      graph::make_permutation(csr, ReorderMode::kDegreeDesc);
  const auto inv = graph::invert_permutation(perm);
  const Csr permuted = csr.permuted(perm);
  // New labels are in non-increasing degree order, ties by original id.
  for (VertexId nv = 1; nv < permuted.num_vertices(); ++nv) {
    const std::size_t prev = permuted.out_degree(nv - 1);
    const std::size_t cur = permuted.out_degree(nv);
    EXPECT_GE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(inv[nv - 1], inv[nv]);
    }
  }
}

TEST(Reorder, BfsAssignsDiscoveryOrder) {
  // 0 -> 2 -> 4, 0 -> 3; vertex 1 unreachable.  BFS from 0 visits
  // 0,2,3,4 (rows are (dst, weight)-sorted), then appends 1.
  graph::EdgeList list(5, {});
  list.add(0, 2, 1.0);
  list.add(0, 3, 1.0);
  list.add(2, 4, 1.0);
  const Csr csr = Csr::from_edge_list(list);
  const auto perm = graph::make_permutation(csr, ReorderMode::kBfs, 0);
  EXPECT_EQ(perm[0], 0u);
  EXPECT_EQ(perm[2], 1u);
  EXPECT_EQ(perm[3], 2u);
  EXPECT_EQ(perm[4], 3u);
  EXPECT_EQ(perm[1], 4u);  // unreachable: appended after the BFS order
}

TEST(Reorder, PermutedPreservesEdgeStructure) {
  const Csr csr = make_rmat(8);
  const auto perm =
      graph::make_permutation(csr, ReorderMode::kDegreeDesc);
  const Csr permuted = csr.permuted(perm);
  ASSERT_EQ(permuted.num_vertices(), csr.num_vertices());
  ASSERT_EQ(permuted.num_edges(), csr.num_edges());
  // Every old edge (v, w, weight) appears as (perm[v], perm[w], weight).
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    const auto old_row = csr.out_neighbors(v);
    const auto new_row = permuted.out_neighbors(perm[v]);
    ASSERT_EQ(old_row.size(), new_row.size());
    std::vector<std::pair<VertexId, double>> expect;
    for (const graph::Neighbor& nb : old_row) {
      expect.emplace_back(perm[nb.dst], nb.weight);
    }
    std::sort(expect.begin(), expect.end());
    for (std::size_t i = 0; i < new_row.size(); ++i) {
      EXPECT_EQ(new_row[i].dst, expect[i].first);
      EXPECT_EQ(new_row[i].weight, expect[i].second);
    }
  }
}

TEST(Reorder, PermutedThreadInvariance) {
  for (const ReorderMode mode :
       {ReorderMode::kDegreeDesc, ReorderMode::kBfs}) {
    const Csr csr = make_rmat(10);
    const auto perm = graph::make_permutation(csr, mode);
    const Csr serial = csr.permuted(perm, 1);
    const Csr parallel = csr.permuted(perm, 4);
    EXPECT_TRUE(std::ranges::equal(serial.offsets(), parallel.offsets()));
    ASSERT_EQ(serial.num_edges(), parallel.num_edges());
    for (std::size_t i = 0; i < serial.num_edges(); ++i) {
      ASSERT_EQ(serial.neighbors()[i].dst, parallel.neighbors()[i].dst);
      ASSERT_EQ(serial.neighbors()[i].weight,
                parallel.neighbors()[i].weight);
    }
  }
}

TEST(Reorder, RemapMapsSourceAndDistances) {
  const Csr csr = make_uniform(8);
  const graph::Remap remap(csr, ReorderMode::kDegreeDesc);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_EQ(remap.unmap_vertex(remap.map_vertex(v)), v);
  }
  // unmap_distances inverts the relabeling: value stored at perm[v]
  // comes back at v.
  std::vector<graph::Dist> relabeled(csr.num_vertices());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    relabeled[remap.map_vertex(v)] = static_cast<graph::Dist>(v);
  }
  const auto unmapped = remap.unmap_distances(relabeled);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_EQ(unmapped[v], static_cast<graph::Dist>(v));
  }
}

/// The acceptance property: for every registered solver, running on the
/// relabeled graph and inverse-permuting the distances reproduces the
/// identity run's distances *exactly*.  Converged shortest-path
/// distances are per-path floating-point sums, so relabeling (which only
/// changes relaxation order and message schedule) cannot perturb them.
class ReorderSolverEquality
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ReorderSolverEquality, DistancesMatchIdentityRun) {
  const std::string solver = GetParam();
  struct GraphCase {
    const char* name;
    Csr csr;
  };
  const GraphCase cases[] = {
      {"rmat", make_rmat(9, 3)},
      {"uniform", make_uniform(9, 4)},
  };
  const runtime::Topology topo{2, 2, 4};
  const VertexId source = 0;
  for (const GraphCase& gc : cases) {
    runtime::Machine machine(topo);
    sssp::SolverOptions opts;
    const sssp::SolverRun identity =
        sssp::run_solver(solver, machine, gc.csr, source, opts);
    for (const ReorderMode mode :
         {ReorderMode::kDegreeDesc, ReorderMode::kBfs}) {
      runtime::Machine fresh(topo);
      sssp::SolverOptions reordered;
      reordered.reorder = mode;
      const sssp::SolverRun run =
          sssp::run_solver(solver, fresh, gc.csr, source, reordered);
      ASSERT_EQ(run.sssp.dist.size(), identity.sssp.dist.size());
      for (VertexId v = 0; v < gc.csr.num_vertices(); ++v) {
        ASSERT_EQ(run.sssp.dist[v], identity.sssp.dist[v])
            << solver << " on " << gc.name << " mode "
            << graph::reorder_mode_name(mode) << " vertex " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, ReorderSolverEquality,
    ::testing::ValuesIn(sssp::solver_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
