// Unit tests for ACIC's building blocks: the update histogram, the
// Algorithm-1 threshold computation, and the bucketed hold structures.

#include <gtest/gtest.h>

#include "src/core/histogram.hpp"
#include "src/core/hold.hpp"
#include "src/core/thresholds.hpp"
#include "src/sssp/update.hpp"

namespace {

using acic::core::BucketedHold;
using acic::core::bucket_at_fraction;
using acic::core::compute_thresholds;
using acic::core::ThresholdPolicy;
using acic::core::Thresholds;
using acic::core::UpdateHistogram;
using acic::sssp::Update;

TEST(Histogram, PaperBucketRule) {
  // bucket(d) = d / log2(|V|): with |V| = 2^16, width = 16.
  UpdateHistogram histogram(512, 0.0, 1u << 16);
  EXPECT_DOUBLE_EQ(histogram.bucket_width(), 16.0);
  EXPECT_EQ(histogram.bucket_of(0.0), 0u);
  EXPECT_EQ(histogram.bucket_of(15.9), 0u);
  EXPECT_EQ(histogram.bucket_of(16.0), 1u);
  EXPECT_EQ(histogram.bucket_of(160.0), 10u);
}

TEST(Histogram, LastBucketAbsorbsOverflow) {
  UpdateHistogram histogram(8, 1.0, 16);
  EXPECT_EQ(histogram.bucket_of(7.5), 7u);
  EXPECT_EQ(histogram.bucket_of(1e12), 7u);
}

TEST(Histogram, TinyGraphWidthClampedToOne) {
  UpdateHistogram histogram(8, 0.0, 2);  // log2(2) = 1
  EXPECT_DOUBLE_EQ(histogram.bucket_width(), 1.0);
}

TEST(Histogram, IncrementDecrementCanGoNegative) {
  // A PE that processes updates created elsewhere decrements buckets it
  // never incremented — local counts may be negative by design (§II.B).
  UpdateHistogram histogram(4, 1.0, 4);
  histogram.decrement(2);
  histogram.decrement(2);
  histogram.increment(1);
  EXPECT_EQ(histogram.counts()[2], -2);
  EXPECT_EQ(histogram.counts()[1], 1);
}

TEST(Histogram, AppendToPayload) {
  UpdateHistogram histogram(3, 1.0, 4);
  histogram.increment(0);
  histogram.increment(2);
  histogram.increment(2);
  std::vector<double> payload{99.0};
  histogram.append_to(&payload);
  EXPECT_EQ(payload,
            (std::vector<double>{99.0, 1.0, 0.0, 2.0}));
}

TEST(Thresholds, BucketAtFractionWalksFromBottom) {
  const std::vector<double> histogram{10, 20, 30, 40};  // total 100
  EXPECT_EQ(bucket_at_fraction(histogram, 0.05, 100), 0u);
  EXPECT_EQ(bucket_at_fraction(histogram, 0.10, 100), 0u);
  EXPECT_EQ(bucket_at_fraction(histogram, 0.11, 100), 1u);
  EXPECT_EQ(bucket_at_fraction(histogram, 0.30, 100), 1u);
  EXPECT_EQ(bucket_at_fraction(histogram, 0.60, 100), 2u);
  EXPECT_EQ(bucket_at_fraction(histogram, 0.999, 100), 3u);
  EXPECT_EQ(bucket_at_fraction(histogram, 1.0, 100), 3u);
}

TEST(Thresholds, EmptyHistogramReturnsTop) {
  const std::vector<double> histogram(16, 0.0);
  EXPECT_EQ(bucket_at_fraction(histogram, 0.5, 0.0), 15u);
}

TEST(Thresholds, SkipsLeadingEmptyBuckets) {
  // Algorithm 1 starts from the smallest bucket with >= 1 update.
  std::vector<double> histogram(16, 0.0);
  histogram[7] = 100;
  EXPECT_EQ(bucket_at_fraction(histogram, 0.05, 100), 7u);
}

TEST(Thresholds, LowActivityOpensFully) {
  // <= 100 * |PE| active updates: both thresholds go to the top bucket.
  std::vector<double> histogram(16, 0.0);
  histogram[3] = 50;
  const ThresholdPolicy policy{0.5, 0.05, 100};
  const Thresholds t = compute_thresholds(histogram, 4, policy);
  EXPECT_EQ(t.t_tram, 15u);
  EXPECT_EQ(t.t_pq, 15u);
}

TEST(Thresholds, HighActivityUsesPercentiles) {
  std::vector<double> histogram(16, 0.0);
  histogram[2] = 500;
  histogram[5] = 400;
  histogram[9] = 100;
  const ThresholdPolicy policy{0.999, 0.05, 100};
  const Thresholds t = compute_thresholds(histogram, 4, policy);
  EXPECT_EQ(t.t_pq, 2u);    // 5% of 1000 = 50 <= 500 at bucket 2
  EXPECT_EQ(t.t_tram, 9u);  // 99.9% needs the last occupied bucket
}

TEST(Thresholds, BoundaryExactlyAtCutoff) {
  // total == 100 * |PE| counts as low activity (Algorithm 1 uses <=).
  std::vector<double> histogram(8, 0.0);
  histogram[1] = 400;
  const ThresholdPolicy policy{0.5, 0.5, 100};
  EXPECT_EQ(compute_thresholds(histogram, 4, policy).t_tram, 7u);
  histogram[1] = 401;
  EXPECT_EQ(compute_thresholds(histogram, 4, policy).t_tram, 1u);
}

TEST(Hold, ReleasesInIncreasingBucketOrder) {
  BucketedHold hold(8);
  hold.put(5, Update{50, 5.0});
  hold.put(1, Update{10, 1.0});
  hold.put(3, Update{30, 3.0});
  std::vector<Update> out;
  hold.release_up_to(7, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].vertex, 10u);
  EXPECT_EQ(out[1].vertex, 30u);
  EXPECT_EQ(out[2].vertex, 50u);
}

TEST(Hold, FifoWithinBucket) {
  BucketedHold hold(4);
  hold.put(2, Update{1, 2.0});
  hold.put(2, Update{2, 2.1});
  hold.put(2, Update{3, 2.2});
  std::vector<Update> out;
  hold.release_up_to(2, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].vertex, 1u);
  EXPECT_EQ(out[2].vertex, 3u);
}

TEST(Hold, ReleaseRespectsThreshold) {
  BucketedHold hold(8);
  hold.put(2, Update{2, 2.0});
  hold.put(6, Update{6, 6.0});
  std::vector<Update> out;
  hold.release_up_to(4, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].vertex, 2u);
  EXPECT_EQ(hold.size(), 1u);
  EXPECT_EQ(hold.bucket_size(6), 1u);
  // Raising the threshold releases the rest.
  hold.release_up_to(7, &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(hold.empty());
}

TEST(Hold, SizeTracksPutsAndReleases) {
  BucketedHold hold(4);
  EXPECT_TRUE(hold.empty());
  hold.put(0, Update{0, 0.0});
  hold.put(3, Update{3, 3.0});
  EXPECT_EQ(hold.size(), 2u);
  std::vector<Update> out;
  hold.release_up_to(0, &out);
  EXPECT_EQ(hold.size(), 1u);
}

TEST(Hold, ThresholdBeyondBucketsIsClamped) {
  BucketedHold hold(4);
  hold.put(3, Update{3, 3.0});
  std::vector<Update> out;
  hold.release_up_to(1000, &out);  // clamps to the last bucket
  EXPECT_EQ(out.size(), 1u);
}

TEST(UpdateOrder, MinHeapOrdering) {
  const acic::sssp::UpdateMinOrder order;
  // "greater" semantics for std::priority_queue min-heaps.
  EXPECT_TRUE(order(Update{0, 5.0}, Update{1, 3.0}));
  EXPECT_FALSE(order(Update{0, 3.0}, Update{1, 5.0}));
  // Distance ties break on vertex id for determinism.
  EXPECT_TRUE(order(Update{7, 3.0}, Update{2, 3.0}));
}

}  // namespace

namespace workwindow {

using acic::core::compute_thresholds_work_window;
using acic::core::WorkWindowPolicy;

TEST(WorkWindowThresholds, CoversPerPeWindow) {
  std::vector<double> histogram(16, 0.0);
  histogram[2] = 100;
  histogram[4] = 100;
  histogram[9] = 1000;
  WorkWindowPolicy policy;
  policy.pq_window_per_pe = 30;   // 4 PEs -> 120 updates
  policy.tram_window_per_pe = 60; // -> 240 updates
  const auto t = compute_thresholds_work_window(histogram, 4, policy);
  EXPECT_EQ(t.t_pq, 4u);    // 100 at b2 < 120, 200 at b4 >= 120
  EXPECT_EQ(t.t_tram, 9u);  // needs 240, reached only at b9
}

TEST(WorkWindowThresholds, LowActivityOpensNaturally) {
  std::vector<double> histogram(16, 0.0);
  histogram[1] = 10;  // far below any window
  const auto t =
      compute_thresholds_work_window(histogram, 4, WorkWindowPolicy{});
  EXPECT_EQ(t.t_pq, 15u);
  EXPECT_EQ(t.t_tram, 15u);
}

TEST(WorkWindowThresholds, ShapeAware) {
  // Same total mass, different shapes: concentrated-low yields a tighter
  // threshold than spread-out.
  WorkWindowPolicy policy;
  policy.pq_window_per_pe = 100;  // 1 PE -> 100
  std::vector<double> concentrated(16, 0.0);
  concentrated[0] = 1000;
  std::vector<double> spread(16, 62.5);
  const auto tc = compute_thresholds_work_window(concentrated, 1, policy);
  const auto ts = compute_thresholds_work_window(spread, 1, policy);
  EXPECT_LT(tc.t_pq, ts.t_pq);
}

}  // namespace workwindow
