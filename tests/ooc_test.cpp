// Out-of-core storage tests: the on-disk CSR format, the streaming
// (external-memory) builder's byte-equality contract, the mmap-backed
// view, the frontier-feed ring, and the page prefetcher's determinism
// guarantee (results bit-identical with the prefetcher on, off, or
// racing).  Every suite here is named Ooc* so CI's TSan job can include
// the whole family.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/csr.hpp"
#include "src/graph/csr_file.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/mapped_csr.hpp"
#include "src/graph/ooc_prefetch.hpp"
#include "src/graph/serialize.hpp"
#include "src/obs/registry.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"

namespace {

using namespace acic;
using graph::Csr;
using graph::Edge;
using graph::EdgeList;
using graph::GenParams;
using graph::VertexId;

GenParams make_params(std::uint32_t scale, std::uint64_t seed) {
  GenParams params;
  params.num_vertices = VertexId{1} << scale;
  params.num_edges = 16ull * params.num_vertices;
  params.seed = seed;
  return params;
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void expect_same_csr(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::ranges::equal(a.offsets(), b.offsets()));
  EXPECT_TRUE(std::ranges::equal(a.neighbors(), b.neighbors()));
}

TEST(OocCsrFile, RoundTripMatchesInMemory) {
  for (const std::uint64_t seed : {1ull, 7ull}) {
    for (const std::uint32_t scale : {6u, 9u}) {
      const GenParams params = make_params(scale, seed);
      const Csr csr = Csr::from_edge_list(generate_uniform_random(params));
      const std::string path = tmp_path("ooc_roundtrip.oocsr");
      ASSERT_TRUE(graph::write_csr_file(csr, path));
      const Csr loaded = graph::load_csr_file(path);
      expect_same_csr(csr, loaded);
      std::remove(path.c_str());
    }
  }
}

TEST(OocCsrFile, HeaderGeometryIsPageAligned) {
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(8, 3)));
  const std::string path = tmp_path("ooc_header.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, path));
  graph::CsrFileHeader header;
  ASSERT_TRUE(graph::probe_csr_file(path, &header));
  EXPECT_EQ(header.magic, graph::kCsrFileMagic);
  EXPECT_EQ(header.version, graph::kCsrFileVersion);
  EXPECT_EQ(header.page_bytes, graph::kCsrFilePageBytes);
  EXPECT_EQ(header.num_vertices, csr.num_vertices());
  EXPECT_EQ(header.num_edges, csr.num_edges());
  EXPECT_EQ(header.offsets_pos % graph::kCsrFilePageBytes, 0u);
  EXPECT_EQ(header.neighbors_pos % graph::kCsrFilePageBytes, 0u);
  EXPECT_EQ(header.offsets_bytes,
            (static_cast<std::uint64_t>(csr.num_vertices()) + 1) * 8);
  EXPECT_EQ(header.neighbors_bytes, csr.num_edges() * 16);
  // The file ends page-aligned, with the sections in declared order.
  const std::string bytes = slurp_bytes(path);
  EXPECT_EQ(bytes.size() % graph::kCsrFilePageBytes, 0u);
  EXPECT_GE(bytes.size(), header.neighbors_pos + header.neighbors_bytes);
  std::remove(path.c_str());
}

// The external-memory builder must produce the *identical file bytes*
// as the in-memory writer, at any chunk size (run count) and any sort
// thread count, and regardless of the order edges were added in.
TEST(OocCsrFile, StreamingBuildIsByteIdentical) {
  const GenParams params = make_params(9, 11);
  const EdgeList edges = generate_uniform_random(params);
  const Csr csr = Csr::from_edge_list(edges);
  const std::string ref_path = tmp_path("ooc_ref.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, ref_path));
  const std::string ref_bytes = slurp_bytes(ref_path);

  for (const std::uint64_t chunk : {64ull, 1ull << 12, 1ull << 22}) {
    for (const unsigned threads : {1u, 4u}) {
      const std::string path = tmp_path("ooc_stream.oocsr");
      graph::StreamingCsrWriter::Options opts;
      opts.chunk_edges = chunk;
      opts.threads = threads;
      graph::StreamingCsrWriter writer(path, params.num_vertices, opts);
      writer.add(std::span<const Edge>(edges.edges()));
      if (chunk == 64) EXPECT_GT(writer.num_runs(), 1u);
      ASSERT_TRUE(writer.finish());
      EXPECT_EQ(slurp_bytes(path), ref_bytes)
          << "chunk=" << chunk << " threads=" << threads;
      std::remove(path.c_str());
    }
  }

  // Reversed insertion order: same multiset, same file.
  std::vector<Edge> reversed = edges.edges();
  std::reverse(reversed.begin(), reversed.end());
  const std::string path = tmp_path("ooc_stream_rev.oocsr");
  graph::StreamingCsrWriter::Options opts;
  opts.chunk_edges = 1000;  // non-power-of-two chunking
  graph::StreamingCsrWriter writer(path, params.num_vertices, opts);
  for (const Edge& e : reversed) writer.add(e);
  ASSERT_TRUE(writer.finish());
  EXPECT_EQ(slurp_bytes(path), ref_bytes);
  std::remove(path.c_str());
  std::remove(ref_path.c_str());
}

// The chunked streaming generators emit the same edge multiset as the
// materializing ones, so generator -> StreamingCsrWriter -> file equals
// generate -> from_edge_list -> write_csr_file byte for byte.
TEST(OocCsrFile, StreamedGeneratorsMatchMaterialized) {
  struct Arm {
    const char* name;
    EdgeList (*materialize)(const GenParams&);
    void (*stream)(const GenParams&, const graph::EdgeSink&);
  };
  const Arm arms[] = {
      {"random",
       [](const GenParams& p) { return graph::generate_uniform_random(p); },
       [](const GenParams& p, const graph::EdgeSink& sink) {
         graph::stream_uniform_random(p, sink);
       }},
      {"rmat",
       [](const GenParams& p) {
         return graph::generate_rmat(p, graph::RmatParams{});
       },
       [](const GenParams& p, const graph::EdgeSink& sink) {
         graph::stream_rmat(p, sink, graph::RmatParams{});
       }},
  };
  for (const Arm& arm : arms) {
    const GenParams params = make_params(9, 5);
    const Csr csr = Csr::from_edge_list(arm.materialize(params));
    const std::string ref_path = tmp_path("ooc_gen_ref.oocsr");
    ASSERT_TRUE(graph::write_csr_file(csr, ref_path));

    const std::string path = tmp_path("ooc_gen_stream.oocsr");
    graph::StreamingCsrWriter::Options opts;
    opts.chunk_edges = 1 << 12;
    graph::StreamingCsrWriter writer(path, params.num_vertices, opts);
    arm.stream(params, [&writer](std::span<const Edge> chunk) {
      writer.add(chunk);
    });
    ASSERT_TRUE(writer.finish());
    EXPECT_EQ(slurp_bytes(path), slurp_bytes(ref_path)) << arm.name;
    std::remove(path.c_str());
    std::remove(ref_path.c_str());
  }
}

TEST(OocMappedCsr, ViewMatchesInMemory) {
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(9, 2)));
  const std::string path = tmp_path("ooc_view.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, path));
  graph::MappedCsr mapped(path);
  EXPECT_FALSE(mapped.csr().owns_storage());
  expect_same_csr(csr, mapped.csr());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    const auto a = csr.out_neighbors(v);
    const auto b = mapped.csr().out_neighbors(v);
    ASSERT_TRUE(std::ranges::equal(a, b)) << "vertex " << v;
  }
  std::remove(path.c_str());
}

// Every registered solver, run on the mmap-backed view, must produce
// elementwise-identical distances to the in-memory run.
TEST(OocMappedCsr, AllSolversMatchInMemory) {
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(9, 4)));
  const std::string path = tmp_path("ooc_solvers.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, path));
  graph::MappedCsr mapped(path);
  stats::ExperimentSpec spec;
  spec.nodes = 2;
  for (const std::string& solver : sssp::solver_names()) {
    runtime::Machine mem_machine(spec.topology());
    const sssp::SolverRun mem_run =
        sssp::run_solver(solver, mem_machine, csr, 0);
    runtime::Machine map_machine(spec.topology());
    const sssp::SolverRun map_run =
        sssp::run_solver(solver, map_machine, mapped.csr(), 0);
    ASSERT_EQ(mem_run.sssp.dist.size(), map_run.sssp.dist.size());
    for (std::size_t v = 0; v < mem_run.sssp.dist.size(); ++v) {
      ASSERT_EQ(mem_run.sssp.dist[v], map_run.sssp.dist[v])
          << solver << " vertex " << v;
    }
    EXPECT_EQ(mem_run.sssp.metrics.sim_time_us,
              map_run.sssp.metrics.sim_time_us)
        << solver;
  }
  std::remove(path.c_str());
}

TEST(OocSerialize, LoadCsrRejectsOnDiskFormat) {
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(6, 1)));
  const std::string path = tmp_path("ooc_wrong_loader.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, path));
  try {
    graph::load_csr(path);
    FAIL() << "load_csr accepted an out-of-core file";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("MappedCsr"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(OocCsrFile, ProbeRejectsMissingAndForeignFiles) {
  graph::CsrFileHeader header;
  EXPECT_FALSE(graph::probe_csr_file(tmp_path("ooc_no_such_file"), &header));

  // A legacy CSR cache is not an out-of-core file: probe says "not
  // mine" without throwing, and load_csr_file refuses it.
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(6, 1)));
  const std::string cache = tmp_path("ooc_foreign_cache.bin");
  ASSERT_TRUE(graph::save_csr(csr, cache));
  EXPECT_FALSE(graph::probe_csr_file(cache, &header));
  EXPECT_THROW(graph::load_csr_file(cache), std::runtime_error);
  std::remove(cache.c_str());
}

// --- FrontierFeed -------------------------------------------------------

TEST(OocFeed, SingleThreadedPublishPop) {
  graph::ooc::FrontierFeed feed(64);
  EXPECT_EQ(feed.capacity(), 64u);
  for (VertexId v = 0; v < 64; ++v) EXPECT_TRUE(feed.try_publish(v));
  EXPECT_FALSE(feed.try_publish(64));  // full -> dropped, counted
  EXPECT_EQ(feed.overflows(), 1u);
  for (VertexId v = 0; v < 64; ++v) {
    VertexId got = 0;
    ASSERT_TRUE(feed.try_pop(&got));
    EXPECT_EQ(got, v);  // FIFO
  }
  VertexId got = 0;
  EXPECT_FALSE(feed.try_pop(&got));
}

// Multi-producer stress with a concurrent consumer: every published
// value arrives exactly once, overflow accounting balances, and TSan
// (CI includes Ooc* in its filter) sees the real interleavings.
TEST(OocFeed, ConcurrentProducersStress) {
  graph::ooc::FrontierFeed feed(128);
  constexpr unsigned kProducers = 4;
  constexpr VertexId kPerProducer = 5000;
  std::vector<std::uint64_t> seen(kProducers * kPerProducer, 0);
  std::thread consumer([&feed, &seen] {
    VertexId v = 0;
    std::uint64_t idle = 0;
    while (idle < 200000) {
      if (feed.try_pop(&v)) {
        ASSERT_LT(v, seen.size());
        ++seen[v];
        idle = 0;
      } else {
        ++idle;
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&feed, p] {
      for (VertexId i = 0; i < kPerProducer; ++i) {
        feed.try_publish(p * kPerProducer + i);  // drops are fine
      }
    });
  }
  for (std::thread& t : producers) t.join();
  consumer.join();
  // Drain what the consumer left behind.
  VertexId v = 0;
  while (feed.try_pop(&v)) ++seen[v];
  std::uint64_t delivered = 0;
  for (const std::uint64_t count : seen) {
    EXPECT_LE(count, 1u);  // exactly-once
    delivered += count;
  }
  EXPECT_EQ(delivered + feed.overflows(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(delivered, feed.published());
}

// --- PagePrefetcher -----------------------------------------------------

struct PrefetchRun {
  std::vector<graph::Dist> dist;
  double sim_time_us = 0.0;
  std::uint64_t updates = 0;
};

PrefetchRun solve_acic(const Csr& csr, unsigned threads,
                       graph::ooc::FrontierFeed* feed) {
  stats::ExperimentSpec spec;
  spec.nodes = 2;
  runtime::Machine machine(spec.topology());
  machine.set_threads(threads);
  sssp::SolverOptions opts;
  opts.storage.frontier_feed = feed;
  sssp::SolverRun run = sssp::run_solver("acic", machine, csr, 0, opts);
  return {std::move(run.sssp.dist), run.sssp.metrics.sim_time_us,
          run.sssp.metrics.updates_created};
}

void expect_same_run(const PrefetchRun& a, const PrefetchRun& b) {
  EXPECT_EQ(a.sim_time_us, b.sim_time_us);
  EXPECT_EQ(a.updates, b.updates);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (std::size_t v = 0; v < a.dist.size(); ++v) {
    ASSERT_EQ(a.dist[v], b.dist[v]) << "vertex " << v;
  }
}

// The determinism contract: prefetcher off, on, and on-with-overflowing
// ring all produce bit-identical results — madvise is a hint, never an
// effect the simulation can observe.
TEST(OocPrefetch, OnOffBitIdentical) {
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(10, 9)));
  const std::string path = tmp_path("ooc_prefetch.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, path));
  graph::MappedCsr mapped(path);

  const PrefetchRun base = solve_acic(csr, 1, nullptr);
  const PrefetchRun mapped_off = solve_acic(mapped.csr(), 1, nullptr);
  expect_same_run(base, mapped_off);

  {
    graph::ooc::FrontierFeed feed;
    graph::ooc::PagePrefetcher prefetcher(mapped, feed);
    const PrefetchRun on = solve_acic(mapped.csr(), 1, &feed);
    expect_same_run(base, on);
  }
  {
    // A 64-slot ring under a whole frontier guarantees drops; dropped
    // hints must be just as invisible as delivered ones.
    graph::ooc::FrontierFeed feed(64);
    graph::ooc::PagePrefetcher prefetcher(mapped, feed);
    const PrefetchRun overflow = solve_acic(mapped.csr(), 1, &feed);
    expect_same_run(base, overflow);
  }
  std::remove(path.c_str());
}

// Same contract under the parallel engine.  ("threads4" in the name
// keeps it in CI's TSan include list twice over: Ooc* and *threads4*.)
TEST(OocPrefetch, OnOffBitIdentical_threads4) {
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(10, 9)));
  const std::string path = tmp_path("ooc_prefetch4.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, path));
  graph::MappedCsr mapped(path);
  const PrefetchRun base = solve_acic(csr, 4, nullptr);
  expect_same_run(base, solve_acic(csr, 1, nullptr));  // engine invariant
  graph::ooc::FrontierFeed feed;
  graph::ooc::PagePrefetcher prefetcher(mapped, feed);
  expect_same_run(base, solve_acic(mapped.csr(), 4, &feed));
  std::remove(path.c_str());
}

TEST(OocPrefetch, DrainsFeedAndPublishesCounters) {
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(8, 6)));
  const std::string path = tmp_path("ooc_counters.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, path));
  graph::MappedCsr mapped(path);
  graph::ooc::FrontierFeed feed;
  graph::ooc::PagePrefetcher prefetcher(mapped, feed);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) feed.try_publish(v);
  prefetcher.stop();  // final drain happens before the thread exits
  const auto stats = prefetcher.stats();
  EXPECT_EQ(stats.vertices_consumed + feed.overflows(),
            csr.num_vertices());
  EXPECT_GT(stats.hints_issued + stats.hints_coalesced, 0u);

  obs::Registry registry(stats::ExperimentSpec{}.topology());
  prefetcher.publish_stats(registry);
  EXPECT_EQ(registry.total("ooc/vertices_consumed"),
            stats.vertices_consumed);
  EXPECT_EQ(registry.total("ooc/hints_issued"), stats.hints_issued);
  EXPECT_EQ(registry.total("ooc/pages_hinted"), stats.pages_hinted);
  std::remove(path.c_str());
}

TEST(OocPrefetch, ResidencyBudgetEvicts) {
  const Csr csr =
      Csr::from_edge_list(generate_uniform_random(make_params(10, 8)));
  const std::string path = tmp_path("ooc_budget.oocsr");
  ASSERT_TRUE(graph::write_csr_file(csr, path));
  graph::MappedCsr mapped(path);
  // Touch every neighbor page so the section is resident, then ask the
  // prefetcher to keep only a sliver of it.
  std::size_t touched = 0;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (const graph::Neighbor& n : mapped.csr().out_neighbors(v)) {
      touched += n.dst;
    }
  }
  ASSERT_GE(touched, 0u);
  graph::ooc::FrontierFeed feed;
  graph::ooc::PagePrefetcher::Options popts;
  popts.residency_budget_bytes = 16 * 4096;
  popts.sample_interval = 1;
  popts.idle_sleep_us = 50;
  graph::ooc::PagePrefetcher prefetcher(mapped, feed, popts);
  // Keep the thread awake until it has sampled at least once.
  for (int spin = 0; spin < 2000; ++spin) {
    feed.try_publish(static_cast<VertexId>(spin) % csr.num_vertices());
    if (prefetcher.stats().residency_samples > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  prefetcher.stop();
  const auto stats = prefetcher.stats();
  EXPECT_GT(stats.residency_samples, 0u);
  // Eviction is advisory (the kernel may have dropped pages on its
  // own), so only the accounting invariant is pinned: every eviction
  // dropped at least one page.
  if (stats.evictions > 0) {
    EXPECT_GE(stats.pages_dropped, stats.evictions);
  }
  std::remove(path.c_str());
}

}  // namespace
