// Tests for tramlib: delivery completeness and order, automatic and
// manual flushing, the four aggregation modes, comm-thread routing and
// statistics.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/runtime/machine.hpp"
#include "src/tram/tram.hpp"

namespace {

using acic::runtime::Machine;
using acic::runtime::Pe;
using acic::runtime::PeId;
using acic::runtime::Topology;
using acic::tram::Aggregation;
using acic::tram::Tram;
using acic::tram::TramConfig;

struct Item {
  PeId target;
  int value;
};

TEST(TramMode, NamesRoundTrip) {
  for (const Aggregation mode :
       {Aggregation::kPP, Aggregation::kWP, Aggregation::kWW,
        Aggregation::kPW}) {
    EXPECT_EQ(acic::tram::aggregation_from_string(
                  acic::tram::aggregation_name(mode)),
              mode);
  }
  EXPECT_EQ(acic::tram::aggregation_from_string("wp"), Aggregation::kWP);
}

class TramModeTest : public ::testing::TestWithParam<Aggregation> {};

TEST_P(TramModeTest, DeliversEveryItemToItsTarget) {
  Machine machine(Topology{2, 2, 2});  // 8 workers across 2 nodes
  TramConfig config;
  config.mode = GetParam();
  config.buffer_items = 4;

  std::map<PeId, std::vector<int>> received;
  Tram<Item> tram(machine, config, [&](Pe& pe, const Item& item) {
    EXPECT_EQ(item.target, pe.id());
    received[pe.id()].push_back(item.value);
  });

  constexpr int kItems = 100;
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    for (int i = 0; i < kItems; ++i) {
      const PeId target = static_cast<PeId>(i % machine.num_pes());
      tram.insert(pe, target, Item{target, i});
    }
    tram.flush_all(pe);
  });
  machine.run();

  int total = 0;
  for (const auto& [pe, values] : received) {
    total += static_cast<int>(values.size());
  }
  EXPECT_EQ(total, kItems);
  EXPECT_EQ(tram.stats().items_inserted, 100u);
  EXPECT_EQ(tram.stats().items_delivered, 100u);
}

TEST_P(TramModeTest, PerTargetOrderPreserved) {
  Machine machine(Topology{2, 2, 2});
  TramConfig config;
  config.mode = GetParam();
  config.buffer_items = 8;

  std::map<PeId, std::vector<int>> received;
  Tram<Item> tram(machine, config, [&](Pe& pe, const Item& item) {
    received[pe.id()].push_back(item.value);
  });

  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    for (int i = 0; i < 64; ++i) {
      const PeId target = static_cast<PeId>(i % 4);
      tram.insert(pe, target, Item{target, i});
    }
    tram.flush_all(pe);
  });
  machine.run();

  // Items from one sender to one target must arrive in insertion order
  // (buffers are FIFO and fan-out preserves per-target order).
  for (const auto& [pe, values] : received) {
    for (std::size_t i = 1; i < values.size(); ++i) {
      EXPECT_LT(values[i - 1], values[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, TramModeTest,
                         ::testing::Values(Aggregation::kPP,
                                           Aggregation::kWP,
                                           Aggregation::kWW,
                                           Aggregation::kPW),
                         [](const auto& info) {
                           return acic::tram::aggregation_name(info.param);
                         });

TEST(Tram, AutoFlushAtCapacity) {
  Machine machine(Topology::tiny(2));
  TramConfig config;
  config.mode = Aggregation::kWW;
  config.buffer_items = 3;

  int delivered = 0;
  Tram<Item> tram(machine, config,
                  [&](Pe&, const Item&) { ++delivered; });

  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    tram.insert(pe, 1, Item{1, 0});
    tram.insert(pe, 1, Item{1, 1});
    EXPECT_EQ(tram.stats().auto_flushes, 0u);
    EXPECT_EQ(tram.pending_items(0), 2u);
    tram.insert(pe, 1, Item{1, 2});  // hits capacity -> flush
    EXPECT_EQ(tram.stats().auto_flushes, 1u);
    EXPECT_EQ(tram.pending_items(0), 0u);
  });
  machine.run();
  EXPECT_EQ(delivered, 3);
}

TEST(Tram, ItemsStrandedWithoutFlush) {
  // The tail problem from the paper: with a large buffer and little
  // traffic, updates sit in buffers forever unless explicitly flushed.
  Machine machine(Topology::tiny(2));
  TramConfig config;
  config.buffer_items = 1024;

  int delivered = 0;
  Tram<Item> tram(machine, config,
                  [&](Pe&, const Item&) { ++delivered; });
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    tram.insert(pe, 1, Item{1, 7});
  });
  machine.run();
  EXPECT_EQ(delivered, 0);  // stranded
  EXPECT_EQ(tram.pending_items(0), 1u);

  machine.schedule_at(machine.current_time(), 0,
                      [&](Pe& pe) { tram.flush_all(pe); });
  machine.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(tram.stats().manual_flushes, 1u);
}

TEST(Tram, EmptyManualFlushCounted) {
  Machine machine(Topology::tiny(1));
  Tram<Item> tram(machine, {}, [](Pe&, const Item&) {});
  machine.schedule_at(0.0, 0, [&](Pe& pe) { tram.flush_all(pe); });
  machine.run();
  EXPECT_EQ(tram.stats().manual_flushes, 1u);
  EXPECT_EQ(tram.stats().flushed_empty, 1u);
}

TEST(Tram, AggregationReducesMessageCount) {
  // The reason tramlib exists: N items in one buffer must cost far fewer
  // network messages than N individual sends.
  const auto run_with_buffer = [](std::size_t buffer_items) {
    Machine machine(Topology{2, 1, 1});
    TramConfig config;
    config.mode = Aggregation::kWW;
    config.buffer_items = buffer_items;
    int delivered = 0;
    Tram<Item> tram(machine, config,
                    [&](Pe&, const Item&) { ++delivered; });
    machine.schedule_at(0.0, 0, [&](Pe& pe) {
      for (int i = 0; i < 256; ++i) tram.insert(pe, 1, Item{1, i});
      tram.flush_all(pe);
    });
    const auto stats = machine.run();
    EXPECT_EQ(delivered, 256);
    return stats.messages_sent;
  };
  const auto messages_small = run_with_buffer(1);
  const auto messages_large = run_with_buffer(128);
  EXPECT_GE(messages_small, 256u);
  EXPECT_LE(messages_large, 4u);
}

TEST(Tram, ProcessSharedSetsCostAtomicPenalty) {
  // PP/PW modes share buffer sets between a process's PEs; the paper
  // notes they need atomic operations.  The model charges extra time.
  const auto insert_time = [](Aggregation mode) {
    Machine machine(Topology{1, 1, 2});
    TramConfig config;
    config.mode = mode;
    config.buffer_items = 1u << 30;  // never auto-flush
    Tram<Item> tram(machine, config, [](Pe&, const Item&) {});
    double elapsed = 0.0;
    machine.schedule_at(0.0, 0, [&](Pe& pe) {
      const double start = pe.now();
      for (int i = 0; i < 100; ++i) tram.insert(pe, 1, Item{1, i});
      elapsed = pe.now() - start;
    });
    machine.run();
    return elapsed;
  };
  EXPECT_GT(insert_time(Aggregation::kPP), insert_time(Aggregation::kWW));
}

TEST(Tram, RemoteProcessDeliveryGoesThroughCommThread) {
  // A WP aggregate to another process must be routed by that process's
  // comm thread: the comm thread's busy time becomes nonzero.
  Machine machine(Topology{1, 2, 2});
  TramConfig config;
  config.mode = Aggregation::kWP;
  config.buffer_items = 64;
  int delivered = 0;
  Tram<Item> tram(machine, config,
                  [&](Pe&, const Item&) { ++delivered; });
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    for (int i = 0; i < 32; ++i) {
      tram.insert(pe, 2, Item{2, i});  // PE 2 lives in process 1
      tram.insert(pe, 3, Item{3, i});
    }
    tram.flush_all(pe);
  });
  machine.run();
  EXPECT_EQ(delivered, 64);
  const PeId comm = machine.topology().comm_thread_of_proc(1);
  EXPECT_GT(machine.pe_busy_us(comm), 0.0);
  // Process 0's comm thread had nothing to do.
  EXPECT_EQ(machine.pe_busy_us(machine.topology().comm_thread_of_proc(0)),
            0.0);
}

TEST(Tram, LocalProcessDeliverySkipsCommThread) {
  Machine machine(Topology{1, 2, 2});
  TramConfig config;
  config.mode = Aggregation::kWP;
  int delivered = 0;
  Tram<Item> tram(machine, config,
                  [&](Pe&, const Item&) { ++delivered; });
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    tram.insert(pe, 1, Item{1, 1});  // same process
    tram.flush_all(pe);
  });
  machine.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(machine.pe_busy_us(machine.topology().comm_thread_of_proc(0)),
            0.0);
}

TEST(Tram, WwModeSendsDirectlyToPe) {
  // Per-destination-PE buffers bypass comm threads entirely.
  Machine machine(Topology{2, 1, 2});
  TramConfig config;
  config.mode = Aggregation::kWW;
  int delivered = 0;
  Tram<Item> tram(machine, config,
                  [&](Pe&, const Item&) { ++delivered; });
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    tram.insert(pe, 3, Item{3, 1});  // other node
    tram.flush_all(pe);
  });
  machine.run();
  EXPECT_EQ(delivered, 1);
  for (std::uint32_t proc = 0; proc < machine.topology().num_procs();
       ++proc) {
    EXPECT_EQ(
        machine.pe_busy_us(machine.topology().comm_thread_of_proc(proc)),
        0.0);
  }
}

}  // namespace
