// Unit tests for the Δ-stepping schedule controller (light/heavy phase
// sequencing, bucket advance, the hybrid Bellman-Ford local-maximum
// heuristic, and termination).

#include <gtest/gtest.h>

#include "src/baselines/delta_common.hpp"

namespace {

using acic::baselines::DeltaCmd;
using acic::baselines::DeltaController;

DeltaController::Summary summary(double bucket_count, double min_next,
                                 bool has_next, double settled,
                                 double dirty = 0.0) {
  DeltaController::Summary s;
  s.bucket_count = bucket_count;
  s.min_next_bucket = min_next;
  s.has_next_bucket = has_next;
  s.newly_settled = settled;
  s.dirty_count = dirty;
  return s;
}

TEST(DeltaController, RepeatsLightWhileBucketNonEmpty) {
  DeltaController controller(false);
  const auto decision = controller.decide(summary(5, 0, true, 10));
  EXPECT_EQ(decision.cmd, DeltaCmd::kLight);
  EXPECT_EQ(decision.bucket, 0u);
}

TEST(DeltaController, MovesToHeavyWhenBucketEmpties) {
  DeltaController controller(false);
  const auto decision = controller.decide(summary(0, 3, true, 10));
  EXPECT_EQ(decision.cmd, DeltaCmd::kHeavy);
}

TEST(DeltaController, AdvancesToGlobalMinBucketAfterHeavy) {
  DeltaController controller(false);
  controller.decide(summary(0, 3, true, 10));           // -> heavy
  const auto decision = controller.decide(summary(0, 3, true, 0));
  EXPECT_EQ(decision.cmd, DeltaCmd::kLight);
  EXPECT_EQ(decision.bucket, 3u);
  EXPECT_EQ(controller.buckets_processed(), 1u);
}

TEST(DeltaController, TerminatesWhenNoBucketRemains) {
  DeltaController controller(false);
  controller.decide(summary(0, 0, false, 5));  // heavy of bucket 0
  const auto decision = controller.decide(summary(0, 0, false, 0));
  EXPECT_EQ(decision.cmd, DeltaCmd::kDone);
}

TEST(DeltaController, NonHybridNeverSwitches) {
  DeltaController controller(false);
  // Declining settled counts over several buckets.
  double settled = 100.0;
  for (int b = 0; b < 5; ++b) {
    controller.decide(summary(0, b + 1, true, settled));  // heavy
    const auto next = controller.decide(summary(0, b + 1, true, 0));
    EXPECT_EQ(next.cmd, DeltaCmd::kLight);
    settled /= 2;
  }
  EXPECT_FALSE(controller.switched_to_bf());
}

TEST(DeltaController, HybridSwitchesAfterLocalMaximum) {
  DeltaController controller(true);
  // Bucket 0 settles 10 (rising), bucket 1 settles 100 (peak),
  // bucket 2 settles 20 (past the peak) -> switch during bucket 2's
  // heavy step.
  controller.decide(summary(0, 1, true, 10));   // heavy b0
  controller.decide(summary(0, 1, true, 0));    // light b1
  controller.decide(summary(0, 2, true, 100));  // heavy b1
  controller.decide(summary(0, 2, true, 0));    // light b2
  controller.decide(summary(0, 3, true, 20));   // heavy b2
  const auto decision = controller.decide(summary(0, 3, true, 0));
  EXPECT_EQ(decision.cmd, DeltaCmd::kBellman);
  EXPECT_TRUE(controller.switched_to_bf());
}

TEST(DeltaController, BellmanRepeatsWhileDirty) {
  DeltaController controller(true);
  controller.decide(summary(0, 1, true, 10));
  controller.decide(summary(0, 1, true, 0));
  controller.decide(summary(0, 2, true, 100));
  controller.decide(summary(0, 2, true, 0));
  controller.decide(summary(0, 3, true, 20));
  ASSERT_EQ(controller.decide(summary(0, 3, true, 0)).cmd,
            DeltaCmd::kBellman);
  EXPECT_EQ(controller.decide(summary(0, 0, false, 0, 50)).cmd,
            DeltaCmd::kBellman);
  EXPECT_EQ(controller.decide(summary(0, 0, false, 0, 0)).cmd,
            DeltaCmd::kDone);
}

TEST(DeltaController, RisingSettledCountsDoNotSwitch) {
  DeltaController controller(true);
  controller.decide(summary(0, 1, true, 10));
  EXPECT_EQ(controller.decide(summary(0, 1, true, 0)).cmd,
            DeltaCmd::kLight);
  controller.decide(summary(0, 2, true, 50));
  EXPECT_EQ(controller.decide(summary(0, 2, true, 0)).cmd,
            DeltaCmd::kLight);
  controller.decide(summary(0, 3, true, 200));
  EXPECT_EQ(controller.decide(summary(0, 3, true, 0)).cmd,
            DeltaCmd::kLight);
  EXPECT_FALSE(controller.switched_to_bf());
}

TEST(DeltaController, SettledAccumulatesAcrossLightSubphases) {
  // Multiple light subphases of one bucket each report settles; the
  // hybrid comparison must use the bucket total.
  DeltaController controller(true);
  controller.decide(summary(3, 1, true, 10));   // light again
  controller.decide(summary(2, 1, true, 10));   // light again
  controller.decide(summary(0, 1, true, 10));   // -> heavy (total 30)
  controller.decide(summary(0, 1, true, 0));    // light b1
  controller.decide(summary(0, 2, true, 5));    // heavy b1: 5 < 30
  const auto decision = controller.decide(summary(0, 2, true, 0));
  EXPECT_EQ(decision.cmd, DeltaCmd::kBellman);
}

}  // namespace
