// Tests for the serving layer (src/server/): workload generation, the
// LRU distance cache, service metrics, and the QueryService itself —
// concurrency, admission control, cached-answer correctness and the
// bit-determinism regression the serving layer promises.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "src/baselines/sequential.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/server/cache.hpp"
#include "src/server/metrics.hpp"
#include "src/server/service.hpp"
#include "src/server/workload.hpp"

namespace {

using acic::graph::Csr;
using acic::graph::Dist;
using acic::graph::Partition1D;
using acic::runtime::Machine;
using acic::runtime::Topology;
using acic::server::DistanceCache;
using acic::server::Query;
using acic::server::QueryRecord;
using acic::server::QueryService;
using acic::server::ServiceConfig;
using acic::server::WorkloadConfig;

Csr test_graph(std::uint32_t scale = 8, std::uint64_t seed = 3) {
  acic::graph::GenParams params;
  params.num_vertices = acic::graph::VertexId{1} << scale;
  params.num_edges = params.num_vertices * 8ull;
  params.seed = seed;
  return Csr::from_edge_list(acic::graph::generate_uniform_random(params));
}

// ---- workload ----------------------------------------------------------

TEST(Workload, DeterministicAndMonotone) {
  WorkloadConfig config;
  config.seed = 42;
  config.num_queries = 100;
  const auto a = acic::server::generate_workload(config, 1000);
  const auto b = acic::server::generate_workload(config, 1000);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    }
    EXPECT_LT(a[i].source, 1000u);
  }
}

TEST(Workload, RespectsSourceUniverse) {
  WorkloadConfig config;
  config.num_queries = 400;
  config.source_universe = 5;
  const auto stream = acic::server::generate_workload(config, 1u << 20);
  std::set<acic::graph::VertexId> sources;
  for (const Query& q : stream) sources.insert(q.source);
  EXPECT_LE(sources.size(), 5u);
  EXPECT_GE(sources.size(), 2u);  // Zipf 0.9 is skewed, not degenerate
}

TEST(Workload, ZipfHeadDominates) {
  WorkloadConfig config;
  config.num_queries = 2000;
  config.source_universe = 50;
  config.zipf_exponent = 1.2;
  const auto stream = acic::server::generate_workload(config, 4096);
  std::map<acic::graph::VertexId, int> counts;
  for (const Query& q : stream) ++counts[q.source];
  int top = 0;
  for (const auto& [v, c] : counts) top = std::max(top, c);
  // With s=1.2 over 50 sources the top rank carries well over 1/50th.
  EXPECT_GT(top, static_cast<int>(config.num_queries) / 10);
}

TEST(Workload, MeanRateApproximatesQps) {
  WorkloadConfig config;
  config.num_queries = 5000;
  config.qps = 1000.0;  // 1000 us mean gap
  const auto stream = acic::server::generate_workload(config, 64);
  const double span_us = stream.back().arrival_us;
  const double mean_gap = span_us / static_cast<double>(stream.size());
  EXPECT_GT(mean_gap, 900.0);
  EXPECT_LT(mean_gap, 1100.0);
}

// ---- cache -------------------------------------------------------------

TEST(DistanceCache, HitMissPromoteEvict) {
  DistanceCache cache(2);
  EXPECT_EQ(cache.lookup(1), nullptr);
  cache.insert(1, {1.0});
  cache.insert(2, {2.0});
  ASSERT_NE(cache.lookup(1), nullptr);  // promotes 1 over 2
  cache.insert(3, {3.0});               // evicts 2 (LRU)
  EXPECT_EQ(cache.peek(2), nullptr);
  ASSERT_NE(cache.peek(1), nullptr);
  ASSERT_NE(cache.peek(3), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().insertions, 3u);
  EXPECT_EQ((*cache.lookup(1))[0], 1.0);
}

TEST(DistanceCache, RefreshPromotesWithoutEviction) {
  DistanceCache cache(2);
  cache.insert(7, {7.0});
  cache.insert(8, {8.0});
  cache.insert(7, {7.5});  // refresh, no eviction
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ((*cache.peek(7))[0], 7.5);
  cache.insert(9, {9.0});  // 8 is now LRU
  EXPECT_EQ(cache.peek(8), nullptr);
}

TEST(DistanceCache, ZeroCapacityDisables) {
  DistanceCache cache(0);
  cache.insert(1, {1.0});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// ---- metrics -----------------------------------------------------------

TEST(ServiceMetrics, SummaryAggregates) {
  acic::server::ServiceMetrics metrics;
  for (int i = 0; i < 10; ++i) {
    QueryRecord r;
    r.id = static_cast<std::uint64_t>(i);
    r.arrival_us = 100.0 * i;
    r.admit_us = r.arrival_us + 5.0;
    r.complete_us = r.arrival_us + 5.0 + 10.0 * (i + 1);
    r.tier = (i % 2 == 0) ? acic::server::ServeTier::kCache
                          : acic::server::ServeTier::kEngine;
    metrics.record(r);
    metrics.sample_queue(r.arrival_us, static_cast<std::uint32_t>(i % 4),
                         static_cast<std::uint32_t>(i % 3));
  }
  const auto s = metrics.summarize(acic::server::CacheStats{});
  EXPECT_EQ(s.completed, 10u);
  EXPECT_EQ(s.cache_hits, 5u);
  EXPECT_DOUBLE_EQ(s.mean_queue_wait_us, 5.0);
  EXPECT_NEAR(s.p50_latency_us, 60.0, 1.0);  // latencies 15..105
  EXPECT_DOUBLE_EQ(s.max_latency_us, 105.0);
  EXPECT_EQ(s.max_queue_depth, 3u);
  EXPECT_EQ(s.max_concurrent, 2u);
  EXPECT_GT(s.throughput_qps, 0.0);
}

// ---- service end-to-end ------------------------------------------------

struct ServiceRun {
  std::vector<QueryRecord> records;
  acic::server::ServiceSummary summary;
  std::map<std::uint64_t, std::vector<Dist>> distances;
  std::map<std::uint64_t, Dist> p2p;
  std::uint64_t submitted = 0;
};

ServiceRun run_queries(const Csr& csr,
                       const std::vector<acic::server::Query>& queries,
                       ServiceConfig config) {
  Machine machine(Topology{1, 2, 2});
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  config.retain_full_results = true;
  QueryService service(machine, csr, partition, config);
  service.submit(queries);
  service.run();

  ServiceRun out;
  out.records = service.records();
  out.summary = service.summary();
  out.submitted = service.submitted_count();
  for (const QueryRecord& r : out.records) {
    const auto* result = service.result_of(r.id);
    if (result == nullptr) continue;
    if (r.mode == acic::server::ResultMode::kPointToPoint) {
      out.p2p[r.id] = result->distance;
    } else {
      out.distances[r.id] = result->distances;
    }
  }
  return out;
}

ServiceRun run_service(const Csr& csr, const WorkloadConfig& wl,
                       std::uint32_t max_inflight, std::size_t cache_cap) {
  ServiceConfig config;
  config.max_inflight = max_inflight;
  config.cache_capacity = cache_cap;
  return run_queries(csr, acic::server::generate_workload(
                              wl, csr.num_vertices()),
                     config);
}

WorkloadConfig small_workload() {
  WorkloadConfig wl;
  wl.seed = 11;
  wl.num_queries = 40;
  wl.qps = 2000.0;
  wl.source_universe = 8;
  return wl;
}

TEST(QueryService, CompletesEveryQueryWithCorrectDistances) {
  const Csr csr = test_graph();
  const ServiceRun run = run_service(csr, small_workload(), 2, 4);
  ASSERT_EQ(run.records.size(), run.submitted);

  // Every answer — engine-run or cached — must equal Dijkstra.
  std::map<acic::graph::VertexId, std::vector<Dist>> truth;
  for (const QueryRecord& r : run.records) {
    ASSERT_TRUE(run.distances.count(r.id)) << "query " << r.id;
    auto it = truth.find(r.source);
    if (it == truth.end()) {
      it = truth.emplace(r.source,
                         acic::baselines::dijkstra(csr, r.source)).first;
    }
    EXPECT_EQ(run.distances.at(r.id), it->second)
        << "query " << r.id << " source " << r.source
        << (r.cache_hit() ? " (cached)" : " (engine)");
  }
}

TEST(QueryService, QueriesOverlapAndAdmissionBoundHolds) {
  const Csr csr = test_graph();
  const ServiceRun run = run_service(csr, small_workload(), 2, 0);
  EXPECT_GE(run.summary.max_concurrent, 2u);  // multi-tenancy is real
  EXPECT_LE(run.summary.max_concurrent, 2u);  // and bounded

  // Overlap double-check from the records themselves: two engine-served
  // queries whose [admit, complete] intervals intersect.
  bool overlap = false;
  for (std::size_t i = 0; i < run.records.size() && !overlap; ++i) {
    for (std::size_t j = i + 1; j < run.records.size(); ++j) {
      const QueryRecord& a = run.records[i];
      const QueryRecord& b = run.records[j];
      if (a.cache_hit() || b.cache_hit()) continue;
      if (a.admit_us < b.complete_us && b.admit_us < a.complete_us) {
        overlap = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlap);
}

TEST(QueryService, AdmissionIsFifo) {
  const Csr csr = test_graph();
  const ServiceRun run = run_service(csr, small_workload(), 1, 0);
  EXPECT_EQ(run.summary.max_concurrent, 1u);
  // With one engine slot and no cache, queries are admitted strictly in
  // arrival (id) order: admit times sorted by id must be non-decreasing.
  std::vector<const QueryRecord*> by_id(run.records.size());
  for (const QueryRecord& r : run.records) {
    ASSERT_LT(r.id, by_id.size());
    by_id[r.id] = &r;
  }
  for (std::size_t i = 1; i < by_id.size(); ++i) {
    EXPECT_GE(by_id[i]->admit_us, by_id[i - 1]->admit_us);
  }
}

TEST(QueryService, CachedAnswerIdenticalToFreshEngineRun) {
  const Csr csr = test_graph();
  const ServiceRun run = run_service(csr, small_workload(), 2, 8);
  ASSERT_GT(run.summary.cache_hits, 0u);

  for (const QueryRecord& r : run.records) {
    if (!r.cache_hit()) continue;
    Machine fresh(Topology{1, 2, 2});
    const auto expected = acic::core::acic_sssp(
        fresh, csr,
        Partition1D::block(csr.num_vertices(), fresh.num_pes()), r.source,
        acic::core::AcicConfig{});
    EXPECT_EQ(run.distances.at(r.id), expected.sssp.dist)
        << "cached source " << r.source;
    break;  // one engine cross-check keeps the test fast
  }
}

// The serving determinism regression (stacked-PR contract): same seed +
// same workload config => byte-identical latency sequence across two
// QueryService runs on fresh machines.
TEST(QueryService, DeterministicLatencySequence) {
  const Csr csr = test_graph();
  const ServiceRun a = run_service(csr, small_workload(), 2, 4);
  const ServiceRun b = run_service(csr, small_workload(), 2, 4);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].id, b.records[i].id);
    const double la = a.records[i].latency_us();
    const double lb = b.records[i].latency_us();
    EXPECT_EQ(std::memcmp(&la, &lb, sizeof(double)), 0)
        << "latency diverged at completion " << i;
  }
}

TEST(QueryService, QueueDepthSamplesTrackBackpressure) {
  const Csr csr = test_graph();
  WorkloadConfig wl = small_workload();
  wl.qps = 50000.0;  // a burst: everything arrives nearly at once
  const ServiceRun run = run_service(csr, wl, 1, 0);
  EXPECT_GT(run.summary.max_queue_depth, 10u);
  EXPECT_GT(run.summary.mean_queue_wait_us, 0.0);
  // Tail percentiles must dominate the median under queueing.
  EXPECT_GE(run.summary.p99_latency_us, run.summary.p50_latency_us);
}

// ---- batching + point-to-point tiers -----------------------------------

TEST(QueryService, BatchedDistancesExactlyEqualSoloRuns) {
  const Csr csr = test_graph();
  WorkloadConfig wl = small_workload();
  wl.qps = 50000.0;        // burst arrivals: the wait queue fills,
  wl.source_universe = 16; // so gathers find multiple distinct sources
  ServiceConfig config;
  config.max_inflight = 1;
  config.cache_capacity = 0;  // every query must ride an engine pass
  config.batching.max_batch = 4;
  const ServiceRun run = run_queries(
      csr, acic::server::generate_workload(wl, csr.num_vertices()),
      config);

  ASSERT_EQ(run.records.size(), run.submitted);
  EXPECT_GT(run.summary.batches_started, 0u);
  EXPECT_GT(run.summary.batched_queries, run.summary.batches_started);
  std::map<acic::graph::VertexId, std::vector<Dist>> truth;
  for (const QueryRecord& r : run.records) {
    auto it = truth.find(r.source);
    if (it == truth.end()) {
      it = truth.emplace(r.source,
                         acic::baselines::dijkstra(csr, r.source)).first;
    }
    // Batched lanes, like everything else, are exact — bitwise.
    EXPECT_EQ(run.distances.at(r.id), it->second)
        << "query " << r.id << " source " << r.source;
  }
}

TEST(QueryService, P2pAnswersEqualFullRunDistIncludingUnreachable) {
  // Base graph plus one appended edgeless vertex: as a target it is
  // provably unreachable from everything else.
  const Csr base = test_graph(7);
  acic::graph::EdgeList list(base.num_vertices() + 1, {});
  for (acic::graph::VertexId v = 0; v < base.num_vertices(); ++v) {
    for (const auto& nb : base.out_neighbors(v)) {
      list.add(v, nb.dst, nb.weight);
    }
  }
  const Csr csr = Csr::from_edge_list(std::move(list));
  const acic::graph::VertexId isolated = csr.num_vertices() - 1;

  std::vector<Query> queries;
  acic::runtime::SimTime t = 0.0;
  std::uint64_t id = 0;
  for (acic::graph::VertexId i = 0; i < 20; ++i) {
    const acic::graph::VertexId s = (i * 37u + 11u) % (isolated + 1);
    const acic::graph::VertexId tgt = (i * 101u + 3u) % (isolated + 1);
    queries.push_back(Query::p2p(id++, t += 40.0, s, tgt));
  }
  queries.push_back(Query::p2p(id++, t += 40.0, 0, isolated));
  queries.push_back(Query::p2p(id++, t += 40.0, isolated, 5));
  queries.push_back(Query::full(id++, t += 40.0, 3));

  for (const std::size_t num_landmarks : {std::size_t{0}, std::size_t{4}}) {
    ServiceConfig config;
    config.max_inflight = 2;
    config.cache_capacity = 4;
    config.landmarks.num_landmarks = num_landmarks;
    const ServiceRun run = run_queries(csr, queries, config);
    ASSERT_EQ(run.records.size(), queries.size());
    if (num_landmarks > 0) {
      EXPECT_GT(run.summary.landmark_exact + run.summary.goal_directed,
                0u);
    }
    bool saw_unreachable = false;
    for (const QueryRecord& r : run.records) {
      if (r.mode != acic::server::ResultMode::kPointToPoint) continue;
      const Dist expected =
          acic::baselines::dijkstra(csr, r.source)[r.target];
      ASSERT_TRUE(run.p2p.count(r.id)) << "query " << r.id;
      EXPECT_EQ(run.p2p.at(r.id), expected)
          << "query " << r.id << " (" << r.source << " -> " << r.target
          << ") with " << num_landmarks << " landmarks";
      saw_unreachable |= expected == acic::graph::kInfDist;
    }
    EXPECT_TRUE(saw_unreachable);
  }
}

TEST(QueryService, BatchingAndLandmarksPreserveDeterminism) {
  const Csr csr = test_graph();
  WorkloadConfig wl = small_workload();
  wl.qps = 20000.0;
  wl.p2p_fraction = 0.4;
  const auto queries =
      acic::server::generate_workload(wl, csr.num_vertices());
  ServiceConfig config;
  config.max_inflight = 2;
  config.cache_capacity = 4;
  config.batching.max_batch = 3;
  config.landmarks.num_landmarks = 4;
  const ServiceRun a = run_queries(csr, queries, config);
  const ServiceRun b = run_queries(csr, queries, config);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].id, b.records[i].id);
    EXPECT_EQ(a.records[i].tier, b.records[i].tier);
    const double la = a.records[i].latency_us();
    const double lb = b.records[i].latency_us();
    EXPECT_EQ(std::memcmp(&la, &lb, sizeof(double)), 0)
        << "latency diverged at completion " << i;
  }
  EXPECT_EQ(a.p2p, b.p2p);
  EXPECT_EQ(a.distances, b.distances);
}

TEST(Workload, P2pFractionSamplesTargetsAndFirstIdOffsets) {
  WorkloadConfig wl = small_workload();
  wl.num_queries = 200;
  wl.p2p_fraction = 0.5;
  wl.first_id = 1000;
  const auto stream = acic::server::generate_workload(wl, 256);
  ASSERT_EQ(stream.size(), 200u);
  std::uint64_t p2p = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].id, 1000u + i);
    if (stream[i].is_p2p()) {
      ++p2p;
      EXPECT_LT(stream[i].target, 256u);
    } else {
      EXPECT_EQ(stream[i].target, acic::graph::kInvalidVertex);
    }
  }
  // ~half the stream, with generous slack for the seeded coin.
  EXPECT_GT(p2p, 60u);
  EXPECT_LT(p2p, 140u);

  // p2p_fraction = 0 must reproduce the historical stream bit-for-bit:
  // same ids, arrivals and sources as a pre-p2p workload.
  WorkloadConfig plain = small_workload();
  plain.num_queries = 200;
  const auto classic = acic::server::generate_workload(plain, 256);
  WorkloadConfig zero = plain;
  zero.p2p_fraction = 0.0;
  const auto again = acic::server::generate_workload(zero, 256);
  ASSERT_EQ(classic.size(), again.size());
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(classic[i].arrival_us, again[i].arrival_us);
    EXPECT_EQ(classic[i].source, again[i].source);
  }
}

}  // namespace
