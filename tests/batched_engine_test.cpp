// Batched multi-source engine runs (AcicEngineOptions::sources): every
// lane's distance vector must be *exactly* the vector a solo
// single-source run produces — batching trades scheduling, never
// accuracy.  Named BatchedEngine* so the TSan CI job's filter picks
// these up alongside the other parallel-engine suites.

#include <gtest/gtest.h>

#include <vector>

#include "src/baselines/sequential.hpp"
#include "src/core/acic.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"

namespace {

using acic::core::AcicConfig;
using acic::core::AcicEngine;
using acic::core::AcicEngineOptions;
using acic::graph::Csr;
using acic::graph::Dist;
using acic::graph::Partition1D;
using acic::graph::VertexId;
using acic::runtime::Machine;
using acic::runtime::Topology;

Csr test_graph(std::uint32_t scale, std::uint64_t seed) {
  acic::graph::GenParams params;
  params.num_vertices = VertexId{1} << scale;
  params.num_edges = params.num_vertices * 8ull;
  params.seed = seed;
  return Csr::from_edge_list(acic::graph::generate_uniform_random(params));
}

std::vector<std::vector<Dist>> run_batched(
    const Csr& csr, const std::vector<VertexId>& sources,
    const AcicConfig& config = {}, unsigned threads = 1,
    Topology topology = Topology{1, 2, 2}) {
  Machine machine(topology);
  machine.set_threads(threads);
  const Partition1D partition =
      Partition1D::block(csr.num_vertices(), machine.num_pes());
  AcicEngineOptions options;
  options.sources = sources;
  AcicEngine engine(machine, csr, partition, sources[0], config,
                    std::move(options));
  machine.run();
  EXPECT_TRUE(engine.complete());
  auto result = engine.collect();
  EXPECT_EQ(result.lane_dist.size(), sources.size());
  // Lane 0 doubles as the classic result slot.
  EXPECT_EQ(result.sssp.dist, result.lane_dist[0]);
  return std::move(result.lane_dist);
}

TEST(BatchedEngine, LanesExactlyEqualSoloRuns) {
  for (const std::uint64_t seed : {3u, 17u}) {
    const Csr csr = test_graph(8, seed);
    const std::vector<VertexId> sources = {0, 7, 63, 200};
    const auto lanes = run_batched(csr, sources);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      Machine solo(Topology{1, 2, 2});
      const auto expected = acic::core::acic_sssp(
          solo, csr,
          Partition1D::block(csr.num_vertices(), solo.num_pes()),
          sources[i], AcicConfig{});
      EXPECT_EQ(lanes[i], expected.sssp.dist)
          << "lane " << i << " source " << sources[i] << " seed " << seed;
    }
  }
}

TEST(BatchedEngine, LanesMatchDijkstraUnderThresholdConfigs) {
  const Csr csr = test_graph(9, 5);
  const std::vector<VertexId> sources = {1, 100, 300};
  std::vector<std::vector<Dist>> truth;
  truth.reserve(sources.size());
  for (const VertexId s : sources) {
    truth.push_back(acic::baselines::dijkstra(csr, s));
  }
  for (const bool use_pq : {false, true}) {
    AcicConfig config;
    config.use_pq = use_pq;
    const auto lanes = run_batched(csr, sources, config);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(lanes[i], truth[i]) << "use_pq " << use_pq << " lane " << i;
    }
  }
}

TEST(BatchedEngine, SingleLaneBatchEqualsClassicRun) {
  const Csr csr = test_graph(8, 11);
  const auto lanes = run_batched(csr, {42});
  Machine classic(Topology{1, 2, 2});
  const auto expected = acic::core::acic_sssp(
      classic, csr,
      Partition1D::block(csr.num_vertices(), classic.num_pes()), 42,
      AcicConfig{});
  EXPECT_EQ(lanes[0], expected.sssp.dist);
}

TEST(BatchedEngine, DeterministicAcrossRuns) {
  const Csr csr = test_graph(8, 23);
  const std::vector<VertexId> sources = {5, 9, 120};
  const auto a = run_batched(csr, sources);
  const auto b = run_batched(csr, sources);
  EXPECT_EQ(a, b);
}

// Lane payloads ride the same conservative-window parallel scheduler as
// everything else; distances must stay exact (and bit-identical to the
// serial schedule) with host worker threads — the TSan CI job runs this
// suite to prove the lane plumbing adds no races.
TEST(BatchedEngine, ExactWithHostThreads4) {
  const Csr csr = test_graph(9, 31);
  const std::vector<VertexId> sources = {0, 250, 400, 77};
  const Topology topology{4, 2, 2};
  const auto serial = run_batched(csr, sources, AcicConfig{}, 1, topology);
  const auto parallel = run_batched(csr, sources, AcicConfig{}, 4, topology);
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(parallel[i], acic::baselines::dijkstra(csr, sources[i]))
        << "lane " << i;
  }
}

}  // namespace
