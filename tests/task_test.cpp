// Unit tests for runtime::Task (src/runtime/task.hpp): move-only
// semantics, inline vs slab-spilled capture storage, and — the property
// the event loop depends on — exactly one destruction per capture, even
// when a queued task is never executed.

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "src/runtime/machine.hpp"
#include "src/runtime/task.hpp"
#include "src/runtime/topology.hpp"

namespace {

using acic::runtime::Machine;
using acic::runtime::Pe;
using acic::runtime::Task;
using acic::runtime::Topology;
using acic::runtime::detail::task_slab_live_blocks;
using acic::runtime::detail::task_slab_pooled_blocks;

/// Counts constructions and destructions of every copy/move of itself.
struct Probe {
  int* live;
  explicit Probe(int* counter) : live(counter) { ++*live; }
  Probe(const Probe& other) : live(other.live) { ++*live; }
  Probe(Probe&& other) noexcept : live(other.live) { ++*live; }
  ~Probe() { --*live; }
};

TEST(Task, EmptyTaskIsFalse) {
  Task task;
  EXPECT_FALSE(static_cast<bool>(task));
  Task null_task = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_task));
}

TEST(Task, SmallCaptureStoredInline) {
  int hits = 0;
  Task task = [&hits](Pe&) { ++hits; };
  EXPECT_TRUE(static_cast<bool>(task));
  EXPECT_TRUE(task.stored_inline());

  // Up to the inline budget stays inline.
  std::array<char, Task::kInlineBytes> payload{};
  Task full = [payload](Pe&) { (void)payload; };
  EXPECT_TRUE(full.stored_inline());
}

TEST(Task, OversizedCaptureSpillsToSlab) {
  const std::size_t live_before = task_slab_live_blocks();
  std::array<char, Task::kInlineBytes + 1> payload{};
  {
    Task task = [payload](Pe&) { (void)payload; };
    EXPECT_TRUE(static_cast<bool>(task));
    EXPECT_FALSE(task.stored_inline());
    EXPECT_EQ(task_slab_live_blocks(), live_before + 1);
  }
  // Destruction returns the block to the pool, not the system allocator.
  EXPECT_EQ(task_slab_live_blocks(), live_before);
  EXPECT_GE(task_slab_pooled_blocks(), 1u);
}

TEST(Task, SlabRecyclesFreedBlocks) {
  std::array<char, 200> payload{};  // 256-byte size class
  { Task warm = [payload](Pe&) {}; }
  const std::size_t pooled = task_slab_pooled_blocks();
  {
    Task task = [payload](Pe&) {};
    // The spill reused a pooled block rather than allocating a fresh one.
    EXPECT_EQ(task_slab_pooled_blocks(), pooled - 1);
  }
  EXPECT_EQ(task_slab_pooled_blocks(), pooled);
}

TEST(Task, MoveTransfersOwnershipInline) {
  int live = 0;
  int hits = 0;
  {
    Task a = [probe = Probe(&live), &hits](Pe&) { ++hits; };
    EXPECT_GE(live, 1);
    Task b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));

    Task c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(c));

    Machine machine(Topology::tiny(1));
    machine.schedule_at(0.0, 0, std::move(c));
    machine.run();
    EXPECT_EQ(hits, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(Task, MoveTransfersOwnershipSpilled) {
  int live = 0;
  std::array<char, Task::kInlineBytes * 2> payload{};
  {
    Task a = [probe = Probe(&live), payload](Pe&) { (void)payload; };
    EXPECT_FALSE(a.stored_inline());
    const std::size_t live_blocks = task_slab_live_blocks();
    Task b = std::move(a);
    // Moving a spilled task moves the block pointer, not the capture.
    EXPECT_EQ(task_slab_live_blocks(), live_blocks);
    EXPECT_TRUE(static_cast<bool>(b));
  }
  EXPECT_EQ(live, 0);
}

TEST(Task, MoveAssignDestroysPreviousCapture) {
  int live_a = 0;
  int live_b = 0;
  Task task = [probe = Probe(&live_a)](Pe&) {};
  EXPECT_EQ(live_a, 1);
  task = Task([probe = Probe(&live_b)](Pe&) {});
  EXPECT_EQ(live_a, 0);
  EXPECT_EQ(live_b, 1);
  task = nullptr;
  EXPECT_EQ(live_b, 0);
}

TEST(Task, CaptureCanHoldMoveOnlyState) {
  auto value = std::make_unique<int>(41);
  int seen = 0;
  Task task = [value = std::move(value), &seen](Pe&) { seen = *value + 1; };
  Machine machine(Topology::tiny(1));
  machine.schedule_at(0.0, 0, std::move(task));
  machine.run();
  EXPECT_EQ(seen, 42);
}

TEST(Task, QueuedButNeverRunTasksAreDestroyed) {
  // A run() that hits its time limit leaves arrivals parked in the
  // machine's slot store; destroying the machine must destroy them (both
  // inline and spilled captures), or hit_time_limit leaks closures.
  int live = 0;
  std::array<char, Task::kInlineBytes * 2> payload{};
  const std::size_t live_blocks_before = task_slab_live_blocks();
  {
    Machine machine(Topology::tiny(1));
    machine.schedule_at(5.0, 0, [probe = Probe(&live)](Pe&) {});
    machine.schedule_at(6.0, 0,
                        [probe = Probe(&live), payload](Pe&) {
                          (void)payload;
                        });
    const auto stats = machine.run(/*time_limit=*/1.0);
    EXPECT_TRUE(stats.hit_time_limit);
    EXPECT_EQ(stats.tasks_executed, 0u);
    EXPECT_EQ(live, 2);
  }
  EXPECT_EQ(live, 0);
  EXPECT_EQ(task_slab_live_blocks(), live_blocks_before);
}

TEST(Task, FifoQueuedButNeverRunTasksAreDestroyed) {
  // Same leak hazard one stage later: the arrival was processed (task
  // parked in the PE fifo) but the exec step never ran.
  int live = 0;
  {
    Machine machine(Topology::tiny(1));
    machine.set_idle_poll_cost(0.5);
    machine.schedule_at(0.0, 0, [](Pe& pe) { pe.charge(10.0); });
    machine.schedule_at(1.0, 0, [probe = Probe(&live)](Pe&) {});
    const auto stats = machine.run(/*time_limit=*/2.0);
    EXPECT_TRUE(stats.hit_time_limit);
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

}  // namespace
