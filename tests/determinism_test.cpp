// Determinism regression: the same seed must reproduce a bit-identical
// simulation — distances, machine-level RunStats and algorithm lifecycle
// counters — when a solver runs twice *in one process*.  Two in-process
// runs share the task-slab free lists, tram buffer pools and machine
// slot stores warmed by the first run, so this catches any pool-reuse
// state leaking into scheduling order (the hazard the hot-path layout
// must not introduce; see docs/performance.md).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/csr.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/solver.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::graph::Csr;
using acic::runtime::Machine;

struct RunRecord {
  std::vector<acic::graph::Dist> dist;
  acic::sssp::SsspMetrics metrics;
  std::uint64_t machine_tasks = 0;
  std::uint64_t machine_events = 0;
  std::uint64_t machine_messages = 0;
  std::uint64_t machine_bytes = 0;
  std::uint64_t cycles = 0;
  std::vector<std::pair<std::string, double>> extras;
};

RunRecord run_once(const std::string& solver, const Csr& csr) {
  acic::stats::ExperimentSpec spec;  // only for topology shape
  spec.nodes = 2;
  Machine machine(spec.topology());
  const auto run = acic::sssp::run_solver(solver, machine, csr, 0);

  RunRecord rec;
  rec.dist = run.sssp.dist;
  rec.metrics = run.sssp.metrics;
  for (acic::runtime::PeId p = 0; p < machine.num_pes(); ++p) {
    rec.machine_tasks += machine.pe_tasks_run(p);
  }
  rec.machine_events = machine.total_events_processed();
  rec.machine_messages = machine.total_messages_sent();
  rec.machine_bytes = machine.total_bytes_sent();
  rec.cycles = run.telemetry.cycles;
  rec.extras = run.telemetry.extras;
  return rec;
}

class DeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismTest, SameSeedSameProcessBitIdentical) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 10;
  spec.edge_factor = 8;
  spec.seed = 7;
  spec.nodes = 2;
  const Csr csr = acic::stats::build_graph(spec);

  const RunRecord first = run_once(GetParam(), csr);
  const RunRecord second = run_once(GetParam(), csr);

  // Distances must match bit for bit (EXPECT_EQ on doubles is exact).
  ASSERT_EQ(first.dist.size(), second.dist.size());
  for (std::size_t v = 0; v < first.dist.size(); ++v) {
    ASSERT_EQ(first.dist[v], second.dist[v]) << "vertex " << v;
  }

  // Machine-level accounting: tasks, events, messages, bytes, end time.
  EXPECT_EQ(first.machine_tasks, second.machine_tasks);
  EXPECT_EQ(first.machine_events, second.machine_events);
  EXPECT_EQ(first.machine_messages, second.machine_messages);
  EXPECT_EQ(first.machine_bytes, second.machine_bytes);
  EXPECT_EQ(first.metrics.sim_time_us, second.metrics.sim_time_us);

  // Algorithm-level accounting, including the ACIC lifecycle counters
  // ("sent_directly", "held_in_tram", ... via telemetry extras).
  EXPECT_EQ(first.metrics.updates_created, second.metrics.updates_created);
  EXPECT_EQ(first.metrics.updates_processed,
            second.metrics.updates_processed);
  EXPECT_EQ(first.metrics.updates_rejected,
            second.metrics.updates_rejected);
  EXPECT_EQ(first.metrics.updates_superseded,
            second.metrics.updates_superseded);
  EXPECT_EQ(first.metrics.vertices_touched,
            second.metrics.vertices_touched);
  EXPECT_EQ(first.cycles, second.cycles);
  ASSERT_EQ(first.extras.size(), second.extras.size());
  for (std::size_t i = 0; i < first.extras.size(); ++i) {
    EXPECT_EQ(first.extras[i].first, second.extras[i].first);
    EXPECT_EQ(first.extras[i].second, second.extras[i].second)
        << "extra '" << first.extras[i].first << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Solvers, DeterminismTest,
                         ::testing::Values("acic", "delta_stepping_dist",
                                           "kla"));

}  // namespace
