// Additional runtime tests: element-wise reduction ops, straggler speed
// factors, and ACIC's histogram snapshot recording.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/acic.hpp"
#include "src/runtime/collectives.hpp"
#include "src/runtime/machine.hpp"
#include "src/stats/experiment.hpp"

namespace {

using acic::runtime::Machine;
using acic::runtime::Pe;
using acic::runtime::PeId;
using acic::runtime::ReduceOp;
using acic::runtime::Reducer;
using acic::runtime::Topology;

TEST(ReducerOps, MinAndMaxSlots) {
  Machine machine(Topology::tiny(5));
  std::vector<double> result;
  Reducer reducer(
      machine, 3,
      [&](Pe&, std::uint64_t, const std::vector<double>& sum)
          -> std::optional<std::vector<double>> {
        result = sum;
        return std::nullopt;
      },
      [](Pe&, std::uint64_t, const std::vector<double>&) {},
      /*fanout=*/2,
      {ReduceOp::kSum, ReduceOp::kMin, ReduceOp::kMax});
  for (PeId p = 0; p < 5; ++p) {
    machine.schedule_at(0.0, p, [&reducer, p](Pe& pe) {
      const double x = static_cast<double>(p);
      reducer.contribute(pe, {1.0, 10.0 - x, x});
    });
  }
  machine.run();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_DOUBLE_EQ(result[0], 5.0);   // sum of ones
  EXPECT_DOUBLE_EQ(result[1], 6.0);   // min of 10..6
  EXPECT_DOUBLE_EQ(result[2], 4.0);   // max of 0..4
}

TEST(ReducerOps, MinOfInfinityIdentity) {
  Machine machine(Topology::tiny(2));
  std::vector<double> result;
  Reducer reducer(
      machine, 1,
      [&](Pe&, std::uint64_t, const std::vector<double>& sum)
          -> std::optional<std::vector<double>> {
        result = sum;
        return std::nullopt;
      },
      [](Pe&, std::uint64_t, const std::vector<double>&) {}, 2,
      {ReduceOp::kMin});
  const double inf = std::numeric_limits<double>::infinity();
  machine.schedule_at(0.0, 0, [&reducer, inf](Pe& pe) {
    reducer.contribute(pe, {inf});
  });
  machine.schedule_at(0.0, 1, [&reducer, inf](Pe& pe) {
    reducer.contribute(pe, {inf});
  });
  machine.run();
  EXPECT_TRUE(std::isinf(result[0]));
}

TEST(SpeedFactor, SlowPeTakesProportionallyLonger) {
  Machine machine(Topology::tiny(2));
  machine.set_speed_factor(1, 0.25);
  double fast_end = 0.0;
  double slow_end = 0.0;
  machine.schedule_at(0.0, 0, [&](Pe& pe) {
    pe.charge(10.0);
    fast_end = pe.now();
  });
  machine.schedule_at(0.0, 1, [&](Pe& pe) {
    pe.charge(10.0);
    slow_end = pe.now();
  });
  machine.run();
  EXPECT_DOUBLE_EQ(fast_end, 10.0);
  EXPECT_DOUBLE_EQ(slow_end, 40.0);
}

TEST(SpeedFactor, DoesNotChangeAcicDistances) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 9;
  spec.seed = 3;
  const auto csr = acic::stats::build_graph(spec);
  const auto partition =
      acic::graph::Partition1D::block(csr.num_vertices(), 4);

  Machine normal(Topology::tiny(4));
  Machine slowed(Topology::tiny(4));
  slowed.set_speed_factor(2, 0.1);
  const auto a =
      acic::core::acic_sssp(normal, csr, partition, 0, {}, 120e6);
  const auto b =
      acic::core::acic_sssp(slowed, csr, partition, 0, {}, 120e6);
  EXPECT_EQ(a.sssp.dist, b.sssp.dist);
  EXPECT_GT(b.sssp.metrics.sim_time_us, a.sssp.metrics.sim_time_us);
}

TEST(HistogramSnapshots, RecordedWhenEnabled) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRmat;
  spec.scale = 10;
  spec.seed = 4;
  const auto csr = acic::stats::build_graph(spec);
  const auto partition =
      acic::graph::Partition1D::block(csr.num_vertices(), 8);

  Machine machine(Topology{1, 2, 4});
  acic::core::AcicConfig config;
  config.record_histograms = true;
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);
  ASSERT_FALSE(run.histograms.empty());
  // The terminating cycle returns early without recording a snapshot.
  EXPECT_GE(run.histograms.size() + 1, run.reduction_cycles);
  EXPECT_LE(run.histograms.size(), run.reduction_cycles);
  for (const auto& snap : run.histograms) {
    EXPECT_EQ(snap.counts.size(), config.num_buckets);
    // Global histogram mass equals the active-update count.
    double mass = 0.0;
    for (const double c : snap.counts) mass += c;
    EXPECT_DOUBLE_EQ(mass, snap.active_updates);
    EXPECT_LE(snap.t_pq, snap.t_tram + config.num_buckets);  // sane
  }
  // Activity must rise then fall back to zero at the end.
  EXPECT_DOUBLE_EQ(run.histograms.back().active_updates, 0.0);
}

TEST(LifecycleInvariants, HoldRouteAndProcessingSplitsAddUp) {
  acic::stats::ExperimentSpec spec;
  spec.graph = acic::stats::GraphKind::kRandom;
  spec.scale = 10;
  spec.seed = 6;
  const auto csr = acic::stats::build_graph(spec);
  const auto partition =
      acic::graph::Partition1D::block(csr.num_vertices(), 8);
  Machine machine(Topology{1, 2, 4});
  acic::core::AcicConfig config;
  config.p_tram = 0.3;  // exercise the tram hold too
  const auto run =
      acic::core::acic_sssp(machine, csr, partition, 0, config, 120e6);

  const auto& lc = run.lifecycle;
  EXPECT_EQ(lc.created, lc.sent_directly + lc.held_in_tram);
  EXPECT_EQ(lc.created,
            lc.rejected_on_arrival + lc.superseded_in_pq + lc.expanded);
  EXPECT_GT(lc.held_in_pq_hold, 0u);  // p_pq = 0.05 parks most updates
}

}  // namespace
