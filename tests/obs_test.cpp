// Tests for the observability layer (src/obs/ + tracer extensions):
// registry counter arithmetic and hierarchy rollups, sample coalescing,
// tracer capacity bounds with oldest-first eviction, ScopedSpan, the
// Chrome trace-event exporter's well-formedness, and the cross-check the
// ISSUE pins down: exported message totals must exactly match the
// machine's RunStats / SsspMetrics network counters.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/graph/generators.hpp"
#include "src/obs/export.hpp"
#include "src/obs/registry.hpp"
#include "src/runtime/machine.hpp"
#include "src/runtime/trace.hpp"
#include "src/server/service.hpp"
#include "src/server/workload.hpp"
#include "src/sssp/solver.hpp"

namespace {

using acic::graph::Csr;
using acic::obs::CounterId;
using acic::obs::Registry;
using acic::obs::Scope;
using acic::obs::SeriesId;
using acic::runtime::Machine;
using acic::runtime::Pe;
using acic::runtime::ScopedSpan;
using acic::runtime::SpanKind;
using acic::runtime::Topology;
using acic::runtime::Tracer;
using acic::server::QueryService;

Csr test_graph(std::uint32_t scale = 9, std::uint64_t seed = 5) {
  acic::graph::GenParams params;
  params.num_vertices = acic::graph::VertexId{1} << scale;
  params.num_edges = params.num_vertices * 8ull;
  params.seed = seed;
  return Csr::from_edge_list(acic::graph::generate_uniform_random(params));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- counter arithmetic and rollups ------------------------------------

TEST(ObsRegistry, CounterArithmeticAndHierarchyRollup) {
  // 2 nodes x 2 procs x 2 pes: workers 0..7, comm threads 8..11.
  const Topology topo{2, 2, 2};
  Registry registry(topo);

  const CounterId id = registry.counter("test/events");
  registry.add(id, /*entity=*/0, 3, 0.0);   // node 0, proc 0
  registry.add(id, /*entity=*/1, 4, 0.0);   // node 0, proc 0
  registry.add(id, /*entity=*/2, 5, 0.0);   // node 0, proc 1
  registry.add(id, /*entity=*/6, 7, 0.0);   // node 1, proc 3
  registry.add(id, /*entity=*/9, 11, 0.0);  // comm thread of proc 1

  EXPECT_EQ(registry.total(id), 30u);
  EXPECT_EQ(registry.total("test/events"), 30u);
  EXPECT_EQ(registry.total("no/such/counter"), 0u);

  EXPECT_EQ(registry.at(id, Scope::machine()), 30u);
  // Node rollups: comm thread 9 belongs to proc 1 which is in node 0.
  EXPECT_EQ(registry.at(id, Scope::node(0)), 3u + 4u + 5u + 11u);
  EXPECT_EQ(registry.at(id, Scope::node(1)), 7u);
  // Process rollups.
  EXPECT_EQ(registry.at(id, Scope::process(0)), 3u + 4u);
  EXPECT_EQ(registry.at(id, Scope::process(1)), 5u + 11u);
  EXPECT_EQ(registry.at(id, Scope::process(3)), 7u);
  // Single-entity scopes.
  EXPECT_EQ(registry.at(id, Scope::pe(2)), 5u);
  EXPECT_EQ(registry.at(id, Scope::pe(9)), 11u);
  EXPECT_EQ(registry.at(id, Scope::pe(5)), 0u);

  // Node totals partition the machine total.
  EXPECT_EQ(registry.at(id, Scope::node(0)) + registry.at(id, Scope::node(1)),
            registry.total(id));
}

TEST(ObsRegistry, FamiliesSharedByNameAndTimedUpgrade) {
  Registry registry(Topology::tiny(2));
  const CounterId a = registry.counter("shared/family");
  const CounterId b = registry.counter("shared/family", /*timed=*/true);
  EXPECT_EQ(a.index, b.index);
  registry.add(a, 0, 1, 1.0);
  registry.add(b, 1, 2, 2.0);
  EXPECT_EQ(registry.total(a), 3u);
  // Upgraded to timed: increments append (time, machine total) samples.
  const auto* family = registry.find_counter("shared/family");
  ASSERT_NE(family, nullptr);
  EXPECT_TRUE(family->timed);
  ASSERT_EQ(family->samples.size(), 2u);
  EXPECT_DOUBLE_EQ(family->samples.back().value, 3.0);
}

TEST(ObsRegistry, SampleCoalescingKeepsFinalValueExact) {
  Registry registry(Topology::tiny(2));
  registry.set_min_sample_interval(10.0);
  const CounterId id = registry.counter("coalesced/count", /*timed=*/true);
  // 100 increments 1us apart: without coalescing 100 samples, with a
  // 10us floor roughly a tenth of that — but the final sample must still
  // carry the exact total.
  for (int i = 0; i < 100; ++i) {
    registry.add(id, 0, 1, static_cast<double>(i));
  }
  const auto* family = registry.find_counter("coalesced/count");
  ASSERT_NE(family, nullptr);
  EXPECT_EQ(family->total, 100u);
  EXPECT_LT(family->samples.size(), 20u);
  EXPECT_GE(family->samples.size(), 2u);
  EXPECT_DOUBLE_EQ(family->samples.back().value, 100.0);

  // Series coalesce the same way: last write wins inside the window.
  const SeriesId sid = registry.series("coalesced/depth");
  for (int i = 0; i < 50; ++i) {
    registry.append(sid, static_cast<double>(i), static_cast<double>(i * i));
  }
  const auto* series = registry.find_series("coalesced/depth");
  ASSERT_NE(series, nullptr);
  EXPECT_LT(series->points.size(), 10u);
  EXPECT_DOUBLE_EQ(series->points.back().value, 49.0 * 49.0);
}

TEST(ObsRegistry, SeriesScopedByNameAndScope) {
  Registry registry(Topology::tiny(4));
  const SeriesId machine_wide = registry.series("depth");
  const SeriesId pe2 = registry.series("depth", Scope::pe(2));
  EXPECT_NE(machine_wide.index, pe2.index);
  // Re-asking returns the same stream.
  EXPECT_EQ(registry.series("depth").index, machine_wide.index);
  EXPECT_EQ(registry.series("depth", Scope::pe(2)).index, pe2.index);
  registry.append(pe2, 1.0, 7.0);
  EXPECT_EQ(registry.all_series()[pe2.index].points.size(), 1u);
  EXPECT_TRUE(registry.all_series()[machine_wide.index].points.empty());
}

TEST(ObsRegistry, HistogramSeriesRecordsCycles) {
  Registry registry(Topology::tiny(2));
  const auto id = registry.histogram_series("test/hist");
  registry.append_histogram(id, 0, 10.0, {1.0, 2.0, 3.0});
  registry.append_histogram(id, 1, 20.0, {0.0, 5.0});
  const auto* series = registry.find_histogram("test/hist");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->samples.size(), 2u);
  EXPECT_EQ(series->samples[0].cycle, 0u);
  EXPECT_EQ(series->samples[1].counts.size(), 2u);
  EXPECT_DOUBLE_EQ(series->samples[1].counts[1], 5.0);
}

// ---- machine wiring ----------------------------------------------------

TEST(ObsRegistry, MachineCountersMatchRunStats) {
  const Topology topo{2, 2, 2};
  Registry registry(topo);
  Machine machine(topo);
  machine.set_registry(&registry);

  // A message chain that crosses every locality tier: 0->1 is
  // intra-process, 0->2 intra-node, 0->4 inter-node.
  machine.schedule_at(0.0, 0, [](Pe& pe) {
    pe.charge(1.0);
    pe.send(1, 64, [](Pe& q) { q.charge(1.0); });
    pe.send(2, 64, [](Pe& q) { q.charge(1.0); });
    pe.send(4, 64, [](Pe& q) { q.charge(1.0); });
  });
  const auto stats = machine.run();

  EXPECT_EQ(registry.total("runtime/tasks_executed"), stats.tasks_executed);
  EXPECT_EQ(registry.total("runtime/idle_polls"), stats.idle_polls);
  const std::uint64_t total_msgs =
      registry.total("net/messages_self") +
      registry.total("net/messages_intra_process") +
      registry.total("net/messages_intra_node") +
      registry.total("net/messages_inter_node");
  EXPECT_EQ(total_msgs, stats.messages_sent);
  EXPECT_EQ(registry.total("net/messages_intra_process"), 1u);
  EXPECT_EQ(registry.total("net/messages_intra_node"), 1u);
  EXPECT_EQ(registry.total("net/messages_inter_node"), 1u);
  const std::uint64_t total_bytes =
      registry.total("net/bytes_self") +
      registry.total("net/bytes_intra_process") +
      registry.total("net/bytes_intra_node") +
      registry.total("net/bytes_inter_node");
  EXPECT_EQ(total_bytes, stats.bytes_sent);

  // Message counters attribute to the *sender*: everything came from
  // PE 0, i.e. node 0 / process 0.
  const auto* family = registry.find_counter("net/messages_inter_node");
  ASSERT_NE(family, nullptr);
  const CounterId id{static_cast<std::size_t>(
      family - registry.counters().data())};
  EXPECT_EQ(registry.at(id, Scope::pe(0)), 1u);
  EXPECT_EQ(registry.at(id, Scope::node(1)), 0u);

  // The ready-task queue-depth series saw the arrivals.
  const auto* depth = registry.find_series("runtime/ready_tasks");
  ASSERT_NE(depth, nullptr);
  EXPECT_FALSE(depth->points.empty());
  EXPECT_DOUBLE_EQ(depth->points.back().value, 0.0);
}

// ---- optimistic-engine speculation export ------------------------------

// Parallel runs cannot carry a live registry (Machine::run falls back to
// the serial loop when one is attached), so the optimistic engine's
// diagnostics export post-hoc: publish_speculation turns the machine
// totals into parallel/speculation_* counters plus the per-epoch GVT-lag
// series.  The counters must equal the machine's own totals exactly.
TEST(ObsRegistry, PublishSpeculationExportsCountersAndGvtLag) {
  const Csr csr = test_graph(9, 3);
  const Topology topo{4, 1, 2};
  Machine machine(topo);
  machine.set_threads(4);
  machine.set_engine_mode(acic::runtime::EngineMode::kOptimistic);
  acic::sssp::SolverOptions opts;
  opts.engine_mode = acic::runtime::EngineMode::kOptimistic;
  acic::sssp::run_solver("acic", machine, csr, 0, opts);
  ASSERT_GT(machine.total_speculated_events(), 0u)
      << "speculation never engaged; the export below would be vacuous";

  Registry registry(topo);
  machine.publish_speculation(registry);
  EXPECT_EQ(registry.total("parallel/speculation_rollbacks"),
            machine.total_speculation_rollbacks());
  EXPECT_EQ(registry.total("parallel/speculation_commits"),
            machine.total_speculation_commits());
  EXPECT_EQ(registry.total("parallel/speculation_events"),
            machine.total_speculated_events());
  EXPECT_EQ(registry.total("parallel/speculation_replayed_events"),
            machine.total_replayed_events());
  EXPECT_EQ(registry.total("parallel/speculation_checkpoint_bytes"),
            machine.total_checkpoint_bytes());
  EXPECT_GT(machine.total_speculation_commits() +
                machine.total_speculation_rollbacks(),
            0u);

  // Every resolved epoch logged how far past the committed floor it had
  // speculated, stamped at the floor's sim time (ascending).
  const auto* lag = registry.find_series("parallel/speculation_gvt_lag");
  ASSERT_NE(lag, nullptr);
  EXPECT_FALSE(lag->points.empty());
  for (const auto& point : lag->points) {
    EXPECT_GE(point.value, 0.0);
  }
}

// ---- tracer capacity + ScopedSpan --------------------------------------

TEST(Tracer, CapacityEvictsOldestFirst) {
  Tracer tracer;
  tracer.set_capacity(3);
  EXPECT_EQ(tracer.capacity(), 3u);
  EXPECT_FALSE(tracer.overflowed());
  for (int i = 0; i < 5; ++i) {
    tracer.record(0, i * 10.0, i * 10.0 + 5.0, SpanKind::kTask);
  }
  EXPECT_TRUE(tracer.overflowed());
  EXPECT_EQ(tracer.dropped_spans(), 2u);
  ASSERT_EQ(tracer.spans().size(), 3u);
  // Oldest two (start 0, 10) were evicted; the window holds 20, 30, 40.
  EXPECT_DOUBLE_EQ(tracer.spans().front().start_us, 20.0);
  EXPECT_DOUBLE_EQ(tracer.spans().back().start_us, 40.0);

  tracer.clear();
  EXPECT_FALSE(tracer.overflowed());
  EXPECT_EQ(tracer.dropped_spans(), 0u);

  // Shrinking the capacity evicts immediately.
  tracer.set_capacity(0);  // unbounded
  for (int i = 0; i < 10; ++i) {
    tracer.record(0, i * 1.0, i * 1.0 + 0.5, SpanKind::kTask);
  }
  EXPECT_FALSE(tracer.overflowed());
  tracer.set_capacity(4);
  EXPECT_EQ(tracer.spans().size(), 4u);
  EXPECT_TRUE(tracer.overflowed());
  EXPECT_DOUBLE_EQ(tracer.spans().front().start_us, 6.0);
}

TEST(Tracer, ScopedSpanRecordsNamedSpan) {
  const Topology topo = Topology::tiny(2);
  Tracer tracer;
  Machine machine(topo);
  acic::runtime::attach_tracer(machine, tracer);

  machine.schedule_at(0.0, 0, [&tracer](Pe& pe) {
    const ScopedSpan span(&tracer, pe, "test/section");
    pe.charge(7.0);
  });
  machine.run();

  bool found = false;
  for (const auto& span : tracer.spans()) {
    if (span.kind == SpanKind::kNamed) {
      EXPECT_STREQ(span.name, "test/section");
      EXPECT_DOUBLE_EQ(span.end_us - span.start_us, 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Null tracer: a no-op, not a crash.
  machine.schedule_at(100.0, 1, [](Pe& pe) {
    const ScopedSpan span(nullptr, pe, "ignored");
    pe.charge(1.0);
  });
  machine.run();

  // Named spans nest inside task spans, so utilization must not
  // double-count them.
  const auto util = tracer.utilization(topo.num_pes(), 8.0, 1);
  ASSERT_EQ(util.size(), 2u);
  ASSERT_EQ(util[0].size(), 1u);
  EXPECT_LE(util[0][0], 1.0);
}

// ---- exporters ---------------------------------------------------------

TEST(ObsExport, ChromeTraceIsWellFormedAndMatchesCounters) {
  const Csr csr = test_graph();
  const Topology topo{2, 2, 2};
  Registry registry(topo);
  Tracer tracer;
  Machine machine(topo);
  acic::runtime::attach_tracer(machine, tracer);

  acic::sssp::SolverOptions opts;
  opts.registry = &registry;
  const auto run =
      acic::sssp::run_solver("acic", machine, csr, 0, opts);

  // Registry message totals == the run's own network-metric counters
  // (both drain from Machine::send), the exactness the ISSUE requires.
  const std::uint64_t total_msgs =
      registry.total("net/messages_self") +
      registry.total("net/messages_intra_process") +
      registry.total("net/messages_intra_node") +
      registry.total("net/messages_inter_node");
  EXPECT_EQ(total_msgs, run.sssp.metrics.network_messages);

  // ACIC introspection streams were published: per-cycle thresholds and
  // the update histogram.
  const auto* t_tram = registry.find_series("acic/t_tram");
  ASSERT_NE(t_tram, nullptr);
  EXPECT_GE(t_tram->points.size(), 1u);
  const auto* hist = registry.find_histogram("acic/update_histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->samples.size(), 1u);

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(acic::obs::write_chrome_trace(path, topo, &tracer, &registry));
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());

  // Chrome trace-event envelope and the event kinds Perfetto needs.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // slices
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
  // One counter track per locality tier.
  EXPECT_NE(json.find("net/messages_intra_process"), std::string::npos);
  EXPECT_NE(json.find("net/messages_intra_node"), std::string::npos);
  EXPECT_NE(json.find("net/messages_inter_node"), std::string::npos);
  // Thread/process naming metadata.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Balanced braces/brackets — cheap structural well-formedness (the CI
  // workflow additionally runs a real JSON parse over this file).
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::remove(path.c_str());
}

TEST(ObsExport, TimeseriesCsvRoundTrips) {
  const Topology topo = Topology::tiny(2);
  Registry registry(topo);
  const CounterId id = registry.counter("csv/count", /*timed=*/true);
  registry.add(id, 0, 2, 5.0);
  registry.add(id, 1, 3, 9.0);
  registry.append(registry.series("csv/depth"), 1.0, 4.0);

  const std::string path = ::testing::TempDir() + "obs_series_test.csv";
  ASSERT_TRUE(acic::obs::write_timeseries_csv(path, registry));
  const std::string csv = slurp(path);
  EXPECT_NE(csv.find("kind,name,time_us,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,csv/count,"), std::string::npos);
  EXPECT_NE(csv.find("series,csv/depth,"), std::string::npos);
  // Final counter sample carries the exact total.
  EXPECT_NE(csv.find("counter,csv/count,9.000,5"), std::string::npos);
  std::remove(path.c_str());
}

// ---- server wiring -----------------------------------------------------

TEST(ObsServer, ServiceMetricsMatchRegistry) {
  const Csr csr = test_graph(8);
  const Topology topo{2, 2, 2};
  Registry registry(topo);
  Tracer tracer;
  tracer.set_capacity(512);
  Machine machine(topo);
  acic::runtime::attach_tracer(machine, tracer);
  const auto partition = acic::graph::Partition1D::block(
      csr.num_vertices(), machine.num_pes());

  acic::server::ServiceConfig config;
  config.cache_capacity = 16;
  config.registry = &registry;
  config.tracer = &tracer;
  QueryService service(machine, csr, partition, config);

  acic::server::WorkloadConfig wl;
  wl.seed = 11;
  wl.qps = 2000.0;
  wl.num_queries = 24;
  wl.source_universe = 4;  // small universe: guarantees cache hits
  service.submit(acic::server::generate_workload(wl, csr.num_vertices()));
  service.run();

  const auto summary = service.summary();
  EXPECT_EQ(registry.total("server/queries_submitted"), 24u);
  EXPECT_EQ(registry.total("server/completed"), summary.completed);
  EXPECT_EQ(registry.total("server/cache_hits"), summary.cache_hits);
  EXPECT_GT(summary.cache_hits, 0u);

  // The front-end recorded named spans through the capacity-bounded
  // tracer.
  bool saw_arrival = false;
  for (const auto& span : tracer.spans()) {
    if (span.kind == SpanKind::kNamed &&
        std::string(span.name) == "server/arrival") {
      saw_arrival = true;
    }
  }
  EXPECT_TRUE(saw_arrival || tracer.overflowed());
}

}  // namespace
