#include "src/baselines/delta_stepping_2d.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/baselines/sequential.hpp"
#include "src/runtime/collectives.hpp"
#include "src/runtime/speculation.hpp"
#include "src/sssp/update.hpp"
#include "src/util/assert.hpp"

namespace acic::baselines {

namespace {

using graph::Dist;
using graph::VertexId;
using runtime::Pe;
using runtime::PeId;
using runtime::ReduceOp;
using sssp::Update;

constexpr double kNoBucket = std::numeric_limits<double>::infinity();

enum Slot : std::size_t {
  kSent = 0,
  kRecv = 1,
  kBucketCount = 2,
  kMinNext = 3,
  kSettled = 4,
  kDirty = 5,
  kSlots = 6,
};

/// Which edges a frontier chunk should relax at the receiving cell.
enum class RelaxKind : std::uint8_t { kLightOnly, kHeavyOnly, kAll };

/// Owner-side vertex state: each cell owns exactly one vertex group.
struct PeState {
  VertexId first = 0;  // owned group range
  VertexId last = 0;
  std::vector<Dist> dist;
  std::vector<bool> queued;
  std::vector<bool> in_settled;
  std::vector<bool> dirty_flag;
  std::vector<std::vector<VertexId>> buckets;
  std::vector<VertexId> settled;
  std::vector<VertexId> dirty;

  std::uint64_t sent = 0;       // wire items (frontier + candidates)
  std::uint64_t recv = 0;
  std::uint64_t created = 0;    // edge relaxations performed
  std::uint64_t processed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t touched = 0;
  std::uint64_t settled_delta = 0;

  // Phase counters, kept per PE (under the parallel engine each node's
  // PEs run on their own shard) and folded into the result after run().
  std::uint64_t light_phases = 0;
  std::uint64_t heavy_phases = 0;
  std::uint64_t bf_sweeps = 0;

  DeltaCmd mode = DeltaCmd::kLight;
  std::uint64_t current_bucket = 0;
  bool done = false;
};

class Delta2DEngine : public runtime::Snapshotable {
 public:
  Delta2DEngine(runtime::Machine& machine, const graph::Csr& csr,
                const graph::Partition2D& partition, VertexId source,
                const DeltaConfig& config)
      : machine_(machine),
        csr_(csr),
        partition_(partition),
        source_(source),
        config_(config),
        delta_(config.delta > 0.0 ? config.delta : default_delta(csr)),
        controller_(config.hybrid_bellman_ford),
        pes_(machine.num_pes()) {
    ACIC_ASSERT_MSG(partition.num_cells() == machine.num_pes(),
                    "grid cells must equal worker PE count");
    ACIC_ASSERT(source < csr.num_vertices());

    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      PeState& state = pes_[p];
      const std::uint32_t group = partition_.group_owned_by(p);
      state.first = partition_.group_begin(group);
      state.last = partition_.group_end(group);
      const std::size_t n = state.last - state.first;
      state.dist.assign(n, graph::kInfDist);
      state.queued.assign(n, false);
      state.in_settled.assign(n, false);
      state.dirty_flag.assign(n, false);
    }

    build_reducer();

    machine_.add_snapshotable(this);

    const PeId owner = partition_.state_owner_of_vertex(source_);
    machine_.schedule_at(0.0, owner, [this](Pe& pe) {
      PeState& state = pes_[pe.id()];
      const VertexId local = source_ - state.first;
      state.dist[local] = 0.0;
      ++state.touched;
      state.queued[local] = true;
      place_in(state.buckets, 0, source_);
    });
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      machine_.schedule_at(0.0, p, [this](Pe& pe) {
        execute(pe, DeltaCmd::kLight, 0);
      });
    }
  }

  ~Delta2DEngine() override { machine_.remove_snapshotable(this); }

  // ---- optimistic-engine hooks (runtime::Snapshotable) ------------------
  // The 2-D engine declares speculation unsupported: a vertex's state
  // owner and its edge relaxers live in *different* grid cells (often
  // different simulated nodes), so a node-local snapshot cannot cover
  // the cross-cell candidate flow.  Registering the unsupported hook
  // downgrades the whole machine to the conservative schedule — safe by
  // construction — instead of silently speculating wrongly.
  bool speculation_supported() const override { return false; }
  std::size_t speculative_checkpoint(std::uint32_t) override { return 0; }
  void speculative_restore(std::uint32_t) override {}
  void speculative_commit(std::uint32_t) override {}

  DeltaRunResult run(runtime::SimTime time_limit_us) {
    const runtime::RunStats stats = machine_.run(time_limit_us);

    DeltaRunResult result;
    result.hit_time_limit = stats.hit_time_limit;
    result.barrier_rounds = reducer_->cycles_completed();
    result.buckets_processed = controller_.buckets_processed();
    result.switched_to_bf = controller_.switched_to_bf();

    result.sssp.dist.assign(csr_.num_vertices(), graph::kInfDist);
    for (const PeState& state : pes_) {
      std::copy(state.dist.begin(), state.dist.end(),
                result.sssp.dist.begin() + state.first);
      result.sssp.metrics.updates_created += state.created;
      result.sssp.metrics.updates_processed += state.processed;
      result.sssp.metrics.updates_rejected += state.rejected;
      result.sssp.metrics.vertices_touched += state.touched;
      result.light_phases += state.light_phases;
      result.heavy_phases += state.heavy_phases;
      result.bf_sweeps += state.bf_sweeps;
    }
    result.sssp.metrics.network_messages = stats.messages_sent;
    result.sssp.metrics.network_bytes = stats.bytes_sent;
    result.sssp.metrics.collective_cycles = reducer_->cycles_completed();
    result.sssp.metrics.sim_time_us = stats.end_time_us;

    result.pe_busy_us.resize(machine_.num_pes());
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      result.pe_busy_us[p] = machine_.pe_busy_us(p);
    }
    return result;
  }

 private:
  std::size_t bucket_of(Dist d) const {
    return static_cast<std::size_t>(d / delta_);
  }
  static void place_in(std::vector<std::vector<VertexId>>& buckets,
                       std::size_t b, VertexId v) {
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  }
  static std::size_t wire_bytes(std::size_t items) {
    return 32 + items * sssp::kUpdateWireBytes;
  }

  // ---- column broadcast of a frontier ------------------------------------

  /// Sends `frontier` from owner `pe` to every cell in its column (self
  /// included, locally) for relaxation of `kind` edges.
  void broadcast_frontier(Pe& pe, const std::vector<Update>& frontier,
                          RelaxKind kind) {
    if (frontier.empty()) return;
    PeState& state = pes_[pe.id()];
    const std::uint32_t my_col = partition_.col_of(pe.id());
    for (std::uint32_t i = 0; i < partition_.rows(); ++i) {
      const PeId target = partition_.cell(i, my_col);
      state.sent += frontier.size();
      if (target == pe.id()) {
        relax_frontier(pe, frontier, kind);
        continue;
      }
      pe.send(target, wire_bytes(frontier.size()),
              [this, frontier, kind](Pe& dst) {
                pes_[dst.id()].recv += frontier.size();
                relax_frontier(dst, frontier, kind);
              });
    }
    // Items handled locally count as received too (keeps sent == recv at
    // quiescence).
    state.recv += frontier.size();
  }

  /// Relaxes `frontier` against this cell's edge block; min-combines
  /// candidates per destination vertex and ships one message per
  /// destination owner along this row.
  void relax_frontier(Pe& pe, const std::vector<Update>& frontier,
                      RelaxKind kind) {
    PeState& state = pes_[pe.id()];
    // Candidates per destination owner cell, min-combined per vertex.
    std::map<PeId, std::map<VertexId, Dist>> combined;
    for (const Update& f : frontier) {
      for (const graph::Edge& e :
           partition_.cell_out_edges(pe.id(), f.vertex)) {
        const bool is_light = e.weight <= delta_;
        if (kind == RelaxKind::kLightOnly && !is_light) continue;
        if (kind == RelaxKind::kHeavyOnly && is_light) continue;
        pe.charge(config_.costs.edge_relax_us);
        ++state.created;
        const Dist candidate = f.dist + e.weight;
        const PeId owner = partition_.state_owner_of_vertex(e.dst);
        auto [it, inserted] = combined[owner].try_emplace(e.dst, candidate);
        if (!inserted) {
          // Min-combining eliminates one of the two candidates locally:
          // it is processed (and wasted) without ever travelling.
          ++state.processed;
          ++state.rejected;
          it->second = std::min(it->second, candidate);
        }
      }
    }
    for (const auto& [owner, candidates] : combined) {
      std::vector<Update> batch;
      batch.reserve(candidates.size());
      for (const auto& [v, d] : candidates) batch.push_back(Update{v, d});
      state.sent += batch.size();
      if (owner == pe.id()) {
        state.recv += batch.size();
        for (const Update& u : batch) apply(pe, u);
        continue;
      }
      pe.send(owner, wire_bytes(batch.size()),
              [this, batch = std::move(batch)](Pe& dst) {
                pes_[dst.id()].recv += batch.size();
                for (const Update& u : batch) apply(dst, u);
              });
    }
  }

  /// Owner-side application of a candidate distance.
  void apply(Pe& pe, const Update& u) {
    PeState& state = pes_[pe.id()];
    pe.charge(config_.costs.update_apply_us);
    ++state.processed;
    const VertexId local = u.vertex - state.first;
    ACIC_ASSERT(u.vertex >= state.first && u.vertex < state.last);
    if (u.dist >= state.dist[local]) {
      ++state.rejected;
      return;
    }
    if (state.dist[local] == graph::kInfDist) ++state.touched;
    state.dist[local] = u.dist;
    if (state.mode == DeltaCmd::kBellman) {
      if (!state.dirty_flag[local]) {
        state.dirty_flag[local] = true;
        state.dirty.push_back(u.vertex);
      }
      return;
    }
    state.queued[local] = true;
    pe.charge(config_.costs.pq_op_us);
    place_in(state.buckets, bucket_of(u.dist), u.vertex);
  }

  // ---- phase work ---------------------------------------------------------

  void do_light(Pe& pe, std::uint64_t b) {
    PeState& state = pes_[pe.id()];
    ++state.light_phases;
    std::vector<Update> frontier;
    if (b < state.buckets.size()) {
      std::vector<VertexId> entries;
      entries.swap(state.buckets[b]);
      for (const VertexId v : entries) {
        const VertexId local = v - state.first;
        if (!state.queued[local]) continue;
        if (bucket_of(state.dist[local]) != b) continue;  // stale entry
        state.queued[local] = false;
        if (!state.in_settled[local]) {
          state.in_settled[local] = true;
          state.settled.push_back(v);
          ++state.settled_delta;
        }
        frontier.push_back(Update{v, state.dist[local]});
      }
    }
    broadcast_frontier(pe, frontier, RelaxKind::kLightOnly);
  }

  void do_heavy(Pe& pe) {
    PeState& state = pes_[pe.id()];
    ++state.heavy_phases;
    std::vector<Update> frontier;
    frontier.reserve(state.settled.size());
    for (const VertexId v : state.settled) {
      const VertexId local = v - state.first;
      state.in_settled[local] = false;
      frontier.push_back(Update{v, state.dist[local]});
    }
    state.settled.clear();
    broadcast_frontier(pe, frontier, RelaxKind::kHeavyOnly);
  }

  void do_bellman(Pe& pe) {
    PeState& state = pes_[pe.id()];
    ++state.bf_sweeps;
    if (state.mode != DeltaCmd::kBellman) {
      state.mode = DeltaCmd::kBellman;
      for (auto& bucket : state.buckets) {
        for (const VertexId v : bucket) {
          const VertexId local = v - state.first;
          if (!state.queued[local]) continue;
          state.queued[local] = false;
          if (!state.dirty_flag[local]) {
            state.dirty_flag[local] = true;
            state.dirty.push_back(v);
          }
        }
        bucket.clear();
      }
      for (const VertexId v : state.settled) {
        const VertexId local = v - state.first;
        state.in_settled[local] = false;
        if (!state.dirty_flag[local]) {
          state.dirty_flag[local] = true;
          state.dirty.push_back(v);
        }
      }
      state.settled.clear();
    }
    std::vector<Update> frontier;
    std::vector<VertexId> sweep;
    sweep.swap(state.dirty);
    frontier.reserve(sweep.size());
    for (const VertexId v : sweep) {
      const VertexId local = v - state.first;
      state.dirty_flag[local] = false;
      frontier.push_back(Update{v, state.dist[local]});
    }
    broadcast_frontier(pe, frontier, RelaxKind::kAll);
  }

  // ---- barrier / controller -----------------------------------------------

  void execute(Pe& pe, DeltaCmd cmd, std::uint64_t bucket) {
    PeState& state = pes_[pe.id()];
    if (cmd == DeltaCmd::kLight || cmd == DeltaCmd::kHeavy) {
      state.mode = cmd;
      state.current_bucket = bucket;
    }
    switch (cmd) {
      case DeltaCmd::kLight:
        do_light(pe, bucket);
        break;
      case DeltaCmd::kHeavy:
        do_heavy(pe);
        break;
      case DeltaCmd::kBellman:
        do_bellman(pe);
        break;
      case DeltaCmd::kNoop:
        break;
      case DeltaCmd::kDone:
        state.done = true;
        return;
    }
    contribute(pe);
  }

  void contribute(Pe& pe) {
    PeState& state = pes_[pe.id()];
    std::vector<double> payload(kSlots, 0.0);
    payload[kSent] = static_cast<double>(state.sent);
    payload[kRecv] = static_cast<double>(state.recv);
    const std::uint64_t b = state.current_bucket;
    payload[kBucketCount] =
        (b < state.buckets.size())
            ? static_cast<double>(count_live(state, b))
            : 0.0;
    payload[kMinNext] = min_nonempty_bucket(state);
    payload[kSettled] = static_cast<double>(state.settled_delta);
    state.settled_delta = 0;
    payload[kDirty] = static_cast<double>(state.dirty.size());
    reducer_->contribute(pe, payload);
  }

  std::size_t count_live(const PeState& state, std::uint64_t b) const {
    std::size_t live = 0;
    for (const VertexId v : state.buckets[b]) {
      const VertexId local = v - state.first;
      if (state.queued[local] && bucket_of(state.dist[local]) == b) ++live;
    }
    return live;
  }

  double min_nonempty_bucket(const PeState& state) const {
    for (std::size_t b = 0; b < state.buckets.size(); ++b) {
      if (count_live(state, b) > 0) return static_cast<double>(b);
    }
    return kNoBucket;
  }

  void build_reducer() {
    std::vector<ReduceOp> ops(kSlots, ReduceOp::kSum);
    ops[kMinNext] = ReduceOp::kMin;
    reducer_ = std::make_unique<runtime::Reducer>(
        machine_, kSlots,
        [this](Pe&, std::uint64_t, const std::vector<double>& sum)
            -> std::optional<std::vector<double>> {
          return on_root(sum);
        },
        [this](Pe& pe, std::uint64_t, const std::vector<double>& payload) {
          on_broadcast(pe, payload);
        },
        /*fanout=*/4, std::move(ops));
  }

  std::optional<std::vector<double>> on_root(const std::vector<double>& sum) {
    const bool equal = sum[kSent] == sum[kRecv];
    const bool stable = equal && drained_armed_ && sum[kSent] == last_sent_;
    drained_armed_ = equal;
    last_sent_ = sum[kSent];
    pending_settled_ += sum[kSettled];

    if (!stable) {
      return std::vector<double>{
          static_cast<double>(static_cast<int>(DeltaCmd::kNoop)), 0.0};
    }

    DeltaController::Summary summary;
    summary.bucket_count = sum[kBucketCount];
    summary.has_next_bucket = sum[kMinNext] != kNoBucket;
    summary.min_next_bucket = summary.has_next_bucket ? sum[kMinNext] : 0.0;
    summary.newly_settled = pending_settled_;
    summary.dirty_count = sum[kDirty];
    pending_settled_ = 0.0;
    drained_armed_ = false;

    const DeltaController::Decision decision = controller_.decide(summary);
    return std::vector<double>{
        static_cast<double>(static_cast<int>(decision.cmd)),
        static_cast<double>(decision.bucket)};
  }

  void on_broadcast(Pe& pe, const std::vector<double>& payload) {
    const auto cmd = static_cast<DeltaCmd>(static_cast<int>(payload[0]));
    const auto bucket = static_cast<std::uint64_t>(payload[1]);
    if (cmd == DeltaCmd::kDone) {
      pes_[pe.id()].done = true;
      return;
    }
    if (cmd == DeltaCmd::kNoop) {
      const PeId id = pe.id();
      machine_.schedule_at(
          pe.now() + config_.barrier_interval_us, id,
          [this, bucket](Pe& next) { execute(next, DeltaCmd::kNoop, bucket); });
      return;
    }
    execute(pe, cmd, bucket);
  }

  runtime::Machine& machine_;
  const graph::Csr& csr_;
  const graph::Partition2D& partition_;
  VertexId source_;
  DeltaConfig config_;
  double delta_;
  DeltaController controller_;

  std::vector<PeState> pes_;
  std::unique_ptr<runtime::Reducer> reducer_;

  bool drained_armed_ = false;
  double last_sent_ = -1.0;
  double pending_settled_ = 0.0;
};

}  // namespace

DeltaRunResult delta_stepping_2d(runtime::Machine& machine,
                                 const graph::Csr& csr,
                                 const graph::Partition2D& partition,
                                 VertexId source, const DeltaConfig& config,
                                 runtime::SimTime time_limit_us) {
  Delta2DEngine engine(machine, csr, partition, source, config);
  return engine.run(time_limit_us);
}

}  // namespace acic::baselines
