#pragma once
// Sequential SSSP reference implementations: Dijkstra (label-setting,
// the ground truth for every test in this repository), Bellman-Ford
// (label-correcting, the conceptual ancestor of the asynchronous
// baseline), and sequential Δ-stepping (Meyer & Sanders 2003), which the
// distributed Δ-stepping baseline mirrors bucket-for-bucket.

#include <cstdint>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"

namespace acic::baselines {

struct SeqStats {
  /// Edge relaxations attempted (the sequential analogue of "updates").
  std::uint64_t relaxations = 0;
  /// Relaxations that improved a distance.
  std::uint64_t improvements = 0;
  /// Phases (Δ-stepping buckets or Bellman-Ford sweeps).
  std::uint64_t phases = 0;
};

/// Dijkstra with a binary heap; O((V + E) log V).
std::vector<graph::Dist> dijkstra(const graph::Csr& csr,
                                  graph::VertexId source,
                                  SeqStats* stats = nullptr);

/// Bellman-Ford with an early-exit sweep loop; O(V * E) worst case.
std::vector<graph::Dist> bellman_ford(const graph::Csr& csr,
                                      graph::VertexId source,
                                      SeqStats* stats = nullptr);

/// Sequential Δ-stepping.  `delta` of 0 selects the standard heuristic
/// delta = max_weight / average_degree (clamped to >= min positive
/// weight).
std::vector<graph::Dist> delta_stepping_seq(const graph::Csr& csr,
                                            graph::VertexId source,
                                            double delta = 0.0,
                                            SeqStats* stats = nullptr);

/// The heuristic default Δ used when callers pass delta = 0.
double default_delta(const graph::Csr& csr);

}  // namespace acic::baselines
