#pragma once
// K-level asynchronous SSSP (Harshvardhan, Fidel, Amato & Rauchwerger,
// PACT'14) — the compromise between bulk-synchronous Δ-stepping and fully
// asynchronous distributed control that the paper discusses.
//
// Execution proceeds in *supersteps*.  Within a superstep updates
// propagate asynchronously, but each carries a hop count; once a path has
// relaxed k edges since the superstep began, the target vertex is
// *deferred* — it keeps its improved distance but does not expand until
// the next superstep.  At each superstep boundary (a drained barrier) k
// adapts: it is doubled, halved, or kept constant based on how the
// number of vertices whose distances changed compares with the previous
// superstep.

#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/cost_model.hpp"
#include "src/sssp/result.hpp"
#include "src/tram/tram.hpp"

namespace acic::baselines {

struct KlaConfig {
  /// Initial asynchrony depth.
  std::uint32_t initial_k = 2;
  std::uint32_t min_k = 1;
  std::uint32_t max_k = 1u << 16;
  /// Adaptation thresholds: grow k when changed/prev_changed exceeds
  /// `grow_ratio`; shrink when below `shrink_ratio`.
  double grow_ratio = 1.2;
  double shrink_ratio = 0.5;
  tram::TramConfig tram;
  sssp::CostModel costs;
  runtime::SimTime barrier_interval_us = 20.0;
};

struct KlaRunResult {
  sssp::SsspResult sssp;
  std::uint64_t supersteps = 0;
  std::uint64_t final_k = 0;
  /// Largest k the adaptation reached during the run.
  std::uint64_t peak_k = 0;
  bool hit_time_limit = false;
  std::vector<runtime::SimTime> pe_busy_us;
};

KlaRunResult kla_sssp(runtime::Machine& machine, const graph::Csr& csr,
                      const graph::Partition1D& partition,
                      graph::VertexId source, const KlaConfig& config,
                      runtime::SimTime time_limit_us =
                          runtime::kNoTimeLimit);

}  // namespace acic::baselines
