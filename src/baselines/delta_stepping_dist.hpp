#pragma once
// Distributed bulk-synchronous Δ-stepping over the discrete-event
// runtime, with a 1-D block vertex partition.
//
// The schedule mirrors Meyer & Sanders' algorithm: for each distance
// bucket of width Δ, light edges (w <= Δ) are relaxed repeatedly until no
// vertex re-enters the bucket, then heavy edges of every vertex settled
// in the bucket are relaxed once; then the globally smallest non-empty
// bucket becomes current.  Every phase ends with a *drained barrier*: an
// allreduce loop that repeats until the cumulative sent/received
// relaxation counters are equal and stable, which is the distributed
// analogue of the shared-memory phase boundary and is exactly where the
// paper locates Δ-stepping's multi-node synchronization cost.
//
// With `hybrid_bellman_ford` the RIKEN/Chakaravarthy tail heuristic is
// enabled: once the per-bucket settled count passes its maximum the
// algorithm stops bucketing and finishes with Bellman-Ford sweeps.

#include "src/baselines/delta_common.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"

namespace acic::baselines {

DeltaRunResult delta_stepping_dist(
    runtime::Machine& machine, const graph::Csr& csr,
    const graph::Partition1D& partition, graph::VertexId source,
    const DeltaConfig& config,
    runtime::SimTime time_limit_us = runtime::kNoTimeLimit);

}  // namespace acic::baselines
