#include "src/baselines/delta_common.hpp"

namespace acic::baselines {

DeltaController::Decision DeltaController::decide(const Summary& summary) {
  switch (mode_) {
    case Mode::kLight:
      settled_this_bucket_ += summary.newly_settled;
      if (summary.bucket_count > 0.0) {
        // Vertices fell back into the current bucket: another light
        // subphase.
        return {DeltaCmd::kLight, current_bucket_};
      }
      mode_ = Mode::kHeavy;
      return {DeltaCmd::kHeavy, current_bucket_};

    case Mode::kHeavy: {
      ++buckets_processed_;
      // Hybrid heuristic: once the settled-per-bucket curve passes its
      // peak, the remaining work is the sparse tail — switch to
      // Bellman-Ford sweeps which need no bucket bookkeeping.
      if (hybrid_ && buckets_processed_ >= 2 &&
          settled_this_bucket_ < max_settled_per_bucket_ &&
          max_settled_per_bucket_ > 0.0) {
        switched_to_bf_ = true;
        mode_ = Mode::kBellman;
        return {DeltaCmd::kBellman, 0};
      }
      max_settled_per_bucket_ =
          std::max(max_settled_per_bucket_, settled_this_bucket_);
      settled_this_bucket_ = 0.0;
      if (!summary.has_next_bucket) {
        return {DeltaCmd::kDone, 0};
      }
      current_bucket_ = static_cast<std::uint64_t>(summary.min_next_bucket);
      mode_ = Mode::kLight;
      return {DeltaCmd::kLight, current_bucket_};
    }

    case Mode::kBellman:
      if (summary.dirty_count > 0.0) {
        return {DeltaCmd::kBellman, 0};
      }
      return {DeltaCmd::kDone, 0};
  }
  return {DeltaCmd::kDone, 0};
}

}  // namespace acic::baselines
