#include "src/baselines/kla.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/runtime/collectives.hpp"
#include "src/runtime/speculation.hpp"
#include "src/util/assert.hpp"
#include "src/util/prefetch.hpp"

namespace acic::baselines {

namespace {

using graph::Dist;
using graph::VertexId;
using runtime::Pe;
using runtime::PeId;

/// An update carrying its hop depth within the current superstep.
struct KlaUpdate {
  VertexId vertex = 0;
  Dist dist = 0.0;
  std::uint32_t hops = 0;
};

enum Slot : std::size_t {
  kSent = 0,
  kRecv = 1,
  kChanged = 2,
  kDeferred = 3,
  kSlots = 4,
};

enum class KlaCmd : int { kWork = 0, kNoop = 1, kDone = 2 };

struct PeState {
  VertexId first = 0;
  VertexId last = 0;
  std::vector<Dist> dist;
  std::vector<bool> deferred_flag;
  std::vector<VertexId> deferred;

  std::uint64_t sent = 0;
  std::uint64_t recv = 0;
  std::uint64_t changed_delta = 0;

  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t touched = 0;

  std::uint32_t k = 1;
  bool done = false;
};

class KlaEngine : public runtime::Snapshotable {
 public:
  KlaEngine(runtime::Machine& machine, const graph::Csr& csr,
            const graph::Partition1D& partition, VertexId source,
            const KlaConfig& config)
      : machine_(machine),
        csr_(csr),
        partition_(partition),
        source_(source),
        config_(config),
        k_(std::max(config.initial_k, config.min_k)),
        pes_(machine.num_pes()) {
    ACIC_ASSERT(partition.num_parts() == machine.num_pes());
    ACIC_ASSERT(source < csr.num_vertices());

    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      PeState& state = pes_[p];
      state.first = partition.begin(p);
      state.last = partition.end(p);
      const std::size_t n = state.last - state.first;
      state.dist.assign(n, graph::kInfDist);
      state.deferred_flag.assign(n, false);
      state.k = k_;
    }

    tram::TramConfig tram_config = config_.tram;
    tram_config.item_bytes = sizeof(KlaUpdate);
    tram_ = std::make_unique<UpdateTram>(machine_, tram_config,
                                         Deliver{this});

    build_reducer();

    spec_ckpt_.resize(machine_.topology().nodes);
    machine_.add_snapshotable(this);

    const PeId owner = partition_.owner(source_);
    machine_.schedule_at(0.0, owner, [this](Pe& pe) {
      PeState& state = pes_[pe.id()];
      const VertexId local = source_ - state.first;
      state.dist[local] = 0.0;
      ++state.touched;
      ++state.changed_delta;
      state.deferred_flag[local] = true;
      state.deferred.push_back(source_);
    });
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      machine_.schedule_at(0.0, p, [this](Pe& pe) {
        execute(pe, KlaCmd::kWork, k_);
      });
    }
  }

  ~KlaEngine() override { machine_.remove_snapshotable(this); }

  // ---- optimistic-engine hooks (runtime::Snapshotable) ------------------
  // Per-node snapshot: the node's PeStates (distances, deferred list,
  // counters) plus — on node 0, where the root PE runs — the drain
  // history and the adaptive-k controller scalars.  Tram and reducer
  // snapshot themselves.
  std::size_t speculative_checkpoint(std::uint32_t n) override {
    const runtime::Topology& topo = machine_.topology();
    NodeCkpt& ck = spec_ckpt_[n];
    ck.pes.clear();
    std::size_t bytes = 0;
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      if (topo.node_of(p) != n) continue;
      ck.pes.push_back(pes_[p]);
      bytes += sizeof(PeState) +
               pes_[p].dist.size() * (sizeof(Dist) + 1) +
               pes_[p].deferred.size() * sizeof(VertexId);
    }
    if (n == 0) {
      ck.k = k_;
      ck.drained_armed = drained_armed_;
      ck.last_sent = last_sent_;
      ck.pending_changed = pending_changed_;
      ck.prev_changed = prev_changed_;
      ck.supersteps = supersteps_;
      ck.peak_k = peak_k_;
    }
    bytes += tram_->speculative_checkpoint(n);
    bytes += reducer_->speculative_checkpoint(n);
    return bytes;
  }

  void speculative_restore(std::uint32_t n) override {
    const runtime::Topology& topo = machine_.topology();
    NodeCkpt& ck = spec_ckpt_[n];
    std::size_t i = 0;
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      if (topo.node_of(p) != n) continue;
      pes_[p] = ck.pes[i++];
    }
    ACIC_ASSERT(i == ck.pes.size());
    if (n == 0) {
      k_ = ck.k;
      drained_armed_ = ck.drained_armed;
      last_sent_ = ck.last_sent;
      pending_changed_ = ck.pending_changed;
      prev_changed_ = ck.prev_changed;
      supersteps_ = ck.supersteps;
      peak_k_ = ck.peak_k;
    }
    tram_->speculative_restore(n);
    reducer_->speculative_restore(n);
    ck.pes.clear();
  }

  void speculative_commit(std::uint32_t n) override {
    tram_->speculative_commit(n);
    reducer_->speculative_commit(n);
    spec_ckpt_[n].pes.clear();
  }

  KlaRunResult run(runtime::SimTime time_limit_us) {
    const runtime::RunStats stats = machine_.run(time_limit_us);

    KlaRunResult result;
    result.hit_time_limit = stats.hit_time_limit;
    result.supersteps = supersteps_;
    result.final_k = k_;
    result.peak_k = peak_k_;

    result.sssp.dist.assign(csr_.num_vertices(), graph::kInfDist);
    for (const PeState& state : pes_) {
      std::copy(state.dist.begin(), state.dist.end(),
                result.sssp.dist.begin() + state.first);
      result.sssp.metrics.updates_created += state.created;
      result.sssp.metrics.updates_processed += state.processed;
      result.sssp.metrics.updates_rejected += state.rejected;
      result.sssp.metrics.vertices_touched += state.touched;
    }
    result.sssp.metrics.network_messages = stats.messages_sent;
    result.sssp.metrics.network_bytes = stats.bytes_sent;
    result.sssp.metrics.collective_cycles = reducer_->cycles_completed();
    result.sssp.metrics.sim_time_us = stats.end_time_us;

    result.pe_busy_us.resize(machine_.num_pes());
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      result.pe_busy_us[p] = machine_.pe_busy_us(p);
    }
    return result;
  }

 private:
  /// Concrete delivery functor: inlined dispatch, derived targets (no
  /// per-entry target field in tram buffers) and PrefEdge-style
  /// lookahead — KLA expands on arrival while within the hop budget, so
  /// both the distance slot and the CSR offsets row are warmed.
  struct Deliver {
    KlaEngine* engine;
    void operator()(Pe& pe, const KlaUpdate& u) const {
      engine->on_deliver(pe, u);
    }
    PeId target_of(const KlaUpdate& u) const {
      return engine->partition_.owner(u.vertex);
    }
    void prefetch(Pe& pe, const KlaUpdate& u) const {
      const PeState& state = engine->pes_[pe.id()];
      util::prefetch_read(state.dist.data() + (u.vertex - state.first));
      util::prefetch_read(engine->csr_.offsets().data() + u.vertex);
    }
  };
  using UpdateTram = tram::Tram<KlaUpdate, Deliver>;

  void send_relax(Pe& pe, VertexId target, Dist d, std::uint32_t hops) {
    PeState& state = pes_[pe.id()];
    ++state.created;
    ++state.sent;
    pe.charge(config_.costs.edge_relax_us);
    tram_->insert(pe, partition_.owner(target),
                  KlaUpdate{target, d, hops});
  }

  void on_deliver(Pe& pe, const KlaUpdate& u) {
    PeState& state = pes_[pe.id()];
    ++state.recv;
    ++state.processed;
    pe.charge(config_.costs.update_apply_us);
    const VertexId local = u.vertex - state.first;
    ACIC_ASSERT(u.vertex >= state.first && u.vertex < state.last);

    if (u.dist >= state.dist[local]) {
      ++state.rejected;
      return;
    }
    if (state.dist[local] == graph::kInfDist) ++state.touched;
    state.dist[local] = u.dist;
    ++state.changed_delta;

    if (u.hops < state.k) {
      // Still within the asynchrony window: expand immediately.
      for (const graph::Neighbor& nb : csr_.out_neighbors(u.vertex)) {
        send_relax(pe, nb.dst, u.dist + nb.weight, u.hops + 1);
      }
      return;
    }
    // Depth budget exhausted: defer to the next superstep.
    if (!state.deferred_flag[local]) {
      state.deferred_flag[local] = true;
      state.deferred.push_back(u.vertex);
    }
  }

  void do_work(Pe& pe, std::uint32_t k) {
    PeState& state = pes_[pe.id()];
    state.k = k;
    std::vector<VertexId> frontier;
    frontier.swap(state.deferred);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      // Warm item i+N's CSR offsets and distance slot behind N rows of
      // relaxation work.
      if (i + util::kExpandPrefetchLookahead < frontier.size()) {
        const VertexId ahead =
            frontier[i + util::kExpandPrefetchLookahead];
        util::prefetch_read(csr_.offsets().data() + ahead);
        util::prefetch_read(state.dist.data() + (ahead - state.first));
      }
      const VertexId v = frontier[i];
      const VertexId local = v - state.first;
      state.deferred_flag[local] = false;
      for (const graph::Neighbor& nb : csr_.out_neighbors(v)) {
        send_relax(pe, nb.dst, state.dist[local] + nb.weight, 1);
      }
    }
  }

  void execute(Pe& pe, KlaCmd cmd, std::uint32_t k) {
    PeState& state = pes_[pe.id()];
    switch (cmd) {
      case KlaCmd::kWork:
        do_work(pe, k);
        break;
      case KlaCmd::kNoop:
        break;
      case KlaCmd::kDone:
        state.done = true;
        return;
    }
    tram_->flush_all(pe);
    contribute(pe);
  }

  void contribute(Pe& pe) {
    PeState& state = pes_[pe.id()];
    std::vector<double> payload(kSlots, 0.0);
    payload[kSent] = static_cast<double>(state.sent);
    payload[kRecv] = static_cast<double>(state.recv);
    payload[kChanged] = static_cast<double>(state.changed_delta);
    state.changed_delta = 0;
    payload[kDeferred] = static_cast<double>(state.deferred.size());
    reducer_->contribute(pe, payload);
  }

  void build_reducer() {
    reducer_ = std::make_unique<runtime::Reducer>(
        machine_, kSlots,
        [this](Pe&, std::uint64_t, const std::vector<double>& sum)
            -> std::optional<std::vector<double>> {
          return on_root(sum);
        },
        [this](Pe& pe, std::uint64_t, const std::vector<double>& payload) {
          on_broadcast(pe, payload);
        });
  }

  std::optional<std::vector<double>> on_root(const std::vector<double>& sum) {
    const bool equal = sum[kSent] == sum[kRecv];
    const bool stable = equal && drained_armed_ && sum[kSent] == last_sent_;
    drained_armed_ = equal;
    last_sent_ = sum[kSent];
    pending_changed_ += sum[kChanged];

    if (!stable) {
      return std::vector<double>{
          static_cast<double>(static_cast<int>(KlaCmd::kNoop)),
          static_cast<double>(k_)};
    }
    drained_armed_ = false;

    if (sum[kDeferred] == 0.0) {
      return std::vector<double>{
          static_cast<double>(static_cast<int>(KlaCmd::kDone)),
          static_cast<double>(k_)};
    }

    // Adapt k on the changed-vertices trend (double / halve / keep).
    const double changed = pending_changed_;
    pending_changed_ = 0.0;
    if (prev_changed_ > 0.0) {
      const double ratio = changed / prev_changed_;
      if (ratio >= config_.grow_ratio) {
        k_ = std::min(config_.max_k, k_ * 2);
      } else if (ratio <= config_.shrink_ratio) {
        k_ = std::max(config_.min_k, k_ / 2);
      }
    }
    peak_k_ = std::max<std::uint64_t>(peak_k_, k_);
    prev_changed_ = changed;
    ++supersteps_;
    return std::vector<double>{
        static_cast<double>(static_cast<int>(KlaCmd::kWork)),
        static_cast<double>(k_)};
  }

  void on_broadcast(Pe& pe, const std::vector<double>& payload) {
    const auto cmd = static_cast<KlaCmd>(static_cast<int>(payload[0]));
    const auto k = static_cast<std::uint32_t>(payload[1]);
    if (cmd == KlaCmd::kDone) {
      pes_[pe.id()].done = true;
      return;
    }
    if (cmd == KlaCmd::kNoop) {
      const PeId id = pe.id();
      machine_.schedule_at(pe.now() + config_.barrier_interval_us, id,
                           [this, k](Pe& next) {
                             execute(next, KlaCmd::kNoop, k);
                           });
      return;
    }
    execute(pe, cmd, k);
  }

  runtime::Machine& machine_;
  const graph::Csr& csr_;
  const graph::Partition1D& partition_;
  VertexId source_;
  KlaConfig config_;
  std::uint32_t k_;

  std::vector<PeState> pes_;
  std::unique_ptr<UpdateTram> tram_;
  std::unique_ptr<runtime::Reducer> reducer_;

  bool drained_armed_ = false;
  double last_sent_ = -1.0;
  double pending_changed_ = 0.0;
  double prev_changed_ = 0.0;
  std::uint64_t supersteps_ = 0;
  std::uint64_t peak_k_ = 0;

  /// Optimistic-engine snapshot shard, one per simulated node.
  struct alignas(64) NodeCkpt {
    std::vector<PeState> pes;  // the node's PEs, ascending PeId
    // Root-side state, meaningful on node 0 only.
    std::uint32_t k = 1;
    bool drained_armed = false;
    double last_sent = -1.0;
    double pending_changed = 0.0;
    double prev_changed = 0.0;
    std::uint64_t supersteps = 0;
    std::uint64_t peak_k = 0;
  };
  std::vector<NodeCkpt> spec_ckpt_;
};

}  // namespace

KlaRunResult kla_sssp(runtime::Machine& machine, const graph::Csr& csr,
                      const graph::Partition1D& partition, VertexId source,
                      const KlaConfig& config,
                      runtime::SimTime time_limit_us) {
  KlaEngine engine(machine, csr, partition, source, config);
  return engine.run(time_limit_us);
}

}  // namespace acic::baselines
