#include "src/baselines/sequential.hpp"

#include <algorithm>
#include <queue>

#include "src/util/assert.hpp"

namespace acic::baselines {

using graph::Dist;
using graph::VertexId;

std::vector<Dist> dijkstra(const graph::Csr& csr, VertexId source,
                           SeqStats* stats) {
  ACIC_ASSERT(source < csr.num_vertices());
  std::vector<Dist> dist(csr.num_vertices(), graph::kInfDist);
  dist[source] = 0.0;

  using Entry = std::pair<Dist, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;  // stale entry
    for (const graph::Neighbor& nb : csr.out_neighbors(v)) {
      if (stats != nullptr) ++stats->relaxations;
      const Dist candidate = d + nb.weight;
      if (candidate < dist[nb.dst]) {
        if (stats != nullptr) ++stats->improvements;
        dist[nb.dst] = candidate;
        heap.emplace(candidate, nb.dst);
      }
    }
  }
  return dist;
}

std::vector<Dist> bellman_ford(const graph::Csr& csr, VertexId source,
                               SeqStats* stats) {
  ACIC_ASSERT(source < csr.num_vertices());
  const VertexId n = csr.num_vertices();
  std::vector<Dist> dist(n, graph::kInfDist);
  dist[source] = 0.0;

  // Standard |V|-1 sweeps with early exit when a sweep changes nothing.
  for (VertexId sweep = 0; sweep + 1 < std::max<VertexId>(n, 2); ++sweep) {
    bool changed = false;
    if (stats != nullptr) ++stats->phases;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] == graph::kInfDist) continue;
      for (const graph::Neighbor& nb : csr.out_neighbors(v)) {
        if (stats != nullptr) ++stats->relaxations;
        const Dist candidate = dist[v] + nb.weight;
        if (candidate < dist[nb.dst]) {
          if (stats != nullptr) ++stats->improvements;
          dist[nb.dst] = candidate;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

double default_delta(const graph::Csr& csr) {
  double max_weight = 0.0;
  double min_weight = graph::kInfDist;
  for (const graph::Neighbor& nb : csr.neighbors()) {
    max_weight = std::max(max_weight, nb.weight);
    if (nb.weight > 0.0) min_weight = std::min(min_weight, nb.weight);
  }
  if (csr.num_edges() == 0 || max_weight == 0.0) return 1.0;
  const double avg_degree = static_cast<double>(csr.num_edges()) /
                            static_cast<double>(csr.num_vertices());
  // Meyer & Sanders suggest Δ ≈ Θ(max_weight / degree); clamp below by
  // the smallest weight so light-edge phases are meaningful.
  return std::max(max_weight / std::max(avg_degree, 1.0),
                  std::min(min_weight, max_weight));
}

std::vector<Dist> delta_stepping_seq(const graph::Csr& csr, VertexId source,
                                     double delta, SeqStats* stats) {
  ACIC_ASSERT(source < csr.num_vertices());
  if (delta <= 0.0) delta = default_delta(csr);
  const VertexId n = csr.num_vertices();
  std::vector<Dist> dist(n, graph::kInfDist);
  dist[source] = 0.0;

  // Buckets of width delta; bucket index of a distance is d / delta.
  std::vector<std::vector<VertexId>> buckets(1);
  auto bucket_of = [&](Dist d) {
    return static_cast<std::size_t>(d / delta);
  };
  auto place = [&](VertexId v, Dist d) {
    const std::size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };
  place(source, 0.0);

  auto relax = [&](VertexId w, Dist candidate) {
    if (stats != nullptr) ++stats->relaxations;
    if (candidate < dist[w]) {
      if (stats != nullptr) ++stats->improvements;
      dist[w] = candidate;
      place(w, candidate);
    }
  };

  for (std::size_t b = 0; b < buckets.size(); ++b) {
    // Light-edge phases: repeatedly settle vertices that fall back into
    // the current bucket.
    std::vector<VertexId> settled;
    while (!buckets[b].empty()) {
      if (stats != nullptr) ++stats->phases;
      std::vector<VertexId> frontier;
      frontier.swap(buckets[b]);
      for (const VertexId v : frontier) {
        if (bucket_of(dist[v]) != b) continue;  // stale entry
        settled.push_back(v);
        for (const graph::Neighbor& nb : csr.out_neighbors(v)) {
          if (nb.weight <= delta) relax(nb.dst, dist[v] + nb.weight);
        }
      }
    }
    // Heavy edges once per bucket, from every vertex settled in it.
    std::sort(settled.begin(), settled.end());
    settled.erase(std::unique(settled.begin(), settled.end()),
                  settled.end());
    for (const VertexId v : settled) {
      if (bucket_of(dist[v]) != b) continue;
      for (const graph::Neighbor& nb : csr.out_neighbors(v)) {
        if (nb.weight > delta) relax(nb.dst, dist[v] + nb.weight);
      }
    }
  }
  return dist;
}

}  // namespace acic::baselines
