#pragma once
// Distributed control (Zalewski, Kanewala, Firoz & Lumsdaine, IA3@SC'14):
// the fully asynchronous SSSP the paper positions itself against.
//
// Updates (v, d) are sent as soon as they are created — there are no
// thresholds, holds, or global view of the distance distribution.  Each
// PE orders the updates it has accepted in a local min-priority queue and
// expands them when idle (priority scheduling without synchronization).
// Termination is detected with the counter-reduction scheme (created ==
// processed, stable across two consecutive reductions).
//
// With `use_priority = false` this degrades to the paper's §II.A
// baseline asynchronous algorithm (chaotic relaxation): accepted updates
// expand immediately on arrival, maximizing speculative wasted work.

#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/cost_model.hpp"
#include "src/sssp/result.hpp"
#include "src/tram/tram.hpp"

namespace acic::baselines {

struct DistributedControlConfig {
  /// Order accepted updates in a per-PE priority queue (the DC paper's
  /// key idea); false gives the unordered §II.A baseline.
  bool use_priority = true;
  tram::TramConfig tram;
  sssp::CostModel costs;
  /// Spacing of the termination-detection reduction cycles (each of
  /// which also flushes the aggregation buffers).
  runtime::SimTime detector_interval_us = 40.0;
  std::size_t pq_drain_batch = 32;
};

struct DistributedControlRunResult {
  sssp::SsspResult sssp;
  std::uint64_t detector_cycles = 0;
  bool hit_time_limit = false;
  std::vector<runtime::SimTime> pe_busy_us;
};

DistributedControlRunResult distributed_control_sssp(
    runtime::Machine& machine, const graph::Csr& csr,
    const graph::Partition1D& partition, graph::VertexId source,
    const DistributedControlConfig& config,
    runtime::SimTime time_limit_us = runtime::kNoTimeLimit);

}  // namespace acic::baselines
