#include "src/baselines/delta_stepping_dist.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/baselines/sequential.hpp"
#include "src/graph/ooc_prefetch.hpp"
#include "src/runtime/collectives.hpp"
#include "src/runtime/speculation.hpp"
#include "src/sssp/update.hpp"
#include "src/tram/tram.hpp"
#include "src/util/assert.hpp"
#include "src/util/prefetch.hpp"

namespace acic::baselines {

namespace {

using graph::Dist;
using graph::VertexId;
using runtime::Pe;
using runtime::PeId;
using runtime::ReduceOp;
using sssp::Update;

constexpr double kNoBucket = std::numeric_limits<double>::infinity();

// Barrier payload layout.
enum Slot : std::size_t {
  kSent = 0,        // cumulative relaxations sent (SUM)
  kRecv = 1,        // cumulative relaxations received (SUM)
  kBucketCount = 2, // vertices in the current bucket (SUM)
  kMinNext = 3,     // smallest non-empty bucket index (MIN)
  kSettled = 4,     // vertices settled since last contribution (SUM)
  kDirty = 5,       // pending Bellman-Ford vertices (SUM)
  kSlots = 6,
};

struct PeState {
  VertexId first = 0;
  VertexId last = 0;
  std::vector<Dist> dist;
  /// queued[v - first]: v currently sits in some bucket list.
  std::vector<bool> queued;
  /// in_settled[v - first]: v already recorded in `settled` this bucket.
  std::vector<bool> in_settled;
  std::vector<bool> dirty_flag;

  std::vector<std::vector<VertexId>> buckets;
  std::vector<VertexId> settled;  // R set for the heavy phase
  std::vector<VertexId> dirty;    // Bellman-Ford work list

  std::uint64_t sent = 0;
  std::uint64_t recv = 0;
  std::uint64_t rejected = 0;
  std::uint64_t touched = 0;
  std::uint64_t settled_delta = 0;

  // Phase counters, kept per PE (under the parallel engine each node's
  // PEs run on their own shard) and folded into the result after run().
  std::uint64_t light_phases = 0;
  std::uint64_t heavy_phases = 0;
  std::uint64_t bf_sweeps = 0;

  DeltaCmd mode = DeltaCmd::kLight;
  std::uint64_t current_bucket = 0;
  bool done = false;
};

class DeltaEngine : public runtime::Snapshotable {
 public:
  DeltaEngine(runtime::Machine& machine, const graph::Csr& csr,
              const graph::Partition1D& partition, VertexId source,
              const DeltaConfig& config)
      : machine_(machine),
        csr_(csr),
        partition_(partition),
        source_(source),
        config_(config),
        delta_(config.delta > 0.0 ? config.delta : default_delta(csr)),
        controller_(config.hybrid_bellman_ford),
        pes_(machine.num_pes()) {
    ACIC_ASSERT(partition.num_parts() == machine.num_pes());
    ACIC_ASSERT(source < csr.num_vertices());

    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      PeState& state = pes_[p];
      state.first = partition.begin(p);
      state.last = partition.end(p);
      const std::size_t n = state.last - state.first;
      state.dist.assign(n, graph::kInfDist);
      state.queued.assign(n, false);
      state.in_settled.assign(n, false);
      state.dirty_flag.assign(n, false);
    }

    tram_ = std::make_unique<UpdateTram>(machine_, config_.tram,
                                         Deliver{this});

    build_reducer();

    spec_ckpt_.resize(machine_.topology().nodes);
    machine_.add_snapshotable(this);

    // Seed: the source at distance 0 sits in bucket 0 at its owner.
    const PeId owner = partition_.owner(source_);
    machine_.schedule_at(0.0, owner, [this](Pe& pe) {
      PeState& state = pes_[pe.id()];
      const VertexId local = source_ - state.first;
      state.dist[local] = 0.0;
      ++state.touched;
      state.queued[local] = true;
      place_in_bucket(state, source_, 0.0);
    });

    // First superstep: every PE runs the light phase of bucket 0.
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      machine_.schedule_at(0.0, p, [this](Pe& pe) {
        execute(pe, DeltaCmd::kLight, 0);
      });
    }
  }

  ~DeltaEngine() override { machine_.remove_snapshotable(this); }

  // ---- optimistic-engine hooks (runtime::Snapshotable) ------------------
  // Per-node snapshot: the node's PeStates (distances, bucket lists,
  // flags, counters) plus — on node 0, where the root PE runs — the
  // drain history and the schedule controller.  Tram and reducer
  // snapshot themselves.
  std::size_t speculative_checkpoint(std::uint32_t n) override {
    const runtime::Topology& topo = machine_.topology();
    NodeCkpt& ck = spec_ckpt_[n];
    ck.pes.clear();
    std::size_t bytes = 0;
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      if (topo.node_of(p) != n) continue;
      ck.pes.push_back(pes_[p]);
      // Estimate: distances + three bit-flags (~1 byte) per vertex, plus
      // the work lists.
      bytes += sizeof(PeState) +
               pes_[p].dist.size() * (sizeof(Dist) + 1) +
               (pes_[p].settled.size() + pes_[p].dirty.size()) *
                   sizeof(VertexId);
      for (const auto& bucket : pes_[p].buckets) {
        bytes += bucket.size() * sizeof(VertexId);
      }
    }
    if (n == 0) {
      ck.drained_armed = drained_armed_;
      ck.last_sent = last_sent_;
      ck.pending_settled = pending_settled_;
      ck.controller = controller_;
    }
    bytes += tram_->speculative_checkpoint(n);
    bytes += reducer_->speculative_checkpoint(n);
    return bytes;
  }

  void speculative_restore(std::uint32_t n) override {
    const runtime::Topology& topo = machine_.topology();
    NodeCkpt& ck = spec_ckpt_[n];
    std::size_t i = 0;
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      if (topo.node_of(p) != n) continue;
      pes_[p] = ck.pes[i++];
    }
    ACIC_ASSERT(i == ck.pes.size());
    if (n == 0) {
      drained_armed_ = ck.drained_armed;
      last_sent_ = ck.last_sent;
      pending_settled_ = ck.pending_settled;
      controller_ = ck.controller;
    }
    tram_->speculative_restore(n);
    reducer_->speculative_restore(n);
    ck.pes.clear();
  }

  void speculative_commit(std::uint32_t n) override {
    tram_->speculative_commit(n);
    reducer_->speculative_commit(n);
    spec_ckpt_[n].pes.clear();
  }

  DeltaRunResult run(runtime::SimTime time_limit_us) {
    const runtime::RunStats stats = machine_.run(time_limit_us);

    DeltaRunResult result;
    result.hit_time_limit = stats.hit_time_limit;
    result.barrier_rounds = reducer_->cycles_completed();
    result.buckets_processed = controller_.buckets_processed();
    result.switched_to_bf = controller_.switched_to_bf();

    result.sssp.dist.assign(csr_.num_vertices(), graph::kInfDist);
    for (const PeState& state : pes_) {
      std::copy(state.dist.begin(), state.dist.end(),
                result.sssp.dist.begin() + state.first);
      result.sssp.metrics.updates_created += state.sent;
      result.sssp.metrics.updates_processed += state.recv;
      result.sssp.metrics.updates_rejected += state.rejected;
      result.sssp.metrics.vertices_touched += state.touched;
      result.light_phases += state.light_phases;
      result.heavy_phases += state.heavy_phases;
      result.bf_sweeps += state.bf_sweeps;
    }
    result.sssp.metrics.network_messages = stats.messages_sent;
    result.sssp.metrics.network_bytes = stats.bytes_sent;
    result.sssp.metrics.collective_cycles = reducer_->cycles_completed();
    result.sssp.metrics.sim_time_us = stats.end_time_us;

    result.pe_busy_us.resize(machine_.num_pes());
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      result.pe_busy_us[p] = machine_.pe_busy_us(p);
    }
    return result;
  }

 private:
  /// Concrete delivery functor (no std::function type erasure): the tram
  /// inlines on_deliver, derives entry targets (16-byte buffer entries)
  /// and prefetches the distance slot a few items ahead of dispatch.
  struct Deliver {
    DeltaEngine* engine;
    void operator()(Pe& pe, const Update& u) const {
      engine->on_deliver(pe, u);
    }
    PeId target_of(const Update& u) const {
      return engine->partition_.owner(u.vertex);
    }
    void prefetch(Pe& pe, const Update& u) const {
      const PeState& state = engine->pes_[pe.id()];
      util::prefetch_read(state.dist.data() + (u.vertex - state.first));
    }
  };
  using UpdateTram = tram::Tram<Update, Deliver>;

  std::size_t bucket_of(Dist d) const {
    return static_cast<std::size_t>(d / delta_);
  }

  static void place_in(std::vector<std::vector<VertexId>>& buckets,
                       std::size_t b, VertexId v) {
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  }
  void place_in_bucket(PeState& state, VertexId v, Dist d) {
    place_in(state.buckets, bucket_of(d), v);
  }

  // ---- relaxation traffic ----------------------------------------------

  void send_relax(Pe& pe, VertexId target, Dist candidate) {
    PeState& state = pes_[pe.id()];
    ++state.sent;
    pe.charge(config_.costs.edge_relax_us);
    tram_->insert(pe, partition_.owner(target), Update{target, candidate});
  }

  void on_deliver(Pe& pe, const Update& u) {
    PeState& state = pes_[pe.id()];
    ++state.recv;
    pe.charge(config_.costs.update_apply_us);
    const VertexId local = u.vertex - state.first;
    ACIC_ASSERT(u.vertex >= state.first && u.vertex < state.last);

    if (u.dist >= state.dist[local]) {
      ++state.rejected;
      return;
    }
    if (state.dist[local] == graph::kInfDist) ++state.touched;
    state.dist[local] = u.dist;

    if (state.mode == DeltaCmd::kBellman) {
      if (!state.dirty_flag[local]) {
        state.dirty_flag[local] = true;
        state.dirty.push_back(u.vertex);
        feed_frontier(u.vertex);
      }
      return;
    }
    // Bucketed modes: push an entry at the vertex's new bucket on every
    // improvement.  Invariant: while queued[v] is set, at least one list
    // entry for v exists in bucket_of(dist[v]); entries left behind in
    // higher buckets are recognized as stale at pop time and skipped.
    state.queued[local] = true;
    pe.charge(config_.costs.pq_op_us);
    place_in_bucket(state, u.vertex, u.dist);
    // Peek point for the out-of-core page prefetcher: this row is walked
    // in an upcoming light/heavy phase (host side, zero simulated cost).
    feed_frontier(u.vertex);
  }

  void feed_frontier(VertexId v) {
    if (config_.frontier_feed != nullptr) {
      config_.frontier_feed->try_publish(v);
    }
  }

  /// Worklist lookahead for the phase loops below: each iteration walks
  /// a whole adjacency row, so warming item i+N's CSR offsets and
  /// distance slot overlaps their misses with N rows of relaxation work.
  void prefetch_frontier(const PeState& state,
                         const std::vector<VertexId>& list,
                         std::size_t i) const {
    if (i + util::kExpandPrefetchLookahead < list.size()) {
      const VertexId ahead = list[i + util::kExpandPrefetchLookahead];
      util::prefetch_read(csr_.offsets().data() + ahead);
      util::prefetch_read(state.dist.data() + (ahead - state.first));
    }
  }

  // ---- phase work --------------------------------------------------------

  /// Light-edge subphase of bucket `b`: drain the local bucket list,
  /// relaxing light out-edges of every vertex that truly belongs to `b`.
  void do_light(Pe& pe, std::uint64_t b) {
    PeState& state = pes_[pe.id()];
    ++state.light_phases;
    if (b >= state.buckets.size()) return;
    std::vector<VertexId> frontier;
    frontier.swap(state.buckets[b]);
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      prefetch_frontier(state, frontier, i);
      const VertexId v = frontier[i];
      const VertexId local = v - state.first;
      if (!state.queued[local]) continue;  // already processed
      const std::size_t actual = bucket_of(state.dist[local]);
      // Stale entry: the vertex was improved into a different bucket,
      // where a fresher entry already exists (see the queue invariant in
      // on_deliver).
      if (actual != b) continue;
      state.queued[local] = false;
      if (!state.in_settled[local]) {
        state.in_settled[local] = true;
        state.settled.push_back(v);
        ++state.settled_delta;
      }
      for (const graph::Neighbor& nb : csr_.out_neighbors(v)) {
        if (nb.weight <= delta_) {
          send_relax(pe, nb.dst, state.dist[local] + nb.weight);
        }
      }
    }
  }

  /// Heavy-edge phase: relax heavy out-edges of every vertex settled in
  /// the current bucket, then reset the settled set.
  void do_heavy(Pe& pe) {
    PeState& state = pes_[pe.id()];
    ++state.heavy_phases;
    for (std::size_t i = 0; i < state.settled.size(); ++i) {
      prefetch_frontier(state, state.settled, i);
      const VertexId v = state.settled[i];
      const VertexId local = v - state.first;
      state.in_settled[local] = false;
      for (const graph::Neighbor& nb : csr_.out_neighbors(v)) {
        if (nb.weight > delta_) {
          send_relax(pe, nb.dst, state.dist[local] + nb.weight);
        }
      }
    }
    state.settled.clear();
  }

  /// Bellman-Ford sweep (hybrid tail mode): relax all out-edges of every
  /// dirty vertex.  On the first sweep, migrate any still-bucketed
  /// vertices into the dirty list.
  void do_bellman(Pe& pe) {
    PeState& state = pes_[pe.id()];
    ++state.bf_sweeps;
    if (state.mode != DeltaCmd::kBellman) {
      state.mode = DeltaCmd::kBellman;
      for (auto& bucket : state.buckets) {
        for (const VertexId v : bucket) {
          const VertexId local = v - state.first;
          if (!state.queued[local]) continue;
          state.queued[local] = false;
          if (!state.dirty_flag[local]) {
            state.dirty_flag[local] = true;
            state.dirty.push_back(v);
          }
        }
        bucket.clear();
      }
      // Settled vertices from the interrupted bucket still owe their
      // heavy-edge relaxations; fold them into the sweep as well.
      for (const VertexId v : state.settled) {
        const VertexId local = v - state.first;
        state.in_settled[local] = false;
        if (!state.dirty_flag[local]) {
          state.dirty_flag[local] = true;
          state.dirty.push_back(v);
        }
      }
      state.settled.clear();
    }
    std::vector<VertexId> sweep;
    sweep.swap(state.dirty);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      prefetch_frontier(state, sweep, i);
      const VertexId v = sweep[i];
      const VertexId local = v - state.first;
      state.dirty_flag[local] = false;
      for (const graph::Neighbor& nb : csr_.out_neighbors(v)) {
        send_relax(pe, nb.dst, state.dist[local] + nb.weight);
      }
    }
  }

  // ---- barrier / controller ----------------------------------------------

  void execute(Pe& pe, DeltaCmd cmd, std::uint64_t bucket) {
    PeState& state = pes_[pe.id()];
    if (cmd == DeltaCmd::kLight || cmd == DeltaCmd::kHeavy) {
      state.mode = cmd;
      state.current_bucket = bucket;
    }
    switch (cmd) {
      case DeltaCmd::kLight:
        do_light(pe, bucket);
        break;
      case DeltaCmd::kHeavy:
        do_heavy(pe);
        break;
      case DeltaCmd::kBellman:
        do_bellman(pe);
        break;
      case DeltaCmd::kNoop:
        break;
      case DeltaCmd::kDone:
        state.done = true;
        return;
    }
    tram_->flush_all(pe);
    contribute(pe);
  }

  void contribute(Pe& pe) {
    PeState& state = pes_[pe.id()];
    std::vector<double> payload(kSlots, 0.0);
    payload[kSent] = static_cast<double>(state.sent);
    payload[kRecv] = static_cast<double>(state.recv);
    const std::uint64_t b = state.current_bucket;
    payload[kBucketCount] =
        (b < state.buckets.size())
            ? static_cast<double>(count_live(state, b))
            : 0.0;
    payload[kMinNext] = min_nonempty_bucket(state);
    payload[kSettled] = static_cast<double>(state.settled_delta);
    state.settled_delta = 0;
    payload[kDirty] = static_cast<double>(state.dirty.size());
    reducer_->contribute(pe, payload);
  }

  /// Live entries in bucket b: queued vertices whose distance still maps
  /// to b (duplicates possible; they only cost a harmless extra
  /// subphase).
  std::size_t count_live(const PeState& state, std::uint64_t b) const {
    std::size_t live = 0;
    for (const VertexId v : state.buckets[b]) {
      const VertexId local = v - state.first;
      if (state.queued[local] && bucket_of(state.dist[local]) == b) ++live;
    }
    return live;
  }

  /// Smallest bucket holding a live entry.  The queue invariant (an entry
  /// always exists at a queued vertex's actual bucket) makes the first
  /// live hit the true minimum.
  double min_nonempty_bucket(const PeState& state) const {
    for (std::size_t b = 0; b < state.buckets.size(); ++b) {
      if (count_live(state, b) > 0) return static_cast<double>(b);
    }
    return kNoBucket;
  }

  void build_reducer() {
    std::vector<ReduceOp> ops(kSlots, ReduceOp::kSum);
    ops[kMinNext] = ReduceOp::kMin;
    reducer_ = std::make_unique<runtime::Reducer>(
        machine_, kSlots,
        [this](Pe&, std::uint64_t, const std::vector<double>& sum)
            -> std::optional<std::vector<double>> {
          return on_root(sum);
        },
        [this](Pe& pe, std::uint64_t, const std::vector<double>& payload) {
          on_broadcast(pe, payload);
        },
        /*fanout=*/4, std::move(ops));
  }

  /// Root: require a drained barrier (sent == recv, stable across two
  /// rounds) before consulting the schedule controller.
  std::optional<std::vector<double>> on_root(const std::vector<double>& sum) {
    const bool equal = sum[kSent] == sum[kRecv];
    const bool stable = equal && drained_armed_ &&
                        sum[kSent] == last_sent_;
    drained_armed_ = equal;
    last_sent_ = sum[kSent];
    pending_settled_ += sum[kSettled];

    if (!stable) {
      return std::vector<double>{
          static_cast<double>(static_cast<int>(DeltaCmd::kNoop)), 0.0};
    }

    DeltaController::Summary summary;
    summary.bucket_count = sum[kBucketCount];
    summary.has_next_bucket = sum[kMinNext] != kNoBucket;
    summary.min_next_bucket =
        summary.has_next_bucket ? sum[kMinNext] : 0.0;
    summary.newly_settled = pending_settled_;
    summary.dirty_count = sum[kDirty];
    pending_settled_ = 0.0;
    drained_armed_ = false;  // next superstep needs a fresh drain

    const DeltaController::Decision decision = controller_.decide(summary);
    return std::vector<double>{
        static_cast<double>(static_cast<int>(decision.cmd)),
        static_cast<double>(decision.bucket)};
  }

  void on_broadcast(Pe& pe, const std::vector<double>& payload) {
    const auto cmd = static_cast<DeltaCmd>(static_cast<int>(payload[0]));
    const auto bucket = static_cast<std::uint64_t>(payload[1]);
    if (cmd == DeltaCmd::kDone) {
      pes_[pe.id()].done = true;
      return;
    }
    if (cmd == DeltaCmd::kNoop) {
      // Drain round: wait a beat for in-flight messages, then re-report.
      const PeId id = pe.id();
      machine_.schedule_at(
          pe.now() + config_.barrier_interval_us, id,
          [this, bucket](Pe& next) { execute(next, DeltaCmd::kNoop, bucket); });
      return;
    }
    execute(pe, cmd, bucket);
  }

  runtime::Machine& machine_;
  const graph::Csr& csr_;
  const graph::Partition1D& partition_;
  VertexId source_;
  DeltaConfig config_;
  double delta_;
  DeltaController controller_;

  std::vector<PeState> pes_;
  std::unique_ptr<UpdateTram> tram_;
  std::unique_ptr<runtime::Reducer> reducer_;

  // Root-side drain state.
  bool drained_armed_ = false;
  double last_sent_ = -1.0;
  double pending_settled_ = 0.0;

  /// Optimistic-engine snapshot shard, one per simulated node.
  struct alignas(64) NodeCkpt {
    std::vector<PeState> pes;  // the node's PEs, ascending PeId
    // Root-side state, meaningful on node 0 only.
    bool drained_armed = false;
    double last_sent = -1.0;
    double pending_settled = 0.0;
    DeltaController controller{false};
  };
  std::vector<NodeCkpt> spec_ckpt_;
};

}  // namespace

DeltaRunResult delta_stepping_dist(runtime::Machine& machine,
                                   const graph::Csr& csr,
                                   const graph::Partition1D& partition,
                                   VertexId source,
                                   const DeltaConfig& config,
                                   runtime::SimTime time_limit_us) {
  DeltaEngine engine(machine, csr, partition, source, config);
  return engine.run(time_limit_us);
}

}  // namespace acic::baselines
