#include "src/baselines/distributed_control.hpp"

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/runtime/collectives.hpp"
#include "src/runtime/speculation.hpp"
#include "src/sssp/update.hpp"
#include "src/util/assert.hpp"
#include "src/util/prefetch.hpp"

namespace acic::baselines {

namespace {

using graph::Dist;
using graph::VertexId;
using runtime::Pe;
using runtime::PeId;
using sssp::Update;

struct PeState {
  VertexId first = 0;
  VertexId last = 0;
  std::vector<Dist> dist;
  std::priority_queue<Update, std::vector<Update>, sssp::UpdateMinOrder> pq;

  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t superseded = 0;
  std::uint64_t touched = 0;
};

class DcEngine : public runtime::Snapshotable {
 public:
  DcEngine(runtime::Machine& machine, const graph::Csr& csr,
           const graph::Partition1D& partition, VertexId source,
           const DistributedControlConfig& config)
      : machine_(machine),
        csr_(csr),
        partition_(partition),
        source_(source),
        config_(config),
        pes_(machine.num_pes()) {
    ACIC_ASSERT(partition.num_parts() == machine.num_pes());
    ACIC_ASSERT(source < csr.num_vertices());

    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      PeState& state = pes_[p];
      state.first = partition.begin(p);
      state.last = partition.end(p);
      state.dist.assign(state.last - state.first, graph::kInfDist);
    }

    tram_ = std::make_unique<UpdateTram>(machine_, config_.tram,
                                         Deliver{this});

    detector_ = std::make_unique<runtime::TerminationDetector>(
        machine_,
        [this](Pe& pe) {
          const PeState& state = pes_[pe.id()];
          return std::make_pair(state.created, state.processed);
        },
        // Tick: the manual flush that keeps the sparse tail moving.
        [this](Pe& pe) { tram_->flush_all(pe); },
        [](Pe&) {}, config_.detector_interval_us);

    if (config_.use_priority) {
      for (PeId p = 0; p < machine_.num_pes(); ++p) {
        // add (not set): leaves the PE's idle dispatch shareable with
        // other tenants of the machine.
        idle_handler_ids_.push_back(machine_.add_idle_handler(
            p, [this](Pe& pe) { return drain_pq(pe); }));
      }
    }

    spec_ckpt_.resize(machine_.topology().nodes);
    machine_.add_snapshotable(this);

    machine_.schedule_at(0.0, partition_.owner(source_), [this](Pe& pe) {
      create_update(pe, source_, 0.0);
    });
    detector_->start();
  }

  ~DcEngine() override {
    machine_.remove_snapshotable(this);
    for (std::size_t i = 0; i < idle_handler_ids_.size(); ++i) {
      machine_.remove_idle_handler(static_cast<PeId>(i),
                                   idle_handler_ids_[i]);
    }
  }

  // ---- optimistic-engine hooks (runtime::Snapshotable) ------------------
  // Per-node snapshot: the node's PeStates (distances, priority queue,
  // counters).  The tram and the termination detector (which covers its
  // owned reducer plus the root-side detection history) snapshot
  // themselves.
  std::size_t speculative_checkpoint(std::uint32_t n) override {
    const runtime::Topology& topo = machine_.topology();
    NodeCkpt& ck = spec_ckpt_[n];
    ck.pes.clear();
    std::size_t bytes = 0;
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      if (topo.node_of(p) != n) continue;
      ck.pes.push_back(pes_[p]);
      bytes += sizeof(PeState) + pes_[p].dist.size() * sizeof(Dist) +
               pes_[p].pq.size() * sizeof(Update);
    }
    bytes += tram_->speculative_checkpoint(n);
    bytes += detector_->speculative_checkpoint(n);
    return bytes;
  }

  void speculative_restore(std::uint32_t n) override {
    const runtime::Topology& topo = machine_.topology();
    NodeCkpt& ck = spec_ckpt_[n];
    std::size_t i = 0;
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      if (topo.node_of(p) != n) continue;
      pes_[p] = ck.pes[i++];
    }
    ACIC_ASSERT(i == ck.pes.size());
    tram_->speculative_restore(n);
    detector_->speculative_restore(n);
    ck.pes.clear();
  }

  void speculative_commit(std::uint32_t n) override {
    tram_->speculative_commit(n);
    detector_->speculative_commit(n);
    spec_ckpt_[n].pes.clear();
  }

  DistributedControlRunResult run(runtime::SimTime time_limit_us) {
    const runtime::RunStats stats = machine_.run(time_limit_us);

    DistributedControlRunResult result;
    result.hit_time_limit = stats.hit_time_limit;
    result.detector_cycles = detector_->cycles();

    result.sssp.dist.assign(csr_.num_vertices(), graph::kInfDist);
    for (const PeState& state : pes_) {
      std::copy(state.dist.begin(), state.dist.end(),
                result.sssp.dist.begin() + state.first);
      result.sssp.metrics.updates_created += state.created;
      result.sssp.metrics.updates_processed += state.processed;
      result.sssp.metrics.updates_rejected += state.rejected;
      result.sssp.metrics.updates_superseded += state.superseded;
      result.sssp.metrics.vertices_touched += state.touched;
    }
    result.sssp.metrics.network_messages = stats.messages_sent;
    result.sssp.metrics.network_bytes = stats.bytes_sent;
    result.sssp.metrics.collective_cycles = detector_->cycles();
    result.sssp.metrics.sim_time_us = stats.end_time_us;

    result.pe_busy_us.resize(machine_.num_pes());
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      result.pe_busy_us[p] = machine_.pe_busy_us(p);
    }
    return result;
  }

 private:
  /// Concrete delivery functor: inlined dispatch, derived targets and
  /// PrefEdge-style lookahead.  The async baseline (use_priority off)
  /// expands straight from on_deliver, so the CSR offsets row is warmed
  /// alongside the distance slot.
  struct Deliver {
    DcEngine* engine;
    void operator()(Pe& pe, const Update& u) const {
      engine->on_deliver(pe, u);
    }
    PeId target_of(const Update& u) const {
      return engine->partition_.owner(u.vertex);
    }
    void prefetch(Pe& pe, const Update& u) const {
      const PeState& state = engine->pes_[pe.id()];
      util::prefetch_read(state.dist.data() + (u.vertex - state.first));
      util::prefetch_read(engine->csr_.offsets().data() + u.vertex);
    }
  };
  using UpdateTram = tram::Tram<Update, Deliver>;

  void create_update(Pe& pe, VertexId target, Dist d) {
    ++pes_[pe.id()].created;
    tram_->insert(pe, partition_.owner(target), Update{target, d});
  }

  void on_deliver(Pe& pe, const Update& u) {
    PeState& state = pes_[pe.id()];
    pe.charge(config_.costs.update_apply_us);
    const VertexId local = u.vertex - state.first;
    ACIC_ASSERT(u.vertex >= state.first && u.vertex < state.last);

    if (u.dist >= state.dist[local]) {
      ++state.processed;
      ++state.rejected;
      return;
    }
    if (state.dist[local] == graph::kInfDist) ++state.touched;
    state.dist[local] = u.dist;

    if (!config_.use_priority) {
      expand(pe, u);
      return;
    }
    pe.charge(config_.costs.pq_op_us);
    state.pq.push(u);
  }

  bool drain_pq(Pe& pe) {
    PeState& state = pes_[pe.id()];
    bool any = false;
    for (std::size_t i = 0;
         i < config_.pq_drain_batch && !state.pq.empty(); ++i) {
      pe.charge(config_.costs.pq_op_us);
      const Update u = state.pq.top();
      state.pq.pop();
      // The new top is almost always the next pop of this batch: warm
      // its distance slot and CSR row behind u's expansion.
      if (!state.pq.empty()) {
        const Update& ahead = state.pq.top();
        util::prefetch_read(state.dist.data() +
                            (ahead.vertex - state.first));
        util::prefetch_read(csr_.offsets().data() + ahead.vertex);
      }
      any = true;
      const VertexId local = u.vertex - state.first;
      if (state.dist[local] == u.dist) {
        expand(pe, u);
      } else {
        ++state.processed;
        ++state.superseded;
      }
    }
    return any;
  }

  void expand(Pe& pe, const Update& u) {
    PeState& state = pes_[pe.id()];
    for (const graph::Neighbor& nb : csr_.out_neighbors(u.vertex)) {
      pe.charge(config_.costs.edge_relax_us);
      create_update(pe, nb.dst, u.dist + nb.weight);
    }
    ++state.processed;
  }

  runtime::Machine& machine_;
  const graph::Csr& csr_;
  const graph::Partition1D& partition_;
  VertexId source_;
  DistributedControlConfig config_;

  std::vector<PeState> pes_;
  std::vector<runtime::IdleHandlerId> idle_handler_ids_;
  std::unique_ptr<UpdateTram> tram_;
  std::unique_ptr<runtime::TerminationDetector> detector_;

  /// Optimistic-engine snapshot shard, one per simulated node.
  struct alignas(64) NodeCkpt {
    std::vector<PeState> pes;  // the node's PEs, ascending PeId
  };
  std::vector<NodeCkpt> spec_ckpt_;
};

}  // namespace

DistributedControlRunResult distributed_control_sssp(
    runtime::Machine& machine, const graph::Csr& csr,
    const graph::Partition1D& partition, VertexId source,
    const DistributedControlConfig& config,
    runtime::SimTime time_limit_us) {
  DcEngine engine(machine, csr, partition, source, config);
  return engine.run(time_limit_us);
}

}  // namespace acic::baselines
