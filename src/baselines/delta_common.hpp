#pragma once
// Shared configuration and bookkeeping for the distributed Δ-stepping
// baselines (1-D and 2-D).  These model the RIKEN Graph500-SSSP code the
// paper compares against: bulk-synchronous Δ-stepping with light/heavy
// edge phases, plus the Chakaravarthy et al. hybrid heuristic that
// switches to Bellman-Ford sweeps once the number of newly settled
// vertices per epoch passes its maximum (fast processing of the graph's
// low-concurrency "tail").

#include <cstdint>
#include <vector>

#include "src/runtime/network.hpp"
#include "src/sssp/cost_model.hpp"
#include "src/sssp/result.hpp"
#include "src/tram/tram.hpp"

namespace acic::graph::ooc {
class FrontierFeed;
}

namespace acic::baselines {

struct DeltaConfig {
  /// Bucket width; 0 selects the max_weight / avg_degree heuristic.
  double delta = 0.0;
  /// Switch to Bellman-Ford sweeps after the per-epoch settled count
  /// passes its peak (the RIKEN/Chakaravarthy tail optimization).
  bool hybrid_bellman_ford = true;
  /// Message aggregation for relaxation traffic.
  tram::TramConfig tram;
  sssp::CostModel costs;
  /// Spacing between barrier re-contributions while draining in-flight
  /// messages (the BSP barrier needs the same two-stable-reductions drain
  /// rule ACIC's termination uses).
  runtime::SimTime barrier_interval_us = 10.0;
  /// Optional out-of-core frontier feed (src/graph/ooc_prefetch.hpp):
  /// bucket placements and Bellman-Ford dirty-list inserts publish the
  /// vertex id so a PagePrefetcher can warm the mmap'd adjacency pages
  /// before the phase loop walks them.  Host-side, best-effort,
  /// drop-on-full — bit-identical results with or without it.  Must
  /// outlive the run.
  graph::ooc::FrontierFeed* frontier_feed = nullptr;
};

struct DeltaRunResult {
  sssp::SsspResult sssp;
  std::uint64_t buckets_processed = 0;
  std::uint64_t light_phases = 0;
  std::uint64_t heavy_phases = 0;
  std::uint64_t bf_sweeps = 0;
  std::uint64_t barrier_rounds = 0;
  bool switched_to_bf = false;
  bool hit_time_limit = false;
  std::vector<runtime::SimTime> pe_busy_us;
};

/// Commands the root broadcasts to drive the bulk-synchronous schedule.
enum class DeltaCmd : int {
  kLight = 0,   // light-edge subphase of the current bucket
  kHeavy = 1,   // heavy-edge phase of the current bucket
  kBellman = 2, // Bellman-Ford sweep over dirty vertices (hybrid tail)
  kNoop = 3,    // barrier round only (drain in-flight messages)
  kDone = 4,    // terminate
};

/// Root-side controller encapsulating the Δ-stepping schedule decisions.
/// Both the 1-D and 2-D engines feed it one drained barrier summary per
/// superstep and broadcast the command it returns.
class DeltaController {
 public:
  explicit DeltaController(bool hybrid) : hybrid_(hybrid) {}

  struct Summary {
    double bucket_count = 0.0;        // vertices still in current bucket
    double min_next_bucket = 0.0;     // global min nonempty bucket index
    bool has_next_bucket = false;
    double newly_settled = 0.0;       // settled during the last phase
    double dirty_count = 0.0;         // pending Bellman-Ford work
  };

  struct Decision {
    DeltaCmd cmd = DeltaCmd::kDone;
    std::uint64_t bucket = 0;
  };

  Decision decide(const Summary& summary);

  bool switched_to_bf() const { return switched_to_bf_; }
  std::uint64_t buckets_processed() const { return buckets_processed_; }

 private:
  enum class Mode { kLight, kHeavy, kBellman };

  bool hybrid_;
  Mode mode_ = Mode::kLight;
  std::uint64_t current_bucket_ = 0;
  double settled_this_bucket_ = 0.0;
  double max_settled_per_bucket_ = 0.0;
  std::uint64_t buckets_processed_ = 0;
  bool switched_to_bf_ = false;
};

}  // namespace acic::baselines
