#pragma once
// Distributed Δ-stepping with a 2-D grid edge partition — the closest
// structural analogue of the RIKEN Graph500-SSSP baseline the paper
// compares against (2-D decomposition + hybrid Bellman-Ford switch).
//
// Per phase:
//   1. Every state-owner cell collects its live frontier for the current
//      bucket and broadcasts it down its processor *column* (the cells
//      that store those vertices' out-edges).
//   2. Each cell relaxes the frontier against its local edge block,
//      min-combines candidates per destination vertex, and sends one
//      combined message per destination owner along its *row*.
//   3. Owners apply candidates (improving distances, re-bucketing).
//   4. A drained barrier (sent/recv counters equal and stable across two
//      reductions) closes the phase.
// The schedule decisions (another light subphase, heavy phase, bucket
// advance, hybrid Bellman-Ford switch, done) are shared with the 1-D
// engine via DeltaController.

#include "src/baselines/delta_common.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/partition2d.hpp"
#include "src/runtime/machine.hpp"

namespace acic::baselines {

DeltaRunResult delta_stepping_2d(
    runtime::Machine& machine, const graph::Csr& csr,
    const graph::Partition2D& partition, graph::VertexId source,
    const DeltaConfig& config,
    runtime::SimTime time_limit_us = runtime::kNoTimeLimit);

}  // namespace acic::baselines
