#pragma once
// Snapshotable — the hook the optimistic engine (Machine
// EngineMode::kOptimistic, docs/performance.md "Optimistic engine")
// uses to checkpoint and roll back application state that lives
// *outside* the machine's own shard-local structures.
//
// The machine checkpoints what it owns (event heap, slot store, PE
// scheduler state, per-node sequence counters) by itself.  But a
// speculatively executed task also mutates solver state — ACIC distance
// lanes, delta-stepping buckets, tram buffers, reducer cycles.  Every
// component holding such per-node state registers a Snapshotable with
// the machine; speculation engages only when at least one hook is
// registered and *all* registered hooks report
// speculation_supported() == true.  A component that cannot snapshot
// its state registers an unsupported hook, which downgrades the whole
// machine to the conservative schedule — safe by construction, never
// silently wrong.
//
// Call protocol (all calls made with the calling thread executing the
// given shard, i.e. only state owned by simulated node `node` may be
// touched — the same ownership rule tasks obey):
//   speculative_checkpoint(node)  — snapshot node-local state; returns
//                                   an estimate of bytes copied (for
//                                   the checkpoint_bytes diagnostic).
//   speculative_restore(node)     — roll node-local state back to the
//                                   snapshot (straggler detected).
//   speculative_commit(node)      — discard the snapshot (speculation
//                                   confirmed); state stays as-is.
// Exactly one of restore/commit follows every checkpoint.

#include <cstddef>
#include <cstdint>

namespace acic::runtime {

class Snapshotable {
 public:
  virtual ~Snapshotable() = default;

  /// False downgrades the machine to conservative mode for the whole
  /// run (e.g. a solver whose per-node state is too entangled to
  /// snapshot registers an unsupported hook rather than risking a
  /// wrong rollback).
  virtual bool speculation_supported() const { return true; }

  virtual std::size_t speculative_checkpoint(std::uint32_t node) = 0;
  virtual void speculative_restore(std::uint32_t node) = 0;
  virtual void speculative_commit(std::uint32_t node) = 0;
};

}  // namespace acic::runtime
