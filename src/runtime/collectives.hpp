#pragma once
// Asynchronous, message-driven reductions and broadcasts — the machinery
// behind ACIC's "continuous concurrent introspection" (paper §I, §II.B).
//
// A Reducer owns a k-ary spanning tree over the PEs rooted at PE 0 (the
// paper's root PE).  Each PE contributes a fixed-width vector per cycle;
// interior tree nodes sum child contributions with their own and forward
// the partial sum to their parent.  When the root completes a cycle it
// invokes the root handler, which may return a payload to broadcast back
// down the same tree; every PE's broadcast handler then runs.  Cycles are
// pipelined: a PE may contribute to cycle n+1 before cycle n's broadcast
// has reached it, and interior nodes keep per-cycle partial sums.
//
// All tree traffic flows through the Machine as ordinary costed messages,
// so the overhead a reduction imposes on useful work is *measured*, not
// assumed — that is exactly what the paper's fig. 3 experiment examines.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/runtime/machine.hpp"

namespace acic::runtime {

/// Element-wise combine operation for one slot of a Reducer payload.
enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };

class Reducer {
 public:
  /// Runs at the root when a cycle's global sum is complete.  Returning a
  /// vector broadcasts it to all PEs; returning nullopt ends the cycle
  /// without a broadcast (the tree then goes quiet unless PEs contribute
  /// again on their own).
  using RootHandler = std::function<std::optional<std::vector<double>>(
      Pe&, std::uint64_t cycle, const std::vector<double>&)>;

  /// Runs on every PE when a broadcast payload arrives.
  using BcastHandler =
      std::function<void(Pe&, std::uint64_t cycle, const std::vector<double>&)>;

  /// `width` is the per-PE contribution length (fixed for the Reducer's
  /// lifetime); `fanout` the tree arity.  `ops` selects the element-wise
  /// combine per slot; empty means all-sum.
  Reducer(Machine& machine, std::size_t width, RootHandler on_root,
          BcastHandler on_bcast, std::uint32_t fanout = 4,
          std::vector<ReduceOp> ops = {});

  Reducer(const Reducer&) = delete;
  Reducer& operator=(const Reducer&) = delete;

  /// Contributes this PE's vector for its next cycle.  Must be called at
  /// most once per cycle per PE; the Reducer tracks each PE's cycle
  /// counter internally.  Callable from inside a task on `pe`.
  void contribute(Pe& pe, const std::vector<double>& value);

  /// Per-PE CPU cost of combining one contribution (models the summation
  /// loop the paper's PEs execute during a reduction).
  void set_combine_cost(SimTime us_per_element) {
    combine_cost_us_per_element_ = us_per_element;
  }

  std::size_t width() const { return width_; }
  std::uint64_t cycles_completed() const { return cycles_completed_; }

  // --- Optimistic-engine hooks (src/runtime/speculation.hpp), called
  // through the engines' Snapshotable registrations one simulated node
  // at a time.  The snapshot for node `n` covers the tree state mutated
  // by node-`n` tasks: each of the node's PEs' in-flight partial sums
  // and cycle counters, plus (on node 0 only, where the root PE lives)
  // the root-side cycles_completed counter.  Payload pools are
  // memory-only recycling state and are not snapshotted.
  std::size_t speculative_checkpoint(std::uint32_t node);
  void speculative_restore(std::uint32_t node);
  void speculative_commit(std::uint32_t node);

 private:
  struct PendingCycle {
    std::vector<double> sum;
    std::uint32_t received = 0;
  };

  struct NodeState {
    std::uint64_t next_contribute_cycle = 0;
    // Partial sums for cycles still in flight at this tree node.
    std::map<std::uint64_t, PendingCycle> pending;
  };

  std::uint32_t parent_of(PeId pe) const { return (pe - 1) / fanout_; }
  std::uint32_t num_children(PeId pe) const;

  /// Folds `value` into `pe`'s pending state for `cycle`; forwards to the
  /// parent / fires the root when the subtree is complete.
  void absorb(Pe& pe, std::uint64_t cycle, const std::vector<double>& value);
  void forward_or_finish(Pe& pe, std::uint64_t cycle);
  void broadcast_down(Pe& pe, std::uint64_t cycle,
                      const std::vector<double>& payload);

  std::size_t payload_bytes() const { return width_ * sizeof(double) + 16; }

  /// Pooled payload backing stores: partial-sum vectors cycle through
  /// the tree once per reduction per node, so recycling them keeps the
  /// steady state allocation-free (ACIC reduces every few hundred
  /// microseconds of simulated time with 515-slot payloads).  Pools are
  /// sharded per simulated node (cache-line padded) so the parallel
  /// engine's shards never contend; a payload that crosses nodes simply
  /// migrates from the sender's pool to the receiver's.
  std::vector<double> acquire_payload(const Pe& pe);
  void recycle_payload(const Pe& pe, std::vector<double>&& v);

  Machine& machine_;
  std::size_t width_;
  std::uint32_t fanout_;
  RootHandler on_root_;
  BcastHandler on_bcast_;
  std::vector<ReduceOp> ops_;
  bool all_sum_ = false;  // every slot is kSum: combine is a flat += loop
  std::vector<NodeState> nodes_;
  struct alignas(64) NodePool {
    std::vector<std::vector<double>> pool;
  };
  std::vector<NodePool> pools_;           // one per simulated node
  /// Optimistic-engine snapshot shard, one per simulated node (padded so
  /// concurrently checkpointing shards never share a cache line).
  struct alignas(64) NodeCheckpoint {
    std::vector<NodeState> states;       // the node's PEs, ascending PeId
    std::uint64_t cycles_completed = 0;  // meaningful on node 0 only
  };
  std::vector<NodeCheckpoint> ckpt_;      // one per simulated node
  std::vector<std::uint32_t> node_of_;    // PeId -> simulated node
  SimTime combine_cost_us_per_element_ = 0.002;
  std::uint64_t cycles_completed_ = 0;
};

/// Counter-based termination detection, built on a Reducer, implementing
/// the paper's scheme (§II.D): every PE contributes (created, processed)
/// counters; the root terminates when the two global sums are equal *and*
/// unchanged across two consecutive reductions — the double check guards
/// against the race where counters match while messages are in flight.
class TerminationDetector {
 public:
  /// `counters` supplies (created, processed) for the PE; `on_tick` runs
  /// on every PE at each broadcast (e.g. to flush aggregation buffers);
  /// `on_terminate` runs on every PE once when termination is detected.
  /// `interval_us` spaces out cycles; 0 re-contributes immediately.
  TerminationDetector(
      Machine& machine,
      std::function<std::pair<std::uint64_t, std::uint64_t>(Pe&)> counters,
      std::function<void(Pe&)> on_tick, std::function<void(Pe&)> on_terminate,
      SimTime interval_us = 50.0);

  /// Starts the detection cycles (schedules the first contribution on
  /// every PE at time 0).
  void start();

  bool terminated() const { return terminated_; }
  std::uint64_t cycles() const { return reducer_->cycles_completed(); }

  // --- Optimistic-engine hooks: delegate to the owned Reducer and add
  // the root-side detection history (mutated only by the root handler,
  // which runs on PE 0 — node 0).
  std::size_t speculative_checkpoint(std::uint32_t node);
  void speculative_restore(std::uint32_t node);
  void speculative_commit(std::uint32_t node);

 private:
  Machine& machine_;
  std::function<std::pair<std::uint64_t, std::uint64_t>(Pe&)> counters_;
  std::function<void(Pe&)> on_tick_;
  std::function<void(Pe&)> on_terminate_;
  SimTime interval_us_;
  std::unique_ptr<Reducer> reducer_;
  // Root-side history for the two-consecutive-matches rule.
  double last_created_ = -1.0;
  double last_processed_ = -2.0;
  bool armed_ = false;  // true after the first matching reduction
  bool terminated_ = false;
  // Optimistic-engine snapshot of the root-side history (node 0 only).
  double ckpt_last_created_ = -1.0;
  double ckpt_last_processed_ = -2.0;
  bool ckpt_armed_ = false;
  bool ckpt_terminated_ = false;
};

}  // namespace acic::runtime
