#pragma once
// Network cost model for the discrete-event machine.
//
// Charges follow the standard LogGP-style decomposition:
//   * send_overhead_us  — CPU consumed on the sender per message,
//   * recv_overhead_us  — CPU consumed on the receiver per message,
//   * latency           — wire time, differentiated by locality,
//   * 1/bandwidth       — per-byte serialization, by locality.
// These per-message fixed costs are what make aggregation (tramlib) pay
// off: one 2048-item message costs one overhead + 2048 byte-costs instead
// of 2048 overheads.  Defaults approximate a modern Slingshot-class
// fabric at microsecond granularity; experiments may override them.

#include <cstddef>

#include "src/runtime/topology.hpp"

namespace acic::runtime {

/// Simulated time, in microseconds.
using SimTime = double;

struct NetworkModel {
  SimTime send_overhead_us = 0.5;
  SimTime recv_overhead_us = 0.5;

  SimTime latency_intra_proc_us = 0.1;
  SimTime latency_intra_node_us = 0.8;
  SimTime latency_inter_node_us = 3.0;

  // Bandwidth as bytes per microsecond (1000 B/us == 1 GB/s).
  double bytes_per_us_intra_proc = 16000.0;
  double bytes_per_us_intra_node = 8000.0;
  double bytes_per_us_inter_node = 2000.0;

  SimTime latency(Locality loc) const {
    switch (loc) {
      case Locality::kSelf:
        return 0.0;
      case Locality::kIntraProcess:
        return latency_intra_proc_us;
      case Locality::kIntraNode:
        return latency_intra_node_us;
      case Locality::kInterNode:
        return latency_inter_node_us;
    }
    return 0.0;
  }

  SimTime transfer_time(Locality loc, std::size_t bytes) const {
    double bw = bytes_per_us_intra_proc;
    switch (loc) {
      case Locality::kSelf:
      case Locality::kIntraProcess:
        bw = bytes_per_us_intra_proc;
        break;
      case Locality::kIntraNode:
        bw = bytes_per_us_intra_node;
        break;
      case Locality::kInterNode:
        bw = bytes_per_us_inter_node;
        break;
    }
    return latency(loc) + static_cast<double>(bytes) / bw;
  }
};

}  // namespace acic::runtime
