#include "src/runtime/machine.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "src/obs/registry.hpp"
#include "src/util/assert.hpp"

namespace acic::runtime {

/// A cross-node arrival buffered in its sending shard's outbox until the
/// window barrier.  Carries the seq the sender already assigned, so the
/// receiving heap's comparator alone decides the merge order —
/// (timestamp, src node, per-node sequence), independent of which host
/// thread drained which mailbox first.
struct Machine::Mail {
  SimTime time;
  std::uint64_t seq;
  PeId pe;
  bool charge_recv;
  Task task;
};

/// One simulated node's slice of the event loop during a parallel run:
/// its own 4-ary heap, slot store, outgoing mailboxes and stat deltas.
/// A shard is touched only by the host thread it is assigned to, except
/// for `outbox[d]`, which the thread owning shard d drains strictly
/// after the window barrier.
struct alignas(64) Machine::Shard {
  std::uint32_t node = 0;
  util::DaryHeap<Event, EventOrder> heap;
  std::vector<Task> slots;
  std::vector<std::uint32_t> free_slots;
  /// outbox[d]: arrivals destined to node d, merged at the barrier.
  std::vector<std::vector<Mail>> outbox;
  /// Max event time processed on this shard — the shard-local mirror of
  /// current_time_ (identical inside a task: the executing PE's clock
  /// is always >= the current event's time on both paths).
  SimTime now = 0.0;
  /// End of the current window; cross-node pushes below it would break
  /// the conservative lookahead (asserted).
  SimTime window_end = 0.0;
  RunStats stats;
  std::int64_t ready_delta = 0;  // folded into ready_tasks_ after the run
};

thread_local Machine::Shard* Machine::tls_shard_ = nullptr;

void Pe::send(PeId to, std::size_t bytes, Task task) {
  machine_->send(id_, to, bytes, std::move(task));
}

void Pe::enqueue_local(Task task) {
  // A local continuation bypasses the network entirely: it lands at the
  // back of this PE's queue at the current moment.
  machine_->schedule_at(current_time_, id_, std::move(task));
}

Machine::Machine(Topology topology, NetworkModel network)
    : topology_(topology), network_(network) {
  topology_.validate();
  ACIC_ASSERT_MSG(topology_.nodes < (1u << 16),
                  "composite event keys hold the node id in 16 bits");
  pes_.resize(topology_.num_entities());
  entity_node_.resize(topology_.num_entities());
  for (PeId p = 0; p < topology_.num_entities(); ++p) {
    pes_[p].id_ = p;
    pes_[p].machine_ = this;
    entity_node_[p] = topology_.node_of(p);
  }
  node_seq_.resize(topology_.nodes);
  // Steady-state queue depth is a small multiple of the PE count; seed the
  // backing stores so warm-up never reallocates mid-sift.
  const std::size_t hint =
      std::max<std::size_t>(1024, 4 * topology_.num_entities());
  queue_.reserve(hint);
  task_slots_.reserve(hint);
  free_slots_.reserve(hint);
}

// Parked tasks (arrivals never executed because run() hit its time limit)
// are destroyed with task_slots_.
Machine::~Machine() = default;

void Machine::set_registry(obs::Registry* registry) {
  flush_ready_sample();  // pending sample belongs to the old registry
  registry_ = registry;
  if (registry_ == nullptr) {
    obs_.reset();
    return;
  }
  obs_ = std::make_unique<obs::RuntimeCounters>(
      obs::define_runtime_counters(*registry_));
}

void Machine::send(PeId from, PeId to, std::size_t bytes, Task task) {
  ACIC_ASSERT(from < num_entities() && to < num_entities());
  Pe& sender = pes_[from];
  const Locality loc = topology_.locality(from, to);

  // The sender pays its per-message overhead now (advancing its clock if
  // it is inside a task), then the message departs.
  sender.charge(network_.send_overhead_us);
  Shard* const sh = tls_shard_;
  // Inside a task the sender's clock always dominates this max (its
  // clock was set to >= the current event's time before the task ran),
  // so the shard-local floor and the global one yield the same bits.
  const SimTime floor_now = sh != nullptr ? sh->now : current_time_;
  const SimTime departure = std::max(sender.current_time_, floor_now);
  const SimTime arrival = departure + network_.transfer_time(loc, bytes);

  if (sh != nullptr) {
    ACIC_HOT_ASSERT(entity_node_[from] == sh->node);
    ++sh->stats.messages_sent;
    sh->stats.bytes_sent += bytes;
  } else {
    ++messages_sent_;
    bytes_sent_ += bytes;
    if (active_stats_ != nullptr) {
      ++active_stats_->messages_sent;
      active_stats_->bytes_sent += bytes;
    }
    if (registry_ != nullptr) [[unlikely]] {
      registry_->add(obs_->messages(loc), from, 1, departure);
      registry_->add(obs_->bytes(loc), from, bytes, departure);
    }
  }

  // The receiver pays its per-message overhead when it picks the task up
  // (flagged on the queued task; no wrapper closure).
  push_arrival(arrival, to, std::move(task), /*charge_recv=*/true);
}

void Machine::schedule_at(SimTime time, PeId pe, Task task) {
  ACIC_ASSERT(pe < num_entities());
  push_arrival(std::max(time, 0.0), pe, std::move(task),
               /*charge_recv=*/false);
}

IdleHandlerId Machine::add_idle_handler(PeId pe, IdleHandler handler) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(!pes_[pe].idle_polling_,
                  "cannot register an idle handler from inside an idle "
                  "poll on the same PE");
  const IdleHandlerId id = next_idle_handler_id_++;
  pes_[pe].idle_handlers_.push_back(Pe::IdleEntry{id, std::move(handler)});
  // If the PE is already asleep, poke it so the new handler gets a chance
  // to run; an exec event on an empty queue degrades to an idle poll.
  const SimTime now = tls_shard_ != nullptr ? tls_shard_->now : current_time_;
  ensure_exec_scheduled(pes_[pe], std::max(now, pes_[pe].avail_time_));
  return id;
}

void Machine::remove_idle_handler(PeId pe, IdleHandlerId id) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(!pes_[pe].idle_polling_,
                  "cannot deregister an idle handler from inside an idle "
                  "poll on the same PE");
  auto& handlers = pes_[pe].idle_handlers_;
  for (std::size_t i = 0; i < handlers.size(); ++i) {
    if (handlers[i].id == id) {
      handlers.erase(handlers.begin() + static_cast<std::ptrdiff_t>(i));
      if (pes_[pe].idle_cursor_ > i) --pes_[pe].idle_cursor_;
      return;
    }
  }
  ACIC_ASSERT_MSG(false, "idle handler id not registered on this PE");
}

std::size_t Machine::num_idle_handlers(PeId pe) const {
  ACIC_ASSERT(pe < num_entities());
  return pes_[pe].idle_handlers_.size();
}

void Machine::set_speed_factor(PeId pe, double factor) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(factor > 0.0, "speed factor must be positive");
  pes_[pe].speed_factor_ = factor;
}

std::uint32_t Machine::acquire_slot(Task task) {
  Shard* const sh = tls_shard_;
  std::vector<Task>& slots = sh != nullptr ? sh->slots : task_slots_;
  std::vector<std::uint32_t>& free_list =
      sh != nullptr ? sh->free_slots : free_slots_;
  if (!free_list.empty()) {
    const std::uint32_t slot = free_list.back();
    free_list.pop_back();
    slots[slot] = std::move(task);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots.size());
  ACIC_ASSERT_MSG(slot < kNoSlot, "task slot store exceeded 2^30 entries");
  slots.push_back(std::move(task));
  return slot;
}

Task Machine::release_slot(std::uint32_t slot) {
  Shard* const sh = tls_shard_;
  std::vector<Task>& slots = sh != nullptr ? sh->slots : task_slots_;
  Task task = std::move(slots[slot]);
  slots[slot] = nullptr;
  (sh != nullptr ? sh->free_slots : free_slots_).push_back(slot);
  return task;
}

void Machine::note_ready_depth(SimTime time) {
  // Same-timestamp changes coalesce: only the last value at a given
  // instant is observable, so one series append per distinct time.
  if (ready_sample_pending_ && ready_sample_time_ != time) {
    registry_->append(obs_->ready_tasks, ready_sample_time_,
                      ready_sample_value_);
  }
  ready_sample_pending_ = true;
  ready_sample_time_ = time;
  ready_sample_value_ = static_cast<double>(ready_tasks_);
}

void Machine::flush_ready_sample() {
  if (ready_sample_pending_) {
    registry_->append(obs_->ready_tasks, ready_sample_time_,
                      ready_sample_value_);
    ready_sample_pending_ = false;
  }
}

void Machine::push_arrival(SimTime time, PeId pe, Task task,
                           bool charge_recv) {
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    const std::uint32_t dest = entity_node_[pe];
    const std::uint64_t seq = next_seq(sh->node);
    if (dest == sh->node) {
      const std::uint32_t slot = acquire_slot(std::move(task));
      sh->heap.push(Event{time, seq, pe,
                          charge_recv ? (kRecvBit | slot) : slot});
    } else {
      // Conservative lookahead: a cross-node arrival must land at or
      // after the window barrier.  Sends always satisfy this (inter-node
      // transfer time >= the window width); a cross-node schedule_at
      // inside the window would be a causality violation.
      ACIC_ASSERT_MSG(time >= sh->window_end,
                      "cross-node event scheduled inside the conservative "
                      "window (use a send, or run with --threads 1)");
      sh->outbox[dest].push_back(
          Mail{time, seq, pe, charge_recv, std::move(task)});
    }
    return;
  }
  const std::uint32_t node = running_ ? current_node_ : entity_node_[pe];
  const std::uint32_t slot = acquire_slot(std::move(task));
  queue_.push(Event{time, next_seq(node), pe,
                    charge_recv ? (kRecvBit | slot) : slot});
}

void Machine::push_exec(SimTime time, PeId pe) {
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    ACIC_HOT_ASSERT(entity_node_[pe] == sh->node);
    sh->heap.push(Event{time, next_seq(sh->node), pe, kExecBit | kNoSlot});
    return;
  }
  const std::uint32_t node = running_ ? current_node_ : entity_node_[pe];
  queue_.push(Event{time, next_seq(node), pe, kExecBit | kNoSlot});
}

void Machine::ensure_exec_scheduled(Pe& pe, SimTime earliest) {
  if (pe.exec_scheduled_) return;
  pe.exec_scheduled_ = true;
  push_exec(std::max(earliest, pe.avail_time_), pe.id_);
}

void Machine::handle_arrival(const Event& event) {
  Pe& pe = pes_[event.pe];
  // The queued-task word reuses the event's packing (recv bit + slot).
  pe.fifo_.push_back(event.packed);
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    ++sh->ready_delta;
  } else {
    ++ready_tasks_;
    if (registry_ != nullptr) [[unlikely]] {
      note_ready_depth(event.time);
    }
  }
  ensure_exec_scheduled(pe, event.time);
}

void Machine::handle_exec(const Event& event) {
  Pe& pe = pes_[event.pe];
  ACIC_ASSERT(pe.exec_scheduled_);
  pe.current_time_ = std::max(event.time, pe.avail_time_);
  Shard* const sh = tls_shard_;

  if (!pe.fifo_.empty()) {
    const std::uint32_t queued = pe.fifo_.pop_front();
    // Move the task out of its slot before running it: the task may
    // enqueue new arrivals, which can grow (reallocate) the slot store.
    Task task = release_slot(queued & kSlotMask);
    ++pe.tasks_run_;
    if (sh != nullptr) {
      --sh->ready_delta;
      ++sh->stats.tasks_executed;
    } else {
      --ready_tasks_;
      if (active_stats_ != nullptr) ++active_stats_->tasks_executed;
      if (registry_ != nullptr) [[unlikely]] {
        registry_->add(obs_->tasks_executed, pe.id_, 1, pe.current_time_);
        note_ready_depth(pe.current_time_);
      }
    }
    const SimTime span_start = pe.current_time_;
    // The receiver's per-message overhead is part of the task's span,
    // charged exactly where the old wrapper closure charged it.
    if ((queued & kRecvBit) != 0) pe.charge(network_.recv_overhead_us);
    task(pe);
    if (span_hook_) {
      span_hook_(pe.id_, span_start, pe.current_time_, false);
    }
    pe.avail_time_ = pe.current_time_;
    // Stay scheduled: either more tasks are queued or the idle handler
    // deserves a poll once this task's simulated time has elapsed.
    push_exec(pe.avail_time_, pe.id_);
    return;
  }

  // Queue empty: poll the idle handlers (Charm++'s when-idle callback).
  // With several registered (multi-tenant engines sharing the PE), one
  // poll tries each in turn — starting after the handler that last did
  // work, so no engine can starve the others — and stops at the first
  // that reports work.
  if (!pe.idle_handlers_.empty()) {
    const SimTime span_start = pe.current_time_;
    pe.charge(idle_poll_cost_us_);
    if (sh != nullptr) {
      ++sh->stats.idle_polls;
    } else {
      if (active_stats_ != nullptr) ++active_stats_->idle_polls;
      if (registry_ != nullptr) [[unlikely]] {
        registry_->add(obs_->idle_polls, pe.id_, 1, pe.current_time_);
      }
    }
    bool did_work = false;
    pe.idle_polling_ = true;
    const std::size_t n = pe.idle_handlers_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = (pe.idle_cursor_ + i) % n;
      if (pe.idle_handlers_[idx].handler(pe)) {
        did_work = true;
        pe.idle_cursor_ = (idx + 1) % n;
        break;
      }
    }
    pe.idle_polling_ = false;
    if (span_hook_) {
      // Idle polls that found work count as busy spans.
      span_hook_(pe.id_, span_start, pe.current_time_, !did_work);
    }
    pe.avail_time_ = pe.current_time_;
    if (did_work || !pe.fifo_.empty()) {
      push_exec(pe.avail_time_, pe.id_);
      return;
    }
  }
  pe.exec_scheduled_ = false;  // sleep until the next arrival
}

RunStats Machine::run(SimTime time_limit) {
  if (threads_ > 1 && topology_.nodes > 1 && registry_ == nullptr &&
      !span_hook_ && network_.latency_inter_node_us > 0.0) {
    return run_parallel(time_limit);
  }
  RunStats stats;
  active_stats_ = &stats;
  running_ = true;
  while (!queue_.empty()) {
    if (queue_.top().time > time_limit) {
      stats.hit_time_limit = true;
      break;
    }
    const Event event = queue_.top();  // POD copy; payload stays parked
    queue_.pop();
    ++events_processed_;
    ++stats.events_processed;
    current_time_ = std::max(current_time_, event.time);
    // Pushes triggered by this event key on its node — the same node a
    // parallel shard would key them on.
    current_node_ = entity_node_[event.pe];
    if (event.is_exec()) {
      handle_exec(event);
    } else {
      handle_arrival(event);
    }
  }
  running_ = false;
  if (registry_ != nullptr) [[unlikely]] {
    flush_ready_sample();
  }
  stats.end_time_us = current_time_;
  active_stats_ = nullptr;
  return stats;
}

RunStats Machine::run_parallel(SimTime time_limit) {
  const std::uint32_t nodes = topology_.nodes;
  const unsigned nthreads = std::min<unsigned>(threads_, nodes);
  // Conservative lookahead: no message crosses nodes in less than the
  // inter-node wire latency (transfer_time = latency + bytes/bandwidth),
  // so a window of exactly that width is safe.
  const SimTime lookahead = network_.latency_inter_node_us;

  std::vector<Shard> shards(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    shards[n].node = n;
    shards[n].now = current_time_;
    shards[n].outbox.resize(nodes);
  }
  // Redistribute the global heap into the per-node shards, migrating
  // parked tasks into each shard's own slot store.  Insertion order is
  // irrelevant: the comparator is a total order, so every heap pops the
  // same sequence regardless of how it was filled.
  while (!queue_.empty()) {
    const Event e = queue_.top();
    queue_.pop();
    Shard& sh = shards[entity_node_[e.pe]];
    if (e.is_exec()) {
      sh.heap.push(e);
      continue;
    }
    Task task = release_slot(e.slot());
    tls_shard_ = &sh;
    const std::uint32_t slot = acquire_slot(std::move(task));
    tls_shard_ = nullptr;
    sh.heap.push(Event{e.time, e.seq, e.pe, (e.packed & kRecvBit) | slot});
  }

  // Published per-thread heap minima, re-read by every thread after the
  // barrier to agree on the window start.
  struct alignas(64) PublishedMin {
    SimTime value = kNoTimeLimit;
  };
  std::vector<PublishedMin> mins(nthreads);
  std::barrier<> window_barrier(static_cast<std::ptrdiff_t>(nthreads));
  bool hit_limit = false;  // written by thread 0 only, read after join

  auto worker = [&](unsigned tid) {
    const std::uint32_t lo = tid * nodes / nthreads;
    const std::uint32_t hi = (tid + 1) * nodes / nthreads;
    for (;;) {
      SimTime local_min = kNoTimeLimit;
      for (std::uint32_t s = lo; s < hi; ++s) {
        if (!shards[s].heap.empty()) {
          local_min = std::min(local_min, shards[s].heap.top().time);
        }
      }
      mins[tid].value = local_min;
      window_barrier.arrive_and_wait();
      SimTime window_start = kNoTimeLimit;
      for (unsigned t = 0; t < nthreads; ++t) {
        window_start = std::min(window_start, mins[t].value);
      }
      // Every thread computes the same window, so all break together;
      // mailboxes are empty here (drained at the previous barrier).
      if (window_start == kNoTimeLimit || window_start > time_limit) {
        if (tid == 0) hit_limit = window_start != kNoTimeLimit;
        break;
      }
      const SimTime window_end = window_start + lookahead;
      for (std::uint32_t s = lo; s < hi; ++s) {
        Shard& sh = shards[s];
        sh.window_end = window_end;
        tls_shard_ = &sh;
        while (!sh.heap.empty()) {
          const Event& top = sh.heap.top();
          if (top.time >= window_end || top.time > time_limit) break;
          const Event e = top;
          sh.heap.pop();
          ++sh.stats.events_processed;
          sh.now = std::max(sh.now, e.time);
          if (e.is_exec()) {
            handle_exec(e);
          } else {
            handle_arrival(e);
          }
        }
        tls_shard_ = nullptr;
      }
      window_barrier.arrive_and_wait();
      // All sends for this window are buffered; each thread merges its
      // own shards' inboxes (every source's outbox column) into their
      // heaps.  The composite seq keys make the merge order automatic.
      for (std::uint32_t d = lo; d < hi; ++d) {
        Shard& dst = shards[d];
        tls_shard_ = &dst;
        for (std::uint32_t src = 0; src < nodes; ++src) {
          std::vector<Mail>& box = shards[src].outbox[d];
          for (Mail& mail : box) {
            const std::uint32_t slot = acquire_slot(std::move(mail.task));
            dst.heap.push(Event{mail.time, mail.seq, mail.pe,
                                mail.charge_recv ? (kRecvBit | slot)
                                                 : slot});
          }
          box.clear();
        }
        tls_shard_ = nullptr;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (unsigned tid = 1; tid < nthreads; ++tid) {
    pool.emplace_back(worker, tid);
  }
  worker(0);
  for (std::thread& t : pool) t.join();

  // Fold shard deltas back into the machine and merge unprocessed
  // events (a hit time limit) back into the global queue.
  RunStats stats;
  stats.hit_time_limit = hit_limit;
  for (Shard& sh : shards) {
    stats.tasks_executed += sh.stats.tasks_executed;
    stats.idle_polls += sh.stats.idle_polls;
    stats.messages_sent += sh.stats.messages_sent;
    stats.bytes_sent += sh.stats.bytes_sent;
    stats.events_processed += sh.stats.events_processed;
    messages_sent_ += sh.stats.messages_sent;
    bytes_sent_ += sh.stats.bytes_sent;
    events_processed_ += sh.stats.events_processed;
    ready_tasks_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(ready_tasks_) + sh.ready_delta);
    current_time_ = std::max(current_time_, sh.now);
    while (!sh.heap.empty()) {
      const Event e = sh.heap.top();
      sh.heap.pop();
      if (e.is_exec()) {
        queue_.push(e);
        continue;
      }
      Task task = std::move(sh.slots[e.slot()]);
      const std::uint32_t slot = acquire_slot(std::move(task));
      queue_.push(
          Event{e.time, e.seq, e.pe, (e.packed & kRecvBit) | slot});
    }
  }
  stats.end_time_us = current_time_;
  return stats;
}

}  // namespace acic::runtime
