#include "src/runtime/machine.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "src/obs/registry.hpp"
#include "src/util/assert.hpp"

namespace acic::runtime {

namespace {

/// Epoch-based (sense-reversing) spin barrier with a fused completion
/// step: the last thread to arrive runs `completion` — the per-window
/// reduction — before releasing the others, so the reduction costs one
/// O(parties) scan per window total instead of one per thread, and the
/// min-combine needs no second barrier.  Waiters spin briefly then
/// yield; on an undersubscribed host (fewer cores than workers, e.g.
/// the single-core CI container) spinning only steals cycles from the
/// thread everyone is waiting on, so the spin budget is zero there.
///
/// Memory ordering: every arriving thread's acq_rel fetch_add on
/// `arrived_` forms a release sequence read by the last arrival, and
/// the epoch release-store / acquire-load pair publishes the completion
/// step's writes — so all pre-barrier writes happen-before all
/// post-barrier reads, on every thread.  ThreadSanitizer verifies this
/// chain in CI.
class SpinBarrier {
 public:
  template <typename Fn>
  SpinBarrier(unsigned parties, Fn&& completion)
      : parties_(parties), completion_(std::forward<Fn>(completion)) {}

  void arrive_and_wait() {
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      completion_();
      arrived_.store(0, std::memory_order_relaxed);
      epoch_.store(epoch + 1, std::memory_order_release);
      return;
    }
    int spins = spin_budget_;
    while (epoch_.load(std::memory_order_acquire) == epoch) {
      if (spins-- <= 0) std::this_thread::yield();
    }
  }

 private:
  const unsigned parties_;
  const std::function<void()> completion_;
  const int spin_budget_ =
      std::thread::hardware_concurrency() >= parties_ ? 256 : 0;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace

/// A cross-node arrival buffered in its sending shard's outbox until the
/// window barrier.  Carries the seq the sender already assigned, so the
/// receiving heap's comparator alone decides the merge order —
/// (timestamp, src node, per-node sequence), independent of which host
/// thread drained which mailbox first.
struct Machine::Mail {
  SimTime time;
  std::uint64_t seq;
  PeId pe;
  bool charge_recv;
  Task task;
};

/// One simulated node's slice of the event loop during a parallel run:
/// its own 4-ary heap, slot store, outgoing mailboxes and stat deltas.
/// Within a window a shard is touched only by the host thread that
/// claimed it (home thread or stealer — exactly one per window), except
/// for `outbox[d]`, which the thread merging shard d drains strictly
/// after the window barrier.
struct alignas(64) Machine::Shard {
  std::uint32_t node = 0;
  util::DaryHeap<Event, EventOrder> heap;
  std::vector<Task> slots;
  std::vector<std::uint32_t> free_slots;
  /// outbox[d]: arrivals destined to node d, merged at the barrier.
  /// Boxes keep their capacity across windows and runs (ParallelState
  /// persists them), so steady-state merges never reallocate.
  std::vector<std::vector<Mail>> outbox;
  /// Max event time processed on this shard — the shard-local mirror of
  /// current_time_ (identical inside a task: the executing PE's clock
  /// is always >= the current event's time on both paths).
  SimTime now = 0.0;
  /// Exclusive end of this shard's current window.  Fixed mode: global
  /// min + lookahead for every shard.  Adaptive mode: min over OTHER
  /// shards' minima + lookahead, and shrunk on the fly when this shard
  /// buffers a cross-node send (a reaction to mail arriving at A cannot
  /// land back here before A + lookahead).
  SimTime window_limit = 0.0;
  /// Floor other shards' windows rely on: no cross-node event created
  /// by this shard may land before (this shard's window-start heap
  /// minimum) + lookahead.  Sends satisfy it by the network model;
  /// cross-node schedule_at inside it is a causality bug (asserted).
  SimTime cross_floor = 0.0;
  /// Inter-node latency and window mode, copied per run so the send
  /// hot path never reaches back into the Machine.
  SimTime lookahead = 0.0;
  bool adaptive = false;
  /// Set when this shard buffered cross-node mail in the current
  /// window; ORed into the shared merge flag after the shard drains.
  bool sent_mail = false;
  RunStats stats;
  std::int64_t ready_delta = 0;  // folded into ready_tasks_ after the run
};

/// Parallel-run scratch that outlives a single run(): shard heaps, slot
/// stores and mailboxes keep their capacity, so a serving workload that
/// calls run() per query batch stops paying setup/regrow per call.
struct Machine::ParallelState {
  std::vector<Shard> shards;
};

thread_local Machine::Shard* Machine::tls_shard_ = nullptr;

void Pe::send(PeId to, std::size_t bytes, Task task) {
  machine_->send(id_, to, bytes, std::move(task));
}

void Pe::enqueue_local(Task task) {
  // A local continuation bypasses the network entirely: it lands at the
  // back of this PE's queue at the current moment.
  machine_->schedule_at(current_time_, id_, std::move(task));
}

Machine::Machine(Topology topology, NetworkModel network)
    : topology_(topology), network_(network) {
  topology_.validate();
  ACIC_ASSERT_MSG(topology_.nodes < (1u << 16),
                  "composite event keys hold the node id in 16 bits");
  pes_.resize(topology_.num_entities());
  entity_node_.resize(topology_.num_entities());
  for (PeId p = 0; p < topology_.num_entities(); ++p) {
    pes_[p].id_ = p;
    pes_[p].machine_ = this;
    entity_node_[p] = topology_.node_of(p);
  }
  node_seq_.resize(topology_.nodes);
  // Steady-state queue depth is a small multiple of the PE count; seed the
  // backing stores so warm-up never reallocates mid-sift.
  const std::size_t hint =
      std::max<std::size_t>(1024, 4 * topology_.num_entities());
  queue_.reserve(hint);
  task_slots_.reserve(hint);
  free_slots_.reserve(hint);
}

// Parked tasks (arrivals never executed because run() hit its time limit)
// are destroyed with task_slots_.
Machine::~Machine() = default;

void Machine::set_registry(obs::Registry* registry) {
  flush_ready_sample();  // pending sample belongs to the old registry
  registry_ = registry;
  if (registry_ == nullptr) {
    obs_.reset();
    return;
  }
  obs_ = std::make_unique<obs::RuntimeCounters>(
      obs::define_runtime_counters(*registry_));
}

void Machine::send(PeId from, PeId to, std::size_t bytes, Task task) {
  ACIC_ASSERT(from < num_entities() && to < num_entities());
  Pe& sender = pes_[from];
  const Locality loc = topology_.locality(from, to);

  // The sender pays its per-message overhead now (advancing its clock if
  // it is inside a task), then the message departs.
  sender.charge(network_.send_overhead_us);
  Shard* const sh = tls_shard_;
  // Inside a task the sender's clock always dominates this max (its
  // clock was set to >= the current event's time before the task ran),
  // so the shard-local floor and the global one yield the same bits.
  const SimTime floor_now = sh != nullptr ? sh->now : current_time_;
  const SimTime departure = std::max(sender.current_time_, floor_now);
  const SimTime arrival = departure + network_.transfer_time(loc, bytes);

  if (sh != nullptr) {
    ACIC_HOT_ASSERT(entity_node_[from] == sh->node);
    ++sh->stats.messages_sent;
    sh->stats.bytes_sent += bytes;
  } else {
    ++messages_sent_;
    bytes_sent_ += bytes;
    if (active_stats_ != nullptr) {
      ++active_stats_->messages_sent;
      active_stats_->bytes_sent += bytes;
    }
    if (registry_ != nullptr) [[unlikely]] {
      registry_->add(obs_->messages(loc), from, 1, departure);
      registry_->add(obs_->bytes(loc), from, bytes, departure);
    }
  }

  // The receiver pays its per-message overhead when it picks the task up
  // (flagged on the queued task; no wrapper closure).
  push_arrival(arrival, to, std::move(task), /*charge_recv=*/true);
}

void Machine::schedule_at(SimTime time, PeId pe, Task task) {
  ACIC_ASSERT(pe < num_entities());
  push_arrival(std::max(time, 0.0), pe, std::move(task),
               /*charge_recv=*/false);
}

IdleHandlerId Machine::add_idle_handler(PeId pe, IdleHandler handler) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(!pes_[pe].idle_polling_,
                  "cannot register an idle handler from inside an idle "
                  "poll on the same PE");
  const IdleHandlerId id = next_idle_handler_id_++;
  pes_[pe].idle_handlers_.push_back(Pe::IdleEntry{id, std::move(handler)});
  // If the PE is already asleep, poke it so the new handler gets a chance
  // to run; an exec event on an empty queue degrades to an idle poll.
  const SimTime now = tls_shard_ != nullptr ? tls_shard_->now : current_time_;
  ensure_exec_scheduled(pes_[pe], std::max(now, pes_[pe].avail_time_));
  return id;
}

void Machine::remove_idle_handler(PeId pe, IdleHandlerId id) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(!pes_[pe].idle_polling_,
                  "cannot deregister an idle handler from inside an idle "
                  "poll on the same PE");
  auto& handlers = pes_[pe].idle_handlers_;
  for (std::size_t i = 0; i < handlers.size(); ++i) {
    if (handlers[i].id == id) {
      handlers.erase(handlers.begin() + static_cast<std::ptrdiff_t>(i));
      if (pes_[pe].idle_cursor_ > i) --pes_[pe].idle_cursor_;
      return;
    }
  }
  ACIC_ASSERT_MSG(false, "idle handler id not registered on this PE");
}

std::size_t Machine::num_idle_handlers(PeId pe) const {
  ACIC_ASSERT(pe < num_entities());
  return pes_[pe].idle_handlers_.size();
}

void Machine::set_speed_factor(PeId pe, double factor) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(factor > 0.0, "speed factor must be positive");
  pes_[pe].speed_factor_ = factor;
}

std::uint32_t Machine::acquire_slot(Task task) {
  Shard* const sh = tls_shard_;
  std::vector<Task>& slots = sh != nullptr ? sh->slots : task_slots_;
  std::vector<std::uint32_t>& free_list =
      sh != nullptr ? sh->free_slots : free_slots_;
  if (!free_list.empty()) {
    const std::uint32_t slot = free_list.back();
    free_list.pop_back();
    slots[slot] = std::move(task);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots.size());
  ACIC_ASSERT_MSG(slot < kNoSlot, "task slot store exceeded 2^30 entries");
  slots.push_back(std::move(task));
  return slot;
}

Task Machine::release_slot(std::uint32_t slot) {
  Shard* const sh = tls_shard_;
  std::vector<Task>& slots = sh != nullptr ? sh->slots : task_slots_;
  Task task = std::move(slots[slot]);
  slots[slot] = nullptr;
  (sh != nullptr ? sh->free_slots : free_slots_).push_back(slot);
  return task;
}

void Machine::note_ready_depth(SimTime time) {
  // Same-timestamp changes coalesce: only the last value at a given
  // instant is observable, so one series append per distinct time.
  if (ready_sample_pending_ && ready_sample_time_ != time) {
    registry_->append(obs_->ready_tasks, ready_sample_time_,
                      ready_sample_value_);
  }
  ready_sample_pending_ = true;
  ready_sample_time_ = time;
  ready_sample_value_ = static_cast<double>(ready_tasks_);
}

void Machine::flush_ready_sample() {
  if (ready_sample_pending_) {
    registry_->append(obs_->ready_tasks, ready_sample_time_,
                      ready_sample_value_);
    ready_sample_pending_ = false;
  }
}

void Machine::push_arrival(SimTime time, PeId pe, Task task,
                           bool charge_recv) {
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    const std::uint32_t dest = entity_node_[pe];
    const std::uint64_t seq = next_seq(sh->node);
    if (dest == sh->node) {
      const std::uint32_t slot = acquire_slot(std::move(task));
      sh->heap.push(Event{time, seq, pe,
                          charge_recv ? (kRecvBit | slot) : slot});
    } else {
      // Conservative lookahead: a cross-node arrival must land at or
      // after the floor other shards' windows were computed against.
      // Sends always satisfy this (inter-node transfer time >= the
      // lookahead, and the departure is at or after this shard's
      // window-start minimum); a cross-node schedule_at below it would
      // be a causality violation.
      ACIC_ASSERT_MSG(time >= sh->cross_floor,
                      "cross-node event scheduled inside the conservative "
                      "window (use a send, or run with --threads 1)");
      sh->outbox[dest].push_back(
          Mail{time, seq, pe, charge_recv, std::move(task)});
      sh->sent_mail = true;
      if (sh->adaptive) {
        // Feedback bound: a reaction to this mail cannot arrive here
        // before its delivery plus one more inter-node hop.  Always at
        // or ahead of the execution point (arrival >= event time +
        // lookahead), so the shrink never invalidates executed events.
        const SimTime feedback = time + sh->lookahead;
        if (feedback < sh->window_limit) sh->window_limit = feedback;
      }
    }
    return;
  }
  const std::uint32_t node = running_ ? current_node_ : entity_node_[pe];
  const std::uint32_t slot = acquire_slot(std::move(task));
  queue_.push(Event{time, next_seq(node), pe,
                    charge_recv ? (kRecvBit | slot) : slot});
}

void Machine::push_exec(SimTime time, PeId pe) {
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    ACIC_HOT_ASSERT(entity_node_[pe] == sh->node);
    sh->heap.push(Event{time, next_seq(sh->node), pe, kExecBit | kNoSlot});
    return;
  }
  const std::uint32_t node = running_ ? current_node_ : entity_node_[pe];
  queue_.push(Event{time, next_seq(node), pe, kExecBit | kNoSlot});
}

void Machine::ensure_exec_scheduled(Pe& pe, SimTime earliest) {
  if (pe.exec_scheduled_) return;
  pe.exec_scheduled_ = true;
  push_exec(std::max(earliest, pe.avail_time_), pe.id_);
}

void Machine::handle_arrival(const Event& event) {
  Pe& pe = pes_[event.pe];
  // The queued-task word reuses the event's packing (recv bit + slot).
  pe.fifo_.push_back(event.packed);
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    ++sh->ready_delta;
  } else {
    ++ready_tasks_;
    if (registry_ != nullptr) [[unlikely]] {
      note_ready_depth(event.time);
    }
  }
  ensure_exec_scheduled(pe, event.time);
}

void Machine::handle_exec(const Event& event) {
  Pe& pe = pes_[event.pe];
  ACIC_ASSERT(pe.exec_scheduled_);
  pe.current_time_ = std::max(event.time, pe.avail_time_);
  Shard* const sh = tls_shard_;

  if (!pe.fifo_.empty()) {
    const std::uint32_t queued = pe.fifo_.pop_front();
    // Move the task out of its slot before running it: the task may
    // enqueue new arrivals, which can grow (reallocate) the slot store.
    Task task = release_slot(queued & kSlotMask);
    ++pe.tasks_run_;
    if (sh != nullptr) {
      --sh->ready_delta;
      ++sh->stats.tasks_executed;
    } else {
      --ready_tasks_;
      if (active_stats_ != nullptr) ++active_stats_->tasks_executed;
      if (registry_ != nullptr) [[unlikely]] {
        registry_->add(obs_->tasks_executed, pe.id_, 1, pe.current_time_);
        note_ready_depth(pe.current_time_);
      }
    }
    const SimTime span_start = pe.current_time_;
    // The receiver's per-message overhead is part of the task's span,
    // charged exactly where the old wrapper closure charged it.
    if ((queued & kRecvBit) != 0) pe.charge(network_.recv_overhead_us);
    task(pe);
    if (span_hook_) {
      span_hook_(pe.id_, span_start, pe.current_time_, false);
    }
    pe.avail_time_ = pe.current_time_;
    // Stay scheduled: either more tasks are queued or the idle handler
    // deserves a poll once this task's simulated time has elapsed.
    push_exec(pe.avail_time_, pe.id_);
    return;
  }

  // Queue empty: poll the idle handlers (Charm++'s when-idle callback).
  // With several registered (multi-tenant engines sharing the PE), one
  // poll tries each in turn — starting after the handler that last did
  // work, so no engine can starve the others — and stops at the first
  // that reports work.
  if (!pe.idle_handlers_.empty()) {
    const SimTime span_start = pe.current_time_;
    pe.charge(idle_poll_cost_us_);
    if (sh != nullptr) {
      ++sh->stats.idle_polls;
    } else {
      if (active_stats_ != nullptr) ++active_stats_->idle_polls;
      if (registry_ != nullptr) [[unlikely]] {
        registry_->add(obs_->idle_polls, pe.id_, 1, pe.current_time_);
      }
    }
    bool did_work = false;
    pe.idle_polling_ = true;
    const std::size_t n = pe.idle_handlers_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = (pe.idle_cursor_ + i) % n;
      if (pe.idle_handlers_[idx].handler(pe)) {
        did_work = true;
        pe.idle_cursor_ = (idx + 1) % n;
        break;
      }
    }
    pe.idle_polling_ = false;
    if (span_hook_) {
      // Idle polls that found work count as busy spans.
      span_hook_(pe.id_, span_start, pe.current_time_, !did_work);
    }
    pe.avail_time_ = pe.current_time_;
    if (did_work || !pe.fifo_.empty()) {
      push_exec(pe.avail_time_, pe.id_);
      return;
    }
  }
  pe.exec_scheduled_ = false;  // sleep until the next arrival
}

RunStats Machine::run(SimTime time_limit) {
  if (threads_ > 1 && topology_.nodes > 1 && registry_ == nullptr &&
      !span_hook_ && network_.latency_inter_node_us > 0.0) {
    return run_parallel(time_limit);
  }
  RunStats stats;
  last_threads_used_ = 1;
  active_stats_ = &stats;
  running_ = true;
  while (!queue_.empty()) {
    if (queue_.top().time > time_limit) {
      stats.hit_time_limit = true;
      break;
    }
    const Event event = queue_.top();  // POD copy; payload stays parked
    queue_.pop();
    ++events_processed_;
    ++stats.events_processed;
    current_time_ = std::max(current_time_, event.time);
    // Pushes triggered by this event key on its node — the same node a
    // parallel shard would key them on.
    current_node_ = entity_node_[event.pe];
    if (event.is_exec()) {
      handle_exec(event);
    } else {
      handle_arrival(event);
    }
  }
  running_ = false;
  if (registry_ != nullptr) [[unlikely]] {
    flush_ready_sample();
  }
  stats.end_time_us = current_time_;
  active_stats_ = nullptr;
  return stats;
}

RunStats Machine::run_parallel(SimTime time_limit) {
  const std::uint32_t nodes = topology_.nodes;
  const unsigned nthreads = std::min<unsigned>(threads_, nodes);
  // Conservative lookahead: no message crosses nodes in less than the
  // inter-node wire latency (transfer_time = latency + bytes/bandwidth),
  // so no shard can be affected by another sooner than that.
  const SimTime lookahead = network_.latency_inter_node_us;
  const bool adaptive = window_mode_ == WindowMode::kAdaptive;
  last_threads_used_ = nthreads;

  if (par_ == nullptr) par_ = std::make_unique<ParallelState>();
  std::vector<Shard>& shards = par_->shards;
  if (shards.size() != nodes) {
    shards.clear();
    shards.resize(nodes);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      shards[n].node = n;
      shards[n].outbox.resize(nodes);
    }
  }
  for (std::uint32_t n = 0; n < nodes; ++n) {
    Shard& sh = shards[n];
    sh.now = current_time_;
    sh.lookahead = lookahead;
    sh.adaptive = adaptive;
    sh.sent_mail = false;
    sh.stats = RunStats{};
    sh.ready_delta = 0;
  }
  // Redistribute the global heap into the per-node shards, migrating
  // parked tasks into each shard's own slot store.  Insertion order is
  // irrelevant: the comparator is a total order, so every heap pops the
  // same sequence regardless of how it was filled.
  while (!queue_.empty()) {
    const Event e = queue_.top();
    queue_.pop();
    Shard& sh = shards[entity_node_[e.pe]];
    if (e.is_exec()) {
      sh.heap.push(e);
      continue;
    }
    Task task = release_slot(e.slot());
    tls_shard_ = &sh;
    const std::uint32_t slot = acquire_slot(std::move(task));
    tls_shard_ = nullptr;
    sh.heap.push(Event{e.time, e.seq, e.pe, (e.packed & kRecvBit) | slot});
  }

  // --- Shared window-scheduling state -------------------------------
  // Per-shard heap minima at the window boundary, written by the thread
  // that merged/scanned the shard in phase A, reduced once by the
  // barrier's completion step.
  struct alignas(64) PaddedTime {
    SimTime v = kNoTimeLimit;
  };
  std::vector<PaddedTime> shard_min(nodes);
  // The window plan every thread reads after the reduction barrier.
  struct Plan {
    SimTime min1 = kNoTimeLimit;  // global earliest event time
    SimTime min2 = kNoTimeLimit;  // earliest on any shard != node1
    std::uint32_t node1 = 0;      // shard holding min1 (lowest id on ties)
    bool run = false;             // execute a window this round?
    bool merge = false;           // did the previous window buffer mail?
    bool hit_limit = false;
  } plan;
  std::uint64_t windows = 0;
  std::uint64_t window_merges = 0;
  // Phase-A claim cursor (merge + minima scan, one claimant per shard).
  std::atomic<std::uint32_t> scan_cursor{0};
  // Phase-B claim cursors: thread t owns shards [range[t], range[t+1]);
  // a thread drains its own range first, then steals from the others.
  struct alignas(64) Cursor {
    std::atomic<std::uint32_t> pos{0};
  };
  std::vector<Cursor> claim(nthreads);
  std::vector<std::uint32_t> range(nthreads + 1);
  for (unsigned t = 0; t <= nthreads; ++t) range[t] = t * nodes / nthreads;
  std::atomic<bool> mail_flag{false};
  std::vector<std::uint64_t> steal_counts(nthreads, 0);

  // Runs on the last thread into the reduction barrier: one O(nodes)
  // scan decides the window for everyone (min1/min2 with the arg-min
  // shard, ties to the lowest node id — deterministic, though results
  // never depend on it) and re-arms the phase-B claim cursors.
  SpinBarrier window_barrier(nthreads, [&] {
    SimTime min1 = kNoTimeLimit;
    SimTime min2 = kNoTimeLimit;
    std::uint32_t node1 = 0;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      const SimTime v = shard_min[n].v;
      if (v < min1) {
        min2 = min1;
        min1 = v;
        node1 = n;
      } else if (v < min2) {
        min2 = v;
      }
    }
    plan.min1 = min1;
    plan.min2 = min2;
    plan.node1 = node1;
    plan.run = min1 != kNoTimeLimit && min1 <= time_limit;
    if (min1 != kNoTimeLimit && min1 > time_limit) plan.hit_limit = true;
    if (plan.run) ++windows;
    for (unsigned t = 0; t < nthreads; ++t) {
      claim[t].pos.store(range[t], std::memory_order_relaxed);
    }
  });
  // Runs on the last thread out of a window: capture whether any shard
  // buffered cross-node mail (windows without any skip the merge scan
  // entirely) and re-arm the phase-A cursor.
  SpinBarrier drain_barrier(nthreads, [&] {
    plan.merge = mail_flag.exchange(false, std::memory_order_relaxed);
    if (plan.merge) ++window_merges;
    scan_cursor.store(0, std::memory_order_relaxed);
  });

  auto worker = [&](unsigned tid) {
    std::uint64_t steals = 0;
    for (;;) {
      // Phase A: merge the previous window's mail (skipped when none
      // was sent) and publish each shard's heap minimum.  Shards are
      // claimed through a shared cursor; the composite seq keys make
      // the merge order automatic regardless of who drains what.
      for (;;) {
        const std::uint32_t d =
            scan_cursor.fetch_add(1, std::memory_order_relaxed);
        if (d >= nodes) break;
        Shard& dst = shards[d];
        if (plan.merge) {
          tls_shard_ = &dst;
          for (std::uint32_t src = 0; src < nodes; ++src) {
            std::vector<Mail>& box = shards[src].outbox[d];
            for (Mail& mail : box) {
              const std::uint32_t slot = acquire_slot(std::move(mail.task));
              dst.heap.push(Event{mail.time, mail.seq, mail.pe,
                                  mail.charge_recv ? (kRecvBit | slot)
                                                   : slot});
            }
            box.clear();  // keeps capacity: boxes never regrow in steady state
          }
          tls_shard_ = nullptr;
        }
        shard_min[d].v =
            dst.heap.empty() ? kNoTimeLimit : dst.heap.top().time;
      }
      window_barrier.arrive_and_wait();
      // Every thread reads the same plan, so all break together;
      // mailboxes are empty here (drained in phase A).
      if (!plan.run) break;

      // Phase B: claim and execute shards — own range first, then steal
      // from whichever thread still has unclaimed shards.  Ownership
      // migration cannot change results: a shard's event order is fully
      // determined by its heap's (time, seq) keys, and exactly one
      // thread runs a given shard per window.
      for (unsigned v = 0; v < nthreads; ++v) {
        const unsigned owner = (tid + v) % nthreads;
        const std::uint32_t owner_hi = range[owner + 1];
        for (;;) {
          if (claim[owner].pos.load(std::memory_order_relaxed) >= owner_hi) {
            break;
          }
          const std::uint32_t s =
              claim[owner].pos.fetch_add(1, std::memory_order_relaxed);
          if (s >= owner_hi) break;
          Shard& sh = shards[s];
          if (sh.heap.empty()) continue;
          if (owner != tid) ++steals;
          // Fixed window: every shard stops at min1 + lookahead.
          // Adaptive: shard d stops at (min over OTHER shards) +
          // lookahead — for everyone but the arg-min shard that equals
          // the fixed bound; the arg-min shard runs on to min2 +
          // lookahead.  Safe because no other shard can inject an event
          // below its own minimum + lookahead, and cascades through
          // this shard's own sends are cut off by the feedback shrink
          // in push_arrival.
          sh.window_limit = adaptive && s == plan.node1
                                ? plan.min2 + lookahead
                                : plan.min1 + lookahead;
          sh.cross_floor = shard_min[s].v + lookahead;
          tls_shard_ = &sh;
          while (!sh.heap.empty()) {
            const Event& top = sh.heap.top();
            if (top.time >= sh.window_limit || top.time > time_limit) break;
            const Event e = top;
            sh.heap.pop();
            ++sh.stats.events_processed;
            sh.now = std::max(sh.now, e.time);
            if (e.is_exec()) {
              handle_exec(e);
            } else {
              handle_arrival(e);
            }
          }
          tls_shard_ = nullptr;
          if (sh.sent_mail) {
            sh.sent_mail = false;
            mail_flag.store(true, std::memory_order_relaxed);
          }
        }
      }
      drain_barrier.arrive_and_wait();
    }
    steal_counts[tid] = steals;
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (unsigned tid = 1; tid < nthreads; ++tid) {
    pool.emplace_back(worker, tid);
  }
  worker(0);
  for (std::thread& t : pool) t.join();

  // Fold shard deltas back into the machine and merge unprocessed
  // events (a hit time limit) back into the global queue.
  RunStats stats;
  stats.hit_time_limit = plan.hit_limit;
  stats.threads_used = nthreads;
  stats.windows = windows;
  stats.window_merges = window_merges;
  for (unsigned t = 0; t < nthreads; ++t) {
    stats.shard_steals += steal_counts[t];
  }
  windows_ += windows;
  window_merges_ += window_merges;
  shard_steals_ += stats.shard_steals;
  for (Shard& sh : shards) {
    stats.tasks_executed += sh.stats.tasks_executed;
    stats.idle_polls += sh.stats.idle_polls;
    stats.messages_sent += sh.stats.messages_sent;
    stats.bytes_sent += sh.stats.bytes_sent;
    stats.events_processed += sh.stats.events_processed;
    messages_sent_ += sh.stats.messages_sent;
    bytes_sent_ += sh.stats.bytes_sent;
    events_processed_ += sh.stats.events_processed;
    ready_tasks_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(ready_tasks_) + sh.ready_delta);
    current_time_ = std::max(current_time_, sh.now);
    while (!sh.heap.empty()) {
      const Event e = sh.heap.top();
      sh.heap.pop();
      if (e.is_exec()) {
        queue_.push(e);
        continue;
      }
      Task task = std::move(sh.slots[e.slot()]);
      const std::uint32_t slot = acquire_slot(std::move(task));
      queue_.push(
          Event{e.time, e.seq, e.pe, (e.packed & kRecvBit) | slot});
    }
    // Every parked task has been moved out (heap drained); dropping the
    // bookkeeping keeps the capacity for the next run.
    sh.slots.clear();
    sh.free_slots.clear();
  }
  stats.end_time_us = current_time_;
  return stats;
}

}  // namespace acic::runtime
