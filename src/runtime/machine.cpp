#include "src/runtime/machine.hpp"

#include <algorithm>
#include <utility>

#include "src/util/assert.hpp"

namespace acic::runtime {

void Pe::charge(SimTime us) {
  ACIC_ASSERT_MSG(us >= 0.0, "cannot charge negative time");
  const SimTime scaled = us / speed_factor_;
  current_time_ += scaled;
  busy_us_ += scaled;
}

void Pe::send(PeId to, std::size_t bytes, Task task) {
  machine_->send(id_, to, bytes, std::move(task));
}

void Pe::enqueue_local(Task task) {
  // A local continuation bypasses the network entirely: it lands at the
  // back of this PE's queue at the current moment.
  machine_->schedule_at(current_time_, id_, std::move(task));
}

Machine::Machine(Topology topology, NetworkModel network)
    : topology_(topology), network_(network) {
  topology_.validate();
  pes_.resize(topology_.num_entities());
  for (PeId p = 0; p < topology_.num_entities(); ++p) {
    pes_[p].id_ = p;
    pes_[p].machine_ = this;
  }
}

void Machine::send(PeId from, PeId to, std::size_t bytes, Task task) {
  ACIC_ASSERT(from < num_entities() && to < num_entities());
  Pe& sender = pes_[from];
  const Locality loc = topology_.locality(from, to);

  // The sender pays its per-message overhead now (advancing its clock if
  // it is inside a task), then the message departs.
  sender.charge(network_.send_overhead_us);
  const SimTime departure =
      std::max(sender.current_time_, current_time_);
  const SimTime arrival = departure + network_.transfer_time(loc, bytes);

  ++messages_sent_;
  bytes_sent_ += bytes;
  if (active_stats_ != nullptr) {
    ++active_stats_->messages_sent;
    active_stats_->bytes_sent += bytes;
  }

  // The receiver pays its per-message overhead when it picks the task up.
  const SimTime recv_overhead = network_.recv_overhead_us;
  push_arrival(arrival, to,
               [recv_overhead, inner = std::move(task)](Pe& pe) {
                 pe.charge(recv_overhead);
                 inner(pe);
               });
}

void Machine::schedule_at(SimTime time, PeId pe, Task task) {
  ACIC_ASSERT(pe < num_entities());
  push_arrival(std::max(time, 0.0), pe, std::move(task));
}

void Machine::set_idle_handler(PeId pe, IdleHandler handler) {
  ACIC_ASSERT(pe < num_entities());
  pes_[pe].idle_handler_ = std::move(handler);
  // If the PE is already asleep, poke it so the new handler gets a chance
  // to run; an exec event on an empty queue degrades to an idle poll.
  ensure_exec_scheduled(pes_[pe],
                        std::max(current_time_, pes_[pe].avail_time_));
}

void Machine::set_speed_factor(PeId pe, double factor) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(factor > 0.0, "speed factor must be positive");
  pes_[pe].speed_factor_ = factor;
}

void Machine::push_arrival(SimTime time, PeId pe, Task task) {
  queue_.push(Event{time, next_seq_++, pe, EventKind::kArrival,
                    std::move(task)});
}

void Machine::ensure_exec_scheduled(Pe& pe, SimTime earliest) {
  if (pe.exec_scheduled_) return;
  pe.exec_scheduled_ = true;
  queue_.push(Event{std::max(earliest, pe.avail_time_), next_seq_++,
                    pe.id_, EventKind::kExec, nullptr});
}

void Machine::handle_arrival(Event& event) {
  Pe& pe = pes_[event.pe];
  pe.fifo_.push_back(std::move(event.task));
  ensure_exec_scheduled(pe, event.time);
}

void Machine::handle_exec(const Event& event) {
  Pe& pe = pes_[event.pe];
  ACIC_ASSERT(pe.exec_scheduled_);
  pe.current_time_ = std::max(event.time, pe.avail_time_);

  if (!pe.fifo_.empty()) {
    Task task = std::move(pe.fifo_.front());
    pe.fifo_.pop_front();
    ++pe.tasks_run_;
    if (active_stats_ != nullptr) ++active_stats_->tasks_executed;
    const SimTime span_start = pe.current_time_;
    task(pe);
    if (span_hook_) {
      span_hook_(pe.id_, span_start, pe.current_time_, false);
    }
    pe.avail_time_ = pe.current_time_;
    // Stay scheduled: either more tasks are queued or the idle handler
    // deserves a poll once this task's simulated time has elapsed.
    queue_.push(Event{pe.avail_time_, next_seq_++, pe.id_,
                      EventKind::kExec, nullptr});
    return;
  }

  // Queue empty: poll the idle handler (Charm++'s when-idle callback).
  if (pe.idle_handler_) {
    const SimTime span_start = pe.current_time_;
    pe.charge(idle_poll_cost_us_);
    if (active_stats_ != nullptr) ++active_stats_->idle_polls;
    const bool did_work = pe.idle_handler_(pe);
    if (span_hook_) {
      // Idle polls that found work count as busy spans.
      span_hook_(pe.id_, span_start, pe.current_time_, !did_work);
    }
    pe.avail_time_ = pe.current_time_;
    if (did_work || !pe.fifo_.empty()) {
      queue_.push(Event{pe.avail_time_, next_seq_++, pe.id_,
                        EventKind::kExec, nullptr});
      return;
    }
  }
  pe.exec_scheduled_ = false;  // sleep until the next arrival
}

RunStats Machine::run(SimTime time_limit) {
  RunStats stats;
  active_stats_ = &stats;
  while (!queue_.empty()) {
    if (queue_.top().time > time_limit) {
      stats.hit_time_limit = true;
      break;
    }
    // priority_queue::top() is const; the arrival task must be moved out,
    // so we copy the metadata and const_cast the payload — safe because
    // the element is popped immediately afterwards.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    current_time_ = std::max(current_time_, event.time);
    switch (event.kind) {
      case EventKind::kArrival:
        handle_arrival(event);
        break;
      case EventKind::kExec:
        handle_exec(event);
        break;
    }
  }
  stats.end_time_us = current_time_;
  active_stats_ = nullptr;
  return stats;
}

}  // namespace acic::runtime
