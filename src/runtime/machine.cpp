#include "src/runtime/machine.hpp"

#include <algorithm>
#include <utility>

#include "src/obs/registry.hpp"
#include "src/util/assert.hpp"

namespace acic::runtime {

void Pe::send(PeId to, std::size_t bytes, Task task) {
  machine_->send(id_, to, bytes, std::move(task));
}

void Pe::enqueue_local(Task task) {
  // A local continuation bypasses the network entirely: it lands at the
  // back of this PE's queue at the current moment.
  machine_->schedule_at(current_time_, id_, std::move(task));
}

Machine::Machine(Topology topology, NetworkModel network)
    : topology_(topology), network_(network) {
  topology_.validate();
  pes_.resize(topology_.num_entities());
  for (PeId p = 0; p < topology_.num_entities(); ++p) {
    pes_[p].id_ = p;
    pes_[p].machine_ = this;
  }
  // Steady-state queue depth is a small multiple of the PE count; seed the
  // backing stores so warm-up never reallocates mid-sift.
  const std::size_t hint =
      std::max<std::size_t>(1024, 4 * topology_.num_entities());
  queue_.reserve(hint);
  task_slots_.reserve(hint);
  free_slots_.reserve(hint);
}

// Parked tasks (arrivals never executed because run() hit its time limit)
// are destroyed with task_slots_.
Machine::~Machine() = default;

void Machine::set_registry(obs::Registry* registry) {
  flush_ready_sample();  // pending sample belongs to the old registry
  registry_ = registry;
  if (registry_ == nullptr) {
    obs_.reset();
    return;
  }
  obs_ = std::make_unique<obs::RuntimeCounters>(
      obs::define_runtime_counters(*registry_));
}

void Machine::send(PeId from, PeId to, std::size_t bytes, Task task) {
  ACIC_ASSERT(from < num_entities() && to < num_entities());
  Pe& sender = pes_[from];
  const Locality loc = topology_.locality(from, to);

  // The sender pays its per-message overhead now (advancing its clock if
  // it is inside a task), then the message departs.
  sender.charge(network_.send_overhead_us);
  const SimTime departure =
      std::max(sender.current_time_, current_time_);
  const SimTime arrival = departure + network_.transfer_time(loc, bytes);

  ++messages_sent_;
  bytes_sent_ += bytes;
  if (active_stats_ != nullptr) {
    ++active_stats_->messages_sent;
    active_stats_->bytes_sent += bytes;
  }
  if (registry_ != nullptr) [[unlikely]] {
    registry_->add(obs_->messages(loc), from, 1, departure);
    registry_->add(obs_->bytes(loc), from, bytes, departure);
  }

  // The receiver pays its per-message overhead when it picks the task up
  // (flagged on the queued task; no wrapper closure).
  push_arrival(arrival, to, std::move(task), /*charge_recv=*/true);
}

void Machine::schedule_at(SimTime time, PeId pe, Task task) {
  ACIC_ASSERT(pe < num_entities());
  push_arrival(std::max(time, 0.0), pe, std::move(task),
               /*charge_recv=*/false);
}

void Machine::set_idle_handler(PeId pe, IdleHandler handler) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(pes_[pe].idle_handlers_.empty(),
                  "an idle handler is already registered on this PE; "
                  "use add_idle_handler to multiplex (multi-tenant "
                  "engines must not clobber each other)");
  add_idle_handler(pe, std::move(handler));
}

IdleHandlerId Machine::add_idle_handler(PeId pe, IdleHandler handler) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(!pes_[pe].idle_polling_,
                  "cannot register an idle handler from inside an idle "
                  "poll on the same PE");
  const IdleHandlerId id = next_idle_handler_id_++;
  pes_[pe].idle_handlers_.push_back(Pe::IdleEntry{id, std::move(handler)});
  // If the PE is already asleep, poke it so the new handler gets a chance
  // to run; an exec event on an empty queue degrades to an idle poll.
  ensure_exec_scheduled(pes_[pe],
                        std::max(current_time_, pes_[pe].avail_time_));
  return id;
}

void Machine::remove_idle_handler(PeId pe, IdleHandlerId id) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(!pes_[pe].idle_polling_,
                  "cannot deregister an idle handler from inside an idle "
                  "poll on the same PE");
  auto& handlers = pes_[pe].idle_handlers_;
  for (std::size_t i = 0; i < handlers.size(); ++i) {
    if (handlers[i].id == id) {
      handlers.erase(handlers.begin() + static_cast<std::ptrdiff_t>(i));
      if (pes_[pe].idle_cursor_ > i) --pes_[pe].idle_cursor_;
      return;
    }
  }
  ACIC_ASSERT_MSG(false, "idle handler id not registered on this PE");
}

std::size_t Machine::num_idle_handlers(PeId pe) const {
  ACIC_ASSERT(pe < num_entities());
  return pes_[pe].idle_handlers_.size();
}

void Machine::set_speed_factor(PeId pe, double factor) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(factor > 0.0, "speed factor must be positive");
  pes_[pe].speed_factor_ = factor;
}

std::uint32_t Machine::acquire_slot(Task task) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    task_slots_[slot] = std::move(task);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(task_slots_.size());
  ACIC_ASSERT_MSG(slot < kNoSlot, "task slot store exceeded 2^30 entries");
  task_slots_.push_back(std::move(task));
  return slot;
}

Task Machine::release_slot(std::uint32_t slot) {
  Task task = std::move(task_slots_[slot]);
  task_slots_[slot] = nullptr;
  free_slots_.push_back(slot);
  return task;
}

void Machine::note_ready_depth(SimTime time) {
  // Same-timestamp changes coalesce: only the last value at a given
  // instant is observable, so one series append per distinct time.
  if (ready_sample_pending_ && ready_sample_time_ != time) {
    registry_->append(obs_->ready_tasks, ready_sample_time_,
                      ready_sample_value_);
  }
  ready_sample_pending_ = true;
  ready_sample_time_ = time;
  ready_sample_value_ = static_cast<double>(ready_tasks_);
}

void Machine::flush_ready_sample() {
  if (ready_sample_pending_) {
    registry_->append(obs_->ready_tasks, ready_sample_time_,
                      ready_sample_value_);
    ready_sample_pending_ = false;
  }
}

void Machine::push_arrival(SimTime time, PeId pe, Task task,
                           bool charge_recv) {
  const std::uint32_t slot = acquire_slot(std::move(task));
  queue_.push(Event{time, next_seq_++, pe,
                    charge_recv ? (kRecvBit | slot) : slot});
}

void Machine::ensure_exec_scheduled(Pe& pe, SimTime earliest) {
  if (pe.exec_scheduled_) return;
  pe.exec_scheduled_ = true;
  queue_.push(Event{std::max(earliest, pe.avail_time_), next_seq_++,
                    pe.id_, kExecBit | kNoSlot});
}

void Machine::handle_arrival(const Event& event) {
  Pe& pe = pes_[event.pe];
  // The queued-task word reuses the event's packing (recv bit + slot).
  pe.fifo_.push_back(event.packed);
  ++ready_tasks_;
  if (registry_ != nullptr) [[unlikely]] {
    note_ready_depth(event.time);
  }
  ensure_exec_scheduled(pe, event.time);
}

void Machine::handle_exec(const Event& event) {
  Pe& pe = pes_[event.pe];
  ACIC_ASSERT(pe.exec_scheduled_);
  pe.current_time_ = std::max(event.time, pe.avail_time_);

  if (!pe.fifo_.empty()) {
    const std::uint32_t queued = pe.fifo_.pop_front();
    // Move the task out of its slot before running it: the task may
    // enqueue new arrivals, which can grow (reallocate) the slot store.
    Task task = release_slot(queued & kSlotMask);
    ++pe.tasks_run_;
    --ready_tasks_;
    if (active_stats_ != nullptr) ++active_stats_->tasks_executed;
    if (registry_ != nullptr) [[unlikely]] {
      registry_->add(obs_->tasks_executed, pe.id_, 1, pe.current_time_);
      note_ready_depth(pe.current_time_);
    }
    const SimTime span_start = pe.current_time_;
    // The receiver's per-message overhead is part of the task's span,
    // charged exactly where the old wrapper closure charged it.
    if ((queued & kRecvBit) != 0) pe.charge(network_.recv_overhead_us);
    task(pe);
    if (span_hook_) {
      span_hook_(pe.id_, span_start, pe.current_time_, false);
    }
    pe.avail_time_ = pe.current_time_;
    // Stay scheduled: either more tasks are queued or the idle handler
    // deserves a poll once this task's simulated time has elapsed.
    queue_.push(Event{pe.avail_time_, next_seq_++, pe.id_,
                      kExecBit | kNoSlot});
    return;
  }

  // Queue empty: poll the idle handlers (Charm++'s when-idle callback).
  // With several registered (multi-tenant engines sharing the PE), one
  // poll tries each in turn — starting after the handler that last did
  // work, so no engine can starve the others — and stops at the first
  // that reports work.
  if (!pe.idle_handlers_.empty()) {
    const SimTime span_start = pe.current_time_;
    pe.charge(idle_poll_cost_us_);
    if (active_stats_ != nullptr) ++active_stats_->idle_polls;
    if (registry_ != nullptr) [[unlikely]] {
      registry_->add(obs_->idle_polls, pe.id_, 1, pe.current_time_);
    }
    bool did_work = false;
    pe.idle_polling_ = true;
    const std::size_t n = pe.idle_handlers_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = (pe.idle_cursor_ + i) % n;
      if (pe.idle_handlers_[idx].handler(pe)) {
        did_work = true;
        pe.idle_cursor_ = (idx + 1) % n;
        break;
      }
    }
    pe.idle_polling_ = false;
    if (span_hook_) {
      // Idle polls that found work count as busy spans.
      span_hook_(pe.id_, span_start, pe.current_time_, !did_work);
    }
    pe.avail_time_ = pe.current_time_;
    if (did_work || !pe.fifo_.empty()) {
      queue_.push(Event{pe.avail_time_, next_seq_++, pe.id_,
                        kExecBit | kNoSlot});
      return;
    }
  }
  pe.exec_scheduled_ = false;  // sleep until the next arrival
}

RunStats Machine::run(SimTime time_limit) {
  RunStats stats;
  active_stats_ = &stats;
  while (!queue_.empty()) {
    if (queue_.top().time > time_limit) {
      stats.hit_time_limit = true;
      break;
    }
    const Event event = queue_.top();  // POD copy; payload stays parked
    queue_.pop();
    ++events_processed_;
    ++stats.events_processed;
    current_time_ = std::max(current_time_, event.time);
    if (event.is_exec()) {
      handle_exec(event);
    } else {
      handle_arrival(event);
    }
  }
  if (registry_ != nullptr) [[unlikely]] {
    flush_ready_sample();
  }
  stats.end_time_us = current_time_;
  active_stats_ = nullptr;
  return stats;
}

}  // namespace acic::runtime
