#include "src/runtime/machine.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "src/obs/registry.hpp"
#include "src/runtime/speculation.hpp"
#include "src/util/assert.hpp"

namespace acic::runtime {

namespace {

/// Epoch-based (sense-reversing) spin barrier with a fused completion
/// step: the last thread to arrive runs `completion` — the per-window
/// reduction — before releasing the others, so the reduction costs one
/// O(parties) scan per window total instead of one per thread, and the
/// min-combine needs no second barrier.  Waiters spin briefly then
/// yield; on an undersubscribed host (fewer cores than workers, e.g.
/// the single-core CI container) spinning only steals cycles from the
/// thread everyone is waiting on, so the spin budget is zero there.
///
/// Memory ordering: every arriving thread's acq_rel fetch_add on
/// `arrived_` forms a release sequence read by the last arrival, and
/// the epoch release-store / acquire-load pair publishes the completion
/// step's writes — so all pre-barrier writes happen-before all
/// post-barrier reads, on every thread.  ThreadSanitizer verifies this
/// chain in CI.
class SpinBarrier {
 public:
  template <typename Fn>
  SpinBarrier(unsigned parties, Fn&& completion)
      : parties_(parties), completion_(std::forward<Fn>(completion)) {}

  void arrive_and_wait() {
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      completion_();
      arrived_.store(0, std::memory_order_relaxed);
      epoch_.store(epoch + 1, std::memory_order_release);
      return;
    }
    int spins = spin_budget_;
    while (epoch_.load(std::memory_order_acquire) == epoch) {
      if (spins-- <= 0) std::this_thread::yield();
    }
  }

 private:
  const unsigned parties_;
  const std::function<void()> completion_;
  const int spin_budget_ =
      std::thread::hardware_concurrency() >= parties_ ? 256 : 0;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace

/// A cross-node arrival buffered in its sending shard's outbox until the
/// window barrier.  Carries the seq the sender already assigned, so the
/// receiving heap's comparator alone decides the merge order —
/// (timestamp, src node, per-node sequence), independent of which host
/// thread drained which mailbox first.
struct Machine::Mail {
  SimTime time;
  std::uint64_t seq;
  PeId pe;
  bool charge_recv;
  Task task;
};

/// One simulated node's slice of the event loop during a parallel run:
/// its own 4-ary heap, slot store, outgoing mailboxes and stat deltas.
/// Within a window a shard is touched only by the host thread that
/// claimed it (home thread or stealer — exactly one per window), except
/// for `outbox[d]`, which the thread merging shard d drains strictly
/// after the window barrier.
struct alignas(64) Machine::Shard {
  std::uint32_t node = 0;
  util::DaryHeap<Event, EventOrder> heap;
  std::vector<Task> slots;
  std::vector<std::uint32_t> free_slots;
  /// outbox[d]: arrivals destined to node d, merged at the barrier.
  /// Boxes keep their capacity across windows and runs (ParallelState
  /// persists them), so steady-state merges never reallocate.
  std::vector<std::vector<Mail>> outbox;
  /// Max event time processed on this shard — the shard-local mirror of
  /// current_time_ (identical inside a task: the executing PE's clock
  /// is always >= the current event's time on both paths).
  SimTime now = 0.0;
  /// Exclusive end of this shard's current window.  Fixed mode: global
  /// min + lookahead for every shard.  Adaptive mode: min over OTHER
  /// shards' minima + lookahead, and shrunk on the fly when this shard
  /// buffers a cross-node send (a reaction to mail arriving at A cannot
  /// land back here before A + lookahead).
  SimTime window_limit = 0.0;
  /// Floor other shards' windows rely on: no cross-node event created
  /// by this shard may land before (this shard's window-start heap
  /// minimum) + lookahead.  Sends satisfy it by the network model;
  /// cross-node schedule_at inside it is a causality bug (asserted).
  SimTime cross_floor = 0.0;
  /// Inter-node latency and window mode, copied per run so the send
  /// hot path never reaches back into the Machine.
  SimTime lookahead = 0.0;
  bool adaptive = false;
  /// Set when this shard buffered cross-node mail in the current
  /// window; ORed into the shared merge flag after the shard drains.
  bool sent_mail = false;
  RunStats stats;
  std::int64_t ready_delta = 0;  // folded into ready_tasks_ after the run

  // --- Optimistic mode (EngineMode::kOptimistic) --------------------
  // One speculative epoch at a time: opened at the end of a window's
  // conservative execution, resolved (commit or rollback) at the very
  // next window.  See docs/performance.md, "Optimistic engine".
  /// Entities of this simulated node (their scheduler state is part of
  /// the checkpoint).
  std::vector<PeId> members;
  /// True while the claim loop is executing events speculatively —
  /// routes handle_exec to the clone path and sends to spec_outbox.
  bool spec_active = false;
  /// True while an epoch awaits resolution at the next barrier.
  bool speculating = false;
  /// Exclusive end of the speculation horizon, shrunk on the fly by
  /// the shard's own held sends (a reaction to held mail arriving at A
  /// cannot land back here before A + lookahead).
  SimTime spec_limit = 0.0;
  /// Key of the last (largest) speculatively executed event; mail
  /// merging below it is a straggler.
  Event spec_last{};
  /// Heap minimum at checkpoint time — the conservative value the next
  /// window's plan must see, since the speculatively drained heap no
  /// longer holds it.
  SimTime spec_base_min = kNoTimeLimit;
  std::uint64_t spec_epoch_events = 0;  // events in the pending epoch
  /// Cross-node sends made during the epoch, promoted to `outbox` on
  /// commit, discarded on rollback (the replay regenerates them with
  /// identical keys).
  std::vector<std::vector<Mail>> spec_outbox;
  /// Mail merged at the barrier while the epoch was pending (already
  /// checked not to undercut spec_last): parked here instead of the
  /// heap so a rollback can restore the heap wholesale; joins the heap
  /// at resolution either way.
  std::vector<Mail> pending_mail;
  /// Slots of tasks executed speculatively: the parked original stays
  /// in place for replay (handle_exec ran a clone); freed on commit.
  std::vector<std::uint32_t> spec_freed;
  /// Slots acquired during the epoch: nulled on rollback before the
  /// free-list snapshot is restored.
  std::vector<std::uint32_t> spec_acquired;

  // Checkpoint of shard-local machine state.  Full copies, not
  // journals: everything here is per-node and windows are short, so a
  // copy (whose backing stores persist across epochs) beats journaling
  // complexity.
  util::DaryHeap<Event, EventOrder> ckpt_heap;
  std::vector<std::uint32_t> ckpt_free_slots;
  std::size_t ckpt_slots_size = 0;
  std::uint64_t ckpt_node_seq = 0;
  SimTime ckpt_now = 0.0;
  RunStats ckpt_stats;
  std::int64_t ckpt_ready_delta = 0;
  struct PeCheckpoint {
    Pe::TaskRing fifo;
    SimTime avail_time;
    SimTime current_time;
    bool exec_scheduled;
    std::size_t idle_cursor;
    SimTime busy_us;
    std::uint64_t tasks_run;
  };
  std::vector<PeCheckpoint> ckpt_pes;  // parallel to `members`

  // Host-side diagnostics, deliberately OUTSIDE the checkpoint: a
  // rollback must not erase the record that it happened.
  std::uint64_t spec_rollbacks = 0;
  std::uint64_t spec_commits = 0;
  std::uint64_t spec_events = 0;
  std::uint64_t spec_replayed = 0;
  std::uint64_t spec_ckpt_bytes = 0;
  std::vector<std::pair<double, double>> gvt_lag;  // (floor time, lag)
};

/// Parallel-run scratch that outlives a single run(): shard heaps, slot
/// stores and mailboxes keep their capacity, so a serving workload that
/// calls run() per query batch stops paying setup/regrow per call.
struct Machine::ParallelState {
  std::vector<Shard> shards;
};

thread_local Machine::Shard* Machine::tls_shard_ = nullptr;

void Pe::send(PeId to, std::size_t bytes, Task task) {
  machine_->send(id_, to, bytes, std::move(task));
}

void Pe::enqueue_local(Task task) {
  // A local continuation bypasses the network entirely: it lands at the
  // back of this PE's queue at the current moment.
  machine_->schedule_at(current_time_, id_, std::move(task));
}

Machine::Machine(Topology topology, NetworkModel network)
    : topology_(topology), network_(network) {
  topology_.validate();
  ACIC_ASSERT_MSG(topology_.nodes < (1u << 16),
                  "composite event keys hold the node id in 16 bits");
  pes_.resize(topology_.num_entities());
  entity_node_.resize(topology_.num_entities());
  for (PeId p = 0; p < topology_.num_entities(); ++p) {
    pes_[p].id_ = p;
    pes_[p].machine_ = this;
    entity_node_[p] = topology_.node_of(p);
  }
  node_seq_.resize(topology_.nodes);
  // Steady-state queue depth is a small multiple of the PE count; seed the
  // backing stores so warm-up never reallocates mid-sift.
  const std::size_t hint =
      std::max<std::size_t>(1024, 4 * topology_.num_entities());
  queue_.reserve(hint);
  task_slots_.reserve(hint);
  free_slots_.reserve(hint);
}

// Parked tasks (arrivals never executed because run() hit its time limit)
// are destroyed with task_slots_.
Machine::~Machine() = default;

void Machine::set_registry(obs::Registry* registry) {
  flush_ready_sample();  // pending sample belongs to the old registry
  registry_ = registry;
  if (registry_ == nullptr) {
    obs_.reset();
    return;
  }
  obs_ = std::make_unique<obs::RuntimeCounters>(
      obs::define_runtime_counters(*registry_));
}

void Machine::send(PeId from, PeId to, std::size_t bytes, Task task) {
  ACIC_ASSERT(from < num_entities() && to < num_entities());
  Pe& sender = pes_[from];
  const Locality loc = topology_.locality(from, to);

  // The sender pays its per-message overhead now (advancing its clock if
  // it is inside a task), then the message departs.
  sender.charge(network_.send_overhead_us);
  Shard* const sh = tls_shard_;
  // Inside a task the sender's clock always dominates this max (its
  // clock was set to >= the current event's time before the task ran),
  // so the shard-local floor and the global one yield the same bits.
  const SimTime floor_now = sh != nullptr ? sh->now : current_time_;
  const SimTime departure = std::max(sender.current_time_, floor_now);
  const SimTime arrival = departure + network_.transfer_time(loc, bytes);

  if (sh != nullptr) {
    ACIC_HOT_ASSERT(entity_node_[from] == sh->node);
    ++sh->stats.messages_sent;
    sh->stats.bytes_sent += bytes;
  } else {
    ++messages_sent_;
    bytes_sent_ += bytes;
    if (active_stats_ != nullptr) {
      ++active_stats_->messages_sent;
      active_stats_->bytes_sent += bytes;
    }
    if (registry_ != nullptr) [[unlikely]] {
      registry_->add(obs_->messages(loc), from, 1, departure);
      registry_->add(obs_->bytes(loc), from, bytes, departure);
    }
  }

  // The receiver pays its per-message overhead when it picks the task up
  // (flagged on the queued task; no wrapper closure).
  push_arrival(arrival, to, std::move(task), /*charge_recv=*/true);
}

void Machine::schedule_at(SimTime time, PeId pe, Task task) {
  ACIC_ASSERT(pe < num_entities());
  push_arrival(std::max(time, 0.0), pe, std::move(task),
               /*charge_recv=*/false);
}

IdleHandlerId Machine::add_idle_handler(PeId pe, IdleHandler handler) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(!pes_[pe].idle_polling_,
                  "cannot register an idle handler from inside an idle "
                  "poll on the same PE");
  ACIC_ASSERT_MSG(tls_shard_ == nullptr || !tls_shard_->spec_active,
                  "idle-handler registration is not checkpointed; it "
                  "cannot happen during speculative execution");
  const IdleHandlerId id = next_idle_handler_id_++;
  pes_[pe].idle_handlers_.push_back(Pe::IdleEntry{id, std::move(handler)});
  // If the PE is already asleep, poke it so the new handler gets a chance
  // to run; an exec event on an empty queue degrades to an idle poll.
  const SimTime now = tls_shard_ != nullptr ? tls_shard_->now : current_time_;
  ensure_exec_scheduled(pes_[pe], std::max(now, pes_[pe].avail_time_));
  return id;
}

void Machine::remove_idle_handler(PeId pe, IdleHandlerId id) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(!pes_[pe].idle_polling_,
                  "cannot deregister an idle handler from inside an idle "
                  "poll on the same PE");
  ACIC_ASSERT_MSG(tls_shard_ == nullptr || !tls_shard_->spec_active,
                  "idle-handler deregistration is not checkpointed; it "
                  "cannot happen during speculative execution");
  auto& handlers = pes_[pe].idle_handlers_;
  for (std::size_t i = 0; i < handlers.size(); ++i) {
    if (handlers[i].id == id) {
      handlers.erase(handlers.begin() + static_cast<std::ptrdiff_t>(i));
      if (pes_[pe].idle_cursor_ > i) --pes_[pe].idle_cursor_;
      return;
    }
  }
  ACIC_ASSERT_MSG(false, "idle handler id not registered on this PE");
}

std::size_t Machine::num_idle_handlers(PeId pe) const {
  ACIC_ASSERT(pe < num_entities());
  return pes_[pe].idle_handlers_.size();
}

void Machine::set_speed_factor(PeId pe, double factor) {
  ACIC_ASSERT(pe < num_entities());
  ACIC_ASSERT_MSG(factor > 0.0, "speed factor must be positive");
  pes_[pe].speed_factor_ = factor;
}

void Machine::add_snapshotable(Snapshotable* hook) {
  ACIC_ASSERT(hook != nullptr);
  snapshotables_.push_back(hook);
}

void Machine::remove_snapshotable(Snapshotable* hook) {
  for (std::size_t i = 0; i < snapshotables_.size(); ++i) {
    if (snapshotables_[i] == hook) {
      snapshotables_.erase(snapshotables_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  ACIC_ASSERT_MSG(false, "snapshotable hook not registered");
}

void Machine::publish_speculation(obs::Registry& registry) const {
  const auto add = [&](const char* name, std::uint64_t value) {
    registry.add(registry.counter(name), /*entity=*/0, value,
                 current_time_);
  };
  add("parallel/speculation_rollbacks", speculation_rollbacks_);
  add("parallel/speculation_commits", speculation_commits_);
  add("parallel/speculation_events", speculated_events_);
  add("parallel/speculation_replayed_events", replayed_events_);
  add("parallel/speculation_checkpoint_bytes", checkpoint_bytes_);
  const auto sid = registry.series("parallel/speculation_gvt_lag");
  for (const auto& [floor_time, lag] : gvt_lag_log_) {
    registry.append(sid, floor_time, lag);
  }
}

std::uint32_t Machine::acquire_slot(Task task) {
  Shard* const sh = tls_shard_;
  std::vector<Task>& slots = sh != nullptr ? sh->slots : task_slots_;
  std::vector<std::uint32_t>& free_list =
      sh != nullptr ? sh->free_slots : free_slots_;
  if (!free_list.empty()) {
    const std::uint32_t slot = free_list.back();
    free_list.pop_back();
    slots[slot] = std::move(task);
    if (sh != nullptr && sh->spec_active) sh->spec_acquired.push_back(slot);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots.size());
  ACIC_ASSERT_MSG(slot < kNoSlot, "task slot store exceeded 2^30 entries");
  slots.push_back(std::move(task));
  if (sh != nullptr && sh->spec_active) sh->spec_acquired.push_back(slot);
  return slot;
}

Task Machine::release_slot(std::uint32_t slot) {
  Shard* const sh = tls_shard_;
  std::vector<Task>& slots = sh != nullptr ? sh->slots : task_slots_;
  Task task = std::move(slots[slot]);
  slots[slot] = nullptr;
  (sh != nullptr ? sh->free_slots : free_slots_).push_back(slot);
  return task;
}

void Machine::note_ready_depth(SimTime time) {
  // Same-timestamp changes coalesce: only the last value at a given
  // instant is observable, so one series append per distinct time.
  if (ready_sample_pending_ && ready_sample_time_ != time) {
    registry_->append(obs_->ready_tasks, ready_sample_time_,
                      ready_sample_value_);
  }
  ready_sample_pending_ = true;
  ready_sample_time_ = time;
  ready_sample_value_ = static_cast<double>(ready_tasks_);
}

void Machine::flush_ready_sample() {
  if (ready_sample_pending_) {
    registry_->append(obs_->ready_tasks, ready_sample_time_,
                      ready_sample_value_);
    ready_sample_pending_ = false;
  }
}

void Machine::push_arrival(SimTime time, PeId pe, Task task,
                           bool charge_recv) {
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    const std::uint32_t dest = entity_node_[pe];
    const std::uint64_t seq = next_seq(sh->node);
    if (dest == sh->node) {
      const std::uint32_t slot = acquire_slot(std::move(task));
      sh->heap.push(Event{time, seq, pe,
                          charge_recv ? (kRecvBit | slot) : slot});
    } else {
      // Conservative lookahead: a cross-node arrival must land at or
      // after the floor other shards' windows were computed against.
      // Sends always satisfy this (inter-node transfer time >= the
      // lookahead, and the departure is at or after this shard's
      // window-start minimum); a cross-node schedule_at below it would
      // be a causality violation.
      ACIC_ASSERT_MSG(time >= sh->cross_floor,
                      "cross-node event scheduled inside the conservative "
                      "window (use a send, or run with --threads 1)");
      if (sh->spec_active) {
        // Speculative sends are held back: they reach the real outbox
        // only if the epoch commits (a rollback's replay regenerates
        // them with identical keys).  Shrinking the horizon to the
        // earliest possible reaction keeps the epoch committable.
        sh->spec_outbox[dest].push_back(
            Mail{time, seq, pe, charge_recv, std::move(task)});
        const SimTime feedback = time + sh->lookahead;
        if (feedback < sh->spec_limit) sh->spec_limit = feedback;
        return;
      }
      sh->outbox[dest].push_back(
          Mail{time, seq, pe, charge_recv, std::move(task)});
      sh->sent_mail = true;
      if (sh->adaptive) {
        // Feedback bound: a reaction to this mail cannot arrive here
        // before its delivery plus one more inter-node hop.  Always at
        // or ahead of the execution point (arrival >= event time +
        // lookahead), so the shrink never invalidates executed events.
        const SimTime feedback = time + sh->lookahead;
        if (feedback < sh->window_limit) sh->window_limit = feedback;
      }
    }
    return;
  }
  const std::uint32_t node = running_ ? current_node_ : entity_node_[pe];
  const std::uint32_t slot = acquire_slot(std::move(task));
  queue_.push(Event{time, next_seq(node), pe,
                    charge_recv ? (kRecvBit | slot) : slot});
}

void Machine::push_exec(SimTime time, PeId pe) {
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    ACIC_HOT_ASSERT(entity_node_[pe] == sh->node);
    sh->heap.push(Event{time, next_seq(sh->node), pe, kExecBit | kNoSlot});
    return;
  }
  const std::uint32_t node = running_ ? current_node_ : entity_node_[pe];
  queue_.push(Event{time, next_seq(node), pe, kExecBit | kNoSlot});
}

void Machine::ensure_exec_scheduled(Pe& pe, SimTime earliest) {
  if (pe.exec_scheduled_) return;
  pe.exec_scheduled_ = true;
  push_exec(std::max(earliest, pe.avail_time_), pe.id_);
}

void Machine::handle_arrival(const Event& event) {
  Pe& pe = pes_[event.pe];
  // The queued-task word reuses the event's packing (recv bit + slot).
  pe.fifo_.push_back(event.packed);
  Shard* const sh = tls_shard_;
  if (sh != nullptr) {
    ++sh->ready_delta;
  } else {
    ++ready_tasks_;
    if (registry_ != nullptr) [[unlikely]] {
      note_ready_depth(event.time);
    }
  }
  ensure_exec_scheduled(pe, event.time);
}

void Machine::handle_exec(const Event& event) {
  Pe& pe = pes_[event.pe];
  ACIC_ASSERT(pe.exec_scheduled_);
  pe.current_time_ = std::max(event.time, pe.avail_time_);
  Shard* const sh = tls_shard_;

  if (!pe.fifo_.empty()) {
    const std::uint32_t queued = pe.fifo_.pop_front();
    // Move the task out of its slot before running it: the task may
    // enqueue new arrivals, which can grow (reallocate) the slot store.
    // Under speculation, run a *clone* and keep the parked original for
    // replay; its slot is logged and freed only if the epoch commits
    // (the claim loop guarantees the task is clonable before letting
    // the event pop speculatively).
    Task task;
    if (sh != nullptr && sh->spec_active) {
      const std::uint32_t slot = queued & kSlotMask;
      task = sh->slots[slot].clone();
      sh->spec_freed.push_back(slot);
    } else {
      task = release_slot(queued & kSlotMask);
    }
    ++pe.tasks_run_;
    if (sh != nullptr) {
      --sh->ready_delta;
      ++sh->stats.tasks_executed;
    } else {
      --ready_tasks_;
      if (active_stats_ != nullptr) ++active_stats_->tasks_executed;
      if (registry_ != nullptr) [[unlikely]] {
        registry_->add(obs_->tasks_executed, pe.id_, 1, pe.current_time_);
        note_ready_depth(pe.current_time_);
      }
    }
    const SimTime span_start = pe.current_time_;
    // The receiver's per-message overhead is part of the task's span,
    // charged exactly where the old wrapper closure charged it.
    if ((queued & kRecvBit) != 0) pe.charge(network_.recv_overhead_us);
    task(pe);
    if (span_hook_) {
      span_hook_(pe.id_, span_start, pe.current_time_, false);
    }
    pe.avail_time_ = pe.current_time_;
    // Stay scheduled: either more tasks are queued or the idle handler
    // deserves a poll once this task's simulated time has elapsed.
    push_exec(pe.avail_time_, pe.id_);
    return;
  }

  // Queue empty: poll the idle handlers (Charm++'s when-idle callback).
  // With several registered (multi-tenant engines sharing the PE), one
  // poll tries each in turn — starting after the handler that last did
  // work, so no engine can starve the others — and stops at the first
  // that reports work.
  if (!pe.idle_handlers_.empty()) {
    const SimTime span_start = pe.current_time_;
    pe.charge(idle_poll_cost_us_);
    if (sh != nullptr) {
      ++sh->stats.idle_polls;
    } else {
      if (active_stats_ != nullptr) ++active_stats_->idle_polls;
      if (registry_ != nullptr) [[unlikely]] {
        registry_->add(obs_->idle_polls, pe.id_, 1, pe.current_time_);
      }
    }
    bool did_work = false;
    pe.idle_polling_ = true;
    const std::size_t n = pe.idle_handlers_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = (pe.idle_cursor_ + i) % n;
      if (pe.idle_handlers_[idx].handler(pe)) {
        did_work = true;
        pe.idle_cursor_ = (idx + 1) % n;
        break;
      }
    }
    pe.idle_polling_ = false;
    if (span_hook_) {
      // Idle polls that found work count as busy spans.
      span_hook_(pe.id_, span_start, pe.current_time_, !did_work);
    }
    pe.avail_time_ = pe.current_time_;
    if (did_work || !pe.fifo_.empty()) {
      push_exec(pe.avail_time_, pe.id_);
      return;
    }
  }
  pe.exec_scheduled_ = false;  // sleep until the next arrival
}

RunStats Machine::run(SimTime time_limit) {
  if (threads_ > 1 && topology_.nodes > 1 && registry_ == nullptr &&
      !span_hook_ && network_.latency_inter_node_us > 0.0) {
    return run_parallel(time_limit);
  }
  RunStats stats;
  last_threads_used_ = 1;
  active_stats_ = &stats;
  running_ = true;
  while (!queue_.empty()) {
    if (queue_.top().time > time_limit) {
      stats.hit_time_limit = true;
      break;
    }
    const Event event = queue_.top();  // POD copy; payload stays parked
    queue_.pop();
    ++events_processed_;
    ++stats.events_processed;
    current_time_ = std::max(current_time_, event.time);
    // Pushes triggered by this event key on its node — the same node a
    // parallel shard would key them on.
    current_node_ = entity_node_[event.pe];
    if (event.is_exec()) {
      handle_exec(event);
    } else {
      handle_arrival(event);
    }
  }
  running_ = false;
  if (registry_ != nullptr) [[unlikely]] {
    flush_ready_sample();
  }
  stats.end_time_us = current_time_;
  active_stats_ = nullptr;
  return stats;
}

RunStats Machine::run_parallel(SimTime time_limit) {
  const std::uint32_t nodes = topology_.nodes;
  const unsigned nthreads = std::min<unsigned>(threads_, nodes);
  // Conservative lookahead: no message crosses nodes in less than the
  // inter-node wire latency (transfer_time = latency + bytes/bandwidth),
  // so no shard can be affected by another sooner than that.
  const SimTime lookahead = network_.latency_inter_node_us;
  const bool adaptive = window_mode_ == WindowMode::kAdaptive;
  last_threads_used_ = nthreads;

  if (par_ == nullptr) par_ = std::make_unique<ParallelState>();
  std::vector<Shard>& shards = par_->shards;
  if (shards.size() != nodes) {
    shards.clear();
    shards.resize(nodes);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      shards[n].node = n;
      shards[n].outbox.resize(nodes);
      shards[n].spec_outbox.resize(nodes);
    }
    for (PeId p = 0; p < num_entities(); ++p) {
      shards[entity_node_[p]].members.push_back(p);
    }
  }
  // Optimistic mode engages only when every registered Snapshotable
  // supports it (and at least one is registered: a raw machine with no
  // hooks has unknown application state and must stay conservative).
  bool spec_enabled =
      engine_mode_ == EngineMode::kOptimistic && !snapshotables_.empty();
  for (Snapshotable* hook : snapshotables_) {
    if (!hook->speculation_supported()) spec_enabled = false;
  }
  // Speculation horizon past the conservative limit.  A few lookaheads
  // bounds both the wasted work a rollback can discard and the lifetime
  // of a checkpoint (one window); the own-send shrink in push_arrival
  // tightens it further.
  const SimTime spec_horizon = 3.0 * lookahead;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    Shard& sh = shards[n];
    sh.now = current_time_;
    sh.lookahead = lookahead;
    sh.adaptive = adaptive;
    sh.sent_mail = false;
    sh.stats = RunStats{};
    sh.ready_delta = 0;
    sh.spec_active = false;
    sh.speculating = false;
    sh.spec_rollbacks = 0;
    sh.spec_commits = 0;
    sh.spec_events = 0;
    sh.spec_replayed = 0;
    sh.spec_ckpt_bytes = 0;
    sh.gvt_lag.clear();
  }
  // Redistribute the global heap into the per-node shards, migrating
  // parked tasks into each shard's own slot store.  Insertion order is
  // irrelevant: the comparator is a total order, so every heap pops the
  // same sequence regardless of how it was filled.
  while (!queue_.empty()) {
    const Event e = queue_.top();
    queue_.pop();
    Shard& sh = shards[entity_node_[e.pe]];
    if (e.is_exec()) {
      sh.heap.push(e);
      continue;
    }
    Task task = release_slot(e.slot());
    tls_shard_ = &sh;
    const std::uint32_t slot = acquire_slot(std::move(task));
    tls_shard_ = nullptr;
    sh.heap.push(Event{e.time, e.seq, e.pe, (e.packed & kRecvBit) | slot});
  }

  // --- Shared window-scheduling state -------------------------------
  // Per-shard heap minima at the window boundary, written by the thread
  // that merged/scanned the shard in phase A, reduced once by the
  // barrier's completion step.
  struct alignas(64) PaddedTime {
    SimTime v = kNoTimeLimit;
  };
  std::vector<PaddedTime> shard_min(nodes);
  // The window plan every thread reads after the reduction barrier.
  struct Plan {
    SimTime min1 = kNoTimeLimit;  // global earliest event time
    SimTime min2 = kNoTimeLimit;  // earliest on any shard != node1
    std::uint32_t node1 = 0;      // shard holding min1 (lowest id on ties)
    bool run = false;             // execute a window this round?
    bool merge = false;           // did the previous window buffer mail?
    bool hit_limit = false;
  } plan;
  std::uint64_t windows = 0;
  std::uint64_t window_merges = 0;
  // Phase-A claim cursor (merge + minima scan, one claimant per shard).
  std::atomic<std::uint32_t> scan_cursor{0};
  // Phase-B claim cursors: thread t owns shards [range[t], range[t+1]);
  // a thread drains its own range first, then steals from the others.
  struct alignas(64) Cursor {
    std::atomic<std::uint32_t> pos{0};
  };
  std::vector<Cursor> claim(nthreads);
  std::vector<std::uint32_t> range(nthreads + 1);
  for (unsigned t = 0; t <= nthreads; ++t) range[t] = t * nodes / nthreads;
  std::atomic<bool> mail_flag{false};
  std::vector<std::uint64_t> steal_counts(nthreads, 0);

  // Runs on the last thread into the reduction barrier: one O(nodes)
  // scan decides the window for everyone (min1/min2 with the arg-min
  // shard, ties to the lowest node id — deterministic, though results
  // never depend on it) and re-arms the phase-B claim cursors.
  SpinBarrier window_barrier(nthreads, [&] {
    SimTime min1 = kNoTimeLimit;
    SimTime min2 = kNoTimeLimit;
    std::uint32_t node1 = 0;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      const SimTime v = shard_min[n].v;
      if (v < min1) {
        min2 = min1;
        min1 = v;
        node1 = n;
      } else if (v < min2) {
        min2 = v;
      }
    }
    plan.min1 = min1;
    plan.min2 = min2;
    plan.node1 = node1;
    plan.run = min1 != kNoTimeLimit && min1 <= time_limit;
    if (min1 != kNoTimeLimit && min1 > time_limit) plan.hit_limit = true;
    if (plan.run) ++windows;
    for (unsigned t = 0; t < nthreads; ++t) {
      claim[t].pos.store(range[t], std::memory_order_relaxed);
    }
  });
  // Runs on the last thread out of a window: capture whether any shard
  // buffered cross-node mail (windows without any skip the merge scan
  // entirely) and re-arm the phase-A cursor.
  SpinBarrier drain_barrier(nthreads, [&] {
    plan.merge = mail_flag.exchange(false, std::memory_order_relaxed);
    if (plan.merge) ++window_merges;
    scan_cursor.store(0, std::memory_order_relaxed);
  });

  // --- Optimistic-mode helpers --------------------------------------
  // All of these run on the thread that currently owns the shard
  // (phase-A merger or phase-B claimant — exclusive either way), so
  // they touch only shard-local state, the shard's node's PEs, and
  // that node's slice of the Snapshotable hooks.

  // Is `(time, seq)` ordered before event `e`?  The straggler test:
  // mail keyed below the speculative execution point invalidates the
  // epoch.
  const auto key_below = [](SimTime time, std::uint64_t seq,
                            const Event& e) {
    return time < e.time || (time == e.time && seq < e.seq);
  };

  // Can `top` be executed speculatively?  An exec event about to pop a
  // non-clonable task cannot (no replay copy would survive a
  // rollback) — it ends the epoch instead.
  const auto spec_blocked = [&](const Shard& sh, const Event& top) {
    if (!top.is_exec()) return false;
    const Pe& pe = pes_[top.pe];
    if (pe.fifo_.empty()) return false;
    return !sh.slots[pe.fifo_.front() & kSlotMask].clonable();
  };

  const auto take_checkpoint = [&](Shard& sh) {
    sh.ckpt_heap = sh.heap;  // copy-assign: reuses ckpt capacity
    sh.ckpt_free_slots = sh.free_slots;
    sh.ckpt_slots_size = sh.slots.size();
    sh.ckpt_node_seq = node_seq_[sh.node].next;
    sh.ckpt_now = sh.now;
    sh.ckpt_stats = sh.stats;
    sh.ckpt_ready_delta = sh.ready_delta;
    sh.ckpt_pes.clear();
    std::size_t bytes = sh.heap.size() * sizeof(Event) +
                        sh.free_slots.size() * sizeof(std::uint32_t) +
                        sizeof(Shard);
    for (const PeId p : sh.members) {
      Pe& pe = pes_[p];
      sh.ckpt_pes.push_back(Shard::PeCheckpoint{
          pe.fifo_, pe.avail_time_, pe.current_time_, pe.exec_scheduled_,
          pe.idle_cursor_, pe.busy_us_, pe.tasks_run_});
      bytes += sizeof(Shard::PeCheckpoint);
    }
    for (Snapshotable* hook : snapshotables_) {
      bytes += hook->speculative_checkpoint(sh.node);
    }
    sh.spec_ckpt_bytes += bytes;
  };

  // Rolls the shard back to its checkpoint and closes the epoch.  Any
  // mail parked in pending_mail joins the restored heap (caller must
  // have tls_shard_ == &sh so the slots land in the shard's store).
  const auto rollback = [&](Shard& sh) {
    std::swap(sh.heap, sh.ckpt_heap);  // swap + clear keeps both capacities
    sh.ckpt_heap.clear();
    for (const std::uint32_t slot : sh.spec_acquired) {
      sh.slots[slot] = nullptr;
    }
    sh.slots.resize(sh.ckpt_slots_size);
    sh.free_slots = sh.ckpt_free_slots;
    node_seq_[sh.node].next = sh.ckpt_node_seq;
    sh.now = sh.ckpt_now;
    sh.stats = sh.ckpt_stats;
    sh.ready_delta = sh.ckpt_ready_delta;
    for (std::size_t i = 0; i < sh.members.size(); ++i) {
      Pe& pe = pes_[sh.members[i]];
      Shard::PeCheckpoint& ck = sh.ckpt_pes[i];
      pe.fifo_ = std::move(ck.fifo);
      pe.avail_time_ = ck.avail_time;
      pe.current_time_ = ck.current_time;
      pe.exec_scheduled_ = ck.exec_scheduled;
      pe.idle_cursor_ = ck.idle_cursor;
      pe.busy_us_ = ck.busy_us;
      pe.tasks_run_ = ck.tasks_run;
    }
    sh.ckpt_pes.clear();
    for (Snapshotable* hook : snapshotables_) {
      hook->speculative_restore(sh.node);
    }
    for (std::vector<Mail>& box : sh.spec_outbox) box.clear();
    for (Mail& m : sh.pending_mail) {
      const std::uint32_t slot = acquire_slot(std::move(m.task));
      sh.heap.push(Event{m.time, m.seq, m.pe,
                         m.charge_recv ? (kRecvBit | slot) : slot});
    }
    sh.pending_mail.clear();
    sh.spec_freed.clear();
    sh.spec_acquired.clear();
    sh.speculating = false;
    ++sh.spec_rollbacks;
    sh.spec_replayed += sh.spec_epoch_events;
  };

  // Confirms the epoch: held sends are promoted to the real outbox,
  // parked mail joins the heap, the slots of committed tasks are
  // freed, and the hooks drop their snapshots.  (caller holds
  // tls_shard_ == &sh.)
  const auto commit = [&](Shard& sh) {
    for (std::uint32_t dest = 0; dest < nodes; ++dest) {
      std::vector<Mail>& box = sh.spec_outbox[dest];
      if (box.empty()) continue;
      for (Mail& m : box) sh.outbox[dest].push_back(std::move(m));
      box.clear();
      sh.sent_mail = true;
    }
    for (Mail& m : sh.pending_mail) {
      const std::uint32_t slot = acquire_slot(std::move(m.task));
      sh.heap.push(Event{m.time, m.seq, m.pe,
                         m.charge_recv ? (kRecvBit | slot) : slot});
    }
    sh.pending_mail.clear();
    for (const std::uint32_t slot : sh.spec_freed) {
      sh.slots[slot] = nullptr;
      sh.free_slots.push_back(slot);
    }
    sh.spec_freed.clear();
    sh.spec_acquired.clear();
    for (Snapshotable* hook : snapshotables_) {
      hook->speculative_commit(sh.node);
    }
    sh.ckpt_pes.clear();
    sh.ckpt_heap.clear();
    sh.speculating = false;
    ++sh.spec_commits;
  };

  // Opens a speculative epoch at the end of a window's conservative
  // execution: checkpoint, then keep draining the heap past the window
  // limit.  (caller holds tls_shard_ == &sh; window_limit is the
  // window just executed.)
  const auto open_epoch = [&](Shard& sh) {
    if (sh.heap.empty()) return;
    sh.spec_limit = sh.window_limit + spec_horizon;
    const Event& first = sh.heap.top();
    if (first.time >= sh.spec_limit || first.time > time_limit ||
        spec_blocked(sh, first)) {
      return;
    }
    sh.spec_base_min = first.time;
    take_checkpoint(sh);
    sh.spec_active = true;
    std::uint64_t nspec = 0;
    while (!sh.heap.empty()) {
      const Event& top = sh.heap.top();
      if (top.time >= sh.spec_limit || top.time > time_limit) break;
      if (spec_blocked(sh, top)) break;
      const Event e = top;
      sh.heap.pop();
      ++sh.stats.events_processed;
      sh.now = std::max(sh.now, e.time);
      if (e.is_exec()) {
        handle_exec(e);
      } else {
        handle_arrival(e);
      }
      sh.spec_last = e;
      ++nspec;
    }
    sh.spec_active = false;
    ACIC_ASSERT_MSG(nspec > 0,
                    "epoch guard admitted an event the loop rejected");
    sh.speculating = true;
    sh.spec_epoch_events = nspec;
    sh.spec_events += nspec;
  };

  auto worker = [&](unsigned tid) {
    std::uint64_t steals = 0;
    for (;;) {
      // Phase A: merge the previous window's mail (skipped when none
      // was sent) and publish each shard's heap minimum.  Shards are
      // claimed through a shared cursor; the composite seq keys make
      // the merge order automatic regardless of who drains what.
      for (;;) {
        const std::uint32_t d =
            scan_cursor.fetch_add(1, std::memory_order_relaxed);
        if (d >= nodes) break;
        Shard& dst = shards[d];
        if (dst.speculating && plan.merge) {
          // Straggler scan: any merged key below the speculative
          // execution point invalidates the epoch — roll back here,
          // then merge normally into the restored heap.
          bool straggler = false;
          for (std::uint32_t src = 0; src < nodes && !straggler; ++src) {
            for (const Mail& m : shards[src].outbox[d]) {
              if (key_below(m.time, m.seq, dst.spec_last)) {
                straggler = true;
                break;
              }
            }
          }
          if (straggler) {
            tls_shard_ = &dst;
            rollback(dst);
            tls_shard_ = nullptr;
          }
        }
        if (plan.merge) {
          tls_shard_ = &dst;
          for (std::uint32_t src = 0; src < nodes; ++src) {
            std::vector<Mail>& box = shards[src].outbox[d];
            for (Mail& mail : box) {
              if (dst.speculating) {
                // Epoch survives: park the mail (keyed above
                // spec_last) so a later rollback can restore the heap
                // wholesale; it joins the heap at resolution.
                dst.pending_mail.push_back(std::move(mail));
                continue;
              }
              const std::uint32_t slot = acquire_slot(std::move(mail.task));
              dst.heap.push(Event{mail.time, mail.seq, mail.pe,
                                  mail.charge_recv ? (kRecvBit | slot)
                                                   : slot});
            }
            box.clear();  // keeps capacity: boxes never regrow in steady state
          }
          tls_shard_ = nullptr;
        }
        if (dst.speculating) {
          // Publish the conservative minimum, exactly what this heap
          // would hold had it not speculated: its checkpoint-time
          // minimum, lowered by any parked mail.  Other shards' window
          // limits rely on this (a send reacting to parked mail can
          // depart as early as that mail's arrival).
          SimTime pub = dst.spec_base_min;
          for (const Mail& m : dst.pending_mail) {
            pub = std::min(pub, m.time);
          }
          shard_min[d].v = pub;
        } else {
          shard_min[d].v =
              dst.heap.empty() ? kNoTimeLimit : dst.heap.top().time;
        }
      }
      window_barrier.arrive_and_wait();
      // Every thread reads the same plan, so all break together;
      // mailboxes are empty here (drained in phase A).
      if (!plan.run) break;

      // Phase B: claim and execute shards — own range first, then steal
      // from whichever thread still has unclaimed shards.  Ownership
      // migration cannot change results: a shard's event order is fully
      // determined by its heap's (time, seq) keys, and exactly one
      // thread runs a given shard per window.
      for (unsigned v = 0; v < nthreads; ++v) {
        const unsigned owner = (tid + v) % nthreads;
        const std::uint32_t owner_hi = range[owner + 1];
        for (;;) {
          if (claim[owner].pos.load(std::memory_order_relaxed) >= owner_hi) {
            break;
          }
          const std::uint32_t s =
              claim[owner].pos.fetch_add(1, std::memory_order_relaxed);
          if (s >= owner_hi) break;
          Shard& sh = shards[s];
          // A shard with a pending epoch must be claimed even when its
          // heap ran dry (the speculation may have drained it): the
          // epoch is resolved here.
          if (sh.heap.empty() && !sh.speculating) continue;
          if (owner != tid) ++steals;
          // Fixed window: every shard stops at min1 + lookahead.
          // Adaptive: shard d stops at (min over OTHER shards) +
          // lookahead — for everyone but the arg-min shard that equals
          // the fixed bound; the arg-min shard runs on to min2 +
          // lookahead.  Safe because no other shard can inject an event
          // below its own minimum + lookahead, and cascades through
          // this shard's own sends are cut off by the feedback shrink
          // in push_arrival.
          sh.window_limit = adaptive && s == plan.node1
                                ? plan.min2 + lookahead
                                : plan.min1 + lookahead;
          sh.cross_floor = shard_min[s].v + lookahead;
          tls_shard_ = &sh;
          if (sh.speculating) {
            // Resolve the pending epoch against this window's
            // conservative limit — the GVT-lite floor the fused
            // barrier reduction just computed.  In adaptive mode the
            // limit is first tightened by the earliest reaction each
            // held send could provoke, exactly the shrink a live send
            // would have applied.  Commit if the limit covers every
            // speculated event (they then form a prefix of this
            // window's conservative schedule); otherwise roll back and
            // let this window replay them.
            SimTime limit = sh.window_limit;
            if (adaptive) {
              for (const std::vector<Mail>& box : sh.spec_outbox) {
                for (const Mail& m : box) {
                  limit = std::min(limit, m.time + lookahead);
                }
              }
            }
            if (sh.gvt_lag.size() < 1024) {
              sh.gvt_lag.emplace_back(plan.min1,
                                      sh.spec_last.time - plan.min1);
            }
            if (sh.spec_last.time < limit) {
              commit(sh);
              sh.window_limit = limit;
            } else {
              rollback(sh);
            }
          }
          while (!sh.heap.empty()) {
            const Event& top = sh.heap.top();
            if (top.time >= sh.window_limit || top.time > time_limit) break;
            const Event e = top;
            sh.heap.pop();
            ++sh.stats.events_processed;
            sh.now = std::max(sh.now, e.time);
            if (e.is_exec()) {
              handle_exec(e);
            } else {
              handle_arrival(e);
            }
          }
          if (spec_enabled) open_epoch(sh);
          tls_shard_ = nullptr;
          if (sh.sent_mail) {
            sh.sent_mail = false;
            mail_flag.store(true, std::memory_order_relaxed);
          }
        }
      }
      drain_barrier.arrive_and_wait();
    }
    steal_counts[tid] = steals;
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (unsigned tid = 1; tid < nthreads; ++tid) {
    pool.emplace_back(worker, tid);
  }
  worker(0);
  for (std::thread& t : pool) t.join();

  // Fold shard deltas back into the machine and merge unprocessed
  // events (a hit time limit) back into the global queue.
  RunStats stats;
  stats.hit_time_limit = plan.hit_limit;
  stats.threads_used = nthreads;
  stats.windows = windows;
  stats.window_merges = window_merges;
  for (unsigned t = 0; t < nthreads; ++t) {
    stats.shard_steals += steal_counts[t];
  }
  windows_ += windows;
  window_merges_ += window_merges;
  shard_steals_ += stats.shard_steals;
  for (Shard& sh : shards) {
    // A pending epoch always resolves at the next window (a
    // speculating shard publishes a finite minimum at or below the
    // time limit, so the plan keeps running until it is resolved).
    ACIC_ASSERT_MSG(!sh.speculating,
                    "speculative epoch left unresolved at run end");
    stats.speculation_rollbacks += sh.spec_rollbacks;
    stats.speculation_commits += sh.spec_commits;
    stats.speculated_events += sh.spec_events;
    stats.replayed_events += sh.spec_replayed;
    stats.checkpoint_bytes += sh.spec_ckpt_bytes;
    for (const auto& entry : sh.gvt_lag) {
      if (gvt_lag_log_.size() < 8192) gvt_lag_log_.push_back(entry);
    }
    sh.gvt_lag.clear();
    stats.tasks_executed += sh.stats.tasks_executed;
    stats.idle_polls += sh.stats.idle_polls;
    stats.messages_sent += sh.stats.messages_sent;
    stats.bytes_sent += sh.stats.bytes_sent;
    stats.events_processed += sh.stats.events_processed;
    messages_sent_ += sh.stats.messages_sent;
    bytes_sent_ += sh.stats.bytes_sent;
    events_processed_ += sh.stats.events_processed;
    ready_tasks_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(ready_tasks_) + sh.ready_delta);
    current_time_ = std::max(current_time_, sh.now);
    while (!sh.heap.empty()) {
      const Event e = sh.heap.top();
      sh.heap.pop();
      if (e.is_exec()) {
        queue_.push(e);
        continue;
      }
      Task task = std::move(sh.slots[e.slot()]);
      const std::uint32_t slot = acquire_slot(std::move(task));
      queue_.push(
          Event{e.time, e.seq, e.pe, (e.packed & kRecvBit) | slot});
    }
    // Every parked task has been moved out (heap drained); dropping the
    // bookkeeping keeps the capacity for the next run.
    sh.slots.clear();
    sh.free_slots.clear();
  }
  speculation_rollbacks_ += stats.speculation_rollbacks;
  speculation_commits_ += stats.speculation_commits;
  speculated_events_ += stats.speculated_events;
  replayed_events_ += stats.replayed_events;
  checkpoint_bytes_ += stats.checkpoint_bytes;
  stats.end_time_us = current_time_;
  return stats;
}

}  // namespace acic::runtime
