#include "src/runtime/task.hpp"

#include <atomic>
#include <cstdint>
#include <new>

namespace acic::runtime::detail {

namespace {

// Spilled captures are rare (hot-path closures fit Task's inline buffer)
// but bursty — e.g. a cold path enqueuing one oversized closure per PE
// per reduction cycle.  A handful of size classes with LIFO free lists
// turns those into pointer pops in steady state.  Free lists are
// thread_local: the parallel engine can allocate a spilled capture on
// one host thread and free it on another (a Task migrates through a
// cross-node mailbox), which simply moves the block between thread
// pools — operator new/delete are global, so that is safe.  Only the
// live/pooled accounting is process-wide (atomic), because the test
// hooks compare totals across whole runs.
constexpr std::size_t kClassSizes[] = {64, 128, 256, 512, 1024};
constexpr std::size_t kNumClasses =
    sizeof(kClassSizes) / sizeof(kClassSizes[0]);

struct FreeBlock {
  FreeBlock* next;
};

std::atomic<std::size_t> g_live{0};    // blocks handed out, not yet freed
std::atomic<std::size_t> g_pooled{0};  // blocks parked in free lists

struct Slab {
  FreeBlock* free_lists[kNumClasses] = {};

  ~Slab() {
    // Return pooled blocks at thread exit so leak checkers see a clean
    // heap.  Live blocks belong to still-existing Tasks, which are
    // destroyed before thread-local teardown.
    for (FreeBlock*& head : free_lists) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(head,
                          std::align_val_t{alignof(std::max_align_t)});
        head = next;
        g_pooled.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
};

Slab& slab() {
  static thread_local Slab instance;
  return instance;
}

std::size_t class_of(std::size_t bytes) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (bytes <= kClassSizes[c]) return c;
  }
  return kNumClasses;  // oversized: straight to operator new/delete
}

}  // namespace

void* task_slab_alloc(std::size_t bytes) {
  Slab& s = slab();
  const std::size_t c = class_of(bytes);
  g_live.fetch_add(1, std::memory_order_relaxed);
  if (c == kNumClasses) {
    return ::operator new(bytes, std::align_val_t{alignof(std::max_align_t)});
  }
  if (FreeBlock* block = s.free_lists[c]) {
    s.free_lists[c] = block->next;
    g_pooled.fetch_sub(1, std::memory_order_relaxed);
    return block;
  }
  return ::operator new(kClassSizes[c],
                        std::align_val_t{alignof(std::max_align_t)});
}

void task_slab_free(void* block, std::size_t bytes) noexcept {
  Slab& s = slab();
  const std::size_t c = class_of(bytes);
  g_live.fetch_sub(1, std::memory_order_relaxed);
  if (c == kNumClasses) {
    ::operator delete(block, std::align_val_t{alignof(std::max_align_t)});
    return;
  }
  auto* free_block = static_cast<FreeBlock*>(block);
  free_block->next = s.free_lists[c];
  s.free_lists[c] = free_block;
  g_pooled.fetch_add(1, std::memory_order_relaxed);
}

std::size_t task_slab_live_blocks() noexcept {
  return g_live.load(std::memory_order_relaxed);
}
std::size_t task_slab_pooled_blocks() noexcept {
  return g_pooled.load(std::memory_order_relaxed);
}

}  // namespace acic::runtime::detail
