#include "src/runtime/task.hpp"

#include <cstdint>
#include <new>

namespace acic::runtime::detail {

namespace {

// Spilled captures are rare (hot-path closures fit Task's inline buffer)
// but bursty — e.g. a cold path enqueuing one oversized closure per PE
// per reduction cycle.  A handful of size classes with LIFO free lists
// turns those into pointer pops in steady state.  The simulator is
// single-threaded; thread_local keeps concurrent test runners safe.
constexpr std::size_t kClassSizes[] = {64, 128, 256, 512, 1024};
constexpr std::size_t kNumClasses =
    sizeof(kClassSizes) / sizeof(kClassSizes[0]);

struct FreeBlock {
  FreeBlock* next;
};

struct Slab {
  FreeBlock* free_lists[kNumClasses] = {};
  std::size_t live = 0;    // blocks handed out and not yet freed
  std::size_t pooled = 0;  // blocks parked in the free lists

  ~Slab() {
    // Return pooled blocks at thread exit so leak checkers see a clean
    // heap.  Live blocks belong to still-existing Tasks, which are
    // destroyed before thread-local teardown.
    for (FreeBlock*& head : free_lists) {
      while (head != nullptr) {
        FreeBlock* next = head->next;
        ::operator delete(head,
                          std::align_val_t{alignof(std::max_align_t)});
        head = next;
      }
    }
  }
};

Slab& slab() {
  static thread_local Slab instance;
  return instance;
}

std::size_t class_of(std::size_t bytes) {
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    if (bytes <= kClassSizes[c]) return c;
  }
  return kNumClasses;  // oversized: straight to operator new/delete
}

}  // namespace

void* task_slab_alloc(std::size_t bytes) {
  Slab& s = slab();
  const std::size_t c = class_of(bytes);
  ++s.live;
  if (c == kNumClasses) {
    return ::operator new(bytes, std::align_val_t{alignof(std::max_align_t)});
  }
  if (FreeBlock* block = s.free_lists[c]) {
    s.free_lists[c] = block->next;
    --s.pooled;
    return block;
  }
  return ::operator new(kClassSizes[c],
                        std::align_val_t{alignof(std::max_align_t)});
}

void task_slab_free(void* block, std::size_t bytes) noexcept {
  Slab& s = slab();
  const std::size_t c = class_of(bytes);
  --s.live;
  if (c == kNumClasses) {
    ::operator delete(block, std::align_val_t{alignof(std::max_align_t)});
    return;
  }
  auto* free_block = static_cast<FreeBlock*>(block);
  free_block->next = s.free_lists[c];
  s.free_lists[c] = free_block;
  ++s.pooled;
}

std::size_t task_slab_live_blocks() noexcept { return slab().live; }
std::size_t task_slab_pooled_blocks() noexcept { return slab().pooled; }

}  // namespace acic::runtime::detail
