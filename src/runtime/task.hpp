#pragma once
// runtime::Task — the entry-method invocation type, rebuilt for the
// event-loop hot path.
//
// The simulator executes one Task per message/continuation; at scale 18
// that is hundreds of millions of constructions per query, which made
// the old `std::function<void(Pe&)>` representation (heap closure per
// message, fat 32-byte object copied through the event heap) the top
// line of every profile.  This type is:
//
//   * move-only — a task runs on exactly one PE exactly once; nothing
//     on the hot path ever copies one, so captures can hold move-only
//     state (pooled tram buffers move straight into their delivery
//     task).  The optimistic engine may explicitly clone() a task whose
//     capture happens to be copy-constructible, to keep a replay copy
//     across a speculative execution (see clonable());
//   * small-buffer-optimized — captures up to kInlineBytes construct in
//     place inside the Task, no allocation.  Every per-update closure in
//     the hot paths (tram delivery, reducer hops, ACIC chunk relaxing)
//     fits inline by design; keep new hot-path captures ≤ kInlineBytes;
//   * slab-backed on spill — captures that don't fit borrow a block from
//     a size-classed free list (task_slab.cpp) instead of hitting the
//     global allocator, so even cold paths stay allocation-lean in
//     steady state.
//
// Dispatch is one indirect call through a static per-capture-type ops
// table (invoke / relocate / destroy) — the same cost as a virtual call,
// with no vtable pointer inside the capture storage.

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace acic::runtime {

class Pe;

namespace detail {

/// Size-classed free-list allocator for spilled task captures.  Blocks
/// are recycled LIFO through thread-local free lists and returned to the
/// system allocator at thread exit.  Safe under the parallel engine: a
/// spilled Task that migrates across host threads (via a cross-node
/// mailbox) just moves its block from one thread's pool to another's.
void* task_slab_alloc(std::size_t bytes);
void task_slab_free(void* block, std::size_t bytes) noexcept;

/// Test hooks: spilled blocks currently handed out / parked in the pool.
std::size_t task_slab_live_blocks() noexcept;
std::size_t task_slab_pooled_blocks() noexcept;

}  // namespace detail

class Task {
 public:
  /// Inline capture budget.  48 bytes holds `this` + a couple of words
  /// or `this` + a std::vector — every closure the runtime, tram,
  /// collectives and ACIC engine enqueue on their hot paths.
  static constexpr std::size_t kInlineBytes = 48;

  Task() noexcept = default;
  Task(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Task> &&
                std::is_invocable_v<std::decay_t<F>&, Pe&>>>
  Task(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      void* block = detail::task_slab_alloc(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(fn));
      *reinterpret_cast<void**>(storage_) = block;
      ops_ = &kSpillOps<Fn>;
    }
  }

  Task(Task&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  Task& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~Task() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Whether the capture lives in the inline buffer (test hook).
  bool stored_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

  /// Whether this task's capture is copy-constructible.  The optimistic
  /// engine may only execute a task speculatively if it can keep a copy
  /// for replay after a rollback; a non-clonable task (move-only
  /// capture) acts as a speculation barrier instead.
  bool clonable() const noexcept {
    return ops_ != nullptr && ops_->clone != nullptr;
  }

  /// Copy of this task (capture copy-constructed).  Requires clonable().
  Task clone() const {
    Task copy;
    ops_->clone(copy.storage_, storage_);
    copy.ops_ = ops_;
    return copy;
  }

  void operator()(Pe& pe) { ops_->invoke(storage_, pe); }

 private:
  struct Ops {
    void (*invoke)(void* storage, Pe& pe);
    /// Move-construct dst's representation from src and tear src down.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    /// Copy-construct dst's representation from src (null when the
    /// capture type is not copy-constructible).
    void (*clone)(void* dst, const void* src);
    bool inline_stored;
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  template <typename Fn>
  static Fn* inline_capture(void* storage) noexcept {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static Fn* spilled_capture(void* storage) noexcept {
    return static_cast<Fn*>(*reinterpret_cast<void**>(storage));
  }

  template <typename Fn>
  static void inline_invoke(void* storage, Pe& pe) {
    (*inline_capture<Fn>(storage))(pe);
  }
  template <typename Fn>
  static void inline_relocate(void* dst, void* src) noexcept {
    Fn* from = inline_capture<Fn>(src);
    ::new (dst) Fn(std::move(*from));
    from->~Fn();
  }
  template <typename Fn>
  static void inline_destroy(void* storage) noexcept {
    inline_capture<Fn>(storage)->~Fn();
  }

  template <typename Fn>
  static void spill_invoke(void* storage, Pe& pe) {
    (*spilled_capture<Fn>(storage))(pe);
  }
  static void spill_relocate(void* dst, void* src) noexcept {
    std::memcpy(dst, src, sizeof(void*));
  }
  template <typename Fn>
  static void spill_destroy(void* storage) noexcept {
    Fn* capture = spilled_capture<Fn>(storage);
    capture->~Fn();
    detail::task_slab_free(capture, sizeof(Fn));
  }

  template <typename Fn>
  static void inline_clone(void* dst, const void* src) {
    ::new (dst) Fn(*std::launder(
        reinterpret_cast<const Fn*>(src)));
  }
  template <typename Fn>
  static void spill_clone(void* dst, const void* src) {
    const Fn* from = static_cast<const Fn*>(
        *reinterpret_cast<void* const*>(src));
    void* block = detail::task_slab_alloc(sizeof(Fn));
    ::new (block) Fn(*from);
    *reinterpret_cast<void**>(dst) = block;
  }

  template <typename Fn>
  static constexpr auto inline_clone_or_null() {
    if constexpr (std::is_copy_constructible_v<Fn>) {
      return &inline_clone<Fn>;
    } else {
      return static_cast<void (*)(void*, const void*)>(nullptr);
    }
  }
  template <typename Fn>
  static constexpr auto spill_clone_or_null() {
    if constexpr (std::is_copy_constructible_v<Fn>) {
      return &spill_clone<Fn>;
    } else {
      return static_cast<void (*)(void*, const void*)>(nullptr);
    }
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{&inline_invoke<Fn>, &inline_relocate<Fn>,
                                  &inline_destroy<Fn>,
                                  inline_clone_or_null<Fn>(), true};
  template <typename Fn>
  static constexpr Ops kSpillOps{&spill_invoke<Fn>, &spill_relocate,
                                 &spill_destroy<Fn>,
                                 spill_clone_or_null<Fn>(), false};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace acic::runtime
