#pragma once
// Execution tracing — the simulator's analogue of Charm++'s Projections
// performance-analysis tool.  When attached to a Machine, the tracer
// records one span per executed task and idle poll: (pe, start, end,
// kind).  Application code can add *named* spans with the ScopedSpan
// RAII guard (src/server/ wraps its front-end handlers this way).
// Traces can be summarized into per-PE utilization timelines (busy
// fraction per time bin), dumped to CSV for external plotting, or
// exported as Perfetto-loadable Chrome trace JSON together with a
// counter registry (src/obs/export.hpp).
//
// Long-running servers trace unboundedly many spans; set_capacity()
// bounds memory with oldest-first eviction — the tracer then keeps a
// sliding window over the most recent spans and reports the loss via
// overflowed()/dropped_spans().

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/runtime/machine.hpp"

namespace acic::runtime {

enum class SpanKind : std::uint8_t { kTask, kIdlePoll, kNamed };

struct TraceSpan {
  PeId pe = 0;
  SimTime start_us = 0.0;
  SimTime end_us = 0.0;
  SpanKind kind = SpanKind::kTask;
  /// Label for kNamed spans; must be a string literal (or otherwise
  /// outlive the tracer) — spans do not own their names.
  const char* name = nullptr;
};

class Tracer {
 public:
  void record(PeId pe, SimTime start_us, SimTime end_us, SpanKind kind,
              const char* name = nullptr) {
    if (capacity_ != 0 && spans_.size() >= capacity_) {
      spans_.pop_front();
      ++dropped_;
    }
    spans_.push_back(TraceSpan{pe, start_us, end_us, kind, name});
  }

  const std::deque<TraceSpan>& spans() const { return spans_; }
  void clear() {
    spans_.clear();
    dropped_ = 0;
  }

  /// Bounds the span store to `max_spans` (0 = unbounded, the default).
  /// When full, recording evicts the *oldest* span; the trace becomes a
  /// sliding window over the most recent activity.  Shrinks immediately
  /// if the store already exceeds the new capacity.
  void set_capacity(std::size_t max_spans) {
    capacity_ = max_spans;
    while (capacity_ != 0 && spans_.size() > capacity_) {
      spans_.pop_front();
      ++dropped_;
    }
  }
  std::size_t capacity() const { return capacity_; }

  /// True once any span has been evicted: utilization and exports then
  /// cover only the retained window.
  bool overflowed() const { return dropped_ != 0; }
  std::uint64_t dropped_spans() const { return dropped_; }

  /// Busy fraction of each PE within [0, horizon), split into `bins`
  /// equal time bins: result[pe][bin] in [0, 1].  Idle polls count as
  /// idle time; named spans are excluded (they overlap the task spans
  /// that already account for the busy time).
  std::vector<std::vector<double>> utilization(std::uint32_t num_pes,
                                               SimTime horizon_us,
                                               std::size_t bins) const;

  /// Writes `pe,start_us,end_us,kind` rows (kind is "task", "idle", or
  /// the span's name); returns false on I/O error.
  bool write_csv(const std::string& path) const;

  /// Renders a coarse text heat-map (one row per PE, one column per
  /// bin; characters . : - = # for 0-100% busy) to a string.
  std::string utilization_art(std::uint32_t num_pes, SimTime horizon_us,
                              std::size_t bins) const;

 private:
  std::deque<TraceSpan> spans_;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t dropped_ = 0;
};

/// Installs span recording on `machine` (wraps task execution
/// accounting).  The tracer must outlive the machine's run() calls.
void attach_tracer(Machine& machine, Tracer& tracer);

/// RAII guard that records one named span over its own lifetime: the
/// span runs from construction to destruction in the PE's simulated
/// time.  This replaces hand-written Tracer::record calls at
/// instrumentation sites — the guard cannot forget the end timestamp
/// on an early return.  A null tracer makes the guard a no-op, so call
/// sites need no conditionals.  `name` must outlive the tracer (use a
/// string literal).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const Pe& pe, const char* name)
      : tracer_(tracer), pe_(&pe), name_(name), start_us_(pe.now()) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->record(pe_->id(), start_us_, pe_->now(), SpanKind::kNamed,
                      name_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const Pe* pe_ = nullptr;
  const char* name_ = nullptr;
  SimTime start_us_ = 0.0;
};

}  // namespace acic::runtime
