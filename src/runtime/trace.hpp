#pragma once
// Execution tracing — the simulator's analogue of Charm++'s Projections
// performance-analysis tool.  When attached to a Machine, the tracer
// records one span per executed task and idle poll: (pe, start, end,
// kind).  Traces can be summarized into per-PE utilization timelines
// (busy fraction per time bin) or dumped to CSV for external plotting.
// The SSSP examples use it to visualize exactly where the "tail" phase
// of a run goes idle.

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/machine.hpp"

namespace acic::runtime {

enum class SpanKind : std::uint8_t { kTask, kIdlePoll };

struct TraceSpan {
  PeId pe = 0;
  SimTime start_us = 0.0;
  SimTime end_us = 0.0;
  SpanKind kind = SpanKind::kTask;
};

class Tracer {
 public:
  void record(PeId pe, SimTime start_us, SimTime end_us, SpanKind kind) {
    spans_.push_back(TraceSpan{pe, start_us, end_us, kind});
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  /// Busy fraction of each PE within [0, horizon), split into `bins`
  /// equal time bins: result[pe][bin] in [0, 1].  Idle polls count as
  /// idle time.
  std::vector<std::vector<double>> utilization(std::uint32_t num_pes,
                                               SimTime horizon_us,
                                               std::size_t bins) const;

  /// Writes `pe,start_us,end_us,kind` rows; returns false on I/O error.
  bool write_csv(const std::string& path) const;

  /// Renders a coarse text heat-map (one row per PE, one column per
  /// bin; characters . : - = # for 0-100% busy) to a string.
  std::string utilization_art(std::uint32_t num_pes, SimTime horizon_us,
                              std::size_t bins) const;

 private:
  std::vector<TraceSpan> spans_;
};

/// Installs span recording on `machine` (wraps task execution
/// accounting).  The tracer must outlive the machine's run() calls.
void attach_tracer(Machine& machine, Tracer& tracer);

}  // namespace acic::runtime
