#include "src/runtime/collectives.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "src/util/assert.hpp"

namespace acic::runtime {

namespace {

double identity_for(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return 0.0;
    case ReduceOp::kMin:
      return std::numeric_limits<double>::infinity();
    case ReduceOp::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double combine(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMin:
      return std::min(a, b);
    case ReduceOp::kMax:
      return std::max(a, b);
  }
  return a + b;
}

}  // namespace

Reducer::Reducer(Machine& machine, std::size_t width, RootHandler on_root,
                 BcastHandler on_bcast, std::uint32_t fanout,
                 std::vector<ReduceOp> ops)
    : machine_(machine),
      width_(width),
      fanout_(fanout),
      on_root_(std::move(on_root)),
      on_bcast_(std::move(on_bcast)),
      ops_(std::move(ops)),
      nodes_(machine.num_pes()) {
  ACIC_ASSERT(fanout_ >= 1);
  if (ops_.empty()) ops_.assign(width_, ReduceOp::kSum);
  ACIC_ASSERT_MSG(ops_.size() == width_, "one ReduceOp per payload slot");
  all_sum_ = std::all_of(ops_.begin(), ops_.end(),
                         [](ReduceOp op) { return op == ReduceOp::kSum; });
  pools_.resize(machine_.topology().nodes);
  ckpt_.resize(machine_.topology().nodes);
  node_of_.resize(machine_.num_pes());
  for (PeId p = 0; p < machine_.num_pes(); ++p) {
    node_of_[p] = machine_.topology().node_of(p);
  }
}

std::vector<double> Reducer::acquire_payload(const Pe& pe) {
  auto& pool = pools_[node_of_[pe.id()]].pool;
  if (pool.empty()) return {};
  std::vector<double> v = std::move(pool.back());
  pool.pop_back();
  return v;
}

void Reducer::recycle_payload(const Pe& pe, std::vector<double>&& v) {
  auto& pool = pools_[node_of_[pe.id()]].pool;
  if (pool.size() >= 64 || v.capacity() < width_) return;
  pool.push_back(std::move(v));
}

std::uint32_t Reducer::num_children(PeId pe) const {
  const std::uint64_t first = std::uint64_t{pe} * fanout_ + 1;
  if (first >= machine_.num_pes()) return 0;
  const std::uint64_t last =
      std::min<std::uint64_t>(first + fanout_, machine_.num_pes());
  return static_cast<std::uint32_t>(last - first);
}

void Reducer::contribute(Pe& pe, const std::vector<double>& value) {
  ACIC_ASSERT_MSG(value.size() == width_,
                  "contribution width must match the Reducer width");
  NodeState& node = nodes_[pe.id()];
  const std::uint64_t cycle = node.next_contribute_cycle++;
  absorb(pe, cycle, value);
}

void Reducer::absorb(Pe& pe, std::uint64_t cycle,
                     const std::vector<double>& value) {
  NodeState& node = nodes_[pe.id()];
  PendingCycle& pending = node.pending[cycle];
  if (pending.sum.empty()) {
    pending.sum = acquire_payload(pe);
    pending.sum.resize(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      pending.sum[i] = identity_for(ops_[i]);
    }
  }
  pe.charge(combine_cost_us_per_element_ * static_cast<double>(width_));
  if (all_sum_) {
    // Same operation, same order as the general loop below — just
    // without the per-slot op dispatch, so the compiler vectorizes it.
    double* sum = pending.sum.data();
    const double* v = value.data();
    for (std::size_t i = 0; i < width_; ++i) sum[i] += v[i];
  } else {
    for (std::size_t i = 0; i < width_; ++i) {
      pending.sum[i] = combine(ops_[i], pending.sum[i], value[i]);
    }
  }
  ++pending.received;
  forward_or_finish(pe, cycle);
}

void Reducer::forward_or_finish(Pe& pe, std::uint64_t cycle) {
  NodeState& node = nodes_[pe.id()];
  const auto it = node.pending.find(cycle);
  ACIC_ASSERT(it != node.pending.end());
  // A subtree's sum is complete once this PE's own contribution plus one
  // message per child has arrived.
  if (it->second.received < num_children(pe.id()) + 1) return;

  std::vector<double> sum = std::move(it->second.sum);
  node.pending.erase(it);

  if (pe.id() == 0) {
    ++cycles_completed_;
    const std::optional<std::vector<double>> payload =
        on_root_(pe, cycle, sum);
    recycle_payload(pe, std::move(sum));
    if (payload.has_value()) {
      broadcast_down(pe, cycle, *payload);
    }
    return;
  }

  const PeId parent = parent_of(pe.id());
  pe.send(parent, payload_bytes(),
          [this, cycle, sum = std::move(sum)](Pe& parent_pe) mutable {
            absorb(parent_pe, cycle, sum);
            recycle_payload(parent_pe, std::move(sum));
          });
}

void Reducer::broadcast_down(Pe& pe, std::uint64_t cycle,
                             const std::vector<double>& payload) {
  // Forward to children first so the sends overlap this PE's handler.
  const std::uint64_t first = std::uint64_t{pe.id()} * fanout_ + 1;
  for (std::uint32_t k = 0; k < num_children(pe.id()); ++k) {
    const PeId child = static_cast<PeId>(first + k);
    pe.send(child, payload_bytes(),
            [this, cycle, payload](Pe& child_pe) {
              broadcast_down(child_pe, cycle, payload);
            });
  }
  on_bcast_(pe, cycle, payload);
}

std::size_t Reducer::speculative_checkpoint(std::uint32_t node) {
  NodeCheckpoint& ck = ckpt_[node];
  ck.states.clear();
  std::size_t bytes = 0;
  for (PeId pe = 0; pe < nodes_.size(); ++pe) {
    if (node_of_[pe] != node) continue;
    ck.states.push_back(nodes_[pe]);  // deep-copies the pending map
    bytes += sizeof(NodeState);
    for (const auto& [cycle, pending] : ck.states.back().pending) {
      bytes += sizeof(PendingCycle) + pending.sum.size() * sizeof(double);
    }
  }
  if (node == 0) ck.cycles_completed = cycles_completed_;
  return bytes;
}

void Reducer::speculative_restore(std::uint32_t node) {
  NodeCheckpoint& ck = ckpt_[node];
  std::size_t i = 0;
  for (PeId pe = 0; pe < nodes_.size(); ++pe) {
    if (node_of_[pe] != node) continue;
    nodes_[pe] = ck.states[i++];
  }
  ACIC_ASSERT(i == ck.states.size());
  if (node == 0) cycles_completed_ = ck.cycles_completed;
  ck.states.clear();
}

void Reducer::speculative_commit(std::uint32_t node) {
  ckpt_[node].states.clear();
}

TerminationDetector::TerminationDetector(
    Machine& machine,
    std::function<std::pair<std::uint64_t, std::uint64_t>(Pe&)> counters,
    std::function<void(Pe&)> on_tick, std::function<void(Pe&)> on_terminate,
    SimTime interval_us)
    : machine_(machine),
      counters_(std::move(counters)),
      on_tick_(std::move(on_tick)),
      on_terminate_(std::move(on_terminate)),
      interval_us_(interval_us) {
  reducer_ = std::make_unique<Reducer>(
      machine_, 2,
      // Root handler: decide continue (payload {0}) vs terminate ({1}).
      [this](Pe&, std::uint64_t, const std::vector<double>& sum)
          -> std::optional<std::vector<double>> {
        const double created = sum[0];
        const double processed = sum[1];
        const bool equal = created == processed;
        // Paper rule: equal in two consecutive reductions with unchanged
        // values (guards the counters-equal-but-messages-in-flight race).
        if (equal && armed_ && created == last_created_) {
          terminated_ = true;
          return std::vector<double>{1.0};
        }
        armed_ = equal;
        last_created_ = created;
        last_processed_ = processed;
        return std::vector<double>{0.0};
      },
      // Broadcast handler: tick the application, then either stop or
      // schedule the next contribution after the configured interval.
      [this](Pe& pe, std::uint64_t, const std::vector<double>& payload) {
        if (payload[0] != 0.0) {
          on_terminate_(pe);
          return;
        }
        on_tick_(pe);
        const PeId id = pe.id();
        machine_.schedule_at(pe.now() + interval_us_, id,
                             [this](Pe& next_pe) {
                               const auto [created, processed] =
                                   counters_(next_pe);
                               reducer_->contribute(
                                   next_pe,
                                   {static_cast<double>(created),
                                    static_cast<double>(processed)});
                             });
      });
}

std::size_t TerminationDetector::speculative_checkpoint(std::uint32_t node) {
  std::size_t bytes = reducer_->speculative_checkpoint(node);
  if (node == 0) {
    ckpt_last_created_ = last_created_;
    ckpt_last_processed_ = last_processed_;
    ckpt_armed_ = armed_;
    ckpt_terminated_ = terminated_;
    bytes += 2 * sizeof(double) + 2 * sizeof(bool);
  }
  return bytes;
}

void TerminationDetector::speculative_restore(std::uint32_t node) {
  reducer_->speculative_restore(node);
  if (node == 0) {
    last_created_ = ckpt_last_created_;
    last_processed_ = ckpt_last_processed_;
    armed_ = ckpt_armed_;
    terminated_ = ckpt_terminated_;
  }
}

void TerminationDetector::speculative_commit(std::uint32_t node) {
  reducer_->speculative_commit(node);
}

void TerminationDetector::start() {
  for (PeId pe = 0; pe < machine_.num_pes(); ++pe) {
    machine_.schedule_at(0.0, pe, [this](Pe& ctx) {
      const auto [created, processed] = counters_(ctx);
      reducer_->contribute(ctx, {static_cast<double>(created),
                                 static_cast<double>(processed)});
    });
  }
}

}  // namespace acic::runtime
