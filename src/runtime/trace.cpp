#include "src/runtime/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "src/util/assert.hpp"

namespace acic::runtime {

std::vector<std::vector<double>> Tracer::utilization(
    std::uint32_t num_pes, SimTime horizon_us, std::size_t bins) const {
  ACIC_ASSERT(bins > 0 && horizon_us > 0.0);
  std::vector<std::vector<double>> busy(
      num_pes, std::vector<double>(bins, 0.0));
  const double bin_width = horizon_us / static_cast<double>(bins);

  for (const TraceSpan& span : spans_) {
    if (span.pe >= num_pes) continue;          // comm threads etc.
    // Named spans overlap the task spans that already account for the
    // busy time; only kTask contributes.
    if (span.kind != SpanKind::kTask) continue;
    const SimTime start = std::min(span.start_us, horizon_us);
    const SimTime end = std::min(span.end_us, horizon_us);
    auto bin = static_cast<std::size_t>(start / bin_width);
    SimTime cursor = start;
    while (cursor < end && bin < bins) {
      const SimTime bin_end = bin_width * static_cast<double>(bin + 1);
      const SimTime slice = std::min(end, bin_end) - cursor;
      busy[span.pe][bin] += slice;
      cursor += slice;
      ++bin;
    }
  }
  for (auto& row : busy) {
    for (double& cell : row) {
      cell = std::min(1.0, cell / bin_width);
    }
  }
  return busy;
}

bool Tracer::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("pe,start_us,end_us,kind\n", f);
  for (const TraceSpan& span : spans_) {
    const char* kind = span.kind == SpanKind::kTask       ? "task"
                       : span.kind == SpanKind::kIdlePoll ? "idle"
                       : span.name != nullptr             ? span.name
                                                          : "named";
    std::fprintf(f, "%u,%.3f,%.3f,%s\n", span.pe, span.start_us,
                 span.end_us, kind);
  }
  std::fclose(f);
  return true;
}

std::string Tracer::utilization_art(std::uint32_t num_pes,
                                    SimTime horizon_us,
                                    std::size_t bins) const {
  const auto busy = utilization(num_pes, horizon_us, bins);
  static constexpr char kLevels[] = {'.', ':', '-', '=', '#'};
  std::string art;
  for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
    art += "pe";
    art += std::to_string(pe);
    if (pe < 10) art += ' ';
    art += " |";
    for (const double fraction : busy[pe]) {
      const auto level = static_cast<std::size_t>(
          std::min(4.0, fraction * 5.0));
      art += kLevels[level];
    }
    art += "|\n";
  }
  return art;
}

void attach_tracer(Machine& machine, Tracer& tracer) {
  machine.set_span_hook(
      [&tracer](PeId pe, SimTime start, SimTime end, bool was_idle) {
        tracer.record(pe, start, end,
                      was_idle ? SpanKind::kIdlePoll : SpanKind::kTask);
      });
}

}  // namespace acic::runtime
