#pragma once
// Simulated machine topology, mirroring Charm++ SMP mode: a machine has
// `nodes`, each node runs `procs_per_node` OS processes, and each process
// hosts `pes_per_proc` worker PEs (one per core) plus an implicit
// communication thread.  The paper's configuration is 8 processes/node
// and 6 worker PEs/process = 48 workers per node.

#include <cstdint>

#include "src/util/assert.hpp"

namespace acic::runtime {

using PeId = std::uint32_t;

/// Relative placement of two PEs, which determines message cost.
enum class Locality : std::uint8_t {
  kSelf,          // same PE
  kIntraProcess,  // same process: shared-memory delivery
  kIntraNode,     // same node, different process
  kInterNode,     // different nodes: the network proper
};

struct Topology {
  std::uint32_t nodes = 1;
  std::uint32_t procs_per_node = 8;
  std::uint32_t pes_per_proc = 6;

  /// Worker PEs: ids [0, num_pes()).
  std::uint32_t num_pes() const { return nodes * procs_per_node * pes_per_proc; }
  std::uint32_t num_procs() const { return nodes * procs_per_node; }

  /// Total schedulable entities: workers plus one communication thread
  /// per process (Charm++ SMP mode dedicates a core to it; the paper's
  /// configuration does too).  Comm threads get ids
  /// [num_pes(), num_pes() + num_procs()).
  std::uint32_t num_entities() const { return num_pes() + num_procs(); }

  bool is_comm_thread(PeId pe) const { return pe >= num_pes(); }
  PeId comm_thread_of_proc(std::uint32_t proc) const {
    return num_pes() + proc;
  }

  std::uint32_t proc_of(PeId pe) const {
    return is_comm_thread(pe) ? pe - num_pes() : pe / pes_per_proc;
  }
  std::uint32_t node_of(PeId pe) const {
    return proc_of(pe) / procs_per_node;
  }
  /// First worker PE of process `proc`.
  PeId first_pe_of_proc(std::uint32_t proc) const {
    return proc * pes_per_proc;
  }

  Locality locality(PeId a, PeId b) const {
    if (a == b) return Locality::kSelf;
    if (proc_of(a) == proc_of(b)) return Locality::kIntraProcess;
    if (node_of(a) == node_of(b)) return Locality::kIntraNode;
    return Locality::kInterNode;
  }

  /// Rejects degenerate shapes up front: a zero in any dimension would
  /// otherwise surface only as downstream UB (empty PE vectors indexed
  /// by id, modulo-by-zero in locality math).
  void validate() const {
    ACIC_ASSERT_MSG(nodes > 0, "Topology: nodes must be > 0");
    ACIC_ASSERT_MSG(procs_per_node > 0,
                    "Topology: procs_per_node must be > 0");
    ACIC_ASSERT_MSG(pes_per_proc > 0, "Topology: pes_per_proc must be > 0");
  }

  /// Paper configuration: 8 procs/node, 6 workers each (48 PEs/node).
  static Topology paper_node(std::uint32_t nodes) {
    return Topology{nodes, 8, 6};
  }
  /// Small configuration convenient for unit tests.
  static Topology tiny(std::uint32_t pes) { return Topology{1, 1, pes}; }
};

}  // namespace acic::runtime
