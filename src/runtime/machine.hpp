#pragma once
// The discrete-event machine: a deterministic simulation of a
// message-driven multi-node runtime in the style of Charm++ SMP mode.
//
// Execution model
// ---------------
// Each PE executes *tasks* (entry-method invocations) strictly one at a
// time, in arrival order; a task consumes simulated CPU by calling
// Pe::charge().  Messages between PEs pay the NetworkModel costs by
// locality.  When a PE's task queue drains, the machine invokes the PE's
// idle handler — the exact hook Charm++ gives applications, and the one
// ACIC uses to pull work from its priority queue (paper §II.C: "When a PE
// becomes idle ... the runtime system triggers a method that pulls
// updates in pq in increasing distance order").
//
// Determinism
// -----------
// The event queue orders by (time, sequence number); all ties break on
// the monotone sequence number, so a given program + seed produces an
// identical event interleaving on every run.  This property underpins
// the regression tests and makes experiments exactly reproducible.
//
// Ownership discipline (per the HPC guides: message passing, no shared
// mutable state): a task scheduled on PE p may mutate only state owned by
// p; all cross-PE effects must travel through send()/enqueue_local().
// Because the simulation itself runs on one OS thread, this is a design
// rule rather than a data-race matter — the tests enforce it by checking
// that algorithm results are independent of network timing parameters.

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "src/runtime/network.hpp"
#include "src/runtime/topology.hpp"

namespace acic::obs {
class Registry;
struct RuntimeCounters;
}  // namespace acic::obs

namespace acic::runtime {

class Machine;
class Pe;

/// An entry-method invocation: runs on a specific PE with its context.
using Task = std::function<void(Pe&)>;

/// Idle handler: invoked when the PE has no pending tasks.  Returns true
/// if it performed work (it will then be invoked again once that work's
/// simulated time has elapsed), false to let the PE sleep until the next
/// message arrives.
using IdleHandler = std::function<bool(Pe&)>;

/// Handle returned by Machine::add_idle_handler, used to deregister.
using IdleHandlerId = std::uint64_t;

inline constexpr SimTime kNoTimeLimit =
    std::numeric_limits<SimTime>::infinity();

/// Aggregate statistics for one run() invocation.
struct RunStats {
  SimTime end_time_us = 0.0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t idle_polls = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  bool hit_time_limit = false;
};

/// Per-PE execution context handed to every task and idle handler.
class Pe {
 public:
  PeId id() const { return id_; }
  Machine& machine() { return *machine_; }

  /// Consumes `us` microseconds of simulated CPU on this PE (scaled by
  /// the PE's speed factor; a factor of 0.5 makes everything take twice
  /// as long — see Machine::set_speed_factor).
  void charge(SimTime us);

  /// Current simulated time on this PE (advances within a task as CPU is
  /// charged).
  SimTime now() const { return current_time_; }

  /// Sends a message of `bytes` bytes to PE `to`; `task` runs there after
  /// network latency + transfer time.  Charges the sender's overhead.
  void send(PeId to, std::size_t bytes, Task task);

  /// Enqueues a continuation on this PE with no messaging cost.
  void enqueue_local(Task task);

 private:
  friend class Machine;

  PeId id_ = 0;
  Machine* machine_ = nullptr;

  // Scheduler state.
  std::deque<Task> fifo_;
  SimTime avail_time_ = 0.0;     // when the PE finishes its current task
  SimTime current_time_ = 0.0;   // time inside the running task
  bool exec_scheduled_ = false;

  // Registered idle handlers, polled round-robin (multi-tenant engines
  // each register one; see Machine::add_idle_handler).
  struct IdleEntry {
    IdleHandlerId id;
    IdleHandler handler;
  };
  std::vector<IdleEntry> idle_handlers_;
  std::size_t idle_cursor_ = 0;  // next handler to poll (fairness)
  bool idle_polling_ = false;    // guards against mutation mid-poll

  // Per-PE accounting (read by load-imbalance analyses).
  SimTime busy_us_ = 0.0;
  std::uint64_t tasks_run_ = 0;
  double speed_factor_ = 1.0;
};

class Machine {
 public:
  Machine(Topology topology, NetworkModel network = {});
  ~Machine();  // out-of-line: obs::RuntimeCounters is incomplete here

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Worker PEs (the entities applications schedule work on).
  std::uint32_t num_pes() const { return topology_.num_pes(); }
  /// Workers plus per-process communication threads; any of these can be
  /// a message target.
  std::uint32_t num_entities() const { return topology_.num_entities(); }
  const Topology& topology() const { return topology_; }
  const NetworkModel& network() const { return network_; }

  /// Message send with full network costing.  Usable both from inside a
  /// running task (via Pe::send) and from setup code before run().
  void send(PeId from, PeId to, std::size_t bytes, Task task);

  /// Schedules `task` on `pe` at absolute simulated time `time` (used for
  /// initial work injection and timers).
  void schedule_at(SimTime time, PeId pe, Task task);

  /// DEPRECATED — use add_idle_handler (see docs/runtime.md for the
  /// migration).  Installs the *sole* idle handler for `pe`, asserting
  /// if any handler is already registered: a second engine silently
  /// clobbering the first's pull loop was exactly the bug that made
  /// multi-tenant runs impossible.  Kept as a guard-railed wrapper for
  /// external single-tenant callers; every internal engine now
  /// registers through add_idle_handler.
  void set_idle_handler(PeId pe, IdleHandler handler);

  /// Registers an additional idle handler for `pe` and returns a handle
  /// for deregistration.  When the PE goes idle, registered handlers are
  /// polled round-robin (one poll tries handlers in registration order,
  /// starting after the last one that did work) until one reports work —
  /// so concurrently active engines share the PE's idle time fairly and
  /// deterministically.  Handlers must not (de)register handlers on this
  /// PE from inside an idle poll.
  IdleHandlerId add_idle_handler(PeId pe, IdleHandler handler);

  /// Deregisters a handler previously returned by add_idle_handler.
  /// Asserts if `id` is not currently registered on `pe`.
  void remove_idle_handler(PeId pe, IdleHandlerId id);

  /// Number of idle handlers currently registered on `pe`.
  std::size_t num_idle_handlers(PeId pe) const;

  /// Runs the event loop until the queue drains or `time_limit` is
  /// reached.  May be called repeatedly; time continues monotonically.
  RunStats run(SimTime time_limit = kNoTimeLimit);

  /// Time of the most recently processed event.
  SimTime current_time() const { return current_time_; }

  /// Per-PE busy time and task counts (for load-balance metrics).
  SimTime pe_busy_us(PeId pe) const { return pes_[pe].busy_us_; }
  std::uint64_t pe_tasks_run(PeId pe) const { return pes_[pe].tasks_run_; }

  std::uint64_t total_messages_sent() const { return messages_sent_; }
  std::uint64_t total_bytes_sent() const { return bytes_sent_; }

  /// Overhead charged per idle-handler poll (prevents zero-time idle
  /// loops; roughly the cost of the runtime scheduler's empty-queue
  /// check).
  void set_idle_poll_cost(SimTime us) { idle_poll_cost_us_ = us; }

  /// Observability hook: invoked after every executed task and idle
  /// poll with (pe, start_us, end_us, was_idle_poll).  Used by the
  /// Tracer (src/runtime/trace.hpp); at most one hook is active.
  using SpanHook =
      std::function<void(PeId, SimTime, SimTime, bool)>;
  void set_span_hook(SpanHook hook) { span_hook_ = std::move(hook); }

  /// Attaches an observability registry (src/obs/registry.hpp): the
  /// machine then publishes task/idle-poll counts, message and byte
  /// counters split by locality tier (attributed to the sending
  /// entity), and a machine-wide ready-task depth series, all stamped
  /// in simulated time.  Publishing never charges simulated CPU, so
  /// attaching a registry does not perturb a run.  Pass nullptr to
  /// detach.  The registry must outlive the machine (or be detached
  /// first) and should share this machine's topology.
  void set_registry(obs::Registry* registry);
  obs::Registry* registry() const { return registry_; }

  /// Straggler injection: scales the speed of one PE.  A factor of 0.5
  /// halves its effective clock (every charge takes twice the simulated
  /// time).  Used by the load-imbalance experiments — a single slow PE
  /// is exactly the hazard the paper says bulk-synchronous algorithms
  /// amplify ("many processors may sit idle while waiting for one
  /// processor to reach the synchronization barrier", §I).
  void set_speed_factor(PeId pe, double factor);

 private:
  enum class EventKind : std::uint8_t { kArrival, kExec };

  struct Event {
    SimTime time;
    std::uint64_t seq;
    PeId pe;
    EventKind kind;
    Task task;  // only for kArrival
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // min-heap: earlier seq first
    }
  };

  void push_arrival(SimTime time, PeId pe, Task task);
  void ensure_exec_scheduled(Pe& pe, SimTime earliest);
  void handle_arrival(Event& event);
  void handle_exec(const Event& event);

  Topology topology_;
  NetworkModel network_;
  std::vector<Pe> pes_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t next_seq_ = 0;
  IdleHandlerId next_idle_handler_id_ = 1;
  SimTime current_time_ = 0.0;
  SimTime idle_poll_cost_us_ = 0.05;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t ready_tasks_ = 0;  // tasks waiting in PE fifos
  RunStats* active_stats_ = nullptr;
  SpanHook span_hook_;

  obs::Registry* registry_ = nullptr;
  std::unique_ptr<obs::RuntimeCounters> obs_;  // valid iff registry_
};

}  // namespace acic::runtime
