#pragma once
// The discrete-event machine: a deterministic simulation of a
// message-driven multi-node runtime in the style of Charm++ SMP mode.
//
// Execution model
// ---------------
// Each PE executes *tasks* (entry-method invocations) strictly one at a
// time, in arrival order; a task consumes simulated CPU by calling
// Pe::charge().  Messages between PEs pay the NetworkModel costs by
// locality.  When a PE's task queue drains, the machine invokes the PE's
// idle handler — the exact hook Charm++ gives applications, and the one
// ACIC uses to pull work from its priority queue (paper §II.C: "When a PE
// becomes idle ... the runtime system triggers a method that pulls
// updates in pq in increasing distance order").
//
// Hot-path layout (docs/performance.md)
// -------------------------------------
// Tasks are `runtime::Task` (src/runtime/task.hpp): move-only with
// inline capture storage, so scheduling a message allocates nothing for
// typical closures.  The event heap holds 24-byte POD `Event`s ordered
// in a 4-ary heap; an arrival's task is parked in a slot store
// (`task_slots_` + free list) and referenced by index, so heap sift
// operations move plain integers, never closures.  Receive overhead is
// charged by a flag bit on the queued-task word instead of a wrapping
// closure, and per-PE run queues are power-of-two rings of those words.
//
// Determinism
// -----------
// The event queue orders by (time, sequence number).  The sequence
// number is a composite key: the id of the simulated node that created
// the event in its top 16 bits, a per-node monotone counter below.
// Ties on time therefore break by (creating node, creation order on that
// node) — a total order that does not depend on how the events were
// interleaved across host threads, so serial and parallel execution
// replay the identical simulation.  Slot and pool reuse recycles
// *memory*, never ordering: indices take no part in event comparison.
//
// Parallel execution (docs/performance.md, "Parallel engine")
// -----------------------------------------------------------
// set_threads(N) with N > 1 runs the event loop with one shard (heap +
// slot store) per simulated node, advanced in barrier-synchronized
// conservative time windows: no message crosses nodes faster than the
// inter-node wire latency, so within a window each shard can execute
// its own node's events independently.  Cross-node sends buffer into
// per-(src,dst) mailboxes merged at the window barrier; because events
// order by the composite key above, the merged interleaving is
// bit-identical to the serial engine's at any thread count.
//
// The window width is governed by set_window_mode().  kFixed stops
// every shard at (global minimum event time) + latency_inter_node_us.
// kAdaptive (the default) widens per shard: shard d may run to
// (earliest event time on any OTHER shard) + latency, shrunk on the fly
// to (earliest cross-node arrival d itself buffered this window) +
// latency — both bounds are provably conservative (see
// docs/performance.md for the argument), so sparse cross-node traffic
// yields windows of hundreds of events instead of one latency sliver.
// Shards are claimed by worker threads through per-thread cursors with
// work stealing; ownership migration cannot perturb results because a
// shard's event order is fixed by the (time, node, seq) keys alone.
// Runs fall back to the serial loop when a registry or span hook is
// attached (observation streams are inherently ordered), on single-node
// topologies, or when the network model has no inter-node lookahead.
//
// Ownership discipline (per the HPC guides: message passing, no shared
// mutable state): a task scheduled on PE p may mutate only state owned by
// p; all cross-PE effects must travel through send()/enqueue_local().
// Under parallel execution this is a hard requirement, not just a design
// rule: a task's shard only owns the state of its own simulated node,
// and the ThreadSanitizer CI job enforces it as a data-race matter.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/runtime/network.hpp"
#include "src/runtime/task.hpp"
#include "src/runtime/topology.hpp"
#include "src/util/assert.hpp"
#include "src/util/dary_heap.hpp"

namespace acic::obs {
class Registry;
struct RuntimeCounters;
}  // namespace acic::obs

namespace acic::runtime {

class Machine;
class Pe;

/// Idle handler: invoked when the PE has no pending tasks.  Returns true
/// if it performed work (it will then be invoked again once that work's
/// simulated time has elapsed), false to let the PE sleep until the next
/// message arrives.
using IdleHandler = std::function<bool(Pe&)>;

/// Handle returned by Machine::add_idle_handler, used to deregister.
using IdleHandlerId = std::uint64_t;

inline constexpr SimTime kNoTimeLimit =
    std::numeric_limits<SimTime>::infinity();

/// Window policy for the parallel engine (serial runs ignore it).
enum class WindowMode {
  /// Every window is exactly latency_inter_node_us wide — the original
  /// conservative schedule.
  kFixed,
  /// Per-shard widening to the earliest possible cross-node arrival
  /// (other shards' minima + latency, tightened by the shard's own
  /// buffered sends).  Bit-identical to kFixed; strictly fewer windows.
  kAdaptive,
};

/// Execution discipline for the parallel engine (serial runs ignore it;
/// the serial path is byte-unchanged by the mode).
enum class EngineMode {
  /// Shards stop hard at the conservative window limit — the schedule
  /// every other mode is measured against.
  kConservative,
  /// Time-Warp-lite: after finishing its conservative window a shard
  /// checkpoints its local state (event heap + slot store, PE
  /// schedulers, seq counter, plus solver state via registered
  /// Snapshotable hooks) and keeps executing past the window limit up
  /// to a speculation horizon, holding cross-node sends back.  At the
  /// next barrier the speculation either commits (no message landed
  /// below the speculative execution point, and the new conservative
  /// window limit covers it) or rolls back to the checkpoint and
  /// replays conservatively.  The committed schedule is bit-identical
  /// to kConservative — checksums, sim times, and all simulated
  /// RunStats fields match; only the host-side diagnostics
  /// (speculation_* fields) differ.  Speculation engages only when at
  /// least one Snapshotable is registered and all registered hooks
  /// support it; otherwise the run silently downgrades to the
  /// conservative schedule.
  kOptimistic,
};

class Snapshotable;  // src/runtime/speculation.hpp

/// Aggregate statistics for one run() invocation.
///
/// The first block is simulated-side and bit-identical across thread
/// counts and window modes.  The fields after `hit_time_limit` are
/// host-side engine diagnostics: they describe how the host executed
/// the schedule, not the schedule itself, and legitimately vary with
/// set_threads / set_window_mode (steals additionally vary run to run).
struct RunStats {
  SimTime end_time_us = 0.0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t idle_polls = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Heap pops (arrivals + exec steps) — the event loop's raw unit of
  /// work, the denominator of the wall-clock benches' events/sec.
  std::uint64_t events_processed = 0;
  bool hit_time_limit = false;

  /// Effective worker-thread count: run_parallel clamps the requested
  /// set_threads value to the node count, and observed/serial runs use
  /// 1 — this is the number a scaling claim must cite.
  unsigned threads_used = 1;
  /// Conservative windows executed (0 under the serial loop).
  std::uint64_t windows = 0;
  /// Windows whose barrier had cross-node mail to merge; the rest
  /// skipped the merge phase entirely.
  std::uint64_t window_merges = 0;
  /// Shards executed by a thread other than their home thread.
  std::uint64_t shard_steals = 0;
  /// Optimistic-engine diagnostics (all 0 under kConservative and on
  /// the serial path).  Host-side only, like the fields above: the
  /// committed schedule never depends on how much was speculated.
  /// Speculative epochs that rolled back.
  std::uint64_t speculation_rollbacks = 0;
  /// Speculative epochs that committed.
  std::uint64_t speculation_commits = 0;
  /// Events executed past the conservative window limit (committed or
  /// not).
  std::uint64_t speculated_events = 0;
  /// Speculated events discarded by a rollback (re-executed later by
  /// the conservative schedule) — wasted work.
  std::uint64_t replayed_events = 0;
  /// Bytes copied into shard checkpoints (estimate: heap + slot
  /// bookkeeping + PE scheduler state + Snapshotable hook reports).
  std::uint64_t checkpoint_bytes = 0;
};

/// Per-PE execution context handed to every task and idle handler.
class Pe {
 public:
  PeId id() const { return id_; }
  Machine& machine() { return *machine_; }

  /// Consumes `us` microseconds of simulated CPU on this PE (scaled by
  /// the PE's speed factor; a factor of 0.5 makes everything take twice
  /// as long — see Machine::set_speed_factor).  Defined inline: this is
  /// the most-called function in the simulator (one or more calls per
  /// relaxed edge), and the full-speed case skips the divide — exact,
  /// since x / 1.0 == x bit for bit.
  void charge(SimTime us) {
    ACIC_HOT_ASSERT_MSG(us >= 0.0, "cannot charge negative time");
    const SimTime scaled =
        speed_factor_ == 1.0 ? us : us / speed_factor_;
    current_time_ += scaled;
    busy_us_ += scaled;
  }

  /// Current simulated time on this PE (advances within a task as CPU is
  /// charged).
  SimTime now() const { return current_time_; }

  /// Sends a message of `bytes` bytes to PE `to`; `task` runs there after
  /// network latency + transfer time.  Charges the sender's overhead.
  void send(PeId to, std::size_t bytes, Task task);

  /// Enqueues a continuation on this PE with no messaging cost.
  void enqueue_local(Task task);

 private:
  friend class Machine;

  /// FIFO of queued-task words (slot index plus the receive-overhead
  /// flag, packed as in Event).  A power-of-two ring: push_back and
  /// pop_front are an index mask each, and the backing store never
  /// moves in the steady state (a deque pays block bookkeeping per
  /// operation; this queue cycles ~10^5 times per SSSP query).
  class TaskRing {
   public:
    bool empty() const noexcept { return count_ == 0; }
    /// Next word pop_front would return (the optimistic engine peeks
    /// the queued task to decide whether it can be executed
    /// speculatively).  Requires !empty().
    std::uint32_t front() const noexcept { return buf_[head_]; }
    void push_back(std::uint32_t v) {
      if (count_ == buf_.size()) grow();
      buf_[(head_ + count_) & (buf_.size() - 1)] = v;
      ++count_;
    }
    std::uint32_t pop_front() {
      const std::uint32_t v = buf_[head_];
      head_ = (head_ + 1) & (buf_.size() - 1);
      --count_;
      return v;
    }

   private:
    void grow() {
      const std::size_t old_cap = buf_.size();
      std::vector<std::uint32_t> grown(old_cap == 0 ? 64 : old_cap * 2);
      for (std::size_t i = 0; i < count_; ++i) {
        grown[i] = buf_[(head_ + i) & (old_cap - 1)];
      }
      head_ = 0;
      buf_.swap(grown);
    }

    std::vector<std::uint32_t> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  PeId id_ = 0;
  Machine* machine_ = nullptr;

  // Scheduler state.
  TaskRing fifo_;
  SimTime avail_time_ = 0.0;     // when the PE finishes its current task
  SimTime current_time_ = 0.0;   // time inside the running task
  bool exec_scheduled_ = false;

  // Registered idle handlers, polled round-robin (multi-tenant engines
  // each register one; see Machine::add_idle_handler).
  struct IdleEntry {
    IdleHandlerId id;
    IdleHandler handler;
  };
  std::vector<IdleEntry> idle_handlers_;
  std::size_t idle_cursor_ = 0;  // next handler to poll (fairness)
  bool idle_polling_ = false;    // guards against mutation mid-poll

  // Per-PE accounting (read by load-imbalance analyses).
  SimTime busy_us_ = 0.0;
  std::uint64_t tasks_run_ = 0;
  double speed_factor_ = 1.0;
};

class Machine {
 public:
  Machine(Topology topology, NetworkModel network = {});
  ~Machine();  // out-of-line: obs::RuntimeCounters is incomplete here

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Worker PEs (the entities applications schedule work on).
  std::uint32_t num_pes() const { return topology_.num_pes(); }
  /// Workers plus per-process communication threads; any of these can be
  /// a message target.
  std::uint32_t num_entities() const { return topology_.num_entities(); }
  const Topology& topology() const { return topology_; }
  const NetworkModel& network() const { return network_; }

  /// Message send with full network costing.  Usable both from inside a
  /// running task (via Pe::send) and from setup code before run().
  void send(PeId from, PeId to, std::size_t bytes, Task task);

  /// Schedules `task` on `pe` at absolute simulated time `time` (used for
  /// initial work injection and timers).
  void schedule_at(SimTime time, PeId pe, Task task);

  /// Registers an additional idle handler for `pe` and returns a handle
  /// for deregistration.  When the PE goes idle, registered handlers are
  /// polled round-robin (one poll tries handlers in registration order,
  /// starting after the last one that did work) until one reports work —
  /// so concurrently active engines share the PE's idle time fairly and
  /// deterministically.  Handlers must not (de)register handlers on this
  /// PE from inside an idle poll.
  IdleHandlerId add_idle_handler(PeId pe, IdleHandler handler);

  /// Deregisters a handler previously returned by add_idle_handler.
  /// Asserts if `id` is not currently registered on `pe`.
  void remove_idle_handler(PeId pe, IdleHandlerId id);

  /// Number of idle handlers currently registered on `pe`.
  std::size_t num_idle_handlers(PeId pe) const;

  /// Runs the event loop until the queue drains or `time_limit` is
  /// reached.  May be called repeatedly; time continues monotonically.
  /// With set_threads(N > 1) on a multi-node topology the loop executes
  /// in parallel conservative time windows; results are bit-identical
  /// to the serial loop (see the header comment).
  RunStats run(SimTime time_limit = kNoTimeLimit);

  /// Host worker threads for run(): one shard per simulated node,
  /// clamped to the node count.  1 (the default) keeps the serial event
  /// loop.  Must not be called while run() is executing.
  void set_threads(unsigned threads) {
    ACIC_ASSERT_MSG(threads >= 1, "thread count must be >= 1");
    threads_ = threads;
  }
  unsigned threads() const { return threads_; }

  /// Window policy for parallel runs (see WindowMode).  Both modes are
  /// bit-identical; kAdaptive (the default) executes fewer, wider
  /// windows.  Must not be called while run() is executing.
  void set_window_mode(WindowMode mode) { window_mode_ = mode; }
  WindowMode window_mode() const { return window_mode_; }

  /// Execution discipline for parallel runs (see EngineMode).  Both
  /// modes commit the identical schedule; kOptimistic may execute past
  /// the conservative window and roll back on stragglers.  Must not be
  /// called while run() is executing.
  void set_engine_mode(EngineMode mode) { engine_mode_ = mode; }
  EngineMode engine_mode() const { return engine_mode_; }

  /// Registers application state with the optimistic engine: `hook`
  /// will be asked to checkpoint/restore/commit per-node state around
  /// speculative epochs (src/runtime/speculation.hpp).  Speculation
  /// only engages when at least one hook is registered and every
  /// registered hook reports speculation_supported(); a raw machine
  /// with no hooks, or any unsupported hook, runs the conservative
  /// schedule even under kOptimistic.  The hook must outlive the
  /// machine or be removed first.  Must not be called while run() is
  /// executing.
  void add_snapshotable(Snapshotable* hook);
  /// Deregisters a hook; asserts if it is not registered.
  void remove_snapshotable(Snapshotable* hook);

  /// Host-side engine diagnostics accumulated across run() calls (the
  /// per-run values live in RunStats).  Windows/merges are deterministic
  /// for a given (schedule, threads, mode); steals depend on host
  /// timing.
  std::uint64_t total_windows() const { return windows_; }
  std::uint64_t total_window_merges() const { return window_merges_; }
  std::uint64_t total_shard_steals() const { return shard_steals_; }
  std::uint64_t total_speculation_rollbacks() const {
    return speculation_rollbacks_;
  }
  std::uint64_t total_speculation_commits() const {
    return speculation_commits_;
  }
  std::uint64_t total_speculated_events() const { return speculated_events_; }
  std::uint64_t total_replayed_events() const { return replayed_events_; }
  std::uint64_t total_checkpoint_bytes() const { return checkpoint_bytes_; }

  /// Publishes the speculation diagnostics accumulated so far into
  /// `registry` as `parallel/speculation_*` counters plus a
  /// `parallel/speculation_gvt_lag` series (how far past the global
  /// virtual-time floor each resolved epoch had speculated, stamped at
  /// the floor's sim time).  Called after run(): parallel runs cannot
  /// have a registry attached (run() falls back to the serial loop
  /// when one is), so speculation counters are exported post-hoc
  /// rather than live.
  void publish_speculation(obs::Registry& registry) const;

  /// Effective worker count of the most recent run() (clamped to the
  /// node count; 1 for serial runs).
  unsigned last_threads_used() const { return last_threads_used_; }

  /// Time of the most recently processed event.
  SimTime current_time() const { return current_time_; }

  /// Per-PE busy time and task counts (for load-balance metrics).
  SimTime pe_busy_us(PeId pe) const { return pes_[pe].busy_us_; }
  std::uint64_t pe_tasks_run(PeId pe) const { return pes_[pe].tasks_run_; }

  std::uint64_t total_messages_sent() const { return messages_sent_; }
  std::uint64_t total_bytes_sent() const { return bytes_sent_; }
  std::uint64_t total_events_processed() const { return events_processed_; }

  /// Overhead charged per idle-handler poll (prevents zero-time idle
  /// loops; roughly the cost of the runtime scheduler's empty-queue
  /// check).
  void set_idle_poll_cost(SimTime us) { idle_poll_cost_us_ = us; }

  /// Observability hook: invoked after every executed task and idle
  /// poll with (pe, start_us, end_us, was_idle_poll).  Used by the
  /// Tracer (src/runtime/trace.hpp); at most one hook is active.
  using SpanHook =
      std::function<void(PeId, SimTime, SimTime, bool)>;
  void set_span_hook(SpanHook hook) { span_hook_ = std::move(hook); }

  /// Attaches an observability registry (src/obs/registry.hpp): the
  /// machine then publishes task/idle-poll counts, message and byte
  /// counters split by locality tier (attributed to the sending
  /// entity), and a machine-wide ready-task depth series, all stamped
  /// in simulated time.  Publishing never charges simulated CPU, so
  /// attaching a registry does not perturb a run.  Ready-depth samples
  /// are batched per distinct timestamp (intermediate same-time values
  /// are unobservable), keeping the attach cost low.  Pass nullptr to
  /// detach.  The registry must outlive the machine (or be detached
  /// first) and should share this machine's topology.
  void set_registry(obs::Registry* registry);
  obs::Registry* registry() const { return registry_; }

  /// Straggler injection: scales the speed of one PE.  A factor of 0.5
  /// halves its effective clock (every charge takes twice the simulated
  /// time).  Used by the load-imbalance experiments — a single slow PE
  /// is exactly the hazard the paper says bulk-synchronous algorithms
  /// amplify ("many processors may sit idle while waiting for one
  /// processor to reach the synchronization barrier", §I).
  void set_speed_factor(PeId pe, double factor);

 private:
  /// Event kind and the receive-overhead flag fold into the top two bits
  /// of the slot word: slot indices stay well under 2^30 (one live slot
  /// per parked arrival), and the fold shrinks Event from 32 to 24 bytes
  /// — one fewer cache line per 4-ary heap child group.
  static constexpr std::uint32_t kExecBit = 0x80000000u;
  static constexpr std::uint32_t kRecvBit = 0x40000000u;
  static constexpr std::uint32_t kSlotMask = 0x3fffffffu;
  static constexpr std::uint32_t kNoSlot = kSlotMask;

  /// 24-byte POD heap element.  The arrival payload lives in the slot
  /// store; sifting moves integers only.
  struct Event {
    SimTime time;
    std::uint64_t seq;
    PeId pe;
    std::uint32_t packed;  // kExecBit | kRecvBit | slot (task_slots_ index)

    bool is_exec() const { return (packed & kExecBit) != 0; }
    bool charge_recv() const { return (packed & kRecvBit) != 0; }
    std::uint32_t slot() const { return packed & kSlotMask; }
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // min-heap: earlier (node, counter) key first
    }
  };

  /// One event-loop shard (heap + slot store + outgoing mailboxes +
  /// run-stat deltas) per simulated node.  Defined in machine.cpp.
  struct Shard;
  /// Persistent parallel-run scratch (the shards and their mailbox /
  /// slot-store capacities), reused across run() calls so steady-state
  /// serving workloads never reallocate per window or per run.
  struct ParallelState;
  /// A cross-node arrival buffered until the window barrier.  The seq
  /// was already assigned by the *sending* shard, so merge order is
  /// decided by the heap comparator alone.
  struct Mail;

  /// Composite event key: creating node in the top 16 bits, that node's
  /// monotone counter below.  Per-node counters are what let shards
  /// assign globally ordered keys without synchronizing.
  std::uint64_t next_seq(std::uint32_t node) {
    return (static_cast<std::uint64_t>(node) << 48) | node_seq_[node].next++;
  }

  void push_arrival(SimTime time, PeId pe, Task task, bool charge_recv);
  void push_exec(SimTime time, PeId pe);
  void ensure_exec_scheduled(Pe& pe, SimTime earliest);
  void handle_arrival(const Event& event);
  void handle_exec(const Event& event);

  RunStats run_parallel(SimTime time_limit);

  std::uint32_t acquire_slot(Task task);
  Task release_slot(std::uint32_t slot);

  /// Records the ready-depth series sample for `time`, coalescing all
  /// same-timestamp changes into the final value (flushed when the
  /// timestamp advances or the run ends).
  void note_ready_depth(SimTime time);
  void flush_ready_sample();

  Topology topology_;
  NetworkModel network_;
  std::vector<Pe> pes_;
  util::DaryHeap<Event, EventOrder> queue_;
  /// Parked arrival tasks, indexed by Event::slot; free_slots_ recycles
  /// indices LIFO.
  std::vector<Task> task_slots_;
  std::vector<std::uint32_t> free_slots_;
  /// entity id -> simulated node, precomputed (node_of costs two integer
  /// divisions; this table is hit once or more per event).
  std::vector<std::uint32_t> entity_node_;
  /// Per-node event counters, cache-line padded: under parallel
  /// execution each shard increments only its own node's counter.
  struct alignas(64) NodeSeq {
    std::uint64_t next = 0;
  };
  std::vector<NodeSeq> node_seq_;
  /// Node of the event being dispatched by the *serial* loop — the
  /// serial mirror of the parallel engine's "executing shard", so both
  /// assign identical composite keys.
  std::uint32_t current_node_ = 0;
  bool running_ = false;  // inside the serial run() loop
  unsigned threads_ = 1;
  WindowMode window_mode_ = WindowMode::kAdaptive;
  EngineMode engine_mode_ = EngineMode::kConservative;
  /// Application state registered for optimistic checkpointing.
  std::vector<Snapshotable*> snapshotables_;
  std::unique_ptr<ParallelState> par_;  // lazily built by run_parallel
  /// The shard the calling host thread is executing (null outside
  /// parallel run()); routes pushes/slot ops/stat updates to shard-local
  /// state.
  static thread_local Shard* tls_shard_;
  IdleHandlerId next_idle_handler_id_ = 1;
  SimTime current_time_ = 0.0;
  SimTime idle_poll_cost_us_ = 0.05;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t window_merges_ = 0;
  std::uint64_t shard_steals_ = 0;
  std::uint64_t speculation_rollbacks_ = 0;
  std::uint64_t speculation_commits_ = 0;
  std::uint64_t speculated_events_ = 0;
  std::uint64_t replayed_events_ = 0;
  std::uint64_t checkpoint_bytes_ = 0;
  /// (GVT floor sim time, speculation lag) per resolved epoch, bounded
  /// (oldest kept); feeds the parallel/speculation_gvt_lag series.
  std::vector<std::pair<double, double>> gvt_lag_log_;
  unsigned last_threads_used_ = 1;
  std::uint64_t ready_tasks_ = 0;  // tasks waiting in PE fifos
  RunStats* active_stats_ = nullptr;
  SpanHook span_hook_;

  obs::Registry* registry_ = nullptr;
  std::unique_ptr<obs::RuntimeCounters> obs_;  // valid iff registry_
  bool ready_sample_pending_ = false;
  SimTime ready_sample_time_ = 0.0;
  double ready_sample_value_ = 0.0;
};

}  // namespace acic::runtime
