#pragma once
// Machine-wide observability registry — the first-class home for the
// counters, gauges and time series that the paper's argument rests on.
//
// ACIC's central claim is that *continuous introspection* (reduction-
// cycle histograms, threshold throttling) explains its speedups; before
// this layer existed the repro could only see that through ad-hoc
// per-solver stats structs collected after the fact.  The registry turns
// the same signals into a live stream any component can publish into:
//
//   * Counters    — monotone event counts, recorded per *entity* (worker
//     PE or comm thread) and rolled up on demand through the machine
//     hierarchy: machine → node → process → PE.  A counter may be
//     `timed`, in which case every increment also appends a
//     (sim time, machine total) sample, producing a counter *track* the
//     Chrome-trace exporter turns into a Perfetto counter timeline.
//   * Series      — free-form (sim time, value) streams at any scope
//     (queue depths, chosen thresholds, buffer occupancy at flush).
//   * Histogram series — per-reduction-cycle snapshots of a full
//     histogram (the paper's fig. 1/2 data as a stream instead of a
//     post-hoc dump).
//
// Publishing is observational only: no registry call ever charges
// simulated CPU, so attaching a registry never perturbs a run — the
// equivalence tests rely on that.
//
// Ownership: the registry must outlive every component publishing into
// it (Machine, Tram, engines).  All ids are stable for the registry's
// lifetime.  Names are shared namespaces: two components defining the
// same counter name intentionally merge into one machine-wide family
// (e.g. every per-query tram instance feeding "tram/items_inserted").

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/network.hpp"
#include "src/runtime/topology.hpp"

namespace acic::obs {

/// Level of the machine hierarchy a query or series refers to.
enum class ScopeKind : std::uint8_t { kMachine, kNode, kProcess, kPe };

const char* scope_kind_name(ScopeKind kind);

/// One position in the hierarchy: the whole machine, one node, one
/// process, or one schedulable entity (worker PE or comm thread).
struct Scope {
  ScopeKind kind = ScopeKind::kMachine;
  std::uint32_t index = 0;

  static Scope machine() { return {ScopeKind::kMachine, 0}; }
  static Scope node(std::uint32_t n) { return {ScopeKind::kNode, n}; }
  static Scope process(std::uint32_t p) { return {ScopeKind::kProcess, p}; }
  static Scope pe(runtime::PeId p) { return {ScopeKind::kPe, p}; }
};

struct CounterId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};
struct SeriesId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};
struct HistogramSeriesId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

struct TimePoint {
  runtime::SimTime time_us = 0.0;
  double value = 0.0;
};

/// A named monotone counter with one cell per entity.
struct CounterFamily {
  std::string name;
  bool timed = false;
  std::uint64_t total = 0;
  /// Indexed by entity id (worker PEs then comm threads).
  std::vector<std::uint64_t> per_entity;
  /// (time, machine total) track; only appended when `timed`.
  std::vector<TimePoint> samples;
};

/// A named (time, value) stream at a fixed scope.
struct Series {
  std::string name;
  Scope scope;
  std::vector<TimePoint> points;
};

struct HistogramSample {
  std::uint64_t cycle = 0;
  runtime::SimTime time_us = 0.0;
  std::vector<double> counts;
};

struct HistogramSeries {
  std::string name;
  std::vector<HistogramSample> samples;
};

class Registry {
 public:
  explicit Registry(runtime::Topology topology);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  const runtime::Topology& topology() const { return topology_; }

  // ---- counters --------------------------------------------------------

  /// Defines (or finds — families are shared by name) a counter family.
  /// A family defined untimed is upgraded to timed if any caller asks.
  CounterId counter(const std::string& name, bool timed = false);

  /// Increments `entity`'s cell by `delta`.  `now_us` stamps the counter
  /// track sample for timed families (ignored otherwise).
  void add(CounterId id, runtime::PeId entity, std::uint64_t delta,
           runtime::SimTime now_us);

  /// Machine-wide total.
  std::uint64_t total(CounterId id) const;
  /// Machine-wide total by name; 0 for unknown counters.
  std::uint64_t total(const std::string& name) const;
  /// Hierarchy rollup: sum of the cells of every entity inside `scope`
  /// (comm threads attribute to their process/node like their workers).
  std::uint64_t at(CounterId id, Scope scope) const;

  // ---- series ----------------------------------------------------------

  /// Defines (or finds, by name + scope) a time series.
  SeriesId series(const std::string& name, Scope scope = Scope::machine());
  void append(SeriesId id, runtime::SimTime time_us, double value);

  // ---- histogram series ------------------------------------------------

  HistogramSeriesId histogram_series(const std::string& name);
  void append_histogram(HistogramSeriesId id, std::uint64_t cycle,
                        runtime::SimTime time_us,
                        const std::vector<double>& counts);

  // ---- sampling policy -------------------------------------------------

  /// Coalesces counter-track and series samples closer than `us` to the
  /// previous sample: the newer value *overwrites* the last sample, so
  /// the final value of every track is always exact while the sample
  /// count stays bounded by run time / interval.  0 (default) keeps
  /// every sample.
  void set_min_sample_interval(runtime::SimTime us);

  // ---- enumeration (exporters, tests) ----------------------------------

  const std::vector<CounterFamily>& counters() const { return counters_; }
  const std::vector<Series>& all_series() const { return series_; }
  const std::vector<HistogramSeries>& histograms() const {
    return histograms_;
  }
  const CounterFamily* find_counter(const std::string& name) const;
  const Series* find_series(const std::string& name) const;
  const HistogramSeries* find_histogram(const std::string& name) const;

 private:
  void push_point(std::vector<TimePoint>* points, runtime::SimTime t,
                  double value) const;
  bool in_scope(runtime::PeId entity, Scope scope) const;

  runtime::Topology topology_;
  runtime::SimTime min_sample_interval_us_ = 0.0;
  std::vector<CounterFamily> counters_;
  std::vector<Series> series_;
  std::vector<HistogramSeries> histograms_;
};

/// Handles for the counters a Machine publishes when a registry is
/// attached (src/runtime/machine.hpp holds these behind a pointer so
/// the runtime layer needs only a forward declaration of obs).
struct RuntimeCounters {
  CounterId tasks_executed;
  CounterId idle_polls;
  // Message and byte counts split by locality tier, attributed to the
  // *sending* entity.
  CounterId messages_self;
  CounterId messages_intra_process;
  CounterId messages_intra_node;
  CounterId messages_inter_node;
  CounterId bytes_self;
  CounterId bytes_intra_process;
  CounterId bytes_intra_node;
  CounterId bytes_inter_node;
  /// Machine-wide count of tasks waiting in PE fifos, sampled in sim
  /// time at every change.
  SeriesId ready_tasks;

  CounterId messages(runtime::Locality loc) const;
  CounterId bytes(runtime::Locality loc) const;
};

/// Defines the runtime counter families on `registry` (idempotent —
/// families are shared by name).
RuntimeCounters define_runtime_counters(Registry& registry);

}  // namespace acic::obs
