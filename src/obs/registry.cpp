#include "src/obs/registry.hpp"

#include "src/util/assert.hpp"

namespace acic::obs {

const char* scope_kind_name(ScopeKind kind) {
  switch (kind) {
    case ScopeKind::kMachine:
      return "machine";
    case ScopeKind::kNode:
      return "node";
    case ScopeKind::kProcess:
      return "process";
    case ScopeKind::kPe:
      return "pe";
  }
  return "?";
}

Registry::Registry(runtime::Topology topology) : topology_(topology) {
  topology_.validate();
}

CounterId Registry::counter(const std::string& name, bool timed) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name == name) {
      counters_[i].timed = counters_[i].timed || timed;
      return CounterId{i};
    }
  }
  CounterFamily family;
  family.name = name;
  family.timed = timed;
  family.per_entity.assign(topology_.num_entities(), 0);
  counters_.push_back(std::move(family));
  return CounterId{counters_.size() - 1};
}

void Registry::add(CounterId id, runtime::PeId entity, std::uint64_t delta,
                   runtime::SimTime now_us) {
  ACIC_ASSERT(id.valid() && id.index < counters_.size());
  ACIC_ASSERT(entity < topology_.num_entities());
  CounterFamily& family = counters_[id.index];
  family.per_entity[entity] += delta;
  family.total += delta;
  if (family.timed) {
    push_point(&family.samples, now_us,
               static_cast<double>(family.total));
  }
}

std::uint64_t Registry::total(CounterId id) const {
  ACIC_ASSERT(id.valid() && id.index < counters_.size());
  return counters_[id.index].total;
}

std::uint64_t Registry::total(const std::string& name) const {
  const CounterFamily* family = find_counter(name);
  return family != nullptr ? family->total : 0;
}

bool Registry::in_scope(runtime::PeId entity, Scope scope) const {
  switch (scope.kind) {
    case ScopeKind::kMachine:
      return true;
    case ScopeKind::kNode:
      return topology_.node_of(entity) == scope.index;
    case ScopeKind::kProcess:
      return topology_.proc_of(entity) == scope.index;
    case ScopeKind::kPe:
      return entity == scope.index;
  }
  return false;
}

std::uint64_t Registry::at(CounterId id, Scope scope) const {
  ACIC_ASSERT(id.valid() && id.index < counters_.size());
  const CounterFamily& family = counters_[id.index];
  std::uint64_t sum = 0;
  for (runtime::PeId e = 0; e < topology_.num_entities(); ++e) {
    if (in_scope(e, scope)) sum += family.per_entity[e];
  }
  return sum;
}

SeriesId Registry::series(const std::string& name, Scope scope) {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name && series_[i].scope.kind == scope.kind &&
        series_[i].scope.index == scope.index) {
      return SeriesId{i};
    }
  }
  Series s;
  s.name = name;
  s.scope = scope;
  series_.push_back(std::move(s));
  return SeriesId{series_.size() - 1};
}

void Registry::append(SeriesId id, runtime::SimTime time_us, double value) {
  ACIC_ASSERT(id.valid() && id.index < series_.size());
  push_point(&series_[id.index].points, time_us, value);
}

HistogramSeriesId Registry::histogram_series(const std::string& name) {
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i].name == name) return HistogramSeriesId{i};
  }
  HistogramSeries h;
  h.name = name;
  histograms_.push_back(std::move(h));
  return HistogramSeriesId{histograms_.size() - 1};
}

void Registry::append_histogram(HistogramSeriesId id, std::uint64_t cycle,
                                runtime::SimTime time_us,
                                const std::vector<double>& counts) {
  ACIC_ASSERT(id.valid() && id.index < histograms_.size());
  HistogramSample sample;
  sample.cycle = cycle;
  sample.time_us = time_us;
  sample.counts = counts;
  histograms_[id.index].samples.push_back(std::move(sample));
}

void Registry::set_min_sample_interval(runtime::SimTime us) {
  ACIC_ASSERT_MSG(us >= 0.0, "sample interval must be non-negative");
  min_sample_interval_us_ = us;
}

void Registry::push_point(std::vector<TimePoint>* points,
                          runtime::SimTime t, double value) const {
  // Coalesce: overwrite the previous sample when the new one is closer
  // than the configured interval, so tracks stay bounded but their final
  // value is always exact.
  if (!points->empty() &&
      t - points->back().time_us < min_sample_interval_us_) {
    points->back().value = value;
    return;
  }
  points->push_back(TimePoint{t, value});
}

const CounterFamily* Registry::find_counter(const std::string& name) const {
  for (const CounterFamily& family : counters_) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

const Series* Registry::find_series(const std::string& name) const {
  for (const Series& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const HistogramSeries* Registry::find_histogram(
    const std::string& name) const {
  for (const HistogramSeries& h : histograms_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

CounterId RuntimeCounters::messages(runtime::Locality loc) const {
  switch (loc) {
    case runtime::Locality::kSelf:
      return messages_self;
    case runtime::Locality::kIntraProcess:
      return messages_intra_process;
    case runtime::Locality::kIntraNode:
      return messages_intra_node;
    case runtime::Locality::kInterNode:
      return messages_inter_node;
  }
  return messages_self;
}

CounterId RuntimeCounters::bytes(runtime::Locality loc) const {
  switch (loc) {
    case runtime::Locality::kSelf:
      return bytes_self;
    case runtime::Locality::kIntraProcess:
      return bytes_intra_process;
    case runtime::Locality::kIntraNode:
      return bytes_intra_node;
    case runtime::Locality::kInterNode:
      return bytes_inter_node;
  }
  return bytes_self;
}

RuntimeCounters define_runtime_counters(Registry& registry) {
  RuntimeCounters c;
  c.tasks_executed = registry.counter("runtime/tasks_executed");
  c.idle_polls = registry.counter("runtime/idle_polls");
  c.messages_self = registry.counter("net/messages_self", /*timed=*/true);
  c.messages_intra_process =
      registry.counter("net/messages_intra_process", /*timed=*/true);
  c.messages_intra_node =
      registry.counter("net/messages_intra_node", /*timed=*/true);
  c.messages_inter_node =
      registry.counter("net/messages_inter_node", /*timed=*/true);
  c.bytes_self = registry.counter("net/bytes_self", /*timed=*/true);
  c.bytes_intra_process =
      registry.counter("net/bytes_intra_process", /*timed=*/true);
  c.bytes_intra_node =
      registry.counter("net/bytes_intra_node", /*timed=*/true);
  c.bytes_inter_node =
      registry.counter("net/bytes_inter_node", /*timed=*/true);
  c.ready_tasks = registry.series("runtime/ready_tasks");
  return c;
}

}  // namespace acic::obs
