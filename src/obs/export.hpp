#pragma once
// Trace and time-series exporters.
//
// `write_chrome_trace` emits Chrome trace-event JSON — the format
// Perfetto (https://ui.perfetto.dev) and chrome://tracing load directly:
//
//   * Tracer spans become slices on *thread tracks*: one track per
//     schedulable entity (pid = owning process, tid = entity id), with
//     metadata events naming every process ("nodeN/procM") and thread
//     ("peK" / "commM").  Named spans (ScopedSpan) keep their names;
//     anonymous machine spans render as "task" / "idle".
//   * Registry timed counters and series become *counter tracks*
//     (`"ph":"C"`), e.g. one track per message-locality tier.  A final
//     sample at the trace end pins every track to its exact total.
//   * Registry histogram series become instant events carrying per-cycle
//     summary args (cycle, active updates, non-empty buckets).
//
// `write_timeseries_csv` dumps every counter track and series as
// `kind,name,time_us,value` rows; `write_counters_csv` dumps counter
// rollups at machine/node/process scope.  All writers return false on
// I/O error and never throw.

#include <string>

#include "src/obs/registry.hpp"
#include "src/runtime/topology.hpp"

namespace acic::runtime {
class Tracer;
}

namespace acic::obs {

/// Either of `tracer` / `registry` may be null; the other's events are
/// still exported.  `topology` maps entities to processes for track
/// grouping (use the machine's topology).
bool write_chrome_trace(const std::string& path,
                        const runtime::Topology& topology,
                        const runtime::Tracer* tracer,
                        const Registry* registry);

/// `kind,name,time_us,value` rows for every timed counter and series.
bool write_timeseries_csv(const std::string& path, const Registry& registry);

/// `name,scope,index,value` rollup rows (machine, per node, per process)
/// for every counter family.
bool write_counters_csv(const std::string& path, const Registry& registry);

/// `name,cycle,time_us,active,b0,b1,...` rows for one histogram series;
/// false if the series does not exist or on I/O error.
bool write_histogram_csv(const std::string& path, const Registry& registry,
                         const std::string& series_name);

}  // namespace acic::obs
