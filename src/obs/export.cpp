#include "src/obs/export.hpp"

#include <algorithm>
#include <cstdio>

#include "src/runtime/trace.hpp"

namespace acic::obs {

namespace {

/// JSON string escaping for the few characters that can appear in our
/// metric/span names (no control characters are ever used).
void write_json_string(std::FILE* f, const char* s) {
  std::fputc('"', f);
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') std::fputc('\\', f);
    std::fputc(*s, f);
  }
  std::fputc('"', f);
}

class EventWriter {
 public:
  explicit EventWriter(std::FILE* f) : f_(f) {}

  /// Starts one event object, handling the comma between events.
  void begin() {
    if (!first_) std::fputs(",\n", f_);
    first_ = false;
    std::fputs("  {", f_);
  }
  void end() { std::fputc('}', f_); }

  std::FILE* f() { return f_; }

 private:
  std::FILE* f_ = nullptr;
  bool first_ = true;
};

void counter_sample(EventWriter& out, const std::string& name,
                    runtime::SimTime ts, double value) {
  out.begin();
  std::fputs("\"name\":", out.f());
  write_json_string(out.f(), name.c_str());
  std::fprintf(out.f(),
               ",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0,\"args\":{\"value\":%.3f}",
               ts, value);
  out.end();
}

}  // namespace

bool write_chrome_trace(const std::string& path,
                        const runtime::Topology& topology,
                        const runtime::Tracer* tracer,
                        const Registry* registry) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  EventWriter out(f);

  // The latest timestamp seen anywhere; used to pin counter tracks to
  // their final totals at the end of the trace.
  runtime::SimTime end_ts = 0.0;

  // Metadata: name every process and entity track.
  for (std::uint32_t proc = 0; proc < topology.num_procs(); ++proc) {
    out.begin();
    std::fprintf(f,
                 "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"args\":{\"name\":\"node%u/proc%u\"}",
                 proc, proc / topology.procs_per_node,
                 proc % topology.procs_per_node);
    out.end();
  }
  for (runtime::PeId e = 0; e < topology.num_entities(); ++e) {
    out.begin();
    std::fprintf(f,
                 "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s%u\"}",
                 topology.proc_of(e), e,
                 topology.is_comm_thread(e) ? "comm" : "pe",
                 topology.is_comm_thread(e) ? topology.proc_of(e) : e);
    out.end();
  }

  if (tracer != nullptr) {
    for (const runtime::TraceSpan& span : tracer->spans()) {
      const char* name = span.name != nullptr ? span.name
                         : span.kind == runtime::SpanKind::kIdlePoll
                             ? "idle"
                             : "task";
      const char* cat = span.kind == runtime::SpanKind::kIdlePoll
                            ? "idle"
                        : span.kind == runtime::SpanKind::kNamed ? "app"
                                                                 : "runtime";
      out.begin();
      std::fputs("\"name\":", f);
      write_json_string(f, name);
      std::fprintf(f,
                   ",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                   "\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
                   cat, span.start_us,
                   std::max(0.0, span.end_us - span.start_us),
                   span.pe < topology.num_entities()
                       ? topology.proc_of(span.pe)
                       : 0,
                   span.pe);
      out.end();
      end_ts = std::max(end_ts, span.end_us);
    }
  }

  if (registry != nullptr) {
    for (const CounterFamily& family : registry->counters()) {
      for (const TimePoint& p : family.samples) {
        end_ts = std::max(end_ts, p.time_us);
      }
    }
    for (const Series& s : registry->all_series()) {
      for (const TimePoint& p : s.points) {
        end_ts = std::max(end_ts, p.time_us);
      }
    }
    for (const HistogramSeries& h : registry->histograms()) {
      for (const HistogramSample& sample : h.samples) {
        end_ts = std::max(end_ts, sample.time_us);
      }
    }

    for (const CounterFamily& family : registry->counters()) {
      if (!family.timed) continue;
      // Guarantee every timed counter renders as a track with an exact
      // final value, even if it never fired.
      if (family.samples.empty() ||
          family.samples.front().time_us > 0.0) {
        counter_sample(out, family.name, 0.0, 0.0);
      }
      for (const TimePoint& p : family.samples) {
        counter_sample(out, family.name, p.time_us, p.value);
      }
      counter_sample(out, family.name, end_ts,
                     static_cast<double>(family.total));
    }

    for (const Series& s : registry->all_series()) {
      std::string name = s.name;
      if (s.scope.kind != ScopeKind::kMachine) {
        name += '/';
        name += scope_kind_name(s.scope.kind);
        name += std::to_string(s.scope.index);
      }
      for (const TimePoint& p : s.points) {
        counter_sample(out, name, p.time_us, p.value);
      }
    }

    for (const HistogramSeries& h : registry->histograms()) {
      for (const HistogramSample& sample : h.samples) {
        double active = 0.0;
        std::size_t nonzero = 0;
        for (const double c : sample.counts) {
          active += c;
          if (c > 0.0) ++nonzero;
        }
        out.begin();
        std::fputs("\"name\":", f);
        write_json_string(f, h.name.c_str());
        std::fprintf(f,
                     ",\"cat\":\"histogram\",\"ph\":\"I\",\"s\":\"g\","
                     "\"ts\":%.3f,\"pid\":0,\"args\":{\"cycle\":%llu,"
                     "\"active\":%.0f,\"nonzero_buckets\":%zu}",
                     sample.time_us,
                     static_cast<unsigned long long>(sample.cycle), active,
                     nonzero);
        out.end();
      }
    }
  }

  std::fputs("\n]}\n", f);
  std::fclose(f);
  return true;
}

bool write_timeseries_csv(const std::string& path,
                          const Registry& registry) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("kind,name,time_us,value\n", f);
  for (const CounterFamily& family : registry.counters()) {
    for (const TimePoint& p : family.samples) {
      std::fprintf(f, "counter,%s,%.3f,%.3f\n", family.name.c_str(),
                   p.time_us, p.value);
    }
  }
  for (const Series& s : registry.all_series()) {
    for (const TimePoint& p : s.points) {
      std::fprintf(f, "series,%s,%.3f,%.3f\n", s.name.c_str(), p.time_us,
                   p.value);
    }
  }
  std::fclose(f);
  return true;
}

bool write_counters_csv(const std::string& path, const Registry& registry) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("name,scope,index,value\n", f);
  const runtime::Topology& topo = registry.topology();
  for (const CounterFamily& family : registry.counters()) {
    CounterId id;
    // Re-derive the id by name: enumeration order matches definition
    // order, so index == position.
    id.index = static_cast<std::size_t>(&family - registry.counters().data());
    std::fprintf(f, "%s,machine,0,%llu\n", family.name.c_str(),
                 static_cast<unsigned long long>(registry.total(id)));
    for (std::uint32_t n = 0; n < topo.nodes; ++n) {
      std::fprintf(f, "%s,node,%u,%llu\n", family.name.c_str(), n,
                   static_cast<unsigned long long>(
                       registry.at(id, Scope::node(n))));
    }
    for (std::uint32_t p = 0; p < topo.num_procs(); ++p) {
      std::fprintf(f, "%s,process,%u,%llu\n", family.name.c_str(), p,
                   static_cast<unsigned long long>(
                       registry.at(id, Scope::process(p))));
    }
  }
  std::fclose(f);
  return true;
}

bool write_histogram_csv(const std::string& path, const Registry& registry,
                         const std::string& series_name) {
  const HistogramSeries* series = registry.find_histogram(series_name);
  if (series == nullptr) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::size_t width = 0;
  for (const HistogramSample& sample : series->samples) {
    width = std::max(width, sample.counts.size());
  }
  std::fputs("cycle,time_us,active", f);
  for (std::size_t b = 0; b < width; ++b) std::fprintf(f, ",b%zu", b);
  std::fputc('\n', f);
  for (const HistogramSample& sample : series->samples) {
    double active = 0.0;
    for (const double c : sample.counts) active += c;
    std::fprintf(f, "%llu,%.3f,%.0f",
                 static_cast<unsigned long long>(sample.cycle),
                 sample.time_us, active);
    for (std::size_t b = 0; b < width; ++b) {
      std::fprintf(f, ",%.0f",
                   b < sample.counts.size() ? sample.counts[b] : 0.0);
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
  return true;
}

}  // namespace acic::obs
