#include "src/graph/bfs.hpp"

#include <algorithm>
#include <queue>

#include "src/util/assert.hpp"

namespace acic::graph {

std::vector<std::uint32_t> bfs_hops(const Csr& csr, VertexId source) {
  ACIC_ASSERT(source < csr.num_vertices());
  std::vector<std::uint32_t> hops(csr.num_vertices(), kUnreachedHops);
  hops[source] = 0;
  std::queue<VertexId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (const Neighbor& nb : csr.out_neighbors(v)) {
      if (hops[nb.dst] == kUnreachedHops) {
        hops[nb.dst] = hops[v] + 1;
        frontier.push(nb.dst);
      }
    }
  }
  return hops;
}

std::size_t count_reachable(const Csr& csr, VertexId source) {
  const auto hops = bfs_hops(csr, source);
  std::size_t count = 0;
  for (const std::uint32_t h : hops) {
    if (h != kUnreachedHops) ++count;
  }
  return count;
}

std::uint32_t eccentricity_hops(const Csr& csr, VertexId source) {
  const auto hops = bfs_hops(csr, source);
  std::uint32_t best = 0;
  for (const std::uint32_t h : hops) {
    if (h != kUnreachedHops) best = std::max(best, h);
  }
  return best;
}

std::uint32_t estimate_diameter_hops(const Csr& csr, VertexId start) {
  if (csr.num_vertices() == 0) return 0;
  const auto first = bfs_hops(csr, start);
  VertexId farthest = start;
  std::uint32_t best = 0;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (first[v] != kUnreachedHops && first[v] >= best) {
      best = first[v];
      farthest = v;
    }
  }
  return eccentricity_hops(csr, farthest);
}

}  // namespace acic::graph
