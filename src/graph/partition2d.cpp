#include "src/graph/partition2d.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace acic::graph {

Partition2D::Partition2D(const Csr& csr, std::uint32_t rows,
                         std::uint32_t cols)
    : rows_(rows),
      cols_(cols),
      groups_(Partition1D::block(csr.num_vertices(), rows * cols)) {
  ACIC_ASSERT(rows_ > 0 && cols_ > 0);
  cell_edges_.resize(num_cells());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    const std::uint32_t src_col = col_of(state_owner(group_of(v)));
    for (const Neighbor& nb : csr.out_neighbors(v)) {
      const std::uint32_t dst_row = row_of(state_owner(group_of(nb.dst)));
      cell_edges_[cell(dst_row, src_col)].push_back(
          Edge{v, nb.dst, nb.weight});
    }
  }
  for (auto& edges : cell_edges_) {
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) {
                if (a.src != b.src) return a.src < b.src;
                return a.dst < b.dst;
              });
  }
}

Partition2D Partition2D::squarest(const Csr& csr, std::uint32_t num_pes) {
  ACIC_ASSERT(num_pes > 0);
  std::uint32_t best_rows = 1;
  for (std::uint32_t r = 1; r * r <= num_pes; ++r) {
    if (num_pes % r == 0) best_rows = r;
  }
  return Partition2D(csr, best_rows, num_pes / best_rows);
}

std::span<const Edge> Partition2D::cell_out_edges(std::uint32_t pe,
                                                  VertexId v) const {
  const std::vector<Edge>& edges = cell_edges_[pe];
  const auto lower = std::lower_bound(
      edges.begin(), edges.end(), v,
      [](const Edge& e, VertexId vertex) { return e.src < vertex; });
  auto upper = lower;
  while (upper != edges.end() && upper->src == v) ++upper;
  return {edges.data() + (lower - edges.begin()),
          static_cast<std::size_t>(upper - lower)};
}

std::vector<std::size_t> Partition2D::edges_per_cell() const {
  std::vector<std::size_t> counts(num_cells());
  for (std::uint32_t pe = 0; pe < num_cells(); ++pe) {
    counts[pe] = cell_edges_[pe].size();
  }
  return counts;
}

}  // namespace acic::graph
