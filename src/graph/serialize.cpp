#include "src/graph/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/graph/csr_file.hpp"

namespace acic::graph {

namespace {

constexpr std::uint64_t kMagic = 0x43495343'52535243ULL;  // "ACIC CSRC"
constexpr std::uint32_t kVersion = 1;         // frozen CSR
constexpr std::uint32_t kDynamicVersion = 2;  // base CSR + mutation log

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
};

/// On-disk form of one applied mutation: explicit fixed-width fields so
/// the layout is independent of AppliedMutation's in-memory padding.
struct MutationRecord {
  std::uint64_t timestamp = 0;
  std::uint64_t epoch = 0;
  std::uint32_t kind = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t pad = 0;
  double old_weight = 0.0;
  double new_weight = 0.0;
};
static_assert(sizeof(MutationRecord) == 48);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool write_array(std::FILE* f, const T* data, std::size_t count) {
  return std::fwrite(data, sizeof(T), count, f) == count;
}

template <typename T>
bool read_array(std::FILE* f, T* data, std::size_t count) {
  return std::fread(data, sizeof(T), count, f) == count;
}

}  // namespace

namespace {

bool write_csr_payload(std::FILE* f, const Csr& csr,
                       std::uint32_t version) {
  Header header;
  header.version = version;
  header.num_vertices = csr.num_vertices();
  header.num_edges = csr.num_edges();
  if (!write_array(f, &header, 1)) return false;
  if (!write_array(f, csr.offsets().data(), csr.offsets().size())) {
    return false;
  }
  return write_array(f, csr.neighbors().data(), csr.neighbors().size());
}

/// Reads the offset/neighbor arrays following `header` straight into
/// their final vectors and validates every Csr invariant in place (row
/// sorting included), instead of the old path that round-tripped |E|
/// edges through an EdgeList and a second counting-sort build — at
/// paper scale that tripled the load's peak memory and dominated its
/// time.  save_csr always writes rows in the canonical (dst, weight)
/// order, so a sorted-row check is equivalent to a rebuild for any file
/// the writer produced; files failing it are corrupt and rejected.
Csr read_csr_payload(std::FILE* f, const Header& header,
                     const std::string& path) {
  std::vector<std::size_t> offsets(
      static_cast<std::size_t>(header.num_vertices) + 1);
  std::vector<Neighbor> neighbors(header.num_edges);
  if (!read_array(f, offsets.data(), offsets.size()) ||
      !read_array(f, neighbors.data(), neighbors.size())) {
    throw std::runtime_error("truncated CSR cache: " + path);
  }
  if (offsets.front() != 0 || offsets.back() != header.num_edges) {
    throw std::runtime_error("corrupt CSR cache offsets: " + path);
  }
  const auto row_ordered = [](const Neighbor& a, const Neighbor& b) {
    return a.dst < b.dst || (a.dst == b.dst && a.weight <= b.weight);
  };
  for (VertexId v = 0; v < header.num_vertices; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      throw std::runtime_error("corrupt CSR cache offsets: " + path);
    }
    for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (neighbors[i].dst >= header.num_vertices) {
        throw std::runtime_error("corrupt CSR cache edge in " + path);
      }
      if (i > offsets[v] && !row_ordered(neighbors[i - 1], neighbors[i])) {
        throw std::runtime_error("corrupt CSR cache row order in " + path);
      }
    }
  }
  return Csr::from_parts(std::move(offsets), std::move(neighbors));
}

Header read_header(std::FILE* f, const std::string& path) {
  Header header;
  if (!read_array(f, &header, 1)) {
    throw std::runtime_error("bad CSR cache magic in " + path);
  }
  if (header.magic == kCsrFileMagic) {
    // The page-aligned out-of-core format shares the .bin habitat but
    // not the loader: materializing it through here would defeat its
    // whole point at paper scale.
    throw std::runtime_error(
        "on-disk CSR file (open with graph::MappedCsr, or "
        "graph::load_csr_file for an explicit in-memory load): " +
        path);
  }
  if (header.magic != kMagic) {
    throw std::runtime_error("bad CSR cache magic in " + path);
  }
  return header;
}

}  // namespace

bool save_csr(const Csr& csr, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  return write_csr_payload(f.get(), csr, kVersion);
}

Csr load_csr(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open CSR cache: " + path);
  const Header header = read_header(f.get(), path);
  if (header.version != kVersion) {
    throw std::runtime_error("unsupported CSR cache version in " + path);
  }
  return read_csr_payload(f.get(), header, path);
}

bool save_dynamic_graph(const dynamic::DynamicGraph& graph,
                        const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (!write_csr_payload(f.get(), graph.base(), kDynamicVersion)) {
    return false;
  }
  const std::uint64_t num_epochs = graph.epoch();
  const std::uint64_t num_records = graph.log().size();
  if (!write_array(f.get(), &num_epochs, 1) ||
      !write_array(f.get(), &num_records, 1)) {
    return false;
  }
  std::vector<MutationRecord> records;
  records.reserve(graph.log().size());
  for (const dynamic::AppliedMutation& m : graph.log()) {
    MutationRecord r;
    r.timestamp = m.timestamp;
    r.epoch = m.epoch;
    r.kind = static_cast<std::uint32_t>(m.kind);
    r.src = m.src;
    r.dst = m.dst;
    r.old_weight = m.old_weight;
    r.new_weight = m.new_weight;
    records.push_back(r);
  }
  return write_array(f.get(), records.data(), records.size());
}

dynamic::DynamicGraph load_dynamic_graph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open CSR cache: " + path);
  const Header header = read_header(f.get(), path);
  if (header.version != kVersion && header.version != kDynamicVersion) {
    throw std::runtime_error("unsupported CSR cache version in " + path);
  }
  Csr base = read_csr_payload(f.get(), header, path);
  dynamic::DynamicGraph graph(std::move(base));
  if (header.version == kVersion) return graph;  // frozen CSR: epoch 0

  std::uint64_t num_epochs = 0;
  std::uint64_t num_records = 0;
  if (!read_array(f.get(), &num_epochs, 1) ||
      !read_array(f.get(), &num_records, 1)) {
    throw std::runtime_error("truncated mutation log in " + path);
  }
  std::vector<MutationRecord> records(num_records);
  if (!read_array(f.get(), records.data(), records.size())) {
    throw std::runtime_error("truncated mutation log in " + path);
  }

  // Replay epoch by epoch (records are logged in epoch order; empty
  // epochs have no records but still advanced the counter).  apply() is
  // deterministic in the stream, so the replayed log — timestamps
  // included — matches the saved one record for record.
  std::size_t i = 0;
  for (std::uint64_t epoch = 1; epoch <= num_epochs; ++epoch) {
    dynamic::MutationBatch batch;
    for (; i < records.size() && records[i].epoch == epoch; ++i) {
      const MutationRecord& r = records[i];
      if (r.src >= graph.num_vertices() || r.dst >= graph.num_vertices()) {
        throw std::runtime_error("corrupt mutation record in " + path);
      }
      switch (static_cast<dynamic::MutationKind>(r.kind)) {
        case dynamic::MutationKind::kInsert:
          batch.push_back(
              dynamic::Mutation::insert(r.src, r.dst, r.new_weight));
          break;
        case dynamic::MutationKind::kRemove:
          batch.push_back(dynamic::Mutation::remove(r.src, r.dst));
          break;
        case dynamic::MutationKind::kReweight:
          batch.push_back(
              dynamic::Mutation::reweight(r.src, r.dst, r.new_weight));
          break;
        default:
          throw std::runtime_error("corrupt mutation record in " + path);
      }
    }
    const dynamic::ApplyStats stats = graph.apply(batch);
    if (stats.applied() != batch.size()) {
      throw std::runtime_error("mutation log replay diverged in " + path);
    }
  }
  if (i != records.size()) {
    throw std::runtime_error("mutation log epochs out of range in " + path);
  }
  return graph;
}

}  // namespace acic::graph
