#include "src/graph/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace acic::graph {

namespace {

constexpr std::uint64_t kMagic = 0x43495343'52535243ULL;  // "ACIC CSRC"
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool write_array(std::FILE* f, const T* data, std::size_t count) {
  return std::fwrite(data, sizeof(T), count, f) == count;
}

template <typename T>
bool read_array(std::FILE* f, T* data, std::size_t count) {
  return std::fread(data, sizeof(T), count, f) == count;
}

}  // namespace

bool save_csr(const Csr& csr, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  Header header;
  header.num_vertices = csr.num_vertices();
  header.num_edges = csr.num_edges();
  if (!write_array(f.get(), &header, 1)) return false;
  if (!write_array(f.get(), csr.offsets().data(), csr.offsets().size())) {
    return false;
  }
  if (!write_array(f.get(), csr.neighbors().data(),
                   csr.neighbors().size())) {
    return false;
  }
  return true;
}

Csr load_csr(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open CSR cache: " + path);
  Header header;
  if (!read_array(f.get(), &header, 1) || header.magic != kMagic) {
    throw std::runtime_error("bad CSR cache magic in " + path);
  }
  if (header.version != kVersion) {
    throw std::runtime_error("unsupported CSR cache version in " + path);
  }

  // Rebuild through the EdgeList path so all Csr invariants (row
  // sorting) hold regardless of file contents.
  std::vector<std::size_t> offsets(
      static_cast<std::size_t>(header.num_vertices) + 1);
  std::vector<Neighbor> neighbors(header.num_edges);
  if (!read_array(f.get(), offsets.data(), offsets.size()) ||
      !read_array(f.get(), neighbors.data(), neighbors.size())) {
    throw std::runtime_error("truncated CSR cache: " + path);
  }
  if (offsets.front() != 0 || offsets.back() != header.num_edges) {
    throw std::runtime_error("corrupt CSR cache offsets: " + path);
  }

  EdgeList list(header.num_vertices, {});
  list.reserve(header.num_edges);
  for (VertexId v = 0; v < header.num_vertices; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      throw std::runtime_error("corrupt CSR cache offsets: " + path);
    }
    for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (neighbors[i].dst >= header.num_vertices) {
        throw std::runtime_error("corrupt CSR cache edge in " + path);
      }
      list.add(v, neighbors[i].dst, neighbors[i].weight);
    }
  }
  return Csr::from_edge_list(list);
}

}  // namespace acic::graph
