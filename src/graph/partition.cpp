#include "src/graph/partition.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace acic::graph {

Partition1D Partition1D::block(VertexId num_vertices,
                               std::uint32_t num_parts) {
  ACIC_ASSERT(num_parts > 0);
  std::vector<VertexId> starts(num_parts + 1);
  const VertexId base = num_vertices / num_parts;
  const VertexId extra = num_vertices % num_parts;
  VertexId cursor = 0;
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    starts[p] = cursor;
    cursor += base + (p < extra ? 1 : 0);
  }
  starts[num_parts] = num_vertices;
  ACIC_ASSERT(cursor == num_vertices);
  return Partition1D(std::move(starts));
}

Partition1D Partition1D::balanced_edges(const Csr& csr,
                                        std::uint32_t num_parts) {
  ACIC_ASSERT(num_parts > 0);
  const VertexId n = csr.num_vertices();
  const double target =
      static_cast<double>(csr.num_edges()) / static_cast<double>(num_parts);

  std::vector<VertexId> starts(num_parts + 1, n);
  starts[0] = 0;
  VertexId v = 0;
  for (std::uint32_t p = 1; p < num_parts; ++p) {
    const auto goal = static_cast<std::size_t>(target * p);
    // Advance to the first vertex whose prefix edge count reaches `goal`,
    // but always give every remaining part at least one vertex when
    // possible (avoids empty parts on extremely skewed graphs).
    const VertexId min_start = std::min<VertexId>(v + 1, n);
    while (v < n && csr.offsets()[v] < goal) ++v;
    starts[p] = std::max(min_start, std::min(v, n));
    v = starts[p];
  }
  starts[num_parts] = n;
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    ACIC_ASSERT(starts[p] <= starts[p + 1]);
  }
  return Partition1D(std::move(starts));
}

}  // namespace acic::graph
