#pragma once
// Fundamental graph types shared across the library.

#include <cstdint>
#include <limits>

namespace acic::graph {

/// Vertex identifier.  32 bits covers every scale this repository targets
/// (the paper's largest graph is 2^26 vertices) while halving CSR memory
/// relative to 64-bit ids.
using VertexId = std::uint32_t;

/// Edge weights and tentative distances.  The paper's algorithm buckets
/// real-valued distances, so we keep full double precision throughout.
using Weight = double;
using Dist = double;

inline constexpr Dist kInfDist = std::numeric_limits<Dist>::infinity();
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// A directed weighted edge.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A (destination, weight) pair as stored in CSR adjacency.
struct Neighbor {
  VertexId dst = 0;
  Weight weight = 0.0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

}  // namespace acic::graph
