#pragma once
// Synthetic graph generators.
//
// The paper evaluates on two workloads, both 2^26 vertices / 2^30 edges:
//   * RMAT scale-free graphs (power-law degree distribution; Graph500
//     parameters a=0.57, b=0.19, c=0.19, d=0.05), produced in the paper
//     by the PaRMAT generator.
//   * "random" graphs where both endpoints of every edge are chosen
//     uniformly at random (low diameter, near-uniform degrees).
// We additionally provide an Erdős–Rényi G(n, m) generator and a 2-D
// grid "road" generator, the high-diameter workload the paper's
// future-work section calls out (GAP Road-style).
//
// All generators are deterministic in (params, seed).  Structure and
// weights draw from independent RNG streams so the same topology can be
// re-weighted by changing only the weight seed, matching the paper's
// per-trial reseeding protocol.
//
// Generation is chunked: every fixed-size chunk of edges draws from its
// own counter-derived RNG stream (derive_seed(stream_seed, chunk)), and
// chunks write into pre-assigned output slots.  The output is therefore
// identical at ANY GenParams::threads value, including 1 — thread count
// is a speed knob, never a workload knob.

#include <cstdint>
#include <functional>
#include <span>

#include "src/graph/edge_list.hpp"

namespace acic::graph {

/// Parameters shared by the random-ish generators.
struct GenParams {
  VertexId num_vertices = 1u << 14;
  std::uint64_t num_edges = 1ull << 18;
  std::uint64_t seed = 1;
  /// Edge weights drawn uniformly from [min_weight, max_weight).
  Weight min_weight = 1.0;
  Weight max_weight = 256.0;
  bool remove_self_loops = true;   // PaRMAT -noEdgeToSelf
  bool remove_duplicates = false;  // PaRMAT -noDuplicateEdges
  /// Host threads used to generate and sort the edge list.  Does not
  /// affect the generated graph (see the chunking note above).
  unsigned threads = 1;
};

/// RMAT recursive-matrix parameters (defaults are the Graph500 values the
/// paper's generator uses).
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  /// d is implicitly 1 - a - b - c.
  /// Per-level probability noise, as in PaRMAT, to avoid exact
  /// self-similar artifacts.
  double noise = 0.1;
};

/// Scale-free RMAT graph (Chakrabarti, Zhan & Faloutsos 2004).
EdgeList generate_rmat(const GenParams& params, const RmatParams& rmat = {});

/// The paper's "random" workload: for each edge, origin and destination
/// are independent uniform draws over the vertex set.
EdgeList generate_uniform_random(const GenParams& params);

/// Streaming counterparts for out-of-core builds: emit exactly the edge
/// multiset the materializing generator would produce (same per-chunk
/// RNG streams, GenParams::remove_self_loops applied in place;
/// remove_duplicates is rejected — deduplication needs global state)
/// into `sink` in bounded chunks, never holding more than one chunk in
/// RAM.  Chunks arrive in index order on the calling thread;
/// GenParams::threads is ignored — chunk emission order does not affect
/// a consumer that sorts (StreamingCsrWriter), and the chunk → stream
/// seeding already makes the multiset thread-invariant.
using EdgeSink = std::function<void(std::span<const Edge>)>;
void stream_rmat(const GenParams& params, const EdgeSink& sink,
                 const RmatParams& rmat = {});
void stream_uniform_random(const GenParams& params, const EdgeSink& sink);

/// Erdős–Rényi G(n, m): m distinct edges sampled uniformly without
/// replacement (rejection sampling on the (src, dst) pair).
EdgeList generate_erdos_renyi(const GenParams& params);

/// High-diameter "road network" surrogate: a width × height 4-connected
/// grid with bidirectional weighted edges plus a few random shortcuts
/// (params.num_edges is ignored; the grid defines the edge count; extra
/// shortcut edges are controlled by `shortcut_fraction`).
struct GridParams {
  VertexId width = 128;
  VertexId height = 128;
  /// Fraction of |V| added as long-range shortcut edges (highways).
  double shortcut_fraction = 0.01;
};
EdgeList generate_grid_road(const GridParams& grid, std::uint64_t seed,
                            Weight min_weight = 1.0, Weight max_weight = 16.0);

}  // namespace acic::graph
