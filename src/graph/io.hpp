#pragma once
// Text edge-list IO, compatible with the paper's artifact convention:
// CSV rows `src,dst,weight` sorted ascending by source vertex (the format
// produced by the artifact's rmat_preprocess.py from PaRMAT output).
// Unweighted two-column files are accepted; missing weights default to 1.

#include <string>

#include "src/graph/edge_list.hpp"

namespace acic::graph {

/// Writes `src,dst,weight` CSV.  Returns false on I/O failure.
bool write_edge_list_csv(const EdgeList& list, const std::string& path);

/// Reads a CSV edge list.  `num_vertices` of 0 means "infer as
/// max(endpoint)+1".  Throws std::runtime_error on malformed input.
EdgeList read_edge_list_csv(const std::string& path,
                            VertexId num_vertices = 0);

}  // namespace acic::graph
