#pragma once
// Compressed-sparse-row adjacency: the read-only runtime representation of
// a directed weighted graph.  One global CSR is built per experiment; the
// simulated PEs hold views into contiguous vertex ranges of it (the
// paper's 1-D partitioning), so no adjacency data is ever copied per PE.
//
// Storage: the hot members are raw pointers + element counts, with the
// backing arrays either *owned* (the classic in-memory path: builders
// fill std::vectors and the pointers alias them) or *borrowed* (the
// out-of-core path: MappedCsr points them into an mmap'd CsrFile, see
// src/graph/mapped_csr.hpp).  Solvers never see the difference — both
// backends hand out the same spans over contiguous Neighbors through the
// same non-virtual inline accessors, so the in-memory hot path is
// unchanged and the mmap path needs no solver changes at all.

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/edge_list.hpp"
#include "src/graph/types.hpp"

namespace acic::graph {

class Csr {
 public:
  Csr() = default;

  // Owning copies deep-copy and re-point into their own storage;
  // borrowed views stay views of the same external storage.
  Csr(const Csr& other);
  Csr& operator=(const Csr& other);
  Csr(Csr&& other) noexcept;
  Csr& operator=(Csr&& other) noexcept;

  /// Builds CSR from an edge list by counting sort on the source vertex;
  /// the input does not need to be pre-sorted.  With threads > 1 the
  /// count, fill and per-row sorts run on host threads; rows end up
  /// sorted by (dst, weight) either way, so the CSR is byte-identical to
  /// the serial build at any thread count.
  static Csr from_edge_list(const EdgeList& list, unsigned threads = 1);

  /// Returns the graph relabeled by `perm` (perm[old] = new): new vertex
  /// perm[v] owns v's out-edges with every destination relabeled, rows
  /// re-sorted to the canonical (dst, weight) order.  Rows are
  /// independent, so the result is byte-identical at any thread count.
  /// Used by the reorder layer (src/graph/reorder.hpp).
  Csr permuted(const std::vector<VertexId>& perm,
               unsigned threads = 1) const;

  /// Adopts already-built arrays.  The caller owns the invariants
  /// (offsets ascending with offsets[0] == 0 and offsets.back() ==
  /// neighbors.size(); every row sorted by (dst, weight); dst in range)
  /// — debug builds assert them via validate_csr.  This is the mutation
  /// layer's entry point (src/dynamic/): batch application patches the
  /// arrays of an existing CSR directly instead of round-tripping |E|
  /// edges through EdgeList and the counting sort.
  static Csr from_parts(std::vector<std::size_t> offsets,
                        std::vector<Neighbor> neighbors);

  /// Non-owning view over externally-owned arrays (the mmap-backed
  /// storage path).  `offsets` must have num_vertices + 1 ascending
  /// entries starting at 0 and ending at num_edges; rows must follow the
  /// canonical (dst, weight) sort.  The external storage must outlive
  /// every use of the view (and of its copies, which stay views).
  static Csr borrow(const std::size_t* offsets, const Neighbor* neighbors,
                    VertexId num_vertices, std::size_t num_edges);

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return num_edges_; }

  std::span<const Neighbor> out_neighbors(VertexId v) const {
    return {neighbors_ + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  std::size_t out_degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Number of edges whose source lies in [first, last).
  std::size_t edges_in_range(VertexId first, VertexId last) const {
    return offsets_[last] - offsets_[first];
  }

  std::size_t max_out_degree() const;

  /// The offset array: num_vertices + 1 entries (empty for a
  /// default-constructed Csr).
  std::span<const std::size_t> offsets() const {
    return {offsets_, offsets_ == nullptr
                          ? 0
                          : static_cast<std::size_t>(num_vertices_) + 1};
  }
  std::span<const Neighbor> neighbors() const {
    return {neighbors_, num_edges_};
  }

  /// False for views created by borrow() (and their copies): the
  /// adjacency bytes live in external storage, e.g. an mmap'd CsrFile.
  bool owns_storage() const { return offsets_ == nullptr || !offsets_storage_.empty(); }

 private:
  /// Takes ownership of the arrays and points the hot members at them.
  void adopt(std::vector<std::size_t> offsets,
             std::vector<Neighbor> neighbors);

  const std::size_t* offsets_ = nullptr;  // |V|+1 entries
  const Neighbor* neighbors_ = nullptr;   // |E| entries
  VertexId num_vertices_ = 0;
  std::size_t num_edges_ = 0;
  // Backing storage for the owning path; empty for borrowed views.
  std::vector<std::size_t> offsets_storage_;
  std::vector<Neighbor> neighbors_storage_;
};

}  // namespace acic::graph
