#pragma once
// Compressed-sparse-row adjacency: the read-only runtime representation of
// a directed weighted graph.  One global CSR is built per experiment; the
// simulated PEs hold views into contiguous vertex ranges of it (the
// paper's 1-D partitioning), so no adjacency data is ever copied per PE.

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/edge_list.hpp"
#include "src/graph/types.hpp"

namespace acic::graph {

class Csr {
 public:
  Csr() = default;

  /// Builds CSR from an edge list by counting sort on the source vertex;
  /// the input does not need to be pre-sorted.  With threads > 1 the
  /// count, fill and per-row sorts run on host threads; rows end up
  /// sorted by (dst, weight) either way, so the CSR is byte-identical to
  /// the serial build at any thread count.
  static Csr from_edge_list(const EdgeList& list, unsigned threads = 1);

  /// Returns the graph relabeled by `perm` (perm[old] = new): new vertex
  /// perm[v] owns v's out-edges with every destination relabeled, rows
  /// re-sorted to the canonical (dst, weight) order.  Rows are
  /// independent, so the result is byte-identical at any thread count.
  /// Used by the reorder layer (src/graph/reorder.hpp).
  Csr permuted(const std::vector<VertexId>& perm,
               unsigned threads = 1) const;

  /// Adopts already-built arrays.  The caller owns the invariants
  /// (offsets ascending with offsets[0] == 0 and offsets.back() ==
  /// neighbors.size(); every row sorted by (dst, weight); dst in range)
  /// — debug builds assert them via validate_csr.  This is the mutation
  /// layer's entry point (src/dynamic/): batch application patches the
  /// arrays of an existing CSR directly instead of round-tripping |E|
  /// edges through EdgeList and the counting sort.
  static Csr from_parts(std::vector<std::size_t> offsets,
                        std::vector<Neighbor> neighbors);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0
                            : static_cast<VertexId>(offsets_.size() - 1);
  }
  std::size_t num_edges() const { return neighbors_.size(); }

  std::span<const Neighbor> out_neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            offsets_[v + 1] - offsets_[v]};
  }

  std::size_t out_degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Number of edges whose source lies in [first, last).
  std::size_t edges_in_range(VertexId first, VertexId last) const {
    return offsets_[last] - offsets_[first];
  }

  std::size_t max_out_degree() const;

  const std::vector<std::size_t>& offsets() const { return offsets_; }
  const std::vector<Neighbor>& neighbors() const { return neighbors_; }

 private:
  std::vector<std::size_t> offsets_;   // size |V|+1
  std::vector<Neighbor> neighbors_;    // size |E|
};

}  // namespace acic::graph
