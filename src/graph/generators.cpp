#include "src/graph/generators.hpp"

#include <cmath>
#include <unordered_set>

#include "src/util/assert.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace acic::graph {

namespace {

using util::Xoshiro256;
using util::derive_seed;
using util::parallel_for;

/// Edges per generation chunk.  Fixed (not derived from the thread
/// count) so the chunk → RNG-stream mapping, and therefore the generated
/// graph, is identical at any GenParams::threads value.
constexpr std::uint64_t kChunkEdges = 1ull << 16;

/// Number of levels needed so the RMAT recursion addresses every vertex.
int levels_for(VertexId n) {
  int levels = 0;
  while ((VertexId{1} << levels) < n) ++levels;
  return levels;
}

Weight draw_weight(Xoshiro256& rng, const GenParams& p) {
  return rng.next_double(p.min_weight, p.max_weight);
}

void finalize(EdgeList& list, const GenParams& p) {
  if (p.remove_self_loops) list.remove_self_loops();
  if (p.remove_duplicates) list.remove_duplicates();
  list.sort_by_source(p.threads);
}

/// Runs `emit(structure_rng, weight_rng, slot)` for every edge slot in
/// [0, num_edges), in parallel over fixed-size chunks.  Chunk c draws
/// from streams derive_seed(derive_seed(seed, 0|1), c), so every slot's
/// draws are independent of the thread count.
template <typename Emit>
void generate_chunked(const GenParams& params, Emit&& emit) {
  const std::uint64_t num_chunks =
      (params.num_edges + kChunkEdges - 1) / kChunkEdges;
  const std::uint64_t structure_seed = derive_seed(params.seed, 0);
  const std::uint64_t weight_seed = derive_seed(params.seed, 1);
  parallel_for(num_chunks, params.threads, [&](std::uint64_t c) {
    Xoshiro256 structure_rng(derive_seed(structure_seed, c));
    Xoshiro256 weight_rng(derive_seed(weight_seed, c));
    const std::uint64_t first = c * kChunkEdges;
    const std::uint64_t last =
        std::min(first + kChunkEdges, params.num_edges);
    for (std::uint64_t i = first; i < last; ++i) {
      emit(structure_rng, weight_rng, i);
    }
  });
}

/// The streaming twin: identical chunk → RNG-stream mapping, identical
/// per-slot draws, but one chunk buffer instead of a full edge vector,
/// with GenParams::remove_self_loops applied before each chunk is handed
/// to `sink`.  The emitted multiset therefore equals what the
/// materializing generator's finalize() would leave behind.
template <typename Draw>
void stream_chunked(const GenParams& params, const EdgeSink& sink,
                    Draw&& draw) {
  ACIC_ASSERT_MSG(!params.remove_duplicates,
                  "streaming generation cannot deduplicate edges");
  const std::uint64_t num_chunks =
      (params.num_edges + kChunkEdges - 1) / kChunkEdges;
  const std::uint64_t structure_seed = derive_seed(params.seed, 0);
  const std::uint64_t weight_seed = derive_seed(params.seed, 1);
  std::vector<Edge> chunk;
  chunk.reserve(kChunkEdges);
  for (std::uint64_t c = 0; c < num_chunks; ++c) {
    Xoshiro256 structure_rng(derive_seed(structure_seed, c));
    Xoshiro256 weight_rng(derive_seed(weight_seed, c));
    const std::uint64_t first = c * kChunkEdges;
    const std::uint64_t last =
        std::min(first + kChunkEdges, params.num_edges);
    chunk.clear();
    for (std::uint64_t i = first; i < last; ++i) {
      const Edge e = draw(structure_rng, weight_rng);
      if (params.remove_self_loops && e.src == e.dst) continue;
      chunk.push_back(e);
    }
    sink(std::span<const Edge>(chunk));
  }
}

/// One RMAT edge: quadrant recursion with per-level probability noise.
Edge draw_rmat_edge(Xoshiro256& structure_rng, Xoshiro256& weight_rng,
                    const GenParams& params, const RmatParams& rmat,
                    double d, int levels) {
  VertexId src = 0;
  VertexId dst = 0;
  for (int level = 0; level < levels; ++level) {
    // Jitter the quadrant probabilities per level (PaRMAT-style
    // noise) so the degree distribution is power-law but not
    // exactly fractal.
    const double na =
        rmat.a * (1.0 + rmat.noise * (structure_rng.next_double() - 0.5));
    const double nb =
        rmat.b * (1.0 + rmat.noise * (structure_rng.next_double() - 0.5));
    const double nc =
        rmat.c * (1.0 + rmat.noise * (structure_rng.next_double() - 0.5));
    const double nd =
        d * (1.0 + rmat.noise * (structure_rng.next_double() - 0.5));
    const double total = na + nb + nc + nd;
    const double r = structure_rng.next_double() * total;
    src <<= 1;
    dst <<= 1;
    if (r < na) {
      // top-left quadrant: no bits set
    } else if (r < na + nb) {
      dst |= 1;
    } else if (r < na + nb + nc) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  // When |V| is not a power of two the recursion can address
  // vertices past the end; fold them back uniformly.
  if (src >= params.num_vertices) src %= params.num_vertices;
  if (dst >= params.num_vertices) dst %= params.num_vertices;
  return Edge{src, dst, draw_weight(weight_rng, params)};
}

Edge draw_uniform_edge(Xoshiro256& structure_rng, Xoshiro256& weight_rng,
                       const GenParams& params) {
  const auto src = static_cast<VertexId>(
      structure_rng.next_below(params.num_vertices));
  const auto dst = static_cast<VertexId>(
      structure_rng.next_below(params.num_vertices));
  return Edge{src, dst, draw_weight(weight_rng, params)};
}

}  // namespace

EdgeList generate_rmat(const GenParams& params, const RmatParams& rmat) {
  ACIC_ASSERT(params.num_vertices > 0);
  const double d = 1.0 - rmat.a - rmat.b - rmat.c;
  ACIC_ASSERT_MSG(d > 0.0, "RMAT probabilities must sum below 1");

  const int levels = levels_for(params.num_vertices);
  std::vector<Edge> edges(params.num_edges);

  generate_chunked(
      params,
      [&](Xoshiro256& structure_rng, Xoshiro256& weight_rng,
          std::uint64_t i) {
        edges[i] =
            draw_rmat_edge(structure_rng, weight_rng, params, rmat, d,
                           levels);
      });

  EdgeList list(params.num_vertices, std::move(edges));
  finalize(list, params);
  return list;
}

void stream_rmat(const GenParams& params, const EdgeSink& sink,
                 const RmatParams& rmat) {
  ACIC_ASSERT(params.num_vertices > 0);
  const double d = 1.0 - rmat.a - rmat.b - rmat.c;
  ACIC_ASSERT_MSG(d > 0.0, "RMAT probabilities must sum below 1");
  const int levels = levels_for(params.num_vertices);
  stream_chunked(params, sink,
                 [&](Xoshiro256& structure_rng, Xoshiro256& weight_rng) {
                   return draw_rmat_edge(structure_rng, weight_rng,
                                         params, rmat, d, levels);
                 });
}

EdgeList generate_uniform_random(const GenParams& params) {
  ACIC_ASSERT(params.num_vertices > 0);
  std::vector<Edge> edges(params.num_edges);

  generate_chunked(
      params,
      [&](Xoshiro256& structure_rng, Xoshiro256& weight_rng,
          std::uint64_t i) {
        edges[i] = draw_uniform_edge(structure_rng, weight_rng, params);
      });

  EdgeList list(params.num_vertices, std::move(edges));
  finalize(list, params);
  return list;
}

void stream_uniform_random(const GenParams& params, const EdgeSink& sink) {
  ACIC_ASSERT(params.num_vertices > 0);
  stream_chunked(params, sink,
                 [&](Xoshiro256& structure_rng, Xoshiro256& weight_rng) {
                   return draw_uniform_edge(structure_rng, weight_rng,
                                            params);
                 });
}

EdgeList generate_erdos_renyi(const GenParams& params) {
  ACIC_ASSERT(params.num_vertices > 1);
  const auto n = static_cast<std::uint64_t>(params.num_vertices);
  ACIC_ASSERT_MSG(params.num_edges <= n * (n - 1),
                  "G(n, m) requires m <= n*(n-1) distinct directed edges");

  const std::uint64_t structure_seed = derive_seed(params.seed, 0);
  const std::uint64_t weight_seed = derive_seed(params.seed, 1);

  // Rejection sampling in rounds: each round generates a batch of
  // candidate edges in parallel (one counter-derived stream per chunk),
  // then a serial in-order pass deduplicates them.  Candidate content
  // depends only on the round's chunk indices — which depend only on how
  // many edges were still missing, itself deterministic — so the result
  // is identical at any thread count.  For the sparse regimes we target
  // (m << n^2) the expected number of rejected candidates is negligible.
  auto key = [n](VertexId s, VertexId t) {
    return static_cast<std::uint64_t>(s) * n + t;
  };
  struct Hash {
    std::size_t operator()(std::uint64_t k) const noexcept {
      util::SplitMix64 sm(k);
      return static_cast<std::size_t>(sm.next());
    }
  };
  std::unordered_set<std::uint64_t, Hash> used;
  used.reserve(params.num_edges * 2);

  std::vector<Edge> edges;
  edges.reserve(params.num_edges);
  std::vector<Edge> candidates;
  std::uint64_t next_chunk = 0;
  while (edges.size() < params.num_edges) {
    const std::uint64_t need = params.num_edges - edges.size();
    const std::uint64_t num_chunks = (need + kChunkEdges - 1) / kChunkEdges;
    candidates.resize(need);
    parallel_for(num_chunks, params.threads, [&](std::uint64_t c) {
      Xoshiro256 structure_rng(
          derive_seed(structure_seed, next_chunk + c));
      Xoshiro256 weight_rng(derive_seed(weight_seed, next_chunk + c));
      const std::uint64_t first = c * kChunkEdges;
      const std::uint64_t last = std::min(first + kChunkEdges, need);
      for (std::uint64_t i = first; i < last; ++i) {
        const auto src =
            static_cast<VertexId>(structure_rng.next_below(n));
        const auto dst =
            static_cast<VertexId>(structure_rng.next_below(n));
        candidates[i] = Edge{src, dst, draw_weight(weight_rng, params)};
      }
    });
    next_chunk += num_chunks;
    for (const Edge& e : candidates) {
      if (edges.size() == params.num_edges) break;
      if (e.src == e.dst) continue;
      if (!used.insert(key(e.src, e.dst)).second) continue;
      edges.push_back(e);
    }
  }

  EdgeList list(params.num_vertices, std::move(edges));
  list.sort_by_source(params.threads);
  return list;
}

EdgeList generate_grid_road(const GridParams& grid, std::uint64_t seed,
                            Weight min_weight, Weight max_weight) {
  ACIC_ASSERT(grid.width > 0 && grid.height > 0);
  const VertexId n = grid.width * grid.height;
  Xoshiro256 weight_rng(derive_seed(seed, 1));
  Xoshiro256 shortcut_rng(derive_seed(seed, 2));

  EdgeList list(n, {});
  auto id = [&](VertexId x, VertexId y) { return y * grid.width + x; };
  auto add_bidirectional = [&](VertexId u, VertexId v) {
    const Weight w = weight_rng.next_double(min_weight, max_weight);
    list.add(u, v, w);
    list.add(v, u, w);
  };
  for (VertexId y = 0; y < grid.height; ++y) {
    for (VertexId x = 0; x < grid.width; ++x) {
      if (x + 1 < grid.width) add_bidirectional(id(x, y), id(x + 1, y));
      if (y + 1 < grid.height) add_bidirectional(id(x, y), id(x, y + 1));
    }
  }
  const auto num_shortcuts =
      static_cast<std::uint64_t>(grid.shortcut_fraction * n);
  for (std::uint64_t i = 0; i < num_shortcuts; ++i) {
    const auto u = static_cast<VertexId>(shortcut_rng.next_below(n));
    const auto v = static_cast<VertexId>(shortcut_rng.next_below(n));
    if (u == v) continue;
    // Highways: longer but proportionally cheap relative to hop count.
    const Weight w = weight_rng.next_double(min_weight, max_weight) * 4.0;
    list.add(u, v, w);
    list.add(v, u, w);
  }
  list.sort_by_source();
  return list;
}

}  // namespace acic::graph
