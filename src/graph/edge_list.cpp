#include "src/graph/edge_list.hpp"

#include <algorithm>

namespace acic::graph {

void EdgeList::sort_by_source() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
}

void EdgeList::remove_self_loops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

void EdgeList::remove_duplicates() {
  sort_by_source();
  // After sorting, duplicates of a (src, dst) pair are adjacent and the
  // lightest weight comes first, so unique() keeps the minimum.
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());
}

EdgeList EdgeList::symmetrized() const {
  EdgeList out(num_vertices_, {});
  out.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    out.add(e.src, e.dst, e.weight);
    if (e.src != e.dst) out.add(e.dst, e.src, e.weight);
  }
  out.sort_by_source();
  return out;
}

bool EdgeList::endpoints_in_range() const {
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) return false;
  }
  return true;
}

}  // namespace acic::graph
