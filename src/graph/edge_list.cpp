#include "src/graph/edge_list.hpp"

#include <algorithm>

#include "src/util/parallel.hpp"

namespace acic::graph {

namespace {

bool edge_less(const Edge& a, const Edge& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.dst != b.dst) return a.dst < b.dst;
  return a.weight < b.weight;
}

}  // namespace

void EdgeList::sort_by_source(unsigned threads) {
  if (threads <= 1 || edges_.size() < 2) {
    std::sort(edges_.begin(), edges_.end(), edge_less);
    return;
  }
  // Sort contiguous blocks in parallel, then merge pairwise.  Edges that
  // compare equal are identical values, so the block-merge result is
  // byte-identical to one big std::sort.
  const std::size_t num_blocks =
      std::min<std::size_t>(threads, edges_.size());
  std::vector<std::size_t> bounds(num_blocks + 1);
  for (std::size_t b = 0; b <= num_blocks; ++b) {
    bounds[b] = b * edges_.size() / num_blocks;
  }
  util::parallel_for(num_blocks, threads, [&](std::uint64_t b) {
    std::sort(edges_.begin() + bounds[b], edges_.begin() + bounds[b + 1],
              edge_less);
  });
  for (std::size_t width = 1; width < num_blocks; width *= 2) {
    for (std::size_t b = 0; b + width < num_blocks; b += 2 * width) {
      const std::size_t mid = bounds[b + width];
      const std::size_t last = bounds[std::min(b + 2 * width, num_blocks)];
      std::inplace_merge(edges_.begin() + bounds[b], edges_.begin() + mid,
                         edges_.begin() + last, edge_less);
    }
  }
}

void EdgeList::remove_self_loops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

void EdgeList::remove_duplicates() {
  sort_by_source();
  // After sorting, duplicates of a (src, dst) pair are adjacent and the
  // lightest weight comes first, so unique() keeps the minimum.
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());
}

EdgeList EdgeList::symmetrized() const {
  EdgeList out(num_vertices_, {});
  out.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    out.add(e.src, e.dst, e.weight);
    if (e.src != e.dst) out.add(e.dst, e.src, e.weight);
  }
  out.sort_by_source();
  return out;
}

bool EdgeList::endpoints_in_range() const {
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) return false;
  }
  return true;
}

}  // namespace acic::graph
