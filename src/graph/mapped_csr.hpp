#pragma once
// mmap-backed graph storage: opens a CsrFile (src/graph/csr_file.hpp)
// read-only and exposes it as a borrowed `Csr` view.  The sections are
// page-aligned in the file, so the offset and neighbor arrays land
// page-aligned in the mapping and the view's spans point straight into
// the page cache — solvers run unmodified, the kernel faults adjacency
// pages in on first touch, and resident memory is bounded by what the
// access pattern (plus the prefetcher's hints) actually touches, not by
// |E|.
//
// Everything beyond the view is *hints*: madvise(MADV_WILLNEED) to start
// readahead for upcoming adjacency ranges, madvise(MADV_DONTNEED) to
// drop resident pages (non-destructive on a read-only file mapping —
// a later touch refaults the identical file bytes), and mincore sampling
// for observability.  None of them can change a single byte any solver
// reads, which is the whole determinism argument for the prefetcher
// built on top (src/graph/ooc_prefetch.hpp).

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/graph/csr.hpp"
#include "src/graph/csr_file.hpp"

namespace acic::graph {

class MappedCsr {
 public:
  /// Maps `path` read-only.  Throws std::runtime_error if the file is
  /// missing, not an on-disk CSR, or cannot be mapped.
  explicit MappedCsr(const std::string& path);
  ~MappedCsr();

  MappedCsr(const MappedCsr&) = delete;
  MappedCsr& operator=(const MappedCsr&) = delete;
  MappedCsr(MappedCsr&& other) noexcept;
  MappedCsr& operator=(MappedCsr&& other) noexcept;

  /// Borrowed view into the mapping; valid while this object lives.
  const Csr& csr() const { return view_; }
  const CsrFileHeader& header() const { return header_; }
  VertexId num_vertices() const { return view_.num_vertices(); }
  std::size_t num_edges() const { return view_.num_edges(); }

  /// Runtime page size (the madvise/mincore granule, which may exceed
  /// the file's 4 KiB section alignment on large-page hosts).
  std::size_t page_bytes() const { return page_bytes_; }
  std::size_t mapping_bytes() const { return map_bytes_; }

  /// Half-open byte range within the mapping.
  struct ByteRange {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool empty() const { return begin >= end; }
  };

  /// Bytes holding the adjacency records of vertices [first, last).
  ByteRange adjacency_range(VertexId first, VertexId last) const;
  ByteRange adjacency_range(VertexId v) const {
    return adjacency_range(v, v + 1);
  }
  /// The whole neighbors section (the prefetcher's eviction domain).
  ByteRange neighbors_section() const;

  /// Expands `r` to page boundaries (clamped to the mapping) and issues
  /// madvise(MADV_WILLNEED).  Returns pages hinted; 0 for empty ranges.
  /// Purely a readahead hint — cannot affect any value read.
  std::size_t hint_will_need(ByteRange r) const;

  /// Page-aligns `r` and issues madvise(MADV_DONTNEED), dropping the
  /// pages from the resident set.  Non-destructive: the mapping is
  /// read-only and file-backed, so a later access refaults the same
  /// bytes.  Returns pages dropped from the mapping's accounting.
  std::size_t drop_pages(ByteRange r) const;

  /// Starts kernel readahead for the whole offsets section (touched
  /// uniformly by every solver; at scale 24 it is ~3% of the file).
  void warm_offsets() const;

  /// mincore over at most `max_pages` pages of `r`, evenly strided.
  struct ResidencySample {
    std::size_t pages_sampled = 0;
    std::size_t pages_resident = 0;
  };
  ResidencySample sample_residency(ByteRange r,
                                   std::size_t max_pages) const;

 private:
  void reset() noexcept;

  CsrFileHeader header_;
  Csr view_;
  std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t page_bytes_ = 4096;
};

}  // namespace acic::graph
