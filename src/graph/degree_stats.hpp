#pragma once
// Degree-distribution summaries, used both by tests (verifying that RMAT
// is power-law-ish and uniform-random is not) and by the examples.

#include <cstddef>
#include <vector>

#include "src/graph/csr.hpp"

namespace acic::graph {

struct DegreeStats {
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  /// Gini coefficient of the out-degree distribution in [0, 1]:
  /// ~0 for uniform-random graphs, large (> 0.4) for RMAT hubs.
  double gini = 0.0;
  /// Number of vertices with zero out-degree.
  std::size_t isolated = 0;
};

DegreeStats compute_degree_stats(const Csr& csr);

/// Histogram of out-degrees in log2-sized bins: bin k counts vertices
/// with out-degree in [2^k, 2^(k+1)); bin 0 also counts degree 0/1.
std::vector<std::size_t> degree_log_histogram(const Csr& csr);

}  // namespace acic::graph
