#include "src/graph/io.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace acic::graph {

bool write_edge_list_csv(const EdgeList& list, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const Edge& e : list.edges()) {
    std::fprintf(f, "%u,%u,%.17g\n", e.src, e.dst, e.weight);
  }
  std::fclose(f);
  return true;
}

EdgeList read_edge_list_csv(const std::string& path, VertexId num_vertices) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    throw std::runtime_error("cannot open edge list: " + path);
  }
  EdgeList list;
  char line[256];
  std::size_t line_no = 0;
  VertexId max_vertex = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++line_no;
    // Skip blank lines and comments.
    if (line[0] == '\n' || line[0] == '#' || line[0] == '\0') continue;
    unsigned long src = 0;
    unsigned long dst = 0;
    double weight = 1.0;
    // Accept both the artifact's CSV (src,dst,weight from
    // rmat_preprocess.py) and PaRMAT's whitespace-separated out.txt.
    int fields = std::sscanf(line, "%lu ,%lu ,%lf", &src, &dst, &weight);
    if (fields < 2) {
      fields = std::sscanf(line, "%lu %lu %lf", &src, &dst, &weight);
    }
    if (fields < 2) {
      std::fclose(f);
      throw std::runtime_error("malformed edge at " + path + ":" +
                               std::to_string(line_no));
    }
    list.add(static_cast<VertexId>(src), static_cast<VertexId>(dst),
             weight);
    max_vertex = std::max({max_vertex, static_cast<VertexId>(src),
                           static_cast<VertexId>(dst)});
  }
  std::fclose(f);
  list.set_num_vertices(num_vertices != 0 ? num_vertices : max_vertex + 1);
  if (!list.endpoints_in_range()) {
    throw std::runtime_error("edge endpoint exceeds num_vertices in " + path);
  }
  return list;
}

}  // namespace acic::graph
