#pragma once
// 2-D (grid) edge partition, as used by the RIKEN Graph500 Δ-stepping
// baseline the paper compares against (Buluç–Madduri style).
//
// PEs form an R×C grid.  Vertices are block-split into R·C groups; the
// *state* (tentative distance, buckets) of group g lives at its owner
// cell (g mod R, g div R) — a bijection between groups and cells.  The
// edge (u, w) is stored at the cell whose column matches u's owner and
// whose row matches w's owner:
//     cell( row_of(owner(group(w))),  col_of(owner(group(u))) ).
// A frontier therefore broadcasts down the owner's *column* (every cell
// holding its out-edges), and relaxation candidates travel along *rows*
// to the destination owners — communication stays within rows and
// columns, which is the latency/balance advantage the paper cites.  A
// hub vertex's out-edges spread over a whole processor column instead of
// living on one PE as in the 1-D partition.

#include <cstdint>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/types.hpp"

namespace acic::graph {

class Partition2D {
 public:
  /// Builds an R×C grid partition; rows*cols must equal the PE count the
  /// algorithm will run on.
  Partition2D(const Csr& csr, std::uint32_t rows, std::uint32_t cols);

  /// Factory choosing the most square R×C factorization of `num_pes`.
  static Partition2D squarest(const Csr& csr, std::uint32_t num_pes);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t num_cells() const { return rows_ * cols_; }

  /// Linear PE index of grid cell (i, j).
  std::uint32_t cell(std::uint32_t i, std::uint32_t j) const {
    return i * cols_ + j;
  }
  std::uint32_t row_of(std::uint32_t pe) const { return pe / cols_; }
  std::uint32_t col_of(std::uint32_t pe) const { return pe % cols_; }

  /// Vertex group of v (block split into rows*cols groups).
  std::uint32_t group_of(VertexId v) const { return groups_.owner(v); }
  std::uint32_t num_groups() const { return groups_.num_parts(); }
  VertexId group_begin(std::uint32_t g) const { return groups_.begin(g); }
  VertexId group_end(std::uint32_t g) const { return groups_.end(g); }

  /// The cell owning the distance state of vertex group g
  /// (bijective: cell (g mod R, g div R)).
  std::uint32_t state_owner(std::uint32_t g) const {
    return cell(g % rows_, g / rows_);
  }
  std::uint32_t state_owner_of_vertex(VertexId v) const {
    return state_owner(group_of(v));
  }
  /// The group whose state lives at `pe` (inverse of state_owner).
  std::uint32_t group_owned_by(std::uint32_t pe) const {
    return col_of(pe) * rows_ + row_of(pe);
  }

  /// Edges stored at cell `pe`, sorted by source vertex.
  const std::vector<Edge>& cell_edges(std::uint32_t pe) const {
    return cell_edges_[pe];
  }

  /// Out-edges of `v` within cell `pe` (binary search over the sorted
  /// edge array).
  std::span<const Edge> cell_out_edges(std::uint32_t pe, VertexId v) const;

  /// Total edges per cell — used by the load-balance tests and benches.
  std::vector<std::size_t> edges_per_cell() const;

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
  Partition1D groups_;
  std::vector<std::vector<Edge>> cell_edges_;
};

}  // namespace acic::graph
