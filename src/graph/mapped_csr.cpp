#include "src/graph/mapped_csr.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/util/assert.hpp"

namespace acic::graph {

namespace {

std::uint64_t align_down(std::uint64_t x, std::uint64_t a) {
  return x / a * a;
}
std::uint64_t align_up(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) / a * a;
}

}  // namespace

MappedCsr::MappedCsr(const std::string& path) {
  if (!probe_csr_file(path, &header_)) {
    throw std::runtime_error("not an on-disk CSR file: " + path);
  }
  const long ps = ::sysconf(_SC_PAGESIZE);
  page_bytes_ = ps > 0 ? static_cast<std::size_t>(ps) : 4096;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("cannot open on-disk CSR: " + path);
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::uint64_t>(st.st_size) <
          header_.neighbors_pos + header_.neighbors_bytes) {
    ::close(fd);
    throw std::runtime_error("truncated on-disk CSR: " + path);
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    throw std::runtime_error("cannot mmap on-disk CSR: " + path);
  }
  map_ = static_cast<std::byte*>(map);

  const auto* offsets = reinterpret_cast<const std::size_t*>(
      map_ + header_.offsets_pos);
  const auto* neighbors =
      reinterpret_cast<const Neighbor*>(map_ + header_.neighbors_pos);
  if (offsets[0] != 0 ||
      offsets[header_.num_vertices] != header_.num_edges) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    throw std::runtime_error("corrupt on-disk CSR offsets: " + path);
  }
  view_ = Csr::borrow(offsets, neighbors,
                      static_cast<VertexId>(header_.num_vertices),
                      static_cast<std::size_t>(header_.num_edges));
}

void MappedCsr::reset() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
  }
  map_bytes_ = 0;
  view_ = Csr();
}

MappedCsr::~MappedCsr() { reset(); }

MappedCsr::MappedCsr(MappedCsr&& other) noexcept
    : header_(other.header_),
      view_(std::move(other.view_)),
      map_(other.map_),
      map_bytes_(other.map_bytes_),
      page_bytes_(other.page_bytes_) {
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  other.view_ = Csr();
}

MappedCsr& MappedCsr::operator=(MappedCsr&& other) noexcept {
  if (this != &other) {
    reset();
    header_ = other.header_;
    view_ = std::move(other.view_);
    map_ = other.map_;
    map_bytes_ = other.map_bytes_;
    page_bytes_ = other.page_bytes_;
    other.map_ = nullptr;
    other.map_bytes_ = 0;
    other.view_ = Csr();
  }
  return *this;
}

MappedCsr::ByteRange MappedCsr::adjacency_range(VertexId first,
                                                VertexId last) const {
  ACIC_HOT_ASSERT(first <= last && last <= num_vertices());
  const std::span<const std::size_t> offsets = view_.offsets();
  return {header_.neighbors_pos + offsets[first] * sizeof(Neighbor),
          header_.neighbors_pos + offsets[last] * sizeof(Neighbor)};
}

MappedCsr::ByteRange MappedCsr::neighbors_section() const {
  return {header_.neighbors_pos,
          header_.neighbors_pos + header_.neighbors_bytes};
}

std::size_t MappedCsr::hint_will_need(ByteRange r) const {
  if (r.empty() || map_ == nullptr) return 0;
  const std::uint64_t begin = align_down(r.begin, page_bytes_);
  const std::uint64_t end =
      std::min<std::uint64_t>(align_up(r.end, page_bytes_), map_bytes_);
  if (begin >= end) return 0;
  ::madvise(map_ + begin, static_cast<std::size_t>(end - begin),
            MADV_WILLNEED);
  return static_cast<std::size_t>((end - begin) / page_bytes_);
}

std::size_t MappedCsr::drop_pages(ByteRange r) const {
  if (r.empty() || map_ == nullptr) return 0;
  // Inwards alignment: never drop a page the range only grazes.
  const std::uint64_t begin = align_up(r.begin, page_bytes_);
  const std::uint64_t end =
      std::min<std::uint64_t>(align_down(r.end, page_bytes_), map_bytes_);
  if (begin >= end) return 0;
  ::madvise(map_ + begin, static_cast<std::size_t>(end - begin),
            MADV_DONTNEED);
  return static_cast<std::size_t>((end - begin) / page_bytes_);
}

void MappedCsr::warm_offsets() const {
  hint_will_need({header_.offsets_pos,
                  header_.offsets_pos + header_.offsets_bytes});
}

MappedCsr::ResidencySample MappedCsr::sample_residency(
    ByteRange r, std::size_t max_pages) const {
  ResidencySample out;
  if (r.empty() || map_ == nullptr || max_pages == 0) return out;
  const std::uint64_t begin = align_down(r.begin, page_bytes_);
  const std::uint64_t end =
      std::min<std::uint64_t>(align_up(r.end, page_bytes_), map_bytes_);
  if (begin >= end) return out;
  const std::size_t total_pages =
      static_cast<std::size_t>((end - begin) / page_bytes_);

  // mincore whole contiguous blocks at an even stride so a bounded
  // number of syscalls covers the range.
  const std::size_t blocks =
      std::min<std::size_t>(64, std::max<std::size_t>(1, max_pages / 8));
  const std::size_t pages_per_block =
      std::max<std::size_t>(1, std::min(total_pages, max_pages) / blocks);
  std::vector<unsigned char> vec(pages_per_block);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t first_page =
        total_pages <= pages_per_block
            ? 0
            : b * (total_pages - pages_per_block) / std::max<std::size_t>(
                                                        1, blocks - 1);
    std::byte* addr = map_ + begin + first_page * page_bytes_;
    const std::size_t n =
        std::min(pages_per_block, total_pages - first_page);
    if (::mincore(addr, n * page_bytes_, vec.data()) != 0) break;
    out.pages_sampled += n;
    for (std::size_t i = 0; i < n; ++i) {
      out.pages_resident += vec[i] & 1u;
    }
    if (total_pages <= pages_per_block) break;
  }
  return out;
}

}  // namespace acic::graph
