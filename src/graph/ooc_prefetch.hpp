#pragma once
// Frontier-fed page prefetching for mmap-backed graphs, after prefedge
// (SNIPPETS.md, cyb3727/prefedge): the vertices sitting near the top of
// a solver's priority structure are exactly the adjacency rows about to
// be walked, so publishing them to a readahead thread turns the mmap
// page faults that would stall the solver into overlapped disk reads.
//
// Two pieces:
//
//   * FrontierFeed — a bounded lock-free ring of vertex ids.  Solver
//     threads publish at cheap peek points (ACIC pq push / hold insert /
//     hold release, delta-stepping bucket placement) with a handful of
//     relaxed/release atomics; when the ring is full the id is simply
//     dropped (counted, never waited on).  Multiple producers are
//     supported because the parallel engine's shards publish
//     concurrently; the prefetcher is the single consumer.
//
//   * PagePrefetcher — a host thread draining the feed, mapping each
//     vertex to its adjacency byte range in the MappedCsr and issuing
//     madvise(MADV_WILLNEED) hints, with adjacent/duplicate ranges
//     coalesced.  Optionally it also enforces a residency budget over
//     the neighbors section: when mincore sampling estimates the
//     resident set above the budget it MADV_DONTNEEDs a sliding window
//     (clock hand) of the section — this is what bounds max RSS on a
//     large-RAM host where the kernel would otherwise happily keep the
//     whole file resident.
//
// Determinism: every downstream effect of this machinery is an madvise
// on a read-only, file-backed, never-written mapping, or an mincore
// query.  Neither can change a byte any solver reads — hints only move
// *when* a page becomes resident, and a dropped page refaults to the
// identical file contents.  Publication itself executes on the host
// (never charges simulated CPU) and drops on overflow instead of
// blocking, so checksums, sim times and simulated RunStats are
// bit-identical with the prefetcher on, off, racing, or overflowing.
// The feed is also harmless when no prefetcher drains it: the ring
// fills, publications drop, the solver never notices.
//
// Stats are plain atomics accumulated on the prefetcher thread and
// published to the (thread-unsafe) obs registry only after the run, via
// publish_stats().

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/graph/mapped_csr.hpp"
#include "src/graph/types.hpp"

namespace acic::obs {
class Registry;
}

namespace acic::graph::ooc {

class FrontierFeed {
 public:
  /// `capacity` is rounded up to a power of two (minimum 64).
  explicit FrontierFeed(std::size_t capacity = 1u << 12);

  FrontierFeed(const FrontierFeed&) = delete;
  FrontierFeed& operator=(const FrontierFeed&) = delete;

  /// Publishes a vertex about to be processed.  Any thread; lock-free;
  /// never blocks — returns false (and counts an overflow) when the
  /// ring is full.
  bool try_publish(VertexId v);

  /// Pops the oldest published vertex.  Single consumer only.
  bool try_pop(VertexId* v);

  std::size_t capacity() const { return mask_ + 1; }
  std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }

 private:
  // Vyukov-style bounded queue cell: `seq` encodes whether the slot is
  // free (== ticket), filled (== ticket + 1), or lapped.
  struct Cell {
    std::atomic<std::uint64_t> seq;
    VertexId value;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producers
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer
  alignas(64) std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> overflows_{0};
};

/// Knobs for PagePrefetcher (namespace scope so it can serve as a
/// defaulted constructor argument — a nested class's field defaults are
/// not parsed early enough for that).
struct PagePrefetcherOptions {
  /// Feed entries drained per wakeup before re-checking for work.
  std::size_t max_batch = 256;
  /// Hinted page ranges remembered for duplicate suppression.
  std::size_t dedup_window = 8;
  /// Microseconds slept when the feed is empty.
  unsigned idle_sleep_us = 200;
  /// Resident-set budget for the neighbors section, in bytes.
  /// 0 disables eviction (hints only).  When mincore sampling
  /// estimates residency above the budget, a window of roughly
  /// budget/4 bytes starting at the clock hand is dropped.
  std::uint64_t residency_budget_bytes = 0;
  /// Wakeups between residency samples (budget mode only).
  std::size_t sample_interval = 64;
  /// Pages mincore-sampled per residency estimate.
  std::size_t sample_pages = 4096;
};

class PagePrefetcher {
 public:
  using Options = PagePrefetcherOptions;

  /// Counter snapshot; also the names published to the obs registry
  /// (prefixed "ooc/").
  struct Stats {
    std::uint64_t vertices_consumed = 0;
    std::uint64_t hints_issued = 0;
    std::uint64_t hints_coalesced = 0;
    std::uint64_t pages_hinted = 0;
    std::uint64_t ring_overflows = 0;
    std::uint64_t residency_samples = 0;
    std::uint64_t evictions = 0;
    std::uint64_t pages_dropped = 0;
    /// Last mincore estimate of the neighbors section (sampled pages
    /// scaled to the full section; 0 until the first sample).
    std::uint64_t resident_bytes_estimate = 0;
  };

  /// The prefetcher holds references to `graph` and `feed`; both must
  /// outlive it.  The thread starts immediately.
  PagePrefetcher(const MappedCsr& graph, FrontierFeed& feed,
                 Options options = {});
  ~PagePrefetcher();

  PagePrefetcher(const PagePrefetcher&) = delete;
  PagePrefetcher& operator=(const PagePrefetcher&) = delete;

  /// Stops and joins the thread; idempotent.  Called by the destructor.
  void stop();

  Stats stats() const;

  /// Defines/increments the "ooc/*" counters on `registry` (entity 0,
  /// sim time 0 — host-side work has no simulated timestamp).  Call
  /// after the run; the registry is not thread-safe, so this must not
  /// race with solver publication.
  void publish_stats(obs::Registry& registry) const;

 private:
  void run();
  void hint_vertex(VertexId v);
  void enforce_budget();

  const MappedCsr& graph_;
  FrontierFeed& feed_;
  Options options_;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> vertices_consumed_{0};
  std::atomic<std::uint64_t> hints_issued_{0};
  std::atomic<std::uint64_t> hints_coalesced_{0};
  std::atomic<std::uint64_t> pages_hinted_{0};
  std::atomic<std::uint64_t> residency_samples_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> pages_dropped_{0};
  std::atomic<std::uint64_t> resident_bytes_estimate_{0};

  // Prefetcher-thread-private state (no concurrent access).
  std::vector<MappedCsr::ByteRange> recent_;
  std::size_t recent_next_ = 0;
  std::size_t wakeups_since_sample_ = 0;
  std::uint64_t clock_hand_ = 0;

  std::thread thread_;
};

}  // namespace acic::graph::ooc
