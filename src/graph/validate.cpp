#include "src/graph/validate.hpp"

#include <cmath>

#include "src/util/table.hpp"

namespace acic::graph {

using util::strformat;

ValidationResult validate_sssp(const Csr& csr, VertexId source,
                               const std::vector<Dist>& dist) {
  ValidationResult result;
  const VertexId n = csr.num_vertices();
  if (dist.size() != n) {
    return {false, strformat("distance vector has %zu entries, want %u",
                             dist.size(), n)};
  }
  if (dist[source] != 0.0) {
    return {false, strformat("dist[source=%u] = %g, want 0", source,
                             dist[source])};
  }

  // Condition 2: no relaxable edge.
  for (VertexId v = 0; v < n; ++v) {
    if (!std::isfinite(dist[v])) continue;
    for (const Neighbor& nb : csr.out_neighbors(v)) {
      // Tolerance-free: all our algorithms add the same doubles in some
      // order, and addition of two fixed doubles is deterministic, so a
      // strictly smaller candidate is a genuine missed relaxation.
      if (dist[nb.dst] > dist[v] + nb.weight) {
        return {false,
                strformat("edge (%u -> %u, w=%g) relaxable: dist[%u]=%g > "
                          "dist[%u]+w=%g",
                          v, nb.dst, nb.weight, nb.dst, dist[nb.dst], v,
                          dist[v] + nb.weight)};
      }
    }
  }

  // Condition 3: every finite non-source distance has a witness in-edge.
  std::vector<bool> witnessed(n, false);
  witnessed[source] = true;
  for (VertexId v = 0; v < n; ++v) {
    if (!std::isfinite(dist[v])) continue;
    for (const Neighbor& nb : csr.out_neighbors(v)) {
      if (dist[v] + nb.weight == dist[nb.dst]) witnessed[nb.dst] = true;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (std::isfinite(dist[v]) && !witnessed[v]) {
      return {false, strformat("dist[%u]=%g has no witnessing in-edge", v,
                               dist[v])};
    }
  }
  return result;
}

ValidationResult compare_distances(const std::vector<Dist>& actual,
                                   const std::vector<Dist>& expected) {
  if (actual.size() != expected.size()) {
    return {false, strformat("size mismatch: %zu vs %zu", actual.size(),
                             expected.size())};
  }
  for (std::size_t v = 0; v < actual.size(); ++v) {
    const bool both_inf =
        !std::isfinite(actual[v]) && !std::isfinite(expected[v]);
    if (!both_inf && actual[v] != expected[v]) {
      return {false, strformat("dist[%zu] = %.17g, want %.17g", v,
                               actual[v], expected[v])};
    }
  }
  return {true, {}};
}

ValidationResult validate_csr(const Csr& csr, bool require_simple) {
  const VertexId n = csr.num_vertices();
  const std::span<const std::size_t> offsets = csr.offsets();
  if (offsets.empty() || offsets.front() != 0) {
    return {false, "offsets must start at 0"};
  }
  if (offsets.back() != csr.num_edges()) {
    return {false, strformat("offsets.back()=%zu, want num_edges=%zu",
                             offsets.back(), csr.num_edges())};
  }
  for (VertexId v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return {false, strformat("offsets not ascending at vertex %u", v)};
    }
    const auto row = csr.out_neighbors(v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      const Neighbor& nb = row[i];
      if (nb.dst >= n) {
        return {false, strformat("edge (%u -> %u) destination out of "
                                 "range (|V|=%u)",
                                 v, nb.dst, n)};
      }
      if (!std::isfinite(nb.weight) || nb.weight < 0.0) {
        return {false, strformat("edge (%u -> %u) has invalid weight %g",
                                 v, nb.dst, nb.weight)};
      }
      if (i > 0) {
        const Neighbor& prev = row[i - 1];
        if (nb.dst < prev.dst ||
            (nb.dst == prev.dst && nb.weight < prev.weight)) {
          return {false,
                  strformat("row %u not sorted by (dst, weight) at "
                            "position %zu",
                            v, i)};
        }
        if (require_simple && nb.dst == prev.dst) {
          return {false, strformat("duplicate edge (%u -> %u)", v, nb.dst)};
        }
      }
      if (require_simple && nb.dst == v) {
        return {false, strformat("self edge at vertex %u", v)};
      }
    }
  }
  return {true, {}};
}

}  // namespace acic::graph
