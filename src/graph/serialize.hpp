#pragma once
// Binary CSR serialization: cache generated graphs on disk so that
// large-scale experiment sweeps do not regenerate the same workload for
// every binary.  The format is a fixed little-endian header (magic,
// version, |V|, |E|) followed by the raw offset and neighbor arrays; it
// is a cache format, not an interchange format — consistency of the
// producing build is assumed and the magic/version guard the rest.
//
// Two versions share the magic:
//   v1 — a frozen CSR (header + offsets + neighbors), unchanged.
//   v2 — a dynamic graph: the v1 payload of the *base* (epoch 0) CSR,
//        followed by the epoch count and the applied-mutation log.
//        Loading replays the log through DynamicGraph::apply, so the
//        reconstructed graph has bit-identical snapshots, timestamps
//        and epochs (apply is deterministic in the logged stream; the
//        round-trip test pins this).  load_csr rejects v2 files with a
//        version error; load_dynamic_graph accepts v1 files as a
//        dynamic graph with an empty log (epoch 0) for compatibility.

#include <string>

#include "src/dynamic/dynamic_graph.hpp"
#include "src/graph/csr.hpp"

namespace acic::graph {

/// Writes `csr` to `path`; returns false on I/O failure.
bool save_csr(const Csr& csr, const std::string& path);

/// Loads a CSR written by save_csr.  Throws std::runtime_error on
/// missing file, bad magic/version, or truncation.
Csr load_csr(const std::string& path);

/// Writes `graph` (base CSR + applied-mutation log + epoch count) as a
/// v2 file; returns false on I/O failure.
bool save_dynamic_graph(const dynamic::DynamicGraph& graph,
                        const std::string& path);

/// Loads a dynamic graph: v2 files replay their log epoch by epoch
/// (empty epochs included — apply() == one epoch is preserved); v1
/// files load as an epoch-0 dynamic graph with no log.  The stored base
/// must satisfy the simple-graph contract.  Throws std::runtime_error
/// on missing file, bad magic, unknown version, or truncation.
dynamic::DynamicGraph load_dynamic_graph(const std::string& path);

/// Cache wrapper: loads `path` if present, otherwise invokes `build`,
/// saves the result, and returns it.  Used by benches via
/// `--graph-cache <dir>`.
template <typename BuildFn>
Csr load_or_build_csr(const std::string& path, BuildFn&& build) {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return load_csr(path);
  }
  Csr csr = build();
  save_csr(csr, path);
  return csr;
}

}  // namespace acic::graph
