#pragma once
// Binary CSR serialization: cache generated graphs on disk so that
// large-scale experiment sweeps do not regenerate the same workload for
// every binary.  The format is a fixed little-endian header (magic,
// version, |V|, |E|) followed by the raw offset and neighbor arrays; it
// is a cache format, not an interchange format — consistency of the
// producing build is assumed and the magic/version guard the rest.

#include <string>

#include "src/graph/csr.hpp"

namespace acic::graph {

/// Writes `csr` to `path`; returns false on I/O failure.
bool save_csr(const Csr& csr, const std::string& path);

/// Loads a CSR written by save_csr.  Throws std::runtime_error on
/// missing file, bad magic/version, or truncation.
Csr load_csr(const std::string& path);

/// Cache wrapper: loads `path` if present, otherwise invokes `build`,
/// saves the result, and returns it.  Used by benches via
/// `--graph-cache <dir>`.
template <typename BuildFn>
Csr load_or_build_csr(const std::string& path, BuildFn&& build) {
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fclose(f);
    return load_csr(path);
  }
  Csr csr = build();
  save_csr(csr, path);
  return csr;
}

}  // namespace acic::graph
