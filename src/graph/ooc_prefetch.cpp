#include "src/graph/ooc_prefetch.hpp"

#include <algorithm>
#include <chrono>

#include "src/obs/registry.hpp"
#include "src/util/assert.hpp"

namespace acic::graph::ooc {

FrontierFeed::FrontierFeed(std::size_t capacity) {
  std::size_t cap = 64;
  while (cap < capacity) cap <<= 1;
  mask_ = cap - 1;
  cells_.reset(new Cell[cap]);
  for (std::size_t i = 0; i < cap; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool FrontierFeed::try_publish(VertexId v) {
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        cell.value = v;
        cell.seq.store(pos + 1, std::memory_order_release);
        published_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS lost: `pos` was reloaded, retry at the new tail.
    } else if (dif < 0) {
      // The slot still holds an unconsumed entry from a full lap ago:
      // the ring is full.  Drop — publication must never block.
      overflows_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

bool FrontierFeed::try_pop(VertexId* v) {
  const std::uint64_t pos = head_.load(std::memory_order_relaxed);
  Cell& cell = cells_[pos & mask_];
  const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
  if (seq != pos + 1) return false;  // empty or the producer is mid-write
  *v = cell.value;
  cell.seq.store(pos + mask_ + 1, std::memory_order_release);
  head_.store(pos + 1, std::memory_order_relaxed);
  return true;
}

PagePrefetcher::PagePrefetcher(const MappedCsr& graph, FrontierFeed& feed,
                               Options options)
    : graph_(graph), feed_(feed), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  recent_.assign(std::max<std::size_t>(1, options_.dedup_window),
                 MappedCsr::ByteRange{});
  clock_hand_ = graph_.neighbors_section().begin;
  thread_ = std::thread([this] { run(); });
}

PagePrefetcher::~PagePrefetcher() { stop(); }

void PagePrefetcher::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void PagePrefetcher::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::size_t drained = 0;
    VertexId v = 0;
    while (drained < options_.max_batch && feed_.try_pop(&v)) {
      hint_vertex(v);
      ++drained;
    }
    if (options_.residency_budget_bytes > 0 &&
        ++wakeups_since_sample_ >= options_.sample_interval) {
      wakeups_since_sample_ = 0;
      enforce_budget();
    }
    if (drained == 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.idle_sleep_us));
    }
  }
  // Final drain so short runs still exercise the hint path.
  VertexId v = 0;
  std::size_t drained = 0;
  while (drained < options_.max_batch && feed_.try_pop(&v)) {
    hint_vertex(v);
    ++drained;
  }
}

void PagePrefetcher::hint_vertex(VertexId v) {
  vertices_consumed_.fetch_add(1, std::memory_order_relaxed);
  if (v >= graph_.num_vertices()) return;  // stale/garbled id: ignore
  MappedCsr::ByteRange r = graph_.adjacency_range(v);
  if (r.empty()) return;

  // Page-align, then suppress ranges already covered by a recent hint —
  // consecutive pq vertices usually share adjacency pages.
  const std::uint64_t page = graph_.page_bytes();
  r.begin = r.begin / page * page;
  r.end = (r.end + page - 1) / page * page;
  for (const MappedCsr::ByteRange& seen : recent_) {
    if (!seen.empty() && r.begin >= seen.begin && r.end <= seen.end) {
      hints_coalesced_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  recent_[recent_next_] = r;
  recent_next_ = (recent_next_ + 1) % recent_.size();

  const std::size_t pages = graph_.hint_will_need(r);
  hints_issued_.fetch_add(1, std::memory_order_relaxed);
  pages_hinted_.fetch_add(pages, std::memory_order_relaxed);
}

void PagePrefetcher::enforce_budget() {
  const MappedCsr::ByteRange section = graph_.neighbors_section();
  if (section.empty()) return;
  const MappedCsr::ResidencySample sample =
      graph_.sample_residency(section, options_.sample_pages);
  residency_samples_.fetch_add(1, std::memory_order_relaxed);
  if (sample.pages_sampled == 0) return;

  const std::uint64_t section_bytes = section.end - section.begin;
  const std::uint64_t resident_estimate =
      section_bytes * sample.pages_resident / sample.pages_sampled;
  resident_bytes_estimate_.store(resident_estimate,
                                 std::memory_order_relaxed);
  if (resident_estimate <= options_.residency_budget_bytes) return;

  // Clock-hand eviction: drop a budget/4 window and advance.  Dropped
  // pages refault from the file on next touch — slower, never different.
  const std::uint64_t window =
      std::max<std::uint64_t>(options_.residency_budget_bytes / 4,
                              graph_.page_bytes());
  if (clock_hand_ < section.begin || clock_hand_ >= section.end) {
    clock_hand_ = section.begin;
  }
  const std::uint64_t end =
      std::min<std::uint64_t>(clock_hand_ + window, section.end);
  const std::size_t dropped = graph_.drop_pages({clock_hand_, end});
  clock_hand_ = end >= section.end ? section.begin : end;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  pages_dropped_.fetch_add(dropped, std::memory_order_relaxed);
}

PagePrefetcher::Stats PagePrefetcher::stats() const {
  Stats s;
  s.vertices_consumed = vertices_consumed_.load(std::memory_order_relaxed);
  s.hints_issued = hints_issued_.load(std::memory_order_relaxed);
  s.hints_coalesced = hints_coalesced_.load(std::memory_order_relaxed);
  s.pages_hinted = pages_hinted_.load(std::memory_order_relaxed);
  s.ring_overflows = feed_.overflows();
  s.residency_samples = residency_samples_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.pages_dropped = pages_dropped_.load(std::memory_order_relaxed);
  s.resident_bytes_estimate =
      resident_bytes_estimate_.load(std::memory_order_relaxed);
  return s;
}

void PagePrefetcher::publish_stats(obs::Registry& registry) const {
  const Stats s = stats();
  const auto put = [&registry](const char* name, std::uint64_t value) {
    registry.add(registry.counter(name), 0, value, 0.0);
  };
  put("ooc/vertices_consumed", s.vertices_consumed);
  put("ooc/hints_issued", s.hints_issued);
  put("ooc/hints_coalesced", s.hints_coalesced);
  put("ooc/pages_hinted", s.pages_hinted);
  put("ooc/ring_overflows", s.ring_overflows);
  put("ooc/residency_samples", s.residency_samples);
  put("ooc/evictions", s.evictions);
  put("ooc/pages_dropped", s.pages_dropped);
  put("ooc/resident_bytes_estimate", s.resident_bytes_estimate);
}

}  // namespace acic::graph::ooc
