#pragma once
// Page-aligned on-disk CSR: the out-of-core graph format.
//
// Layout (little-endian, host field layout, every section starting on a
// 4 KiB page boundary so madvise/mincore operate on clean ranges):
//
//   [0, 4096)              CsrFileHeader, zero-padded to one page
//   [offsets_pos, ...)     (|V|+1) x u64 row offsets, zero-padded to a page
//   [neighbors_pos, ...)   |E| x 16-byte neighbor records
//                          {u32 dst, u32 zero-pad, f64 weight},
//                          zero-padded to a page
//
// The neighbor record layout is static_asserted to match the in-memory
// `Neighbor`, so an mmap of the neighbors section is directly usable as
// `const Neighbor*` (see MappedCsr).  The struct's padding bytes are
// written as explicit zeros, which makes file bytes a pure function of
// the edge multiset: the same graph always produces the same file,
// whether written from an in-memory Csr or by the streaming builder at
// any chunk size or thread count (the ooc tests pin this).
//
// The magic differs from the serialize.cpp cache magic on purpose:
// load_csr must never silently materialize a paper-scale file, so it
// recognizes this magic and points the caller at MappedCsr/load_csr_file.
//
// StreamingCsrWriter builds scale-24+ files without ever holding the
// edge list in RAM: edges accumulate in a bounded chunk buffer, each
// full chunk is sorted by (src, dst, weight) and spilled as a run file,
// and finish() k-way-merges the runs straight into the neighbors
// section.  A global (src, dst, weight) sort is the per-source counting
// sort + per-row (dst, weight) sort that Csr::from_edge_list performs,
// so the merged output is byte-identical to the in-memory build.  Peak
// memory is O(chunk + |V|) — the per-vertex degree counts (8 bytes per
// vertex) plus one chunk buffer — independent of |E|.

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"

namespace acic::graph {

/// "ACICOOC1" — distinct from serialize.cpp's cache magic.
inline constexpr std::uint64_t kCsrFileMagic = 0x31434F4F43494341ULL;
inline constexpr std::uint32_t kCsrFileVersion = 1;
/// Section alignment.  Fixed at the classic 4 KiB page: files written on
/// a large-page host stay valid everywhere, and runtime madvise granules
/// are computed from the *runtime* page size in MappedCsr.
inline constexpr std::uint64_t kCsrFilePageBytes = 4096;

struct CsrFileHeader {
  std::uint64_t magic = kCsrFileMagic;
  std::uint32_t version = kCsrFileVersion;
  std::uint32_t page_bytes = static_cast<std::uint32_t>(kCsrFilePageBytes);
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t offsets_pos = 0;      // page-aligned
  std::uint64_t offsets_bytes = 0;    // (num_vertices + 1) * 8
  std::uint64_t neighbors_pos = 0;    // page-aligned
  std::uint64_t neighbors_bytes = 0;  // num_edges * 16
};
static_assert(sizeof(CsrFileHeader) == 64);

/// Writes `csr` to `path` in the on-disk format, streaming section by
/// section (no full-file staging buffer).  Returns false on I/O failure.
bool write_csr_file(const Csr& csr, const std::string& path);

/// Reads just the header.  Returns false (without throwing) if the file
/// is missing or does not carry the on-disk-CSR magic; throws
/// std::runtime_error on an unsupported version or a malformed header.
bool probe_csr_file(const std::string& path, CsrFileHeader* header);

/// Fully materializes a CSR file into an owning in-memory Csr (the
/// sections are streamed through a bounded buffer, then validated).
/// Intended for tests and small graphs; paper-scale files should be
/// opened with MappedCsr instead.  Throws std::runtime_error on any
/// format or I/O problem.
Csr load_csr_file(const std::string& path);

/// Knobs for StreamingCsrWriter (namespace scope so it can serve as a
/// defaulted constructor argument — a nested class's field defaults are
/// not parsed early enough for that).
struct StreamingCsrWriterOptions {
  /// Edges buffered in RAM before a sorted run is spilled (16 bytes
  /// each; the default buffers 64 MiB).
  std::uint64_t chunk_edges = 1ull << 22;
  /// Host threads for sorting chunk sub-ranges.  A chunk is split into
  /// `threads` blocks sorted in parallel and then merged, so the run
  /// bytes — and the final file — are identical at any thread count.
  unsigned threads = 1;
  /// Directory for spill runs; empty means alongside `path`.
  std::string tmp_dir;
};

/// External-memory CSR construction: add() edges in any order, then
/// finish() writes the complete file.  See the file comment for the
/// spill/merge design and the byte-equality contract.
class StreamingCsrWriter {
 public:
  using Options = StreamingCsrWriterOptions;

  StreamingCsrWriter(std::string path, VertexId num_vertices,
                     Options options = {});
  ~StreamingCsrWriter();

  StreamingCsrWriter(const StreamingCsrWriter&) = delete;
  StreamingCsrWriter& operator=(const StreamingCsrWriter&) = delete;

  void add(const Edge& e);
  void add(std::span<const Edge> edges);

  std::uint64_t num_edges_added() const { return num_edges_; }
  /// Sorted runs spilled so far (finish() may add one more for the tail).
  std::size_t num_runs() const { return runs_.size(); }

  /// Sorts/spills the tail chunk, merges all runs into the final file,
  /// and removes the spill files.  Returns false on I/O failure (spill
  /// files are cleaned up either way).  May be called once.
  bool finish();

 private:
  bool spill_chunk();

  std::string path_;
  Options options_;
  VertexId num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  bool finished_ = false;
  bool io_error_ = false;
  std::vector<Edge> chunk_;
  std::vector<std::uint64_t> degrees_;  // per-source counts, |V| entries
  struct Run {
    std::string path;
    std::uint64_t num_edges = 0;
  };
  std::vector<Run> runs_;
};

}  // namespace acic::graph
