#pragma once
// Edge-list container: the interchange format produced by all generators
// and consumed by the CSR builder and the text IO layer.

#include <cstdint>
#include <vector>

#include "src/graph/types.hpp"

namespace acic::graph {

class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  VertexId num_vertices() const { return num_vertices_; }
  void set_num_vertices(VertexId n) { num_vertices_ = n; }

  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& edges() { return edges_; }

  void add(VertexId src, VertexId dst, Weight w) {
    edges_.push_back(Edge{src, dst, w});
  }
  void reserve(std::size_t n) { edges_.reserve(n); }

  /// Sorts edges by (src, dst, weight); required by the CSR builder and by
  /// the paper's artifact convention ("sorted ascending by origin").
  /// With threads > 1, contiguous blocks are sorted on host threads and
  /// merged; equal keys are identical Edge values, so the result is
  /// byte-identical to the serial sort.
  void sort_by_source() { sort_by_source(1); }
  void sort_by_source(unsigned threads);

  /// Removes self-loops (PaRMAT's -noEdgeToSelf).
  void remove_self_loops();

  /// Removes duplicate (src, dst) pairs keeping the lightest weight
  /// (PaRMAT's -noDuplicateEdges, adapted for weighted edges).  Requires
  /// the list to be sorted first; sorts if necessary.
  void remove_duplicates();

  /// True if every endpoint is < num_vertices().
  bool endpoints_in_range() const;

  /// Returns a copy with the reverse of every edge added (same weight),
  /// making the graph effectively undirected — used by the connected-
  /// components algorithms, which propagate labels both ways.
  EdgeList symmetrized() const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace acic::graph
