#pragma once
// Vertex reordering: locality-improving relabelings of a CSR graph.
//
// The 1-D block partition assigns contiguous vertex ranges to PEs, so
// the *labeling* of the vertices decides both simulated locality (which
// updates cross node boundaries) and host locality (how the distance
// array and adjacency rows are walked).  A permutation is a free knob:
// relabel the graph once up front, run any solver unchanged, and map the
// distances back.
//
// Modes:
//   * identity     — no-op (the reference labeling).
//   * degree_desc  — vertices sorted by out-degree descending (ties by
//                    original id): RMAT's hubs cluster into the first
//                    partition ranges and the first cache lines of the
//                    distance array, where almost all traffic lands.
//   * bfs          — BFS visitation order from a root ("Gorder-lite"):
//                    neighbors get nearby labels, so an expansion's
//                    updates cluster into few partitions/cache lines.
//
// Convention: perm[old] = new.  A reordered run is validated by *exact*
// distance equality after inverse permutation — converged shortest-path
// distances are per-path floating-point sums, independent of relaxation
// order — but NOT by checksum/sim-time identity: relabeling legitimately
// changes the message schedule (see docs/performance.md "Locality").

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"

namespace acic::graph {

enum class ReorderMode : std::uint8_t { kIdentity, kDegreeDesc, kBfs };

const char* reorder_mode_name(ReorderMode mode);

/// Parses "identity" / "degree_desc" / "bfs"; asserts otherwise.
ReorderMode reorder_mode_from_string(const std::string& name);

/// Builds the relabeling permutation for `mode` (perm[old] = new).
/// `bfs_root` seeds the BFS order; unreachable vertices are appended in
/// ascending original id.  Deterministic for a given (csr, mode, root).
std::vector<VertexId> make_permutation(const Csr& csr, ReorderMode mode,
                                       VertexId bfs_root = 0);

/// inv[perm[v]] == v for all v; asserts `perm` is a permutation.
std::vector<VertexId> invert_permutation(const std::vector<VertexId>& perm);

/// True iff `perm` is a bijection on [0, perm.size()).
bool is_permutation(const std::vector<VertexId>& perm);

/// Bundles a permutation with the relabeled graph and both directions of
/// the mapping: map the source in, run on csr(), map the distances back
/// out.  Holds its own copy of the permuted CSR.
class Remap {
 public:
  /// Builds perm for `mode` and the permuted CSR (`threads` parallelizes
  /// the relabel; the result is identical at any thread count).
  Remap(const Csr& csr, ReorderMode mode, unsigned threads = 1,
        VertexId bfs_root = 0);

  ReorderMode mode() const { return mode_; }
  const Csr& csr() const { return permuted_; }
  const std::vector<VertexId>& perm() const { return perm_; }

  /// Original label -> relabeled (e.g. the query source).
  VertexId map_vertex(VertexId old_id) const { return perm_[old_id]; }
  /// Relabeled -> original.
  VertexId unmap_vertex(VertexId new_id) const { return inverse_[new_id]; }

  /// Distances indexed by relabeled vertex -> distances indexed by
  /// original vertex (out[v] = in[perm[v]]).
  std::vector<Dist> unmap_distances(const std::vector<Dist>& dist) const;

 private:
  ReorderMode mode_;
  std::vector<VertexId> perm_;     // perm_[old] = new
  std::vector<VertexId> inverse_;  // inverse_[new] = old
  Csr permuted_;
};

}  // namespace acic::graph
