#pragma once
// SSSP result validation: the fixed-point conditions every correct
// distance vector must satisfy, plus exact comparison against a reference.
// Used by the test suite and (optionally) by examples after each run.

#include <string>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"

namespace acic::graph {

struct ValidationResult {
  bool ok = true;
  std::string error;  // first violated condition, human-readable
};

/// Checks the SSSP fixed-point conditions for non-negative weights:
///   1. dist[source] == 0,
///   2. for every edge (v, w, c) with finite dist[v]:
///        dist[w] <= dist[v] + c   (no relaxable edge remains),
///   3. every finite dist[w] (w != source) is *witnessed* by some in-edge:
///        exists (v, w, c) with dist[v] + c == dist[w],
///   4. unreachable vertices have dist == +inf.
/// Conditions 1–3 together imply the vector is exactly the shortest-path
/// distances; 4 is implied by 3 but checked separately for a better
/// error message.
ValidationResult validate_sssp(const Csr& csr, VertexId source,
                               const std::vector<Dist>& dist);

/// Compares two distance vectors exactly (infinities must match).
ValidationResult compare_distances(const std::vector<Dist>& actual,
                                   const std::vector<Dist>& expected);

/// Structural CSR invariants every builder (and every mutation epoch of
/// the dynamic layer) must preserve:
///   1. offsets[0] == 0, offsets ascending, offsets.back() == |E|,
///   2. every destination < |V|, every weight finite and >= 0,
///   3. every row sorted by (dst, weight).
/// With `require_simple` (the dynamic-graph contract) additionally:
///   4. no self edge (v -> v),
///   5. no duplicate (src, dst) pair within a row.
/// Debug builds of DynamicGraph::apply run this after every mutation
/// epoch; the static builders are exercised through it in the tests.
ValidationResult validate_csr(const Csr& csr, bool require_simple = false);

}  // namespace acic::graph
