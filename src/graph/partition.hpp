#pragma once
// Vertex partitioners.
//
// ACIC uses a one-dimensional partition: each PE owns a contiguous vertex
// range and the out-edges of those vertices, exactly one copy of each
// vertex exists, and only the owner may touch its state (paper §II.A).
// Two 1-D flavors are provided:
//   * block   — equal vertex counts (the paper's scheme; hub-heavy RMAT
//               graphs load-imbalance under it, which the evaluation
//               section leans on to explain ACIC's RMAT loss), and
//   * balanced-edge — contiguous ranges chosen so each PE holds roughly
//               equal out-edge counts (used by the ablation benches).
// The 2-D grid partition used by the RIKEN Δ-stepping baseline lives in
// partition2d.hpp.

#include <cstdint>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"

namespace acic::graph {

/// A 1-D partition of [0, num_vertices) into `num_parts` contiguous
/// ranges.  Part p owns vertices [begin(p), end(p)).
class Partition1D {
 public:
  /// Equal-vertex-count block partition.
  static Partition1D block(VertexId num_vertices, std::uint32_t num_parts);

  /// Contiguous ranges with approximately equal out-edge counts.
  static Partition1D balanced_edges(const Csr& csr, std::uint32_t num_parts);

  std::uint32_t num_parts() const {
    return static_cast<std::uint32_t>(starts_.size() - 1);
  }
  VertexId num_vertices() const { return starts_.back(); }

  VertexId begin(std::uint32_t part) const { return starts_[part]; }
  VertexId end(std::uint32_t part) const { return starts_[part + 1]; }
  VertexId size(std::uint32_t part) const {
    return starts_[part + 1] - starts_[part];
  }

  /// Owner of vertex v (binary search over the range starts).
  std::uint32_t owner(VertexId v) const;

  const std::vector<VertexId>& starts() const { return starts_; }

 private:
  explicit Partition1D(std::vector<VertexId> starts)
      : starts_(std::move(starts)) {}

  // starts_[p] is the first vertex of part p; starts_[num_parts] == |V|.
  std::vector<VertexId> starts_;
};

}  // namespace acic::graph
