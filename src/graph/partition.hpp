#pragma once
// Vertex partitioners.
//
// ACIC uses a one-dimensional partition: each PE owns a contiguous vertex
// range and the out-edges of those vertices, exactly one copy of each
// vertex exists, and only the owner may touch its state (paper §II.A).
// Two 1-D flavors are provided:
//   * block   — equal vertex counts (the paper's scheme; hub-heavy RMAT
//               graphs load-imbalance under it, which the evaluation
//               section leans on to explain ACIC's RMAT loss), and
//   * balanced-edge — contiguous ranges chosen so each PE holds roughly
//               equal out-edge counts (used by the ablation benches).
// The 2-D grid partition used by the RIKEN Δ-stepping baseline lives in
// partition2d.hpp.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"
#include "src/util/assert.hpp"

namespace acic::graph {

/// A 1-D partition of [0, num_vertices) into `num_parts` contiguous
/// ranges.  Part p owns vertices [begin(p), end(p)).
class Partition1D {
 public:
  /// Equal-vertex-count block partition.
  static Partition1D block(VertexId num_vertices, std::uint32_t num_parts);

  /// Contiguous ranges with approximately equal out-edge counts.
  static Partition1D balanced_edges(const Csr& csr, std::uint32_t num_parts);

  std::uint32_t num_parts() const {
    return static_cast<std::uint32_t>(starts_.size() - 1);
  }
  VertexId num_vertices() const { return starts_.back(); }

  VertexId begin(std::uint32_t part) const { return starts_[part]; }
  VertexId end(std::uint32_t part) const { return starts_[part + 1]; }
  VertexId size(std::uint32_t part) const {
    return starts_[part + 1] - starts_[part];
  }

  /// Owner of vertex v.  Defined inline: it runs once per created
  /// update.  A uniform power-of-two block partition (the common case:
  /// Graph500-style 2^scale vertices over a power-of-two PE count)
  /// resolves with a single shift.  Otherwise, for the usual handful of
  /// parts, a branchless count of range starts <= v beats a binary
  /// search — update targets are effectively random, so the search's
  /// branches never predict.  All forms yield the same index (starts_
  /// is ascending and starts_[0] is 0, so the count equals
  /// upper_bound - begin - 1).
  std::uint32_t owner(VertexId v) const {
    ACIC_HOT_ASSERT(v < num_vertices());
    if (shift_ != kNoShift) {
      return static_cast<std::uint32_t>(v >> shift_);
    }
    const std::uint32_t parts = num_parts();
    if (parts <= 32) {
      std::uint32_t o = 0;
      for (std::uint32_t p = 1; p < parts; ++p) {
        o += starts_[p] <= v ? 1u : 0u;
      }
      return o;
    }
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), v);
    return static_cast<std::uint32_t>(it - starts_.begin()) - 1;
  }

  const std::vector<VertexId>& starts() const { return starts_; }

 private:
  explicit Partition1D(std::vector<VertexId> starts)
      : starts_(std::move(starts)) {
    // Detect a uniform power-of-two block: starts_[p] == p << shift for
    // every p (including the end sentinel).  owner() then degenerates to
    // v >> shift, which is exact — no floating point involved.
    const std::uint32_t parts = num_parts();
    const VertexId chunk = parts > 0 ? starts_[1] - starts_[0] : 0;
    if (starts_[0] == 0 && chunk > 0 && (chunk & (chunk - 1)) == 0) {
      std::uint32_t shift = 0;
      while ((VertexId{1} << shift) != chunk) ++shift;
      bool uniform = true;
      for (std::uint32_t p = 0; p <= parts; ++p) {
        if (starts_[p] != static_cast<VertexId>(p) * chunk) {
          uniform = false;
          break;
        }
      }
      if (uniform) shift_ = shift;
    }
  }

  static constexpr std::uint32_t kNoShift = 0xffffffffu;

  // starts_[p] is the first vertex of part p; starts_[num_parts] == |V|.
  std::vector<VertexId> starts_;
  // log2(part size) when the partition is a uniform power-of-two block,
  // kNoShift otherwise.
  std::uint32_t shift_ = kNoShift;
};

}  // namespace acic::graph
