#include "src/graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "src/util/assert.hpp"

namespace acic::graph {

const char* reorder_mode_name(ReorderMode mode) {
  switch (mode) {
    case ReorderMode::kIdentity:
      return "identity";
    case ReorderMode::kDegreeDesc:
      return "degree_desc";
    case ReorderMode::kBfs:
      return "bfs";
  }
  ACIC_ASSERT_MSG(false, "invalid ReorderMode");
  return "";
}

ReorderMode reorder_mode_from_string(const std::string& name) {
  if (name == "identity") return ReorderMode::kIdentity;
  if (name == "degree_desc") return ReorderMode::kDegreeDesc;
  if (name == "bfs") return ReorderMode::kBfs;
  ACIC_ASSERT_MSG(false,
                  "unknown reorder mode (expected identity, degree_desc "
                  "or bfs)");
  return ReorderMode::kIdentity;
}

bool is_permutation(const std::vector<VertexId>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const VertexId p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

std::vector<VertexId> invert_permutation(const std::vector<VertexId>& perm) {
  ACIC_ASSERT_MSG(is_permutation(perm), "not a permutation");
  std::vector<VertexId> inv(perm.size());
  for (VertexId v = 0; v < perm.size(); ++v) {
    inv[perm[v]] = v;
  }
  return inv;
}

namespace {

/// Hub clustering: old vertices sorted by out-degree descending, ties by
/// original id ascending.  The sorted position is the new label, so the
/// heaviest hub becomes vertex 0.
std::vector<VertexId> degree_desc_permutation(const Csr& csr) {
  const VertexId n = csr.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::sort(by_degree.begin(), by_degree.end(),
            [&csr](VertexId a, VertexId b) {
              const std::size_t da = csr.out_degree(a);
              const std::size_t db = csr.out_degree(b);
              if (da != db) return da > db;
              return a < b;
            });
  std::vector<VertexId> perm(n);
  for (VertexId rank = 0; rank < n; ++rank) {
    perm[by_degree[rank]] = rank;
  }
  return perm;
}

/// BFS visitation order from `root`, expanding adjacency rows in their
/// canonical (dst, weight) order — a FIFO frontier, so a vertex's label
/// is its discovery rank.  Vertices unreachable from the root keep their
/// relative order, appended after the reachable set.
std::vector<VertexId> bfs_permutation(const Csr& csr, VertexId root) {
  const VertexId n = csr.num_vertices();
  constexpr VertexId kUnassigned = kInvalidVertex;
  std::vector<VertexId> perm(n, kUnassigned);
  std::vector<VertexId> queue;
  queue.reserve(n);
  VertexId next = 0;

  perm[root] = next++;
  queue.push_back(root);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    for (const Neighbor& nb : csr.out_neighbors(v)) {
      if (perm[nb.dst] == kUnassigned) {
        perm[nb.dst] = next++;
        queue.push_back(nb.dst);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (perm[v] == kUnassigned) perm[v] = next++;
  }
  ACIC_ASSERT(next == n);
  return perm;
}

}  // namespace

std::vector<VertexId> make_permutation(const Csr& csr, ReorderMode mode,
                                       VertexId bfs_root) {
  const VertexId n = csr.num_vertices();
  switch (mode) {
    case ReorderMode::kIdentity: {
      std::vector<VertexId> perm(n);
      std::iota(perm.begin(), perm.end(), VertexId{0});
      return perm;
    }
    case ReorderMode::kDegreeDesc:
      return degree_desc_permutation(csr);
    case ReorderMode::kBfs:
      ACIC_ASSERT(n == 0 || bfs_root < n);
      if (n == 0) return {};
      return bfs_permutation(csr, bfs_root);
  }
  ACIC_ASSERT_MSG(false, "invalid ReorderMode");
  return {};
}

Remap::Remap(const Csr& csr, ReorderMode mode, unsigned threads,
             VertexId bfs_root)
    : mode_(mode),
      perm_(make_permutation(csr, mode, bfs_root)),
      inverse_(invert_permutation(perm_)),
      permuted_(csr.permuted(perm_, threads)) {}

std::vector<Dist> Remap::unmap_distances(
    const std::vector<Dist>& dist) const {
  ACIC_ASSERT(dist.size() == perm_.size());
  std::vector<Dist> out(dist.size());
  for (VertexId v = 0; v < perm_.size(); ++v) {
    out[v] = dist[perm_[v]];
  }
  return out;
}

}  // namespace acic::graph
