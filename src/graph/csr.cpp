#include "src/graph/csr.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "src/util/assert.hpp"
#include "src/util/parallel.hpp"

namespace acic::graph {

namespace {

/// Edges (for count/fill) and vertices (for row sorts) are handed to
/// host threads in blocks of this size.
constexpr std::size_t kBlock = std::size_t{1} << 16;

bool neighbor_less(const Neighbor& a, const Neighbor& b) {
  if (a.dst != b.dst) return a.dst < b.dst;
  return a.weight < b.weight;
}

}  // namespace

void Csr::adopt(std::vector<std::size_t> offsets,
                std::vector<Neighbor> neighbors) {
  ACIC_ASSERT(!offsets.empty());
  offsets_storage_ = std::move(offsets);
  neighbors_storage_ = std::move(neighbors);
  offsets_ = offsets_storage_.data();
  neighbors_ = neighbors_storage_.data();
  num_vertices_ = static_cast<VertexId>(offsets_storage_.size() - 1);
  num_edges_ = neighbors_storage_.size();
}

Csr::Csr(const Csr& other)
    : offsets_(other.offsets_),
      neighbors_(other.neighbors_),
      num_vertices_(other.num_vertices_),
      num_edges_(other.num_edges_),
      offsets_storage_(other.offsets_storage_),
      neighbors_storage_(other.neighbors_storage_) {
  if (!offsets_storage_.empty()) {
    offsets_ = offsets_storage_.data();
    neighbors_ = neighbors_storage_.data();
  }
}

Csr& Csr::operator=(const Csr& other) {
  if (this != &other) {
    Csr tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

Csr::Csr(Csr&& other) noexcept
    : offsets_(other.offsets_),
      neighbors_(other.neighbors_),
      num_vertices_(other.num_vertices_),
      num_edges_(other.num_edges_),
      offsets_storage_(std::move(other.offsets_storage_)),
      neighbors_storage_(std::move(other.neighbors_storage_)) {
  if (!offsets_storage_.empty()) {
    offsets_ = offsets_storage_.data();
    neighbors_ = neighbors_storage_.data();
  }
  other.offsets_ = nullptr;
  other.neighbors_ = nullptr;
  other.num_vertices_ = 0;
  other.num_edges_ = 0;
}

Csr& Csr::operator=(Csr&& other) noexcept {
  if (this != &other) {
    offsets_storage_ = std::move(other.offsets_storage_);
    neighbors_storage_ = std::move(other.neighbors_storage_);
    if (!offsets_storage_.empty()) {
      offsets_ = offsets_storage_.data();
      neighbors_ = neighbors_storage_.data();
    } else {
      offsets_ = other.offsets_;
      neighbors_ = other.neighbors_;
    }
    num_vertices_ = other.num_vertices_;
    num_edges_ = other.num_edges_;
    other.offsets_ = nullptr;
    other.neighbors_ = nullptr;
    other.num_vertices_ = 0;
    other.num_edges_ = 0;
  }
  return *this;
}

Csr Csr::borrow(const std::size_t* offsets, const Neighbor* neighbors,
                VertexId num_vertices, std::size_t num_edges) {
  ACIC_ASSERT_MSG(offsets != nullptr, "borrow: null offset array");
  ACIC_ASSERT_MSG(offsets[0] == 0 && offsets[num_vertices] == num_edges,
                  "borrow: malformed offset array");
  Csr csr;
  csr.offsets_ = offsets;
  csr.neighbors_ = neighbors;
  csr.num_vertices_ = num_vertices;
  csr.num_edges_ = num_edges;
  return csr;
}

Csr Csr::from_edge_list(const EdgeList& list, unsigned threads) {
  ACIC_ASSERT_MSG(list.endpoints_in_range(),
                  "edge endpoints must be < num_vertices");
  const VertexId n = list.num_vertices();
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Neighbor> neighbors;

  if (threads <= 1) {
    for (const Edge& e : list.edges()) {
      ++offsets[e.src + 1];
    }
    for (std::size_t v = 1; v <= n; ++v) {
      offsets[v] += offsets[v - 1];
    }

    neighbors.resize(list.num_edges());
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : list.edges()) {
      neighbors[cursor[e.src]++] = Neighbor{e.dst, e.weight};
    }

    // Sort each adjacency row by destination for deterministic traversal
    // order regardless of how the generator emitted edges.
    for (VertexId v = 0; v < n; ++v) {
      std::sort(neighbors.begin() + offsets[v],
                neighbors.begin() + offsets[v + 1], neighbor_less);
    }
    Csr csr;
    csr.adopt(std::move(offsets), std::move(neighbors));
    return csr;
  }

  // Parallel build: atomic per-vertex counts, serial prefix sum, then a
  // fill through per-vertex atomic cursors.  The fill places a row's
  // neighbors in a thread-dependent order, but the per-row (dst, weight)
  // sort below restores a canonical order — duplicates that tie on both
  // fields are identical values — so the CSR matches the serial build
  // byte for byte.
  const std::span<const Edge> edges = list.edges();
  const std::size_t num_edge_blocks = (edges.size() + kBlock - 1) / kBlock;
  std::unique_ptr<std::atomic<std::size_t>[]> cursor(
      new std::atomic<std::size_t>[n]());
  util::parallel_for(num_edge_blocks, threads, [&](std::uint64_t b) {
    const std::size_t first = b * kBlock;
    const std::size_t last = std::min(first + kBlock, edges.size());
    for (std::size_t i = first; i < last; ++i) {
      cursor[edges[i].src].fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (std::size_t v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + cursor[v].load(std::memory_order_relaxed);
    cursor[v].store(offsets[v], std::memory_order_relaxed);
  }

  neighbors.resize(list.num_edges());
  util::parallel_for(num_edge_blocks, threads, [&](std::uint64_t b) {
    const std::size_t first = b * kBlock;
    const std::size_t last = std::min(first + kBlock, edges.size());
    for (std::size_t i = first; i < last; ++i) {
      const Edge& e = edges[i];
      const std::size_t slot =
          cursor[e.src].fetch_add(1, std::memory_order_relaxed);
      neighbors[slot] = Neighbor{e.dst, e.weight};
    }
  });

  const std::size_t num_row_blocks =
      (static_cast<std::size_t>(n) + kBlock - 1) / kBlock;
  util::parallel_for(num_row_blocks, threads, [&](std::uint64_t b) {
    const VertexId first = static_cast<VertexId>(b * kBlock);
    const VertexId last = static_cast<VertexId>(
        std::min<std::size_t>((b + 1) * kBlock, n));
    for (VertexId v = first; v < last; ++v) {
      std::sort(neighbors.begin() + offsets[v],
                neighbors.begin() + offsets[v + 1], neighbor_less);
    }
  });
  Csr csr;
  csr.adopt(std::move(offsets), std::move(neighbors));
  return csr;
}

Csr Csr::permuted(const std::vector<VertexId>& perm,
                  unsigned threads) const {
  const VertexId n = num_vertices();
  ACIC_ASSERT_MSG(perm.size() == n,
                  "permutation size must equal num_vertices");
  // inverse[new] = old: new vertex nv inherits old vertex inverse[nv]'s
  // out-edges.
  std::vector<VertexId> inverse(n);
  for (VertexId v = 0; v < n; ++v) {
    ACIC_ASSERT_MSG(perm[v] < n, "permutation entry out of range");
    inverse[perm[v]] = v;
  }

  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId nv = 0; nv < n; ++nv) {
    offsets[nv + 1] = offsets[nv] + out_degree(inverse[nv]);
  }
  ACIC_ASSERT(offsets[n] == num_edges());

  std::vector<Neighbor> neighbors(num_edges());
  const std::size_t num_row_blocks =
      (static_cast<std::size_t>(n) + kBlock - 1) / kBlock;
  util::parallel_for(num_row_blocks, threads, [&](std::uint64_t b) {
    const VertexId first = static_cast<VertexId>(b * kBlock);
    const VertexId last =
        static_cast<VertexId>(std::min<std::size_t>((b + 1) * kBlock, n));
    for (VertexId nv = first; nv < last; ++nv) {
      const std::span<const Neighbor> row = out_neighbors(inverse[nv]);
      Neighbor* dst = neighbors.data() + offsets[nv];
      for (std::size_t i = 0; i < row.size(); ++i) {
        dst[i] = Neighbor{perm[row[i].dst], row[i].weight};
      }
      // Relabeling scrambles the (dst, weight) order within the row;
      // restore the canonical sort the builders guarantee.
      std::sort(dst, dst + row.size(), neighbor_less);
    }
  });
  Csr out;
  out.adopt(std::move(offsets), std::move(neighbors));
  return out;
}

Csr Csr::from_parts(std::vector<std::size_t> offsets,
                    std::vector<Neighbor> neighbors) {
  ACIC_ASSERT_MSG(!offsets.empty() && offsets.front() == 0 &&
                      offsets.back() == neighbors.size(),
                  "from_parts: malformed offset array");
  Csr csr;
  csr.adopt(std::move(offsets), std::move(neighbors));
#ifndef NDEBUG
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ACIC_ASSERT(csr.offsets_[v] <= csr.offsets_[v + 1]);
    const auto row = csr.out_neighbors(v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      ACIC_ASSERT(row[i].dst < csr.num_vertices());
      ACIC_ASSERT(i == 0 || !neighbor_less(row[i], row[i - 1]));
    }
  }
#endif
  return csr;
}

std::size_t Csr::max_out_degree() const {
  std::size_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    best = std::max(best, out_degree(v));
  }
  return best;
}

}  // namespace acic::graph
