#include "src/graph/csr.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace acic::graph {

Csr Csr::from_edge_list(const EdgeList& list) {
  ACIC_ASSERT_MSG(list.endpoints_in_range(),
                  "edge endpoints must be < num_vertices");
  const VertexId n = list.num_vertices();
  Csr csr;
  csr.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  for (const Edge& e : list.edges()) {
    ++csr.offsets_[e.src + 1];
  }
  for (std::size_t v = 1; v <= n; ++v) {
    csr.offsets_[v] += csr.offsets_[v - 1];
  }

  csr.neighbors_.resize(list.num_edges());
  std::vector<std::size_t> cursor(csr.offsets_.begin(),
                                  csr.offsets_.end() - 1);
  for (const Edge& e : list.edges()) {
    csr.neighbors_[cursor[e.src]++] = Neighbor{e.dst, e.weight};
  }

  // Sort each adjacency row by destination for deterministic traversal
  // order regardless of how the generator emitted edges.
  for (VertexId v = 0; v < n; ++v) {
    auto row = std::span<Neighbor>{
        csr.neighbors_.data() + csr.offsets_[v],
        csr.offsets_[v + 1] - csr.offsets_[v]};
    std::sort(row.begin(), row.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.dst != b.dst) return a.dst < b.dst;
                return a.weight < b.weight;
              });
  }
  return csr;
}

std::size_t Csr::max_out_degree() const {
  std::size_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    best = std::max(best, out_degree(v));
  }
  return best;
}

}  // namespace acic::graph
