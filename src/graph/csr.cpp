#include "src/graph/csr.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/util/assert.hpp"
#include "src/util/parallel.hpp"

namespace acic::graph {

namespace {

/// Edges (for count/fill) and vertices (for row sorts) are handed to
/// host threads in blocks of this size.
constexpr std::size_t kBlock = std::size_t{1} << 16;

bool neighbor_less(const Neighbor& a, const Neighbor& b) {
  if (a.dst != b.dst) return a.dst < b.dst;
  return a.weight < b.weight;
}

}  // namespace

Csr Csr::from_edge_list(const EdgeList& list, unsigned threads) {
  ACIC_ASSERT_MSG(list.endpoints_in_range(),
                  "edge endpoints must be < num_vertices");
  const VertexId n = list.num_vertices();
  Csr csr;
  csr.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  if (threads <= 1) {
    for (const Edge& e : list.edges()) {
      ++csr.offsets_[e.src + 1];
    }
    for (std::size_t v = 1; v <= n; ++v) {
      csr.offsets_[v] += csr.offsets_[v - 1];
    }

    csr.neighbors_.resize(list.num_edges());
    std::vector<std::size_t> cursor(csr.offsets_.begin(),
                                    csr.offsets_.end() - 1);
    for (const Edge& e : list.edges()) {
      csr.neighbors_[cursor[e.src]++] = Neighbor{e.dst, e.weight};
    }

    // Sort each adjacency row by destination for deterministic traversal
    // order regardless of how the generator emitted edges.
    for (VertexId v = 0; v < n; ++v) {
      auto row = std::span<Neighbor>{
          csr.neighbors_.data() + csr.offsets_[v],
          csr.offsets_[v + 1] - csr.offsets_[v]};
      std::sort(row.begin(), row.end(), neighbor_less);
    }
    return csr;
  }

  // Parallel build: atomic per-vertex counts, serial prefix sum, then a
  // fill through per-vertex atomic cursors.  The fill places a row's
  // neighbors in a thread-dependent order, but the per-row (dst, weight)
  // sort below restores a canonical order — duplicates that tie on both
  // fields are identical values — so the CSR matches the serial build
  // byte for byte.
  const std::span<const Edge> edges = list.edges();
  const std::size_t num_edge_blocks = (edges.size() + kBlock - 1) / kBlock;
  std::unique_ptr<std::atomic<std::size_t>[]> cursor(
      new std::atomic<std::size_t>[n]());
  util::parallel_for(num_edge_blocks, threads, [&](std::uint64_t b) {
    const std::size_t first = b * kBlock;
    const std::size_t last = std::min(first + kBlock, edges.size());
    for (std::size_t i = first; i < last; ++i) {
      cursor[edges[i].src].fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (std::size_t v = 0; v < n; ++v) {
    csr.offsets_[v + 1] =
        csr.offsets_[v] + cursor[v].load(std::memory_order_relaxed);
    cursor[v].store(csr.offsets_[v], std::memory_order_relaxed);
  }

  csr.neighbors_.resize(list.num_edges());
  util::parallel_for(num_edge_blocks, threads, [&](std::uint64_t b) {
    const std::size_t first = b * kBlock;
    const std::size_t last = std::min(first + kBlock, edges.size());
    for (std::size_t i = first; i < last; ++i) {
      const Edge& e = edges[i];
      const std::size_t slot =
          cursor[e.src].fetch_add(1, std::memory_order_relaxed);
      csr.neighbors_[slot] = Neighbor{e.dst, e.weight};
    }
  });

  const std::size_t num_row_blocks =
      (static_cast<std::size_t>(n) + kBlock - 1) / kBlock;
  util::parallel_for(num_row_blocks, threads, [&](std::uint64_t b) {
    const VertexId first = static_cast<VertexId>(b * kBlock);
    const VertexId last = static_cast<VertexId>(
        std::min<std::size_t>((b + 1) * kBlock, n));
    for (VertexId v = first; v < last; ++v) {
      std::sort(csr.neighbors_.begin() + csr.offsets_[v],
                csr.neighbors_.begin() + csr.offsets_[v + 1],
                neighbor_less);
    }
  });
  return csr;
}

Csr Csr::permuted(const std::vector<VertexId>& perm,
                  unsigned threads) const {
  const VertexId n = num_vertices();
  ACIC_ASSERT_MSG(perm.size() == n,
                  "permutation size must equal num_vertices");
  // inverse[new] = old: new vertex nv inherits old vertex inverse[nv]'s
  // out-edges.
  std::vector<VertexId> inverse(n);
  for (VertexId v = 0; v < n; ++v) {
    ACIC_ASSERT_MSG(perm[v] < n, "permutation entry out of range");
    inverse[perm[v]] = v;
  }

  Csr out;
  out.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId nv = 0; nv < n; ++nv) {
    out.offsets_[nv + 1] = out.offsets_[nv] + out_degree(inverse[nv]);
  }
  ACIC_ASSERT(out.offsets_[n] == num_edges());

  out.neighbors_.resize(num_edges());
  const std::size_t num_row_blocks =
      (static_cast<std::size_t>(n) + kBlock - 1) / kBlock;
  util::parallel_for(num_row_blocks, threads, [&](std::uint64_t b) {
    const VertexId first = static_cast<VertexId>(b * kBlock);
    const VertexId last =
        static_cast<VertexId>(std::min<std::size_t>((b + 1) * kBlock, n));
    for (VertexId nv = first; nv < last; ++nv) {
      const std::span<const Neighbor> row = out_neighbors(inverse[nv]);
      Neighbor* dst = out.neighbors_.data() + out.offsets_[nv];
      for (std::size_t i = 0; i < row.size(); ++i) {
        dst[i] = Neighbor{perm[row[i].dst], row[i].weight};
      }
      // Relabeling scrambles the (dst, weight) order within the row;
      // restore the canonical sort the builders guarantee.
      std::sort(dst, dst + row.size(), neighbor_less);
    }
  });
  return out;
}

Csr Csr::from_parts(std::vector<std::size_t> offsets,
                    std::vector<Neighbor> neighbors) {
  ACIC_ASSERT_MSG(!offsets.empty() && offsets.front() == 0 &&
                      offsets.back() == neighbors.size(),
                  "from_parts: malformed offset array");
  Csr csr;
  csr.offsets_ = std::move(offsets);
  csr.neighbors_ = std::move(neighbors);
#ifndef NDEBUG
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ACIC_ASSERT(csr.offsets_[v] <= csr.offsets_[v + 1]);
    const auto row = csr.out_neighbors(v);
    for (std::size_t i = 0; i < row.size(); ++i) {
      ACIC_ASSERT(row[i].dst < csr.num_vertices());
      ACIC_ASSERT(i == 0 || !neighbor_less(row[i], row[i - 1]));
    }
  }
#endif
  return csr;
}

std::size_t Csr::max_out_degree() const {
  std::size_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    best = std::max(best, out_degree(v));
  }
  return best;
}

}  // namespace acic::graph
