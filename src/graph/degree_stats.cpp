#include "src/graph/degree_stats.hpp"

#include <algorithm>
#include <cstdint>

namespace acic::graph {

DegreeStats compute_degree_stats(const Csr& csr) {
  DegreeStats stats;
  const VertexId n = csr.num_vertices();
  if (n == 0) return stats;

  std::vector<std::size_t> degrees(n);
  std::size_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = csr.out_degree(v);
    total += degrees[v];
    stats.max_degree = std::max(stats.max_degree, degrees[v]);
    if (degrees[v] == 0) ++stats.isolated;
  }
  stats.mean_degree = static_cast<double>(total) / static_cast<double>(n);

  // Gini via the sorted-rank formula:
  //   G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n,  x sorted asc,
  // with i being 1-based rank.
  std::sort(degrees.begin(), degrees.end());
  if (total > 0) {
    long double weighted = 0.0L;
    for (VertexId i = 0; i < n; ++i) {
      weighted += static_cast<long double>(i + 1) * degrees[i];
    }
    const long double dn = n;
    stats.gini = static_cast<double>(
        (2.0L * weighted) / (dn * static_cast<long double>(total)) -
        (dn + 1.0L) / dn);
  }
  return stats;
}

std::vector<std::size_t> degree_log_histogram(const Csr& csr) {
  std::vector<std::size_t> bins;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    const std::size_t degree = csr.out_degree(v);
    std::size_t bin = 0;
    std::size_t bound = 2;
    while (degree >= bound) {
      ++bin;
      bound <<= 1;
    }
    if (bin >= bins.size()) bins.resize(bin + 1, 0);
    ++bins[bin];
  }
  return bins;
}

}  // namespace acic::graph
