#include "src/graph/csr_file.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

#include "src/util/assert.hpp"
#include "src/util/parallel.hpp"

namespace acic::graph {

namespace {

/// On-disk neighbor record.  Field-for-field the in-memory Neighbor,
/// with the alignment hole made explicit so it is always written as
/// zero; the asserts below let MappedCsr reinterpret the mmap'd section
/// as `const Neighbor*` with no conversion pass.
struct PackedNeighbor {
  std::uint32_t dst = 0;
  std::uint32_t pad = 0;
  double weight = 0.0;
};
static_assert(sizeof(PackedNeighbor) == 16);
static_assert(sizeof(Neighbor) == sizeof(PackedNeighbor));
static_assert(offsetof(Neighbor, dst) == offsetof(PackedNeighbor, dst));
static_assert(offsetof(Neighbor, weight) == offsetof(PackedNeighbor, weight));
static_assert(sizeof(Edge) == 16);          // packed: u32, u32, f64
static_assert(sizeof(std::size_t) == 8);    // offsets are stored as u64

/// Elements staged per I/O call in the buffered section readers/writers.
constexpr std::size_t kIoBatch = std::size_t{1} << 16;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::uint64_t page_align(std::uint64_t pos) {
  return (pos + kCsrFilePageBytes - 1) & ~(kCsrFilePageBytes - 1);
}

bool write_zeros(std::FILE* f, std::uint64_t count) {
  static const char zeros[kCsrFilePageBytes] = {};
  while (count > 0) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(count, sizeof(zeros)));
    if (std::fwrite(zeros, 1, n, f) != n) return false;
    count -= n;
  }
  return true;
}

/// Pads the file from `pos` up to the next page boundary; returns the
/// aligned position.
bool pad_to_page(std::FILE* f, std::uint64_t* pos) {
  const std::uint64_t aligned = page_align(*pos);
  if (!write_zeros(f, aligned - *pos)) return false;
  *pos = aligned;
  return true;
}

CsrFileHeader make_header(std::uint64_t num_vertices,
                          std::uint64_t num_edges) {
  CsrFileHeader h;
  h.num_vertices = num_vertices;
  h.num_edges = num_edges;
  h.offsets_pos = kCsrFilePageBytes;
  h.offsets_bytes = (num_vertices + 1) * sizeof(std::uint64_t);
  h.neighbors_pos = page_align(h.offsets_pos + h.offsets_bytes);
  h.neighbors_bytes = num_edges * sizeof(PackedNeighbor);
  return h;
}

bool write_header_page(std::FILE* f, const CsrFileHeader& h,
                       std::uint64_t* pos) {
  if (std::fwrite(&h, sizeof(h), 1, f) != 1) return false;
  *pos = sizeof(h);
  return pad_to_page(f, pos);
}

bool edge_less(const Edge& a, const Edge& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.dst != b.dst) return a.dst < b.dst;
  return a.weight < b.weight;
}

/// Streams neighbor records through a bounded staging buffer.
class NeighborWriter {
 public:
  explicit NeighborWriter(std::FILE* f) : f_(f) { buf_.reserve(kIoBatch); }

  bool push(VertexId dst, Weight weight) {
    buf_.push_back(PackedNeighbor{dst, 0, weight});
    return buf_.size() < kIoBatch || flush();
  }

  bool flush() {
    if (buf_.empty()) return true;
    const std::size_t n = buf_.size();
    if (std::fwrite(buf_.data(), sizeof(PackedNeighbor), n, f_) != n) {
      return false;
    }
    buf_.clear();
    written_ += n;
    return true;
  }

  std::uint64_t written() const { return written_; }

 private:
  std::FILE* f_;
  std::vector<PackedNeighbor> buf_;
  std::uint64_t written_ = 0;
};

}  // namespace

bool write_csr_file(const Csr& csr, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  const CsrFileHeader h = make_header(csr.num_vertices(), csr.num_edges());
  std::uint64_t pos = 0;
  if (!write_header_page(f.get(), h, &pos)) return false;

  const std::span<const std::size_t> offsets = csr.offsets();
  if (std::fwrite(offsets.data(), sizeof(std::uint64_t), offsets.size(),
                  f.get()) != offsets.size()) {
    return false;
  }
  pos += h.offsets_bytes;
  if (!pad_to_page(f.get(), &pos)) return false;

  NeighborWriter out(f.get());
  for (const Neighbor& nb : csr.neighbors()) {
    if (!out.push(nb.dst, nb.weight)) return false;
  }
  if (!out.flush()) return false;
  pos += h.neighbors_bytes;
  if (!pad_to_page(f.get(), &pos)) return false;
  return std::fflush(f.get()) == 0;
}

bool probe_csr_file(const std::string& path, CsrFileHeader* header) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  CsrFileHeader h;
  if (std::fread(&h, sizeof(h), 1, f.get()) != 1 ||
      h.magic != kCsrFileMagic) {
    return false;
  }
  if (h.version != kCsrFileVersion) {
    throw std::runtime_error("unsupported on-disk CSR version in " + path);
  }
  if (h.page_bytes != kCsrFilePageBytes ||
      h.offsets_pos % kCsrFilePageBytes != 0 ||
      h.neighbors_pos % kCsrFilePageBytes != 0 ||
      h.offsets_bytes != (h.num_vertices + 1) * sizeof(std::uint64_t) ||
      h.neighbors_bytes != h.num_edges * sizeof(PackedNeighbor) ||
      h.neighbors_pos < h.offsets_pos + h.offsets_bytes) {
    throw std::runtime_error("malformed on-disk CSR header in " + path);
  }
  if (header != nullptr) *header = h;
  return true;
}

Csr load_csr_file(const std::string& path) {
  CsrFileHeader h;
  if (!probe_csr_file(path, &h)) {
    throw std::runtime_error("not an on-disk CSR file: " + path);
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open on-disk CSR: " + path);

  const auto fail = [&path](const char* what) -> std::runtime_error {
    return std::runtime_error(std::string(what) + ": " + path);
  };
  if (std::fseek(f.get(), static_cast<long>(h.offsets_pos), SEEK_SET) != 0) {
    throw fail("truncated on-disk CSR");
  }
  std::vector<std::size_t> offsets(
      static_cast<std::size_t>(h.num_vertices) + 1);
  if (std::fread(offsets.data(), sizeof(std::uint64_t), offsets.size(),
                 f.get()) != offsets.size()) {
    throw fail("truncated on-disk CSR offsets");
  }
  if (offsets.front() != 0 || offsets.back() != h.num_edges) {
    throw fail("corrupt on-disk CSR offsets");
  }
  for (std::size_t v = 0; v < h.num_vertices; ++v) {
    if (offsets[v] > offsets[v + 1]) throw fail("corrupt on-disk CSR offsets");
  }

  if (std::fseek(f.get(), static_cast<long>(h.neighbors_pos), SEEK_SET) !=
      0) {
    throw fail("truncated on-disk CSR");
  }
  std::vector<Neighbor> neighbors(static_cast<std::size_t>(h.num_edges));
  std::vector<PackedNeighbor> batch(
      std::max<std::size_t>(1, std::min(kIoBatch, neighbors.size())));
  std::size_t filled = 0;
  while (filled < neighbors.size()) {
    const std::size_t n = std::min(batch.size(), neighbors.size() - filled);
    if (std::fread(batch.data(), sizeof(PackedNeighbor), n, f.get()) != n) {
      throw fail("truncated on-disk CSR neighbors");
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (batch[i].dst >= h.num_vertices) {
        throw fail("corrupt on-disk CSR neighbor");
      }
      neighbors[filled + i] = Neighbor{batch[i].dst, batch[i].weight};
    }
    filled += n;
  }
  // from_parts re-checks the row-sort invariant in debug builds.
  return Csr::from_parts(std::move(offsets), std::move(neighbors));
}

StreamingCsrWriter::StreamingCsrWriter(std::string path,
                                       VertexId num_vertices,
                                       Options options)
    : path_(std::move(path)),
      options_(options),
      num_vertices_(num_vertices) {
  ACIC_ASSERT(options_.chunk_edges > 0);
  if (options_.threads == 0) options_.threads = 1;
  chunk_.reserve(static_cast<std::size_t>(options_.chunk_edges));
  degrees_.assign(num_vertices_, 0);
  if (options_.tmp_dir.empty()) {
    options_.tmp_dir = path_ + ".spill";
  } else {
    options_.tmp_dir += "/";
    const std::size_t slash = path_.rfind('/');
    options_.tmp_dir +=
        slash == std::string::npos ? path_ : path_.substr(slash + 1);
    options_.tmp_dir += ".spill";
  }
}

StreamingCsrWriter::~StreamingCsrWriter() {
  for (const Run& run : runs_) std::remove(run.path.c_str());
}

void StreamingCsrWriter::add(const Edge& e) {
  ACIC_HOT_ASSERT(e.src < num_vertices_ && e.dst < num_vertices_);
  ACIC_ASSERT_MSG(!finished_, "StreamingCsrWriter: add after finish");
  ++degrees_[e.src];
  ++num_edges_;
  chunk_.push_back(e);
  if (chunk_.size() >= options_.chunk_edges) spill_chunk();
}

void StreamingCsrWriter::add(std::span<const Edge> edges) {
  for (const Edge& e : edges) add(e);
}

bool StreamingCsrWriter::spill_chunk() {
  if (chunk_.empty()) return true;

  // Sort by (src, dst, weight): the counting-sort-by-src + per-row
  // (dst, weight) order that Csr::from_edge_list produces.  Sub-ranges
  // sort on host threads, then a serial merge cascade restores the total
  // order — ties are byte-identical edges, so the run bytes do not
  // depend on the thread count.
  const unsigned t = std::min<unsigned>(
      options_.threads,
      static_cast<unsigned>(
          std::max<std::size_t>(1, chunk_.size() / 1024)));
  if (t <= 1) {
    std::sort(chunk_.begin(), chunk_.end(), edge_less);
  } else {
    std::vector<std::size_t> bounds(t + 1);
    for (unsigned i = 0; i <= t; ++i) {
      bounds[i] = chunk_.size() * i / t;
    }
    util::parallel_for(t, t, [&](std::uint64_t i) {
      std::sort(chunk_.begin() + bounds[i], chunk_.begin() + bounds[i + 1],
                edge_less);
    });
    for (unsigned gap = 1; gap < t; gap *= 2) {
      for (unsigned i = 0; i + gap <= t; i += 2 * gap) {
        const unsigned hi = std::min(i + 2 * gap, t);
        std::inplace_merge(chunk_.begin() + bounds[i],
                           chunk_.begin() + bounds[i + gap],
                           chunk_.begin() + bounds[hi], edge_less);
      }
    }
  }

  Run run;
  run.path = options_.tmp_dir + "." + std::to_string(runs_.size());
  run.num_edges = chunk_.size();
  FilePtr f(std::fopen(run.path.c_str(), "wb"));
  if (!f || std::fwrite(chunk_.data(), sizeof(Edge), chunk_.size(),
                        f.get()) != chunk_.size()) {
    io_error_ = true;
    return false;
  }
  chunk_.clear();
  runs_.push_back(std::move(run));
  return true;
}

bool StreamingCsrWriter::finish() {
  ACIC_ASSERT_MSG(!finished_, "StreamingCsrWriter: finish called twice");
  finished_ = true;
  if (!spill_chunk() || io_error_) return false;
  chunk_.shrink_to_fit();

  FilePtr out(std::fopen(path_.c_str(), "wb"));
  if (!out) return false;
  const CsrFileHeader h = make_header(num_vertices_, num_edges_);
  std::uint64_t pos = 0;
  if (!write_header_page(out.get(), h, &pos)) return false;

  // Offsets: streamed prefix sum over the degree counts, no |V|+1 array.
  {
    std::vector<std::uint64_t> buf;
    buf.reserve(kIoBatch);
    std::uint64_t acc = 0;
    buf.push_back(0);
    for (VertexId v = 0; v < num_vertices_; ++v) {
      acc += degrees_[v];
      buf.push_back(acc);
      if (buf.size() == kIoBatch) {
        if (std::fwrite(buf.data(), sizeof(std::uint64_t), buf.size(),
                        out.get()) != buf.size()) {
          return false;
        }
        buf.clear();
      }
    }
    if (!buf.empty() &&
        std::fwrite(buf.data(), sizeof(std::uint64_t), buf.size(),
                    out.get()) != buf.size()) {
      return false;
    }
    ACIC_ASSERT(acc == num_edges_);
  }
  pos += h.offsets_bytes;
  if (!pad_to_page(out.get(), &pos)) return false;

  // K-way merge of the sorted runs straight into the neighbors section.
  struct Cursor {
    FilePtr file;
    std::vector<Edge> buf;
    std::size_t next = 0;
    std::uint64_t remaining = 0;

    bool refill() {
      if (next < buf.size()) return true;
      if (remaining == 0) return false;
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, kIoBatch));
      buf.resize(n);
      if (std::fread(buf.data(), sizeof(Edge), n, file.get()) != n) {
        buf.clear();
        remaining = 0;
        return false;  // truncated run; surfaced as a count mismatch
      }
      remaining -= n;
      next = 0;
      return true;
    }
    const Edge& head() const { return buf[next]; }
  };

  std::vector<Cursor> cursors(runs_.size());
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    cursors[r].file.reset(std::fopen(runs_[r].path.c_str(), "rb"));
    if (!cursors[r].file) return false;
    cursors[r].remaining = runs_[r].num_edges;
  }

  const auto cursor_greater = [&cursors](std::size_t a, std::size_t b) {
    const Edge& ea = cursors[a].head();
    const Edge& eb = cursors[b].head();
    if (edge_less(ea, eb)) return false;
    if (edge_less(eb, ea)) return true;
    return a > b;  // tied edges are byte-identical; any order works
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(cursor_greater)>
      heap(cursor_greater);
  for (std::size_t r = 0; r < cursors.size(); ++r) {
    if (cursors[r].refill()) heap.push(r);
  }

  NeighborWriter nb_out(out.get());
  while (!heap.empty()) {
    const std::size_t r = heap.top();
    heap.pop();
    const Edge& e = cursors[r].head();
    if (!nb_out.push(e.dst, e.weight)) return false;
    ++cursors[r].next;
    if (cursors[r].refill()) heap.push(r);
  }
  if (!nb_out.flush()) return false;
  if (nb_out.written() != num_edges_) return false;
  pos += h.neighbors_bytes;
  if (!pad_to_page(out.get(), &pos)) return false;
  if (std::fflush(out.get()) != 0) return false;

  for (const Run& run : runs_) std::remove(run.path.c_str());
  runs_.clear();
  return true;
}

}  // namespace acic::graph
