#pragma once
// Sequential BFS utilities: reachability sets (used to cross-check the
// SSSP algorithms' notion of "unreachable"), unweighted hop distances,
// and a diameter estimate for characterizing workloads (the paper's
// random graphs are low-diameter; its future-work road graphs are
// high-diameter — these helpers quantify that).

#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"

namespace acic::graph {

inline constexpr std::uint32_t kUnreachedHops =
    std::numeric_limits<std::uint32_t>::max();

/// Hop counts from `source` along out-edges; kUnreachedHops where
/// unreachable.
std::vector<std::uint32_t> bfs_hops(const Csr& csr, VertexId source);

/// Number of vertices reachable from `source` (including itself).
std::size_t count_reachable(const Csr& csr, VertexId source);

/// The largest finite hop count from `source` (its eccentricity in
/// hops); 0 if nothing else is reachable.
std::uint32_t eccentricity_hops(const Csr& csr, VertexId source);

/// Lower-bound diameter estimate by the standard double-sweep
/// heuristic: BFS from `start`, then BFS again from the farthest vertex
/// found.  Exact on trees; a good lower bound elsewhere.
std::uint32_t estimate_diameter_hops(const Csr& csr, VertexId start = 0);

}  // namespace acic::graph
