#pragma once
// The ACIC vs Δ-stepping comparison grid behind the paper's figures 7–9
// (execution time, TEPS, update counts on RMAT and random graphs across
// node counts).  One function produces the grid; the per-figure bench
// binaries format different columns of it.

#include <cstdint>
#include <vector>

#include "src/stats/experiment.hpp"

namespace acic::stats {

struct CompareSpec {
  std::uint32_t scale = 13;
  std::uint32_t edge_factor = 16;
  std::vector<std::uint32_t> nodes_list{1, 2, 4, 8, 16};
  std::vector<GraphKind> graphs{GraphKind::kRandom, GraphKind::kRmat};
  /// Trials per point; each uses a distinct seed (the paper averages 10).
  std::uint32_t trials = 3;
  std::uint64_t base_seed = 1;
  /// Per-run simulated-time guard.
  runtime::SimTime time_limit_us = 300e6;
  /// Tramlib buffer size; 0 applies the per-node-count optimum from the
  /// fig. 6 sweep (paper_optimal_buffer scaled to the experiment size).
  std::size_t buffer_override = 0;
  /// Use the paper's full 48-worker nodes instead of 8-worker mini nodes
  /// (see ExperimentSpec::full_scale_nodes).
  bool full_scale_nodes = false;
};

struct CompareRow {
  GraphKind graph = GraphKind::kRandom;
  std::uint32_t nodes = 1;
  /// Trial-averaged outcomes.
  double acic_time_s = 0.0;
  double riken_time_s = 0.0;
  double acic_teps = 0.0;
  double riken_teps = 0.0;
  double acic_updates = 0.0;
  double riken_updates = 0.0;
  double acic_imbalance = 0.0;
  double riken_imbalance = 0.0;
  bool any_time_limit = false;

  double speedup_acic_over_riken() const {
    return acic_time_s > 0.0 ? riken_time_s / acic_time_s : 0.0;
  }
};

/// The tramlib buffer size the paper's fig. 6 sweep finds optimal at each
/// node count (2048 for 1–2 nodes, 1024 for 4–8, 512 for 16+).
std::size_t paper_optimal_buffer(std::uint32_t nodes);

/// Runs the full grid.  `progress` (optional) is invoked with a
/// human-readable line after each point.
std::vector<CompareRow> run_comparison(
    const CompareSpec& spec,
    void (*progress)(const char* line) = nullptr);

}  // namespace acic::stats
