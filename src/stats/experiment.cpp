#include "src/stats/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "src/graph/generators.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/solver.hpp"
#include "src/util/assert.hpp"

namespace acic::stats {

const char* graph_kind_name(GraphKind kind) {
  switch (kind) {
    case GraphKind::kRandom:
      return "random";
    case GraphKind::kRmat:
      return "rmat";
    case GraphKind::kRoad:
      return "road";
    case GraphKind::kErdosRenyi:
      return "erdos-renyi";
  }
  return "?";
}

GraphKind graph_kind_from_string(const std::string& name) {
  if (name == "random") return GraphKind::kRandom;
  if (name == "rmat") return GraphKind::kRmat;
  if (name == "road") return GraphKind::kRoad;
  if (name == "erdos-renyi") return GraphKind::kErdosRenyi;
  ACIC_ASSERT_MSG(false, "unknown graph kind");
  return GraphKind::kRandom;
}

const char* algo_name(Algo algo) {
  switch (algo) {
    case Algo::kAcic:
      return "acic";
    case Algo::kDelta1D:
      return "delta-1d";
    case Algo::kRiken:
      return "riken-delta";
    case Algo::kKla:
      return "kla";
    case Algo::kDistControl:
      return "dist-control";
    case Algo::kAsyncBaseline:
      return "async-baseline";
  }
  return "?";
}

Algo algo_from_string(const std::string& name) {
  if (name == "acic") return Algo::kAcic;
  if (name == "delta-1d") return Algo::kDelta1D;
  if (name == "riken-delta") return Algo::kRiken;
  if (name == "kla") return Algo::kKla;
  if (name == "dist-control") return Algo::kDistControl;
  if (name == "async-baseline") return Algo::kAsyncBaseline;
  ACIC_ASSERT_MSG(false, "unknown algorithm name");
  return Algo::kAcic;
}

runtime::Topology ExperimentSpec::topology() const {
  if (pes_override != 0) {
    return runtime::Topology::tiny(pes_override);
  }
  if (full_scale_nodes) {
    return runtime::Topology::paper_node(nodes);
  }
  return runtime::Topology{nodes, 2, 4};  // mini node: 8 workers
}

graph::Csr build_graph(const ExperimentSpec& spec) {
  graph::GenParams params;
  params.num_vertices = graph::VertexId{1} << spec.scale;
  params.num_edges =
      static_cast<std::uint64_t>(spec.edge_factor) * params.num_vertices;
  params.seed = spec.seed;
  params.threads = spec.threads;

  switch (spec.graph) {
    case GraphKind::kRandom:
      return graph::Csr::from_edge_list(
          graph::generate_uniform_random(params), spec.threads);
    case GraphKind::kRmat:
      return graph::Csr::from_edge_list(graph::generate_rmat(params),
                                        spec.threads);
    case GraphKind::kErdosRenyi:
      return graph::Csr::from_edge_list(
          graph::generate_erdos_renyi(params), spec.threads);
    case GraphKind::kRoad: {
      // Square grid with the requested vertex count; edge_factor is
      // ignored (grids are ~4-regular, like road networks).
      const auto side = static_cast<graph::VertexId>(
          std::round(std::sqrt(static_cast<double>(params.num_vertices))));
      graph::GridParams grid;
      grid.width = side;
      grid.height = side;
      return graph::Csr::from_edge_list(
          graph::generate_grid_road(grid, spec.seed), spec.threads);
    }
  }
  ACIC_ASSERT(false);
  return {};
}

void AlgoParams::set_buffer_items(std::size_t items) {
  acic.tram.buffer_items = items;
  delta.tram.buffer_items = items;
  kla.tram.buffer_items = items;
  dc.tram.buffer_items = items;
}

namespace {

/// Registry name each Algo dispatches to (sssp::run_solver).
const char* solver_name_of(Algo algo) {
  switch (algo) {
    case Algo::kAcic:
      return "acic";
    case Algo::kDelta1D:
      return "delta_stepping_dist";
    case Algo::kRiken:
      return "delta_stepping_2d";
    case Algo::kKla:
      return "kla";
    case Algo::kDistControl:
      return "distributed_control";
    case Algo::kAsyncBaseline:
      return "async_baseline";
  }
  ACIC_ASSERT(false);
  return "?";
}

}  // namespace

RunOutcome run_algorithm(Algo algo, const graph::Csr& csr,
                         const ExperimentSpec& spec,
                         const AlgoParams& params,
                         runtime::SimTime time_limit_us) {
  runtime::Machine machine(spec.topology());
  machine.set_threads(spec.threads);
  if (spec.straggler_factor != 1.0) {
    // Slow the last worker, not PE 0: PE 0 is the reduction root for
    // every algorithm, and slowing it would measure root-bottleneck
    // effects instead of compute imbalance.
    machine.set_speed_factor(machine.num_pes() - 1,
                             spec.straggler_factor);
  }

  sssp::SolverOptions opts;
  opts.acic = params.acic;
  opts.acic_balanced_partition = params.acic_balanced_partition;
  opts.delta = params.delta;
  opts.kla = params.kla;
  opts.dc = params.dc;
  opts.time_limit_us = time_limit_us;
  // The historical 1-D comparison point is pure delta-stepping; the
  // hybrid Bellman-Ford tail belongs to the RIKEN-style kRiken entry.
  if (algo == Algo::kDelta1D) opts.delta.hybrid_bellman_ford = false;

  auto run = sssp::run_solver(solver_name_of(algo), machine, csr,
                              spec.source, opts);

  RunOutcome outcome;
  outcome.algo = algo;
  outcome.sssp = std::move(run.sssp);
  outcome.hit_time_limit = run.telemetry.hit_time_limit;
  outcome.cycles = run.telemetry.cycles;
  outcome.busy_imbalance = run.telemetry.busy_imbalance;
  outcome.switched_to_bf = run.telemetry.extra("switched_to_bf") != 0.0;
  return outcome;
}

RunOutcome run_experiment(Algo algo, const ExperimentSpec& spec,
                          const AlgoParams& params,
                          runtime::SimTime time_limit_us) {
  const graph::Csr csr = build_graph(spec);
  return run_algorithm(algo, csr, spec, params, time_limit_us);
}

}  // namespace acic::stats
