#pragma once
// Shared experiment harness: builds the paper's workloads, runs any of
// the implemented SSSP algorithms on a simulated multi-node machine, and
// returns uniform metrics rows.  Every bench/ binary and example builds
// on this so that workloads, topologies and cost models are identical
// across comparisons.

#include <cstdint>
#include <string>

#include "src/baselines/delta_common.hpp"
#include "src/baselines/distributed_control.hpp"
#include "src/baselines/kla.hpp"
#include "src/core/acic.hpp"
#include "src/graph/csr.hpp"
#include "src/sssp/result.hpp"

namespace acic::stats {

enum class GraphKind {
  kRandom,      // the paper's uniformly random endpoint graph
  kRmat,        // the paper's scale-free RMAT graph
  kRoad,        // high-diameter grid "road" graph (future-work workload)
  kErdosRenyi,  // distinct-edge random graph
};

const char* graph_kind_name(GraphKind kind);
GraphKind graph_kind_from_string(const std::string& name);

enum class Algo {
  kAcic,           // the paper's contribution
  kDelta1D,        // distributed Δ-stepping, 1-D partition
  kRiken,          // distributed Δ-stepping, 2-D partition + hybrid (RIKEN-style)
  kKla,            // k-level asynchronous
  kDistControl,    // distributed control (priority, no introspection)
  kAsyncBaseline,  // §II.A baseline (expand on arrival)
};

const char* algo_name(Algo algo);
Algo algo_from_string(const std::string& name);

struct ExperimentSpec {
  GraphKind graph = GraphKind::kRandom;
  /// |V| = 2^scale (the paper runs scale 26; defaults here are sized for
  /// a single-core simulation and can be raised with --scale).
  std::uint32_t scale = 13;
  /// |E| = edge_factor * |V| (paper: 2^30 / 2^26 = 16).
  std::uint32_t edge_factor = 16;
  std::uint64_t seed = 1;
  graph::VertexId source = 0;

  /// Simulated machine size in nodes.  The paper's node is 8 processes ×
  /// 6 workers = 48 PEs; at simulation scale that many PEs per node
  /// would starve each PE of work (the paper runs 2^26 vertices, ~4000×
  /// our default), so the default "mini node" keeps the node-count axis
  /// of every figure while scaling the PE count with the graph:
  /// 2 processes × 4 workers = 8 PEs per node.  Set
  /// `full_scale_nodes = true` to use the paper's 48-PE nodes.
  std::uint32_t nodes = 1;
  bool full_scale_nodes = false;
  /// Nonzero replaces the topology with a single-process machine of that
  /// many workers (unit tests / micro benches).
  std::uint32_t pes_override = 0;

  /// Straggler injection: scales worker PE 0's speed (1.0 = no
  /// straggler; 0.5 = half speed).  Bulk-synchronous algorithms are
  /// barrier-bound by the slowest PE; asynchronous ones absorb it.
  double straggler_factor = 1.0;

  /// Host worker threads for graph construction and for the simulation
  /// engine (Machine::set_threads).  Results are identical at any value;
  /// this is purely a wall-clock knob.
  unsigned threads = 1;

  runtime::Topology topology() const;
};

/// Generates the workload graph for `spec` (structure + weights fully
/// determined by spec.seed).
graph::Csr build_graph(const ExperimentSpec& spec);

/// Algorithm parameter bundle; default-constructed values reproduce the
/// paper's tuned configuration (p_tram=0.999, p_pq=0.05, WP aggregation).
struct AlgoParams {
  core::AcicConfig acic;
  /// Use the balanced-edge 1-D partition for ACIC instead of the
  /// paper's equal-vertex block partition (a lighter-weight answer to
  /// the §V load-imbalance future work than 2-D/1.5-D repartitioning).
  bool acic_balanced_partition = false;
  baselines::DeltaConfig delta;
  baselines::KlaConfig kla;
  baselines::DistributedControlConfig dc;

  /// Applies a tramlib buffer size to every algorithm's aggregator.
  void set_buffer_items(std::size_t items);
};

struct RunOutcome {
  Algo algo = Algo::kAcic;
  sssp::SsspResult sssp;
  bool hit_time_limit = false;
  /// Load imbalance: max PE busy time / mean PE busy time.
  double busy_imbalance = 0.0;
  /// Extra per-algorithm detail (reduction cycles, supersteps, ...).
  std::uint64_t cycles = 0;
  bool switched_to_bf = false;
};

/// Runs `algo` on `csr` over a fresh machine built from `spec`.
/// `time_limit_us` guards against configuration mistakes; a triggered
/// limit is reported in the outcome, not fatal.
RunOutcome run_algorithm(Algo algo, const graph::Csr& csr,
                         const ExperimentSpec& spec,
                         const AlgoParams& params = {},
                         runtime::SimTime time_limit_us =
                             runtime::kNoTimeLimit);

/// Convenience: builds the graph and runs in one call.
RunOutcome run_experiment(Algo algo, const ExperimentSpec& spec,
                          const AlgoParams& params = {},
                          runtime::SimTime time_limit_us =
                              runtime::kNoTimeLimit);

}  // namespace acic::stats
