#include "src/stats/compare.hpp"

#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace acic::stats {

std::size_t paper_optimal_buffer(std::uint32_t nodes) {
  if (nodes >= 16) return 512;
  if (nodes >= 4) return 1024;
  return 2048;
}

std::vector<CompareRow> run_comparison(const CompareSpec& spec,
                                       void (*progress)(const char*)) {
  std::vector<CompareRow> rows;
  for (const GraphKind graph : spec.graphs) {
    for (const std::uint32_t nodes : spec.nodes_list) {
      CompareRow row;
      row.graph = graph;
      row.nodes = nodes;

      for (std::uint32_t trial = 0; trial < spec.trials; ++trial) {
        ExperimentSpec exp;
        exp.graph = graph;
        exp.scale = spec.scale;
        exp.edge_factor = spec.edge_factor;
        exp.seed = util::derive_seed(spec.base_seed, trial);
        exp.nodes = nodes;
        exp.full_scale_nodes = spec.full_scale_nodes;

        AlgoParams params;
        params.set_buffer_items(spec.buffer_override != 0
                                    ? spec.buffer_override
                                    : paper_optimal_buffer(nodes));

        const graph::Csr csr = build_graph(exp);
        const RunOutcome acic = run_algorithm(Algo::kAcic, csr, exp,
                                              params, spec.time_limit_us);
        const RunOutcome riken = run_algorithm(Algo::kRiken, csr, exp,
                                               params, spec.time_limit_us);

        row.acic_time_s += acic.sssp.metrics.sim_time_s();
        row.riken_time_s += riken.sssp.metrics.sim_time_s();
        row.acic_teps += acic.sssp.metrics.teps();
        row.riken_teps += riken.sssp.metrics.teps();
        row.acic_updates +=
            static_cast<double>(acic.sssp.metrics.updates_created);
        row.riken_updates +=
            static_cast<double>(riken.sssp.metrics.updates_created);
        row.acic_imbalance += acic.busy_imbalance;
        row.riken_imbalance += riken.busy_imbalance;
        row.any_time_limit |= acic.hit_time_limit || riken.hit_time_limit;
      }
      const double t = spec.trials;
      row.acic_time_s /= t;
      row.riken_time_s /= t;
      row.acic_teps /= t;
      row.riken_teps /= t;
      row.acic_updates /= t;
      row.riken_updates /= t;
      row.acic_imbalance /= t;
      row.riken_imbalance /= t;
      rows.push_back(row);

      if (progress != nullptr) {
        progress(util::strformat(
                     "  %s nodes=%u: acic=%.3fs riken=%.3fs (speedup %.2fx)",
                     graph_kind_name(graph), nodes, row.acic_time_s,
                     row.riken_time_s, row.speedup_acic_over_riken())
                     .c_str());
      }
    }
  }
  return rows;
}

}  // namespace acic::stats
