#pragma once
// Open-loop query workload generation for the serving layer.
//
// A real graph service does not answer one SSSP query per machine
// lifetime; it faces a *stream* of queries whose arrival times it does
// not control (open-loop: arrivals keep coming whether or not the
// service has caught up — this is what makes queueing visible, unlike a
// closed loop that politely waits).  We model the stream the standard
// way:
//   * arrivals  — a Poisson process at a configured mean rate (QPS),
//     i.e. exponential inter-arrival gaps;
//   * sources   — Zipf-distributed popularity over a bounded universe of
//     source vertices, so a hot head of repeat sources exists for the
//     result cache to exploit while the tail stays cold;
//   * targets   — a configured fraction of queries is point-to-point:
//     the target is drawn from the *same* Zipf universe (popular places
//     are popular as destinations too), independently of the source.
// Everything is deterministic in the seed: the same config produces the
// same (id, arrival time, source, target) sequence on every run, which
// the determinism regression tests rely on.  The p2p coin and target
// draws use their own RNG streams, so p2p_fraction = 0 reproduces the
// historical source-only stream bit-for-bit.
//
// Streams compose: generate_workload may be called repeatedly with
// `first_id` advanced past the previous batch and `start_us` at or past
// the previous batch's last arrival; ids then stay unique and arrivals
// non-decreasing across concatenated QueryService::submit calls, which
// the service enforces with asserts.
//
// Dynamic serving adds a second stream: timestamped *mutation batches*
// (generate_mutation_stream) that the service applies to its
// DynamicGraph while queries are in flight.  Batches arrive Poisson at
// a configured batch rate; each batch mixes inserts, removals and
// reweights.  Removal/reweight targets are drawn from the base graph's
// edge set so most of them hit a live edge (a target already removed is
// simply rejected by DynamicGraph::apply — realistic feeds contain such
// no-ops too).  Deterministic in the seed like the query stream.

#include <cstdint>
#include <vector>

#include "src/dynamic/mutation.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"
#include "src/runtime/network.hpp"

namespace acic::server {

/// What the caller wants back from a query.
enum class ResultMode : std::uint8_t {
  /// The full |V| distance vector from `source` (the classic query).
  kFullDistances = 0,
  /// The single distance d(source, target).  These are the queries the
  /// landmark / goal-directed tiers can serve without an engine.
  kPointToPoint = 1,
};

/// One query in the stream.  Replaces the source-only `QueryArrival` of
/// earlier revisions (see docs/serving.md for the migration note): a
/// query now carries an optional target and a result mode.
struct Query {
  std::uint64_t id = 0;
  runtime::SimTime arrival_us = 0.0;
  graph::VertexId source = 0;
  /// Meaningful only in kPointToPoint mode; kInvalidVertex otherwise.
  graph::VertexId target = graph::kInvalidVertex;
  ResultMode mode = ResultMode::kFullDistances;

  bool is_p2p() const { return mode == ResultMode::kPointToPoint; }

  static Query full(std::uint64_t id, runtime::SimTime arrival_us,
                    graph::VertexId source) {
    return Query{id, arrival_us, source, graph::kInvalidVertex,
                 ResultMode::kFullDistances};
  }
  static Query p2p(std::uint64_t id, runtime::SimTime arrival_us,
                   graph::VertexId source, graph::VertexId target) {
    return Query{id, arrival_us, source, target,
                 ResultMode::kPointToPoint};
  }
};

struct WorkloadConfig {
  std::uint64_t seed = 1;
  /// Offered load, in queries per simulated second.
  double qps = 2000.0;
  /// Number of queries to generate.
  std::uint64_t num_queries = 200;
  /// Zipf popularity exponent s (rank r drawn with weight 1/r^s);
  /// 0 degenerates to uniform over the universe.
  double zipf_exponent = 0.9;
  /// Number of distinct source vertices queries are drawn from (clamped
  /// to the graph's vertex count).  The universe is a seeded sample of
  /// the vertex set, so popular sources are spread across PE owners.
  std::uint32_t source_universe = 64;
  /// Simulated time of the first possible arrival.
  runtime::SimTime start_us = 0.0;
  /// Fraction of queries that are point-to-point; their target is an
  /// independent draw from the same Zipf'd universe.  0 reproduces the
  /// historical full-SSSP-only stream exactly (dedicated RNG streams).
  double p2p_fraction = 0.0;
  /// Id of the first generated query.  For concatenated submissions set
  /// this to the previous batch's first_id + num_queries (and start_us
  /// at or past its last arrival) — QueryService::submit asserts id
  /// uniqueness and arrival monotonicity.
  std::uint64_t first_id = 0;
};

/// Generates the deterministic query stream for `config` over a graph of
/// `num_vertices` vertices.  Arrival times are strictly non-decreasing;
/// ids are first_id .. first_id + num_queries - 1 in arrival order.
std::vector<Query> generate_workload(const WorkloadConfig& config,
                                     graph::VertexId num_vertices);

struct MutationWorkloadConfig {
  std::uint64_t seed = 7;
  /// Offered mutation load, in *individual edge mutations* per simulated
  /// second; batches arrive Poisson at rate mutation_rate / batch_size.
  double mutation_rate = 500.0;
  /// Mutations per applied batch (one batch = one epoch).
  std::size_t batch_size = 8;
  std::uint64_t num_batches = 50;
  /// Kind mix; the remainder (1 - insert - remove) reweights.
  double insert_fraction = 0.3;
  double remove_fraction = 0.3;
  /// Inserted / reweighted edge weights, uniform in [min, max).
  double min_weight = 1.0;
  double max_weight = 10.0;
  runtime::SimTime start_us = 0.0;
};

/// One mutation batch and the simulated time it applies.
struct MutationEvent {
  runtime::SimTime apply_us = 0.0;
  dynamic::MutationBatch batch;
};

/// Generates the deterministic mutation stream for `config` against
/// `base` (edge targets for remove/reweight are sampled from its edge
/// set; insert endpoints from its vertex set).  Apply times are
/// strictly non-decreasing.
std::vector<MutationEvent> generate_mutation_stream(
    const MutationWorkloadConfig& config, const graph::Csr& base);

}  // namespace acic::server
