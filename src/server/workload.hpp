#pragma once
// Open-loop query workload generation for the serving layer.
//
// A real graph service does not answer one SSSP query per machine
// lifetime; it faces a *stream* of source queries whose arrival times it
// does not control (open-loop: arrivals keep coming whether or not the
// service has caught up — this is what makes queueing visible, unlike a
// closed loop that politely waits).  We model the stream the standard
// way:
//   * arrivals  — a Poisson process at a configured mean rate (QPS),
//     i.e. exponential inter-arrival gaps;
//   * sources   — Zipf-distributed popularity over a bounded universe of
//     source vertices, so a hot head of repeat sources exists for the
//     result cache to exploit while the tail stays cold.
// Everything is deterministic in the seed: the same config produces the
// same (id, arrival time, source) sequence on every run, which the
// determinism regression tests rely on.

// Dynamic serving adds a second stream: timestamped *mutation batches*
// (generate_mutation_stream) that the service applies to its
// DynamicGraph while queries are in flight.  Batches arrive Poisson at
// a configured batch rate; each batch mixes inserts, removals and
// reweights.  Removal/reweight targets are drawn from the base graph's
// edge set so most of them hit a live edge (a target already removed is
// simply rejected by DynamicGraph::apply — realistic feeds contain such
// no-ops too).  Deterministic in the seed like the query stream.

#include <cstdint>
#include <vector>

#include "src/dynamic/mutation.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"
#include "src/runtime/network.hpp"

namespace acic::server {

struct WorkloadConfig {
  std::uint64_t seed = 1;
  /// Offered load, in queries per simulated second.
  double qps = 2000.0;
  /// Number of queries to generate.
  std::uint64_t num_queries = 200;
  /// Zipf popularity exponent s (rank r drawn with weight 1/r^s);
  /// 0 degenerates to uniform over the universe.
  double zipf_exponent = 0.9;
  /// Number of distinct source vertices queries are drawn from (clamped
  /// to the graph's vertex count).  The universe is a seeded sample of
  /// the vertex set, so popular sources are spread across PE owners.
  std::uint32_t source_universe = 64;
  /// Simulated time of the first possible arrival.
  runtime::SimTime start_us = 0.0;
};

/// One query in the stream: `id` is the position in arrival order.
struct QueryArrival {
  std::uint64_t id = 0;
  runtime::SimTime arrival_us = 0.0;
  graph::VertexId source = 0;
};

/// Generates the deterministic query stream for `config` over a graph of
/// `num_vertices` vertices.  Arrival times are strictly non-decreasing.
std::vector<QueryArrival> generate_workload(const WorkloadConfig& config,
                                            graph::VertexId num_vertices);

struct MutationWorkloadConfig {
  std::uint64_t seed = 7;
  /// Offered mutation load, in *individual edge mutations* per simulated
  /// second; batches arrive Poisson at rate mutation_rate / batch_size.
  double mutation_rate = 500.0;
  /// Mutations per applied batch (one batch = one epoch).
  std::size_t batch_size = 8;
  std::uint64_t num_batches = 50;
  /// Kind mix; the remainder (1 - insert - remove) reweights.
  double insert_fraction = 0.3;
  double remove_fraction = 0.3;
  /// Inserted / reweighted edge weights, uniform in [min, max).
  double min_weight = 1.0;
  double max_weight = 10.0;
  runtime::SimTime start_us = 0.0;
};

/// One mutation batch and the simulated time it applies.
struct MutationEvent {
  runtime::SimTime apply_us = 0.0;
  dynamic::MutationBatch batch;
};

/// Generates the deterministic mutation stream for `config` against
/// `base` (edge targets for remove/reweight are sampled from its edge
/// set; insert endpoints from its vertex set).  Apply times are
/// strictly non-decreasing.
std::vector<MutationEvent> generate_mutation_stream(
    const MutationWorkloadConfig& config, const graph::Csr& base);

}  // namespace acic::server
