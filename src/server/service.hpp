#pragma once
// QueryService — concurrent multi-query SSSP serving on one simulated
// machine.
//
// The classic repo flow answers one query per Machine lifetime:
// construct engine, run(), drain, read distances.  The service instead
// treats the machine as a long-running system: an open-loop workload
// (src/server/workload.hpp) is registered as schedule_at timers, and the
// event loop interleaves query arrivals with the tram/reduction/
// termination traffic of every query already in flight.
//
// Lifecycle of one query (docs/serving.md draws the full tier diagram):
//
//   arrival timer (front-end PE)
//     ├─ result cache hit?  serve immediately (full vector, or dist[t]
//     │  for a point-to-point query — the cache stays keyed by source)
//     ├─ p2p and the landmark tier proves the answer (s == t, landmark
//     │  row hit, structural unreachability)?  serve exactly, no search
//     ├─ p2p and goal-directed serving is on?  front-end A* with the
//     │  landmark heuristic — exact, charged per settled vertex
//     └─ otherwise: join the FIFO admission queue
//   admission (capacity below max_inflight frees up)
//     ├─ result cached while waiting?  serve without an engine
//     ├─ a parked stale state exists?  solo warm-repair admission
//     └─ else coalesce up to batching.max_batch queued queries into ONE
//        multi-source engine pass: distinct sources become frontier
//        lanes (AcicEngineOptions::sources), every lane's distances are
//        exactly what a solo run would produce, and each lane fills the
//        result cache on completion
//   completion (the engine's termination broadcast reaches every PE)
//     ├─ collect lane distances, fill the cache, record latencies
//     ├─ retire the engine in a separately scheduled task (engine code
//     │  is still on the stack when on_complete fires)
//     └─ admit the next waiting batch
//
// Every tier returns distances *exactly* equal to a dedicated engine
// pass — the tiers trade work, never accuracy.  bench/server_load
// re-solves every query solo and exits nonzero on any divergence.
//
// Multi-tenancy rests on two properties of the lower layers: each engine
// owns its tram instance and reduction tree (traffic is namespaced by
// the closures it travels in, so interleaved queries cannot corrupt one
// another), and engines register idle-time pq drains through
// Machine::add_idle_handler, which polls the active queries' handlers
// round-robin instead of letting the newest engine clobber the rest.
//
// The admission controller bounds concurrently running engines: each
// engine costs every PE pq/histogram/reduction state and adds reduction
// traffic, so unbounded admission degrades every in-flight query at
// once (the bench sweeps this).  Excess queries wait in FIFO order —
// deliberate backpressure that shows up as queue_wait_us in the metrics.
// Batching keeps that bound while multiplying throughput: a batch of k
// compatible queries shares one admission slot and one engine pass.
//
// There is a single serving code path: the static-graph constructor
// copies the Csr into a private single-epoch DynamicGraph, so "static"
// is simply "dynamic with zero mutations" (epoch stays 0 and none of
// the churn machinery activates).  Dynamic serving (the DynamicGraph
// constructor) interleaves a third event class: *mutation batches*
// (submit_mutations), applied on the front end while queries run.
// Consistency under churn:
//
//   * every admitted engine pins the graph snapshot current at its
//     admission (shared_ptr), so a query's answer is exact for that
//     epoch even if the graph moves on mid-run (bounded staleness; the
//     record carries its epoch);
//   * each applied batch sweeps the result cache with exact per-edge
//     staleness tests — a removed/increased edge (u, v) only matters to
//     an entry if D[u] + w_old == D[v] (the edge was a shortest-path
//     witness; equality is conservative since the witness may be
//     redundant), an inserted/decreased edge only if D[u] + w_new <
//     D[v].  Surviving entries are provably still exact and stay;
//   * landmark rows are swept with the same per-edge tests (they are
//     distance vectors too); invalid rows stop contributing to bounds
//     and heuristics (exactness preserved, guidance weakens) until a
//     refresh recomputes them;
//   * stale entries are *parked*, not discarded: the next query for
//     that source turns the parked distances into a warm start
//     (src/dynamic/repair.hpp) — often the repair plan proves the old
//     answer still exact and the query completes with no engine at all;
//   * results finishing against an epoch older than current are served
//     but not cached (stale_results_dropped counts them).
//
// Counters (registry): "server/queries_submitted", "server/completed",
// "server/cache_hits", "server/batches_started",
// "server/batched_queries", "server/landmark_exact",
// "server/goal_directed", plus — under churn —
// "server/mutations_applied", "server/repair_queries",
// "server/recompute_queries", "server/stale_results_dropped",
// "cache/invalidations" (attributed to the partition block owning the
// mutated edge head), "cache/stale_hits_prevented", and
// "landmarks/rows_invalidated" / "landmarks/rows_refreshed".

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/acic.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/obs/registry.hpp"
#include "src/runtime/machine.hpp"
#include "src/runtime/trace.hpp"
#include "src/server/cache.hpp"
#include "src/server/metrics.hpp"
#include "src/server/workload.hpp"
#include "src/sssp/landmarks.hpp"

namespace acic::server {

/// Coalescing of queued queries into shared multi-source engine passes.
struct BatchPolicy {
  /// Maximum queries coalesced into one engine pass (distinct sources
  /// become frontier lanes; duplicate sources share a lane).  1 keeps
  /// the classic one-engine-per-query behavior.  Bounded by the
  /// engine's lane limit (256).
  std::size_t max_batch = 1;
};

/// Landmark (ALT) tier for point-to-point queries.
struct LandmarkPolicy {
  /// Landmarks to precompute at construction; 0 disables the tier
  /// (p2p queries then fall through to full engine passes).  The 2k
  /// Dijkstra rows are built offline — no simulated time is charged.
  std::size_t num_landmarks = 0;
  /// Serve p2p cache misses with a front-end goal-directed A* search
  /// instead of queueing them for an engine.  Exact (see
  /// src/sssp/landmarks.hpp); false restricts the tier to the
  /// no-search exact answers.
  bool goal_directed = true;
  /// Front-end CPU charged per landmark-table consultation.
  runtime::SimTime lookup_cost_us = 0.1;
  /// Front-end CPU charged per vertex the A* search settles.
  runtime::SimTime astar_settle_cost_us = 0.05;
  /// Recompute invalid rows after a mutation batch once at least this
  /// fraction of rows is invalid (1.0 = never refresh, rows just stop
  /// guiding; 0.0 = refresh eagerly every time a row dies).
  double refresh_fraction = 0.5;
  /// Front-end CPU charged per refreshed row (a full Dijkstra).
  runtime::SimTime refresh_cost_us = 20.0;
};

/// Knobs for serving under churn (DynamicGraph constructor).  Grouped:
/// earlier revisions spread these flat over ServiceConfig.
struct DynamicPolicy {
  /// Front-end CPU charged per applied mutation record.
  runtime::SimTime mutation_apply_cost_us = 0.5;
  /// Front-end CPU charged to plan one warm repair at admission.
  runtime::SimTime repair_plan_cost_us = 1.0;
  /// Invalidated cache entries parked as warm-repair states (0 disables
  /// warm repair; oldest parked state evicted beyond the bound).
  std::size_t max_stale_states = 8;
  /// A warm repair whose invalidated subtree exceeds this fraction of
  /// the vertices falls back to a cold engine.
  double recompute_fraction = 0.25;
};

struct ServiceConfig {
  /// Per-query engine configuration (thresholds, tram, costs).
  core::AcicConfig engine;
  /// Admission bound: maximum concurrently running engines (a batch
  /// occupies one slot regardless of its lane count).
  std::uint32_t max_inflight = 2;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 8;
  /// Front-end CPU charged per cache lookup.
  runtime::SimTime cache_lookup_cost_us = 0.2;
  /// PE that runs the front end (arrival handling, admission).
  runtime::PeId frontend_pe = 0;
  /// Retain every completed full-SSSP query's distance vector so
  /// result_of() can return it (memory-heavy; for tests and validation
  /// harnesses).  Point-to-point results are scalars and are always
  /// retained.  Replaces the old keep_distances + distances_for pair.
  bool retain_full_results = false;

  BatchPolicy batching;
  LandmarkPolicy landmarks;
  DynamicPolicy dynamics;

  /// Optional observability registry (see the counter list in the file
  /// comment); propagated into every engine.  Must outlive the service.
  obs::Registry* registry = nullptr;
  /// Optional tracer: front-end handlers (arrival, completion) record
  /// named spans via runtime::ScopedSpan.  For long workloads give the
  /// tracer a capacity bound (Tracer::set_capacity).  Must outlive the
  /// service.
  runtime::Tracer* tracer = nullptr;
};

/// Typed result of one completed query, addressable by id.
struct QueryResult {
  ResultMode mode = ResultMode::kFullDistances;
  /// kFullDistances only; populated iff retain_full_results.
  std::vector<graph::Dist> distances;
  /// kPointToPoint only: d(source, target), kInfDist if unreachable.
  graph::Dist distance = graph::kInfDist;
};

class QueryService {
 public:
  /// Static serving: `csr` is copied into a service-owned single-epoch
  /// DynamicGraph (self loops dropped, duplicate edges collapsed to the
  /// lightest — distance-preserving), so it need not outlive the
  /// service.  `partition` must outlive it and match machine.num_pes().
  QueryService(runtime::Machine& machine, const graph::Csr& csr,
               const graph::Partition1D& partition, ServiceConfig config);

  /// Dynamic serving: queries run against `graph`'s snapshots while
  /// submit_mutations applies batches under load.  `graph` and
  /// `partition` must outlive the service; the vertex count (and hence
  /// the partition) is invariant under mutation.
  QueryService(runtime::Machine& machine, dynamic::DynamicGraph& graph,
               const graph::Partition1D& partition, ServiceConfig config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers an arrival timer per query.  May be called repeatedly;
  /// asserts the workload contract: ids unique across *all* submissions
  /// and arrival times non-decreasing across concatenated calls (and
  /// never before the machine's current time).  generate_workload's
  /// first_id / start_us fields exist to satisfy this.
  void submit(const std::vector<Query>& queries);

  /// Registers an apply timer per mutation batch (dynamic serving only;
  /// asserts otherwise).  Batches apply on the front-end PE, sweep the
  /// cache and the landmark rows, and park stale entries for warm
  /// repair.
  void submit_mutations(const std::vector<MutationEvent>& events);

  /// Applied mutation records so far (dynamic serving; 0 otherwise).
  std::uint64_t mutations_applied() const { return mutations_applied_; }
  /// Completed results dropped from caching because the graph moved on
  /// mid-run (their record still carries the epoch they are exact for).
  std::uint64_t stale_results_dropped() const {
    return stale_results_dropped_;
  }
  /// Multi-source engine passes started (each covers >= 2 queries).
  std::uint64_t batches_started() const { return batches_started_; }

  /// Drives the machine until all traffic drains (every submitted query
  /// complete) or the time limit strikes.  Completed engines are
  /// reclaimed before returning.
  runtime::RunStats run(runtime::SimTime time_limit_us =
                            runtime::kNoTimeLimit);

  std::uint64_t submitted_count() const { return submitted_; }
  std::uint64_t completed_count() const;

  /// Completion-order per-query records and queue-depth samples.
  const std::vector<QueryRecord>& records() const;
  const std::vector<QueueDepthSample>& queue_samples() const;
  const DistanceCache& cache() const { return cache_; }
  ServiceSummary summary() const;

  /// O(1) typed result lookup for a completed query; nullptr for an
  /// unknown id, a query still in flight, or a full-SSSP query with
  /// retain_full_results off.  Replaces scanning records() and the old
  /// keep_distances / distances_for pair.
  const QueryResult* result_of(std::uint64_t id) const;
  /// O(1) record lookup by query id (nullptr for an unknown id; the
  /// record is complete iff complete_us has been stamped).
  const QueryRecord* record_of(std::uint64_t id) const;

  /// The landmark index (nullptr unless landmarks.num_landmarks > 0).
  const sssp::LandmarkIndex* landmark_index() const {
    return landmarks_index_.get();
  }

  /// The registry the service publishes into (config.registry; nullptr
  /// when observability is off).
  obs::Registry* registry_view() const { return config_.registry; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    graph::VertexId source = 0;
    std::size_t record_index = 0;
  };
  /// One query riding an engine pass: `lane` indexes the pass's source
  /// lanes (always 0 for a solo pass).
  struct BatchMember {
    std::uint64_t id = 0;
    std::size_t record_index = 0;
    std::uint32_t lane = 0;
  };
  struct InFlight {
    /// Completion key: the first member's query id.
    std::uint64_t key = 0;
    std::vector<BatchMember> members;
    /// Distinct sources, one per lane (size 1 for a solo pass).
    std::vector<graph::VertexId> lane_sources;
    std::unique_ptr<core::AcicEngine> engine;
    /// The snapshot the engine runs on, pinned for its lifetime.
    std::shared_ptr<const dynamic::GraphSnapshot> snap;
  };
  /// A parked invalidated cache entry: exact distances for `epoch`,
  /// whose snapshot `snap` pins, awaiting a query to warm-repair.
  struct StaleState {
    std::vector<graph::Dist> dist;
    std::uint64_t epoch = 0;
    std::shared_ptr<const dynamic::GraphSnapshot> snap;
  };

  QueryService(runtime::Machine& machine,
               std::unique_ptr<dynamic::DynamicGraph> owned,
               dynamic::DynamicGraph* external,
               const graph::Partition1D& partition, ServiceConfig config);

  void define_counters();
  void on_arrival(runtime::Pe& pe, std::size_t record_index);
  /// Serves a query whose full vector sits in the cache (p2p queries
  /// read dist[target] from it).
  void serve_from_cache(runtime::Pe& pe, std::size_t record_index);
  /// Landmark tiers for a p2p arrival: exact table answer or
  /// goal-directed A*.  Returns true iff the query was served.
  bool serve_p2p_frontend(runtime::Pe& pe, std::size_t record_index);
  void try_admit(runtime::Pe& pe);
  /// Starts a solo engine for `pending`, or — when a parked stale state
  /// proves the old answer still exact — completes it engine-free.
  /// Returns true iff an engine now occupies an admission slot.
  bool start_engine(runtime::Pe& pe, const Pending& pending);
  /// Starts one multi-source engine pass covering `members` (>= 2).
  void start_batch(runtime::Pe& pe, const std::vector<Pending>& members);
  void on_engine_complete(runtime::Pe& pe, std::uint64_t key);
  /// Stamps completion, publishes counters, stores the typed result
  /// (full vectors only when `dist` is non-null and retention asks).
  void complete_record(runtime::Pe& pe, std::size_t record_index,
                       ServeTier tier,
                       const std::vector<graph::Dist>* dist);
  void sample_queue(runtime::SimTime time_us);
  void schedule_retirement_sweep(runtime::Pe& pe);
  void apply_mutations(runtime::Pe& pe, const dynamic::MutationBatch& batch);
  void park_stale_state(graph::VertexId source, StaleState state);

  const graph::Csr& graph_view() const { return dynamic_->csr(); }

  runtime::Machine& machine_;
  /// Static constructor: the service-owned wrapper graph.  Null when
  /// the caller provided the DynamicGraph (mutations allowed).
  std::unique_ptr<dynamic::DynamicGraph> owned_graph_;
  /// The graph every query runs against; never null (single code path).
  dynamic::DynamicGraph* dynamic_ = nullptr;
  const graph::Partition1D& partition_;
  ServiceConfig config_;

  DistanceCache cache_;
  ServiceMetrics metrics_;
  std::unique_ptr<sssp::LandmarkIndex> landmarks_index_;
  sssp::P2pWorkspace p2p_workspace_;

  std::uint64_t submitted_ = 0;
  /// Arrival time of the last submitted query (monotonicity assert).
  runtime::SimTime last_submitted_arrival_us_ = 0.0;
  /// Records indexed by submission order; copied into metrics_ (which
  /// holds completion order) when the query finishes.
  std::vector<QueryRecord> pending_records_;
  /// Query id -> index into pending_records_ (uniqueness + O(1) lookup).
  std::unordered_map<std::uint64_t, std::size_t> record_of_id_;
  std::vector<Pending> wait_queue_;  // FIFO admission queue (front = next)
  std::vector<InFlight> running_;
  /// Engines whose queries completed but whose final broadcast task may
  /// still be on the stack; destroyed by a separately scheduled sweep.
  std::vector<std::unique_ptr<core::AcicEngine>> retiring_;
  bool sweep_scheduled_ = false;

  std::unordered_map<std::uint64_t, QueryResult> results_;
  std::uint64_t batches_started_ = 0;

  // Dynamic serving state.
  std::uint64_t mutations_applied_ = 0;
  std::uint64_t stale_results_dropped_ = 0;
  std::unordered_map<graph::VertexId, StaleState> stale_states_;
  std::vector<graph::VertexId> stale_order_;  // front = oldest parked

  // Registry handles; valid iff config_.registry != nullptr.
  obs::CounterId obs_submitted_;
  obs::CounterId obs_completed_;
  obs::CounterId obs_cache_hits_;
  obs::CounterId obs_batches_;
  obs::CounterId obs_batched_queries_;
  obs::CounterId obs_landmark_exact_;
  obs::CounterId obs_goal_directed_;
  obs::SeriesId obs_wait_depth_;
  obs::SeriesId obs_running_;
  obs::CounterId obs_mutations_;
  obs::CounterId obs_invalidations_;
  obs::CounterId obs_stale_prevented_;
  obs::CounterId obs_repair_queries_;
  obs::CounterId obs_recompute_queries_;
  obs::CounterId obs_stale_dropped_;
  obs::CounterId obs_rows_invalidated_;
  obs::CounterId obs_rows_refreshed_;
  obs::SeriesId obs_subtree_size_;
};

}  // namespace acic::server
