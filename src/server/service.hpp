#pragma once
// QueryService — concurrent multi-query SSSP serving on one simulated
// machine.
//
// The classic repo flow answers one query per Machine lifetime:
// construct engine, run(), drain, read distances.  The service instead
// treats the machine as a long-running system: an open-loop workload
// (src/server/workload.hpp) is registered as schedule_at timers, and the
// event loop interleaves query arrivals with the tram/reduction/
// termination traffic of every query already in flight.
//
// Lifecycle of one query:
//
//   arrival timer (front-end PE)
//     ├─ result cache hit?  serve immediately (one lookup charge)
//     └─ miss: join the FIFO admission queue
//   admission (capacity below max_inflight frees up)
//     ├─ result cached while waiting?  serve without an engine
//     └─ construct a per-query AcicEngine at the current simulated time
//   completion (the engine's termination broadcast reaches every PE)
//     ├─ collect distances, fill the cache, record latency
//     ├─ retire the engine in a separately scheduled task (engine code
//     │  is still on the stack when on_complete fires)
//     └─ admit the next waiting query
//
// Multi-tenancy rests on two properties of the lower layers: each engine
// owns its tram instance and reduction tree (traffic is namespaced by
// the closures it travels in, so interleaved queries cannot corrupt one
// another), and engines register idle-time pq drains through
// Machine::add_idle_handler, which polls the active queries' handlers
// round-robin instead of letting the newest engine clobber the rest.
//
// The admission controller bounds concurrently running engines: each
// engine costs every PE pq/histogram/reduction state and adds reduction
// traffic, so unbounded admission degrades every in-flight query at
// once (the bench sweeps this).  Excess queries wait in FIFO order —
// deliberate backpressure that shows up as queue_wait_us in the metrics.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/core/acic.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/obs/registry.hpp"
#include "src/runtime/machine.hpp"
#include "src/runtime/trace.hpp"
#include "src/server/cache.hpp"
#include "src/server/metrics.hpp"
#include "src/server/workload.hpp"

namespace acic::server {

struct ServiceConfig {
  /// Per-query engine configuration (thresholds, tram, costs).
  core::AcicConfig engine;
  /// Admission bound: maximum concurrently running engines.
  std::uint32_t max_inflight = 2;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 8;
  /// Front-end CPU charged per cache lookup.
  runtime::SimTime cache_lookup_cost_us = 0.2;
  /// PE that runs the front end (arrival handling, admission).
  runtime::PeId frontend_pe = 0;
  /// Retain every completed query's full distance vector, addressable by
  /// query id (memory-heavy; for tests and validation harnesses).
  bool keep_distances = false;

  /// Optional observability registry: the service publishes
  /// "server/queries_submitted", "server/completed" and
  /// "server/cache_hits" counters plus "server/wait_queue_depth" and
  /// "server/running_engines" series, and propagates the registry into
  /// every engine it starts.  Must outlive the service.
  obs::Registry* registry = nullptr;
  /// Optional tracer: front-end handlers (arrival, completion) record
  /// named spans via runtime::ScopedSpan.  For long workloads give the
  /// tracer a capacity bound (Tracer::set_capacity).  Must outlive the
  /// service.
  runtime::Tracer* tracer = nullptr;
};

class QueryService {
 public:
  /// `csr` and `partition` are shared read-only by all queries and must
  /// outlive the service; `partition` must match machine.num_pes().
  QueryService(runtime::Machine& machine, const graph::Csr& csr,
               const graph::Partition1D& partition, ServiceConfig config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers an arrival timer per query.  May be called repeatedly
  /// (arrival times must not precede the machine's current time); query
  /// ids must be unique across all submissions.
  void submit(const std::vector<QueryArrival>& arrivals);

  /// Drives the machine until all traffic drains (every submitted query
  /// complete) or the time limit strikes.  Completed engines are
  /// reclaimed before returning.
  runtime::RunStats run(runtime::SimTime time_limit_us =
                            runtime::kNoTimeLimit);

  std::uint64_t submitted_count() const { return submitted_; }
  std::uint64_t completed_count() const;

  /// Completion-order per-query records and queue-depth samples.
  const std::vector<QueryRecord>& records() const;
  const std::vector<QueueDepthSample>& queue_samples() const;
  const DistanceCache& cache() const { return cache_; }
  ServiceSummary summary() const;

  /// Distances for a completed query (keep_distances only; nullptr if
  /// unknown id or retention disabled).
  const std::vector<graph::Dist>* distances_for(std::uint64_t id) const;

  /// The registry the service publishes into (config.registry; nullptr
  /// when observability is off).
  obs::Registry* registry_view() const { return config_.registry; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    graph::VertexId source = 0;
    std::size_t record_index = 0;
  };
  struct InFlight {
    std::uint64_t id = 0;
    std::size_t record_index = 0;
    std::unique_ptr<core::AcicEngine> engine;
  };

  void on_arrival(runtime::Pe& pe, std::size_t record_index);
  void try_admit(runtime::Pe& pe);
  void start_engine(runtime::Pe& pe, const Pending& pending);
  void on_engine_complete(runtime::Pe& pe, std::uint64_t id);
  void complete_record(runtime::Pe& pe, std::size_t record_index,
                       bool cache_hit);
  void sample_queue(runtime::SimTime time_us);
  void schedule_retirement_sweep(runtime::Pe& pe);

  runtime::Machine& machine_;
  const graph::Csr& csr_;
  const graph::Partition1D& partition_;
  ServiceConfig config_;

  DistanceCache cache_;
  ServiceMetrics metrics_;

  std::uint64_t submitted_ = 0;
  /// Records indexed by submission order; copied into metrics_ (which
  /// holds completion order) when the query finishes.
  std::vector<QueryRecord> pending_records_;
  std::vector<Pending> wait_queue_;  // FIFO admission queue (front = next)
  std::vector<InFlight> running_;
  /// Engines whose queries completed but whose final broadcast task may
  /// still be on the stack; destroyed by a separately scheduled sweep.
  std::vector<std::unique_ptr<core::AcicEngine>> retiring_;
  bool sweep_scheduled_ = false;

  std::map<std::uint64_t, std::vector<graph::Dist>> results_;

  // Registry handles; valid iff config_.registry != nullptr.
  obs::CounterId obs_submitted_;
  obs::CounterId obs_completed_;
  obs::CounterId obs_cache_hits_;
  obs::SeriesId obs_wait_depth_;
  obs::SeriesId obs_running_;
};

}  // namespace acic::server
