#pragma once
// QueryService — concurrent multi-query SSSP serving on one simulated
// machine.
//
// The classic repo flow answers one query per Machine lifetime:
// construct engine, run(), drain, read distances.  The service instead
// treats the machine as a long-running system: an open-loop workload
// (src/server/workload.hpp) is registered as schedule_at timers, and the
// event loop interleaves query arrivals with the tram/reduction/
// termination traffic of every query already in flight.
//
// Lifecycle of one query:
//
//   arrival timer (front-end PE)
//     ├─ result cache hit?  serve immediately (one lookup charge)
//     └─ miss: join the FIFO admission queue
//   admission (capacity below max_inflight frees up)
//     ├─ result cached while waiting?  serve without an engine
//     └─ construct a per-query AcicEngine at the current simulated time
//   completion (the engine's termination broadcast reaches every PE)
//     ├─ collect distances, fill the cache, record latency
//     ├─ retire the engine in a separately scheduled task (engine code
//     │  is still on the stack when on_complete fires)
//     └─ admit the next waiting query
//
// Multi-tenancy rests on two properties of the lower layers: each engine
// owns its tram instance and reduction tree (traffic is namespaced by
// the closures it travels in, so interleaved queries cannot corrupt one
// another), and engines register idle-time pq drains through
// Machine::add_idle_handler, which polls the active queries' handlers
// round-robin instead of letting the newest engine clobber the rest.
//
// The admission controller bounds concurrently running engines: each
// engine costs every PE pq/histogram/reduction state and adds reduction
// traffic, so unbounded admission degrades every in-flight query at
// once (the bench sweeps this).  Excess queries wait in FIFO order —
// deliberate backpressure that shows up as queue_wait_us in the metrics.
//
// Dynamic serving (the DynamicGraph constructor) interleaves a third
// event class: *mutation batches* (submit_mutations), applied on the
// front end while queries run.  Consistency under churn:
//
//   * every admitted engine pins the graph snapshot current at its
//     admission (shared_ptr), so a query's answer is exact for that
//     epoch even if the graph moves on mid-run (bounded staleness; the
//     record carries its epoch);
//   * each applied batch sweeps the result cache with exact per-edge
//     staleness tests — a removed/increased edge (u, v) only matters to
//     an entry if D[u] + w_old == D[v] (the edge was a shortest-path
//     witness; equality is conservative since the witness may be
//     redundant), an inserted/decreased edge only if D[u] + w_new <
//     D[v].  Surviving entries are provably still exact and stay;
//   * stale entries are *parked*, not discarded: the next query for
//     that source turns the parked distances into a warm start
//     (src/dynamic/repair.hpp) — often the repair plan proves the old
//     answer still exact and the query completes with no engine at all;
//   * results finishing against an epoch older than current are served
//     but not cached (stale_results_dropped counts them).
//
// Counters (registry): "server/mutations_applied",
// "server/repair_queries", "server/recompute_queries",
// "server/stale_results_dropped", "cache/invalidations" (attributed to
// the partition block owning the mutated edge head, so per-region
// eviction rollups fall out of Registry::at), and
// "cache/stale_hits_prevented" — all timed, so bench/server_load's
// timeseries CSV export carries them.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/core/acic.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/obs/registry.hpp"
#include "src/runtime/machine.hpp"
#include "src/runtime/trace.hpp"
#include "src/server/cache.hpp"
#include "src/server/metrics.hpp"
#include "src/server/workload.hpp"

namespace acic::server {

struct ServiceConfig {
  /// Per-query engine configuration (thresholds, tram, costs).
  core::AcicConfig engine;
  /// Admission bound: maximum concurrently running engines.
  std::uint32_t max_inflight = 2;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 8;
  /// Front-end CPU charged per cache lookup.
  runtime::SimTime cache_lookup_cost_us = 0.2;
  /// PE that runs the front end (arrival handling, admission).
  runtime::PeId frontend_pe = 0;
  /// Retain every completed query's full distance vector, addressable by
  /// query id (memory-heavy; for tests and validation harnesses).
  bool keep_distances = false;

  // ---- dynamic serving (DynamicGraph constructor only) ----------------
  /// Front-end CPU charged per applied mutation record.
  runtime::SimTime mutation_apply_cost_us = 0.5;
  /// Front-end CPU charged to plan one warm repair at admission.
  runtime::SimTime repair_plan_cost_us = 1.0;
  /// Invalidated cache entries parked as warm-repair states (0 disables
  /// warm repair; oldest parked state evicted beyond the bound).
  std::size_t max_stale_states = 8;
  /// A warm repair whose invalidated subtree exceeds this fraction of
  /// the vertices falls back to a cold engine.
  double recompute_fraction = 0.25;

  /// Optional observability registry: the service publishes
  /// "server/queries_submitted", "server/completed" and
  /// "server/cache_hits" counters plus "server/wait_queue_depth" and
  /// "server/running_engines" series, and propagates the registry into
  /// every engine it starts.  Must outlive the service.
  obs::Registry* registry = nullptr;
  /// Optional tracer: front-end handlers (arrival, completion) record
  /// named spans via runtime::ScopedSpan.  For long workloads give the
  /// tracer a capacity bound (Tracer::set_capacity).  Must outlive the
  /// service.
  runtime::Tracer* tracer = nullptr;
};

class QueryService {
 public:
  /// `csr` and `partition` are shared read-only by all queries and must
  /// outlive the service; `partition` must match machine.num_pes().
  QueryService(runtime::Machine& machine, const graph::Csr& csr,
               const graph::Partition1D& partition, ServiceConfig config);

  /// Dynamic serving: queries run against `graph`'s snapshots while
  /// submit_mutations applies batches under load.  `graph` and
  /// `partition` must outlive the service; the vertex count (and hence
  /// the partition) is invariant under mutation.
  QueryService(runtime::Machine& machine, dynamic::DynamicGraph& graph,
               const graph::Partition1D& partition, ServiceConfig config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers an arrival timer per query.  May be called repeatedly
  /// (arrival times must not precede the machine's current time); query
  /// ids must be unique across all submissions.
  void submit(const std::vector<QueryArrival>& arrivals);

  /// Registers an apply timer per mutation batch (dynamic serving only;
  /// asserts otherwise).  Batches apply on the front-end PE, sweep the
  /// cache, and park stale entries for warm repair.
  void submit_mutations(const std::vector<MutationEvent>& events);

  /// Applied mutation records so far (dynamic serving; 0 otherwise).
  std::uint64_t mutations_applied() const { return mutations_applied_; }
  /// Completed results dropped from caching because the graph moved on
  /// mid-run (their record still carries the epoch they are exact for).
  std::uint64_t stale_results_dropped() const {
    return stale_results_dropped_;
  }

  /// Drives the machine until all traffic drains (every submitted query
  /// complete) or the time limit strikes.  Completed engines are
  /// reclaimed before returning.
  runtime::RunStats run(runtime::SimTime time_limit_us =
                            runtime::kNoTimeLimit);

  std::uint64_t submitted_count() const { return submitted_; }
  std::uint64_t completed_count() const;

  /// Completion-order per-query records and queue-depth samples.
  const std::vector<QueryRecord>& records() const;
  const std::vector<QueueDepthSample>& queue_samples() const;
  const DistanceCache& cache() const { return cache_; }
  ServiceSummary summary() const;

  /// Distances for a completed query (keep_distances only; nullptr if
  /// unknown id or retention disabled).
  const std::vector<graph::Dist>* distances_for(std::uint64_t id) const;

  /// The registry the service publishes into (config.registry; nullptr
  /// when observability is off).
  obs::Registry* registry_view() const { return config_.registry; }

 private:
  struct Pending {
    std::uint64_t id = 0;
    graph::VertexId source = 0;
    std::size_t record_index = 0;
  };
  struct InFlight {
    std::uint64_t id = 0;
    std::size_t record_index = 0;
    std::unique_ptr<core::AcicEngine> engine;
    /// Dynamic serving: the snapshot the engine runs on, pinned for the
    /// engine's lifetime (null on a static graph).
    std::shared_ptr<const dynamic::GraphSnapshot> snap;
  };
  /// A parked invalidated cache entry: exact distances for `epoch`,
  /// whose snapshot `snap` pins, awaiting a query to warm-repair.
  struct StaleState {
    std::vector<graph::Dist> dist;
    std::uint64_t epoch = 0;
    std::shared_ptr<const dynamic::GraphSnapshot> snap;
  };

  void define_counters();
  void on_arrival(runtime::Pe& pe, std::size_t record_index);
  void try_admit(runtime::Pe& pe);
  /// Starts an engine for `pending`, or — when a parked stale state
  /// proves the old answer still exact — completes it engine-free.
  /// Returns true iff an engine now occupies an admission slot.
  bool start_engine(runtime::Pe& pe, const Pending& pending);
  void on_engine_complete(runtime::Pe& pe, std::uint64_t id);
  void complete_record(runtime::Pe& pe, std::size_t record_index,
                       bool cache_hit);
  void sample_queue(runtime::SimTime time_us);
  void schedule_retirement_sweep(runtime::Pe& pe);
  void apply_mutations(runtime::Pe& pe, const dynamic::MutationBatch& batch);
  void park_stale_state(graph::VertexId source, StaleState state);

  const graph::Csr& graph_view() const {
    return dynamic_ != nullptr ? dynamic_->csr() : *csr_;
  }

  runtime::Machine& machine_;
  /// Static mode: the frozen graph.  Null in dynamic mode (a reference
  /// into a DynamicGraph would dangle across epochs).
  const graph::Csr* csr_ = nullptr;
  /// Dynamic mode: the mutating graph.  Null in static mode.
  dynamic::DynamicGraph* dynamic_ = nullptr;
  const graph::Partition1D& partition_;
  ServiceConfig config_;

  DistanceCache cache_;
  ServiceMetrics metrics_;

  std::uint64_t submitted_ = 0;
  /// Records indexed by submission order; copied into metrics_ (which
  /// holds completion order) when the query finishes.
  std::vector<QueryRecord> pending_records_;
  std::vector<Pending> wait_queue_;  // FIFO admission queue (front = next)
  std::vector<InFlight> running_;
  /// Engines whose queries completed but whose final broadcast task may
  /// still be on the stack; destroyed by a separately scheduled sweep.
  std::vector<std::unique_ptr<core::AcicEngine>> retiring_;
  bool sweep_scheduled_ = false;

  std::map<std::uint64_t, std::vector<graph::Dist>> results_;

  // Dynamic serving state.
  std::uint64_t mutations_applied_ = 0;
  std::uint64_t stale_results_dropped_ = 0;
  std::map<graph::VertexId, StaleState> stale_states_;
  std::vector<graph::VertexId> stale_order_;  // front = oldest parked

  // Registry handles; valid iff config_.registry != nullptr.
  obs::CounterId obs_submitted_;
  obs::CounterId obs_completed_;
  obs::CounterId obs_cache_hits_;
  obs::SeriesId obs_wait_depth_;
  obs::SeriesId obs_running_;
  obs::CounterId obs_mutations_;
  obs::CounterId obs_invalidations_;
  obs::CounterId obs_stale_prevented_;
  obs::CounterId obs_repair_queries_;
  obs::CounterId obs_recompute_queries_;
  obs::CounterId obs_stale_dropped_;
  obs::SeriesId obs_subtree_size_;
};

}  // namespace acic::server
