#include "src/server/workload.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace acic::server {

namespace {

/// Seeded sample of `count` distinct vertices (rejection sampling; the
/// universe is tiny relative to the graph so collisions are rare).
std::vector<graph::VertexId> sample_universe(graph::VertexId num_vertices,
                                             std::uint32_t count,
                                             util::Xoshiro256& rng) {
  std::vector<graph::VertexId> universe;
  universe.reserve(count);
  std::unordered_set<graph::VertexId> seen;
  while (universe.size() < count) {
    const auto v =
        static_cast<graph::VertexId>(rng.next_below(num_vertices));
    if (seen.insert(v).second) universe.push_back(v);
  }
  return universe;
}

/// Cumulative Zipf weights over ranks 1..n: cdf[r] = sum_{k<=r+1} k^-s.
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cdf[r] = acc;
  }
  return cdf;
}

}  // namespace

std::vector<Query> generate_workload(const WorkloadConfig& config,
                                     graph::VertexId num_vertices) {
  ACIC_ASSERT_MSG(num_vertices > 0, "workload needs a non-empty graph");
  ACIC_ASSERT_MSG(config.qps > 0.0, "workload qps must be positive");
  ACIC_ASSERT_MSG(config.zipf_exponent >= 0.0,
                  "zipf exponent must be non-negative");
  ACIC_ASSERT_MSG(config.p2p_fraction >= 0.0 && config.p2p_fraction <= 1.0,
                  "p2p fraction must be a probability");

  const std::uint32_t universe_size = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(config.source_universe, num_vertices));

  // Independent streams so e.g. widening the universe does not perturb
  // the arrival-time sequence, and — crucially for the seeded
  // regression baselines — p2p_fraction = 0 leaves the historical
  // (arrival, source) sequence untouched: the coin and target streams
  // are drawn from their own generators.
  util::Xoshiro256 universe_rng(util::derive_seed(config.seed, 0));
  util::Xoshiro256 arrival_rng(util::derive_seed(config.seed, 1));
  util::Xoshiro256 source_rng(util::derive_seed(config.seed, 2));
  util::Xoshiro256 p2p_coin_rng(util::derive_seed(config.seed, 3));
  util::Xoshiro256 target_rng(util::derive_seed(config.seed, 4));

  const std::vector<graph::VertexId> universe =
      sample_universe(num_vertices, universe_size, universe_rng);
  const std::vector<double> cdf =
      zipf_cdf(universe.size(), config.zipf_exponent);
  const double total = cdf.back();

  const auto zipf_pick = [&](util::Xoshiro256& rng) {
    const double u = rng.next_double() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t rank = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1));
    return universe[rank];
  };

  // Exponential inter-arrival gaps: -ln(1-u)/lambda, lambda in 1/us.
  const double lambda_per_us = config.qps * 1e-6;

  std::vector<Query> stream;
  stream.reserve(config.num_queries);
  runtime::SimTime t = config.start_us;
  for (std::uint64_t q = 0; q < config.num_queries; ++q) {
    t += -std::log(1.0 - arrival_rng.next_double()) / lambda_per_us;
    const graph::VertexId source = zipf_pick(source_rng);
    const std::uint64_t id = config.first_id + q;
    if (p2p_coin_rng.next_double() < config.p2p_fraction) {
      // Target correlated with the same popularity skew (popular places
      // are popular destinations too); target == source is legitimate
      // and served by the trivial d(s, s) = 0 tier.
      stream.push_back(Query::p2p(id, t, source, zipf_pick(target_rng)));
    } else {
      stream.push_back(Query::full(id, t, source));
    }
  }
  return stream;
}

std::vector<MutationEvent> generate_mutation_stream(
    const MutationWorkloadConfig& config, const graph::Csr& base) {
  ACIC_ASSERT_MSG(base.num_vertices() >= 2,
                  "mutation stream needs at least two vertices");
  ACIC_ASSERT_MSG(base.num_edges() > 0,
                  "mutation stream samples targets from the edge set");
  ACIC_ASSERT_MSG(config.mutation_rate > 0.0 && config.batch_size > 0,
                  "mutation rate and batch size must be positive");
  ACIC_ASSERT_MSG(
      config.insert_fraction >= 0.0 && config.remove_fraction >= 0.0 &&
          config.insert_fraction + config.remove_fraction <= 1.0,
      "mutation kind fractions must be a sub-distribution");

  util::Xoshiro256 arrival_rng(util::derive_seed(config.seed, 10));
  util::Xoshiro256 kind_rng(util::derive_seed(config.seed, 11));
  util::Xoshiro256 edge_rng(util::derive_seed(config.seed, 12));
  util::Xoshiro256 weight_rng(util::derive_seed(config.seed, 13));

  const graph::VertexId n = base.num_vertices();
  // Row of edge index e: the offsets array is ascending, so the owning
  // source is the last row starting at or before e.
  const auto src_of = [&base](std::size_t e) {
    const auto& offsets = base.offsets();
    const auto it = std::upper_bound(offsets.begin(), offsets.end(), e);
    return static_cast<graph::VertexId>(it - offsets.begin()) - 1;
  };

  const double batches_per_us =
      config.mutation_rate / static_cast<double>(config.batch_size) * 1e-6;

  std::vector<MutationEvent> stream;
  stream.reserve(config.num_batches);
  runtime::SimTime t = config.start_us;
  for (std::uint64_t b = 0; b < config.num_batches; ++b) {
    t += -std::log(1.0 - arrival_rng.next_double()) / batches_per_us;
    MutationEvent event;
    event.apply_us = t;
    event.batch.reserve(config.batch_size);
    for (std::size_t m = 0; m < config.batch_size; ++m) {
      const double u = kind_rng.next_double();
      const double w =
          weight_rng.next_double(config.min_weight, config.max_weight);
      if (u < config.insert_fraction) {
        // Random (src, dst) pair; a collision with an existing edge is a
        // legitimate upsert, a self edge is rejected downstream.
        const auto src = static_cast<graph::VertexId>(edge_rng.next_below(n));
        const auto dst = static_cast<graph::VertexId>(edge_rng.next_below(n));
        event.batch.push_back(dynamic::Mutation::insert(src, dst, w));
      } else {
        const std::size_t e = edge_rng.next_below(base.num_edges());
        const graph::VertexId src = src_of(e);
        const graph::VertexId dst = base.neighbors()[e].dst;
        if (u < config.insert_fraction + config.remove_fraction) {
          event.batch.push_back(dynamic::Mutation::remove(src, dst));
        } else {
          event.batch.push_back(dynamic::Mutation::reweight(src, dst, w));
        }
      }
    }
    stream.push_back(std::move(event));
  }
  return stream;
}

}  // namespace acic::server
