#include "src/server/workload.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace acic::server {

namespace {

/// Seeded sample of `count` distinct vertices (rejection sampling; the
/// universe is tiny relative to the graph so collisions are rare).
std::vector<graph::VertexId> sample_universe(graph::VertexId num_vertices,
                                             std::uint32_t count,
                                             util::Xoshiro256& rng) {
  std::vector<graph::VertexId> universe;
  universe.reserve(count);
  std::unordered_set<graph::VertexId> seen;
  while (universe.size() < count) {
    const auto v =
        static_cast<graph::VertexId>(rng.next_below(num_vertices));
    if (seen.insert(v).second) universe.push_back(v);
  }
  return universe;
}

/// Cumulative Zipf weights over ranks 1..n: cdf[r] = sum_{k<=r+1} k^-s.
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cdf[r] = acc;
  }
  return cdf;
}

}  // namespace

std::vector<QueryArrival> generate_workload(const WorkloadConfig& config,
                                            graph::VertexId num_vertices) {
  ACIC_ASSERT_MSG(num_vertices > 0, "workload needs a non-empty graph");
  ACIC_ASSERT_MSG(config.qps > 0.0, "workload qps must be positive");
  ACIC_ASSERT_MSG(config.zipf_exponent >= 0.0,
                  "zipf exponent must be non-negative");

  const std::uint32_t universe_size = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(config.source_universe, num_vertices));

  // Independent streams so e.g. widening the universe does not perturb
  // the arrival-time sequence.
  util::Xoshiro256 universe_rng(util::derive_seed(config.seed, 0));
  util::Xoshiro256 arrival_rng(util::derive_seed(config.seed, 1));
  util::Xoshiro256 source_rng(util::derive_seed(config.seed, 2));

  const std::vector<graph::VertexId> universe =
      sample_universe(num_vertices, universe_size, universe_rng);
  const std::vector<double> cdf =
      zipf_cdf(universe.size(), config.zipf_exponent);
  const double total = cdf.back();

  // Exponential inter-arrival gaps: -ln(1-u)/lambda, lambda in 1/us.
  const double lambda_per_us = config.qps * 1e-6;

  std::vector<QueryArrival> stream;
  stream.reserve(config.num_queries);
  runtime::SimTime t = config.start_us;
  for (std::uint64_t q = 0; q < config.num_queries; ++q) {
    t += -std::log(1.0 - arrival_rng.next_double()) / lambda_per_us;
    const double u = source_rng.next_double() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t rank = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(cdf.size()) - 1));
    stream.push_back(QueryArrival{q, t, universe[rank]});
  }
  return stream;
}

}  // namespace acic::server
