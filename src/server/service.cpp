#include "src/server/service.hpp"

#include <algorithm>
#include <utility>

#include "src/util/assert.hpp"

namespace acic::server {

QueryService::QueryService(runtime::Machine& machine, const graph::Csr& csr,
                           const graph::Partition1D& partition,
                           ServiceConfig config)
    : machine_(machine),
      csr_(csr),
      partition_(partition),
      config_(std::move(config)),
      cache_(config_.cache_capacity) {
  ACIC_ASSERT_MSG(partition_.num_parts() == machine_.num_pes(),
                  "partition parts must equal worker PE count");
  ACIC_ASSERT_MSG(config_.max_inflight > 0,
                  "admission controller needs max_inflight >= 1");
  ACIC_ASSERT(config_.frontend_pe < machine_.num_pes());

  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    obs_submitted_ = reg.counter("server/queries_submitted");
    obs_completed_ = reg.counter("server/completed");
    obs_cache_hits_ = reg.counter("server/cache_hits");
    obs_wait_depth_ = reg.series("server/wait_queue_depth");
    obs_running_ = reg.series("server/running_engines");
    // One attachment covers the whole serving run: machine runtime/net
    // counters, every engine's introspection stream, and the service's
    // own counters land in the same registry.
    machine_.set_registry(config_.registry);
    if (config_.engine.registry == nullptr) {
      config_.engine.registry = config_.registry;
    }
  }
}

QueryService::~QueryService() = default;

void QueryService::submit(const std::vector<QueryArrival>& arrivals) {
  for (const QueryArrival& arrival : arrivals) {
    ACIC_ASSERT_MSG(arrival.source < csr_.num_vertices(),
                    "query source outside the graph");
    QueryRecord record;
    record.id = arrival.id;
    record.source = arrival.source;
    record.arrival_us = arrival.arrival_us;
    const std::size_t index = pending_records_.size();
    pending_records_.push_back(record);
    ++submitted_;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_submitted_, config_.frontend_pe, 1,
                            machine_.current_time());
    }
    machine_.schedule_at(arrival.arrival_us, config_.frontend_pe,
                         [this, index](runtime::Pe& pe) {
                           on_arrival(pe, index);
                         });
  }
}

void QueryService::on_arrival(runtime::Pe& pe, std::size_t record_index) {
  const runtime::ScopedSpan span(config_.tracer, pe, "server/arrival");
  QueryRecord& record = pending_records_[record_index];
  // Front-end cache check: the one counted lookup this query makes.
  pe.charge(config_.cache_lookup_cost_us);
  if (cache_.lookup(record.source) != nullptr) {
    record.admit_us = pe.now();
    complete_record(pe, record_index, /*cache_hit=*/true);
    sample_queue(pe.now());
    return;
  }
  wait_queue_.push_back(
      Pending{record.id, record.source, record_index});
  try_admit(pe);
  sample_queue(pe.now());
}

void QueryService::try_admit(runtime::Pe& pe) {
  while (running_.size() < config_.max_inflight && !wait_queue_.empty()) {
    const Pending pending = wait_queue_.front();
    wait_queue_.erase(wait_queue_.begin());
    // The result may have been cached while this query waited (a hot
    // source admitted ahead of it completed): serve it engine-free.
    // peek() keeps the hit/miss accounting at one lookup per query.
    if (cache_.peek(pending.source) != nullptr) {
      pending_records_[pending.record_index].admit_us = pe.now();
      complete_record(pe, pending.record_index, /*cache_hit=*/true);
      continue;
    }
    start_engine(pe, pending);
  }
}

void QueryService::start_engine(runtime::Pe& pe, const Pending& pending) {
  QueryRecord& record = pending_records_[pending.record_index];
  record.admit_us = pe.now();

  core::AcicEngineOptions options;
  options.start_time_us = pe.now();
  const std::uint64_t id = pending.id;
  options.on_complete = [this, id](runtime::Pe& done_pe) {
    on_engine_complete(done_pe, id);
  };
  InFlight inflight;
  inflight.id = id;
  inflight.record_index = pending.record_index;
  inflight.engine = std::make_unique<core::AcicEngine>(
      machine_, csr_, partition_, pending.source, config_.engine,
      std::move(options));
  running_.push_back(std::move(inflight));
}

void QueryService::on_engine_complete(runtime::Pe& pe, std::uint64_t id) {
  const runtime::ScopedSpan span(config_.tracer, pe, "server/complete");
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [id](const InFlight& f) { return f.id == id; });
  ACIC_ASSERT_MSG(it != running_.end(),
                  "completion for a query that is not running");

  core::AcicRunResult result = it->engine->collect();
  const std::size_t record_index = it->record_index;
  if (config_.keep_distances) {
    results_[id] = result.sssp.dist;
  }
  cache_.insert(pending_records_[record_index].source,
                std::move(result.sssp.dist));

  // The engine's broadcast handler is below us on the stack: park the
  // engine and destroy it from a fresh task once this one unwinds.
  retiring_.push_back(std::move(it->engine));
  running_.erase(it);
  schedule_retirement_sweep(pe);

  complete_record(pe, record_index, /*cache_hit=*/false);
  try_admit(pe);
  sample_queue(pe.now());
}

void QueryService::complete_record(runtime::Pe& pe,
                                   std::size_t record_index,
                                   bool cache_hit) {
  QueryRecord& record = pending_records_[record_index];
  record.complete_us = pe.now();
  record.cache_hit = cache_hit;
  if (config_.registry != nullptr) {
    config_.registry->add(obs_completed_, pe.id(), 1, pe.now());
    if (cache_hit) {
      config_.registry->add(obs_cache_hits_, pe.id(), 1, pe.now());
    }
  }
  if (config_.keep_distances && cache_hit) {
    // A hit is only ever declared with the entry present.
    results_[record.id] = *cache_.peek(record.source);
  }
  metrics_.record(record);
}

void QueryService::sample_queue(runtime::SimTime time_us) {
  metrics_.sample_queue(time_us,
                        static_cast<std::uint32_t>(wait_queue_.size()),
                        static_cast<std::uint32_t>(running_.size()));
  if (config_.registry != nullptr) {
    config_.registry->append(obs_wait_depth_, time_us,
                             static_cast<double>(wait_queue_.size()));
    config_.registry->append(obs_running_, time_us,
                             static_cast<double>(running_.size()));
  }
}

void QueryService::schedule_retirement_sweep(runtime::Pe& pe) {
  if (sweep_scheduled_) return;
  sweep_scheduled_ = true;
  machine_.schedule_at(pe.now(), config_.frontend_pe,
                       [this](runtime::Pe&) {
                         retiring_.clear();
                         sweep_scheduled_ = false;
                       });
}

runtime::RunStats QueryService::run(runtime::SimTime time_limit_us) {
  const runtime::RunStats stats = machine_.run(time_limit_us);
  // The machine drained (or stopped at the limit with no task running):
  // no engine frame can be on the stack, so reclamation is safe here
  // even if a sweep task never got to run.
  retiring_.clear();
  sweep_scheduled_ = false;
  return stats;
}

std::uint64_t QueryService::completed_count() const {
  return metrics_.records().size();
}

const std::vector<QueryRecord>& QueryService::records() const {
  return metrics_.records();
}

const std::vector<QueueDepthSample>& QueryService::queue_samples() const {
  return metrics_.queue_samples();
}

ServiceSummary QueryService::summary() const {
  return metrics_.summarize(cache_.stats());
}

const std::vector<graph::Dist>* QueryService::distances_for(
    std::uint64_t id) const {
  const auto it = results_.find(id);
  return it != results_.end() ? &it->second : nullptr;
}

}  // namespace acic::server
