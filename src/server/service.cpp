#include "src/server/service.hpp"

#include <algorithm>
#include <utility>

#include "src/dynamic/repair.hpp"
#include "src/util/assert.hpp"

namespace acic::server {

namespace {

/// Exact staleness test of one cached distance vector against one net
/// edge change.  Removal / increase of (u, v) can only matter if the
/// edge was a shortest-path witness: D[u] + w_old == D[v] (equality is
/// conservative — the witness may be redundant — but a non-witness edge
/// lies on no shortest path, so inequality is a proof of safety).
/// Insert / decrease matters iff it strictly improves the head.
bool entry_stale(const std::vector<graph::Dist>& d,
                 const dynamic::EdgeDelta& delta) {
  const graph::Dist du = d[delta.src];
  if (du == graph::kInfDist) return false;
  if (delta.is_removal_or_increase() &&
      du + delta.weight_before == d[delta.dst]) {
    return true;
  }
  if (delta.is_insert_or_decrease() &&
      du + delta.weight_after < d[delta.dst]) {
    return true;
  }
  return false;
}

}  // namespace

QueryService::QueryService(runtime::Machine& machine, const graph::Csr& csr,
                           const graph::Partition1D& partition,
                           ServiceConfig config)
    : machine_(machine),
      csr_(&csr),
      partition_(partition),
      config_(std::move(config)),
      cache_(config_.cache_capacity) {
  define_counters();
}

QueryService::QueryService(runtime::Machine& machine,
                           dynamic::DynamicGraph& graph,
                           const graph::Partition1D& partition,
                           ServiceConfig config)
    : machine_(machine),
      dynamic_(&graph),
      partition_(partition),
      config_(std::move(config)),
      cache_(config_.cache_capacity) {
  define_counters();
}

void QueryService::define_counters() {
  ACIC_ASSERT_MSG(partition_.num_parts() == machine_.num_pes(),
                  "partition parts must equal worker PE count");
  ACIC_ASSERT_MSG(config_.max_inflight > 0,
                  "admission controller needs max_inflight >= 1");
  ACIC_ASSERT(config_.frontend_pe < machine_.num_pes());

  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    obs_submitted_ = reg.counter("server/queries_submitted");
    obs_completed_ = reg.counter("server/completed");
    obs_cache_hits_ = reg.counter("server/cache_hits");
    obs_wait_depth_ = reg.series("server/wait_queue_depth");
    obs_running_ = reg.series("server/running_engines");
    if (dynamic_ != nullptr) {
      // Timed so the churn counters render as tracks in the timeseries
      // CSV / Chrome trace that bench/server_load exports.
      obs_mutations_ = reg.counter("server/mutations_applied", true);
      obs_invalidations_ = reg.counter("cache/invalidations", true);
      obs_stale_prevented_ = reg.counter("cache/stale_hits_prevented", true);
      obs_repair_queries_ = reg.counter("server/repair_queries", true);
      obs_recompute_queries_ =
          reg.counter("server/recompute_queries", true);
      obs_stale_dropped_ = reg.counter("server/stale_results_dropped", true);
      obs_subtree_size_ = reg.series("server/repair_subtree_size");
    }
    // One attachment covers the whole serving run: machine runtime/net
    // counters, every engine's introspection stream, and the service's
    // own counters land in the same registry.
    machine_.set_registry(config_.registry);
    if (config_.engine.registry == nullptr) {
      config_.engine.registry = config_.registry;
    }
  }
}

QueryService::~QueryService() = default;

void QueryService::submit(const std::vector<QueryArrival>& arrivals) {
  for (const QueryArrival& arrival : arrivals) {
    ACIC_ASSERT_MSG(arrival.source < graph_view().num_vertices(),
                    "query source outside the graph");
    QueryRecord record;
    record.id = arrival.id;
    record.source = arrival.source;
    record.arrival_us = arrival.arrival_us;
    const std::size_t index = pending_records_.size();
    pending_records_.push_back(record);
    ++submitted_;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_submitted_, config_.frontend_pe, 1,
                            machine_.current_time());
    }
    machine_.schedule_at(arrival.arrival_us, config_.frontend_pe,
                         [this, index](runtime::Pe& pe) {
                           on_arrival(pe, index);
                         });
  }
}

void QueryService::submit_mutations(const std::vector<MutationEvent>& events) {
  ACIC_ASSERT_MSG(dynamic_ != nullptr,
                  "submit_mutations requires the DynamicGraph constructor");
  for (const MutationEvent& event : events) {
    machine_.schedule_at(event.apply_us, config_.frontend_pe,
                         [this, batch = event.batch](runtime::Pe& pe) {
                           apply_mutations(pe, batch);
                         });
  }
}

void QueryService::apply_mutations(runtime::Pe& pe,
                                   const dynamic::MutationBatch& batch) {
  const runtime::ScopedSpan span(config_.tracer, pe, "server/mutate");
  const auto before = dynamic_->snapshot_ptr();
  const dynamic::ApplyStats stats = dynamic_->apply(batch);
  mutations_applied_ += stats.applied();
  pe.charge(config_.mutation_apply_cost_us *
            static_cast<double>(stats.applied()));
  if (config_.registry != nullptr && stats.applied() > 0) {
    config_.registry->add(obs_mutations_, pe.id(), stats.applied(),
                          pe.now());
  }
  if (stats.applied() == 0) return;

  // Cache sweep: test every entry against the epoch's net edge deltas
  // and park the stale ones as warm-repair states.  Surviving entries
  // are provably still exact (see entry_stale), which keeps the cache's
  // exactness invariant: every entry is correct for the current epoch.
  const std::span<const dynamic::AppliedMutation> applied =
      dynamic_->applied_since(before->epoch);
  const std::vector<dynamic::EdgeDelta> deltas =
      dynamic::collapse_mutations(applied.data(),
                                  applied.data() + applied.size());
  for (const graph::VertexId source : cache_.cached_sources()) {
    const std::vector<graph::Dist>* dist = cache_.peek(source);
    const dynamic::EdgeDelta* trigger = nullptr;
    for (const dynamic::EdgeDelta& delta : deltas) {
      if (entry_stale(*dist, delta)) {
        trigger = &delta;
        break;
      }
    }
    if (trigger == nullptr) continue;
    StaleState state;
    state.epoch = before->epoch;
    state.snap = before;
    cache_.invalidate(source, &state.dist);
    if (config_.registry != nullptr) {
      // Attribute to the partition block owning the mutated edge's head:
      // node/process rollups of this counter are the per-region eviction
      // breakdown.
      config_.registry->add(obs_invalidations_,
                            partition_.owner(trigger->dst), 1, pe.now());
    }
    park_stale_state(source, std::move(state));
  }
}

void QueryService::park_stale_state(graph::VertexId source,
                                    StaleState state) {
  if (config_.max_stale_states == 0) return;
  const auto it = stale_states_.find(source);
  if (it != stale_states_.end()) {
    it->second = std::move(state);  // newer epoch supersedes
    return;
  }
  if (stale_states_.size() >= config_.max_stale_states) {
    stale_states_.erase(stale_order_.front());
    stale_order_.erase(stale_order_.begin());
  }
  stale_states_.emplace(source, std::move(state));
  stale_order_.push_back(source);
}

void QueryService::on_arrival(runtime::Pe& pe, std::size_t record_index) {
  const runtime::ScopedSpan span(config_.tracer, pe, "server/arrival");
  QueryRecord& record = pending_records_[record_index];
  // Front-end cache check: the one counted lookup this query makes.
  pe.charge(config_.cache_lookup_cost_us);
  const std::uint64_t prevented_before = cache_.stats().stale_hits_prevented;
  if (cache_.lookup(record.source) != nullptr) {
    record.admit_us = pe.now();
    record.epoch = dynamic_ != nullptr ? dynamic_->epoch() : 0;
    complete_record(pe, record_index, /*cache_hit=*/true);
    sample_queue(pe.now());
    return;
  }
  if (config_.registry != nullptr && dynamic_ != nullptr &&
      cache_.stats().stale_hits_prevented > prevented_before) {
    config_.registry->add(obs_stale_prevented_, pe.id(), 1, pe.now());
  }
  wait_queue_.push_back(
      Pending{record.id, record.source, record_index});
  try_admit(pe);
  sample_queue(pe.now());
}

void QueryService::try_admit(runtime::Pe& pe) {
  while (running_.size() < config_.max_inflight && !wait_queue_.empty()) {
    const Pending pending = wait_queue_.front();
    wait_queue_.erase(wait_queue_.begin());
    // The result may have been cached while this query waited (a hot
    // source admitted ahead of it completed): serve it engine-free.
    // peek() keeps the hit/miss accounting at one lookup per query.
    if (cache_.peek(pending.source) != nullptr) {
      QueryRecord& record = pending_records_[pending.record_index];
      record.admit_us = pe.now();
      record.epoch = dynamic_ != nullptr ? dynamic_->epoch() : 0;
      complete_record(pe, pending.record_index, /*cache_hit=*/true);
      continue;
    }
    start_engine(pe, pending);
  }
}

bool QueryService::start_engine(runtime::Pe& pe, const Pending& pending) {
  QueryRecord& record = pending_records_[pending.record_index];
  record.admit_us = pe.now();

  core::AcicEngineOptions options;
  options.start_time_us = pe.now();
  const std::uint64_t id = pending.id;
  options.on_complete = [this, id](runtime::Pe& done_pe) {
    on_engine_complete(done_pe, id);
  };

  InFlight inflight;
  inflight.id = id;
  inflight.record_index = pending.record_index;

  if (dynamic_ == nullptr) {
    inflight.engine = std::make_unique<core::AcicEngine>(
        machine_, *csr_, partition_, pending.source, config_.engine,
        std::move(options));
    running_.push_back(std::move(inflight));
    return true;
  }

  // Dynamic serving: pin the current snapshot for the engine's lifetime
  // — the answer is exact for this epoch no matter how the graph moves.
  inflight.snap = dynamic_->snapshot_ptr();
  record.epoch = inflight.snap->epoch;

  const auto stale_it = stale_states_.find(pending.source);
  if (stale_it != stale_states_.end()) {
    StaleState stale = std::move(stale_it->second);
    stale_states_.erase(stale_it);
    stale_order_.erase(std::find(stale_order_.begin(), stale_order_.end(),
                                 pending.source));
    pe.charge(config_.repair_plan_cost_us);

    dynamic::SsspState state;
    state.source = pending.source;
    state.epoch = stale.epoch;
    state.dist = std::move(stale.dist);
    state.parent =
        dynamic::compute_parents(*stale.snap, pending.source, state.dist);
    const dynamic::RepairPlan plan = dynamic::plan_repair(
        *inflight.snap, state, dynamic_->applied_since(stale.epoch));
    if (config_.registry != nullptr) {
      config_.registry->append(obs_subtree_size_, pe.now(),
                               static_cast<double>(plan.affected.size()));
    }

    if (plan.touches_nothing()) {
      // The mutations that evicted this entry turned out not to change
      // this source's distances (the eviction test is conservative):
      // the parked answer is exact for the current epoch.  Serve it
      // with no engine at all.
      record.repaired = true;
      if (config_.registry != nullptr) {
        config_.registry->add(obs_repair_queries_, pe.id(), 1, pe.now());
      }
      if (config_.keep_distances) {
        results_[id] = state.dist;
      }
      cache_.insert(pending.source, std::move(state.dist),
                    inflight.snap->epoch);
      complete_record(pe, pending.record_index, /*cache_hit=*/false);
      return false;
    }

    const double affected_fraction =
        static_cast<double>(plan.affected.size()) /
        static_cast<double>(graph_view().num_vertices());
    if (affected_fraction <= config_.recompute_fraction) {
      record.repaired = true;
      options.warm_dist = &plan.warm_dist;  // copied by the constructor
      options.seeds = plan.seeds;
      if (config_.registry != nullptr) {
        config_.registry->add(obs_repair_queries_, pe.id(), 1, pe.now());
      }
      inflight.engine = std::make_unique<core::AcicEngine>(
          machine_, inflight.snap->csr, partition_, pending.source,
          config_.engine, std::move(options));
      running_.push_back(std::move(inflight));
      return true;
    }
    // Repair would touch most of the graph: fall through to a cold run.
  }

  if (config_.registry != nullptr) {
    config_.registry->add(obs_recompute_queries_, pe.id(), 1, pe.now());
  }
  inflight.engine = std::make_unique<core::AcicEngine>(
      machine_, inflight.snap->csr, partition_, pending.source,
      config_.engine, std::move(options));
  running_.push_back(std::move(inflight));
  return true;
}

void QueryService::on_engine_complete(runtime::Pe& pe, std::uint64_t id) {
  const runtime::ScopedSpan span(config_.tracer, pe, "server/complete");
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [id](const InFlight& f) { return f.id == id; });
  ACIC_ASSERT_MSG(it != running_.end(),
                  "completion for a query that is not running");

  core::AcicRunResult result = it->engine->collect();
  const std::size_t record_index = it->record_index;
  if (config_.keep_distances) {
    results_[id] = result.sssp.dist;
  }
  if (dynamic_ == nullptr || it->snap->epoch == dynamic_->epoch()) {
    cache_.insert(pending_records_[record_index].source,
                  std::move(result.sssp.dist),
                  dynamic_ != nullptr ? it->snap->epoch : 0);
  } else {
    // The graph moved on mid-run: the answer is exact for its own epoch
    // (served as such) but caching it would poison current-epoch hits.
    ++stale_results_dropped_;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_stale_dropped_, pe.id(), 1, pe.now());
    }
  }

  // The engine's broadcast handler is below us on the stack: park the
  // engine and destroy it from a fresh task once this one unwinds.
  retiring_.push_back(std::move(it->engine));
  running_.erase(it);
  schedule_retirement_sweep(pe);

  complete_record(pe, record_index, /*cache_hit=*/false);
  try_admit(pe);
  sample_queue(pe.now());
}

void QueryService::complete_record(runtime::Pe& pe,
                                   std::size_t record_index,
                                   bool cache_hit) {
  QueryRecord& record = pending_records_[record_index];
  record.complete_us = pe.now();
  record.cache_hit = cache_hit;
  if (config_.registry != nullptr) {
    config_.registry->add(obs_completed_, pe.id(), 1, pe.now());
    if (cache_hit) {
      config_.registry->add(obs_cache_hits_, pe.id(), 1, pe.now());
    }
  }
  if (config_.keep_distances && cache_hit) {
    // A hit is only ever declared with the entry present.
    results_[record.id] = *cache_.peek(record.source);
  }
  metrics_.record(record);
}

void QueryService::sample_queue(runtime::SimTime time_us) {
  metrics_.sample_queue(time_us,
                        static_cast<std::uint32_t>(wait_queue_.size()),
                        static_cast<std::uint32_t>(running_.size()));
  if (config_.registry != nullptr) {
    config_.registry->append(obs_wait_depth_, time_us,
                             static_cast<double>(wait_queue_.size()));
    config_.registry->append(obs_running_, time_us,
                             static_cast<double>(running_.size()));
  }
}

void QueryService::schedule_retirement_sweep(runtime::Pe& pe) {
  if (sweep_scheduled_) return;
  sweep_scheduled_ = true;
  machine_.schedule_at(pe.now(), config_.frontend_pe,
                       [this](runtime::Pe&) {
                         retiring_.clear();
                         sweep_scheduled_ = false;
                       });
}

runtime::RunStats QueryService::run(runtime::SimTime time_limit_us) {
  const runtime::RunStats stats = machine_.run(time_limit_us);
  // The machine drained (or stopped at the limit with no task running):
  // no engine frame can be on the stack, so reclamation is safe here
  // even if a sweep task never got to run.
  retiring_.clear();
  sweep_scheduled_ = false;
  return stats;
}

std::uint64_t QueryService::completed_count() const {
  return metrics_.records().size();
}

const std::vector<QueryRecord>& QueryService::records() const {
  return metrics_.records();
}

const std::vector<QueueDepthSample>& QueryService::queue_samples() const {
  return metrics_.queue_samples();
}

ServiceSummary QueryService::summary() const {
  return metrics_.summarize(cache_.stats());
}

const std::vector<graph::Dist>* QueryService::distances_for(
    std::uint64_t id) const {
  const auto it = results_.find(id);
  return it != results_.end() ? &it->second : nullptr;
}

}  // namespace acic::server
