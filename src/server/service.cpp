#include "src/server/service.hpp"

#include <algorithm>
#include <utility>

#include "src/dynamic/repair.hpp"
#include "src/graph/edge_list.hpp"
#include "src/util/assert.hpp"

namespace acic::server {

namespace {

/// Exact staleness test of one cached distance vector against one net
/// edge change.  Removal / increase of (u, v) can only matter if the
/// edge was a shortest-path witness: D[u] + w_old == D[v] (equality is
/// conservative — the witness may be redundant — but a non-witness edge
/// lies on no shortest path, so inequality is a proof of safety).
/// Insert / decrease matters iff it strictly improves the head.
bool entry_stale(const std::vector<graph::Dist>& d,
                 const dynamic::EdgeDelta& delta) {
  const graph::Dist du = d[delta.src];
  if (du == graph::kInfDist) return false;
  if (delta.is_removal_or_increase() &&
      du + delta.weight_before == d[delta.dst]) {
    return true;
  }
  if (delta.is_insert_or_decrease() &&
      du + delta.weight_after < d[delta.dst]) {
    return true;
  }
  return false;
}

/// Static-constructor wrapper: copies the Csr into a single-epoch
/// DynamicGraph so the service has exactly one serving code path.  The
/// EdgeList round-trip normalizes to the simple-graph contract (self
/// loops dropped, duplicate (src, dst) collapsed to the lightest) —
/// distance-preserving, so every answer matches the original graph.
std::unique_ptr<dynamic::DynamicGraph> wrap_static(const graph::Csr& csr) {
  graph::EdgeList list(csr.num_vertices(), {});
  list.reserve(csr.num_edges());
  for (graph::VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (const graph::Neighbor& nb : csr.out_neighbors(v)) {
      list.add(v, nb.dst, nb.weight);
    }
  }
  return std::make_unique<dynamic::DynamicGraph>(std::move(list));
}

}  // namespace

QueryService::QueryService(runtime::Machine& machine, const graph::Csr& csr,
                           const graph::Partition1D& partition,
                           ServiceConfig config)
    : QueryService(machine, wrap_static(csr), nullptr, partition,
                   std::move(config)) {}

QueryService::QueryService(runtime::Machine& machine,
                           dynamic::DynamicGraph& graph,
                           const graph::Partition1D& partition,
                           ServiceConfig config)
    : QueryService(machine, nullptr, &graph, partition, std::move(config)) {}

QueryService::QueryService(runtime::Machine& machine,
                           std::unique_ptr<dynamic::DynamicGraph> owned,
                           dynamic::DynamicGraph* external,
                           const graph::Partition1D& partition,
                           ServiceConfig config)
    : machine_(machine),
      owned_graph_(std::move(owned)),
      dynamic_(owned_graph_ != nullptr ? owned_graph_.get() : external),
      partition_(partition),
      config_(std::move(config)),
      cache_(config_.cache_capacity) {
  ACIC_ASSERT(dynamic_ != nullptr);
  define_counters();
  if (config_.landmarks.num_landmarks > 0) {
    // Offline precompute (2k Dijkstra rows); deliberately not charged to
    // simulated time — index construction happens before serving starts.
    const auto snap = dynamic_->snapshot_ptr();
    sssp::LandmarkConfig lc;
    lc.num_landmarks = config_.landmarks.num_landmarks;
    landmarks_index_ = std::make_unique<sssp::LandmarkIndex>(
        snap->csr, snap->reverse, lc);
  }
}

void QueryService::define_counters() {
  ACIC_ASSERT_MSG(partition_.num_parts() == machine_.num_pes(),
                  "partition parts must equal worker PE count");
  ACIC_ASSERT_MSG(config_.max_inflight > 0,
                  "admission controller needs max_inflight >= 1");
  ACIC_ASSERT_MSG(config_.batching.max_batch > 0,
                  "batch size 0 would admit nothing");
  ACIC_ASSERT(config_.frontend_pe < machine_.num_pes());

  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    obs_submitted_ = reg.counter("server/queries_submitted");
    obs_completed_ = reg.counter("server/completed");
    obs_cache_hits_ = reg.counter("server/cache_hits");
    obs_wait_depth_ = reg.series("server/wait_queue_depth");
    obs_running_ = reg.series("server/running_engines");
    if (config_.batching.max_batch > 1) {
      obs_batches_ = reg.counter("server/batches_started");
      obs_batched_queries_ = reg.counter("server/batched_queries");
    }
    if (config_.landmarks.num_landmarks > 0) {
      obs_landmark_exact_ = reg.counter("server/landmark_exact");
      obs_goal_directed_ = reg.counter("server/goal_directed");
      obs_rows_invalidated_ = reg.counter("landmarks/rows_invalidated", true);
      obs_rows_refreshed_ = reg.counter("landmarks/rows_refreshed", true);
    }
    if (owned_graph_ == nullptr) {
      // Timed so the churn counters render as tracks in the timeseries
      // CSV / Chrome trace that bench/server_load exports.
      obs_mutations_ = reg.counter("server/mutations_applied", true);
      obs_invalidations_ = reg.counter("cache/invalidations", true);
      obs_stale_prevented_ = reg.counter("cache/stale_hits_prevented", true);
      obs_repair_queries_ = reg.counter("server/repair_queries", true);
      obs_recompute_queries_ =
          reg.counter("server/recompute_queries", true);
      obs_stale_dropped_ = reg.counter("server/stale_results_dropped", true);
      obs_subtree_size_ = reg.series("server/repair_subtree_size");
    }
    // One attachment covers the whole serving run: machine runtime/net
    // counters, every engine's introspection stream, and the service's
    // own counters land in the same registry.
    machine_.set_registry(config_.registry);
    if (config_.engine.registry == nullptr) {
      config_.engine.registry = config_.registry;
    }
  }
}

QueryService::~QueryService() = default;

void QueryService::submit(const std::vector<Query>& queries) {
  for (const Query& query : queries) {
    ACIC_ASSERT_MSG(query.source < graph_view().num_vertices(),
                    "query source outside the graph");
    ACIC_ASSERT_MSG(!query.is_p2p() ||
                        query.target < graph_view().num_vertices(),
                    "p2p target outside the graph");
    ACIC_ASSERT_MSG(submitted_ == 0 ||
                        query.arrival_us >= last_submitted_arrival_us_,
                    "arrival times must be non-decreasing across "
                    "concatenated submissions (see WorkloadConfig::"
                    "first_id / start_us)");
    last_submitted_arrival_us_ = query.arrival_us;
    QueryRecord record;
    record.id = query.id;
    record.source = query.source;
    record.target = query.target;
    record.mode = query.mode;
    record.arrival_us = query.arrival_us;
    const std::size_t index = pending_records_.size();
    ACIC_ASSERT_MSG(record_of_id_.emplace(query.id, index).second,
                    "query ids must be unique across all submissions "
                    "(see WorkloadConfig::first_id)");
    pending_records_.push_back(record);
    ++submitted_;
    if (config_.registry != nullptr) {
      config_.registry->add(obs_submitted_, config_.frontend_pe, 1,
                            machine_.current_time());
    }
    machine_.schedule_at(query.arrival_us, config_.frontend_pe,
                         [this, index](runtime::Pe& pe) {
                           on_arrival(pe, index);
                         });
  }
}

void QueryService::submit_mutations(const std::vector<MutationEvent>& events) {
  ACIC_ASSERT_MSG(owned_graph_ == nullptr,
                  "submit_mutations requires the DynamicGraph constructor");
  for (const MutationEvent& event : events) {
    machine_.schedule_at(event.apply_us, config_.frontend_pe,
                         [this, batch = event.batch](runtime::Pe& pe) {
                           apply_mutations(pe, batch);
                         });
  }
}

void QueryService::apply_mutations(runtime::Pe& pe,
                                   const dynamic::MutationBatch& batch) {
  const runtime::ScopedSpan span(config_.tracer, pe, "server/mutate");
  const auto before = dynamic_->snapshot_ptr();
  const dynamic::ApplyStats stats = dynamic_->apply(batch);
  mutations_applied_ += stats.applied();
  pe.charge(config_.dynamics.mutation_apply_cost_us *
            static_cast<double>(stats.applied()));
  if (config_.registry != nullptr && stats.applied() > 0) {
    config_.registry->add(obs_mutations_, pe.id(), stats.applied(),
                          pe.now());
  }
  if (stats.applied() == 0) return;

  // Cache sweep: test every entry against the epoch's net edge deltas
  // and park the stale ones as warm-repair states.  Surviving entries
  // are provably still exact (see entry_stale), which keeps the cache's
  // exactness invariant: every entry is correct for the current epoch.
  const std::span<const dynamic::AppliedMutation> applied =
      dynamic_->applied_since(before->epoch);
  const std::vector<dynamic::EdgeDelta> deltas =
      dynamic::collapse_mutations(applied.data(),
                                  applied.data() + applied.size());
  for (const graph::VertexId source : cache_.cached_sources()) {
    const std::vector<graph::Dist>* dist = cache_.peek(source);
    const dynamic::EdgeDelta* trigger = nullptr;
    for (const dynamic::EdgeDelta& delta : deltas) {
      if (entry_stale(*dist, delta)) {
        trigger = &delta;
        break;
      }
    }
    if (trigger == nullptr) continue;
    StaleState state;
    state.epoch = before->epoch;
    state.snap = before;
    cache_.invalidate(source, &state.dist);
    if (config_.registry != nullptr) {
      // Attribute to the partition block owning the mutated edge's head:
      // node/process rollups of this counter are the per-region eviction
      // breakdown.
      config_.registry->add(obs_invalidations_,
                            partition_.owner(trigger->dst), 1, pe.now());
    }
    park_stale_state(source, std::move(state));
  }

  // Landmark rows are distance vectors too: the same per-edge tests
  // decide which survive the epoch.  Invalid rows stop contributing
  // (exactness preserved, guidance weakens) until refreshed.
  if (landmarks_index_ != nullptr) {
    const std::size_t newly = landmarks_index_->invalidate(deltas);
    if (config_.registry != nullptr && newly > 0) {
      config_.registry->add(obs_rows_invalidated_, pe.id(),
                            static_cast<std::uint64_t>(newly), pe.now());
    }
    if (landmarks_index_->invalid_rows() > 0 &&
        landmarks_index_->invalid_fraction() >=
            config_.landmarks.refresh_fraction) {
      const auto snap = dynamic_->snapshot_ptr();
      const std::size_t refreshed =
          landmarks_index_->refresh(snap->csr, snap->reverse);
      pe.charge(config_.landmarks.refresh_cost_us *
                static_cast<double>(refreshed));
      if (config_.registry != nullptr && refreshed > 0) {
        config_.registry->add(obs_rows_refreshed_, pe.id(),
                              static_cast<std::uint64_t>(refreshed),
                              pe.now());
      }
    }
  }
}

void QueryService::park_stale_state(graph::VertexId source,
                                    StaleState state) {
  if (config_.dynamics.max_stale_states == 0) return;
  const auto it = stale_states_.find(source);
  if (it != stale_states_.end()) {
    it->second = std::move(state);  // newer epoch supersedes
    return;
  }
  if (stale_states_.size() >= config_.dynamics.max_stale_states) {
    stale_states_.erase(stale_order_.front());
    stale_order_.erase(stale_order_.begin());
  }
  stale_states_.emplace(source, std::move(state));
  stale_order_.push_back(source);
}

void QueryService::serve_from_cache(runtime::Pe& pe,
                                    std::size_t record_index) {
  QueryRecord& record = pending_records_[record_index];
  record.admit_us = pe.now();
  record.epoch = dynamic_->epoch();
  // A hit is only ever declared with the entry present.
  const std::vector<graph::Dist>* dist = cache_.peek(record.source);
  complete_record(pe, record_index, ServeTier::kCache, dist);
}

bool QueryService::serve_p2p_frontend(runtime::Pe& pe,
                                      std::size_t record_index) {
  if (landmarks_index_ == nullptr) return false;
  QueryRecord& record = pending_records_[record_index];
  pe.charge(config_.landmarks.lookup_cost_us);

  graph::Dist exact = 0.0;
  if (landmarks_index_->exact_p2p(record.source, record.target, &exact)) {
    record.admit_us = pe.now();
    record.epoch = dynamic_->epoch();
    results_[record.id] =
        QueryResult{ResultMode::kPointToPoint, {}, exact};
    complete_record(pe, record_index, ServeTier::kLandmark, nullptr);
    return true;
  }
  if (!config_.landmarks.goal_directed) return false;

  // Goal-directed A* on the front end, against the *current* snapshot
  // (the heuristic's surviving rows are exact for it — see the sweep in
  // apply_mutations).  Charged per settled vertex: goal direction is
  // cheap near the target and expensive across the graph, and the
  // latency distribution should see exactly that.
  const auto snap = dynamic_->snapshot_ptr();
  sssp::P2pStats stats;
  const graph::Dist d = landmarks_index_->p2p(
      snap->csr, record.source, record.target, &p2p_workspace_, &stats);
  pe.charge(config_.landmarks.astar_settle_cost_us *
            static_cast<double>(stats.settled));
  record.admit_us = pe.now();
  record.epoch = snap->epoch;
  results_[record.id] = QueryResult{ResultMode::kPointToPoint, {}, d};
  complete_record(pe, record_index, ServeTier::kGoalDirected, nullptr);
  return true;
}

void QueryService::on_arrival(runtime::Pe& pe, std::size_t record_index) {
  const runtime::ScopedSpan span(config_.tracer, pe, "server/arrival");
  QueryRecord& record = pending_records_[record_index];
  // Front-end cache check: the one counted lookup this query makes.
  pe.charge(config_.cache_lookup_cost_us);
  const std::uint64_t prevented_before = cache_.stats().stale_hits_prevented;
  if (cache_.lookup(record.source) != nullptr) {
    serve_from_cache(pe, record_index);
    sample_queue(pe.now());
    return;
  }
  if (config_.registry != nullptr && owned_graph_ == nullptr &&
      cache_.stats().stale_hits_prevented > prevented_before) {
    config_.registry->add(obs_stale_prevented_, pe.id(), 1, pe.now());
  }
  if (record.mode == ResultMode::kPointToPoint &&
      serve_p2p_frontend(pe, record_index)) {
    sample_queue(pe.now());
    return;
  }
  wait_queue_.push_back(
      Pending{record.id, record.source, record_index});
  try_admit(pe);
  sample_queue(pe.now());
}

void QueryService::try_admit(runtime::Pe& pe) {
  while (running_.size() < config_.max_inflight && !wait_queue_.empty()) {
    // Gather a FIFO prefix into one admission.  Three query classes
    // leave the queue here without consuming batch slots or break the
    // gather early:
    //   * results cached while waiting (a hot source admitted ahead
    //     completed) are served engine-free — peek() keeps the hit/miss
    //     accounting at one lookup per query;
    //   * a query whose source has a parked stale state runs *solo*
    //     (the warm-repair path seeds one engine from the old answer;
    //     mixing warm and cold lanes in one pass is not supported), so
    //     it either heads this admission alone or ends the gather;
    //   * everything else joins the batch, up to batching.max_batch.
    std::vector<Pending> members;
    while (!wait_queue_.empty() &&
           members.size() < config_.batching.max_batch) {
      const Pending pending = wait_queue_.front();
      if (cache_.peek(pending.source) != nullptr) {
        wait_queue_.erase(wait_queue_.begin());
        serve_from_cache(pe, pending.record_index);
        continue;
      }
      const bool warm = stale_states_.count(pending.source) > 0;
      if (warm && !members.empty()) break;  // heads the next admission
      wait_queue_.erase(wait_queue_.begin());
      members.push_back(pending);
      if (warm) break;  // runs solo
    }
    if (members.empty()) break;
    if (members.size() == 1) {
      start_engine(pe, members.front());
    } else {
      start_batch(pe, members);
    }
  }
}

bool QueryService::start_engine(runtime::Pe& pe, const Pending& pending) {
  QueryRecord& record = pending_records_[pending.record_index];
  record.admit_us = pe.now();

  core::AcicEngineOptions options;
  options.start_time_us = pe.now();
  const std::uint64_t id = pending.id;
  options.on_complete = [this, id](runtime::Pe& done_pe) {
    on_engine_complete(done_pe, id);
  };

  InFlight inflight;
  inflight.key = id;
  inflight.members.push_back(
      BatchMember{id, pending.record_index, /*lane=*/0});
  inflight.lane_sources.push_back(pending.source);

  // Pin the current snapshot for the engine's lifetime — the answer is
  // exact for this epoch no matter how the graph moves.
  inflight.snap = dynamic_->snapshot_ptr();
  record.epoch = inflight.snap->epoch;

  const auto stale_it = stale_states_.find(pending.source);
  if (stale_it != stale_states_.end()) {
    StaleState stale = std::move(stale_it->second);
    stale_states_.erase(stale_it);
    stale_order_.erase(std::find(stale_order_.begin(), stale_order_.end(),
                                 pending.source));
    pe.charge(config_.dynamics.repair_plan_cost_us);

    dynamic::SsspState state;
    state.source = pending.source;
    state.epoch = stale.epoch;
    state.dist = std::move(stale.dist);
    state.parent =
        dynamic::compute_parents(*stale.snap, pending.source, state.dist);
    const dynamic::RepairPlan plan = dynamic::plan_repair(
        *inflight.snap, state, dynamic_->applied_since(stale.epoch));
    if (config_.registry != nullptr) {
      config_.registry->append(obs_subtree_size_, pe.now(),
                               static_cast<double>(plan.affected.size()));
    }

    if (plan.touches_nothing()) {
      // The mutations that evicted this entry turned out not to change
      // this source's distances (the eviction test is conservative):
      // the parked answer is exact for the current epoch.  Serve it
      // with no engine at all.
      record.repaired = true;
      if (config_.registry != nullptr) {
        config_.registry->add(obs_repair_queries_, pe.id(), 1, pe.now());
      }
      complete_record(pe, pending.record_index, ServeTier::kRepairFree,
                      &state.dist);
      cache_.insert(pending.source, std::move(state.dist),
                    inflight.snap->epoch);
      return false;
    }

    const double affected_fraction =
        static_cast<double>(plan.affected.size()) /
        static_cast<double>(graph_view().num_vertices());
    if (affected_fraction <= config_.dynamics.recompute_fraction) {
      record.repaired = true;
      options.warm_dist = &plan.warm_dist;  // copied by the constructor
      options.seeds = plan.seeds;
      if (config_.registry != nullptr) {
        config_.registry->add(obs_repair_queries_, pe.id(), 1, pe.now());
      }
      inflight.engine = std::make_unique<core::AcicEngine>(
          machine_, inflight.snap->csr, partition_, pending.source,
          config_.engine, std::move(options));
      running_.push_back(std::move(inflight));
      return true;
    }
    // Repair would touch most of the graph: fall through to a cold run.
  }

  if (config_.registry != nullptr && owned_graph_ == nullptr) {
    config_.registry->add(obs_recompute_queries_, pe.id(), 1, pe.now());
  }
  inflight.engine = std::make_unique<core::AcicEngine>(
      machine_, inflight.snap->csr, partition_, pending.source,
      config_.engine, std::move(options));
  running_.push_back(std::move(inflight));
  return true;
}

void QueryService::start_batch(runtime::Pe& pe,
                               const std::vector<Pending>& members) {
  InFlight inflight;
  inflight.key = members.front().id;
  inflight.snap = dynamic_->snapshot_ptr();

  // Distinct sources become frontier lanes; duplicate sources share.
  for (const Pending& pending : members) {
    QueryRecord& record = pending_records_[pending.record_index];
    record.admit_us = pe.now();
    record.epoch = inflight.snap->epoch;
    std::uint32_t lane = 0;
    const auto it = std::find(inflight.lane_sources.begin(),
                              inflight.lane_sources.end(), pending.source);
    if (it == inflight.lane_sources.end()) {
      lane = static_cast<std::uint32_t>(inflight.lane_sources.size());
      inflight.lane_sources.push_back(pending.source);
    } else {
      lane = static_cast<std::uint32_t>(it - inflight.lane_sources.begin());
    }
    inflight.members.push_back(
        BatchMember{pending.id, pending.record_index, lane});
  }

  core::AcicEngineOptions options;
  options.start_time_us = pe.now();
  options.sources = inflight.lane_sources;
  const std::uint64_t key = inflight.key;
  options.on_complete = [this, key](runtime::Pe& done_pe) {
    on_engine_complete(done_pe, key);
  };

  ++batches_started_;
  if (config_.registry != nullptr) {
    config_.registry->add(obs_batches_, pe.id(), 1, pe.now());
    config_.registry->add(obs_batched_queries_, pe.id(),
                          inflight.members.size(), pe.now());
  }
  inflight.engine = std::make_unique<core::AcicEngine>(
      machine_, inflight.snap->csr, partition_, inflight.lane_sources[0],
      config_.engine, std::move(options));
  running_.push_back(std::move(inflight));
}

void QueryService::on_engine_complete(runtime::Pe& pe, std::uint64_t key) {
  const runtime::ScopedSpan span(config_.tracer, pe, "server/complete");
  const auto it =
      std::find_if(running_.begin(), running_.end(),
                   [key](const InFlight& f) { return f.key == key; });
  ACIC_ASSERT_MSG(it != running_.end(),
                  "completion for a pass that is not running");

  core::AcicRunResult result = it->engine->collect();
  const bool batch = it->members.size() > 1;
  const bool epoch_current = it->snap->epoch == dynamic_->epoch();
  const ServeTier tier = batch ? ServeTier::kBatch : ServeTier::kEngine;

  // Per-lane distance vectors: a solo pass carries its single vector in
  // sssp.dist, a multi-source pass one per lane in lane_dist.
  std::vector<std::vector<graph::Dist>> lanes;
  if (batch) {
    ACIC_ASSERT(result.lane_dist.size() == it->lane_sources.size());
    lanes = std::move(result.lane_dist);
  } else {
    lanes.push_back(std::move(result.sssp.dist));
  }

  for (const BatchMember& member : it->members) {
    complete_record(pe, member.record_index, tier, &lanes[member.lane]);
  }
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    if (epoch_current) {
      cache_.insert(it->lane_sources[lane], std::move(lanes[lane]),
                    it->snap->epoch);
    } else {
      // The graph moved on mid-run: the answers are exact for their own
      // epoch (served as such) but caching them would poison
      // current-epoch hits.
      ++stale_results_dropped_;
      if (config_.registry != nullptr) {
        config_.registry->add(obs_stale_dropped_, pe.id(), 1, pe.now());
      }
    }
  }

  // The engine's broadcast handler is below us on the stack: park the
  // engine and destroy it from a fresh task once this one unwinds.
  retiring_.push_back(std::move(it->engine));
  running_.erase(it);
  schedule_retirement_sweep(pe);

  try_admit(pe);
  sample_queue(pe.now());
}

void QueryService::complete_record(runtime::Pe& pe,
                                   std::size_t record_index,
                                   ServeTier tier,
                                   const std::vector<graph::Dist>* dist) {
  QueryRecord& record = pending_records_[record_index];
  record.complete_us = pe.now();
  record.tier = tier;
  if (dist != nullptr) {
    if (record.mode == ResultMode::kPointToPoint) {
      results_[record.id] = QueryResult{ResultMode::kPointToPoint,
                                        {},
                                        (*dist)[record.target]};
    } else if (config_.retain_full_results) {
      results_[record.id] =
          QueryResult{ResultMode::kFullDistances, *dist, graph::kInfDist};
    }
  }
  if (config_.registry != nullptr) {
    config_.registry->add(obs_completed_, pe.id(), 1, pe.now());
    switch (tier) {
      case ServeTier::kCache:
        config_.registry->add(obs_cache_hits_, pe.id(), 1, pe.now());
        break;
      case ServeTier::kLandmark:
        config_.registry->add(obs_landmark_exact_, pe.id(), 1, pe.now());
        break;
      case ServeTier::kGoalDirected:
        config_.registry->add(obs_goal_directed_, pe.id(), 1, pe.now());
        break;
      default:
        break;
    }
  }
  metrics_.record(record);
}

void QueryService::sample_queue(runtime::SimTime time_us) {
  metrics_.sample_queue(time_us,
                        static_cast<std::uint32_t>(wait_queue_.size()),
                        static_cast<std::uint32_t>(running_.size()));
  if (config_.registry != nullptr) {
    config_.registry->append(obs_wait_depth_, time_us,
                             static_cast<double>(wait_queue_.size()));
    config_.registry->append(obs_running_, time_us,
                             static_cast<double>(running_.size()));
  }
}

void QueryService::schedule_retirement_sweep(runtime::Pe& pe) {
  if (sweep_scheduled_) return;
  sweep_scheduled_ = true;
  machine_.schedule_at(pe.now(), config_.frontend_pe,
                       [this](runtime::Pe&) {
                         retiring_.clear();
                         sweep_scheduled_ = false;
                       });
}

runtime::RunStats QueryService::run(runtime::SimTime time_limit_us) {
  const runtime::RunStats stats = machine_.run(time_limit_us);
  // The machine drained (or stopped at the limit with no task running):
  // no engine frame can be on the stack, so reclamation is safe here
  // even if a sweep task never got to run.
  retiring_.clear();
  sweep_scheduled_ = false;
  return stats;
}

std::uint64_t QueryService::completed_count() const {
  return metrics_.records().size();
}

const std::vector<QueryRecord>& QueryService::records() const {
  return metrics_.records();
}

const std::vector<QueueDepthSample>& QueryService::queue_samples() const {
  return metrics_.queue_samples();
}

ServiceSummary QueryService::summary() const {
  return metrics_.summarize(cache_.stats(), batches_started_);
}

const QueryResult* QueryService::result_of(std::uint64_t id) const {
  const auto it = results_.find(id);
  return it != results_.end() ? &it->second : nullptr;
}

const QueryRecord* QueryService::record_of(std::uint64_t id) const {
  const auto it = record_of_id_.find(id);
  return it != record_of_id_.end() ? &pending_records_[it->second] : nullptr;
}

}  // namespace acic::server
