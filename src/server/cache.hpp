#pragma once
// LRU distance-result cache for the serving layer.
//
// A Zipf-popular head of sources means many queries repeat a source the
// service has already solved; re-running the whole ACIC engine for them
// wastes every PE's time.  The cache keys complete distance vectors by
// source vertex.  Entries are exact, not approximate: on a static graph
// a cached answer is byte-identical to a fresh engine run (the property
// tests enforce this), so a hit can be served for one front-end lookup
// charge instead of a full multi-PE query.
//
// Capacity is counted in entries because every entry has the same size
// (|V| distances); eviction is strict least-recently-used.

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/graph/types.hpp"

namespace acic::server {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class DistanceCache {
 public:
  /// Capacity 0 disables the cache (every lookup misses, inserts are
  /// dropped) — used by the no-cache arms of the serving benchmarks.
  explicit DistanceCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached distances for `source` (promoting the entry to
  /// most-recently-used) or nullptr on a miss.  Counts either way.
  const std::vector<graph::Dist>* lookup(graph::VertexId source);

  /// Peek without touching recency or hit/miss accounting (test hook).
  const std::vector<graph::Dist>* peek(graph::VertexId source) const;

  /// Inserts (or refreshes) the result for `source`, evicting the
  /// least-recently-used entry if at capacity.
  void insert(graph::VertexId source, std::vector<graph::Dist> dist);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    graph::VertexId source;
    std::vector<graph::Dist> dist;
  };

  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<graph::VertexId, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace acic::server
