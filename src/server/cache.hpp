#pragma once
// LRU distance-result cache for the serving layer.
//
// A Zipf-popular head of sources means many queries repeat a source the
// service has already solved; re-running the whole ACIC engine for them
// wastes every PE's time.  The cache keys complete distance vectors by
// source vertex.  Entries are exact, not approximate: on a static graph
// a cached answer is byte-identical to a fresh engine run (the property
// tests enforce this), so a hit can be served for one front-end lookup
// charge instead of a full multi-PE query.
//
// Capacity is counted in entries because every entry has the same size
// (|V| distances); eviction is strict least-recently-used.
//
// Point-to-point queries deliberately share this key: the cache stays
// keyed by source alone, because a full vector for s answers *every*
// (s, t) with a single dist[t] read.  Keying by (s, t) pairs would
// fragment capacity across targets and never let a full-SSSP result
// serve a later p2p query (or vice versa).
//
// Dynamic graphs add *invalidation*: when a mutation epoch applies, the
// service tests every entry against the epoch's edge deltas (exact
// per-edge staleness tests — see QueryService::invalidate_cache) and
// evicts the ones whose distances may have changed.  Surviving entries
// are provably still exact, so their stored epoch stamp may lag the
// graph's.  Invalidated sources are remembered until the next insert or
// lookup for them: a miss on such a source counts as a *prevented stale
// hit* — the query that would have been served a wrong answer had the
// entry not been evicted.

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/graph/types.hpp"

namespace acic::server {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Entries evicted because a mutation may have changed their answer.
  std::uint64_t invalidations = 0;
  /// Misses on a source whose entry a prior invalidation evicted — the
  /// stale hits the invalidation sweep prevented.
  std::uint64_t stale_hits_prevented = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

class DistanceCache {
 public:
  /// Capacity 0 disables the cache (every lookup misses, inserts are
  /// dropped) — used by the no-cache arms of the serving benchmarks.
  explicit DistanceCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached distances for `source` (promoting the entry to
  /// most-recently-used) or nullptr on a miss.  Counts either way.
  const std::vector<graph::Dist>* lookup(graph::VertexId source);

  /// Peek without touching recency or hit/miss accounting (test hook).
  const std::vector<graph::Dist>* peek(graph::VertexId source) const;

  /// Inserts (or refreshes) the result for `source`, evicting the
  /// least-recently-used entry if at capacity.  `epoch` stamps the
  /// graph epoch the distances were computed on (0 for static graphs).
  void insert(graph::VertexId source, std::vector<graph::Dist> dist,
              std::uint64_t epoch = 0);

  /// Evicts `source` because a mutation may have changed its answer;
  /// false if not cached.  When `stolen` is non-null the evicted
  /// distance vector is moved into it (the service parks it as a warm
  /// repair state instead of discarding the work).  The source is
  /// remembered for stale-hit accounting until its next insert/lookup.
  bool invalidate(graph::VertexId source,
                  std::vector<graph::Dist>* stolen = nullptr);

  /// Epoch stamp of a cached entry (peek semantics); 0 if absent.
  std::uint64_t epoch_of(graph::VertexId source) const;

  /// Cached sources in LRU order (front = most recent), for the
  /// service's invalidation sweep — collect, then test, then invalidate.
  std::vector<graph::VertexId> cached_sources() const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    graph::VertexId source;
    std::vector<graph::Dist> dist;
    std::uint64_t epoch = 0;
  };

  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<graph::VertexId, std::list<Entry>::iterator> index_;
  /// Sources whose entry an invalidation evicted, pending the
  /// stale-hit-prevented accounting of their next miss.
  std::unordered_set<graph::VertexId> invalidated_;
  CacheStats stats_;
};

}  // namespace acic::server
