#include "src/server/cache.hpp"

#include <utility>

namespace acic::server {

const std::vector<graph::Dist>* DistanceCache::lookup(
    graph::VertexId source) {
  const auto it = index_.find(source);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return &entries_.front().dist;
}

const std::vector<graph::Dist>* DistanceCache::peek(
    graph::VertexId source) const {
  const auto it = index_.find(source);
  return it != index_.end() ? &it->second->dist : nullptr;
}

void DistanceCache::insert(graph::VertexId source,
                           std::vector<graph::Dist> dist) {
  if (capacity_ == 0) return;
  const auto it = index_.find(source);
  if (it != index_.end()) {
    // Refresh: same graph means same answer, but keep the newest vector
    // and promote (a concurrent duplicate query may legitimately land
    // here after both ran as misses).
    it->second->dist = std::move(dist);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    index_.erase(entries_.back().source);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(Entry{source, std::move(dist)});
  index_[source] = entries_.begin();
  ++stats_.insertions;
}

}  // namespace acic::server
