#include "src/server/cache.hpp"

#include <utility>

namespace acic::server {

const std::vector<graph::Dist>* DistanceCache::lookup(
    graph::VertexId source) {
  const auto it = index_.find(source);
  if (it == index_.end()) {
    ++stats_.misses;
    if (invalidated_.erase(source) > 0) {
      ++stats_.stale_hits_prevented;
    }
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return &entries_.front().dist;
}

const std::vector<graph::Dist>* DistanceCache::peek(
    graph::VertexId source) const {
  const auto it = index_.find(source);
  return it != index_.end() ? &it->second->dist : nullptr;
}

void DistanceCache::insert(graph::VertexId source,
                           std::vector<graph::Dist> dist,
                           std::uint64_t epoch) {
  if (capacity_ == 0) return;
  invalidated_.erase(source);  // the fresh answer supersedes the history
  const auto it = index_.find(source);
  if (it != index_.end()) {
    // Refresh: same graph means same answer, but keep the newest vector
    // and promote (a concurrent duplicate query may legitimately land
    // here after both ran as misses).
    it->second->dist = std::move(dist);
    it->second->epoch = epoch;
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    index_.erase(entries_.back().source);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(Entry{source, std::move(dist), epoch});
  index_[source] = entries_.begin();
  ++stats_.insertions;
}

bool DistanceCache::invalidate(graph::VertexId source,
                               std::vector<graph::Dist>* stolen) {
  const auto it = index_.find(source);
  if (it == index_.end()) return false;
  if (stolen != nullptr) *stolen = std::move(it->second->dist);
  entries_.erase(it->second);
  index_.erase(it);
  invalidated_.insert(source);
  ++stats_.invalidations;
  return true;
}

std::uint64_t DistanceCache::epoch_of(graph::VertexId source) const {
  const auto it = index_.find(source);
  return it != index_.end() ? it->second->epoch : 0;
}

std::vector<graph::VertexId> DistanceCache::cached_sources() const {
  std::vector<graph::VertexId> sources;
  sources.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    sources.push_back(entry.source);
  }
  return sources;
}

}  // namespace acic::server
