#pragma once
// Per-query latency records and service-level aggregates.
//
// The serving layer's figure of merit is not one run's makespan but the
// *distribution* of query latencies under load: tail percentiles expose
// queueing that the mean hides (a p99 dominated by admission-queue wait
// is the classic sign of an under-provisioned service).  Records are
// appended in completion order; queue-depth samples are appended at
// every lifecycle transition so depth-over-time can be plotted.

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/types.hpp"
#include "src/runtime/network.hpp"
#include "src/server/cache.hpp"
#include "src/server/workload.hpp"

namespace acic::server {

/// Which serving tier produced a query's answer.  Every tier returns
/// distances exactly equal to a dedicated full engine pass — the tiers
/// trade *work*, never accuracy (bench/server_load verifies).
enum class ServeTier : std::uint8_t {
  kEngine = 0,       // dedicated (solo) engine pass, cold or warm
  kBatch,            // one lane of a batched multi-source engine pass
  kCache,            // full distance vector found in the result cache
  kLandmark,         // tier-1 exact landmark / structural answer (p2p)
  kGoalDirected,     // front-end goal-directed A* search (p2p)
  kRepairFree,       // parked stale state proven untouched by churn
};

/// Lifecycle timestamps of one query (all in simulated microseconds).
struct QueryRecord {
  std::uint64_t id = 0;
  graph::VertexId source = 0;
  /// kInvalidVertex unless the query was point-to-point.
  graph::VertexId target = graph::kInvalidVertex;
  ResultMode mode = ResultMode::kFullDistances;
  runtime::SimTime arrival_us = 0.0;   // offered (workload) arrival time
  runtime::SimTime admit_us = 0.0;     // left the wait queue / cache hit
  runtime::SimTime complete_us = 0.0;  // result available
  ServeTier tier = ServeTier::kEngine;
  /// Graph epoch the answer is exact for (dynamic serving; the epoch
  /// current at admission — bounded staleness under churn).
  std::uint64_t epoch = 0;
  /// Answered by incremental repair of a parked invalidated entry
  /// instead of a cold engine (dynamic serving).
  bool repaired = false;

  bool cache_hit() const { return tier == ServeTier::kCache; }
  runtime::SimTime latency_us() const { return complete_us - arrival_us; }
  runtime::SimTime queue_wait_us() const { return admit_us - arrival_us; }
  runtime::SimTime service_us() const { return complete_us - admit_us; }
};

/// Queue state observed at one lifecycle transition.
struct QueueDepthSample {
  runtime::SimTime time_us = 0.0;
  std::uint32_t waiting = 0;  // admission queue depth
  std::uint32_t running = 0;  // in-flight engines
};

/// Aggregates over one service run.
struct ServiceSummary {
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;

  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double mean_latency_us = 0.0;
  double max_latency_us = 0.0;
  double mean_queue_wait_us = 0.0;

  /// Completions per simulated second over the span from first arrival
  /// to last completion.
  double throughput_qps = 0.0;
  double cache_hit_rate = 0.0;

  std::uint32_t max_queue_depth = 0;   // waiting, not running
  std::uint32_t max_concurrent = 0;    // running engines
  runtime::SimTime makespan_us = 0.0;  // first arrival -> last completion

  // Serving tiers (see ServeTier; engine = completed - all of these).
  std::uint64_t batched_queries = 0;     // served as a lane of a batch
  std::uint64_t batches_started = 0;     // multi-source engine passes
  std::uint64_t p2p_queries = 0;         // point-to-point mode
  std::uint64_t landmark_exact = 0;      // tier-1 landmark answers
  std::uint64_t goal_directed = 0;       // front-end A* answers

  // Dynamic serving (all zero on a static graph).
  std::uint64_t repaired_queries = 0;   // warm-repair admissions
  std::uint64_t cache_invalidations = 0;
  std::uint64_t stale_hits_prevented = 0;
};

/// Collects records and samples; computes the summary on demand.
class ServiceMetrics {
 public:
  void record(const QueryRecord& record) { records_.push_back(record); }
  void sample_queue(runtime::SimTime time_us, std::uint32_t waiting,
                    std::uint32_t running);

  const std::vector<QueryRecord>& records() const { return records_; }
  const std::vector<QueueDepthSample>& queue_samples() const {
    return samples_;
  }

  /// `batches_started` is service state the per-query records cannot
  /// express (one multi-source pass covers several records).
  ServiceSummary summarize(const CacheStats& cache,
                           std::uint64_t batches_started = 0) const;

 private:
  std::vector<QueryRecord> records_;
  std::vector<QueueDepthSample> samples_;
};

/// Human-readable multi-line rendering (examples and benches).
std::string format_summary(const ServiceSummary& summary);

}  // namespace acic::server
