#include "src/server/metrics.hpp"

#include <algorithm>

#include "src/util/stats.hpp"
#include "src/util/table.hpp"

namespace acic::server {

void ServiceMetrics::sample_queue(runtime::SimTime time_us,
                                  std::uint32_t waiting,
                                  std::uint32_t running) {
  samples_.push_back(QueueDepthSample{time_us, waiting, running});
}

ServiceSummary ServiceMetrics::summarize(const CacheStats& cache,
                                         std::uint64_t batches_started) const {
  ServiceSummary s;
  s.completed = records_.size();
  s.cache_hit_rate = cache.hit_rate();
  s.cache_invalidations = cache.invalidations;
  s.stale_hits_prevented = cache.stale_hits_prevented;
  s.batches_started = batches_started;
  if (records_.empty()) return s;

  std::vector<double> latencies;
  std::vector<double> waits;
  latencies.reserve(records_.size());
  waits.reserve(records_.size());
  runtime::SimTime first_arrival = records_.front().arrival_us;
  runtime::SimTime last_completion = 0.0;
  for (const QueryRecord& r : records_) {
    latencies.push_back(r.latency_us());
    waits.push_back(r.queue_wait_us());
    first_arrival = std::min(first_arrival, r.arrival_us);
    last_completion = std::max(last_completion, r.complete_us);
    if (r.cache_hit()) ++s.cache_hits;
    if (r.repaired) ++s.repaired_queries;
    if (r.mode == ResultMode::kPointToPoint) ++s.p2p_queries;
    switch (r.tier) {
      case ServeTier::kBatch: ++s.batched_queries; break;
      case ServeTier::kLandmark: ++s.landmark_exact; break;
      case ServeTier::kGoalDirected: ++s.goal_directed; break;
      default: break;
    }
  }
  s.p50_latency_us = util::percentile(latencies, 50.0);
  s.p95_latency_us = util::percentile(latencies, 95.0);
  s.p99_latency_us = util::percentile(latencies, 99.0);
  s.mean_latency_us = util::mean(latencies);
  s.max_latency_us = util::max_of(latencies);
  s.mean_queue_wait_us = util::mean(waits);
  s.makespan_us = last_completion - first_arrival;
  s.throughput_qps = s.makespan_us > 0.0
                         ? static_cast<double>(s.completed) /
                               (s.makespan_us * 1e-6)
                         : 0.0;
  for (const QueueDepthSample& q : samples_) {
    s.max_queue_depth = std::max(s.max_queue_depth, q.waiting);
    s.max_concurrent = std::max(s.max_concurrent, q.running);
  }
  return s;
}

std::string format_summary(const ServiceSummary& s) {
  std::string out;
  out += util::strformat(
      "  completed %llu queries in %.3f ms simulated (%.1f qps)\n",
      static_cast<unsigned long long>(s.completed), s.makespan_us / 1000.0,
      s.throughput_qps);
  out += util::strformat(
      "  latency us: p50 %.1f  p95 %.1f  p99 %.1f  mean %.1f  max %.1f\n",
      s.p50_latency_us, s.p95_latency_us, s.p99_latency_us,
      s.mean_latency_us, s.max_latency_us);
  out += util::strformat(
      "  queueing: mean wait %.1f us, max depth %u; max concurrent "
      "engines %u\n",
      s.mean_queue_wait_us, s.max_queue_depth, s.max_concurrent);
  // cache_hits counts queries served without an engine (including hits
  // discovered at admission); hit_rate counts front-end lookups only.
  out += util::strformat(
      "  cache: %llu queries served from cache; lookup hit rate %.1f%%\n",
      static_cast<unsigned long long>(s.cache_hits),
      100.0 * s.cache_hit_rate);
  if (s.batches_started > 0) {
    out += util::strformat(
        "  batching: %llu queries coalesced into %llu multi-source passes\n",
        static_cast<unsigned long long>(s.batched_queries),
        static_cast<unsigned long long>(s.batches_started));
  }
  if (s.p2p_queries > 0) {
    out += util::strformat(
        "  p2p: %llu queries; %llu landmark-exact, %llu goal-directed\n",
        static_cast<unsigned long long>(s.p2p_queries),
        static_cast<unsigned long long>(s.landmark_exact),
        static_cast<unsigned long long>(s.goal_directed));
  }
  if (s.cache_invalidations > 0 || s.repaired_queries > 0) {
    out += util::strformat(
        "  churn: %llu invalidations, %llu stale hits prevented, "
        "%llu queries repaired warm\n",
        static_cast<unsigned long long>(s.cache_invalidations),
        static_cast<unsigned long long>(s.stale_hits_prevented),
        static_cast<unsigned long long>(s.repaired_queries));
  }
  return out;
}

}  // namespace acic::server
