#pragma once
// Sequential connected-components ground truth: union-find with path
// compression and union by size.  Components are canonically labeled by
// their minimum vertex id, which is also the fixed point of the
// distributed label-propagation algorithms in this directory.

#include <cstdint>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/types.hpp"

namespace acic::cc {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of v's set (with path compression).
  graph::VertexId find(graph::VertexId v);

  /// Merges the sets of a and b; returns true if they were disjoint.
  bool unite(graph::VertexId a, graph::VertexId b);

  std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<graph::VertexId> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_;
};

/// Labels every vertex with the smallest vertex id in its (weakly)
/// connected component — edge direction is ignored, as in the paper's
/// future-work setting of components on random graphs.
std::vector<graph::VertexId> connected_components(const graph::Csr& csr);

/// Number of distinct components in a label vector.
std::size_t count_components(const std::vector<graph::VertexId>& labels);

}  // namespace acic::cc
