#include "src/cc/bsp_cc.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "src/runtime/collectives.hpp"
#include "src/util/assert.hpp"

namespace acic::cc {

namespace {

using graph::VertexId;
using runtime::Pe;
using runtime::PeId;

struct LabelUpdate {
  VertexId vertex = 0;
  VertexId label = 0;
};

enum Slot : std::size_t {
  kSent = 0,
  kRecv = 1,
  kDirty = 2,
  kSlots = 3,
};

enum class Cmd : int { kSweep = 0, kNoop = 1, kDone = 2 };

struct PeState {
  VertexId first = 0;
  VertexId last = 0;
  std::vector<VertexId> labels;
  std::vector<bool> dirty_flag;
  std::vector<VertexId> dirty;

  std::uint64_t sent = 0;
  std::uint64_t recv = 0;
  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  std::uint64_t rejected = 0;
  bool done = false;
};

class BspCcEngine {
 public:
  BspCcEngine(runtime::Machine& machine, const graph::Csr& csr,
              const graph::Partition1D& partition,
              const BspCcConfig& config)
      : machine_(machine),
        csr_(csr),
        partition_(partition),
        config_(config),
        pes_(machine.num_pes()) {
    ACIC_ASSERT(partition.num_parts() == machine.num_pes());

    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      PeState& state = pes_[p];
      state.first = partition.begin(p);
      state.last = partition.end(p);
      const std::size_t n = state.last - state.first;
      state.labels.resize(n);
      state.dirty_flag.assign(n, true);
      state.dirty.reserve(n);
      for (VertexId v = state.first; v < state.last; ++v) {
        state.labels[v - state.first] = v;
        state.dirty.push_back(v);  // first sweep announces everyone
      }
    }

    tram::TramConfig tram_config = config_.tram;
    tram_config.item_bytes = 8;
    tram_ = std::make_unique<tram::Tram<LabelUpdate>>(
        machine_, tram_config,
        [this](Pe& pe, const LabelUpdate& u) { on_deliver(pe, u); });

    build_reducer();

    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      machine_.schedule_at(0.0, p, [this](Pe& pe) {
        execute(pe, Cmd::kSweep);
      });
    }
  }

  BspCcResult run(runtime::SimTime time_limit_us) {
    const runtime::RunStats stats = machine_.run(time_limit_us);
    BspCcResult result;
    result.hit_time_limit = stats.hit_time_limit;
    result.supersteps = supersteps_;
    result.barrier_rounds = reducer_->cycles_completed();
    result.network_messages = stats.messages_sent;
    result.sim_time_us = stats.end_time_us;
    result.labels.resize(csr_.num_vertices());
    for (const PeState& state : pes_) {
      std::copy(state.labels.begin(), state.labels.end(),
                result.labels.begin() + state.first);
      result.updates_created += state.created;
      result.updates_processed += state.processed;
      result.updates_rejected += state.rejected;
    }
    return result;
  }

 private:
  void on_deliver(Pe& pe, const LabelUpdate& u) {
    PeState& state = pes_[pe.id()];
    ++state.recv;
    ++state.processed;
    pe.charge(config_.costs.update_apply_us);
    const VertexId local = u.vertex - state.first;
    ACIC_ASSERT(u.vertex >= state.first && u.vertex < state.last);
    if (u.label >= state.labels[local]) {
      ++state.rejected;
      return;
    }
    state.labels[local] = u.label;
    if (!state.dirty_flag[local]) {
      state.dirty_flag[local] = true;
      state.dirty.push_back(u.vertex);
    }
  }

  void do_sweep(Pe& pe) {
    PeState& state = pes_[pe.id()];
    std::vector<VertexId> sweep;
    sweep.swap(state.dirty);
    for (const VertexId v : sweep) {
      const VertexId local = v - state.first;
      state.dirty_flag[local] = false;
      const VertexId label = state.labels[local];
      for (const graph::Neighbor& nb : csr_.out_neighbors(v)) {
        // Announcing to a vertex that cannot improve is pointless; the
        // standard optimization only pushes to larger-labeled directions
        // when the label is the vertex's own id, but after that the
        // owner cannot know the neighbor's label, so push always.
        pe.charge(config_.costs.edge_relax_us);
        ++state.created;
        ++state.sent;
        tram_->insert(pe, partition_.owner(nb.dst),
                      LabelUpdate{nb.dst, label});
      }
    }
  }

  void execute(Pe& pe, Cmd cmd) {
    PeState& state = pes_[pe.id()];
    switch (cmd) {
      case Cmd::kSweep:
        ++sweeps_seen_;
        do_sweep(pe);
        break;
      case Cmd::kNoop:
        break;
      case Cmd::kDone:
        state.done = true;
        return;
    }
    tram_->flush_all(pe);
    contribute(pe);
  }

  void contribute(Pe& pe) {
    PeState& state = pes_[pe.id()];
    std::vector<double> payload(kSlots, 0.0);
    payload[kSent] = static_cast<double>(state.sent);
    payload[kRecv] = static_cast<double>(state.recv);
    payload[kDirty] = static_cast<double>(state.dirty.size());
    reducer_->contribute(pe, payload);
  }

  void build_reducer() {
    reducer_ = std::make_unique<runtime::Reducer>(
        machine_, kSlots,
        [this](Pe&, std::uint64_t, const std::vector<double>& sum)
            -> std::optional<std::vector<double>> {
          const bool equal = sum[kSent] == sum[kRecv];
          const bool stable =
              equal && armed_ && sum[kSent] == last_sent_;
          armed_ = equal;
          last_sent_ = sum[kSent];
          if (!stable) {
            return std::vector<double>{
                static_cast<double>(static_cast<int>(Cmd::kNoop))};
          }
          armed_ = false;
          if (sum[kDirty] == 0.0) {
            return std::vector<double>{
                static_cast<double>(static_cast<int>(Cmd::kDone))};
          }
          ++supersteps_;
          return std::vector<double>{
              static_cast<double>(static_cast<int>(Cmd::kSweep))};
        },
        [this](Pe& pe, std::uint64_t, const std::vector<double>& payload) {
          const auto cmd = static_cast<Cmd>(static_cast<int>(payload[0]));
          if (cmd == Cmd::kDone) {
            pes_[pe.id()].done = true;
            return;
          }
          if (cmd == Cmd::kNoop) {
            const PeId id = pe.id();
            machine_.schedule_at(
                pe.now() + config_.barrier_interval_us, id,
                [this](Pe& next) { execute(next, Cmd::kNoop); });
            return;
          }
          execute(pe, cmd);
        });
  }

  runtime::Machine& machine_;
  const graph::Csr& csr_;
  const graph::Partition1D& partition_;
  BspCcConfig config_;

  std::vector<PeState> pes_;
  std::unique_ptr<tram::Tram<LabelUpdate>> tram_;
  std::unique_ptr<runtime::Reducer> reducer_;

  bool armed_ = false;
  double last_sent_ = -1.0;
  std::uint64_t supersteps_ = 0;
  std::uint64_t sweeps_seen_ = 0;
};

}  // namespace

BspCcResult bsp_cc(runtime::Machine& machine, const graph::Csr& csr,
                   const graph::Partition1D& partition,
                   const BspCcConfig& config,
                   runtime::SimTime time_limit_us) {
  BspCcEngine engine(machine, csr, partition, config);
  return engine.run(time_limit_us);
}

}  // namespace acic::cc
