#pragma once
// Bulk-synchronous connected components: classic label propagation in
// supersteps (the synchronous counterpart the future-work asynchronous
// CC is measured against).  Each superstep, every vertex whose label
// changed since the last barrier pushes it to all neighbors; a drained
// barrier separates supersteps; the run ends when a superstep changes
// nothing.

#include <cstdint>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/cost_model.hpp"
#include "src/tram/tram.hpp"

namespace acic::cc {

struct BspCcConfig {
  tram::TramConfig tram;
  sssp::CostModel costs;
  runtime::SimTime barrier_interval_us = 10.0;
};

struct BspCcResult {
  std::vector<graph::VertexId> labels;
  std::uint64_t updates_created = 0;
  std::uint64_t updates_processed = 0;
  std::uint64_t updates_rejected = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t barrier_rounds = 0;
  std::uint64_t network_messages = 0;
  runtime::SimTime sim_time_us = 0.0;
  bool hit_time_limit = false;
};

/// Runs BSP label-propagation CC on a symmetrized graph.
BspCcResult bsp_cc(runtime::Machine& machine, const graph::Csr& csr,
                   const graph::Partition1D& partition,
                   const BspCcConfig& config = {},
                   runtime::SimTime time_limit_us =
                       runtime::kNoTimeLimit);

}  // namespace acic::cc
