#include "src/cc/union_find.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace acic::cc {

using graph::VertexId;

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  for (std::size_t v = 0; v < n; ++v) {
    parent_[v] = static_cast<VertexId>(v);
  }
}

VertexId UnionFind::find(VertexId v) {
  ACIC_ASSERT(v < parent_.size());
  VertexId root = v;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[v] != root) {
    const VertexId next = parent_[v];
    parent_[v] = root;
    v = next;
  }
  return root;
}

bool UnionFind::unite(VertexId a, VertexId b) {
  VertexId ra = find(a);
  VertexId rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::vector<VertexId> connected_components(const graph::Csr& csr) {
  const VertexId n = csr.num_vertices();
  UnionFind uf(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const graph::Neighbor& nb : csr.out_neighbors(v)) {
      uf.unite(v, nb.dst);
    }
  }
  // Canonical label: the minimum vertex id in each set.
  std::vector<VertexId> min_of_root(n, graph::kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId root = uf.find(v);
    min_of_root[root] = std::min(min_of_root[root], v);
  }
  std::vector<VertexId> labels(n);
  for (VertexId v = 0; v < n; ++v) {
    labels[v] = min_of_root[uf.find(v)];
  }
  return labels;
}

std::size_t count_components(const std::vector<VertexId>& labels) {
  std::size_t count = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

}  // namespace acic::cc
