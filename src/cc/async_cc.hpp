#pragma once
// Asynchronous connected components with ACIC-style continuous
// introspection — the paper's future-work proposal made concrete
// ("One candidate is the connected components problem for random graphs,
// where asynchronous reductions may be used to communicate information
// about vertices and components concurrently with computation", §V).
//
// The algorithm is min-label propagation: every vertex starts labeled
// with its own id; an update (v, label) lowers v's label and propagates
// the new minimum to its neighbors.  The machinery transfers from SSSP
// directly: labels play the role of distances (lower labels win and are
// more likely final), a per-PE histogram over label values feeds the
// continuous reduction, the pq threshold admits the lowest labels first
// and parks the rest in a hold, and the created/processed counters give
// quiescence-based termination.  The input graph must be symmetrized
// (EdgeList::symmetrized) so components are *weakly* connected.

#include <cstdint>
#include <vector>

#include "src/graph/csr.hpp"
#include "src/graph/partition.hpp"
#include "src/runtime/machine.hpp"
#include "src/sssp/cost_model.hpp"
#include "src/tram/tram.hpp"

namespace acic::cc {

struct AsyncCcConfig {
  /// Fraction of active label updates admitted to pq immediately
  /// (ACIC's p_pq analogue; low values suppress propagation of labels
  /// that will lose to a smaller one anyway).
  double p_pq = 0.05;
  std::uint64_t low_activity_factor = 100;
  std::size_t num_buckets = 256;
  tram::TramConfig tram;
  sssp::CostModel costs;
  runtime::SimTime reduction_interval_us = 10.0;
  std::size_t pq_drain_batch = 32;
  /// Disable the priority queue (propagate on arrival) — the naive
  /// asynchronous baseline for the ablation.
  bool use_pq = true;
};

struct AsyncCcResult {
  std::vector<graph::VertexId> labels;
  std::uint64_t updates_created = 0;
  std::uint64_t updates_processed = 0;
  std::uint64_t updates_rejected = 0;
  std::uint64_t reduction_cycles = 0;
  std::uint64_t network_messages = 0;
  runtime::SimTime sim_time_us = 0.0;
  bool hit_time_limit = false;
};

/// Runs asynchronous CC on a symmetrized graph.  The result labels each
/// vertex with the minimum vertex id of its component.
AsyncCcResult async_cc(runtime::Machine& machine, const graph::Csr& csr,
                       const graph::Partition1D& partition,
                       const AsyncCcConfig& config = {},
                       runtime::SimTime time_limit_us =
                           runtime::kNoTimeLimit);

}  // namespace acic::cc
