#include "src/cc/async_cc.hpp"

#include <memory>
#include <optional>
#include <queue>
#include <utility>

#include "src/core/hold.hpp"
#include "src/core/thresholds.hpp"
#include "src/runtime/collectives.hpp"
#include "src/util/assert.hpp"

namespace acic::cc {

namespace {

using graph::VertexId;
using runtime::Pe;
using runtime::PeId;

/// A label update: "vertex may belong to label's component".
struct LabelUpdate {
  VertexId vertex = 0;
  VertexId label = 0;
};

/// Min-heap ordering: smallest label first (lowest labels are final
/// soonest, mirroring lowest-distance-first in SSSP).
struct LabelMinOrder {
  bool operator()(const LabelUpdate& a, const LabelUpdate& b) const {
    if (a.label != b.label) return a.label > b.label;
    return a.vertex > b.vertex;
  }
};

struct PeState {
  VertexId first = 0;
  VertexId last = 0;
  std::vector<VertexId> labels;
  std::vector<std::int64_t> histogram;
  core::BucketedHold pq_hold{1};
  std::priority_queue<LabelUpdate, std::vector<LabelUpdate>,
                      LabelMinOrder>
      pq;
  std::size_t t_pq = 0;

  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  std::uint64_t rejected = 0;
  /// Reusable hold-release scratch (per-PE: broadcasts on different
  /// nodes run concurrently under the parallel engine).
  std::vector<sssp::Update> release_scratch;
  bool terminated = false;
};

class AsyncCcEngine {
 public:
  AsyncCcEngine(runtime::Machine& machine, const graph::Csr& csr,
                const graph::Partition1D& partition,
                const AsyncCcConfig& config)
      : machine_(machine),
        csr_(csr),
        partition_(partition),
        config_(config),
        bucket_width_(std::max<double>(
            1.0, static_cast<double>(csr.num_vertices()) /
                     static_cast<double>(config.num_buckets))),
        pes_(machine.num_pes()) {
    ACIC_ASSERT(partition.num_parts() == machine.num_pes());

    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      PeState& state = pes_[p];
      state.first = partition.begin(p);
      state.last = partition.end(p);
      state.labels.resize(state.last - state.first);
      for (VertexId v = state.first; v < state.last; ++v) {
        state.labels[v - state.first] = v;  // own id
      }
      state.histogram.assign(config_.num_buckets, 0);
      state.pq_hold = core::BucketedHold(config_.num_buckets);
      state.t_pq = config_.num_buckets - 1;
    }

    tram::TramConfig tram_config = config_.tram;
    tram_config.item_bytes = 8;
    tram_ = std::make_unique<tram::Tram<LabelUpdate>>(
        machine_, tram_config,
        [this](Pe& pe, const LabelUpdate& u) { on_deliver(pe, u); });

    build_reducer();

    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      // add (not set): leaves the PE's idle dispatch shareable with
      // other tenants of the machine.
      idle_handler_ids_.push_back(machine_.add_idle_handler(
          p, [this](Pe& pe) { return drain_pq(pe); }));
      // Seed: every vertex announces its own id to its neighbors once.
      machine_.schedule_at(0.0, p, [this](Pe& pe) { seed(pe); });
      machine_.schedule_at(0.0, p, [this](Pe& pe) { contribute(pe); });
    }
  }

  ~AsyncCcEngine() {
    for (PeId p = 0; p < machine_.num_pes(); ++p) {
      machine_.remove_idle_handler(p, idle_handler_ids_[p]);
    }
  }

  AsyncCcResult run(runtime::SimTime time_limit_us) {
    const runtime::RunStats stats = machine_.run(time_limit_us);
    AsyncCcResult result;
    result.hit_time_limit = stats.hit_time_limit;
    result.reduction_cycles = reducer_->cycles_completed();
    result.network_messages = stats.messages_sent;
    result.sim_time_us = stats.end_time_us;
    result.labels.resize(csr_.num_vertices());
    for (const PeState& state : pes_) {
      std::copy(state.labels.begin(), state.labels.end(),
                result.labels.begin() + state.first);
      result.updates_created += state.created;
      result.updates_processed += state.processed;
      result.updates_rejected += state.rejected;
    }
    return result;
  }

 private:
  PeState& state_of(const Pe& pe) { return pes_[pe.id()]; }

  std::size_t bucket_of(VertexId label) const {
    const auto b = static_cast<std::size_t>(
        static_cast<double>(label) / bucket_width_);
    return b < config_.num_buckets ? b : config_.num_buckets - 1;
  }

  /// Initial wave: every vertex proposes its own id to its neighbors.
  /// Only edges pointing to a *larger* neighbor can improve it, so the
  /// seed sends along those edges only.
  void seed(Pe& pe) {
    PeState& state = state_of(pe);
    for (VertexId v = state.first; v < state.last; ++v) {
      for (const graph::Neighbor& nb : csr_.out_neighbors(v)) {
        if (nb.dst > v) {
          pe.charge(config_.costs.edge_relax_us);
          create_update(pe, nb.dst, v);
        }
      }
    }
  }

  void create_update(Pe& pe, VertexId target, VertexId label) {
    PeState& state = state_of(pe);
    ++state.created;
    ++state.histogram[bucket_of(label)];
    tram_->insert(pe, partition_.owner(target),
                  LabelUpdate{target, label});
  }

  void mark_processed(PeState& state, VertexId label) {
    ++state.processed;
    --state.histogram[bucket_of(label)];
  }

  void on_deliver(Pe& pe, const LabelUpdate& u) {
    PeState& state = state_of(pe);
    pe.charge(config_.costs.update_apply_us);
    const VertexId local = u.vertex - state.first;
    ACIC_ASSERT(u.vertex >= state.first && u.vertex < state.last);

    if (u.label >= state.labels[local]) {
      mark_processed(state, u.label);
      ++state.rejected;
      return;
    }
    state.labels[local] = u.label;

    if (!config_.use_pq) {
      expand(pe, u);
      return;
    }
    const std::size_t bucket = bucket_of(u.label);
    if (bucket <= state.t_pq) {
      pe.charge(config_.costs.pq_op_us);
      state.pq.push(u);
    } else {
      state.pq_hold.put(bucket,
                        sssp::Update{u.vertex, static_cast<double>(u.label)});
    }
  }

  bool drain_pq(Pe& pe) {
    PeState& state = state_of(pe);
    bool any = false;
    for (std::size_t i = 0;
         i < config_.pq_drain_batch && !state.pq.empty(); ++i) {
      pe.charge(config_.costs.pq_op_us);
      const LabelUpdate u = state.pq.top();
      state.pq.pop();
      any = true;
      const VertexId local = u.vertex - state.first;
      if (state.labels[local] == u.label) {
        expand(pe, u);
      } else {
        mark_processed(state, u.label);  // superseded by a smaller label
      }
    }
    return any;
  }

  void expand(Pe& pe, const LabelUpdate& u) {
    for (const graph::Neighbor& nb : csr_.out_neighbors(u.vertex)) {
      pe.charge(config_.costs.edge_relax_us);
      create_update(pe, nb.dst, u.label);
    }
    mark_processed(state_of(pe), u.label);
  }

  std::size_t payload_width() const { return config_.num_buckets + 2; }

  void contribute(Pe& pe) {
    PeState& state = state_of(pe);
    if (state.terminated) return;
    std::vector<double> payload;
    payload.reserve(payload_width());
    for (const std::int64_t c : state.histogram) {
      payload.push_back(static_cast<double>(c));
    }
    payload.push_back(static_cast<double>(state.created));
    payload.push_back(static_cast<double>(state.processed));
    reducer_->contribute(pe, payload);
  }

  void build_reducer() {
    reducer_ = std::make_unique<runtime::Reducer>(
        machine_, payload_width(),
        [this](Pe&, std::uint64_t, const std::vector<double>& sum)
            -> std::optional<std::vector<double>> {
          const double created = sum[config_.num_buckets];
          const double processed = sum[config_.num_buckets + 1];
          const bool equal = created == processed;
          if (equal && armed_ && created == last_created_) {
            return std::vector<double>{0.0, 1.0};
          }
          armed_ = equal;
          last_created_ = created;

          const std::vector<double> histogram(
              sum.begin(), sum.begin() + config_.num_buckets);
          const core::ThresholdPolicy policy{
              1.0, config_.p_pq, config_.low_activity_factor};
          const core::Thresholds t = core::compute_thresholds(
              histogram, machine_.num_pes(), policy);
          return std::vector<double>{static_cast<double>(t.t_pq), 0.0};
        },
        [this](Pe& pe, std::uint64_t, const std::vector<double>& payload) {
          PeState& state = state_of(pe);
          if (payload[1] != 0.0) {
            state.terminated = true;
            return;
          }
          state.t_pq = static_cast<std::size_t>(payload[0]);
          std::vector<sssp::Update>& release_buffer = state.release_scratch;
          release_buffer.clear();
          state.pq_hold.release_up_to(state.t_pq, &release_buffer);
          for (const sssp::Update& u : release_buffer) {
            pe.charge(config_.costs.pq_op_us);
            state.pq.push(LabelUpdate{
                u.vertex, static_cast<VertexId>(u.dist)});
          }
          tram_->flush_all(pe);
          const PeId id = pe.id();
          machine_.schedule_at(pe.now() + config_.reduction_interval_us,
                               id,
                               [this](Pe& next) { contribute(next); });
        });
  }

  runtime::Machine& machine_;
  const graph::Csr& csr_;
  const graph::Partition1D& partition_;
  AsyncCcConfig config_;
  double bucket_width_;

  std::vector<PeState> pes_;
  std::vector<runtime::IdleHandlerId> idle_handler_ids_;
  std::unique_ptr<tram::Tram<LabelUpdate>> tram_;
  std::unique_ptr<runtime::Reducer> reducer_;

  bool armed_ = false;
  double last_created_ = -1.0;
};

}  // namespace

AsyncCcResult async_cc(runtime::Machine& machine, const graph::Csr& csr,
                       const graph::Partition1D& partition,
                       const AsyncCcConfig& config,
                       runtime::SimTime time_limit_us) {
  AsyncCcEngine engine(machine, csr, partition, config);
  return engine.run(time_limit_us);
}

}  // namespace acic::cc
