#include "src/util/options.hpp"

#include <cstdlib>

namespace acic::util {

namespace {

std::string env_name(const std::string& key) {
  std::string name = "ACIC_";
  for (char c : key) {
    if (c == '-') {
      name.push_back('_');
    } else {
      name.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  return name;
}

}  // namespace

void Options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` if the next token is not itself an option; else a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

bool Options::lookup(const std::string& key, std::string* out) const {
  const auto it = values_.find(key);
  if (it != values_.end()) {
    *out = it->second;
    return true;
  }
  if (const char* env = std::getenv(env_name(key).c_str())) {
    *out = env;
    return true;
  }
  return false;
}

bool Options::has(const std::string& key) const {
  std::string unused;
  return lookup(key, &unused);
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  std::string value;
  return lookup(key, &value) ? value : fallback;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  std::string value;
  if (!lookup(key, &value)) return fallback;
  return std::strtoll(value.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  std::string value;
  if (!lookup(key, &value)) return fallback;
  return std::strtod(value.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  std::string value;
  if (!lookup(key, &value)) return fallback;
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

}  // namespace acic::util
