#pragma once
// Minimal command-line / environment option parser shared by examples and
// benchmark harnesses.
//
// Syntax: `--key value` or `--key=value`; bare `--flag` sets "1".  For any
// option `foo`, the environment variable `ACIC_FOO` (upper-cased, dashes
// replaced by underscores) provides a default that the command line can
// override, so experiment scale can be raised fleet-wide via the
// environment (`ACIC_SCALE=20 ./bench/...`).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace acic::util {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv) { parse(argc, argv); }

  /// Parses argv; unrecognized positional arguments are kept in order.
  void parse(int argc, char** argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Programmatic override (used by tests).
  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

 private:
  /// Looks up --key, then the ACIC_KEY environment variable.
  bool lookup(const std::string& key, std::string* out) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace acic::util
