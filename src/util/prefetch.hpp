#pragma once
// Software-prefetch helpers for the per-update hot loops.
//
// SSSP's inner loop is a random walk over the distance array and the CSR
// offsets: every delivered update touches dist[v - first] for an
// effectively random v, and every expansion follows with the vertex's
// adjacency row.  Out-of-order execution cannot hide those misses —
// the compare in the apply loop depends on the load — but the *addresses*
// are known a whole batch ahead, so issuing a prefetch a few items early
// overlaps the miss with useful work (the PrefEdge approach; see
// docs/performance.md "Locality").
//
// Prefetches are pure hardware hints: they change no architectural state,
// so every user of this header stays bit-identical in simulated time,
// counters and distances (the determinism test and bench/wallclock pin
// this down).

#include <cstddef>

namespace acic::util {

/// Read-prefetch with high temporal locality; a no-op on compilers
/// without the builtin.
inline void prefetch_read(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

/// How many items ahead the tram delivery loop prefetches the target
/// distance slot and CSR offsets row.  Chosen from the
/// BM_UpdateApplyPrefetch sweep in bench/micro_benchmarks (N ∈
/// {0,2,4,8,16}): 8 sits at the flat bottom of the curve — far enough
/// out to cover a memory round-trip behind ~8 items of apply work,
/// close enough that the lines are still resident when used.
inline constexpr std::size_t kDeliverPrefetchLookahead = 8;

/// Lookahead for frontier/worklist expansion loops (delta's bucket and
/// settled lists, KLA's deferred list).  Each iteration walks a whole
/// adjacency row, so fewer items cover the same latency.
inline constexpr std::size_t kExpandPrefetchLookahead = 4;

}  // namespace acic::util
