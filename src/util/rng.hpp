#pragma once
// Deterministic random number generation.
//
// All randomness in the library flows through these generators so that a
// (seed, stream) pair fully determines graph structure, edge weights and
// any randomized tie-breaking.  We use SplitMix64 for seeding and
// xoshiro256** as the workhorse generator: both are tiny, fast, and have
// well-understood statistical quality for simulation workloads.  The
// standard <random> engines are avoided because their output sequences
// are not guaranteed identical across standard library implementations,
// which would break our exact-value regression tests.

#include <array>
#include <cstdint>

namespace acic::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes through every 64-bit value exactly once over its period.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit generator (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// standard distributions when exact reproducibility is not required.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single seed via SplitMix64, as the
  /// xoshiro authors recommend; a zero seed is remapped internally so the
  /// all-zero (degenerate) state is unreachable.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (unbiased enough for simulation purposes and branch-light).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the mapping uniform without a modulo.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform double in [0, 1): the top 53 bits of one draw.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw with probability p of returning true.
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Derives an independent stream seed from a base seed and a stream index,
/// so e.g. graph structure and edge weights use decorrelated sequences.
inline std::uint64_t derive_seed(std::uint64_t base,
                                 std::uint64_t stream) noexcept {
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

}  // namespace acic::util
