#include "src/util/table.hpp"

#include <cstdarg>

#include "src/util/assert.hpp"

namespace acic::util {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  ACIC_ASSERT(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

void Table::add_row(std::vector<std::string> cells) {
  ACIC_ASSERT_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputs("|", out);
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]),
                   row[c].c_str());
    }
    std::fputs("\n", out);
  };
  print_row(headers_);
  std::fputs("|", out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
    std::fputc('|', out);
  }
  std::fputs("\n", out);
  for (const auto& row : rows_) print_row(row);
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) std::fputc(',', f);
      std::fputs(row[c].c_str(), f);
    }
    std::fputc('\n', f);
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  std::fclose(f);
  return true;
}

}  // namespace acic::util
