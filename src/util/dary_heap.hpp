#pragma once
// d-ary array heap (default 4-ary), a drop-in for std::priority_queue on
// the simulator's hot paths: the machine's global event queue and ACIC's
// per-PE update queue.
//
// Why not std::priority_queue: a binary heap does ~log2(n) cache-line
// hops per operation and std::priority_queue cannot reserve its backing
// store.  A 4-heap halves the tree height (4 children share a cache
// line, so the extra comparisons per level are nearly free) and exposes
// reserve() so steady-state push/pop never reallocates.  pop_top()
// moves the top element out instead of forcing the classic
// const_cast-the-top dance move-only payloads need with the std adaptor.
//
// Ordering contract matches std::priority_queue: top() is the *largest*
// element under Compare, so existing "greater" comparators (EventOrder,
// UpdateMinOrder) min-pop unchanged.  For comparators that are total
// orders — every comparator in this repository breaks ties on a unique
// sequence/vertex key — the pop sequence is identical to the binary
// heap's, which is what keeps simulation replays bit-identical.

#include <cstddef>
#include <utility>
#include <vector>

namespace acic::util {

template <typename T, typename Compare, unsigned kArity = 4>
class DaryHeap {
  static_assert(kArity >= 2, "heap arity must be at least 2");

 public:
  DaryHeap() = default;
  explicit DaryHeap(Compare cmp) : cmp_(std::move(cmp)) {}

  void reserve(std::size_t n) { data_.reserve(n); }
  std::size_t capacity() const noexcept { return data_.capacity(); }
  bool empty() const noexcept { return data_.empty(); }
  std::size_t size() const noexcept { return data_.size(); }
  void clear() noexcept { data_.clear(); }

  const T& top() const { return data_.front(); }

  void push(T value) {
    data_.push_back(std::move(value));
    sift_up(data_.size() - 1);
  }

  void pop() {
    if (data_.size() > 1) {
      data_.front() = std::move(data_.back());
      data_.pop_back();
      sift_down(0);
    } else {
      data_.pop_back();
    }
  }

  /// Moves the top element out and pops — one call, no const_cast.
  T pop_top() {
    T out = std::move(data_.front());
    pop();
    return out;
  }

 private:
  void sift_up(std::size_t i) {
    T value = std::move(data_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!cmp_(data_[parent], value)) break;
      data_[i] = std::move(data_[parent]);
      i = parent;
    }
    data_[i] = std::move(value);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    T value = std::move(data_[i]);
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      const std::size_t last =
          first + kArity < n ? first + kArity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (cmp_(data_[best], data_[c])) best = c;
      }
      if (!cmp_(value, data_[best])) break;
      data_[i] = std::move(data_[best]);
      i = best;
    }
    data_[i] = std::move(value);
  }

  std::vector<T> data_;
  Compare cmp_;
};

}  // namespace acic::util
