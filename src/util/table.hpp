#pragma once
// Aligned-column table printer used by the benchmark harnesses to emit
// paper-style result rows, plus a companion CSV dump for plotting.

#include <cstdio>
#include <string>
#include <vector>

namespace acic::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with aligned columns to `out` (default stdout).
  void print(std::FILE* out = stdout) const;

  /// Writes headers+rows as CSV to the given path; returns false on I/O
  /// failure.
  bool write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper producing std::string, for building table cells.
std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace acic::util
