#pragma once
// Lightweight always-on assertion macros for invariant checking.
//
// Unlike <cassert>, these fire in every build type: a simulator whose
// invariants silently degrade produces wrong *results*, not just wrong
// performance, so we keep the checks on. The macros print the failing
// expression, location and an optional formatted message, then abort.

#include <cstdio>
#include <cstdlib>

namespace acic::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ACIC assertion failed: %s\n  at %s:%d\n", expr, file,
               line);
  if (msg != nullptr && msg[0] != '\0') {
    std::fprintf(stderr, "  %s\n", msg);
  }
  std::abort();
}

}  // namespace acic::util

#define ACIC_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::acic::util::assert_fail(#expr, __FILE__, __LINE__, "");        \
    }                                                                  \
  } while (false)

#define ACIC_ASSERT_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::acic::util::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                  \
  } while (false)
