#pragma once
// Lightweight always-on assertion macros for invariant checking.
//
// Unlike <cassert>, these fire in every build type: a simulator whose
// invariants silently degrade produces wrong *results*, not just wrong
// performance, so we keep the checks on. The macros print the failing
// expression, location and an optional formatted message, then abort.

#include <cstdio>
#include <cstdlib>

namespace acic::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ACIC assertion failed: %s\n  at %s:%d\n", expr, file,
               line);
  if (msg != nullptr && msg[0] != '\0') {
    std::fprintf(stderr, "  %s\n", msg);
  }
  std::abort();
}

}  // namespace acic::util

#define ACIC_ASSERT(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::acic::util::assert_fail(#expr, __FILE__, __LINE__, "");        \
    }                                                                  \
  } while (false)

#define ACIC_ASSERT_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::acic::util::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                  \
  } while (false)

// Hot-path variants: identical checks, but compiled out in optimized
// builds (NDEBUG).  These guard per-item simulator loops — charging CPU,
// bucketing an update, inserting into a tram buffer — which execute tens
// of millions of times per run; the checks cost double-digit
// milliseconds at benchmark scale.  Debug and sanitizer builds (which do
// not define NDEBUG) keep them, so every invariant still has CI
// coverage.  API-boundary and setup-path checks stay on ACIC_ASSERT.
#ifndef NDEBUG
#define ACIC_HOT_ASSERT(expr) ACIC_ASSERT(expr)
#define ACIC_HOT_ASSERT_MSG(expr, msg) ACIC_ASSERT_MSG(expr, msg)
#else
#define ACIC_HOT_ASSERT(expr) ((void)0)
#define ACIC_HOT_ASSERT_MSG(expr, msg) ((void)0)
#endif
