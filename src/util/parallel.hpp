#pragma once
// Minimal fork-join helper for the deterministic parallel build paths
// (graph generation, edge-list sort, CSR construction).
//
// `parallel_for(count, threads, fn)` runs fn(i) once for every index in
// [0, count), using up to `threads` host threads (the calling thread
// included).  Indices are handed out dynamically through an atomic
// counter, so callers MUST make fn(i) depend only on i (e.g. write into
// slot i of a pre-sized output) — then the result is identical at any
// thread count, which is how the graph builders stay deterministic.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace acic::util {

template <typename Fn>
void parallel_for(std::uint64_t count, unsigned threads, Fn&& fn) {
  if (count == 0) return;
  const unsigned n = static_cast<unsigned>(std::min<std::uint64_t>(
      threads == 0 ? 1 : threads, count));
  if (n <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::uint64_t> next{0};
  auto worker = [&next, count, &fn] {
    for (std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(n - 1);
  for (unsigned t = 1; t < n; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

}  // namespace acic::util
