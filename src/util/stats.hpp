#pragma once
// Small numeric helpers for summarizing measurement series.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "src/util/assert.hpp"

namespace acic::util {

inline double mean(const std::vector<double>& xs) {
  ACIC_ASSERT(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

inline double stddev(const std::vector<double>& xs) {
  ACIC_ASSERT(!xs.empty());
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

inline double min_of(const std::vector<double>& xs) {
  ACIC_ASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

inline double max_of(const std::vector<double>& xs) {
  ACIC_ASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

/// Percentile by linear interpolation between closest ranks; p in [0, 100].
inline double percentile(std::vector<double> xs, double p) {
  ACIC_ASSERT(!xs.empty());
  ACIC_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

/// Geometric mean; all inputs must be positive.
inline double geomean(const std::vector<double>& xs) {
  ACIC_ASSERT(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    ACIC_ASSERT(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace acic::util
